// voronet-sim runs an ad-hoc VoroNet scenario and prints overlay
// statistics: build an overlay of a given size and distribution, churn it,
// route through it, and report degrees, neighbourhood sizes, route-length
// percentiles and protocol cost counters.
//
// Example:
//
//	voronet-sim -n 50000 -dist alpha2 -k 2 -churn 5000 -routes 2000
package main

import (
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"voronet"
	"voronet/internal/stats"
	"voronet/internal/workload"
)

var (
	n      = flag.Int("n", 10000, "overlay size")
	dist   = flag.String("dist", "uniform", "distribution: uniform, alpha1, alpha2, alpha5, clusters, grid")
	k      = flag.Int("k", 1, "long-range links per object")
	churn  = flag.Int("churn", 0, "number of leave+join churn events after the build")
	routes = flag.Int("routes", 1000, "route-length samples")
	seed   = flag.Int64("seed", 1, "RNG seed")
	joins  = flag.Bool("protocol-joins", false, "build via full protocol joins (Algorithm 1) instead of direct inserts")
)

func main() {
	flag.Parse()
	rng := rand.New(rand.NewSource(*seed))
	src := workload.ByName(*dist, rng)
	if src == nil {
		fmt.Fprintf(os.Stderr, "unknown distribution %q (have %v)\n", *dist, workload.Names())
		os.Exit(2)
	}
	ov := voronet.New(voronet.Config{NMax: *n, LongLinks: *k, Seed: *seed + 1})

	start := time.Now()
	var last voronet.ObjectID = voronet.NoObject
	for ov.Len() < *n {
		var err error
		var id voronet.ObjectID
		if *joins {
			id, err = ov.Join(src.Next(), last)
		} else {
			id, err = ov.Insert(src.Next())
		}
		if err != nil {
			if errors.Is(err, voronet.ErrDuplicate) {
				continue
			}
			fatal(err)
		}
		last = id
	}
	buildTime := time.Since(start)

	start = time.Now()
	measRng := rand.New(rand.NewSource(*seed + 2))
	for i := 0; i < *churn; i++ {
		victim, err := ov.RandomObject(measRng)
		if err != nil {
			fatal(err)
		}
		if err := ov.Remove(victim); err != nil {
			fatal(err)
		}
		for {
			if _, err := ov.Join(src.Next(), voronet.NoObject); err == nil {
				break
			} else if !errors.Is(err, voronet.ErrDuplicate) {
				fatal(err)
			}
		}
	}
	churnTime := time.Since(start)

	// Degree and close-neighbourhood statistics.
	deg := stats.NewHistogram()
	var cnSize stats.Running
	var buf []voronet.ObjectID
	ov.ForEachObject(func(o *voronet.Object) bool {
		d, _ := ov.Degree(o.ID)
		deg.Add(d)
		buf, _ = ov.CloseNeighbors(o.ID, buf)
		cnSize.Add(float64(len(buf)))
		return true
	})

	// Route lengths.
	start = time.Now()
	var hops []float64
	var agg stats.Running
	for i := 0; i < *routes; i++ {
		a, _ := ov.RandomObject(measRng)
		b, _ := ov.RandomObject(measRng)
		if a == b {
			continue
		}
		h, err := ov.RouteToObject(a, b)
		if err != nil {
			fatal(err)
		}
		hops = append(hops, float64(h))
		agg.Add(float64(h))
	}
	routeTime := time.Since(start)

	mode, _ := deg.Mode()
	c := ov.Counters()
	fmt.Printf("overlay          %d objects, %s distribution, k=%d (dmin=%.2e)\n", ov.Len(), src.Name(), *k, ov.DMin())
	fmt.Printf("build            %v (%s)\n", buildTime.Round(time.Millisecond), buildMode())
	if *churn > 0 {
		fmt.Printf("churn            %d leave+join in %v\n", *churn, churnTime.Round(time.Millisecond))
	}
	fmt.Printf("degree |vn|      mode=%d mean=%.2f mass[3,9]=%.3f\n", mode, deg.Mean(), deg.MassIn(3, 9))
	fmt.Printf("close |cn|       mean=%.2f max=%.0f\n", cnSize.Mean(), cnSize.Max())
	fmt.Printf("routes (%d)      mean=%.1f p50=%.0f p95=%.0f p99=%.0f max=%.0f in %v\n",
		agg.N(), agg.Mean(), stats.Percentile(hops, 50), stats.Percentile(hops, 95),
		stats.Percentile(hops, 99), agg.Max(), routeTime.Round(time.Millisecond))
	fmt.Printf("protocol costs   greedySteps=%d joinRouteSteps=%d maintenance=%d fictive=%d joins=%d leaves=%d\n",
		c.GreedySteps, c.JoinRouteSteps, c.MaintenanceMessages, c.FictiveInserts, c.Joins, c.Leaves)
}

func buildMode() string {
	if *joins {
		return "protocol joins"
	}
	return "direct inserts"
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "voronet-sim:", err)
	os.Exit(1)
}
