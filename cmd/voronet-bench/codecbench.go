package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"voronet/internal/metrics"
	"voronet/internal/proto"
)

// The codec phase of -net measures the wire format itself, off the
// network: encode/decode wall time and bytes per envelope for the
// binary codec against the legacy gob baseline, over proto.Samples()
// (one realistic envelope per message kind). The gob side goes through
// the pooled AppendEncodeGob path, so the comparison is against the
// best the legacy codec can do, not against its old per-call
// bytes.Buffer churn. -net-codec runs this phase alone — the CI smoke
// that gates bytes_per_envelope_binary <= 0.5 × gob.
var netCodecOnly = flag.Bool("net-codec", false, "run only the codec phase of -net (CI smoke), JSON on stdout")

// codecIters is sized so the slow side (gob, ~20 µs/op) still finishes
// in well under a second on a 1-vCPU runner.
const codecIters = 500

func runNetCodec(enc *json.Encoder) {
	samples := proto.Samples()

	var binBytes, gobBytes int
	binFrames := make([][]byte, len(samples))
	gobFrames := make([][]byte, len(samples))
	for i, e := range samples {
		binFrames[i] = proto.AppendEncode(nil, e)
		g, err := proto.EncodeGob(e)
		if err != nil {
			fatal(fmt.Errorf("codec bench: gob encode kind %s: %w", e.Type, err))
		}
		gobFrames[i] = g
		binBytes += len(binFrames[i])
		gobBytes += len(g)
	}

	ops := codecIters * len(samples)
	buf := make([]byte, 0, 4096)

	t0 := time.Now()
	for it := 0; it < codecIters; it++ {
		for _, e := range samples {
			buf = proto.AppendEncode(buf[:0], e)
		}
	}
	binEncNs := float64(time.Since(t0).Nanoseconds()) / float64(ops)

	t0 = time.Now()
	for it := 0; it < codecIters; it++ {
		for _, e := range samples {
			b, err := proto.AppendEncodeGob(buf[:0], e)
			if err != nil {
				fatal(err)
			}
			buf = b
		}
	}
	gobEncNs := float64(time.Since(t0).Nanoseconds()) / float64(ops)

	t0 = time.Now()
	for it := 0; it < codecIters; it++ {
		for _, f := range binFrames {
			if _, err := proto.Decode(f); err != nil {
				fatal(err)
			}
		}
	}
	binDecNs := float64(time.Since(t0).Nanoseconds()) / float64(ops)

	t0 = time.Now()
	for it := 0; it < codecIters; it++ {
		for _, f := range gobFrames {
			if _, err := proto.Decode(f); err != nil {
				fatal(err)
			}
		}
	}
	gobDecNs := float64(time.Since(t0).Nanoseconds()) / float64(ops)

	binPer := float64(binBytes) / float64(len(samples))
	gobPer := float64(gobBytes) / float64(len(samples))
	line := map[string]any{
		"bench":                     "net",
		"phase":                     "codec",
		"samples":                   len(samples),
		"iters":                     codecIters,
		"encode_ns_per_op_binary":   round3(binEncNs),
		"encode_ns_per_op_gob":      round3(gobEncNs),
		"decode_ns_per_op_binary":   round3(binDecNs),
		"decode_ns_per_op_gob":      round3(gobDecNs),
		"bytes_per_envelope_binary": round3(binPer),
		"bytes_per_envelope_gob":    round3(gobPer),
		"size_ratio_gob_vs_binary":  round3(gobPer / binPer),
		"encode_speedup_vs_gob":     round3(gobEncNs / binEncNs),
		"decode_speedup_vs_gob":     round3(gobDecNs / binDecNs),
		"unix_millis":               time.Now().UnixMilli(),
	}
	if err := enc.Encode(line); err != nil {
		fatal(err)
	}
	verdict := "MATCHES"
	if gobPer/binPer < 2 || gobEncNs/binEncNs < 3 {
		verdict = "DIVERGES"
	}
	fmt.Fprintf(os.Stderr,
		"# codec %s — binary vs gob: %.2fx smaller envelopes (want >= 2x), %.2fx faster encode (want >= 3x)\n",
		verdict, gobPer/binPer, gobEncNs/binEncNs)
}

// runNetCodecOnly is the -net-codec entry point: the codec phase alone.
func runNetCodecOnly() {
	runNetCodec(json.NewEncoder(os.Stdout))
}

// sumCounterPrefix totals every counter in the snapshot whose name
// starts with prefix — used to collapse the per-kind wire-byte books
// (node_wire_bytes_sent_<kind>_total) into one figure per run.
func sumCounterPrefix(snap metrics.Snapshot, prefix string) uint64 {
	var total uint64
	for name, v := range snap.Counters {
		if strings.HasPrefix(name, prefix) {
			total += v
		}
	}
	return total
}
