package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"voronet/internal/client"
	"voronet/internal/geom"
	"voronet/internal/metrics"
	"voronet/internal/node"
	"voronet/internal/proto"
	"voronet/internal/store"
	"voronet/internal/transport"
	"voronet/internal/workload"
)

// The -net mode measures the live message-passing node runtime end to
// end: a multi-peer loopback TCP topology (and, for contrast, the
// simnet) driving routed point queries and store GETs from concurrent
// clients, once under the legacy serial-dispatch transport (one global
// mutex, one Write syscall per frame) and once under the concurrent
// default (per-peer dispatch lanes, bounded worker pool, coalesced
// writes). One JSON line per (transport, dispatch) pair goes to stdout:
//
//	voronet-bench -net > BENCH_net.json
//	voronet-bench -net -net-nodes 16 -net-clients 64 -net-ops 8000
//
// The workload is identical across modes — same topology seed, same
// targets, same origins — so the hop totals must match exactly; the
// final summary line reports the throughput ratio and that hop check.
var (
	netBench   = flag.Bool("net", false, "run the live-runtime network benchmark, JSON lines on stdout")
	netNodes   = flag.Int("net-nodes", 12, "overlay size (-net)")
	netOps     = flag.Int("net-ops", 4000, "routed queries per phase (-net)")
	netClients = flag.Int("net-clients", 32, "concurrent client goroutines (-net)")
	netKeys    = flag.Int("net-keys", 64, "stored keys for the GET phase (-net)")
	netWorkers = flag.Int("net-workers", 8, "dispatch workers per endpoint in parallel mode (-net)")
	netSimnet  = flag.Bool("net-simnet", true, "also measure the simnet serial vs parallel drain (-net)")
	netMixVal  = flag.Int("net-mix-value-bytes", 128<<10, "background PUT value size of the mixed phase (-net)")
	netReps    = flag.Int("net-reps", 1, "repetitions per mode, best per phase kept (-net; noise control on busy hosts)")

	// The lookup-stack phase: the same overlay run once as the classic
	// single-path router and once with α-parallel speculation plus the
	// hot-region route cache, under a Zipf-skewed GET stream. The two
	// runs share every draw, so their hop books are directly comparable.
	netAlpha   = flag.Int("net-alpha", 3, "speculative probes per read in the tuned lookup-stack run (-net)")
	netCache   = flag.Int("net-route-cache", 256, "route-cache entries in the tuned lookup-stack run (-net)")
	netZipf    = flag.Float64("net-zipf", 1.1, "Zipf exponent of the lookup-stack key popularity (-net)")
	netPipeOps = flag.Int("net-pipe-ops", 400, "operations of the pipelined-vs-oneshot client phase (-net; oneshot dials per op, keep this modest)")
)

// netWorkload pins the randomness shared by every mode: node positions,
// query targets, per-op origins and stored keys.
type netWorkload struct {
	positions []geom.Point
	targets   []geom.Point
	origins   []int
	keys      []geom.Point
	getOrder  []int

	// The lookup-stack phase's Zipf-skewed stream: zipfKeys holds the
	// key set most-popular-first, zipfSeq the pre-drawn per-op keys —
	// pinned here so the baseline and tuned runs replay the same stream.
	zipfKeys []geom.Point
	zipfSeq  []geom.Point
}

func buildNetWorkload() *netWorkload {
	rng := rand.New(rand.NewSource(*seed))
	w := &netWorkload{}
	for i := 0; i < *netNodes; i++ {
		w.positions = append(w.positions, geom.Pt(rng.Float64(), rng.Float64()))
	}
	for i := 0; i < *netOps; i++ {
		w.targets = append(w.targets, geom.Pt(rng.Float64(), rng.Float64()))
		w.origins = append(w.origins, rng.Intn(*netNodes))
	}
	for i := 0; i < *netKeys; i++ {
		w.keys = append(w.keys, geom.Pt(rng.Float64(), rng.Float64()))
	}
	for i := 0; i < *netOps; i++ {
		w.getOrder = append(w.getOrder, rng.Intn(*netKeys))
	}
	z := workload.NewZipfKeys(*netZipf, *netKeys, rng)
	w.zipfKeys = z.Keys()
	for i := 0; i < *netOps; i++ {
		w.zipfSeq = append(w.zipfSeq, z.Next())
	}
	return w
}

// netWire selects the overlay's send codec for the next TCP run:
// "binary" (the default wire format) or "gob" (the legacy baseline the
// codec A/B phase reruns the mixed workload under).
var netWire = "binary"

func netNodeConfig(i int) node.Config {
	return node.Config{
		DMin: 0.05, LongLinks: 2, Seed: int64(i),
		GobWire: netWire == "gob",
		// Generous deadlines: a timed-out op would skew the hop totals the
		// modes are compared on.
		StoreTimeout: 60 * time.Second, QueryTimeout: 60 * time.Second,
	}
}

// netPhaseStats summarises one measured phase.
type netPhaseStats struct {
	wall      float64
	completed int
	timeouts  int
	sumHops   int
	bgOps     int // background PUTs completed during a mixed phase
	latencies []time.Duration
}

func (s *netPhaseStats) pct(q float64) float64 {
	if len(s.latencies) == 0 {
		return 0
	}
	i := int(q * float64(len(s.latencies)-1))
	return float64(s.latencies[i].Nanoseconds()) / 1e3
}

// runNetClients fans ops out over the client goroutines: op i runs
// one blocking operation via `do`, which returns the hop count (or
// node.HopsTimedOut).
func runNetClients(ops int, do func(i int) int) *netPhaseStats {
	st := &netPhaseStats{latencies: make([]time.Duration, ops)}
	hops := make([]int, ops)
	clients := *netClients
	if clients > ops {
		clients = ops
	}
	chunk := (ops + clients - 1) / clients
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < clients; c++ {
		lo, hi := c*chunk, (c+1)*chunk
		if hi > ops {
			hi = ops
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				t0 := time.Now()
				hops[i] = do(i)
				st.latencies[i] = time.Since(t0)
			}
		}(lo, hi)
	}
	wg.Wait()
	st.wall = time.Since(start).Seconds()
	for _, h := range hops {
		if h == node.HopsTimedOut {
			st.timeouts++
			continue
		}
		st.completed++
		st.sumHops += h
	}
	sort.Slice(st.latencies, func(i, j int) bool { return st.latencies[i] < st.latencies[j] })
	return st
}

// runNetTCP builds the loopback TCP overlay under the given dispatch mode
// and measures the query and GET phases. The returned snapshot merges
// every node's and endpoint's registry at teardown — frame counts, per-kind
// message totals, dispatch-wait and latency histograms for the whole run.
func runNetTCP(mode string, w *netWorkload) (query, get, mixed *netPhaseStats, snap metrics.Snapshot) {
	opts := transport.TCPOptions{DispatchWorkers: *netWorkers}
	if mode == "serial" {
		opts = transport.TCPOptions{SerialDispatch: true, NoCoalesce: true}
	}
	nodes := make([]*node.Node, 0, *netNodes)
	eps := make([]*transport.TCPEndpoint, 0, *netNodes)
	defer func() {
		for _, ep := range eps {
			ep.Close()
		}
	}()
	for i := 0; i < *netNodes; i++ {
		ep, err := transport.ListenTCPOptions("127.0.0.1:0", opts)
		if err != nil {
			fatal(err)
		}
		eps = append(eps, ep)
		nd := node.New(ep, w.positions[i], netNodeConfig(i))
		if i == 0 {
			if err := nd.Bootstrap(); err != nil {
				fatal(err)
			}
		} else {
			if err := nd.Join(nodes[0].Info().Addr); err != nil {
				fatal(err)
			}
			deadline := time.Now().Add(30 * time.Second)
			for !nd.Joined() {
				if time.Now().After(deadline) {
					fatal(fmt.Errorf("net bench: node %d failed to join", i))
				}
				time.Sleep(2 * time.Millisecond)
			}
		}
		nodes = append(nodes, nd)
	}
	time.Sleep(200 * time.Millisecond) // let maintenance gossip settle

	for i, k := range w.keys {
		if err := nodes[i%len(nodes)].PutSync(k, []byte(fmt.Sprintf("net-%04d", i))); err != nil {
			fatal(fmt.Errorf("net bench: seed put %d: %w", i, err))
		}
	}

	query = runNetClients(*netOps, func(i int) int {
		done := make(chan int, 1)
		if err := nodes[w.origins[i]].Query(w.targets[i], func(_ proto.NodeInfo, hops int) {
			done <- hops
		}); err != nil {
			return node.HopsTimedOut
		}
		return <-done
	})
	get = runNetClients(*netOps, func(i int) int {
		done := make(chan int, 1)
		if err := nodes[w.origins[i]].Get(w.keys[w.getOrder[i]], func(r store.Reply) {
			if r.Err != nil {
				done <- node.HopsTimedOut
				return
			}
			done <- r.Hops
		}); err != nil {
			return node.HopsTimedOut
		}
		return <-done
	})

	// Mixed phase: the query stream again, this time while background
	// writers continuously push large-value PUTs (each one a big frame to
	// decode plus R replica frames to fan out). Under serial dispatch a
	// node busy with one big frame stalls *every* peer's routing through
	// it — the head-of-line pathology the per-peer lanes remove.
	stop := make(chan struct{})
	var bgPuts atomic.Int64
	var bgWG sync.WaitGroup
	bigVal := make([]byte, *netMixVal)
	for b := 0; b < 4; b++ {
		bgWG.Add(1)
		go func(b int) {
			defer bgWG.Done()
			rng := rand.New(rand.NewSource(int64(500 + b)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := geom.Pt(rng.Float64(), rng.Float64())
				if err := nodes[b%len(nodes)].PutSync(k, bigVal); err == nil {
					bgPuts.Add(1)
				}
			}
		}(b)
	}
	mixed = runNetClients(*netOps, func(i int) int {
		done := make(chan int, 1)
		if err := nodes[w.origins[i]].Query(w.targets[i], func(_ proto.NodeInfo, hops int) {
			done <- hops
		}); err != nil {
			return node.HopsTimedOut
		}
		return <-done
	})
	close(stop)
	bgWG.Wait()
	mixed.bgOps = int(bgPuts.Load())
	for i := range nodes {
		snap.Merge(nodes[i].Metrics().Snapshot())
		snap.Merge(eps[i].Metrics().Snapshot())
	}
	return query, get, mixed, snap
}

// runNetSimnet measures the same workload over the in-memory bus: ops are
// enqueued, then a single Drain (serial or parallel) delivers the whole
// batch — the measured figure is drain throughput, the simulator's
// equivalent of dispatch throughput.
func runNetSimnet(mode string, w *netWorkload) (query *netPhaseStats, snap metrics.Snapshot) {
	bus := transport.NewBus()
	nodes := make([]*node.Node, 0, *netNodes)
	for i := 0; i < *netNodes; i++ {
		ep, err := bus.Attach(fmt.Sprintf("n%03d", i))
		if err != nil {
			fatal(err)
		}
		nd := node.New(ep, w.positions[i], netNodeConfig(i))
		if i == 0 {
			if err := nd.Bootstrap(); err != nil {
				fatal(err)
			}
		} else {
			if err := nd.Join(nodes[0].Info().Addr); err != nil {
				fatal(err)
			}
			bus.Drain()
			if !nd.Joined() {
				fatal(fmt.Errorf("net bench: simnet node %d failed to join", i))
			}
		}
		nodes = append(nodes, nd)
	}
	if mode == "parallel" {
		bus.SetParallelDelivery(*netWorkers)
	}

	st := &netPhaseStats{}
	// Pre-fill with the timeout sentinel: an answer lost in the drain must
	// count as unanswered, not as a 0-hop success inflating the figures.
	hops := make([]int, *netOps)
	for i := range hops {
		hops[i] = node.HopsTimedOut
	}
	var mu sync.Mutex
	start := time.Now()
	// Enqueue in windows of the client count and drain each window, so at
	// most `window` queries are in flight at once — the simnet analogue of
	// the TCP phases' bounded client pool. Enqueueing all ops before one
	// drain used to leave every query "in flight" for essentially the
	// whole drain, inflating the node_query_seconds sum to ops × drain
	// time (thousands of histogram-seconds from a sub-second run); with
	// the window, the sum reconciles with wall × inflight. Drain
	// throughput is unaffected: each drain delivers a full batch.
	window := *netClients
	if window <= 0 {
		window = 1
	}
	for lo := 0; lo < *netOps; lo += window {
		hi := lo + window
		if hi > *netOps {
			hi = *netOps
		}
		for i := lo; i < hi; i++ {
			i := i
			if err := nodes[w.origins[i]].Query(w.targets[i], func(_ proto.NodeInfo, h int) {
				mu.Lock()
				hops[i] = h
				mu.Unlock()
			}); err != nil {
				fatal(err)
			}
		}
		bus.Drain()
	}
	st.wall = time.Since(start).Seconds()
	for _, h := range hops {
		if h == node.HopsTimedOut {
			st.timeouts++
			continue
		}
		st.completed++
		st.sumHops += h
	}
	snap = bus.MetricsSnapshot()
	for _, nd := range nodes {
		snap.Merge(nd.Metrics().Snapshot())
	}
	return st, snap
}

// runNetLookupStack measures the low-latency lookup stack end to end: a
// loopback TCP overlay whose nodes run with the given speculative fan-out
// and route-cache size, driven by the pinned Zipf-skewed GET stream. The
// baseline (alpha=1, cache=0) and tuned runs replay identical draws, so
// p99 and first-byte hops are directly comparable; correctness is checked
// op by op (every GET must return the seeded value).
func runNetLookupStack(alpha, cacheSize int, w *netWorkload) (get *netPhaseStats, snap metrics.Snapshot) {
	opts := transport.TCPOptions{DispatchWorkers: *netWorkers}
	nodes := make([]*node.Node, 0, *netNodes)
	eps := make([]*transport.TCPEndpoint, 0, *netNodes)
	defer func() {
		for _, ep := range eps {
			ep.Close()
		}
	}()
	for i := 0; i < *netNodes; i++ {
		ep, err := transport.ListenTCPOptions("127.0.0.1:0", opts)
		if err != nil {
			fatal(err)
		}
		eps = append(eps, ep)
		cfg := netNodeConfig(i)
		cfg.Alpha = alpha
		cfg.RouteCacheSize = cacheSize
		nd := node.New(ep, w.positions[i], cfg)
		if i == 0 {
			if err := nd.Bootstrap(); err != nil {
				fatal(err)
			}
		} else {
			if err := nd.Join(nodes[0].Info().Addr); err != nil {
				fatal(err)
			}
			deadline := time.Now().Add(30 * time.Second)
			for !nd.Joined() {
				if time.Now().After(deadline) {
					fatal(fmt.Errorf("net bench: lookup node %d failed to join", i))
				}
				time.Sleep(2 * time.Millisecond)
			}
		}
		nodes = append(nodes, nd)
	}
	time.Sleep(200 * time.Millisecond)

	for i, k := range w.zipfKeys {
		if err := nodes[i%len(nodes)].PutSync(k, []byte(fmt.Sprintf("zipf-%04d", i))); err != nil {
			fatal(fmt.Errorf("net bench: zipf seed put %d: %w", i, err))
		}
	}
	var wrong atomic.Int64
	get = runNetClients(len(w.zipfSeq), func(i int) int {
		done := make(chan int, 1)
		if err := nodes[w.origins[i]].Get(w.zipfSeq[i], func(r store.Reply) {
			if r.Err != nil {
				done <- node.HopsTimedOut
				return
			}
			if !r.Found {
				wrong.Add(1)
			}
			done <- r.Hops
		}); err != nil {
			return node.HopsTimedOut
		}
		return <-done
	})
	if wrong.Load() > 0 {
		fatal(fmt.Errorf("net bench: %d Zipf GETs missed a seeded key (alpha=%d cache=%d)", wrong.Load(), alpha, cacheSize))
	}
	for i := range nodes {
		snap.Merge(nodes[i].Metrics().Snapshot())
		snap.Merge(eps[i].Metrics().Snapshot())
	}
	return get, snap
}

// runNetClientBench compares the pipelined client library against the
// dial-per-operation pattern it replaces: the same GET stream against the
// same overlay, once through one multiplexed client.Client shared by all
// goroutines, once with a fresh client (fresh listener, fresh connection)
// per operation.
func runNetClientBench(w *netWorkload) (pipe, oneshot *netPhaseStats) {
	opts := transport.TCPOptions{DispatchWorkers: *netWorkers}
	nodes := make([]*node.Node, 0, *netNodes)
	eps := make([]*transport.TCPEndpoint, 0, *netNodes)
	defer func() {
		for _, ep := range eps {
			ep.Close()
		}
	}()
	for i := 0; i < *netNodes; i++ {
		ep, err := transport.ListenTCPOptions("127.0.0.1:0", opts)
		if err != nil {
			fatal(err)
		}
		eps = append(eps, ep)
		nd := node.New(ep, w.positions[i], netNodeConfig(i))
		if i == 0 {
			if err := nd.Bootstrap(); err != nil {
				fatal(err)
			}
		} else {
			if err := nd.Join(nodes[0].Info().Addr); err != nil {
				fatal(err)
			}
			deadline := time.Now().Add(30 * time.Second)
			for !nd.Joined() {
				if time.Now().After(deadline) {
					fatal(fmt.Errorf("net bench: client-phase node %d failed to join", i))
				}
				time.Sleep(2 * time.Millisecond)
			}
		}
		nodes = append(nodes, nd)
	}
	time.Sleep(200 * time.Millisecond)
	for i, k := range w.keys {
		if err := nodes[i%len(nodes)].PutSync(k, []byte(fmt.Sprintf("net-%04d", i))); err != nil {
			fatal(fmt.Errorf("net bench: client-phase seed put %d: %w", i, err))
		}
	}

	ops := *netPipeOps
	if ops > len(w.getOrder) {
		ops = len(w.getOrder)
	}
	gateway := nodes[0].Info().Addr

	cl, err := client.Dial(gateway, client.Options{Timeout: 60 * time.Second})
	if err != nil {
		fatal(err)
	}
	pipe = runNetClients(ops, func(i int) int {
		done := make(chan int, 1)
		if err := cl.Get(w.keys[w.getOrder[i]], func(r store.Reply) {
			if r.Err != nil {
				done <- node.HopsTimedOut
				return
			}
			done <- r.Hops
		}); err != nil {
			return node.HopsTimedOut
		}
		return <-done
	})
	cl.Close()

	oneshot = runNetClients(ops, func(i int) int {
		c, err := client.Dial(gateway, client.Options{Timeout: 60 * time.Second})
		if err != nil {
			return node.HopsTimedOut
		}
		defer c.Close()
		done := make(chan int, 1)
		if err := c.Get(w.keys[w.getOrder[i]], func(r store.Reply) {
			if r.Err != nil {
				done <- node.HopsTimedOut
				return
			}
			done <- r.Hops
		}); err != nil {
			return node.HopsTimedOut
		}
		return <-done
	})
	return pipe, oneshot
}

// runNetBench drives both transports under both dispatch modes and
// prints one JSON line each, plus a summary line with the speedup and
// the hop-identity check the acceptance criteria name.
func runNetBench() {
	w := buildNetWorkload()
	enc := json.NewEncoder(os.Stdout)
	runNetCodec(enc) // the off-network codec microphase leads the file
	type result struct {
		query, get, mixed *netPhaseStats
	}
	tcp := map[string]result{}
	better := func(a, b *netPhaseStats) *netPhaseStats {
		if a == nil || float64(b.completed)/b.wall > float64(a.completed)/a.wall {
			return b
		}
		return a
	}
	// The codec A/B leg: besides serial vs parallel dispatch (both on the
	// binary wire), the parallel mode runs once more under the legacy gob
	// codec — same topology, same draws — so the wire-byte books and
	// mixed-load throughput isolate the codec's contribution.
	wireBytes := map[string]uint64{}
	for _, run := range []struct{ mode, wire string }{
		{"serial", "binary"}, {"parallel", "binary"}, {"parallel", "gob"},
	} {
		mode := run.mode
		netWire = run.wire
		var q, g, m *netPhaseStats
		var snap metrics.Snapshot
		for rep := 0; rep < max(*netReps, 1); rep++ {
			rq, rg, rm, rs := runNetTCP(mode, w)
			q, g, m = better(q, rq), better(g, rg), better(m, rm)
			snap = rs // keep the last rep's books; phases keep their best
		}
		netWire = "binary"
		if run.wire == "binary" {
			tcp[mode] = result{query: q, get: g, mixed: m}
		} else {
			tcp["parallel-gob"] = result{query: q, get: g, mixed: m}
		}
		wireBytes[mode+"-"+run.wire] = sumCounterPrefix(snap, "node_wire_bytes_sent_")
		line := map[string]any{
			"bench":                 "net",
			"transport":             "tcp",
			"dispatch":              mode,
			"wire":                  run.wire,
			"wire_bytes_sent_total": wireBytes[mode+"-"+run.wire],
			"nodes":                 *netNodes,
			"clients":               *netClients,
			"ops":                   *netOps,
			"seed":                  *seed,
			"gomaxprocs":            runtime.GOMAXPROCS(0),
			"query_qps":             round3(float64(q.completed) / q.wall),
			"routed_msgs_per_sec":   round3(float64(q.sumHops+q.completed) / q.wall),
			"query_mean_hops":       round3(float64(q.sumHops) / float64(max(q.completed, 1))),
			"query_sum_hops":        q.sumHops,
			"query_timeouts":        q.timeouts,
			"query_p50_us":          round3(q.pct(0.50)),
			"query_p95_us":          round3(q.pct(0.95)),
			"query_p99_us":          round3(q.pct(0.99)),
			"get_ops_per_sec":       round3(float64(g.completed) / g.wall),
			"get_sum_hops":          g.sumHops,
			"get_timeouts":          g.timeouts,
			"get_p50_us":            round3(g.pct(0.50)),
			"get_p95_us":            round3(g.pct(0.95)),
			"get_p99_us":            round3(g.pct(0.99)),
			"mixed_query_qps":       round3(float64(m.completed) / m.wall),
			"mixed_bg_put_bytes":    *netMixVal,
			"mixed_bg_puts":         m.bgOps,
			"mixed_timeouts":        m.timeouts,
			"mixed_p50_us":          round3(m.pct(0.50)),
			"mixed_p95_us":          round3(m.pct(0.95)),
			"mixed_p99_us":          round3(m.pct(0.99)),
			"metrics":               snap,
			"unix_millis":           time.Now().UnixMilli(),
		}
		if err := enc.Encode(line); err != nil {
			fatal(err)
		}
	}
	if *netSimnet {
		for _, mode := range []string{"serial", "parallel"} {
			q, snap := runNetSimnet(mode, w)
			line := map[string]any{
				"bench":               "net",
				"transport":           "simnet",
				"dispatch":            mode,
				"nodes":               *netNodes,
				"ops":                 *netOps,
				"seed":                *seed,
				"gomaxprocs":          runtime.GOMAXPROCS(0),
				"drain_qps":           round3(float64(q.completed) / q.wall),
				"routed_msgs_per_sec": round3(float64(q.sumHops+q.completed) / q.wall),
				"query_mean_hops":     round3(float64(q.sumHops) / float64(max(q.completed, 1))),
				"query_sum_hops":      q.sumHops,
				"query_timeouts":      q.timeouts,
				// Reconciliation: with at most inflight_window queries in
				// flight, query_seconds_sum is bounded by wall × window.
				"inflight_window":   *netClients,
				"wall_seconds":      round3(q.wall),
				"query_seconds_sum": round3(snap.Histograms["node_query_seconds"].Sum),
				"metrics":           snap,
				"unix_millis":       time.Now().UnixMilli(),
			}
			if err := enc.Encode(line); err != nil {
				fatal(err)
			}
		}
	}
	// Lookup stack: baseline greedy (alpha=1, no cache) vs the tuned stack
	// (-net-alpha speculative probes + -net-route-cache hot-region cache)
	// over an identical Zipf-skewed GET stream.
	lookupLine := func(label string, alpha, cacheSize int, st *netPhaseStats, snap metrics.Snapshot) map[string]any {
		fb := snap.Histograms["node_first_byte_hops"]
		hits := snap.Counters["node_cache_hits_total"]
		misses := snap.Counters["node_cache_misses_total"]
		hitRate := 0.0
		if hits+misses > 0 {
			hitRate = float64(hits) / float64(hits+misses)
		}
		return map[string]any{
			"bench":                "net",
			"phase":                "lookup",
			"config":               label,
			"alpha":                alpha,
			"route_cache":          cacheSize,
			"zipf_s":               *netZipf,
			"nodes":                *netNodes,
			"clients":              *netClients,
			"ops":                  *netOps,
			"seed":                 *seed,
			"get_ops_per_sec":      round3(float64(st.completed) / st.wall),
			"get_sum_hops":         st.sumHops,
			"get_mean_hops":        round3(float64(st.sumHops) / float64(max(st.completed, 1))),
			"get_timeouts":         st.timeouts,
			"get_p50_us":           round3(st.pct(0.50)),
			"get_p95_us":           round3(st.pct(0.95)),
			"get_p99_us":           round3(st.pct(0.99)),
			"first_byte_mean_hops": round3(fb.Sum / float64(max(int(fb.Count), 1))),
			"cache_hits":           hits,
			"cache_misses":         misses,
			"cache_hit_rate":       round3(hitRate),
			"cache_invalidations":  snap.Counters["node_cache_invalidations_total"],
			"probes_wasted":        snap.Counters["node_probe_wasted_total"],
			"unix_millis":          time.Now().UnixMilli(),
		}
	}
	// Same best-of-netReps noise control as the TCP phases: latency
	// percentiles on a busy host swing more than the deterministic hop
	// books do, so each config keeps its best rep.
	lookupReps := func(alpha, cacheSize int) (*netPhaseStats, metrics.Snapshot) {
		var st *netPhaseStats
		var snap metrics.Snapshot
		for rep := 0; rep < max(*netReps, 1); rep++ {
			rs, rsnap := runNetLookupStack(alpha, cacheSize, w)
			if prev := st; prev == nil || better(prev, rs) == rs {
				st, snap = rs, rsnap
			}
		}
		return st, snap
	}
	baseGet, baseSnap := lookupReps(1, 0)
	if err := enc.Encode(lookupLine("baseline", 1, 0, baseGet, baseSnap)); err != nil {
		fatal(err)
	}
	tunedGet, tunedSnap := lookupReps(*netAlpha, *netCache)
	if err := enc.Encode(lookupLine("tuned", *netAlpha, *netCache, tunedGet, tunedSnap)); err != nil {
		fatal(err)
	}
	baseFB := baseSnap.Histograms["node_first_byte_hops"]
	tunedFB := tunedSnap.Histograms["node_first_byte_hops"]
	lookupSummary := map[string]any{
		"bench":                    "net",
		"phase":                    "lookup",
		"summary":                  true,
		"alpha":                    *netAlpha,
		"route_cache":              *netCache,
		"zipf_s":                   *netZipf,
		"p99_ratio_tuned_vs_base":  round3(tunedGet.pct(0.99) / baseGet.pct(0.99)),
		"first_byte_hops_baseline": round3(baseFB.Sum / float64(max(int(baseFB.Count), 1))),
		"first_byte_hops_tuned":    round3(tunedFB.Sum / float64(max(int(tunedFB.Count), 1))),
		"cache_hit_rate_tuned":     round3(float64(tunedSnap.Counters["node_cache_hits_total"]) / float64(max(int(tunedSnap.Counters["node_cache_hits_total"]+tunedSnap.Counters["node_cache_misses_total"]), 1))),
	}
	if err := enc.Encode(lookupSummary); err != nil {
		fatal(err)
	}

	// Pipelined client vs dial-per-operation, same overlay and key stream.
	pipe, oneshot := runNetClientBench(w)
	clientLine := func(mode string, st *netPhaseStats) map[string]any {
		return map[string]any{
			"bench":           "net",
			"phase":           "client",
			"mode":            mode,
			"nodes":           *netNodes,
			"clients":         *netClients,
			"ops":             st.completed + st.timeouts,
			"seed":            *seed,
			"get_ops_per_sec": round3(float64(st.completed) / st.wall),
			"get_timeouts":    st.timeouts,
			"get_p50_us":      round3(st.pct(0.50)),
			"get_p95_us":      round3(st.pct(0.95)),
			"get_p99_us":      round3(st.pct(0.99)),
			"unix_millis":     time.Now().UnixMilli(),
		}
	}
	if err := enc.Encode(clientLine("pipelined", pipe)); err != nil {
		fatal(err)
	}
	if err := enc.Encode(clientLine("oneshot", oneshot)); err != nil {
		fatal(err)
	}
	clientSummary := map[string]any{
		"bench":   "net",
		"phase":   "client",
		"summary": true,
		"pipelined_throughput_ratio": round3((float64(pipe.completed) / pipe.wall) /
			(float64(oneshot.completed) / oneshot.wall)),
	}
	if err := enc.Encode(clientSummary); err != nil {
		fatal(err)
	}

	ser, par := tcp["serial"], tcp["parallel"]
	speedup := (float64(par.query.sumHops+par.query.completed) / par.query.wall) /
		(float64(ser.query.sumHops+ser.query.completed) / ser.query.wall)
	summary := map[string]any{
		"bench":            "net",
		"transport":        "tcp",
		"summary":          true,
		"throughput_ratio": round3(speedup),
		"get_ratio":        round3((float64(par.get.completed) / par.get.wall) / (float64(ser.get.completed) / ser.get.wall)),
		"mixed_qps_ratio":  round3((float64(par.mixed.completed) / par.mixed.wall) / (float64(ser.mixed.completed) / ser.mixed.wall)),
		// Parallel-dispatch tail degradation under mixed load: parallel p99
		// over serial p99. The bounded coalesce window keeps this <= 1.2.
		"mixed_p99_ratio":   round3(par.mixed.pct(0.99) / ser.mixed.pct(0.99)),
		"hops_identical":    ser.query.sumHops == par.query.sumHops && ser.get.sumHops == par.get.sumHops,
		"serial_sum_hops":   ser.query.sumHops,
		"parallel_sum_hops": par.query.sumHops,
	}
	if err := enc.Encode(summary); err != nil {
		fatal(err)
	}
	verdictStderr := "MATCHES"
	if speedup < 2 {
		verdictStderr = "DIVERGES"
	}
	fmt.Fprintf(os.Stderr, "# net %s — parallel dispatch vs serial baseline: %.2fx routed throughput (want >= 2x)\n",
		verdictStderr, speedup)

	// Codec A/B summary: parallel dispatch, binary vs gob wire. The hop
	// identity check matters here too — a codec must change bytes and
	// nanoseconds, never routing.
	parGob := tcp["parallel-gob"]
	wireRatio := 0.0
	if wireBytes["parallel-binary"] > 0 {
		wireRatio = float64(wireBytes["parallel-gob"]) / float64(wireBytes["parallel-binary"])
	}
	codecSummary := map[string]any{
		"bench":                      "net",
		"phase":                      "codec_ab",
		"summary":                    true,
		"wire_bytes_binary":          wireBytes["parallel-binary"],
		"wire_bytes_gob":             wireBytes["parallel-gob"],
		"wire_bytes_ratio_gob":       round3(wireRatio),
		"mixed_qps_ratio_vs_gob":     round3((float64(par.mixed.completed) / par.mixed.wall) / (float64(parGob.mixed.completed) / parGob.mixed.wall)),
		"query_qps_ratio_vs_gob":     round3((float64(par.query.completed) / par.query.wall) / (float64(parGob.query.completed) / parGob.query.wall)),
		"hops_identical_across_wire": par.query.sumHops == parGob.query.sumHops && par.get.sumHops == parGob.get.sumHops,
	}
	if err := enc.Encode(codecSummary); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "# codec A/B — binary vs gob wire under parallel dispatch: %.2fx fewer bytes on the wire\n", wireRatio)
}
