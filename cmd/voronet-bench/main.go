// voronet-bench regenerates the figures of the VoroNet paper's evaluation
// (§5) and prints their data as TSV, plus a one-line verdict per figure
// comparing the measured shape with the paper's claims.
//
// Usage:
//
//	voronet-bench -fig 5 [-n 300000]
//	voronet-bench -fig 6 [-n 300000] [-checkpoint 10000] [-samples 2000]
//	voronet-bench -fig 7 ...            (fits the Fig 6 series)
//	voronet-bench -fig 8 [-kmax 10] ...
//	voronet-bench -fig all              (everything, paper-scale defaults)
//	voronet-bench -ablate               (A1-A4 ablation studies)
//	voronet-bench -chaos                (chaos scenario battery, JSON lines)
//
// The paper's runs use 300 000 objects and 100 000 route samples per
// checkpoint; means converge far earlier, so -samples defaults to 2000.
// Routing measurements exclude close neighbours from the greedy candidate
// set by default (-cn=false), which is the measurement the paper's Fig 6
// curves are consistent with — see EXPERIMENTS.md; pass -cn to include
// them.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"runtime/pprof"

	"voronet"
	"voronet/internal/harness"
	"voronet/internal/kleinberg"
	"voronet/internal/metrics"
	"voronet/internal/sim"
	"voronet/internal/stats"
	"voronet/internal/workload"
)

var (
	fig          = flag.String("fig", "all", "figure to regenerate: 5, 6, 7, 8 or all")
	n            = flag.Int("n", 300000, "overlay size")
	checkpoint   = flag.Int("checkpoint", 10000, "growth step between measurements (figs 6-8)")
	samples      = flag.Int("samples", 2000, "route samples per checkpoint")
	kmax         = flag.Int("kmax", 10, "maximum long-link count (fig 8)")
	seed         = flag.Int64("seed", 20070326, "base RNG seed")
	useCN        = flag.Bool("cn", false, "include close neighbours as routing shortcuts")
	ablate       = flag.Bool("ablate", false, "run the ablation studies (A1-A4)")
	maint        = flag.Bool("maintenance", false, "measure per-operation management costs across sizes")
	storeBench   = flag.Bool("store", false, "measure object-store Put/Get throughput, one JSON line on stdout")
	buildWorkers = flag.Int("build-workers", 0, "construct the overlay with parallel bulk loading at this many workers (-store; 0 = serial incremental inserts)")
	storeOps     = flag.Int("store-ops", 20000, "operations per store phase (-store)")
	storeRep     = flag.Int("store-rep", 0, "store replication factor R (-store; 0 = default)")
	workers      = flag.Int("workers", 1, "concurrent store workers (-store)")
	storeGetFrac = flag.Float64("store-get-frac", 0.5, "GET fraction of the mixed phase (-store)")
	storeZipf    = flag.Float64("store-zipf", 0, "key skew: 0 = distinct uniform keys, >0 = Zipf(α) popularity over -store-keys hot keys (-store)")
	storeKeys    = flag.Int("store-keys", 1024, "distinct keys under -store-zipf")
	storeFictive = flag.Bool("store-fictive", false, "resolve owners via the paper's fictive insert/remove dance (serial paper-fidelity mode)")
	storeCache   = flag.Int("store-cache", 0, "hot-region owner cache entries on the store (-store; 0 disables)")
	chaosMode    = flag.Bool("chaos", false, "run the chaos scenario battery, one JSON line per scenario on stdout")
	chaosName    = flag.String("scenario", "", "run only the named chaos scenario (-chaos)")
	chaosSeed    = flag.Int64("chaos-seed", 0, "offset added to every scenario seed (-chaos)")
	storeMetrics = flag.Bool("store-metrics", true, "attach a metrics registry to the store (-store); =false measures the instrumentation-off baseline")
	cpuProfile   = flag.String("cpuprofile", "", "write a CPU profile of the whole run to this file")
)

func main() {
	flag.Parse()
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	start := time.Now()
	switch {
	case *netCodecOnly:
		runNetCodecOnly()
		return
	case *netBench:
		runNetBench()
		return
	case *chaosMode:
		runChaos()
		return
	case *storeBench:
		runStoreBench()
		return
	case *ablate:
		runAblations()
	case *maint:
		runMaintenance()
	default:
		switch *fig {
		case "5":
			fig5()
		case "6":
			fig6()
		case "7":
			fig7()
		case "8":
			fig8()
		case "all":
			fig5()
			fig6()
			fig7()
			fig8()
		default:
			fmt.Fprintf(os.Stderr, "unknown figure %q\n", *fig)
			os.Exit(2)
		}
	}
	fmt.Printf("\n# total wall time: %v\n", time.Since(start).Round(time.Millisecond))
}

func fig5() {
	fmt.Println("### Figure 5: distribution of |vn(o)| (out-degree)")
	for _, dist := range sim.Fig5Distributions {
		h, err := sim.DegreeExperiment{N: *n, Distribution: dist, Seed: *seed}.Run()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\n# %s, N=%d\n", dist, *n)
		fmt.Print(h.String())
		mode, _ := h.Mode()
		fmt.Printf("# mode=%d mean=%.3f mass[3,9]=%.3f\n", mode, h.Mean(), h.MassIn(3, 9))
		verdict("Fig5/"+dist, mode >= 5 && mode <= 7 && h.MassIn(3, 9) > 0.9,
			"degree distribution centred on 6, independent of the distribution")
	}
}

func routeSeries() map[string][]sim.RoutePoint {
	out := map[string][]sim.RoutePoint{}
	for _, dist := range sim.Fig6Distributions {
		pts, err := sim.RouteExperiment{
			MaxN: *n, Checkpoint: *checkpoint, Samples: *samples,
			Distribution: dist, DisableCloseNeighbours: !*useCN, Seed: *seed,
		}.Run()
		if err != nil {
			fatal(err)
		}
		out[dist] = pts
	}
	return out
}

func fig6() {
	fmt.Println("### Figure 6: mean route length vs overlay size")
	series := routeSeries()
	for _, dist := range sim.Fig6Distributions {
		fmt.Println()
		if err := sim.WriteSeries(os.Stdout, dist, series[dist]); err != nil {
			fatal(err)
		}
	}
	last := func(d string) float64 { return series[d][len(series[d])-1].MeanHops }
	u := last("uniform")
	ok := true
	for _, d := range sim.Fig6Distributions {
		if last(d) > 2.5*u || u > 2.5*last(d) {
			ok = false
		}
	}
	verdict("Fig6", ok, "poly-logarithmic growth, insensitive to the distribution")
}

func fig7() {
	fmt.Println("### Figure 7: log(H) vs log(log(N)) slope (expected ~2)")
	series := routeSeries()
	for _, dist := range sim.Fig6Distributions {
		fit := sim.FitPolylog(series[dist])
		fmt.Printf("%s\tslope=%.3f\tintercept=%.3f\tR2=%.4f\n", dist, fit.Slope, fit.Intercept, fit.R2)
		verdict("Fig7/"+dist, fit.Slope > 1.0 && fit.Slope < 3.0,
			"routing cost is poly-logarithmic with exponent near 2")
	}
}

func fig8() {
	fmt.Println("### Figure 8: influence of the number of long-range links")
	// The paper's figure has two panels: uniform and sparse α=5.
	for _, dist := range sim.Fig5Distributions {
		finals := make([]float64, 0, *kmax)
		for k := 1; k <= *kmax; k++ {
			pts, err := sim.RouteExperiment{
				MaxN: *n, Checkpoint: *checkpoint, Samples: *samples,
				Distribution: dist, LongLinks: k,
				DisableCloseNeighbours: !*useCN, Seed: *seed,
			}.Run()
			if err != nil {
				fatal(err)
			}
			fmt.Println()
			if err := sim.WriteSeries(os.Stdout, fmt.Sprintf("%s k=%d", dist, k), pts); err != nil {
				fatal(err)
			}
			finals = append(finals, pts[len(pts)-1].MeanHops)
		}
		improving := finals[len(finals)-1] < finals[0]
		verdict("Fig8/"+dist, improving, "more long links consistently improve routing")
		if len(finals) >= 6 {
			gainEarly := finals[0] - finals[5]
			gainLate := finals[5] - finals[len(finals)-1]
			verdict("Fig8/"+dist+"/knee", gainEarly > gainLate,
				"impact most significant up to ~6 long links")
		}
	}
}

func runAblations() {
	fmt.Println("### Ablations (DESIGN.md A1-A4)")
	run := func(label string, e sim.RouteExperiment) float64 {
		pts, err := e.Run()
		if err != nil {
			fatal(err)
		}
		h := pts[len(pts)-1].MeanHops
		fmt.Printf("%-28s N=%-8d hops=%.2f\n", label, pts[len(pts)-1].N, h)
		return h
	}
	base := sim.RouteExperiment{MaxN: *n, Samples: *samples, Seed: *seed}

	// A1: close neighbours on skewed data.
	a := base
	a.Distribution = "alpha5"
	withCN := run("A1 alpha5 with cn", a)
	a.DisableCloseNeighbours = true
	noCN := run("A1 alpha5 without cn", a)
	verdict("A1", withCN <= noCN, "cn shortcuts never hurt; they collapse intra-cluster routes")

	// A2: long links.
	b := base
	b.Distribution = "uniform"
	b.DisableCloseNeighbours = true
	withLL := run("A2 uniform with LR", b)
	b.DisableLongLinks = true
	noLL := run("A2 uniform without LR", b)
	verdict("A2", withLL < noLL/2, "long links are what makes routing poly-logarithmic")

	// A3: exponent sweep. s=0.01 stands in for the area-uniform s=0
	// regime (the Config zero value selects the paper default s=2).
	fmt.Println("A3 long-link exponent sweep:")
	hs := map[float64]float64{}
	for _, s := range []float64{0.01, 1, 2, 3} {
		c := base
		c.Distribution = "uniform"
		c.DisableCloseNeighbours = true
		c.LongLinkExponent = s
		hs[s] = run(fmt.Sprintf("   s=%g", s), c)
	}
	verdict("A3", hs[2] < hs[3], "s=2 beats short-link regimes (s>=3); at finite sizes s<2 can tie")

	// A4: Kleinberg grid baseline.
	rng := rand.New(rand.NewSource(*seed))
	side := 1
	for side*side < *n {
		side++
	}
	if side > 550 {
		side = 550
	}
	g := kleinberg.New(side, 1, 2, rng)
	m, err := g.MeanRouteLength(*samples, rng)
	if err != nil {
		fatal(err)
	}
	var agg stats.Running
	agg.Add(m)
	fmt.Printf("%-28s N=%-8d hops=%.2f\n", "A4 kleinberg grid s=2", g.Nodes(), m)
	verdict("A4", m > 1, "the grid baseline VoroNet generalises routes in O(log^2 n)")
}

// storePhaseStats summarises one benchmark phase: throughput, mean hops
// and client-observed latency percentiles.
type storePhaseStats struct {
	opsPerSec float64
	meanHops  float64
	p50us     float64
	p95us     float64
	p99us     float64
}

// benchWorkers resolves the -workers flag: like Store.Do and
// MeasureRoutes, 0 (or negative) selects GOMAXPROCS.
func benchWorkers() int {
	if *workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return *workers
}

// runStorePhase executes ops across the configured workers, timing each
// operation. Each worker routes from its own origin object through its own
// pooled Router (the Store handles per-goroutine state internally).
func runStorePhase(st *voronet.Store, origins []voronet.ObjectID, ops []voronet.StoreOp) storePhaseStats {
	if len(ops) == 0 {
		return storePhaseStats{}
	}
	lat := make([]time.Duration, len(ops))
	hops := make([]int, len(ops))
	w := benchWorkers()
	if w > len(ops) {
		w = len(ops)
	}
	chunk := (len(ops) + w - 1) / w
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < w; i++ {
		lo, hi := i*chunk, (i+1)*chunk
		if hi > len(ops) {
			hi = len(ops)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(worker, lo, hi int) {
			defer wg.Done()
			from := origins[worker%len(origins)]
			for j := lo; j < hi; j++ {
				op := ops[j]
				t0 := time.Now()
				var h int
				var err error
				switch op.Kind {
				case voronet.OpPut:
					_, h, err = st.Put(from, op.Key, op.Value)
				case voronet.OpGet:
					_, h, err = st.Get(from, op.Key)
				case voronet.OpDelete:
					h, err = st.Delete(from, op.Key)
				}
				lat[j] = time.Since(t0)
				hops[j] = h
				if err != nil && !errors.Is(err, voronet.ErrKeyNotFound) {
					fatal(err)
				}
			}
		}(i, lo, hi)
	}
	wg.Wait()
	wall := time.Since(start).Seconds()

	totalHops := 0
	for _, h := range hops {
		totalHops += h
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	pct := func(q float64) float64 {
		i := int(q * float64(len(lat)-1))
		return float64(lat[i].Nanoseconds()) / 1e3
	}
	return storePhaseStats{
		opsPerSec: float64(len(ops)) / wall,
		meanHops:  float64(totalHops) / float64(len(ops)),
		p50us:     pct(0.50),
		p95us:     pct(0.95),
		p99us:     pct(0.99),
	}
}

// runStoreBench measures object-store Put/Get throughput on the simulator
// mirror and prints one JSON line, machine-readable so successive PRs can
// track a BENCH_store.json trajectory:
//
//	voronet-bench -store -n 50000 -store-ops 20000 >> BENCH_store.json
//	voronet-bench -store -n 50000 -workers 8 -store-zipf 1.1 >> BENCH_store.json
//
// Three phases run: a pure PUT load, a pure GET load over the same keys,
// and a mixed phase at -store-get-frac. Keys are distinct uniform points
// by default; -store-zipf draws them with Zipf popularity from a fixed hot
// set, the classic cache-hostile skew. -store-fictive switches owner
// resolution to the paper's fictive insert/remove dance (Algorithm 4
// literally), which is the serial paper-fidelity cost model the
// pre-concurrency baselines in BENCH_store.json were measured under.
func runStoreBench() {
	rng := rand.New(rand.NewSource(*seed))
	src := workload.ByName("uniform", rng)
	ov := voronet.New(voronet.Config{NMax: *n, Seed: *seed + 1, FictiveQueries: *storeFictive})
	buildStart := time.Now()
	if *buildWorkers > 0 {
		// Parallel bulk construction (internal/core/bulkload.go): same
		// final overlay for any worker count, so the build_objs_per_sec
		// trajectory is comparable across machines and worker settings.
		pts := make([]voronet.Point, *n)
		for i := range pts {
			pts[i] = src.Next()
		}
		if _, err := ov.BulkLoad(pts, *buildWorkers); err != nil {
			fatal(err)
		}
	} else {
		for ov.Len() < *n {
			if _, err := ov.Insert(src.Next()); err != nil && !errors.Is(err, voronet.ErrDuplicate) {
				fatal(err)
			}
		}
	}
	buildSecs := time.Since(buildStart).Seconds()

	st := voronet.NewStore(ov, *storeRep)
	if *storeCache > 0 {
		// The simulator mirror of the distributed route cache: Zipf
		// workloads (-store-zipf) are where it earns its keep.
		st.SetRouteCache(*storeCache)
	}
	// The registry is optional so the same binary measures both sides of
	// the instrumentation overhead budget (-store-metrics=false is the
	// baseline the <5% criterion in DESIGN.md compares against).
	var reg *metrics.Registry
	if *storeMetrics {
		reg = metrics.NewRegistry()
		st.SetMetrics(reg)
	}
	origins := make([]voronet.ObjectID, benchWorkers())
	for i := range origins {
		id, err := ov.RandomObject(rng)
		if err != nil {
			fatal(err)
		}
		origins[i] = id
	}
	payload := []byte("voronet-store-benchmark-payload-0123456789")

	// The key stream: distinct uniform points, or Zipf-popular draws from
	// a fixed hot set. Pre-generated so the timed loops measure the store,
	// not the RNG, and so worker splits are reproducible.
	var keySource func() voronet.Point
	if *storeZipf > 0 {
		z := workload.NewZipfKeys(*storeZipf, *storeKeys, rng)
		keySource = z.Next
	} else {
		keySource = src.Next
	}
	putOps := make([]voronet.StoreOp, *storeOps)
	for i := range putOps {
		putOps[i] = voronet.StoreOp{Kind: voronet.OpPut, Key: keySource(), Value: payload}
	}
	getOps := make([]voronet.StoreOp, *storeOps)
	for i := range getOps {
		// Uniform draws re-read the written keys; Zipf draws the hot set.
		if *storeZipf > 0 {
			getOps[i] = voronet.StoreOp{Kind: voronet.OpGet, Key: keySource()}
		} else {
			getOps[i] = voronet.StoreOp{Kind: voronet.OpGet, Key: putOps[i].Key}
		}
	}
	mixedOps := make([]voronet.StoreOp, *storeOps)
	for i := range mixedOps {
		if rng.Float64() < *storeGetFrac {
			mixedOps[i] = voronet.StoreOp{Kind: voronet.OpGet, Key: putOps[rng.Intn(len(putOps))].Key}
		} else {
			mixedOps[i] = voronet.StoreOp{Kind: voronet.OpPut, Key: keySource(), Value: payload}
		}
	}

	put := runStorePhase(st, origins, putOps)
	get := runStorePhase(st, origins, getOps)
	mixed := runStorePhase(st, origins, mixedOps)

	line := map[string]any{
		"bench":              "store",
		"n":                  ov.Len(),
		"replication":        st.Replication(),
		"ops":                *storeOps,
		"value_bytes":        len(payload),
		"seed":               *seed,
		"workers":            benchWorkers(),
		"zipf":               *storeZipf,
		"get_frac":           round3(*storeGetFrac),
		"fictive":            *storeFictive,
		"build_secs":         round3(buildSecs),
		"build_workers":      *buildWorkers,
		"build_objs_per_sec": round3(float64(ov.Len()) / buildSecs),
		"put_ops_per_sec":    round3(put.opsPerSec),
		"put_mean_hops":      round3(put.meanHops),
		"put_p50_us":         round3(put.p50us),
		"put_p95_us":         round3(put.p95us),
		"put_p99_us":         round3(put.p99us),
		"get_ops_per_sec":    round3(get.opsPerSec),
		"get_mean_hops":      round3(get.meanHops),
		"get_p50_us":         round3(get.p50us),
		"get_p95_us":         round3(get.p95us),
		"get_p99_us":         round3(get.p99us),
		"mixed_ops_per_sec":  round3(mixed.opsPerSec),
		"mixed_p50_us":       round3(mixed.p50us),
		"mixed_p95_us":       round3(mixed.p95us),
		"mixed_p99_us":       round3(mixed.p99us),
		"metrics_enabled":    *storeMetrics,
		"store_cache":        *storeCache,
		"unix_millis":        time.Now().UnixMilli(),
	}
	if *storeCache > 0 {
		cs := st.RouteCacheStats()
		line["cache_hits"] = cs.Hits
		line["cache_misses"] = cs.Misses
		line["cache_jumps"] = cs.Jumps
		line["cache_entries"] = cs.Entries
	}
	if reg != nil {
		line["metrics"] = reg.Snapshot()
	}
	enc := json.NewEncoder(os.Stdout)
	if err := enc.Encode(line); err != nil {
		fatal(err)
	}
}

// runChaos drives the chaos scenario battery (internal/harness) and
// prints one machine-readable JSON line per scenario so successive PRs
// can track a BENCH_chaos.json trajectory:
//
//	voronet-bench -chaos > BENCH_chaos.json
//	voronet-bench -chaos -scenario partition-heal -chaos-seed 7
//
// The process exits non-zero if any scenario fails an invariant.
func runChaos() {
	scenarios := harness.Scenarios()
	if *chaosName != "" {
		s := harness.ByName(*chaosName)
		if s == nil {
			fmt.Fprintf(os.Stderr, "voronet-bench: unknown scenario %q\n", *chaosName)
			os.Exit(2)
		}
		scenarios = []harness.Scenario{*s}
	}
	enc := json.NewEncoder(os.Stdout)
	failed := 0
	for _, s := range scenarios {
		s.Seed += *chaosSeed
		start := time.Now()
		res, err := s.Run()
		if err != nil {
			fatal(err)
		}
		wall := time.Since(start)
		line := map[string]any{
			"bench":      "chaos",
			"scenario":   s.Name,
			"seed":       s.Seed,
			"passed":     res.Passed,
			"ops":        res.Ops,
			"ops_lost":   res.OpsLost,
			"delivered":  res.Delivered,
			"dropped":    res.Dropped,
			"virtual_t":  res.VirtualTime,
			"checks":     len(res.Checks),
			"wall_ms":    wall.Milliseconds(),
			"transcript": len(res.Transcript),
		}
		if n := len(res.Checks); n > 0 {
			final := res.Checks[n-1]
			line["nodes"] = final.Nodes
			line["route_ok"] = final.RouteOK
			line["route_tried"] = final.RouteTried
			line["mean_route_hops"] = round3(final.MeanHops)
			line["store_keys"] = final.StoreKeys
			line["store_errors"] = final.StoreErrors
		}
		line["sends"] = res.Sends
		if res.SyncFullBytes > 0 {
			// Durable scenarios probe the anti-entropy byte cost both
			// ways: digest-first vs the full-push baseline.
			line["sync_digest_bytes"] = res.SyncDigestBytes
			line["sync_full_bytes"] = res.SyncFullBytes
			line["sync_ratio"] = round3(float64(res.SyncDigestBytes) / float64(res.SyncFullBytes))
		}
		line["metrics"] = res.Metrics
		if !res.Passed {
			failed++
			line["failures"] = res.Failures
		}
		if err := enc.Encode(line); err != nil {
			fatal(err)
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "voronet-bench: %d chaos scenario(s) failed\n", failed)
		os.Exit(1)
	}
}

func round3(x float64) float64 { return math.Round(x*1000) / 1000 }

func runMaintenance() {
	fmt.Println("### Overlay management costs per operation (§4.2, §4.4)")
	sizes := []int{}
	for s := 1000; s <= *n; s *= 4 {
		sizes = append(sizes, s)
	}
	for _, variant := range []struct {
		label    string
		interior bool
	}{{"paper-literal targets (LRt may leave the square)", false},
		{"interior-conditioned targets (extension)", true}} {
		fmt.Printf("\n# %s\n", variant.label)
		fmt.Println("# N\tjoinRoute\tjoinMaint\tleaveMaint\tfictive/join")
		pts, err := sim.MaintenanceExperiment{
			Sizes: sizes, Ops: 200, Distribution: "uniform",
			InteriorTargets: variant.interior, Seed: *seed,
		}.Run()
		if err != nil {
			fatal(err)
		}
		for _, p := range pts {
			fmt.Printf("%d\t%.1f\t%.1f\t%.1f\t%.2f\n",
				p.N, p.JoinRouteSteps, p.JoinMaintenance, p.LeaveMaintenance, p.FictivePerJoin)
		}
		first, last := pts[0], pts[len(pts)-1]
		verdict("Maint/"+map[bool]string{false: "literal", true: "interior"}[variant.interior],
			last.LeaveMaintenance < 2.5*first.LeaveMaintenance,
			"per-leave maintenance stays O(1)")
	}
}

func verdict(name string, ok bool, claim string) {
	status := "MATCHES"
	if !ok {
		status = "DIVERGES"
	}
	fmt.Printf("# %-18s %s — %s\n", name, status, claim)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "voronet-bench:", err)
	os.Exit(1)
}
