// voronet-node runs one distributed VoroNet peer over TCP and drives it
// from a tiny line protocol on stdin — enough to assemble a real overlay
// across processes or machines by hand.
//
// Start the first node:
//
//	voronet-node -listen 127.0.0.1:7001 -x 0.2 -y 0.3 -bootstrap
//
// Join more nodes:
//
//	voronet-node -listen 127.0.0.1:7002 -x 0.8 -y 0.7 -join 127.0.0.1:7001
//
// Commands on stdin:
//
//	query X Y       route a point query, print the owning object
//	put X Y VALUE   store VALUE under attribute key (X, Y)
//	get X Y         fetch the value stored under (X, Y)
//	del X Y         delete the value stored under (X, Y)
//	trace X Y       traced GET: print the greedy route hop by hop
//	store           print the records this node holds
//	view            print vn / cn / long-link views
//	metrics         print this node's metric snapshot as JSON
//	leave           leave the overlay and exit
//
// With -connect ADDR the process is a thin pipelined client instead of an
// overlay member: it speaks the same query/put/get/del commands, but every
// operation travels through the member at ADDR over one multiplexed
// connection (internal/client) and no object is inserted into the
// attribute space.
//
// With -debug-addr the node also serves live introspection over HTTP:
// GET /metrics returns the merged node + transport snapshot as JSON, and
// /debug/pprof/ exposes the standard Go profiles.
//
// With -wal-dir the node is durable: every acked PUT/DELETE is logged to
// a write-ahead log there before the ack leaves, and a restart from the
// same directory replays the log into the store and rejoins with a fresh
// incarnation number. SIGTERM/SIGINT trigger a graceful shutdown: stop
// admitting new work, flush the WAL, hand records off via Leave, exit.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"voronet"
	"voronet/internal/client"
	"voronet/internal/geom"
	"voronet/internal/metrics"
	"voronet/internal/node"
	"voronet/internal/proto"
	"voronet/internal/transport"
	"voronet/internal/wal"
)

var (
	listen    = flag.String("listen", "127.0.0.1:0", "TCP listen address")
	x         = flag.Float64("x", 0.5, "object x attribute in [0,1]")
	y         = flag.Float64("y", 0.5, "object y attribute in [0,1]")
	bootstrap = flag.Bool("bootstrap", false, "start a fresh overlay")
	join      = flag.String("join", "", "address of an overlay member to join through")
	nmax      = flag.Int("nmax", 100000, "provisioned overlay size (fixes dmin)")
	links     = flag.Int("k", 1, "long-range links")
	syncEvery = flag.Duration("sync-interval", 30*time.Second, "anti-entropy replica sweep period (0 disables)")
	debugAddr = flag.String("debug-addr", "", "serve JSON metrics and pprof on this HTTP address (e.g. 127.0.0.1:6060)")
	connect   = flag.String("connect", "", "run as a pipelined client of the overlay member at this address (no join)")
	alpha     = flag.Int("alpha", 1, "speculative parallel probes per read (<=1 disables)")
	cacheSize = flag.Int("route-cache", 0, "route/owner cache entries (0 disables)")

	walDir      = flag.String("wal-dir", "", "write-ahead log directory: log every acked write, replay on restart")
	walFsync    = flag.String("wal-fsync", "always", "WAL fsync policy: always|batch|never (-wal-dir)")
	walFlush    = flag.Duration("wal-flush", time.Second, "periodic WAL flush period under -wal-fsync=batch")
	maxInflight = flag.Int("max-inflight", 0, "shed store work beyond this many inflight ops (0 disables)")
	gobWire     = flag.Bool("gob-wire", false, "send with the legacy gob codec instead of the binary wire format (A/B baseline; mixed overlays interoperate)")
)

func main() {
	flag.Parse()
	if *connect != "" {
		runClient(*connect)
		return
	}
	ep, err := transport.ListenTCP(*listen)
	if err != nil {
		fatal(err)
	}
	defer ep.Close()

	cfg := node.Config{
		DMin:           voronet.DefaultDMin(*nmax),
		LongLinks:      *links,
		Seed:           time.Now().UnixNano(),
		Alpha:          *alpha,
		RouteCacheSize: *cacheSize,
		MaxInflight:    *maxInflight,
		GobWire:        *gobWire,
	}
	var nd *node.Node
	if *walDir != "" {
		policy, err := wal.ParsePolicy(*walFsync)
		if err != nil {
			fatal(err)
		}
		cfg.WALDir = *walDir
		cfg.WALSync = policy
		var stats wal.ReplayStats
		nd, stats, err = node.NewDurable(ep, geom.Pt(*x, *y), cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("wal %s: replayed %d records, gen %d (torn=%v corrupt=%d)\n",
			*walDir, stats.Records, stats.Generation, stats.Truncated, stats.CorruptFrames)
		if policy == wal.SyncBatch && *walFlush > 0 {
			go func() {
				for range time.Tick(*walFlush) {
					nd.WALSync()
				}
			}()
		}
	} else {
		nd = node.New(ep, geom.Pt(*x, *y), cfg)
	}
	fmt.Printf("node %s at (%g, %g)\n", nd.Info().Addr, *x, *y)

	// Graceful shutdown: stop admitting origin-side store work, flush the
	// WAL, hand every held record off through Leave, then exit — a node
	// killed this way loses no acked write even under -wal-fsync=batch.
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	go func() {
		s := <-sigc
		fmt.Printf("\n%s: draining and leaving\n", s)
		if err := nd.Shutdown(); err != nil {
			fmt.Fprintln(os.Stderr, "voronet-node: shutdown:", err)
		}
		time.Sleep(200 * time.Millisecond) // let notifications flush
		os.Exit(0)
	}()

	if *debugAddr != "" {
		dbg, err := metrics.ServeDebug(*debugAddr,
			nd.Metrics().Snapshot, ep.Metrics().Snapshot)
		if err != nil {
			fatal(err)
		}
		defer dbg.Close()
		fmt.Printf("debug endpoint at http://%s/metrics (pprof under /debug/pprof/)\n", dbg.Addr())
	}

	switch {
	case *bootstrap:
		if err := nd.Bootstrap(); err != nil {
			fatal(err)
		}
		fmt.Println("bootstrapped a fresh overlay")
	case *join != "":
		if err := nd.Join(*join); err != nil {
			fatal(err)
		}
		deadline := time.Now().Add(10 * time.Second)
		resend := time.Now().Add(time.Second)
		for !nd.Joined() {
			if time.Now().After(deadline) {
				fatal(fmt.Errorf("join via %s timed out", *join))
			}
			if time.Now().After(resend) {
				// The join request or its grant can be lost (a crashed
				// sponsor, a stale connection at the sponsor after our own
				// restart): re-send until admitted. Admission is idempotent
				// and duplicate grants are ignored.
				_ = nd.Join(*join)
				resend = time.Now().Add(time.Second)
			}
			time.Sleep(10 * time.Millisecond)
		}
		fmt.Printf("joined via %s; %d Voronoi neighbours\n", *join, len(nd.Neighbors()))
	default:
		fatal(fmt.Errorf("need -bootstrap or -join"))
	}

	// Anti-entropy: periodically push every held record toward its owner
	// and replica set, repairing placement damaged by crashes or network
	// faults (the sweep the chaos harness drives explicitly via Settle).
	if *syncEvery > 0 {
		go func() {
			for range time.Tick(*syncEvery) {
				nd.SyncReplicas()
			}
		}()
	}

	sc := bufio.NewScanner(os.Stdin)
	fmt.Print("> ")
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			fmt.Print("> ")
			continue
		}
		switch fields[0] {
		case "query":
			if len(fields) != 3 {
				fmt.Println("usage: query X Y")
				break
			}
			qx, err1 := strconv.ParseFloat(fields[1], 64)
			qy, err2 := strconv.ParseFloat(fields[2], 64)
			if err1 != nil || err2 != nil {
				fmt.Println("usage: query X Y")
				break
			}
			done := make(chan struct{})
			err := nd.Query(geom.Pt(qx, qy), func(owner proto.NodeInfo, hops int) {
				if hops == node.HopsTimedOut {
					fmt.Printf("query (%g, %g): no answer before the deadline (owner crashed?)\n", qx, qy)
				} else {
					fmt.Printf("owner of (%g, %g): %s at (%g, %g), %d hops\n",
						qx, qy, owner.Addr, owner.Pos.X, owner.Pos.Y, hops)
				}
				close(done)
			})
			if err != nil {
				fmt.Println("query:", err)
				break
			}
			select {
			case <-done:
			case <-time.After(5 * time.Second):
				fmt.Println("query timed out")
			}
		case "put":
			if len(fields) < 4 {
				fmt.Println("usage: put X Y VALUE")
				break
			}
			key, err := parseKey(fields[1], fields[2])
			if err != nil {
				fmt.Println("put:", err)
				break
			}
			value := strings.Join(fields[3:], " ")
			if err := nd.PutSync(key, []byte(value)); err != nil {
				fmt.Println("put:", err)
				break
			}
			fmt.Printf("stored %q at (%g, %g)\n", value, key.X, key.Y)
		case "get":
			if len(fields) != 3 {
				fmt.Println("usage: get X Y")
				break
			}
			key, err := parseKey(fields[1], fields[2])
			if err != nil {
				fmt.Println("get:", err)
				break
			}
			v, err := nd.GetSync(key)
			if err != nil {
				fmt.Println("get:", err)
				break
			}
			fmt.Printf("(%g, %g) = %q\n", key.X, key.Y, v)
		case "del":
			if len(fields) != 3 {
				fmt.Println("usage: del X Y")
				break
			}
			key, err := parseKey(fields[1], fields[2])
			if err != nil {
				fmt.Println("del:", err)
				break
			}
			if err := nd.DeleteSync(key); err != nil {
				fmt.Println("del:", err)
				break
			}
			fmt.Printf("deleted (%g, %g)\n", key.X, key.Y)
		case "trace":
			if len(fields) != 3 {
				fmt.Println("usage: trace X Y")
				break
			}
			key, err := parseKey(fields[1], fields[2])
			if err != nil {
				fmt.Println("trace:", err)
				break
			}
			r, err := nd.GetTraceSync(key)
			if err != nil {
				fmt.Println("trace:", err)
				break
			}
			fmt.Printf("route to (%g, %g): %d hops\n", key.X, key.Y, r.Hops)
			for i, h := range r.Path {
				fmt.Printf("  %2d. %-22s %-8s +%0.3fms\n", i, h.Addr, h.Rule,
					float64(h.Nanos)/1e6)
			}
			if r.Found {
				fmt.Printf("answered by %s: %q (v%d)\n", r.Owner.Addr, r.Value, r.Version)
			} else {
				fmt.Printf("answered by %s: key not found\n", r.Owner.Addr)
			}
		case "store":
			recs := nd.StoreSnapshot()
			fmt.Printf("holding %d records (%d live):\n", len(recs), nd.StoreLen())
			for _, rec := range recs {
				if rec.Deleted {
					fmt.Printf("  (%g, %g) v%d tombstone\n", rec.Key.X, rec.Key.Y, rec.Version)
				} else {
					fmt.Printf("  (%g, %g) v%d %q\n", rec.Key.X, rec.Key.Y, rec.Version, rec.Value)
				}
			}
		case "view":
			fmt.Printf("vn (%d):\n", len(nd.Neighbors()))
			for _, v := range nd.Neighbors() {
				fmt.Printf("  %s (%g, %g)\n", v.Addr, v.Pos.X, v.Pos.Y)
			}
			fmt.Printf("cn (%d):\n", len(nd.CloseNeighbors()))
			for _, v := range nd.CloseNeighbors() {
				fmt.Printf("  %s (%g, %g)\n", v.Addr, v.Pos.X, v.Pos.Y)
			}
			fmt.Printf("LRn (%d):\n", len(nd.LongNeighbors()))
			for j, v := range nd.LongNeighbors() {
				tgt := nd.LongTargets()[j]
				fmt.Printf("  link %d -> %s (target %g, %g)\n", j, v.Addr, tgt.X, tgt.Y)
			}
		case "metrics":
			snap := nd.Metrics().Snapshot()
			snap.Merge(ep.Metrics().Snapshot())
			out, err := json.MarshalIndent(snap, "", "  ")
			if err != nil {
				fmt.Println("metrics:", err)
				break
			}
			fmt.Println(string(out))
		case "leave":
			// Shutdown is Leave plus the durable steps (drain, flush,
			// close the WAL); on a non-durable node the extras are no-ops.
			if err := nd.Shutdown(); err != nil {
				fmt.Println("leave:", err)
			}
			time.Sleep(200 * time.Millisecond) // let notifications flush
			fmt.Println("left the overlay")
			return
		default:
			fmt.Println("commands: query X Y | put X Y VALUE | get X Y | del X Y | trace X Y | store | view | metrics | leave")
		}
		fmt.Print("> ")
	}
	// stdin closed (running headless, e.g. under nohup): keep serving the
	// overlay until killed.
	fmt.Println("stdin closed; serving headless")
	select {}
}

// runClient is the -connect mode: a pipelined client REPL over one
// multiplexed connection to the gateway member. Operations issued while
// earlier ones await their replies genuinely overlap on the wire.
func runClient(gateway string) {
	cl, err := client.Dial(gateway, client.Options{Timeout: 30 * time.Second, GobWire: *gobWire})
	if err != nil {
		fatal(err)
	}
	defer cl.Close()
	fmt.Printf("client %s -> gateway %s\n", cl.Addr(), gateway)

	sc := bufio.NewScanner(os.Stdin)
	fmt.Print("> ")
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			fmt.Print("> ")
			continue
		}
		switch fields[0] {
		case "query":
			key, err := parseKeyArgs(fields, 3)
			if err != nil {
				fmt.Println("usage: query X Y")
				break
			}
			owner, hops, err := cl.QuerySync(key)
			if err != nil {
				fmt.Println("query:", err)
				break
			}
			fmt.Printf("owner of (%g, %g): %s at (%g, %g), %d hops\n",
				key.X, key.Y, owner.Addr, owner.Pos.X, owner.Pos.Y, hops)
		case "put":
			if len(fields) < 4 {
				fmt.Println("usage: put X Y VALUE")
				break
			}
			key, err := parseKey(fields[1], fields[2])
			if err != nil {
				fmt.Println("put:", err)
				break
			}
			value := strings.Join(fields[3:], " ")
			if err := cl.PutSync(key, []byte(value)); err != nil {
				fmt.Println("put:", err)
				break
			}
			fmt.Printf("stored %q at (%g, %g)\n", value, key.X, key.Y)
		case "get":
			key, err := parseKeyArgs(fields, 3)
			if err != nil {
				fmt.Println("usage: get X Y")
				break
			}
			v, err := cl.GetSync(key)
			if err != nil {
				fmt.Println("get:", err)
				break
			}
			fmt.Printf("(%g, %g) = %q\n", key.X, key.Y, v)
		case "del":
			key, err := parseKeyArgs(fields, 3)
			if err != nil {
				fmt.Println("usage: del X Y")
				break
			}
			if err := cl.DeleteSync(key); err != nil {
				fmt.Println("del:", err)
				break
			}
			fmt.Printf("deleted (%g, %g)\n", key.X, key.Y)
		case "exit", "quit":
			return
		default:
			fmt.Println("commands: query X Y | put X Y VALUE | get X Y | del X Y | exit")
		}
		fmt.Print("> ")
	}
}

// parseKeyArgs parses fields[1], fields[2] as a key when the command has
// exactly want fields.
func parseKeyArgs(fields []string, want int) (geom.Point, error) {
	if len(fields) != want {
		return geom.Point{}, fmt.Errorf("want %d arguments", want-1)
	}
	return parseKey(fields[1], fields[2])
}

func parseKey(xs, ys string) (geom.Point, error) {
	kx, err1 := strconv.ParseFloat(xs, 64)
	ky, err2 := strconv.ParseFloat(ys, 64)
	if err1 != nil || err2 != nil {
		return geom.Point{}, fmt.Errorf("key coordinates must be numbers")
	}
	if math.IsNaN(kx) || math.IsNaN(ky) || math.IsInf(kx, 0) || math.IsInf(ky, 0) {
		return geom.Point{}, fmt.Errorf("key coordinates must be finite")
	}
	return geom.Pt(kx, ky), nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "voronet-node:", err)
	os.Exit(1)
}
