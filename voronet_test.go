package voronet_test

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"voronet"
)

// TestQuickstart exercises the public API exactly as the README shows it.
func TestQuickstart(t *testing.T) {
	ov := voronet.New(voronet.Config{NMax: 100000, Seed: 1})
	a, err := ov.Insert(voronet.Pt(0.25, 0.75))
	if err != nil {
		t.Fatal(err)
	}
	b, err := ov.Insert(voronet.Pt(0.80, 0.10))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ov.Insert(voronet.Pt(0.25, 0.75)); !errors.Is(err, voronet.ErrDuplicate) {
		t.Fatalf("duplicate: %v", err)
	}
	hops, err := ov.RouteToObject(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if hops != 1 {
		t.Fatalf("two objects are mutual neighbours: %d hops", hops)
	}
	owner, err := ov.Owner(voronet.Pt(0.3, 0.7), a)
	if err != nil {
		t.Fatal(err)
	}
	if owner != a {
		t.Fatalf("owner of a point near a: %d", owner)
	}
	if d := voronet.DefaultDMin(100000); d <= 0 || d >= 1 {
		t.Fatalf("DefaultDMin: %g", d)
	}
	if voronet.Dist(voronet.Pt(0, 0), voronet.Pt(3, 4)) != 5 {
		t.Fatal("Dist")
	}
}

func TestPublicJoinLeaveQuery(t *testing.T) {
	ov := voronet.New(voronet.Config{NMax: 5000, Seed: 2, LongLinks: 2})
	rng := rand.New(rand.NewSource(3))
	var ids []voronet.ObjectID
	var last voronet.ObjectID = voronet.NoObject
	for i := 0; i < 300; i++ {
		id, err := ov.Join(voronet.Pt(rng.Float64(), rng.Float64()), last)
		if err != nil {
			if errors.Is(err, voronet.ErrDuplicate) {
				continue
			}
			t.Fatal(err)
		}
		ids = append(ids, id)
		last = id
	}
	res, err := ov.HandleQuery(ids[0], voronet.Pt(0.5, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	want, _ := ov.Owner(voronet.Pt(0.5, 0.5), voronet.NoObject)
	if res.Owner != want {
		t.Fatalf("query owner %d, want %d", res.Owner, want)
	}
	for i := 0; i < 100; i++ {
		if err := ov.Remove(ids[i]); err != nil {
			t.Fatal(err)
		}
	}
	if ov.Len() != len(ids)-100 {
		t.Fatalf("Len after removals: %d", ov.Len())
	}
	c := ov.Counters()
	if c.Joins == 0 || c.Leaves != 100 || c.Queries != 1 {
		t.Fatalf("counters: %+v", c)
	}
}

func TestPublicSaveLoadAndParallelRoutes(t *testing.T) {
	ov := voronet.New(voronet.Config{NMax: 2000, Seed: 6})
	rng := rand.New(rand.NewSource(7))
	var ids []voronet.ObjectID
	for len(ids) < 300 {
		if id, err := ov.Insert(voronet.Pt(rng.Float64(), rng.Float64())); err == nil {
			ids = append(ids, id)
		}
	}
	var buf bytes.Buffer
	if err := ov.Save(&buf); err != nil {
		t.Fatal(err)
	}
	ov2, err := voronet.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if ov2.Len() != ov.Len() {
		t.Fatalf("loaded %d objects, want %d", ov2.Len(), ov.Len())
	}

	pairs := make([]voronet.RoutePair, 100)
	for i := range pairs {
		pairs[i] = voronet.RoutePair{From: ids[rng.Intn(len(ids))], To: ids[rng.Intn(len(ids))]}
	}
	h1, _, err := ov.MeasureRoutes(pairs, 4)
	if err != nil {
		t.Fatal(err)
	}
	h2, _, err := ov2.MeasureRoutes(pairs, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range h1 {
		if h1[i] != h2[i] {
			t.Fatalf("pair %d: %d vs %d hops after save/load", i, h1[i], h2[i])
		}
	}
	// Cell and DistanceToRegion on the public surface.
	cell := ov.Cell(ids[0])
	if len(cell) < 3 {
		t.Fatalf("cell has %d vertices", len(cell))
	}
	pos, _ := ov.Position(ids[0])
	z, d, err := ov.DistanceToRegion(ids[0], pos)
	if err != nil || d != 0 || z != pos {
		t.Fatalf("DistanceToRegion at own site: %v %g %v", z, d, err)
	}
}

func TestPublicRangeAndRadiusQueries(t *testing.T) {
	ov := voronet.New(voronet.Config{NMax: 5000, Seed: 4})
	rng := rand.New(rand.NewSource(5))
	var first voronet.ObjectID = voronet.NoObject
	for i := 0; i < 400; i++ {
		id, err := ov.Insert(voronet.Pt(rng.Float64(), rng.Float64()))
		if err == nil && first == voronet.NoObject {
			first = id
		}
	}
	seg, st, err := ov.RangeQuery(first, voronet.Pt(0.2, 0.5), voronet.Pt(0.8, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	if len(seg) == 0 || st.Visited == 0 {
		t.Fatal("empty range query on a populated overlay")
	}
	disk, _, err := ov.RadiusQuery(first, voronet.Pt(0.5, 0.5), 0.2)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range disk {
		pos, _ := ov.Position(id)
		if voronet.Dist(pos, voronet.Pt(0.5, 0.5)) > 0.2 {
			t.Fatal("radius query returned an object outside the disk")
		}
	}
}

// TestStorePublicAPI exercises the object store exactly as the README
// shows it: put, get from another origin, delete, and churn handoff.
func TestStorePublicAPI(t *testing.T) {
	ov := voronet.New(voronet.Config{NMax: 1000, Seed: 9})
	rng := rand.New(rand.NewSource(9))
	var ids []voronet.ObjectID
	for len(ids) < 200 {
		id, err := ov.Insert(voronet.Pt(rng.Float64(), rng.Float64()))
		if err != nil {
			continue
		}
		ids = append(ids, id)
	}
	st := voronet.NewStore(ov, voronet.DefaultReplication)

	key := voronet.Pt(0.42, 0.13)
	if _, _, err := st.Get(ids[0], key); !errors.Is(err, voronet.ErrKeyNotFound) {
		t.Fatalf("missing key: %v", err)
	}
	owner, hops, err := st.Put(ids[1], key, []byte("payload"))
	if err != nil {
		t.Fatal(err)
	}
	if trueOwner, _ := ov.Owner(key, voronet.NoObject); owner != trueOwner {
		t.Fatalf("stored at %d, owner is %d (route took %d hops)", owner, trueOwner, hops)
	}
	val, _, err := st.Get(ids[2], key)
	if err != nil || !bytes.Equal(val, []byte("payload")) {
		t.Fatalf("get: %q, %v", val, err)
	}

	// The owner leaves; the record must be handed to the next owner.
	st.OnRemove(owner)
	if err := ov.Remove(owner); err != nil {
		t.Fatal(err)
	}
	val, _, err = st.Get(ids[3], key)
	if err != nil || !bytes.Equal(val, []byte("payload")) {
		t.Fatalf("get after owner left: %q, %v", val, err)
	}

	if _, err := st.Delete(ids[4], key); err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.Get(ids[5], key); !errors.Is(err, voronet.ErrKeyNotFound) {
		t.Fatalf("get after delete: %v", err)
	}
}
