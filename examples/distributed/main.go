// Distributed VoroNet — the genuinely message-passing realisation of the
// protocol. Every peer here holds only its own view (its position, its
// Voronoi neighbours and their lists, close neighbours, long links) and
// all coordination happens through protocol messages on a deterministic
// in-memory bus; swap the bus for transport.ListenTCP and the same peers
// run across machines (see cmd/voronet-node).
//
//	go run ./examples/distributed
package main

import (
	"fmt"
	"log"
	"math/rand"

	"voronet"
	"voronet/internal/geom"
	"voronet/internal/node"
	"voronet/internal/proto"
	"voronet/internal/transport"
)

func main() {
	const n = 80
	bus := transport.NewBus()
	rng := rand.New(rand.NewSource(21))
	dmin := voronet.DefaultDMin(1000)

	var peers []*node.Node
	for i := 0; i < n; i++ {
		ep, err := bus.Attach(fmt.Sprintf("peer-%02d", i))
		if err != nil {
			log.Fatal(err)
		}
		nd := node.New(ep, geom.Pt(rng.Float64(), rng.Float64()), node.Config{
			DMin: dmin, LongLinks: 1, Seed: int64(i),
		})
		if i == 0 {
			if err := nd.Bootstrap(); err != nil {
				log.Fatal(err)
			}
		} else {
			// Join through a random existing peer; the join request is
			// greedy-routed to the owner of our position.
			via := peers[rng.Intn(len(peers))].Info().Addr
			if err := nd.Join(via); err != nil {
				log.Fatal(err)
			}
			bus.Drain() // deliver all protocol messages
			if !nd.Joined() {
				log.Fatalf("peer %d failed to join", i)
			}
		}
		peers = append(peers, nd)
	}
	fmt.Printf("%d peers joined; bus delivered %d protocol messages (%.1f per join)\n\n",
		n, bus.DeliveredCount(), float64(bus.DeliveredCount())/float64(n-1))

	// Every peer's view is purely local. Show one.
	p := peers[17]
	fmt.Printf("%s view:\n", p.Info().Addr)
	for _, v := range p.Neighbors() {
		fmt.Printf("  vn  %s (%.3f, %.3f)\n", v.Addr, v.Pos.X, v.Pos.Y)
	}
	for j, l := range p.LongNeighbors() {
		fmt.Printf("  LRn %d -> %s\n", j, l.Addr)
	}

	// Distributed point queries, answered by whoever owns the region.
	fmt.Println("\nqueries:")
	for i := 0; i < 4; i++ {
		q := geom.Pt(rng.Float64(), rng.Float64())
		from := peers[rng.Intn(len(peers))]
		if err := from.Query(q, func(owner proto.NodeInfo, hops int) {
			fmt.Printf("  (%.2f, %.2f) from %s -> owner %s in %d hops\n",
				q.X, q.Y, from.Info().Addr, owner.Addr, hops)
		}); err != nil {
			log.Fatal(err)
		}
		bus.Drain()
	}

	// A third of the peers leave; views repair themselves through the
	// departure protocol, and queries still resolve to the right owners.
	fmt.Println("\nchurn: 25 peers leave...")
	for i := 0; i < 25; i++ {
		k := 1 + rng.Intn(len(peers)-1)
		nd := peers[k]
		if !nd.Joined() {
			continue
		}
		if err := nd.Leave(); err != nil {
			log.Fatal(err)
		}
		bus.Drain()
	}
	var live []*node.Node
	for _, nd := range peers {
		if nd.Joined() {
			live = append(live, nd)
		}
	}
	ok := 0
	for i := 0; i < 20; i++ {
		q := geom.Pt(rng.Float64(), rng.Float64())
		// Ground truth owner among live peers.
		best := live[0].Info()
		for _, nd := range live {
			if geom.Dist2(nd.Info().Pos, q) < geom.Dist2(best.Pos, q) {
				best = nd.Info()
			}
		}
		from := live[rng.Intn(len(live))]
		if err := from.Query(q, func(owner proto.NodeInfo, hops int) {
			if owner.Addr == best.Addr {
				ok++
			}
		}); err != nil {
			log.Fatal(err)
		}
		bus.Drain()
	}
	fmt.Printf("%d peers remain; %d/20 post-churn queries resolved to the exact owner\n", len(live), ok)
}
