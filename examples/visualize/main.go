// Visualize — render a VoroNet overlay as SVG: the Voronoi tessellation,
// the object-to-object Delaunay edges, the Kleinberg long-range links and
// one greedy route. This reproduces the paper's illustrative figures
// (Figs 1–3) from live overlay state and is the fastest way to *see* what
// the protocol maintains.
//
//	go run ./examples/visualize
//	# writes overlay.svg and route.svg to the working directory
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"

	"voronet"
	"voronet/internal/core"
	"voronet/internal/viz"
	"voronet/internal/workload"
)

func main() {
	ov := voronet.New(voronet.Config{NMax: 2000, Seed: 31})
	rng := rand.New(rand.NewSource(32))
	src := workload.NewClusters(4, 0.06, rng)
	var ids []voronet.ObjectID
	for len(ids) < 220 {
		id, err := ov.Insert(src.Next())
		if err != nil {
			continue
		}
		ids = append(ids, id)
	}

	// Full overlay picture: tessellation + long links.
	f, err := os.Create("overlay.svg")
	if err != nil {
		log.Fatal(err)
	}
	opt := viz.DefaultOptions()
	opt.DrawLongLinks = true
	opt.Title = fmt.Sprintf("VoroNet, %d clustered objects — %s", ov.Len(), viz.DegreeLegend(ov))
	if err := viz.WriteSVG(f, ov, opt); err != nil {
		log.Fatal(err)
	}
	f.Close()

	// One greedy route across the space.
	var far core.ObjectID
	best := 0.0
	p0, _ := ov.Position(ids[0])
	for _, id := range ids {
		p, _ := ov.Position(id)
		if d := voronet.Dist(p0, p); d > best {
			best, far = d, id
		}
	}
	path, err := viz.RoutePath(ov, ids[0], far)
	if err != nil {
		log.Fatal(err)
	}
	f2, err := os.Create("route.svg")
	if err != nil {
		log.Fatal(err)
	}
	opt2 := viz.DefaultOptions()
	opt2.DrawVoronoi = false
	opt2.DrawLongLinks = true
	opt2.Route = path
	opt2.Title = fmt.Sprintf("greedy route, %d hops over %d objects", len(path)-1, ov.Len())
	if err := viz.WriteSVG(f2, ov, opt2); err != nil {
		log.Fatal(err)
	}
	f2.Close()

	fmt.Printf("wrote overlay.svg (%d objects) and route.svg (%d hops)\n", ov.Len(), len(path)-1)
}
