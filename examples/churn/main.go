// Churn — objects joining and leaving while the overlay repairs itself
// (§3.3, §4.2.2). The example tracks one object's long-range link while
// its holder repeatedly leaves: the "back long range" pointer (BLRn) lets
// the departing holder delegate the link to the new owner of the target
// point, so the Kleinberg invariant — the long link always points at the
// object owning the target's region — survives arbitrary churn.
//
//	go run ./examples/churn
package main

import (
	"errors"
	"fmt"
	"log"
	"math/rand"

	"voronet"
)

func main() {
	ov := voronet.New(voronet.Config{NMax: 20000, Seed: 11})
	rng := rand.New(rand.NewSource(12))
	var ids []voronet.ObjectID
	for ov.Len() < 2000 {
		if id, err := ov.Insert(voronet.Pt(rng.Float64(), rng.Float64())); err == nil {
			ids = append(ids, id)
		}
	}

	// Pick an object whose long link points somewhere else.
	var watched voronet.ObjectID = voronet.NoObject
	for _, id := range ids {
		ln, _ := ov.LongNeighbors(id)
		if ln[0] != id {
			watched = id
			break
		}
	}
	tgts, _ := ov.LongTargets(watched)
	fmt.Printf("watching object %d; its long-link target is (%.3f, %.3f)\n\n", watched, tgts[0].X, tgts[0].Y)

	// Kill the link holder five times in a row; the link must always move
	// to the object now owning the target point.
	for round := 1; round <= 5; round++ {
		ln, _ := ov.LongNeighbors(watched)
		holder := ln[0]
		hp, _ := ov.Position(holder)
		if err := ov.Remove(holder); err != nil {
			log.Fatal(err)
		}
		ln2, _ := ov.LongNeighbors(watched)
		np, _ := ov.Position(ln2[0])
		trueOwner, _ := ov.Owner(tgts[0], watched)
		status := "== owner ✓"
		if ln2[0] != trueOwner {
			status = fmt.Sprintf("!= owner %d ✗", trueOwner)
		}
		fmt.Printf("round %d: holder %d at (%.3f,%.3f) left -> link now %d at (%.3f,%.3f) %s\n",
			round, holder, hp.X, hp.Y, ln2[0], np.X, np.Y, status)
	}

	// Heavy mixed churn with protocol joins, then a full invariant check
	// via routing: every surviving pair must still be mutually reachable.
	fmt.Println("\nrunning 1000 mixed join/leave events...")
	live := map[voronet.ObjectID]bool{}
	ov.ForEachObject(func(o *voronet.Object) bool { live[o.ID] = true; return true })
	var liveIDs []voronet.ObjectID
	for id := range live {
		liveIDs = append(liveIDs, id)
	}
	for i := 0; i < 1000; i++ {
		if rng.Float64() < 0.5 && len(liveIDs) > 100 {
			k := rng.Intn(len(liveIDs))
			id := liveIDs[k]
			liveIDs[k] = liveIDs[len(liveIDs)-1]
			liveIDs = liveIDs[:len(liveIDs)-1]
			if err := ov.Remove(id); err != nil {
				log.Fatal(err)
			}
		} else {
			id, err := ov.Join(voronet.Pt(rng.Float64(), rng.Float64()), liveIDs[rng.Intn(len(liveIDs))])
			if err != nil {
				if errors.Is(err, voronet.ErrDuplicate) {
					continue
				}
				log.Fatal(err)
			}
			liveIDs = append(liveIDs, id)
		}
	}
	worst := 0
	for i := 0; i < 300; i++ {
		a := liveIDs[rng.Intn(len(liveIDs))]
		b := liveIDs[rng.Intn(len(liveIDs))]
		h, err := ov.RouteToObject(a, b)
		if err != nil {
			log.Fatal(err)
		}
		if h > worst {
			worst = h
		}
	}
	c := ov.Counters()
	fmt.Printf("after churn: %d objects, all 300 sampled routes arrived (worst %d hops)\n", ov.Len(), worst)
	fmt.Printf("protocol costs: joins=%d leaves=%d joinRouteSteps=%d maintenanceMessages=%d fictiveInserts=%d\n",
		c.Joins, c.Leaves, c.JoinRouteSteps, c.MaintenanceMessages, c.FictiveInserts)
}
