// Skewed data — the case VoroNet is designed for (§1: "copes with skewed
// data distributions"). This example builds overlays under the paper's
// power-law workloads (frequency of the i-th most popular attribute value
// ∝ 1/i^α) and shows what the paper's Figures 5 and 6 show:
//
//   - the Voronoi degree distribution stays centred on 6 no matter how
//     skewed the data is (a structural property of planar tessellations),
//
//   - greedy routing stays poly-logarithmic,
//
//   - and close neighbourhoods absorb the density: under α=5 most objects
//     live in one giant cluster, where cn(o) is large and acts as a
//     shortcut table that makes intra-cluster routes nearly free.
//
//     go run ./examples/skewed
package main

import (
	"fmt"
	"log"
	"math/rand"

	"voronet"
	"voronet/internal/stats"
	"voronet/internal/workload"
)

func main() {
	const n = 8000
	for _, alpha := range []float64{0, 1, 2, 5} {
		rng := rand.New(rand.NewSource(5))
		var src workload.Source
		if alpha == 0 {
			src = &workload.Uniform{Rand: rng}
		} else {
			src = workload.NewPowerLaw(alpha, rng)
		}
		ov := voronet.New(voronet.Config{NMax: n, Seed: 6})
		for ov.Len() < n {
			if _, err := ov.Insert(src.Next()); err != nil {
				continue
			}
		}

		deg := stats.NewHistogram()
		var cnSize stats.Running
		var buf []voronet.ObjectID
		ov.ForEachObject(func(o *voronet.Object) bool {
			d, _ := ov.Degree(o.ID)
			deg.Add(d)
			buf, _ = ov.CloseNeighbors(o.ID, buf)
			cnSize.Add(float64(len(buf)))
			return true
		})

		var hops stats.Running
		measRng := rand.New(rand.NewSource(8))
		for i := 0; i < 500; i++ {
			a, _ := ov.RandomObject(measRng)
			b, _ := ov.RandomObject(measRng)
			if a == b {
				continue
			}
			h, err := ov.RouteToObject(a, b)
			if err != nil {
				log.Fatal(err)
			}
			hops.Add(float64(h))
		}

		mode, _ := deg.Mode()
		fmt.Printf("%-18s degree: mode=%d mean=%.2f  |cn|: mean=%.1f max=%.0f  routes: mean=%.1f max=%.0f\n",
			src.Name(), mode, deg.Mean(), cnSize.Mean(), cnSize.Max(), hops.Mean(), hops.Max())
	}

	fmt.Println("\nNote how the degree column never moves while the cn column explodes")
	fmt.Println("with skew: the tessellation degree is a structural invariant (Fig 5),")
	fmt.Println("and the dense close neighbourhoods are exactly where routing gets its")
	fmt.Println("intra-cluster shortcuts from (see EXPERIMENTS.md for the full story).")
}
