// Objectstore: the attribute-addressed store over a distributed overlay.
// Forty-eight message-passing nodes assemble on the in-memory bus, then
// records are PUT at attribute keys from random origins, read back from
// other nodes, and survive a churn phase — joins and leaves with key
// handoff — without losing a value.
//
//	go run ./examples/objectstore
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"

	"voronet"
	"voronet/internal/geom"
	"voronet/internal/node"
	"voronet/internal/store"
	"voronet/internal/transport"
)

func main() {
	const (
		nNodes = 48
		nKeys  = 200
	)
	dmin := voronet.DefaultDMin(nNodes * 4)
	rng := rand.New(rand.NewSource(7))
	bus := transport.NewBus()

	// Assemble the overlay: bootstrap one node, join the rest through
	// random sponsors.
	var nodes []*node.Node
	seq := 0
	addNode := func(pos geom.Point) *node.Node {
		ep, err := bus.Attach(fmt.Sprintf("peer%03d", seq))
		if err != nil {
			log.Fatal(err)
		}
		seq++
		nd := node.New(ep, pos, node.Config{DMin: dmin, LongLinks: 1, Seed: int64(seq)})
		if len(nodes) == 0 {
			if err := nd.Bootstrap(); err != nil {
				log.Fatal(err)
			}
		} else {
			if err := nd.Join(nodes[rng.Intn(len(nodes))].Info().Addr); err != nil {
				log.Fatal(err)
			}
			bus.Drain()
			if !nd.Joined() {
				log.Fatalf("node %s failed to join", nd.Info().Addr)
			}
		}
		nodes = append(nodes, nd)
		return nd
	}
	for i := 0; i < nNodes; i++ {
		addNode(geom.Pt(rng.Float64(), rng.Float64()))
	}
	fmt.Printf("overlay assembled: %d nodes on the in-memory bus\n", len(nodes))

	// PUT: imagine a music catalogue indexed by (tempo, loudness); the
	// value lives at the node owning that corner of the attribute space.
	keys := make([]geom.Point, nKeys)
	values := make([][]byte, nKeys)
	for i := range keys {
		keys[i] = geom.Pt(rng.Float64(), rng.Float64())
		values[i] = []byte(fmt.Sprintf("track-%03d", i))
		origin := nodes[rng.Intn(len(nodes))]
		var ack *store.Reply
		if err := origin.Put(keys[i], values[i], func(r store.Reply) { ack = &r }); err != nil {
			log.Fatal(err)
		}
		bus.Drain()
		if ack == nil || ack.Err != nil {
			log.Fatalf("put %v: %+v", keys[i], ack)
		}
	}
	fmt.Printf("put %d records from random origins\n", nKeys)

	// GET from different origins; count hops and replica copies.
	get := func(label string) {
		hops, copies := 0, 0
		for i, key := range keys {
			origin := nodes[rng.Intn(len(nodes))]
			var got *store.Reply
			if err := origin.Get(key, func(r store.Reply) { got = &r }); err != nil {
				log.Fatal(err)
			}
			bus.Drain()
			if got == nil || got.Err != nil || !got.Found || !bytes.Equal(got.Value, values[i]) {
				log.Fatalf("get %v: %+v", key, got)
			}
			hops += got.Hops
			for _, nd := range nodes {
				if !nd.Joined() {
					continue
				}
				for _, rec := range nd.StoreSnapshot() {
					if rec.Key == key && !rec.Deleted {
						copies++
					}
				}
			}
		}
		fmt.Printf("%s: all %d keys correct; %.1f hops and %.1f copies per key\n",
			label, nKeys, float64(hops)/float64(nKeys), float64(copies)/float64(nKeys))
	}
	get("read back")

	// Churn: ten nodes leave (handing their records off), ten join (taking
	// over the records their new regions own).
	for i := 0; i < 10; i++ {
		idx := rng.Intn(len(nodes))
		if err := nodes[idx].Leave(); err != nil {
			log.Fatal(err)
		}
		bus.Drain()
		nodes = append(nodes[:idx], nodes[idx+1:]...)
		addNode(geom.Pt(rng.Float64(), rng.Float64()))
	}
	fmt.Printf("churn: 10 leaves and 10 joins, records handed off\n")
	get("after churn")

	// DELETE half the records; the tombstones replicate so no stale copy
	// can resurrect them.
	for i := 0; i < nKeys/2; i++ {
		origin := nodes[rng.Intn(len(nodes))]
		if err := origin.Delete(keys[i], nil); err != nil {
			log.Fatal(err)
		}
		bus.Drain()
	}
	misses := 0
	for i := 0; i < nKeys/2; i++ {
		origin := nodes[rng.Intn(len(nodes))]
		var got *store.Reply
		if err := origin.Get(keys[i], func(r store.Reply) { got = &r }); err != nil {
			log.Fatal(err)
		}
		bus.Drain()
		if got != nil && !got.Found {
			misses++
		}
	}
	fmt.Printf("deleted %d records; %d of them now answer not-found\n", nKeys/2, misses)
	fmt.Printf("bus delivered %d messages in total\n", bus.DeliveredCount())
}
