// Quickstart: build a small VoroNet overlay, inspect an object's view
// (Voronoi neighbours, close neighbours, long-range links), route between
// objects and resolve point queries.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"voronet"
)

func main() {
	// Provision the overlay for up to 10 000 objects; this fixes the
	// close-neighbour radius dmin = 1/sqrt(pi*NMax) and the long-link
	// length distribution.
	ov := voronet.New(voronet.Config{NMax: 10000, Seed: 42})

	// Objects are points of the unit attribute square: imagine a music
	// catalogue indexed by (tempo, loudness), normalised to [0,1].
	rng := rand.New(rand.NewSource(7))
	var ids []voronet.ObjectID
	for i := 0; i < 500; i++ {
		id, err := ov.Insert(voronet.Pt(rng.Float64(), rng.Float64()))
		if err != nil {
			continue // duplicate attribute vector
		}
		ids = append(ids, id)
	}
	fmt.Printf("overlay holds %d objects (dmin = %.4f)\n\n", ov.Len(), ov.DMin())

	// Inspect one object's view — the state a VoroNet peer maintains.
	o := ids[0]
	pos, _ := ov.Position(o)
	vn, _ := ov.VoronoiNeighbors(o, nil)
	cn, _ := ov.CloseNeighbors(o, nil)
	ln, _ := ov.LongNeighbors(o)
	lt, _ := ov.LongTargets(o)
	fmt.Printf("object %d at (%.3f, %.3f):\n", o, pos.X, pos.Y)
	fmt.Printf("  %d Voronoi neighbours (expected ~6): %v\n", len(vn), vn)
	fmt.Printf("  %d close neighbours within dmin: %v\n", len(cn), cn)
	for j, l := range ln {
		lp, _ := ov.Position(l)
		fmt.Printf("  long link %d -> object %d at (%.3f, %.3f), target was (%.3f, %.3f)\n",
			j, l, lp.X, lp.Y, lt[j].X, lt[j].Y)
	}

	// Greedy routing between random objects: O(log^2 N) expected hops.
	fmt.Println("\ngreedy routes:")
	for i := 0; i < 5; i++ {
		a := ids[rng.Intn(len(ids))]
		b := ids[rng.Intn(len(ids))]
		hops, err := ov.RouteToObject(a, b)
		if err != nil {
			log.Fatal(err)
		}
		pa, _ := ov.Position(a)
		pb, _ := ov.Position(b)
		fmt.Printf("  (%.2f,%.2f) -> (%.2f,%.2f): %d hops\n", pa.X, pa.Y, pb.X, pb.Y, hops)
	}

	// Point queries (Algorithm 4): who owns this part of the attribute
	// space? "Find me the track closest to tempo .42, loudness .13."
	q := voronet.Pt(0.42, 0.13)
	res, err := ov.HandleQuery(ids[1], q)
	if err != nil {
		log.Fatal(err)
	}
	op, _ := ov.Position(res.Owner)
	fmt.Printf("\nquery (%.2f, %.2f): owner is object %d at (%.3f, %.3f), found in %d hops\n",
		q.X, q.Y, res.Owner, op.X, op.Y, res.Hops)

	// Leave: the overlay repairs itself (neighbour views and long links).
	before := ov.Len()
	if err := ov.Remove(res.Owner); err != nil {
		log.Fatal(err)
	}
	owner2, _ := ov.Owner(q, ids[1])
	p2, _ := ov.Position(owner2)
	fmt.Printf("after it leaves (%d -> %d objects), the query resolves to object %d at (%.3f, %.3f)\n",
		before, ov.Len(), owner2, p2.X, p2.Y)
}
