// Range and radius queries — the query mechanisms the paper motivates
// VoroNet with (§1) and sketches as perspectives (§7). Because VoroNet
// places objects at their attribute coordinates, "all objects with
// attribute-1 in [lo,hi]" is a segment of the attribute space and "all
// objects similar to X" is a disk around X; both resolve by routing to the
// area and forwarding along Voronoi neighbours, without flooding the
// network.
//
//	go run ./examples/rangequery
package main

import (
	"fmt"
	"log"
	"math/rand"

	"voronet"
)

func main() {
	// A product catalogue: x = normalised price, y = normalised rating.
	ov := voronet.New(voronet.Config{NMax: 20000, Seed: 9})
	rng := rand.New(rand.NewSource(10))
	var entry voronet.ObjectID = voronet.NoObject
	for ov.Len() < 3000 {
		// Prices cluster at the low end (power-law-ish), ratings are broad.
		price := rng.Float64() * rng.Float64()
		rating := 0.2 + 0.8*rng.Float64()
		if id, err := ov.Insert(voronet.Pt(price, rating)); err == nil && entry == voronet.NoObject {
			entry = id
		}
	}
	fmt.Printf("catalogue: %d products\n\n", ov.Len())

	// Range query on one attribute: products with rating ~0.9, any price —
	// a horizontal segment of the attribute space.
	a, b := voronet.Pt(0.0, 0.9), voronet.Pt(1.0, 0.9)
	hits, st, err := ov.RangeQuery(entry, a, b)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("range query rating=0.9 (segment (0,0.9)-(1,0.9)):\n")
	fmt.Printf("  %d regions intersect the segment; reached in %d hops, %d forwards\n",
		len(hits), st.RouteHops, st.ForwardMessages)
	for i, id := range hits[:min(5, len(hits))] {
		p, _ := ov.Position(id)
		fmt.Printf("  #%d object %d (price %.3f, rating %.3f)\n", i+1, id, p.X, p.Y)
	}
	if len(hits) > 5 {
		fmt.Printf("  ... and %d more, ordered along the segment\n", len(hits)-5)
	}

	// Radius query: everything similar to a reference product.
	centre := voronet.Pt(0.15, 0.85) // cheap and excellent
	r := 0.08
	similar, st2, err := ov.RadiusQuery(entry, centre, r)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nradius query around (%.2f, %.2f), r=%.2f:\n", centre.X, centre.Y, r)
	fmt.Printf("  %d products in the disk (visited %d regions, %d forwards)\n",
		len(similar), st2.Visited, st2.ForwardMessages)
	for i, id := range similar[:min(5, len(similar))] {
		p, _ := ov.Position(id)
		fmt.Printf("  #%d object %d at (%.3f, %.3f), distance %.3f\n",
			i+1, id, p.X, p.Y, voronet.Dist(p, centre))
	}

	// Cost intuition: the work is proportional to the answer size plus the
	// route, not to the overlay size.
	fmt.Printf("\ntotal protocol cost: %d greedy steps over %d objects\n",
		ov.Counters().GreedySteps, ov.Len())
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
