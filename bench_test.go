package voronet_test

// Benchmark harness: one benchmark per figure of the paper's evaluation
// (§5), plus the ablation benches listed in DESIGN.md. Each benchmark runs
// a scaled-down instance of exactly the code path that regenerates the
// full figure (cmd/voronet-bench runs the full-size versions and
// EXPERIMENTS.md records the results). The reported custom metrics — mean
// hops, degree mode, fitted slope — are the paper's quantities.
//
// Run with:
//
//	go test -bench=. -benchmem .

import (
	"fmt"
	"math/rand"
	"testing"

	"voronet"
	"voronet/internal/kleinberg"
	"voronet/internal/sim"
	"voronet/internal/stats"
	"voronet/internal/workload"
)

// benchN is the overlay size used by the figure benchmarks; the paper uses
// 300 000, which the cmd/voronet-bench harness reproduces.
const benchN = 20000

// BenchmarkFig5DegreeDistribution regenerates Fig 5: the out-degree
// (|vn(o)|) histogram under the uniform and highly skewed distributions.
func BenchmarkFig5DegreeDistribution(b *testing.B) {
	b.ReportAllocs()
	for _, dist := range sim.Fig5Distributions {
		b.Run(dist, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				h, err := sim.DegreeExperiment{N: benchN, Distribution: dist, Seed: 42}.Run()
				if err != nil {
					b.Fatal(err)
				}
				mode, _ := h.Mode()
				b.ReportMetric(float64(mode), "degree-mode")
				b.ReportMetric(h.Mean(), "degree-mean")
				b.ReportMetric(h.MassIn(3, 9), "mass3to9")
			}
		})
	}
}

// BenchmarkFig6RouteLength regenerates one point of each Fig 6 curve: mean
// greedy route length per distribution. Close neighbours are excluded from
// the candidate set, matching the measurement the paper's curves are
// consistent with (see EXPERIMENTS.md).
func BenchmarkFig6RouteLength(b *testing.B) {
	b.ReportAllocs()
	for _, dist := range sim.Fig6Distributions {
		b.Run(dist, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				pts, err := sim.RouteExperiment{
					MaxN: benchN, Samples: 500, Distribution: dist,
					DisableCloseNeighbours: true, Seed: 7,
				}.Run()
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(pts[len(pts)-1].MeanHops, "hops")
			}
		})
	}
}

// BenchmarkFig7PolylogFit regenerates Fig 7: the slope of log(H) against
// log(log(N)), expected ≈ 2.
func BenchmarkFig7PolylogFit(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pts, err := sim.RouteExperiment{
			MaxN: benchN, Checkpoint: benchN / 8, Samples: 500,
			Distribution: "uniform", DisableCloseNeighbours: true, Seed: 11,
		}.Run()
		if err != nil {
			b.Fatal(err)
		}
		fit := sim.FitPolylog(pts)
		b.ReportMetric(fit.Slope, "slope")
		b.ReportMetric(fit.R2, "r2")
	}
}

// BenchmarkFig8LongLinkCount regenerates Fig 8: mean route length as a
// function of the number of long-range links per object.
func BenchmarkFig8LongLinkCount(b *testing.B) {
	b.ReportAllocs()
	for _, k := range []int{1, 2, 4, 6, 8, 10} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				pts, err := sim.RouteExperiment{
					MaxN: benchN, Samples: 500, Distribution: "uniform",
					LongLinks: k, DisableCloseNeighbours: true, Seed: 13,
				}.Run()
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(pts[len(pts)-1].MeanHops, "hops")
			}
		})
	}
}

// BenchmarkAblationNoCloseNeighbours (A1) compares routing with and
// without cn(o) as shortcut candidates on skewed data.
func BenchmarkAblationNoCloseNeighbours(b *testing.B) {
	b.ReportAllocs()
	for _, mode := range []struct {
		name    string
		disable bool
	}{{"with-cn", false}, {"no-cn", true}} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				pts, err := sim.RouteExperiment{
					MaxN: benchN / 2, Samples: 500, Distribution: "alpha5",
					DisableCloseNeighbours: mode.disable, Seed: 17,
				}.Run()
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(pts[len(pts)-1].MeanHops, "hops")
			}
		})
	}
}

// BenchmarkAblationNoLongLinks (A2): pure Delaunay greedy routing is
// polynomial (Θ(√N) hops), the reason long links exist.
func BenchmarkAblationNoLongLinks(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pts, err := sim.RouteExperiment{
			MaxN: benchN / 2, Samples: 300, Distribution: "uniform",
			DisableLongLinks: true, Seed: 19,
		}.Run()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(pts[len(pts)-1].MeanHops, "hops")
	}
}

// BenchmarkAblationExponent (A3) sweeps the long-link length exponent s;
// Kleinberg's theorem places the asymptotic optimum at s = 2.
func BenchmarkAblationExponent(b *testing.B) {
	b.ReportAllocs()
	// 0.01 stands in for the area-uniform s=0 regime: the Config zero
	// value selects the paper default s=2.
	for _, s := range []float64{0.01, 1, 2, 3} {
		b.Run(fmt.Sprintf("s=%g", s), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				pts, err := sim.RouteExperiment{
					MaxN: benchN / 2, Samples: 500, Distribution: "uniform",
					LongLinkExponent: s, DisableCloseNeighbours: true, Seed: 23,
				}.Run()
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(pts[len(pts)-1].MeanHops, "hops")
			}
		})
	}
}

// BenchmarkKleinbergBaseline (A4) routes on Kleinberg's grid of comparable
// size, the model VoroNet generalises (§2.1).
func BenchmarkKleinbergBaseline(b *testing.B) {
	b.ReportAllocs()
	rng := rand.New(rand.NewSource(29))
	side := 100 // 10 000 nodes
	g := kleinberg.New(side, 1, 2, rng)
	b.ResetTimer()
	var agg stats.Running
	for i := 0; i < b.N; i++ {
		h, err := g.MeanRouteLength(200, rng)
		if err != nil {
			b.Fatal(err)
		}
		agg.Add(h)
	}
	b.ReportMetric(agg.Mean(), "hops")
}

// BenchmarkInsert measures raw object insertion (tessellation update, cn
// index, long-link resolution).
func BenchmarkInsert(b *testing.B) {
	b.ReportAllocs()
	ov := voronet.New(voronet.Config{NMax: 1 << 20, Seed: 31})
	rng := rand.New(rand.NewSource(31))
	src := &workload.Uniform{Rand: rng}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ov.Insert(src.Next()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkJoin measures the full protocol join (Algorithm 1: routing,
// fictive objects, long-link search).
func BenchmarkJoin(b *testing.B) {
	b.ReportAllocs()
	ov := voronet.New(voronet.Config{NMax: 1 << 20, Seed: 37})
	rng := rand.New(rand.NewSource(37))
	src := &workload.Uniform{Rand: rng}
	var last voronet.ObjectID = voronet.NoObject
	for i := 0; i < 2000; i++ {
		if id, err := ov.Insert(src.Next()); err == nil {
			last = id
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id, err := ov.Join(src.Next(), last)
		if err != nil {
			b.Fatal(err)
		}
		last = id
	}
}

// BenchmarkRouteToObject measures one greedy route on a 20k overlay.
func BenchmarkRouteToObject(b *testing.B) {
	b.ReportAllocs()
	ov := voronet.New(voronet.Config{NMax: benchN, Seed: 41})
	rng := rand.New(rand.NewSource(41))
	src := &workload.Uniform{Rand: rng}
	for ov.Len() < benchN {
		ov.Insert(src.Next())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a, _ := ov.RandomObject(rng)
		c, _ := ov.RandomObject(rng)
		if _, err := ov.RouteToObject(a, c); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStorePut measures an object-store PUT end to end on the
// simulator mirror: Algorithm 4 routing to the key's region owner plus
// storage and replication to the owner's neighbourhood.
func BenchmarkStorePut(b *testing.B) {
	b.ReportAllocs()
	ov := voronet.New(voronet.Config{NMax: benchN, Seed: 47})
	rng := rand.New(rand.NewSource(47))
	src := &workload.Uniform{Rand: rng}
	for ov.Len() < benchN/2 {
		ov.Insert(src.Next())
	}
	st := voronet.NewStore(ov, voronet.DefaultReplication)
	from, _ := ov.RandomObject(rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := st.Put(from, src.Next(), []byte("benchmark-payload")); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStoreGet measures an object-store GET end to end on a mirror
// pre-loaded with keys.
func BenchmarkStoreGet(b *testing.B) {
	b.ReportAllocs()
	ov := voronet.New(voronet.Config{NMax: benchN, Seed: 53})
	rng := rand.New(rand.NewSource(53))
	src := &workload.Uniform{Rand: rng}
	for ov.Len() < benchN/2 {
		ov.Insert(src.Next())
	}
	st := voronet.NewStore(ov, voronet.DefaultReplication)
	from, _ := ov.RandomObject(rng)
	keys := make([]voronet.Point, 2000)
	for i := range keys {
		keys[i] = src.Next()
		if _, _, err := st.Put(from, keys[i], []byte("benchmark-payload")); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := st.Get(from, keys[i%len(keys)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHandleQuery measures Algorithm 4 end to end (routing plus the
// fictive insert/remove dance).
func BenchmarkHandleQuery(b *testing.B) {
	b.ReportAllocs()
	ov := voronet.New(voronet.Config{NMax: benchN, Seed: 43})
	rng := rand.New(rand.NewSource(43))
	src := &workload.Uniform{Rand: rng}
	for ov.Len() < benchN/2 {
		ov.Insert(src.Next())
	}
	var from voronet.ObjectID
	from, _ = ov.RandomObject(rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ov.HandleQuery(from, voronet.Pt(rng.Float64(), rng.Float64())); err != nil {
			b.Fatal(err)
		}
	}
}
