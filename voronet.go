// Package voronet is a Go implementation of VoroNet, the object-to-object
// peer-to-peer overlay network of Beaumont, Kermarrec, Marchal and Rivière
// (IPDPS 2007; INRIA research report RR-5833).
//
// VoroNet links application objects — not hosts — in a 2-D attribute space:
// each object is a point of the unit square, its identifier is its
// attribute values, and the overlay graph is the Delaunay triangulation of
// the objects (the dual of their Voronoi tessellation) augmented with
// Kleinberg-style long-range links. Greedy routing over an object's view —
// its Voronoi neighbours vn(o), its close neighbours cn(o) (objects within
// distance dmin) and its long-range neighbours LRn(o) — reaches any point
// of the attribute space in O(log² N) expected hops for any object
// distribution, which is the paper's central theorem.
//
// # Quick start
//
//	ov := voronet.New(voronet.Config{NMax: 100000})
//	a, _ := ov.Insert(voronet.Pt(0.25, 0.75))
//	b, _ := ov.Insert(voronet.Pt(0.80, 0.10))
//	hops, _ := ov.RouteToObject(a, b)
//	owner, _ := ov.Owner(voronet.Pt(0.5, 0.5), a)
//
//	st := voronet.NewStore(ov, voronet.DefaultReplication)
//	st.Put(a, voronet.Pt(0.5, 0.5), []byte("payload"))
//	val, hops, _ := st.Get(b, voronet.Pt(0.5, 0.5))
//
// The package re-exports the simulation engine (internal/core): one
// process holds the tessellation the distributed protocol maintains
// collectively, with per-object views and exact protocol cost accounting
// per the paper's Algorithms 1–5. The genuinely distributed,
// message-passing node (internal/node, internal/transport) realises the
// same protocol over TCP or an in-memory bus; see examples/distributed and
// cmd/voronet-node.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// reproduction of every figure of the paper's evaluation.
package voronet

import (
	"io"

	"voronet/internal/core"
	"voronet/internal/geom"
	"voronet/internal/proto"
	"voronet/internal/store"
)

// Point is a position in the 2-D attribute space (the unit square).
type Point = geom.Point

// Pt builds a Point.
func Pt(x, y float64) Point { return geom.Pt(x, y) }

// Dist returns the Euclidean distance between two points.
func Dist(a, b Point) float64 { return geom.Dist(a, b) }

// ObjectID identifies an overlay object. IDs are never reused.
type ObjectID = core.ObjectID

// NoObject is the invalid object ID.
const NoObject = core.NoObject

// Config parameterises an overlay; see the field docs in internal/core.
type Config = core.Config

// Object is an overlay object with its protocol state.
type Object = core.Object

// BackRef identifies one long link of one object (a BLRn entry).
type BackRef = core.BackRef

// Counters accounts protocol costs (Greedyneighbour calls, maintenance
// messages, fictive insertions).
type Counters = core.Counters

// RouteResult reports a point routing outcome (Algorithm 5).
type RouteResult = core.RouteResult

// QueryStats accounts the cost of a range or radius query.
type QueryStats = core.QueryStats

// Overlay is a VoroNet overlay. It follows a single-writer / many-readers
// discipline: mutating and serially-accounted operations (Insert, Join,
// Remove, HandleQuery, RouteToObject, and the scratch-backed accessors
// such as VoronoiNeighbors and Cell) serialise behind an internal write
// lock, while the Router read engine, the Store fast path and the
// scratch-free accessors (Owner, Position, Degree, ...) run under the
// read lock — so routing, owner resolution and store reads scale across
// cores, concurrently with one writer. Fan concurrent reads through one
// Router per goroutine.
type Overlay = core.Overlay

// Errors returned by overlay operations.
var (
	ErrDuplicate = core.ErrDuplicate
	ErrNotFound  = core.ErrNotFound
	ErrEmpty     = core.ErrEmpty
)

// RoutePair is one sampled couple for Overlay.MeasureRoutes.
type RoutePair = core.RoutePair

// Router is the overlay's concurrent read engine: mutation-free greedy
// routing, owner resolution and range/radius queries over private scratch
// state, guarded by the overlay's read lock. Create one per goroutine with
// Overlay.NewRouter; any number may run concurrently, including while a
// single writer joins and removes objects. See Overlay.MeasureRoutes for
// the pre-built parallel route measurement.
type Router = core.Router

// Store is the attribute-addressed object store riding on an overlay:
// values are keyed by points of the attribute space, live at the owner of
// the key's Voronoi region, and are replicated to the owner's Voronoi
// neighbours. The distributed realisation (internal/node) speaks the same
// protocol over the wire; this simulator mirror runs identical workloads
// in one process (see DESIGN.md §store).
type Store = core.Store

// StoreRecord is one stored payload with its version and tombstone flag.
type StoreRecord = proto.StoreRecord

// StoreOp is one operation for the Store.Do worker fan-out.
type StoreOp = core.StoreOp

// StoreResult reports one completed StoreOp.
type StoreResult = core.StoreResult

// OpKind selects the operation of a StoreOp.
type OpKind = core.OpKind

// StoreOp kinds.
const (
	OpPut    = core.OpPut
	OpGet    = core.OpGet
	OpDelete = core.OpDelete
)

// DefaultReplication is the default store replication factor R.
const DefaultReplication = store.DefaultReplication

// Store errors.
var (
	// ErrKeyNotFound reports a Get or Delete for a missing or deleted key.
	ErrKeyNotFound = store.ErrNotFound
	// ErrStoreTimeout reports a routed store operation whose reply did not
	// arrive in time (distributed node only).
	ErrStoreTimeout = store.ErrTimeout
)

// NewStore attaches an empty object store to ov; replication <= 0 selects
// DefaultReplication.
func NewStore(ov *Overlay, replication int) *Store { return core.NewStore(ov, replication) }

// New creates an empty overlay provisioned for cfg.NMax objects.
func New(cfg Config) *Overlay { return core.New(cfg) }

// Load reconstructs an overlay from an Overlay.Save snapshot.
func Load(r io.Reader) (*Overlay, error) { return core.Load(r) }

// DefaultDMin returns the paper's close-neighbour radius 1/√(π·NMax).
func DefaultDMin(nmax int) float64 { return core.DefaultDMin(nmax) }
