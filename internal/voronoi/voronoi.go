// Package voronoi provides a Voronoi-diagram view over a Delaunay
// triangulation: cell polygons, point-in-region tests and the paper's
// DistanceToRegion primitive (§4.2.3), which greedy routing evaluates at
// every step of Algorithm 5.
//
// Cells are computed on demand by halfplane intersection against the
// triangulation's neighbour sets; unbounded cells of hull sites are clipped
// against a large bounding box. The box is far larger than the VoroNet
// attribute domain (the unit square plus the √2-radius band reachable by
// long-range targets), so clipping never changes any distance the protocol
// evaluates.
package voronoi

import (
	"math"

	"voronet/internal/delaunay"
	"voronet/internal/geom"
)

// DefaultBound is the half-extent of the clipping box, centred on (0.5,
// 0.5). Coordinates VoroNet manipulates stay within [-√2, 1+√2].
const DefaultBound = 8.0

// Diagram is a Voronoi view over a triangulation. It holds scratch buffers
// and is not safe for concurrent use; create one per goroutine.
type Diagram struct {
	tr   *delaunay.Triangulation
	lo   float64
	hi   float64
	bufA []geom.Point
	bufB []geom.Point
	nbuf []delaunay.VertexID
}

// New returns a Voronoi view of tr with the default clipping box.
func New(tr *delaunay.Triangulation) *Diagram {
	return &Diagram{tr: tr, lo: 0.5 - DefaultBound, hi: 0.5 + DefaultBound}
}

// Cell returns the Voronoi region of site v as a convex counterclockwise
// polygon, clipped to the diagram's bounding box. The slice is reused by
// subsequent calls; copy it if it must persist.
//
// With fewer than two sites (or in degenerate collinear mode) cells are
// still well defined as halfplane intersections of the site's chain
// neighbours.
func (d *Diagram) Cell(v delaunay.VertexID) []geom.Point {
	o := d.tr.Point(v)
	// Start from the bounding box...
	d.bufA = append(d.bufA[:0],
		geom.Pt(d.lo, d.lo), geom.Pt(d.hi, d.lo), geom.Pt(d.hi, d.hi), geom.Pt(d.lo, d.hi))
	poly := d.bufA
	out := d.bufB[:0]
	// ...and clip with the bisector halfplane of every Voronoi neighbour.
	d.nbuf = d.tr.Neighbors(v, d.nbuf)
	for _, u := range d.nbuf {
		q := d.tr.Point(u)
		// Halfplane closer to o than to u: n·x <= c with n = q-o,
		// c = n·midpoint.
		n := q.Sub(o)
		m := o.Add(q).Scale(0.5)
		c := n.Dot(m)
		out = clipHalfplane(poly, n, c, out)
		poly, out = out, poly[:0]
		if len(poly) == 0 {
			break
		}
	}
	d.bufA, d.bufB = poly, out
	return poly
}

// clipHalfplane clips convex ccw polygon poly against {x : n·x <= c},
// appending the result to dst (Sutherland–Hodgman).
func clipHalfplane(poly []geom.Point, n geom.Point, c float64, dst []geom.Point) []geom.Point {
	k := len(poly)
	for i := 0; i < k; i++ {
		cur := poly[i]
		nxt := poly[(i+1)%k]
		curIn := n.Dot(cur) <= c
		nxtIn := n.Dot(nxt) <= c
		if curIn {
			dst = append(dst, cur)
		}
		if curIn != nxtIn {
			// Intersection of segment with the line n·x = c.
			den := n.Dot(nxt.Sub(cur))
			if den != 0 {
				t := (c - n.Dot(cur)) / den
				dst = append(dst, cur.Add(nxt.Sub(cur).Scale(t)))
			}
		}
	}
	return dst
}

// Contains reports whether p lies in the (closed) Voronoi region of v,
// i.e. whether v is a nearest site to p. The test is local: v is nearest
// iff it is at least as close to p as every one of its Voronoi neighbours.
func (d *Diagram) Contains(v delaunay.VertexID, p geom.Point) bool {
	o := d.tr.Point(v)
	dv := geom.Dist2(p, o)
	d.nbuf = d.tr.Neighbors(v, d.nbuf)
	for _, u := range d.nbuf {
		if geom.Dist2(p, d.tr.Point(u)) < dv {
			return false
		}
	}
	return true
}

// DistanceToRegionBeyond reports whether dist(p, R(v)) provably exceeds
// thresh, using the maximum bisector violation as a lower bound: R(v) is
// contained in every halfplane {x : |x−v| ≤ |x−u|}, so p's distance to the
// region is at least its distance past any single bisector. One pass over
// the neighbours, no cell construction — this is what lets greedy routing
// evaluate Algorithm 5's stop condition in O(deg) per hop, falling back to
// the exact DistanceToRegion only when the bound cannot decide (i.e. near
// the stop). A false result means "not provable", not "within thresh".
func (d *Diagram) DistanceToRegionBeyond(v delaunay.VertexID, p geom.Point, thresh float64) bool {
	o := d.tr.Point(v)
	d.nbuf = d.tr.Neighbors(v, d.nbuf)
	for _, u := range d.nbuf {
		q := d.tr.Point(u)
		n := q.Sub(o)
		nn := n.Dot(n)
		if nn == 0 {
			continue
		}
		// Signed distance of p past the bisector of (v, u):
		// s = (n·p − n·m) / |n| with m the midpoint.
		m := o.Add(q).Scale(0.5)
		s := n.Dot(p.Sub(m))
		if s > 0 && s*s > thresh*thresh*nn {
			return true
		}
	}
	return false
}

// DistanceToRegion returns the point of R(v) closest to p and its distance.
// This is the paper's DistanceToRegion primitive executed at object v for a
// routing target p: if p lies in R(v) the result is p itself with distance
// zero, otherwise the nearest boundary point of the cell.
func (d *Diagram) DistanceToRegion(v delaunay.VertexID, p geom.Point) (geom.Point, float64) {
	if d.Contains(v, p) {
		return p, 0
	}
	poly := d.Cell(v)
	if len(poly) == 0 {
		// Numerically impossible for a live site (its cell contains it);
		// fall back to the site position.
		o := d.tr.Point(v)
		return o, geom.Dist(p, o)
	}
	best := poly[0]
	bestD := math.Inf(1)
	for i := range poly {
		a := poly[i]
		b := poly[(i+1)%len(poly)]
		q := geom.ClosestPointOnSegment(p, a, b)
		if dd := geom.Dist2(p, q); dd < bestD {
			best, bestD = q, dd
		}
	}
	return best, math.Sqrt(bestD)
}

// CellArea returns the area of the (clipped) Voronoi region of v.
func (d *Diagram) CellArea(v delaunay.VertexID) float64 {
	poly := d.Cell(v)
	return polygonArea(poly)
}

// CellAreaIn returns the area of R(v) intersected with the axis-aligned
// box [lo.X, hi.X] × [lo.Y, hi.Y]. Over the unit square these areas sum to
// exactly 1, which makes 1/CellAreaIn an unbiased decentralized estimator
// of the overlay size (used by the dynamic-NMax extension).
func (d *Diagram) CellAreaIn(v delaunay.VertexID, lo, hi geom.Point) float64 {
	poly := append([]geom.Point(nil), d.Cell(v)...)
	var out []geom.Point
	clips := []struct {
		n geom.Point
		c float64
	}{
		{geom.Pt(-1, 0), -lo.X},
		{geom.Pt(1, 0), hi.X},
		{geom.Pt(0, -1), -lo.Y},
		{geom.Pt(0, 1), hi.Y},
	}
	for _, cl := range clips {
		out = clipHalfplane(poly, cl.n, cl.c, out[:0])
		poly, out = out, poly
		if len(poly) == 0 {
			return 0
		}
	}
	return polygonArea(poly)
}

func polygonArea(poly []geom.Point) float64 {
	if len(poly) < 3 {
		return 0
	}
	s := 0.0
	for i := range poly {
		a := poly[i]
		b := poly[(i+1)%len(poly)]
		s += a.Cross(b)
	}
	return s / 2
}

// LocalCell computes the Voronoi region of `self` against an explicit
// neighbour list, clipped to a box of half-extent bound around (0.5, 0.5).
// This is how a *distributed* VoroNet node reasons about its own region —
// the region is fully determined by the node's view (its Voronoi
// neighbours), no global structure needed. The result is a convex ccw
// polygon.
func LocalCell(self geom.Point, neighbors []geom.Point, bound float64) []geom.Point {
	if bound <= 0 {
		bound = DefaultBound
	}
	lo, hi := 0.5-bound, 0.5+bound
	poly := []geom.Point{
		geom.Pt(lo, lo), geom.Pt(hi, lo), geom.Pt(hi, hi), geom.Pt(lo, hi),
	}
	var out []geom.Point
	for _, q := range neighbors {
		n := q.Sub(self)
		m := self.Add(q).Scale(0.5)
		out = clipHalfplane(poly, n, n.Dot(m), out[:0])
		poly, out = out, poly
		if len(poly) == 0 {
			break
		}
	}
	return poly
}

// CellVertices returns the Voronoi vertices (circumcentres of the incident
// Delaunay faces) of an interior site in counterclockwise order. For hull
// sites the unbounded cell has no such finite representation; ok is false.
// Cell (clipped) covers both cases.
func (d *Diagram) CellVertices(v delaunay.VertexID, buf []geom.Point) (pts []geom.Point, ok bool) {
	pts = buf[:0]
	if d.tr.IsHullVertex(v) || d.tr.Dimension() < 2 {
		return pts, false
	}
	ok = true
	d.tr.FacesAround(v, func(a, b, c delaunay.VertexID) bool {
		cc, fine := geom.Circumcenter(d.tr.Point(a), d.tr.Point(b), d.tr.Point(c))
		if !fine {
			ok = false
			return false
		}
		pts = append(pts, cc)
		return true
	})
	return pts, ok
}
