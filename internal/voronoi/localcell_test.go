package voronoi

import (
	"math"
	"math/rand"
	"testing"

	"voronet/internal/delaunay"
	"voronet/internal/geom"
)

func TestLocalCellMatchesDiagramCell(t *testing.T) {
	// A node's region computed from its neighbour view alone must equal
	// the cell computed from the global triangulation (same halfplanes).
	tr, ids := buildRandom(t, 120, 61)
	d := New(tr)
	for _, v := range ids[:40] {
		global := append([]geom.Point(nil), d.Cell(v)...)
		var nbrs []geom.Point
		for _, u := range tr.Neighbors(v, nil) {
			nbrs = append(nbrs, tr.Point(u))
		}
		local := LocalCell(tr.Point(v), nbrs, 0)
		if math.Abs(polygonArea(global)-polygonArea(local)) > 1e-9 {
			t.Fatalf("site %d: local area %g vs global %g", v,
				polygonArea(local), polygonArea(global))
		}
	}
}

func TestLocalCellNoNeighbors(t *testing.T) {
	cell := LocalCell(geom.Pt(0.5, 0.5), nil, 2)
	if polygonArea(cell) != 16 {
		t.Fatalf("empty neighbour set must give the whole box: area %g", polygonArea(cell))
	}
}

func TestCellAreaInUnitSquareSumsToOne(t *testing.T) {
	tr, ids := buildRandom(t, 80, 62)
	d := New(tr)
	total := 0.0
	for _, v := range ids {
		total += d.CellAreaIn(v, geom.Pt(0, 0), geom.Pt(1, 1))
	}
	if math.Abs(total-1) > 1e-9 {
		t.Fatalf("clipped areas sum to %g, want 1", total)
	}
}

func TestCellAreaInDisjointBox(t *testing.T) {
	tr, ids := buildRandom(t, 30, 63)
	d := New(tr)
	// A box far away from all sites intersects only hull cells; a box
	// outside the clip bound intersects nothing.
	if a := d.CellAreaIn(ids[0], geom.Pt(50, 50), geom.Pt(51, 51)); a != 0 {
		t.Fatalf("area in far box: %g", a)
	}
}

func TestConvexPolygonIntersectsSegment(t *testing.T) {
	sq := []geom.Point{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 1, Y: 1}, {X: 0, Y: 1}}
	cases := []struct {
		a, b geom.Point
		want bool
	}{
		{geom.Pt(-1, 0.5), geom.Pt(2, 0.5), true},    // crosses
		{geom.Pt(0.2, 0.2), geom.Pt(0.8, 0.8), true}, // inside
		{geom.Pt(-1, -1), geom.Pt(-0.5, 2), false},   // left of square
		{geom.Pt(-1, 1.5), geom.Pt(2, 1.5), false},   // above
		{geom.Pt(1, 1), geom.Pt(2, 2), true},         // touches corner
		{geom.Pt(-1, 2), geom.Pt(2, -1), true},       // diagonal through
	}
	for _, tc := range cases {
		if got := geom.ConvexPolygonIntersectsSegment(sq, tc.a, tc.b); got != tc.want {
			t.Errorf("segment %v-%v: got %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
	if geom.ConvexPolygonIntersectsSegment(sq[:2], geom.Pt(0, 0), geom.Pt(1, 1)) {
		t.Error("degenerate polygon must not intersect")
	}
}

func TestLocalCellRandomContainment(t *testing.T) {
	// Every point of the local cell must be at least as close to self as
	// to any neighbour (sampled check).
	rng := rand.New(rand.NewSource(64))
	self := geom.Pt(0.4, 0.6)
	var nbrs []geom.Point
	for i := 0; i < 8; i++ {
		nbrs = append(nbrs, geom.Pt(rng.Float64(), rng.Float64()))
	}
	cell := LocalCell(self, nbrs, 0)
	if len(cell) < 3 {
		t.Fatal("degenerate local cell")
	}
	// Sample interior points via convex combinations of vertices.
	for s := 0; s < 200; s++ {
		w := make([]float64, len(cell))
		sum := 0.0
		for i := range w {
			w[i] = rng.Float64()
			sum += w[i]
		}
		var p geom.Point
		for i := range w {
			p = p.Add(cell[i].Scale(w[i] / sum))
		}
		ds := geom.Dist2(p, self)
		for _, q := range nbrs {
			if geom.Dist2(p, q) < ds-1e-9 {
				t.Fatalf("cell point %v closer to neighbour %v", p, q)
			}
		}
	}
	_ = delaunay.NoVertex // keep the import for the shared test helpers
}
