package voronoi

import (
	"math"
	"math/rand"
	"testing"

	"voronet/internal/delaunay"
	"voronet/internal/geom"
)

func buildRandom(t *testing.T, n int, seed int64) (*delaunay.Triangulation, []delaunay.VertexID) {
	t.Helper()
	tr := delaunay.New()
	rng := rand.New(rand.NewSource(seed))
	var ids []delaunay.VertexID
	for len(ids) < n {
		v, err := tr.Insert(geom.Pt(rng.Float64(), rng.Float64()), delaunay.NoVertex)
		if err != nil {
			continue
		}
		ids = append(ids, v)
	}
	return tr, ids
}

func TestContainsMatchesNearestSite(t *testing.T) {
	tr, _ := buildRandom(t, 150, 11)
	d := New(tr)
	rng := rand.New(rand.NewSource(12))
	for q := 0; q < 400; q++ {
		p := geom.Pt(rng.Float64()*1.4-0.2, rng.Float64()*1.4-0.2)
		nearest := tr.NearestSite(p, delaunay.NoVertex)
		if !d.Contains(nearest, p) {
			t.Fatalf("nearest site's region must contain the query %v", p)
		}
		// And points are in at most one open region: any other site whose
		// region claims p must be equidistant.
		dn := geom.Dist2(p, tr.Point(nearest))
		cnt := 0
		tr.ForEachSite(func(v delaunay.VertexID, pt geom.Point) bool {
			if d.Contains(v, p) {
				cnt++
				if math.Abs(geom.Dist2(p, pt)-dn) > 1e-12 {
					t.Fatalf("region of non-nearest site %v contains %v", pt, p)
				}
			}
			return true
		})
		if cnt < 1 {
			t.Fatalf("no region contains %v", p)
		}
	}
}

func TestCellContainsSite(t *testing.T) {
	tr, ids := buildRandom(t, 100, 13)
	d := New(tr)
	for _, v := range ids {
		poly := d.Cell(v)
		if len(poly) < 3 {
			t.Fatalf("cell of %d has %d vertices", v, len(poly))
		}
		o := tr.Point(v)
		// o strictly inside its own cell (convex, ccw).
		for i := range poly {
			a := poly[i]
			b := poly[(i+1)%len(poly)]
			if (b.X-a.X)*(o.Y-a.Y)-(b.Y-a.Y)*(o.X-a.X) < 0 {
				t.Fatalf("site %v outside its own cell", o)
			}
		}
	}
}

func TestCellAreasTileTheBox(t *testing.T) {
	tr, ids := buildRandom(t, 60, 14)
	d := New(tr)
	total := 0.0
	for _, v := range ids {
		total += d.CellArea(v)
	}
	box := (2 * DefaultBound) * (2 * DefaultBound)
	if math.Abs(total-box) > 1e-6*box {
		t.Fatalf("cell areas sum to %g, want %g", total, box)
	}
}

func TestDistanceToRegion(t *testing.T) {
	tr, ids := buildRandom(t, 120, 15)
	d := New(tr)
	rng := rand.New(rand.NewSource(16))
	for q := 0; q < 300; q++ {
		p := geom.Pt(rng.Float64()*1.6-0.3, rng.Float64()*1.6-0.3)
		v := ids[rng.Intn(len(ids))]
		z, dist := d.DistanceToRegion(v, p)
		// The returned point must be (weakly) inside the region.
		if !d.Contains(v, z) {
			// Allow boundary round-off: z must be no closer to any
			// neighbour than to v beyond a tiny tolerance.
			o := tr.Point(v)
			dv := geom.Dist(z, o)
			ok := true
			for _, u := range tr.Neighbors(v, nil) {
				if geom.Dist(z, tr.Point(u)) < dv-1e-9 {
					ok = false
					break
				}
			}
			if !ok {
				t.Fatalf("DistanceToRegion returned a point outside R(%d)", v)
			}
		}
		if math.Abs(geom.Dist(p, z)-dist) > 1e-9 {
			t.Fatalf("distance inconsistent with returned point")
		}
		// If p is in the region, distance must be 0 and z == p.
		if d.Contains(v, p) && (dist != 0 || z != p) {
			t.Fatalf("p in region but DistanceToRegion = %v, %g", z, dist)
		}
		// The distance is a lower bound for the distance to the site and is
		// achieved by no sampled interior point.
		if dist > geom.Dist(p, tr.Point(v))+1e-12 {
			t.Fatalf("distance to region exceeds distance to site")
		}
	}
}

func TestDistanceToRegionBruteForce(t *testing.T) {
	// Sample the cell of a site densely; no sample may be closer than the
	// reported distance (minus tolerance).
	tr, ids := buildRandom(t, 40, 17)
	d := New(tr)
	rng := rand.New(rand.NewSource(18))
	for q := 0; q < 50; q++ {
		v := ids[rng.Intn(len(ids))]
		p := geom.Pt(rng.Float64()*2-0.5, rng.Float64()*2-0.5)
		_, dist := d.DistanceToRegion(v, p)
		for s := 0; s < 400; s++ {
			sample := geom.Pt(rng.Float64()*2-0.5, rng.Float64()*2-0.5)
			if d.Contains(v, sample) && geom.Dist(p, sample) < dist-1e-9 {
				t.Fatalf("sample %v in R(%d) closer (%g) than reported distance %g",
					sample, v, geom.Dist(p, sample), dist)
			}
		}
	}
}

func TestCellVertices(t *testing.T) {
	tr := delaunay.New()
	for _, p := range []geom.Point{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 1, Y: 1}, {X: 0, Y: 1}} {
		if _, err := tr.Insert(p, delaunay.NoVertex); err != nil {
			t.Fatal(err)
		}
	}
	c, err := tr.Insert(geom.Pt(0.5, 0.5), delaunay.NoVertex)
	if err != nil {
		t.Fatal(err)
	}
	d := New(tr)
	pts, ok := d.CellVertices(c, nil)
	if !ok {
		t.Fatal("interior cell must have finite vertices")
	}
	if len(pts) != 4 {
		t.Fatalf("centre cell of square has %d Voronoi vertices, want 4", len(pts))
	}
	// Hull site: no finite representation.
	var hull delaunay.VertexID
	tr.ForEachSite(func(v delaunay.VertexID, _ geom.Point) bool {
		if tr.IsHullVertex(v) {
			hull = v
			return false
		}
		return true
	})
	if _, ok := d.CellVertices(hull, nil); ok {
		t.Fatal("hull cell must report no finite vertex set")
	}
}

func TestDegenerateModeCells(t *testing.T) {
	// Two sites: cells are halfplanes (clipped to the box).
	tr := delaunay.New()
	a, _ := tr.Insert(geom.Pt(0.25, 0.5), delaunay.NoVertex)
	b, _ := tr.Insert(geom.Pt(0.75, 0.5), delaunay.NoVertex)
	d := New(tr)
	if !d.Contains(a, geom.Pt(0.1, 0.9)) || d.Contains(a, geom.Pt(0.9, 0.1)) {
		t.Fatal("halfplane containment wrong for two sites")
	}
	areaA := d.CellArea(a)
	areaB := d.CellArea(b)
	box := (2 * DefaultBound) * (2 * DefaultBound)
	if math.Abs(areaA+areaB-box) > 1e-6*box {
		t.Fatalf("two halfplanes must tile the box: %g + %g", areaA, areaB)
	}
	z, dist := d.DistanceToRegion(a, geom.Pt(0.9, 0.5))
	if math.Abs(dist-0.4) > 1e-9 || math.Abs(z.X-0.5) > 1e-9 {
		t.Fatalf("distance to halfplane: z=%v d=%g", z, dist)
	}
}

func BenchmarkDistanceToRegion(b *testing.B) {
	tr := delaunay.New()
	rng := rand.New(rand.NewSource(19))
	var ids []delaunay.VertexID
	for len(ids) < 5000 {
		if v, err := tr.Insert(geom.Pt(rng.Float64(), rng.Float64()), delaunay.NoVertex); err == nil {
			ids = append(ids, v)
		}
	}
	d := New(tr)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := ids[i%len(ids)]
		d.DistanceToRegion(v, geom.Pt(rng.Float64(), rng.Float64()))
	}
}
