package workload

import (
	"math"
	"math/rand"
	"testing"
)

func TestUniformInSquare(t *testing.T) {
	u := &Uniform{Rand: rand.New(rand.NewSource(1))}
	var sx, sy float64
	n := 20000
	for i := 0; i < n; i++ {
		p := u.Next()
		if !p.InUnitSquare() {
			t.Fatalf("point %v outside unit square", p)
		}
		sx += p.X
		sy += p.Y
	}
	if math.Abs(sx/float64(n)-0.5) > 0.02 || math.Abs(sy/float64(n)-0.5) > 0.02 {
		t.Fatalf("uniform mean off: (%g, %g)", sx/float64(n), sy/float64(n))
	}
}

func TestPowerLawRankFrequencies(t *testing.T) {
	// The frequency of the i-th most popular value must be ∝ 1/i^α:
	// check the ratio of the two most popular cells.
	for _, alpha := range []float64{1, 2, 5} {
		p := NewPowerLaw(alpha, rand.New(rand.NewSource(2)))
		n := 200000
		counts := make([]int, p.Values)
		for i := 0; i < n; i++ {
			pt := p.Next()
			if pt.X < 0 || pt.X >= 1 || pt.Y < 0 || pt.Y >= 1 {
				t.Fatalf("alpha=%g: point %v out of range", alpha, pt)
			}
			counts[int(pt.X*float64(p.Values))]++
		}
		ratio := float64(counts[0]) / float64(counts[1])
		want := math.Pow(2, alpha)
		if math.Abs(ratio-want) > 0.25*want {
			t.Errorf("alpha=%g: rank1/rank2 frequency ratio %.2f, want %.2f", alpha, ratio, want)
		}
	}
}

func TestPowerLawSkewOrdering(t *testing.T) {
	// Higher α concentrates more mass in the top cell.
	top := func(alpha float64) float64 {
		p := NewPowerLaw(alpha, rand.New(rand.NewSource(3)))
		n := 50000
		c := 0
		for i := 0; i < n; i++ {
			if p.Next().X < 1/float64(p.Values) {
				c++
			}
		}
		return float64(c) / float64(n)
	}
	t1, t2, t5 := top(1), top(2), top(5)
	if !(t1 < t2 && t2 < t5) {
		t.Fatalf("top-cell mass not increasing with alpha: %g %g %g", t1, t2, t5)
	}
	if t5 < 0.9 {
		t.Fatalf("alpha=5 top-cell mass %g, want > 0.9 (1/ζ(5)² ≈ 0.93)", t5)
	}
}

func TestClustersStayInSquare(t *testing.T) {
	c := NewClusters(5, 0.05, rand.New(rand.NewSource(4)))
	for i := 0; i < 5000; i++ {
		if !c.Next().InUnitSquare() {
			t.Fatal("cluster point escaped the unit square")
		}
	}
}

func TestGridDeterministicAndDistinct(t *testing.T) {
	g := &Grid{Side: 10}
	seen := map[[2]float64]bool{}
	for i := 0; i < 150; i++ {
		p := g.Next()
		k := [2]float64{p.X, p.Y}
		if seen[k] {
			t.Fatalf("grid produced duplicate %v at step %d", p, i)
		}
		seen[k] = true
	}
}

func TestByName(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, name := range Names() {
		src := ByName(name, rng)
		if src == nil {
			t.Fatalf("ByName(%q) = nil", name)
		}
		if src.Name() == "" {
			t.Fatalf("%q has empty display name", name)
		}
		src.Next()
	}
	if ByName("bogus", rng) != nil {
		t.Fatal("unknown name must return nil")
	}
}

func TestZipfKeysHotKeyPattern(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	z := NewZipfKeys(1.2, 16, rng)
	keys := z.Keys()
	if len(keys) != 16 {
		t.Fatalf("key set size %d", len(keys))
	}
	counts := map[int]int{}
	index := map[[2]float64]int{}
	for i, k := range keys {
		index[[2]float64{k.X, k.Y}] = i
	}
	const draws = 20000
	for i := 0; i < draws; i++ {
		k := z.Next()
		idx, ok := index[[2]float64{k.X, k.Y}]
		if !ok {
			t.Fatalf("draw %v outside the fixed key set", k)
		}
		counts[idx]++
	}
	// Popularity must decrease with rank and concentrate on the head.
	if counts[0] <= counts[8] {
		t.Fatalf("rank 0 drawn %d times, rank 8 %d: not Zipf-skewed", counts[0], counts[8])
	}
	if float64(counts[0])/draws < 0.15 {
		t.Fatalf("hottest key has only %.3f of the mass", float64(counts[0])/draws)
	}
}
