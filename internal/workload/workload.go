// Package workload generates the object-position distributions used in the
// paper's evaluation (§5): a uniform distribution over the unit square and
// power-law ("sparse") distributions in which the frequency of the i-th
// most popular attribute value is proportional to 1/i^α, with α ∈ {1, 2, 5}
// for low, mid and high skew.
//
// The power-law generator discretises each axis into Values cells, draws
// the cell index of each coordinate independently from a Zipf(α)
// distribution, and places the coordinate uniformly inside the chosen cell.
// This realises "frequency of the i-th most popular value ∝ 1/i^α" while
// keeping positions distinct (the paper's objects are distinct points).
// Rank i maps to cell i, so mass concentrates towards the origin corner.
//
// Note that Zipf(α=5) intrinsically puts ~96% of draws on the single most
// popular value whatever the support size (1/ζ(5) ≈ 0.964), so the high-
// skew workload is one giant cluster plus a sparse remainder — "sparse" in
// the paper's terms. We use 64 values per axis so the cluster has spatial
// extent (1/64 ≫ dmin at the paper's 300 000-object scale) rather than
// collapsing below dmin. Even so, objects inside the cluster hold thousands
// of close neighbours; routing measurements that use cn(o) as shortcuts
// therefore collapse for intra-cluster couples, and the paper's Fig 6 shape
// (α=5 ≈ uniform) is recovered exactly when greedy routing uses vn ∪ LRn
// only — see EXPERIMENTS.md for the analysis. Both variants are measured.
//
// All generators are deterministic given their *rand.Rand.
package workload

import (
	"math"
	"math/rand"
	"sort"

	"voronet/internal/geom"
)

// Source yields object positions.
type Source interface {
	// Next returns the next position, in (or near) the unit square.
	Next() geom.Point
	// Name identifies the distribution in reports.
	Name() string
}

// Uniform is the uniform distribution over the unit square.
type Uniform struct {
	Rand *rand.Rand
}

// Next returns a uniform point.
func (u *Uniform) Next() geom.Point {
	return geom.Pt(u.Rand.Float64(), u.Rand.Float64())
}

// Name implements Source.
func (u *Uniform) Name() string { return "uniform" }

// DefaultValues is the per-axis discretisation of the power-law generator
// (see the package comment for why it is coarse).
const DefaultValues = 64

// PowerLaw draws each coordinate from a Zipf(α) distribution over Values
// discrete cells with uniform jitter inside the cell.
type PowerLaw struct {
	Alpha  float64
	Values int
	Rand   *rand.Rand

	cdf []float64 // cumulative Zipf weights
}

// NewPowerLaw returns a power-law source with the given skew α > 0.
func NewPowerLaw(alpha float64, rng *rand.Rand) *PowerLaw {
	p := &PowerLaw{Alpha: alpha, Values: DefaultValues, Rand: rng}
	p.init()
	return p
}

func (p *PowerLaw) init() {
	if p.Values <= 0 {
		p.Values = DefaultValues
	}
	p.cdf = make([]float64, p.Values)
	sum := 0.0
	for i := 0; i < p.Values; i++ {
		sum += 1 / math.Pow(float64(i+1), p.Alpha)
		p.cdf[i] = sum
	}
	for i := range p.cdf {
		p.cdf[i] /= sum
	}
}

// rank draws a cell index from the Zipf distribution by binary search over
// the cumulative weights.
func (p *PowerLaw) rank() int {
	u := p.Rand.Float64()
	lo, hi := 0, len(p.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if p.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Next returns the next skewed point.
func (p *PowerLaw) Next() geom.Point {
	if p.cdf == nil {
		p.init()
	}
	v := float64(p.Values)
	x := (float64(p.rank()) + p.Rand.Float64()) / v
	y := (float64(p.rank()) + p.Rand.Float64()) / v
	return geom.Pt(x, y)
}

// Name implements Source.
func (p *PowerLaw) Name() string {
	switch p.Alpha {
	case 1:
		return "sparse(alpha=1)"
	case 2:
		return "sparse(alpha=2)"
	case 5:
		return "sparse(alpha=5)"
	}
	return "sparse"
}

// Clusters draws points from NumClusters Gaussian blobs with standard
// deviation Sigma, clamped to the unit square. Used by examples and stress
// tests (it produces dense co-located groups like real attribute data).
type Clusters struct {
	NumClusters int
	Sigma       float64
	Rand        *rand.Rand

	centres []geom.Point
}

// NewClusters returns a cluster source.
func NewClusters(n int, sigma float64, rng *rand.Rand) *Clusters {
	c := &Clusters{NumClusters: n, Sigma: sigma, Rand: rng}
	for i := 0; i < n; i++ {
		c.centres = append(c.centres, geom.Pt(rng.Float64(), rng.Float64()))
	}
	return c
}

// Next returns the next clustered point.
func (c *Clusters) Next() geom.Point {
	ctr := c.centres[c.Rand.Intn(len(c.centres))]
	p := geom.Pt(ctr.X+c.Rand.NormFloat64()*c.Sigma, ctr.Y+c.Rand.NormFloat64()*c.Sigma)
	return p.ClampUnitSquare()
}

// Name implements Source.
func (c *Clusters) Name() string { return "clusters" }

// Grid yields the points of a Side×Side lattice in row-major order, then
// repeats with a tiny deterministic offset. It is a degeneracy stress
// source: every lattice square is co-circular and every row/column is
// collinear.
type Grid struct {
	Side int
	i    int
}

// Next returns the next lattice point.
func (g *Grid) Next() geom.Point {
	n := g.Side * g.Side
	idx := g.i % n
	round := g.i / n
	g.i++
	x := float64(idx%g.Side) / float64(g.Side)
	y := float64(idx/g.Side) / float64(g.Side)
	off := float64(round) * 1e-7
	return geom.Pt(x+off, y+off)
}

// Name implements Source.
func (g *Grid) Name() string { return "grid" }

// ZipfKeys yields keys drawn from a fixed set of K distinct uniform points
// with Zipf(α) popularity: the i-th most popular key is drawn with
// probability ∝ 1/i^α. Unlike PowerLaw — whose in-cell jitter makes every
// draw a distinct point — ZipfKeys repeats the same points, which is the
// hot-key access pattern store stress tests need (a handful of keys absorb
// most of the traffic and hammer one owner's region).
type ZipfKeys struct {
	Alpha float64
	K     int
	Rand  *rand.Rand

	keys []geom.Point
	cdf  []float64
}

// NewZipfKeys returns a hot-key source over k distinct keys with skew
// α > 0. The key set itself is drawn uniformly from rng at construction.
// Non-positive k and α fall back to 16 keys and α = 1.
func NewZipfKeys(alpha float64, k int, rng *rand.Rand) *ZipfKeys {
	if k <= 0 {
		k = 16
	}
	if alpha <= 0 {
		alpha = 1
	}
	z := &ZipfKeys{Alpha: alpha, K: k, Rand: rng}
	z.keys = make([]geom.Point, k)
	for i := range z.keys {
		z.keys[i] = geom.Pt(rng.Float64(), rng.Float64())
	}
	z.cdf = make([]float64, k)
	sum := 0.0
	for i := 0; i < k; i++ {
		sum += 1 / math.Pow(float64(i+1), alpha)
		z.cdf[i] = sum
	}
	for i := range z.cdf {
		z.cdf[i] /= sum
	}
	return z
}

// Next returns the next key; the most popular rank maps to keys[0].
func (z *ZipfKeys) Next() geom.Point {
	// cdf ascends to exactly 1 and Float64 draws are < 1, so the search
	// always lands in range.
	return z.keys[sort.SearchFloat64s(z.cdf, z.Rand.Float64())]
}

// Keys returns the underlying key set, most popular first.
func (z *ZipfKeys) Keys() []geom.Point { return append([]geom.Point(nil), z.keys...) }

// Name implements Source.
func (z *ZipfKeys) Name() string { return "zipfkeys" }

// ByName returns the named source: "uniform", "alpha1", "alpha2", "alpha5",
// "clusters" or "grid". It returns nil for unknown names.
func ByName(name string, rng *rand.Rand) Source {
	switch name {
	case "uniform":
		return &Uniform{Rand: rng}
	case "alpha1":
		return NewPowerLaw(1, rng)
	case "alpha2":
		return NewPowerLaw(2, rng)
	case "alpha5":
		return NewPowerLaw(5, rng)
	case "clusters":
		return NewClusters(8, 0.02, rng)
	case "grid":
		return &Grid{Side: 100}
	}
	return nil
}

// Names lists the sources usable with ByName.
func Names() []string {
	return []string{"uniform", "alpha1", "alpha2", "alpha5", "clusters", "grid"}
}
