// Package core implements the VoroNet overlay (Beaumont, Kermarrec,
// Marchal, Rivière — IPDPS 2007 / INRIA RR-5833): an object-to-object
// peer-to-peer network in which objects live at their attribute coordinates
// in the unit square, are linked to their Voronoi neighbours, to the
// objects within distance dmin (close neighbours) and to k long-range
// neighbours drawn from Kleinberg's harmonic distribution generalised to
// arbitrary object distributions.
//
// The package is the simulation engine the paper's own evaluation uses: a
// single process holds the ground-truth Voronoi tessellation (which the
// distributed protocol maintains collectively) together with every
// object's view — vn(o), cn(o), LRn(o), BLRn(o) — and it accounts protocol
// costs (Greedyneighbour calls, maintenance messages) exactly as specified
// by Algorithms 1–5. The genuinely message-passing per-node realisation of
// the same protocol lives in internal/node.
package core

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"

	"voronet/internal/delaunay"
	"voronet/internal/geom"
	"voronet/internal/voronoi"
)

// ObjectID identifies an object in the overlay. IDs are never reused.
type ObjectID int64

// NoObject is the invalid object ID.
const NoObject ObjectID = -1

// Errors returned by overlay operations.
var (
	// ErrDuplicate reports an object inserted at an occupied position.
	ErrDuplicate = errors.New("voronet: an object already occupies this position")
	// ErrNotFound reports an operation on an unknown object.
	ErrNotFound = errors.New("voronet: no such object")
	// ErrEmpty reports an operation that needs a non-empty overlay.
	ErrEmpty = errors.New("voronet: overlay is empty")
)

// Config parameterises an overlay.
type Config struct {
	// NMax is the maximum number of objects the overlay is provisioned
	// for. The paper assumes it is known a priori (§3); it determines dmin
	// and the long-link length distribution. Required.
	NMax int
	// LongLinks is the number of long-range neighbours per object
	// (k in Fig 8). Default 1, the paper's basic setting.
	LongLinks int
	// DMin overrides the close-neighbour radius. Default 1/√(π·NMax),
	// the value that makes E[|cn(o)|] ≤ 1 under a near-uniform
	// distribution (§4.1; see DESIGN.md for the paper's typo).
	DMin float64
	// LongLinkExponent is the exponent s of the link-length distribution
	// Pr[length ∈ dr] ∝ r^(1-s)·dr. The paper (and Kleinberg's theorem for
	// 2-D) uses s = 2, realised by Choose-LRT's log-uniform radius.
	// Other values are exposed for the ablation study.
	//
	// The zero value selects the paper's s = 2; to ablate the
	// area-uniform regime ("s = 0") pass a small positive epsilon such as
	// 0.01, which is indistinguishable from 0 in distribution.
	LongLinkExponent float64
	// Seed seeds the overlay's private RNG (long-link targets).
	Seed int64
	// DisableCloseNeighbours removes cn(o) from routing (ablation A1).
	DisableCloseNeighbours bool
	// DisableLongLinks removes LRn(o) from the overlay entirely
	// (ablation A2: pure Delaunay greedy routing).
	DisableLongLinks bool
	// InteriorTargets redraws each long-link target until it falls inside
	// the unit square. The paper allows LRt outside [0,1]² (§4.3.2), but
	// exterior targets pile up in the regions of the few boundary
	// objects, whose BLRn sets then grow with N and drag per-join
	// maintenance up with them (every routed operation near the hull
	// shuffles the pile through its fictive objects). Conditioning the
	// target distribution on the square restores O(1) BLRn sets and O(1)
	// maintenance without measurably changing routing. Off by default for
	// paper fidelity; see EXPERIMENTS.md ("maintenance costs").
	InteriorTargets bool
	// SerialSurgery disables the region-sharded surgery engine: Insert,
	// Join and Remove (and the Store churn operations built on them) then
	// hold the overlay write lock for their whole duration, exactly the
	// pre-sharding code path. The default (false) runs surgery through the
	// sharded engine in surgery.go: the expensive phases — routing, cavity
	// estimation, long-link target resolution — run under the read lock
	// with only the conflict region's shard locks held exclusively, and
	// the write lock is taken just for the short commit window, so churn
	// in distant regions proceeds concurrently. The option exists for A/B
	// benchmarking (the CI concurrent-churn gate measures sharded vs
	// serial) and for paper-fidelity cost accounting: the serial Join is
	// the literal Algorithm 1 sequence, while the sharded Join batches its
	// long-link routing before the commit, which can shift hop and
	// fictive-insert counts by a hair (never the resulting structure).
	SerialSurgery bool
	// FictiveQueries makes HandleQuery resolve the owner of the query
	// point the way Algorithm 4 literally does: insert a fictive object at
	// DistanceToRegion(target) and one at the target, read off the nearest
	// Voronoi neighbour, and remove both again — two real Delaunay
	// insert/remove pairs per query, accounted in Counters.FictiveInserts.
	// This is the paper-fidelity cost model. Off by default: queries then
	// resolve the owner with a read-only nearest-site walk from the
	// stopping object, which mutates nothing (the owner named is the same;
	// see TestOwnerResolutionEquivalence) and is what lets reads run
	// concurrently. Joins always use the fictive protocol — they mutate
	// the tessellation anyway and the paper's join cost accounting
	// (Algorithm 1 + 2) depends on it.
	FictiveQueries bool
}

// DefaultDMin returns the paper's close-neighbour radius for a given NMax:
// the dmin with π·dmin²·NMax = 1.
func DefaultDMin(nmax int) float64 {
	return 1 / math.Sqrt(math.Pi*float64(nmax))
}

// Object is an overlay object together with its protocol state (its "view"
// in the paper's terms). Fields are managed by the Overlay; read-only for
// callers.
type Object struct {
	ID  ObjectID
	Pos geom.Point

	vert delaunay.VertexID
	// longTargets[j] is LRt_j: the target point of the j-th long link,
	// fixed at join time (Algorithm 3).
	longTargets []geom.Point
	// longNbrs[j] is LRn_j: the object currently owning the Voronoi region
	// of longTargets[j].
	longNbrs []ObjectID
	// back is BLRn: the (object, link) pairs whose target lies in this
	// object's region. Used only for long-link repair, never for routing.
	back []BackRef
}

// BackRef identifies one long link of one object (BLRn entry).
type BackRef struct {
	Obj  ObjectID
	Link int
}

// Counters accounts protocol costs in the paper's own units.
type Counters struct {
	// GreedySteps counts Greedyneighbour invocations (routing hops).
	GreedySteps uint64
	// JoinRouteSteps counts the routing hops spent by AddObject and
	// SearchLongLink (a subset of GreedySteps).
	JoinRouteSteps uint64
	// MaintenanceMessages counts messages exchanged by AddVoronoiRegion /
	// RemoveVoronoiRegion (O(|vn|) each, §4.2).
	MaintenanceMessages uint64
	// FictiveInserts counts fictive-object insertions (the z and Target
	// objects of Algorithms 1, 2, 4, inserted and removed again).
	FictiveInserts uint64
	// Joins, Leaves, Queries count completed operations.
	Joins   uint64
	Leaves  uint64
	Queries uint64
}

// Overlay is a VoroNet overlay.
//
// Concurrency: the overlay follows a single-writer / many-readers
// discipline guarded by an internal RWMutex. Mutating operations (Insert,
// Join, Remove, SetNMax) and every operation that touches the shared
// counters or scratch buffers — RouteToObject, RouteToPoint, HandleQuery,
// RangeQuery, RadiusQuery, GreedyNeighbor, and the scratch-backed
// accessors VoronoiNeighbors, Cell and DistanceToRegion — take the write
// lock and therefore serialise. The read lock covers the Router engine
// (and the Store fast path built on it) plus the scratch-free accessors
// (Owner, Position, CloseNeighbors, Degree, Len, ...), so any number of
// goroutines can route, resolve owners and query concurrently through
// per-goroutine Routers, including while a single writer joins and
// leaves objects. To read Voronoi neighbourhoods or run queries from
// many goroutines, use Router — not the serially-accounted Overlay
// methods of the same name.
type Overlay struct {
	// mu is the read/write gate described above. Internal code never
	// locks; every exported entry point acquires exactly one lock level
	// and delegates to unexported lockless implementations.
	mu sync.RWMutex

	// shards is the region lock grid of the sharded surgery engine
	// (shards.go / surgery.go). Shard locks are always taken before mu,
	// never while holding it.
	shards shardMap

	cfg  Config
	dmin float64
	rng  *rand.Rand
	// rngMu guards rng: long-link target draws happen both under the
	// write lock (serial surgery) and under the read lock (the sharded
	// engine's preparation phase), so the RNG needs its own leaf lock.
	rngMu sync.Mutex

	// surgeons pools the per-operation scratch of the sharded engine.
	surgeons sync.Pool

	tr  *delaunay.Triangulation
	vor *voronoi.Diagram

	objs map[ObjectID]*Object
	// byVertex maps a live triangulation vertex to its object. A dense
	// slice, not a map: vertex slots are freelist-reused so it stays
	// compact, and the lookup sits on every hop of every route.
	byVertex []ObjectID
	ids      []ObjectID       // live IDs, for O(1) random sampling
	idPos    map[ObjectID]int // position of each ID in ids
	nextID   ObjectID

	grid *closeIndex

	// cache is the optional shared hot-region owner cache (see cache.go);
	// nil unless SetRouteCache installed one. Routers read the pointer on
	// every resolve, so install it before driving load.
	cache *ownerCache

	counters Counters

	nbuf []delaunay.VertexID // scratch (write-locked paths only)
	cbuf []ObjectID          // scratch (write-locked paths only)
	rt   routeState          // routing scratch (write-locked paths only)
	qsc  queryScratch        // flood scratch (write-locked paths only)
}

// setVertexObject records v → id, growing the dense table as the
// triangulation allocates new vertex slots.
func (o *Overlay) setVertexObject(v delaunay.VertexID, id ObjectID) {
	for int(v) >= len(o.byVertex) {
		o.byVertex = append(o.byVertex, NoObject)
	}
	o.byVertex[v] = id
}

// vertexObject is the bounds-checked read of the vertex→object table.
func (o *Overlay) vertexObject(v delaunay.VertexID) ObjectID {
	if v < 0 || int(v) >= len(o.byVertex) {
		return NoObject
	}
	return o.byVertex[v]
}

// New creates an empty overlay. It panics if cfg.NMax <= 0.
func New(cfg Config) *Overlay {
	if cfg.NMax <= 0 {
		panic("voronet: Config.NMax must be positive")
	}
	if cfg.LongLinks <= 0 {
		cfg.LongLinks = 1
	}
	if cfg.LongLinkExponent == 0 {
		cfg.LongLinkExponent = 2
	}
	dmin := cfg.DMin
	if dmin <= 0 {
		dmin = DefaultDMin(cfg.NMax)
	}
	tr := delaunay.New()
	o := &Overlay{
		cfg:   cfg,
		dmin:  dmin,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		tr:    tr,
		vor:   voronoi.New(tr),
		objs:  make(map[ObjectID]*Object),
		idPos: make(map[ObjectID]int),
		grid:  newCloseIndex(dmin),
	}
	o.rt = routeState{vor: o.vor, steps: &o.counters.GreedySteps}
	return o
}

// Len returns the number of objects in the overlay.
func (o *Overlay) Len() int {
	o.mu.RLock()
	defer o.mu.RUnlock()
	return len(o.ids)
}

// DMin returns the close-neighbour radius in force.
func (o *Overlay) DMin() float64 {
	o.mu.RLock()
	defer o.mu.RUnlock()
	return o.dmin
}

// Config returns the overlay's configuration.
func (o *Overlay) Config() Config {
	o.mu.RLock()
	defer o.mu.RUnlock()
	return o.cfg
}

// Counters returns a snapshot of the protocol cost counters.
func (o *Overlay) Counters() Counters {
	o.mu.RLock()
	defer o.mu.RUnlock()
	return o.counters
}

// ResetCounters zeroes the protocol cost counters.
func (o *Overlay) ResetCounters() {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.counters = Counters{}
}

// Object returns the object record for id, or nil. The record's protocol
// state (long links, BLRn) is only stable while no writer runs.
func (o *Overlay) Object(id ObjectID) *Object {
	o.mu.RLock()
	defer o.mu.RUnlock()
	return o.objs[id]
}

// Position returns the position of object id.
func (o *Overlay) Position(id ObjectID) (geom.Point, error) {
	o.mu.RLock()
	defer o.mu.RUnlock()
	obj := o.objs[id]
	if obj == nil {
		return geom.Point{}, ErrNotFound
	}
	return obj.Pos, nil
}

// RandomObject returns a uniformly random live object ID using the
// caller's RNG (so experiments control their own determinism).
func (o *Overlay) RandomObject(rng *rand.Rand) (ObjectID, error) {
	o.mu.RLock()
	defer o.mu.RUnlock()
	if len(o.ids) == 0 {
		return NoObject, ErrEmpty
	}
	return o.ids[rng.Intn(len(o.ids))], nil
}

// ForEachObject calls fn for every object until it returns false. The
// object list is snapshotted up front and fn runs without any lock held,
// so fn may freely call other overlay methods; objects removed by a
// concurrent writer mid-iteration are still visited with their last state.
func (o *Overlay) ForEachObject(fn func(*Object) bool) {
	o.mu.RLock()
	objs := make([]*Object, len(o.ids))
	for i, id := range o.ids {
		objs[i] = o.objs[id]
	}
	o.mu.RUnlock()
	for _, obj := range objs {
		if !fn(obj) {
			return
		}
	}
}

// VoronoiNeighbors appends the Voronoi-neighbour view vn(o) of object id to
// buf. This is the set whose size Fig 5 histograms.
func (o *Overlay) VoronoiNeighbors(id ObjectID, buf []ObjectID) ([]ObjectID, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	obj := o.objs[id]
	if obj == nil {
		return buf[:0], ErrNotFound
	}
	buf = buf[:0]
	o.nbuf = o.tr.Neighbors(obj.vert, o.nbuf)
	for _, v := range o.nbuf {
		buf = append(buf, o.byVertex[v])
	}
	return buf, nil
}

// CloseNeighbors appends the close-neighbour view cn(o) — objects within
// dmin, excluding id itself — to buf.
func (o *Overlay) CloseNeighbors(id ObjectID, buf []ObjectID) ([]ObjectID, error) {
	o.mu.RLock()
	defer o.mu.RUnlock()
	return o.closeNeighbors(id, buf)
}

func (o *Overlay) closeNeighbors(id ObjectID, buf []ObjectID) ([]ObjectID, error) {
	obj := o.objs[id]
	if obj == nil {
		return buf[:0], ErrNotFound
	}
	return o.grid.within(obj.Pos, o.dmin, id, buf), nil
}

// LongNeighbors returns the long-range view LRn(o): one entry per long
// link. The returned slice aliases internal state; do not modify.
func (o *Overlay) LongNeighbors(id ObjectID) ([]ObjectID, error) {
	o.mu.RLock()
	defer o.mu.RUnlock()
	obj := o.objs[id]
	if obj == nil {
		return nil, ErrNotFound
	}
	return obj.longNbrs, nil
}

// LongTargets returns the fixed long-link target points LRt(o).
func (o *Overlay) LongTargets(id ObjectID) ([]geom.Point, error) {
	o.mu.RLock()
	defer o.mu.RUnlock()
	obj := o.objs[id]
	if obj == nil {
		return nil, ErrNotFound
	}
	return obj.longTargets, nil
}

// BackLongRange returns the BLRn(o) view.
func (o *Overlay) BackLongRange(id ObjectID) ([]BackRef, error) {
	o.mu.RLock()
	defer o.mu.RUnlock()
	obj := o.objs[id]
	if obj == nil {
		return nil, ErrNotFound
	}
	return obj.back, nil
}

// Cell returns object id's Voronoi region as a convex counterclockwise
// polygon (unbounded hull cells are clipped to a large box). The slice is
// freshly allocated. Returns nil for unknown objects or degenerate
// (dimension < 2) overlays.
func (o *Overlay) Cell(id ObjectID) []geom.Point {
	o.mu.Lock()
	defer o.mu.Unlock()
	obj := o.objs[id]
	if obj == nil || o.tr.Dimension() < 2 {
		return nil
	}
	return append([]geom.Point(nil), o.vor.Cell(obj.vert)...)
}

// DistanceToRegion returns the point of R(id) closest to p and its
// distance — the paper's DistanceToRegion primitive (§4.2.3).
func (o *Overlay) DistanceToRegion(id ObjectID, p geom.Point) (geom.Point, float64, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	obj := o.objs[id]
	if obj == nil {
		return geom.Point{}, 0, ErrNotFound
	}
	z, d := o.fictiveSite(obj, p)
	if o.tr.Dimension() >= 2 {
		z, d = o.vor.DistanceToRegion(obj.vert, p)
	}
	return z, d, nil
}

// Degree returns |vn(o)|.
func (o *Overlay) Degree(id ObjectID) (int, error) {
	o.mu.RLock()
	defer o.mu.RUnlock()
	obj := o.objs[id]
	if obj == nil {
		return 0, ErrNotFound
	}
	return o.tr.Degree(obj.vert), nil
}

// Owner returns the object whose Voronoi region contains p — the paper's
// Obj(p) — resolved against the ground-truth tessellation with a read-only
// nearest-site walk. hint accelerates the lookup. Safe for concurrent
// callers; see Router for an allocation-free equivalent.
func (o *Overlay) Owner(p geom.Point, hint ObjectID) (ObjectID, error) {
	o.mu.RLock()
	defer o.mu.RUnlock()
	id, _ := o.owner(p, hint, nil)
	if id == NoObject {
		return NoObject, ErrEmpty
	}
	return id, nil
}

// owner resolves Obj(p) without side effects, reusing vbuf for the
// nearest-site descent.
func (o *Overlay) owner(p geom.Point, hint ObjectID, vbuf []delaunay.VertexID) (ObjectID, []delaunay.VertexID) {
	if len(o.ids) == 0 {
		return NoObject, vbuf
	}
	h := delaunay.NoVertex
	if obj := o.objs[hint]; obj != nil {
		h = obj.vert
	}
	v, vbuf := o.tr.NearestSiteRO(p, h, vbuf)
	return o.byVertex[v], vbuf
}

// Insert adds an object at p directly against the shared substrate: the
// structural result (tessellation, close neighbourhoods, long-link
// distribution and repair) is identical to a protocol Join, without the
// routing cost accounting. The figure harness uses Insert to build large
// overlays; Join exercises and accounts the full Algorithm 1 path.
func (o *Overlay) Insert(p geom.Point) (ObjectID, error) {
	if !o.cfg.SerialSurgery {
		return o.insertSharded(p, nil)
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.insert(p, delaunay.NoVertex)
}

// insertMode selects how much of AddVoronoiRegion an insertion performs.
type insertMode int

const (
	// modeFull: a regular object — BLRn exchange and long links.
	modeFull insertMode = iota
	// modeJoining: a real object inserted by Join; the BLRn exchange runs
	// but long links are established separately through Algorithm 2.
	modeJoining
	// modeFictive: a fictive object of Algorithms 1, 2, 4 — no long links
	// of its own. It still performs the BLRn exchange: the exchange is
	// load-bearing for the exact ownership invariant (a fictive object
	// wedged between an entry's holder and a newly inserted real object
	// would otherwise hide the transfer), and its removal re-delegates
	// every entry to the true owner.
	modeFictive
)

func (o *Overlay) insert(p geom.Point, hint delaunay.VertexID) (ObjectID, error) {
	return o.insertCore(p, hint, modeFull)
}

// insertCore adds an object at p according to mode.
func (o *Overlay) insertCore(p geom.Point, hint delaunay.VertexID, mode insertMode) (ObjectID, error) {
	id, obj, err := o.insertBase(p, hint)
	if err != nil {
		return NoObject, err
	}
	// Choose the long-link targets and resolve their owners directly
	// against the tessellation (structurally identical to the routed
	// SearchLongLink used by Join).
	if mode == modeFull && !o.cfg.DisableLongLinks {
		for j := 0; j < o.cfg.LongLinks; j++ {
			tgt := o.chooseLRT(p)
			o.registerLongLink(obj, j, tgt, obj.vert)
		}
	}
	return id, nil
}

// insertBase performs the link-free part of an insertion: tessellation
// surgery, bookkeeping, and the BLRn takeover exchange. The sharded commit
// path (surgery.go) reuses it with targets drawn during its preparation
// phase; insertCore draws them inline.
func (o *Overlay) insertBase(p geom.Point, hint delaunay.VertexID) (ObjectID, *Object, error) {
	v, err := o.tr.Insert(p, hint)
	if err != nil {
		if errors.Is(err, delaunay.ErrDuplicate) {
			return NoObject, nil, ErrDuplicate
		}
		return NoObject, nil, fmt.Errorf("voronet: insert: %w", err)
	}
	id := o.nextID
	o.nextID++
	obj := &Object{ID: id, Pos: p, vert: v}
	o.objs[id] = obj
	o.setVertexObject(v, id)
	o.idPos[id] = len(o.ids)
	o.ids = append(o.ids, id)
	o.grid.add(p, id)

	// Take over the back long-range links whose targets now fall in R(p):
	// each new Voronoi neighbour hands over the BLRn entries that are
	// closer to p than to it (§4.2.1). The exchange preserves the exact
	// invariant LRn_j(w) = Obj(LRt_j(w)).
	o.nbuf = o.tr.Neighbors(v, o.nbuf)
	for _, nv := range o.nbuf {
		nid := o.byVertex[nv]
		nb := o.objs[nid]
		kept := nb.back[:0]
		for _, ref := range nb.back {
			w := o.objs[ref.Obj]
			tgt := w.longTargets[ref.Link]
			if geom.Dist2(p, tgt) < geom.Dist2(nb.Pos, tgt) {
				w.longNbrs[ref.Link] = id
				obj.back = append(obj.back, ref)
			} else {
				kept = append(kept, ref)
			}
		}
		nb.back = kept
	}
	return id, obj, nil
}

// registerLongLink resolves Obj(tgt) with a nearest-site descent from
// resolveHint and records link j of obj: target, owner, and the owner's
// BLRn entry. Caller holds the write lock.
func (o *Overlay) registerLongLink(obj *Object, j int, tgt geom.Point, resolveHint delaunay.VertexID) {
	obj.longTargets = append(obj.longTargets, tgt)
	ownerV := o.tr.NearestSite(tgt, resolveHint)
	ownerID := o.byVertex[ownerV]
	obj.longNbrs = append(obj.longNbrs, ownerID)
	o.objs[ownerID].back = append(o.objs[ownerID].back, BackRef{Obj: obj.ID, Link: j})
}

// Remove deletes object id and repairs the overlay per §4.2.2
// (RemoveVoronoiRegion): neighbours recompute the tessellation, close
// neighbours are informed, and every BLRn entry is delegated to the Voronoi
// neighbour closest to its target, which is exactly the new owner of the
// target point.
func (o *Overlay) Remove(id ObjectID) error {
	if !o.cfg.SerialSurgery {
		return o.removeSharded(id, nil)
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.remove(id)
}

func (o *Overlay) remove(id ObjectID) error {
	obj := o.objs[id]
	if obj == nil {
		return ErrNotFound
	}
	if o.cache != nil {
		// A departed owner must not linger even as a jump hint.
		o.cache.invalidateOwner(id)
	}

	// Collect the Voronoi neighbours before surgery.
	o.nbuf = o.tr.Neighbors(obj.vert, o.nbuf)
	nbrs := append([]delaunay.VertexID(nil), o.nbuf...)
	o.counters.MaintenanceMessages += uint64(len(nbrs))

	// Delegate BLRn entries to the closest Voronoi neighbour.
	for _, ref := range obj.back {
		if ref.Obj == id {
			continue // our own self-link dies with us
		}
		w := o.objs[ref.Obj]
		tgt := w.longTargets[ref.Link]
		best := NoObject
		bestD := math.Inf(1)
		for _, nv := range nbrs {
			nid := o.byVertex[nv]
			if d := geom.Dist2(o.objs[nid].Pos, tgt); d < bestD {
				best, bestD = nid, d
			}
		}
		if best == NoObject {
			// Last object leaving: the link cannot be repaired; drop it.
			w.longNbrs[ref.Link] = NoObject
			continue
		}
		w.longNbrs[ref.Link] = best
		o.objs[best].back = append(o.objs[best].back, ref)
		o.counters.MaintenanceMessages += 2 // inform z and y (§4.2.2)
	}
	obj.back = nil

	// Withdraw our own long links from their holders' BLRn sets.
	for j, nid := range obj.longNbrs {
		if nid == id || nid == NoObject {
			continue
		}
		holder := o.objs[nid]
		for i, ref := range holder.back {
			if ref.Obj == id && ref.Link == j {
				holder.back[i] = holder.back[len(holder.back)-1]
				holder.back = holder.back[:len(holder.back)-1]
				break
			}
		}
		o.counters.MaintenanceMessages++
	}

	// Close neighbours learn of the departure (§4.2.2).
	o.cbuf = o.grid.within(obj.Pos, o.dmin, id, o.cbuf)
	o.counters.MaintenanceMessages += uint64(len(o.cbuf))

	if err := o.tr.Remove(obj.vert); err != nil {
		return fmt.Errorf("voronet: remove: %w", err)
	}
	o.grid.remove(obj.Pos, id)
	o.byVertex[obj.vert] = NoObject
	delete(o.objs, id)
	pos := o.idPos[id]
	last := len(o.ids) - 1
	o.ids[pos] = o.ids[last]
	o.idPos[o.ids[pos]] = pos
	o.ids = o.ids[:last]
	delete(o.idPos, id)
	o.counters.Leaves++
	return nil
}
