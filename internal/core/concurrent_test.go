package core

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"voronet/internal/geom"
	"voronet/internal/store"
	"voronet/internal/workload"
)

// TestConcurrentReadersWithWriter is the read/write discipline under the
// race detector: many goroutines route, resolve owners, query ranges and
// read the store through independent Routers while a single writer churns
// the overlay with joins, inserts and removes (plus the store handoff).
// Run with -race; any shared-state leak on the read path shows up here.
func TestConcurrentReadersWithWriter(t *testing.T) {
	o := New(Config{NMax: 4000, Seed: 301})
	rng := rand.New(rand.NewSource(302))
	// A stable core of objects the writer never removes: readers route
	// from these without racing against their disappearance.
	stable := fill(t, o, &workload.Uniform{Rand: rng}, 400)

	st := NewStore(o, 3)
	keys := make([]geom.Point, 120)
	vals := make([][]byte, len(keys))
	for i := range keys {
		keys[i] = geom.Pt(rng.Float64(), rng.Float64())
		vals[i] = []byte(fmt.Sprintf("v%04d", i))
		if _, _, err := st.Put(stable[rng.Intn(len(stable))], keys[i], vals[i]); err != nil {
			t.Fatal(err)
		}
	}

	const readers = 8
	var wg sync.WaitGroup
	stop := make(chan struct{})
	var readerErr atomic.Value
	fail := func(err error) {
		readerErr.CompareAndSwap(nil, err)
	}
	tolerated := func(err error) bool {
		// A concurrent writer may remove a reader's destination object or
		// hand a key's bucket over mid-operation; those are legitimate
		// outcomes, not races.
		return err == nil || errors.Is(err, ErrNotFound) || errors.Is(err, store.ErrNotFound)
	}
	// Each reader also writes its own key; the last acknowledged value must
	// survive all churn (RemoveObject migrates buckets atomically with the
	// tessellation surgery, so an acked PUT can never die with its owner).
	ownKeys := make([]geom.Point, readers)
	lastWritten := make([]int32, readers)
	for w := range ownKeys {
		ownKeys[w] = geom.Pt(0.05+0.9*float64(w)/readers, 0.91)
	}
	for w := 0; w < readers; w++ {
		wg.Add(1)
		go func(w int, seed int64) {
			defer wg.Done()
			r := o.NewRouter()
			rng := rand.New(rand.NewSource(seed))
			writes := int32(0)
			for {
				select {
				case <-stop:
					return
				default:
				}
				from := stable[rng.Intn(len(stable))]
				switch rng.Intn(6) {
				case 0:
					if _, err := r.RouteToObject(from, stable[rng.Intn(len(stable))]); !tolerated(err) {
						fail(err)
						return
					}
				case 1:
					if _, err := r.RouteToPoint(from, geom.Pt(rng.Float64(), rng.Float64())); !tolerated(err) {
						fail(err)
						return
					}
				case 2:
					if _, err := r.Owner(geom.Pt(rng.Float64(), rng.Float64()), from); !tolerated(err) {
						fail(err)
						return
					}
				case 3:
					i := rng.Intn(len(keys))
					v, _, err := st.Get(from, keys[i])
					if !tolerated(err) {
						fail(err)
						return
					}
					if err == nil && !bytes.Equal(v, vals[i]) {
						fail(fmt.Errorf("key %d: got %q want %q", i, v, vals[i]))
						return
					}
				case 4:
					y := rng.Float64()
					if _, _, err := r.RangeQuery(from, geom.Pt(0.2, y), geom.Pt(0.8, y)); !tolerated(err) {
						fail(err)
						return
					}
				case 5:
					writes++
					_, _, err := st.Put(from, ownKeys[w], []byte(fmt.Sprintf("w%d-%d", w, writes)))
					if !tolerated(err) {
						fail(err)
						return
					}
					if err == nil {
						atomic.StoreInt32(&lastWritten[w], writes)
					}
				}
			}
		}(w, 400+int64(w))
	}

	// The single writer: join, insert, remove — with the store handoff —
	// while the readers run.
	wrng := rand.New(rand.NewSource(500))
	var churn []ObjectID
	for step := 0; step < 300; step++ {
		if len(churn) < 10 || wrng.Float64() < 0.6 {
			p := geom.Pt(wrng.Float64(), wrng.Float64())
			var id ObjectID
			var err error
			// Atomic insert/join + handoff: a concurrent PUT acked by the
			// newcomer can never be clobbered by the records it inherits.
			if wrng.Float64() < 0.5 {
				id, err = st.JoinObject(p, stable[wrng.Intn(len(stable))])
			} else {
				id, err = st.InsertObject(p)
			}
			if err != nil {
				if errors.Is(err, ErrDuplicate) {
					continue
				}
				t.Errorf("writer step %d: %v", step, err)
				break
			}
			churn = append(churn, id)
		} else {
			i := wrng.Intn(len(churn))
			id := churn[i]
			churn[i] = churn[len(churn)-1]
			churn = churn[:len(churn)-1]
			// Atomic handoff + surgery: concurrent Puts can never land in
			// the drained bucket of a disappearing owner.
			if err := st.RemoveObject(id); err != nil {
				t.Errorf("writer remove: %v", err)
				break
			}
		}
	}
	close(stop)
	wg.Wait()
	if err := readerErr.Load(); err != nil {
		t.Fatalf("reader failed: %v", err)
	}
	if err := o.CheckInvariants(true); err != nil {
		t.Fatal(err)
	}
	// Quiescent correctness: every key answers with its value again.
	for i, k := range keys {
		v, _, err := st.Get(stable[0], k)
		if err != nil || !bytes.Equal(v, vals[i]) {
			t.Fatalf("post-churn key %d: %q, %v", i, v, err)
		}
	}
	// Durability: the last acknowledged write of every reader survived the
	// churn (or a later write of the same reader superseded it).
	for w := range ownKeys {
		last := atomic.LoadInt32(&lastWritten[w])
		if last == 0 {
			continue // this reader never drew the write op
		}
		v, _, err := st.Get(stable[0], ownKeys[w])
		if err != nil || !bytes.Equal(v, []byte(fmt.Sprintf("w%d-%d", w, last))) {
			t.Fatalf("reader %d: acked write %d lost: %q, %v", w, last, v, err)
		}
	}
}

// TestStoreDoParallel drives the worker fan-out front-end: a mixed
// put/get/delete batch across 8 workers must leave exactly the same store
// state as the serial replay of the same per-key operation sequences.
func TestStoreDoParallel(t *testing.T) {
	o := New(Config{NMax: 2000, Seed: 311})
	rng := rand.New(rand.NewSource(312))
	ids := fill(t, o, &workload.Uniform{Rand: rng}, 400)
	st := NewStore(o, 3)

	keys := make([]geom.Point, 64)
	for i := range keys {
		keys[i] = geom.Pt(rng.Float64(), rng.Float64())
	}
	var puts []StoreOp
	for i, k := range keys {
		puts = append(puts, StoreOp{Kind: OpPut, From: ids[rng.Intn(len(ids))], Key: k, Value: []byte(fmt.Sprintf("p%03d", i))})
	}
	for i, res := range st.Do(puts, 8) {
		if res.Err != nil {
			t.Fatalf("put %d: %v", i, res.Err)
		}
	}
	// Second wave: one get per key plus deletes of every fourth key. Gets
	// race the deletes of their key across workers; per-key
	// linearisability is all the distributed store promises, so only the
	// final state is asserted.
	var ops []StoreOp
	for i, k := range keys {
		ops = append(ops, StoreOp{Kind: OpGet, From: ids[rng.Intn(len(ids))], Key: k})
		if i%4 == 0 {
			ops = append(ops, StoreOp{Kind: OpDelete, From: ids[rng.Intn(len(ids))], Key: k})
		}
	}
	results := st.Do(ops, 8)
	for i, res := range results {
		if res.Err != nil && !errors.Is(res.Err, store.ErrNotFound) {
			t.Fatalf("op %d (%v): %v", i, ops[i].Kind, res.Err)
		}
	}
	// Final state: deleted keys answer not-found, the rest their payload.
	for i, k := range keys {
		v, _, err := st.Get(ids[0], k)
		if i%4 == 0 {
			if !errors.Is(err, store.ErrNotFound) {
				t.Fatalf("deleted key %d still answers: %q, %v", i, v, err)
			}
			continue
		}
		if err != nil || !bytes.Equal(v, []byte(fmt.Sprintf("p%03d", i))) {
			t.Fatalf("key %d: %q, %v", i, v, err)
		}
	}
}

// TestRouterQueriesMatchSerial pins the Router read engine to the
// serially-accounted Overlay implementations: owners, point routes and
// range/radius results must be identical on a frozen overlay.
func TestRouterQueriesMatchSerial(t *testing.T) {
	o := New(Config{NMax: 3000, Seed: 321})
	rng := rand.New(rand.NewSource(322))
	ids := fill(t, o, workload.NewPowerLaw(2, rng), 600)
	r := o.NewRouter()

	for q := 0; q < 150; q++ {
		from := ids[rng.Intn(len(ids))]
		p := geom.Pt(rng.Float64()*1.2-0.1, rng.Float64()*1.2-0.1)

		so, err1 := o.Owner(p, from)
		ro, err2 := r.Owner(p, from)
		if err1 != nil || err2 != nil {
			t.Fatalf("owner errors: %v, %v", err1, err2)
		}
		if so != ro && !o.equidistantOwners(p, so, ro) {
			t.Fatalf("owner of %v: serial %d, router %d", p, so, ro)
		}

		sres, err1 := o.RouteToPoint(from, p)
		rres, err2 := r.RouteToPoint(from, p)
		if err1 != nil || err2 != nil {
			t.Fatalf("route errors: %v, %v", err1, err2)
		}
		if sres.Stop != rres.Stop || sres.Hops != rres.Hops {
			t.Fatalf("route to %v: serial stop=%d hops=%d, router stop=%d hops=%d",
				p, sres.Stop, sres.Hops, rres.Stop, rres.Hops)
		}
		if sres.Owner != rres.Owner && !o.equidistantOwners(p, sres.Owner, rres.Owner) {
			t.Fatalf("route owner of %v: serial %d, router %d", p, sres.Owner, rres.Owner)
		}
	}

	y := 0.37
	sSeg, _, err1 := o.RangeQuery(ids[0], geom.Pt(0.1, y), geom.Pt(0.9, y))
	rSeg, _, err2 := r.RangeQuery(ids[0], geom.Pt(0.1, y), geom.Pt(0.9, y))
	if err1 != nil || err2 != nil {
		t.Fatalf("range errors: %v, %v", err1, err2)
	}
	if len(sSeg) != len(rSeg) {
		t.Fatalf("range sizes: serial %d, router %d", len(sSeg), len(rSeg))
	}
	for i := range sSeg {
		if sSeg[i] != rSeg[i] {
			t.Fatalf("range result %d: serial %d, router %d", i, sSeg[i], rSeg[i])
		}
	}
	sDisk, _, err1 := o.RadiusQuery(ids[0], geom.Pt(0.5, 0.5), 0.17)
	rDisk, _, err2 := r.RadiusQuery(ids[0], geom.Pt(0.5, 0.5), 0.17)
	if err1 != nil || err2 != nil {
		t.Fatalf("radius errors: %v, %v", err1, err2)
	}
	if len(sDisk) != len(rDisk) {
		t.Fatalf("radius sizes: serial %d, router %d", len(sDisk), len(rDisk))
	}
	for i := range sDisk {
		if sDisk[i] != rDisk[i] {
			t.Fatalf("radius result %d: serial %d, router %d", i, sDisk[i], rDisk[i])
		}
	}
}
