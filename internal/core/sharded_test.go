package core

import (
	"fmt"
	"math/rand"
	"os"
	"sort"
	"sync"
	"testing"
	"time"

	"voronet/internal/geom"
)

// TestConcurrentChurnShardBoundaries is the sharded engine's property
// test: joins, inserts and leaves deliberately straddling shard edges
// (points jittered around x = k/16, where two adjacent shard cells meet)
// race against each other and against store traffic in distant regions.
// Afterwards the overlay must pass the deep invariant battery and every
// object's Voronoi view must equal the reference tessellation built
// serially from the surviving positions — i.e. concurrent surgery
// committed exactly the structure serial surgery would have.
func TestConcurrentChurnShardBoundaries(t *testing.T) {
	o := New(Config{NMax: 100000, Seed: 42})
	st := NewStore(o, 2)

	// Seed population: a stable backbone the churn never removes.
	seedRng := rand.New(rand.NewSource(1))
	var backbone []ObjectID
	for i := 0; i < 400; i++ {
		id, err := o.Insert(geom.Pt(seedRng.Float64(), seedRng.Float64()))
		if err != nil {
			t.Fatal(err)
		}
		backbone = append(backbone, id)
	}

	// Distant acked PUTs: keys pinned away from the churn band edges.
	keys := make([]geom.Point, 32)
	for i := range keys {
		keys[i] = geom.Pt(0.03+0.9*seedRng.Float64(), 0.03+0.9*seedRng.Float64())
	}

	const workers = 4
	const opsPerWorker = 150
	var wg sync.WaitGroup
	errs := make(chan error, workers+1)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			var mine []ObjectID
			for i := 0; i < opsPerWorker; i++ {
				// A point hugging a shard edge: x within ±1e-3 of a
				// random multiple of 1/shardAxis, y anywhere — the
				// conflict set of its insertion almost always spans two
				// shard columns.
				edge := float64(1+rng.Intn(shardAxis-1)) / shardAxis
				p := geom.Pt(edge+(rng.Float64()-0.5)*2e-3, rng.Float64())
				// Store-aware churn ops: surgery plus bucket handoff in
				// one shard-scoped atomic step, so records owned by a
				// departing churn object migrate instead of dying.
				var id ObjectID
				var err error
				if i%3 == 0 {
					id, err = st.JoinObject(p, backbone[rng.Intn(len(backbone))])
				} else {
					id, err = st.InsertObject(p)
				}
				if err == ErrDuplicate {
					continue
				}
				if err != nil {
					errs <- fmt.Errorf("worker %d op %d: %v", w, i, err)
					return
				}
				mine = append(mine, id)
				// Remove an earlier object of ours half the time, so the
				// population churns rather than only growing.
				if len(mine) > 4 && rng.Intn(2) == 0 {
					victim := rng.Intn(len(mine))
					if err := st.RemoveObject(mine[victim]); err != nil {
						errs <- fmt.Errorf("worker %d remove: %v", w, err)
						return
					}
					mine[victim] = mine[len(mine)-1]
					mine = mine[:len(mine)-1]
				}
			}
		}(w)
	}
	// Store traffic concurrent with the churn: every PUT that returns
	// without error must be readable afterwards.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(999))
		for round := 0; round < 40; round++ {
			for i, key := range keys {
				val := []byte{byte(round), byte(i)}
				if _, _, err := st.Put(backbone[rng.Intn(len(backbone))], key, val); err != nil {
					errs <- fmt.Errorf("put round %d key %d: %v", round, i, err)
					return
				}
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	if err := o.CheckInvariants(true); err != nil {
		t.Fatalf("invariants after concurrent churn: %v", err)
	}

	// Acked writes survived the churn.
	for i, key := range keys {
		val, _, err := st.Get(backbone[0], key)
		if err != nil {
			t.Fatalf("key %d lost after churn: %v", i, err)
		}
		if len(val) != 2 || val[0] != 39 || val[1] != byte(i) {
			t.Fatalf("key %d: got %v, want [39 %d]", i, val, i)
		}
	}

	// Structure equals the serial reference build of the final point set.
	ref := New(Config{NMax: 100000, Seed: 42, DisableLongLinks: true, SerialSurgery: true})
	refID := make(map[geom.Point]ObjectID)
	var finals []*Object
	o.ForEachObject(func(obj *Object) bool { finals = append(finals, obj); return true })
	for _, obj := range finals {
		id, err := ref.Insert(obj.Pos)
		if err != nil {
			t.Fatalf("reference insert %v: %v", obj.Pos, err)
		}
		refID[obj.Pos] = id
	}
	nbrPositions := func(ov *Overlay, id ObjectID) []geom.Point {
		nbrs, err := ov.VoronoiNeighbors(id, nil)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]geom.Point, len(nbrs))
		for i, nid := range nbrs {
			pos, err := ov.Position(nid)
			if err != nil {
				t.Fatal(err)
			}
			out[i] = pos
		}
		sort.Slice(out, func(a, b int) bool {
			if out[a].X != out[b].X {
				return out[a].X < out[b].X
			}
			return out[a].Y < out[b].Y
		})
		return out
	}
	for _, obj := range finals {
		got := nbrPositions(o, obj.ID)
		want := nbrPositions(ref, refID[obj.Pos])
		if len(got) != len(want) {
			t.Fatalf("object at %v: %d Voronoi neighbours, reference has %d", obj.Pos, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("object at %v: neighbour %d is %v, reference %v", obj.Pos, i, got[i], want[i])
			}
		}
	}
}

// churnRate measures insert+remove pairs per second with `workers`
// goroutines churning disjoint regions of an overlay configured by cfg.
func churnRate(t *testing.T, cfg Config, workers, pairs int) float64 {
	t.Helper()
	o := New(cfg)
	seedRng := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		if _, err := o.Insert(geom.Pt(seedRng.Float64(), seedRng.Float64())); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w + 1)))
			// Each worker churns its own horizontal band, so the sharded
			// engine sees disjoint conflict regions.
			lo := float64(w) / float64(workers)
			span := 1.0 / float64(workers)
			for i := 0; i < pairs; i++ {
				p := geom.Pt(rng.Float64(), lo+0.1*span+0.8*span*rng.Float64())
				id, err := o.Insert(p)
				if err != nil {
					continue
				}
				if err := o.Remove(id); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	return float64(workers*pairs) / elapsed
}

// TestConcurrentChurnThroughputGate compares sharded vs serial surgery
// throughput under multi-worker churn. It always logs the ratio; it only
// *gates* (sharded >= 2x serial) when CHURN_GATE=1, which CI sets on the
// 4-vCPU node-runtime job — on fewer cores the ratio reflects scheduling,
// not the engine.
func TestConcurrentChurnThroughputGate(t *testing.T) {
	if testing.Short() {
		t.Skip("churn benchmark")
	}
	const workers = 4
	const pairs = 400
	serial := churnRate(t, Config{NMax: 100000, Seed: 1, SerialSurgery: true}, workers, pairs)
	sharded := churnRate(t, Config{NMax: 100000, Seed: 1}, workers, pairs)
	ratio := sharded / serial
	t.Logf("churn throughput: serial %.0f pairs/s, sharded %.0f pairs/s, ratio %.2fx", serial, sharded, ratio)
	if os.Getenv("CHURN_GATE") == "1" && ratio < 2 {
		t.Fatalf("sharded churn throughput only %.2fx serial, gate requires >= 2x", ratio)
	}
}
