package core

import (
	"voronet/internal/delaunay"
	"voronet/internal/geom"
	"voronet/internal/voronoi"
)

// This file is the region-sharded surgery engine: the write path of
// Insert, Join and Remove when Config.SerialSurgery is false.
//
// The protocol has three phases per operation:
//
//  1. Preparation (read lock): route, locate, and probe the conflict
//     cavity read-only (delaunay.CavityVertsRO) to estimate the set of
//     shard cells the commit will mutate — for an insertion the cavity of
//     the new site; for a join additionally the cavities of every fictive
//     site of the Algorithm 1/2 dance; for a removal the star of the
//     departing site. Long-link targets are drawn here (under the RNG's
//     leaf lock) and their owners pre-resolved as warm hints.
//
//  2. Lock and validate: write-lock the estimated shards in ascending
//     index order, then take the overlay lock and recompute the conflict
//     set fresh. If it escaped the held set (a concurrent commit reshaped
//     the region between the phases), release everything, widen the
//     estimate and retry; after maxShardRetries the operation locks every
//     shard — the bounded, always-correct fallback.
//
//  3. Commit: the mutation itself still happens under the overlay write
//     lock — readers (Routers, the Store fast path) keep their simple
//     read-lock discipline and every mutation is recomputed fresh under
//     the lock, so correctness never depends on the preparation phase's
//     results staying exact. What the shard locks buy is everything
//     around that short window: two surgeries whose regions touch
//     serialise against each other for their *whole* preparation
//     (routing, cavity probing — the expensive part), while distant
//     surgeries overlap it; and a store operation holding its key's shard
//     read lock cannot observe the gap between a commit and its store
//     handoff (the post/pre callbacks run under the read lock with the
//     shard locks still held).
//
// Deadlock freedom: every path acquires shard locks in ascending index
// order and only then the overlay lock, and never acquires a shard lock
// while holding the overlay lock — a single global acquisition order,
// hence no cycles. See DESIGN.md ("Sharded locking discipline") for the
// conflict-coverage argument (why the cavity/star cells pin the region).

// maxShardRetries bounds the widen-and-retry loop before a surgery falls
// back to locking every shard.
const maxShardRetries = 3

// surgeon is the per-operation scratch of the sharded engine, pooled on
// the overlay. It carries a private routing state (like a Router's) so the
// preparation phase can route under the read lock, plus the conflict-set
// accumulators and the drawn long-link targets that must survive retries.
type surgeon struct {
	// steps is charged by the private routeState and flushed into
	// Counters.GreedySteps at commit, under the write lock.
	steps uint64
	rt    routeState
	vbuf  []delaunay.VertexID
	vbuf2 []delaunay.VertexID

	cells shardSet // the estimate, grown across retries; becomes the held set
	fresh shardSet // commit-time recomputation, checked against cells

	targets  []geom.Point        // long-link targets, drawn once per operation
	owners   []delaunay.VertexID // pre-resolved owner hints (insert)
	stops    []ObjectID          // per-target routing stops (join)
	stopVs   []delaunay.VertexID
	stopObjs []*Object
	hops     uint64 // join routing hops, flushed into JoinRouteSteps
}

func (o *Overlay) getSurgeon() *surgeon {
	s, ok := o.surgeons.Get().(*surgeon)
	if !ok {
		s = &surgeon{}
		s.rt = routeState{vor: voronoi.New(o.tr), steps: &s.steps}
	}
	s.steps = 0
	s.hops = 0
	s.cells.reset()
	s.targets = s.targets[:0]
	s.owners = s.owners[:0]
	s.stops = s.stops[:0]
	return s
}

func (o *Overlay) putSurgeon(s *surgeon) {
	s.stopObjs = s.stopObjs[:0] // do not retain objects across operations
	o.surgeons.Put(s)
}

// addCavityCells probes the cavity of a hypothetical insertion at p and
// adds its cells (the point's own and every cavity vertex's) to dst.
// Returns false when p duplicates an existing site.
func (o *Overlay) addCavityCells(s *surgeon, dst *shardSet, p geom.Point, hint delaunay.VertexID) bool {
	var ok bool
	s.vbuf, ok = o.tr.CavityVertsRO(p, hint, s.vbuf)
	if !ok {
		return false
	}
	dst.addPoint(p)
	for _, v := range s.vbuf {
		dst.addPoint(o.tr.Point(v))
	}
	return true
}

// insertSharded is Insert through the sharded engine. post, if non-nil,
// runs after the commit under the overlay read lock with the conflict
// shard locks still held (the Store hooks its ownership handoff there).
func (o *Overlay) insertSharded(p geom.Point, post func(ObjectID)) (ObjectID, error) {
	s := o.getSurgeon()
	defer o.putSurgeon(s)

	for attempt := 0; ; attempt++ {
		lockAll := attempt >= maxShardRetries

		// Phase 1: estimate the conflict set under the read lock.
		o.mu.RLock()
		if len(o.ids) < shardedMinObjects || o.tr.Dimension() < 2 {
			o.mu.RUnlock()
			return o.insertFallback(p, post)
		}
		if !o.addCavityCells(s, &s.cells, p, delaunay.NoVertex) {
			o.mu.RUnlock()
			return NoObject, ErrDuplicate
		}
		hintV := s.vbuf[0]
		if attempt == 0 && !o.cfg.DisableLongLinks {
			for j := 0; j < o.cfg.LongLinks; j++ {
				s.targets = append(s.targets, o.chooseLRT(p))
			}
		}
		s.owners = s.owners[:0]
		for _, tgt := range s.targets {
			var v delaunay.VertexID
			v, s.vbuf2 = o.tr.NearestSiteRO(tgt, hintV, s.vbuf2)
			s.owners = append(s.owners, v)
		}
		o.mu.RUnlock()

		// Phase 2: lock shards (ascending), re-validate under the overlay
		// lock. The direct insert performs no fictive surgery at its
		// long-link targets — owner registration is pure view bookkeeping
		// under the overlay lock — so only the cavity needs covering.
		held := s.cells.sorted()
		if lockAll {
			held = allShards
		}
		o.shards.lockSet(held)
		o.mu.Lock()
		if len(o.ids) < shardedMinObjects || o.tr.Dimension() < 2 {
			// Shrunk below the sharded regime since phase 1; the next
			// attempt re-routes to the fallback.
			o.mu.Unlock()
			o.shards.unlockSet(held)
			continue
		}
		if !o.tr.Alive(hintV) {
			hintV = delaunay.NoVertex
		}
		if !o.addCavityCells(s, &s.fresh, p, hintV) {
			o.mu.Unlock()
			o.shards.unlockSet(held)
			return NoObject, ErrDuplicate
		}
		if !lockAll {
			escaped := !s.fresh.coveredBy(&s.cells)
			if escaped {
				s.cells.absorb(&s.fresh)
				s.fresh.reset()
				o.mu.Unlock()
				o.shards.unlockSet(held)
				continue
			}
		}
		s.fresh.reset()

		// Phase 3: commit. s.vbuf still holds the fresh cavity — any of
		// its vertices is an O(1) locate hint.
		id, obj, err := o.insertBase(p, s.vbuf[0])
		if err != nil {
			o.mu.Unlock()
			o.shards.unlockSet(held)
			return NoObject, err
		}
		if !o.cfg.DisableLongLinks {
			for j, tgt := range s.targets {
				rh := s.owners[j]
				// The pre-resolved owner vertex is only a descent hint; a
				// stale or recycled slot just costs a longer walk.
				if rh == delaunay.NoVertex || !o.tr.Alive(rh) {
					rh = obj.vert
				}
				o.registerLongLink(obj, j, tgt, rh)
			}
		}
		o.mu.Unlock()
		if post != nil {
			o.mu.RLock()
			post(id)
			o.mu.RUnlock()
		}
		o.shards.unlockSet(held)
		return id, nil
	}
}

// insertFallback is the small/degenerate-overlay path: lock everything,
// then run the serial insert. Holding every shard keeps the engine's
// invariant — any mutation holds the shard locks covering its region —
// true in mixed regimes around the population threshold.
func (o *Overlay) insertFallback(p geom.Point, post func(ObjectID)) (ObjectID, error) {
	o.shards.lockSet(allShards)
	defer o.shards.unlockSet(allShards)
	o.mu.Lock()
	id, err := o.insert(p, delaunay.NoVertex)
	o.mu.Unlock()
	if err != nil {
		return NoObject, err
	}
	if post != nil {
		o.mu.RLock()
		post(id)
		o.mu.RUnlock()
	}
	return id, nil
}

// removeSharded is Remove through the sharded engine. pre, if non-nil,
// runs before the surgery — with the star validated and pinned by the
// held shard locks — under the overlay read lock (the Store drains the
// departing object's bucket there, while distant operations proceed).
func (o *Overlay) removeSharded(id ObjectID, pre func(ObjectID)) error {
	s := o.getSurgeon()
	defer o.putSurgeon(s)

	for attempt := 0; ; attempt++ {
		lockAll := attempt >= maxShardRetries

		// Phase 1: estimate — the departing site's cell plus its star's.
		o.mu.RLock()
		obj := o.objs[id]
		if obj == nil {
			o.mu.RUnlock()
			return ErrNotFound
		}
		if len(o.ids) < shardedMinObjects || o.tr.Dimension() < 2 {
			o.mu.RUnlock()
			return o.removeFallback(id, pre)
		}
		s.cells.addPoint(obj.Pos)
		s.vbuf = o.tr.Neighbors(obj.vert, s.vbuf)
		for _, v := range s.vbuf {
			s.cells.addPoint(o.tr.Point(v))
		}
		o.mu.RUnlock()

		held := s.cells.sorted()
		if lockAll {
			held = allShards
		}
		o.shards.lockSet(held)

		// Phase 2: validate under the read lock. Once the fresh star is
		// covered it is pinned: changing the star of id requires mutating
		// a face incident to it, and any such surgery must hold id's own
		// cell — which we hold exclusively.
		o.mu.RLock()
		obj = o.objs[id]
		if obj == nil {
			o.mu.RUnlock()
			o.shards.unlockSet(held)
			return ErrNotFound
		}
		if len(o.ids) < shardedMinObjects || o.tr.Dimension() < 2 {
			o.mu.RUnlock()
			o.shards.unlockSet(held)
			continue // next attempt routes to the fallback
		}
		if !lockAll {
			s.fresh.reset()
			s.fresh.addPoint(obj.Pos)
			s.vbuf = o.tr.Neighbors(obj.vert, s.vbuf)
			for _, v := range s.vbuf {
				s.fresh.addPoint(o.tr.Point(v))
			}
			if !s.fresh.coveredBy(&s.cells) {
				s.cells.absorb(&s.fresh)
				s.fresh.reset()
				o.mu.RUnlock()
				o.shards.unlockSet(held)
				continue
			}
			s.fresh.reset()
		}
		if pre != nil {
			pre(id)
		}
		o.mu.RUnlock()

		// Phase 3: commit. The star cannot have changed since validation
		// (pinned above), so the removal's repair decisions match what pre
		// observed.
		o.mu.Lock()
		err := o.remove(id)
		o.mu.Unlock()
		o.shards.unlockSet(held)
		return err
	}
}

// removeFallback mirrors insertFallback for removals. pre runs under the
// read lock with every shard held, as in the sharded path.
func (o *Overlay) removeFallback(id ObjectID, pre func(ObjectID)) error {
	o.shards.lockSet(allShards)
	defer o.shards.unlockSet(allShards)
	if pre != nil {
		o.mu.RLock()
		if o.objs[id] == nil {
			o.mu.RUnlock()
			return ErrNotFound
		}
		pre(id)
		o.mu.RUnlock()
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.remove(id)
}

// collectJoinCells accumulates into dst every shard cell the commit-time
// dance of a join at p mutates: the cavity of p, of its stepping stone z
// (Algorithm 1), and — per long-link target — of the fictive target and
// its own stepping stone (Algorithm 2 via resolveByFictive). anchorV and
// stopVs are the walk anchors: the main route's stop and each target
// route's stop. Chained fictive insertions stay covered because each
// insertion only carves faces whose vertices lie in the union of the
// already-collected cavities (plus the fictive sites themselves, whose
// cells are added explicitly). Returns false when p duplicates a site.
//
// Callers hold at least the overlay read lock; s.rt.vor provides the
// private Voronoi scratch in either phase.
func (o *Overlay) collectJoinCells(s *surgeon, dst *shardSet, p geom.Point, anchorV delaunay.VertexID, stopVs []delaunay.VertexID) bool {
	if !o.addCavityCells(s, dst, p, anchorV) {
		return false
	}
	z, dz := s.rt.vor.DistanceToRegion(anchorV, p)
	if dz > 0 {
		// ok=false means z coincides with a site; the commit then skips
		// the fictive insertion, so there is nothing extra to cover.
		o.addCavityCells(s, dst, z, anchorV)
	}
	for j, sv := range stopVs {
		tgt := s.targets[j]
		o.addCavityCells(s, dst, tgt, sv)
		zj, dzj := s.rt.vor.DistanceToRegion(sv, tgt)
		if dzj > 0 {
			o.addCavityCells(s, dst, zj, sv)
		}
	}
	return true
}

// joinSharded is Join through the sharded engine: phase 1 performs all of
// Algorithm 1/2's *routing* read-only (charged to the surgeon and flushed
// at commit), the commit replays the fictive-object dance itself under the
// overlay lock within the validated conflict region. post as in
// insertSharded.
func (o *Overlay) joinSharded(p geom.Point, via ObjectID, post func(ObjectID)) (ObjectID, error) {
	s := o.getSurgeon()
	defer o.putSurgeon(s)

	for attempt := 0; ; attempt++ {
		lockAll := attempt >= maxShardRetries

		// Phase 1: route towards p, then towards each long-link target,
		// all under the read lock, collecting conflict cells.
		o.mu.RLock()
		if len(o.ids) < shardedMinObjects || o.tr.Dimension() < 2 {
			o.mu.RUnlock()
			return o.joinFallback(p, via, post)
		}
		s.steps = 0
		s.hops = 0
		s.cells.reset()
		start := o.objs[via]
		if start == nil {
			start = o.objs[o.ids[0]]
		}
		cur := start
		hops, err := o.routeToPoint(&s.rt, &cur, p)
		if err != nil {
			o.mu.RUnlock()
			return NoObject, err
		}
		s.hops += uint64(hops)
		if attempt == 0 && !o.cfg.DisableLongLinks {
			for j := 0; j < o.cfg.LongLinks; j++ {
				s.targets = append(s.targets, o.chooseLRT(p))
			}
		}
		s.stops = s.stops[:0]
		s.stopVs = s.stopVs[:0]
		for _, tgt := range s.targets {
			lcur := cur
			lhops, err := o.routeToPoint(&s.rt, &lcur, tgt)
			if err != nil {
				o.mu.RUnlock()
				return NoObject, err
			}
			s.hops += uint64(lhops)
			s.stops = append(s.stops, lcur.ID)
			s.stopVs = append(s.stopVs, lcur.vert)
		}
		if !o.collectJoinCells(s, &s.cells, p, cur.vert, s.stopVs) {
			o.mu.RUnlock()
			return NoObject, ErrDuplicate
		}
		curID := cur.ID
		o.mu.RUnlock()

		// Phase 2: lock, re-anchor, validate.
		held := s.cells.sorted()
		if lockAll {
			held = allShards
		}
		o.shards.lockSet(held)
		o.mu.Lock()
		if len(o.ids) < shardedMinObjects || o.tr.Dimension() < 2 {
			o.mu.Unlock()
			o.shards.unlockSet(held)
			continue
		}
		cur = o.objs[curID]
		if cur == nil {
			// The stop object left between the phases; any object near p
			// anchors the dance equally well (Lemma 4 only needs the stop
			// condition, which holds a fortiori at the region's owner).
			cur = o.objs[o.byVertex[o.tr.NearestSite(p, delaunay.NoVertex)]]
		}
		s.stopObjs = s.stopObjs[:0]
		s.stopVs = s.stopVs[:0]
		for j := range s.targets {
			st := o.objs[s.stops[j]]
			if st == nil {
				st = o.objs[o.byVertex[o.tr.NearestSite(s.targets[j], cur.vert)]]
			}
			s.stopObjs = append(s.stopObjs, st)
			s.stopVs = append(s.stopVs, st.vert)
		}
		if !lockAll {
			s.fresh.reset()
			if !o.collectJoinCells(s, &s.fresh, p, cur.vert, s.stopVs) {
				o.mu.Unlock()
				o.shards.unlockSet(held)
				return NoObject, ErrDuplicate
			}
			if !s.fresh.coveredBy(&s.cells) {
				s.cells.absorb(&s.fresh)
				s.fresh.reset()
				o.mu.Unlock()
				o.shards.unlockSet(held)
				continue
			}
			s.fresh.reset()
		}

		// Phase 3: commit — the literal dance, within the pinned region.
		z, dz := o.fictiveSite(cur, p)
		var zID ObjectID = NoObject
		if dz > 0 {
			if fid, ferr := o.insertCore(z, cur.vert, modeFictive); ferr == nil {
				zID = fid
				o.counters.FictiveInserts++
			}
		}
		hint := cur.vert
		if zID != NoObject {
			hint = o.objs[zID].vert
		}
		id, err := o.insertCore(p, hint, modeJoining)
		if zID != NoObject {
			if rerr := o.remove(zID); rerr != nil {
				o.mu.Unlock()
				o.shards.unlockSet(held)
				return NoObject, rerr
			}
			o.counters.Leaves--
		}
		if err != nil {
			o.mu.Unlock()
			o.shards.unlockSet(held)
			return NoObject, err
		}
		obj := o.objs[id]
		o.counters.MaintenanceMessages += uint64(o.tr.Degree(obj.vert))
		if !o.cfg.DisableLongLinks {
			for j, tgt := range s.targets {
				owner, ferr := o.resolveByFictive(s.stopObjs[j], tgt)
				if ferr != nil {
					o.mu.Unlock()
					o.shards.unlockSet(held)
					return NoObject, ferr
				}
				obj.longTargets = append(obj.longTargets, tgt)
				obj.longNbrs = append(obj.longNbrs, owner)
				o.objs[owner].back = append(o.objs[owner].back, BackRef{Obj: id, Link: j})
			}
		}
		o.counters.Joins++
		o.counters.JoinRouteSteps += s.hops
		o.counters.GreedySteps += s.steps
		o.mu.Unlock()
		if post != nil {
			o.mu.RLock()
			post(id)
			o.mu.RUnlock()
		}
		o.shards.unlockSet(held)
		return id, nil
	}
}

// joinFallback mirrors insertFallback for joins (including bootstrap).
func (o *Overlay) joinFallback(p geom.Point, via ObjectID, post func(ObjectID)) (ObjectID, error) {
	o.shards.lockSet(allShards)
	defer o.shards.unlockSet(allShards)
	o.mu.Lock()
	id, err := o.join(p, via)
	o.mu.Unlock()
	if err != nil {
		return NoObject, err
	}
	if post != nil {
		o.mu.RLock()
		post(id)
		o.mu.RUnlock()
	}
	return id, nil
}
