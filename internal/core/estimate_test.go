package core

import (
	"math"
	"math/rand"
	"testing"

	"voronet/internal/geom"
	"voronet/internal/workload"
)

func TestEstimateSizeUniform(t *testing.T) {
	o := newTestOverlay(10000)
	rng := rand.New(rand.NewSource(301))
	fill(t, o, &workload.Uniform{Rand: rng}, 2000)
	est, err := o.EstimateSize(3000, rng)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est-2000) > 0.25*2000 {
		t.Fatalf("estimate %.0f for 2000 objects", est)
	}
}

func TestEstimateSizeSkewed(t *testing.T) {
	// The estimator stays order-of-magnitude correct under heavy skew
	// (median-of-means vs the heavy 1/area tail).
	o := newTestOverlay(10000)
	rng := rand.New(rand.NewSource(302))
	fill(t, o, workload.NewPowerLaw(2, rng), 1500)
	est, err := o.EstimateSize(4000, rng)
	if err != nil {
		t.Fatal(err)
	}
	if est < 150 || est > 15000 {
		t.Fatalf("estimate %.0f for 1500 skewed objects", est)
	}
}

func TestEstimateSizeSmallOverlays(t *testing.T) {
	o := newTestOverlay(100)
	if _, err := o.EstimateSize(10, rand.New(rand.NewSource(1))); err != ErrEmpty {
		t.Fatalf("empty overlay: %v", err)
	}
	// Collinear overlay: exact count fallback.
	for _, x := range []float64{0.1, 0.5, 0.9} {
		if _, err := o.Insert(geom.Pt(x, 0.5)); err != nil {
			t.Fatal(err)
		}
	}
	est, err := o.EstimateSize(10, rand.New(rand.NewSource(2)))
	if err != nil || est != 3 {
		t.Fatalf("degenerate overlay estimate: %v %v", est, err)
	}
}

func TestAdaptNMaxGrowsWhenOverloaded(t *testing.T) {
	// Provision for 200 objects, insert 2000: AdaptNMax must detect the
	// overload, raise NMax past the true size, and refresh dense
	// neighbourhoods.
	o := New(Config{NMax: 200, Seed: 303})
	rng := rand.New(rand.NewSource(304))
	fill(t, o, &workload.Uniform{Rand: rng}, 2000)
	oldDMin := o.DMin()
	newNMax, refreshed, err := o.AdaptNMax(2000, 2, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	if newNMax < 2000 {
		t.Fatalf("NMax %d still below the true size", newNMax)
	}
	if o.DMin() >= oldDMin {
		t.Fatal("dmin did not shrink")
	}
	if refreshed == 0 {
		t.Fatal("no dense neighbourhood refreshed despite 10x overload")
	}
	if err := o.CheckInvariants(true); err != nil {
		t.Fatal(err)
	}

	// A second round is a no-op (the estimate is within provisioning).
	n2, r2, err := o.AdaptNMax(1000, 2, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	if n2 != newNMax || r2 != 0 {
		t.Fatalf("second adaptation should be a no-op: %d %d", n2, r2)
	}
}
