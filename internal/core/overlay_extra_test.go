package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"voronet/internal/geom"
	"voronet/internal/workload"
)

func TestAccessors(t *testing.T) {
	o := New(Config{NMax: 500, Seed: 99, LongLinks: 2})
	if got := o.Config().LongLinks; got != 2 {
		t.Fatalf("Config: %d", got)
	}
	rng := rand.New(rand.NewSource(100))
	ids := fill(t, o, &workload.Uniform{Rand: rng}, 50)

	if o.Object(ids[0]) == nil || o.Object(987654) != nil {
		t.Fatal("Object lookup wrong")
	}
	if _, err := o.Position(987654); !errors.Is(err, ErrNotFound) {
		t.Fatal("Position of missing object must fail")
	}
	if _, err := o.BackLongRange(987654); !errors.Is(err, ErrNotFound) {
		t.Fatal("BackLongRange of missing object must fail")
	}
	if _, err := o.LongTargets(987654); !errors.Is(err, ErrNotFound) {
		t.Fatal("LongTargets of missing object must fail")
	}
	if _, err := o.LongNeighbors(987654); !errors.Is(err, ErrNotFound) {
		t.Fatal("LongNeighbors of missing object must fail")
	}
	if _, err := o.Degree(987654); !errors.Is(err, ErrNotFound) {
		t.Fatal("Degree of missing object must fail")
	}
	if _, err := o.VoronoiNeighbors(987654, nil); !errors.Is(err, ErrNotFound) {
		t.Fatal("VoronoiNeighbors of missing object must fail")
	}
	if _, err := o.CloseNeighbors(987654, nil); !errors.Is(err, ErrNotFound) {
		t.Fatal("CloseNeighbors of missing object must fail")
	}

	// RandomObject over an empty overlay fails; over a live one it draws
	// every object eventually.
	empty := New(Config{NMax: 10})
	if _, err := empty.RandomObject(rng); !errors.Is(err, ErrEmpty) {
		t.Fatal("RandomObject on empty overlay must fail")
	}
	seen := map[ObjectID]bool{}
	for i := 0; i < 2000; i++ {
		id, err := o.RandomObject(rng)
		if err != nil {
			t.Fatal(err)
		}
		seen[id] = true
	}
	if len(seen) != len(ids) {
		t.Fatalf("RandomObject reached %d/%d objects", len(seen), len(ids))
	}

	// ForEachObject visits everything once; early stop works.
	count := 0
	o.ForEachObject(func(*Object) bool { count++; return true })
	if count != len(ids) {
		t.Fatalf("ForEachObject visited %d", count)
	}
	count = 0
	o.ForEachObject(func(*Object) bool { count++; return false })
	if count != 1 {
		t.Fatalf("ForEachObject early stop visited %d", count)
	}

	c := o.Counters()
	_ = c
	o.ResetCounters()
	if o.Counters().GreedySteps != 0 {
		t.Fatal("ResetCounters did not reset")
	}
}

func TestBackLongRangeView(t *testing.T) {
	o := newTestOverlay(1000)
	rng := rand.New(rand.NewSource(101))
	ids := fill(t, o, &workload.Uniform{Rand: rng}, 200)
	// Every long link must appear in its holder's BLRn view.
	for _, id := range ids {
		ln, _ := o.LongNeighbors(id)
		for j, holder := range ln {
			back, err := o.BackLongRange(holder)
			if err != nil {
				t.Fatal(err)
			}
			found := false
			for _, ref := range back {
				if ref.Obj == id && ref.Link == j {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("link (%d,%d) missing from BLRn(%d)", id, j, holder)
			}
		}
	}
}

func TestLinkRadiusExponents(t *testing.T) {
	// The generalised Choose-LRT must respect bounds for every exponent
	// and reduce to log-uniform at s=2 (tested elsewhere). For s≈0 the
	// density is ∝ r (area-uniform): P(r <= rmax/2) should be ~1/4.
	// (The zero value of LongLinkExponent means "paper default s=2", so
	// the area-uniform regime is requested with a small epsilon.)
	o := New(Config{NMax: 10000, Seed: 7, LongLinkExponent: 0.01})
	nBelow := 0
	const n = 40000
	half := math.Sqrt2 / 2
	for i := 0; i < n; i++ {
		r := o.sampleLinkRadius(o.rng)
		if r < o.DMin()-1e-15 || r > math.Sqrt2+1e-12 {
			t.Fatalf("s=0 radius %g out of bounds", r)
		}
		if r <= half {
			nBelow++
		}
	}
	frac := float64(nBelow) / n
	if math.Abs(frac-0.25) > 0.02 {
		t.Fatalf("s=0 CDF at rmax/2: %g, want ~0.25", frac)
	}

	// s=3: strongly short-biased; the median must be far below s=0's.
	o3 := New(Config{NMax: 10000, Seed: 7, LongLinkExponent: 3})
	below := 0
	for i := 0; i < n; i++ {
		if o3.sampleLinkRadius(o3.rng) <= half {
			below++
		}
	}
	if float64(below)/n < 0.9 {
		t.Fatalf("s=3 should be short-biased: only %g below rmax/2", float64(below)/n)
	}
}

func TestQuickOverlayChurnInvariants(t *testing.T) {
	// Property: any random operation sequence leaves a consistent overlay.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		o := New(Config{NMax: 500, Seed: seed})
		var ids []ObjectID
		for step := 0; step < 120; step++ {
			if len(ids) < 3 || rng.Float64() < 0.6 {
				id, err := o.Insert(geom.Pt(rng.Float64(), rng.Float64()))
				if err == nil {
					ids = append(ids, id)
				}
			} else {
				i := rng.Intn(len(ids))
				id := ids[i]
				ids[i] = ids[len(ids)-1]
				ids = ids[:len(ids)-1]
				if err := o.Remove(id); err != nil {
					t.Logf("remove: %v", err)
					return false
				}
			}
		}
		if err := o.CheckInvariants(true); err != nil {
			t.Logf("invariants: %v", err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20, Rand: rand.New(rand.NewSource(11))}); err != nil {
		t.Error(err)
	}
}

func TestQuickRoutingAlwaysArrives(t *testing.T) {
	// Property: greedy object routing arrives on any overlay built from
	// any distribution mix.
	f := func(seed int64, mix uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		var src workload.Source
		switch mix % 4 {
		case 0:
			src = &workload.Uniform{Rand: rng}
		case 1:
			src = workload.NewPowerLaw(2, rng)
		case 2:
			src = workload.NewClusters(3, 0.01, rng)
		default:
			src = workload.NewPowerLaw(5, rng)
		}
		o := New(Config{NMax: 400, Seed: seed})
		var ids []ObjectID
		for len(ids) < 150 {
			if id, err := o.Insert(src.Next()); err == nil {
				ids = append(ids, id)
			}
		}
		for q := 0; q < 30; q++ {
			a := ids[rng.Intn(len(ids))]
			b := ids[rng.Intn(len(ids))]
			if _, err := o.RouteToObject(a, b); err != nil {
				t.Logf("route: %v", err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15, Rand: rand.New(rand.NewSource(13))}); err != nil {
		t.Error(err)
	}
}

func TestJoinIntoTinyOverlays(t *testing.T) {
	// Join must work at every small size: 0 (bootstrap), 1, 2 (degenerate
	// dimension), 3 collinear objects.
	o := newTestOverlay(100)
	positions := []geom.Point{
		{X: 0.5, Y: 0.5},           // bootstrap
		{X: 0.25, Y: 0.5},          // dim 1
		{X: 0.75, Y: 0.5},          // still dim 1 (collinear)
		{X: 0.1, Y: 0.5},           // still collinear
		{X: 0.5, Y: 0.9},           // dimension jump
		{X: 0.5, Y: 0.50000000001}, // near-degenerate
	}
	var last ObjectID = NoObject
	for i, p := range positions {
		id, err := o.Join(p, last)
		if err != nil {
			t.Fatalf("join %d (%v): %v", i, p, err)
		}
		last = id
		if err := o.CheckInvariants(true); err != nil {
			t.Fatalf("after join %d: %v", i, err)
		}
	}
	// Queries against the tiny overlay.
	res, err := o.HandleQuery(last, geom.Pt(0.26, 0.51))
	if err != nil {
		t.Fatal(err)
	}
	want, _ := o.Owner(geom.Pt(0.26, 0.51), NoObject)
	if res.Owner != want && !o.equidistantOwners(geom.Pt(0.26, 0.51), res.Owner, want) {
		t.Fatalf("tiny overlay query: %d want %d", res.Owner, want)
	}
	// Drain to empty through Remove, verifying each step.
	var all []ObjectID
	o.ForEachObject(func(obj *Object) bool { all = append(all, obj.ID); return true })
	for _, id := range all {
		if err := o.Remove(id); err != nil {
			t.Fatal(err)
		}
		if err := o.CheckInvariants(true); err != nil {
			t.Fatal(err)
		}
	}
}

func TestRouteToPointFromOutsideSquare(t *testing.T) {
	// Long-link targets may fall outside the unit square; routing towards
	// them must behave (owner = nearest object).
	o := newTestOverlay(2000)
	rng := rand.New(rand.NewSource(103))
	ids := fill(t, o, &workload.Uniform{Rand: rng}, 300)
	targets := []geom.Point{
		{X: -0.5, Y: 0.5}, {X: 1.5, Y: 1.5}, {X: 0.5, Y: -1.2}, {X: 2.0, Y: -0.3},
	}
	for _, tgt := range targets {
		res, err := o.RouteToPoint(ids[0], tgt)
		if err != nil {
			t.Fatalf("route to %v: %v", tgt, err)
		}
		want, _ := o.Owner(tgt, NoObject)
		if res.Owner != want && !o.equidistantOwners(tgt, res.Owner, want) {
			t.Fatalf("owner of %v: %d want %d", tgt, res.Owner, want)
		}
	}
}

func TestCountersAccounting(t *testing.T) {
	o := newTestOverlay(1000)
	rng := rand.New(rand.NewSource(104))
	ids := fill(t, o, &workload.Uniform{Rand: rng}, 200)
	o.ResetCounters()

	// A pure routing operation counts only greedy steps.
	h, err := o.RouteToObject(ids[0], ids[100])
	if err != nil {
		t.Fatal(err)
	}
	c := o.Counters()
	if c.GreedySteps != uint64(h) {
		t.Fatalf("greedy steps %d for %d hops", c.GreedySteps, h)
	}
	if c.MaintenanceMessages != 0 || c.FictiveInserts != 0 {
		t.Fatalf("routing must not incur maintenance: %+v", c)
	}

	// A removal counts maintenance messages (neighbourhood updates).
	o.ResetCounters()
	if err := o.Remove(ids[50]); err != nil {
		t.Fatal(err)
	}
	c = o.Counters()
	if c.MaintenanceMessages == 0 || c.Leaves != 1 {
		t.Fatalf("leave accounting: %+v", c)
	}
}
