package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"voronet/internal/geom"
	"voronet/internal/workload"
)

func newTestOverlay(nmax int) *Overlay {
	return New(Config{NMax: nmax, Seed: 1})
}

func fill(t *testing.T, o *Overlay, src workload.Source, n int) []ObjectID {
	t.Helper()
	var ids []ObjectID
	for len(ids) < n {
		id, err := o.Insert(src.Next())
		if err != nil {
			if errors.Is(err, ErrDuplicate) {
				continue
			}
			t.Fatalf("Insert: %v", err)
		}
		ids = append(ids, id)
	}
	return ids
}

func TestInsertBasics(t *testing.T) {
	o := newTestOverlay(1000)
	id, err := o.Insert(geom.Pt(0.5, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	if o.Len() != 1 {
		t.Fatalf("Len=%d", o.Len())
	}
	if _, err := o.Insert(geom.Pt(0.5, 0.5)); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("duplicate: %v", err)
	}
	pos, err := o.Position(id)
	if err != nil || pos != geom.Pt(0.5, 0.5) {
		t.Fatalf("Position: %v %v", pos, err)
	}
	// Single object: its long link points to itself (it owns everything).
	ln, _ := o.LongNeighbors(id)
	if len(ln) != 1 || ln[0] != id {
		t.Fatalf("singleton long link: %v", ln)
	}
	if err := o.CheckInvariants(true); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultDMin(t *testing.T) {
	// π·dmin²·NMax = 1.
	for _, n := range []int{100, 300000} {
		d := DefaultDMin(n)
		if got := math.Pi * d * d * float64(n); math.Abs(got-1) > 1e-12 {
			t.Fatalf("NMax=%d: π·dmin²·N = %g", n, got)
		}
	}
}

func TestViewsOnSmallOverlay(t *testing.T) {
	o := newTestOverlay(10000)
	rng := rand.New(rand.NewSource(2))
	ids := fill(t, o, &workload.Uniform{Rand: rng}, 300)
	if err := o.CheckInvariants(true); err != nil {
		t.Fatal(err)
	}

	// Voronoi neighbourhood sizes: average strictly below 6 (planarity).
	total := 0
	for _, id := range ids {
		d, err := o.Degree(id)
		if err != nil {
			t.Fatal(err)
		}
		if d < 2 {
			t.Fatalf("object %d has degree %d", id, d)
		}
		total += d
	}
	if avg := float64(total) / float64(len(ids)); avg >= 6 {
		t.Fatalf("average degree %g >= 6", avg)
	}

	// Close neighbours are symmetric.
	for _, id := range ids {
		cn, _ := o.CloseNeighbors(id, nil)
		for _, cid := range cn {
			back, _ := o.CloseNeighbors(cid, nil)
			found := false
			for _, b := range back {
				if b == id {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("cn not symmetric between %d and %d", id, cid)
			}
		}
	}
}

func TestLemma1MatchesGrid(t *testing.T) {
	// Lemma 1: the close neighbours of an object are found among its
	// Voronoi neighbours and their close neighbours. Use a dense overlay
	// relative to dmin so cn sets are non-trivial.
	o := New(Config{NMax: 50, Seed: 3}) // large dmin on purpose
	rng := rand.New(rand.NewSource(4))
	ids := fill(t, o, &workload.Uniform{Rand: rng}, 400)
	nonEmpty := 0
	for _, id := range ids {
		direct, _ := o.CloseNeighbors(id, nil)
		if len(direct) > 0 {
			nonEmpty++
		}
		if err := o.checkLemma1(id); err != nil {
			t.Fatal(err)
		}
	}
	if nonEmpty == 0 {
		t.Fatal("test vacuous: no object has close neighbours")
	}
}

func TestRouteToObjectAlwaysArrives(t *testing.T) {
	for _, srcName := range []string{"uniform", "alpha5"} {
		o := newTestOverlay(5000)
		rng := rand.New(rand.NewSource(5))
		ids := fill(t, o, workload.ByName(srcName, rng), 2000)
		for q := 0; q < 300; q++ {
			a := ids[rng.Intn(len(ids))]
			b := ids[rng.Intn(len(ids))]
			hops, err := o.RouteToObject(a, b)
			if err != nil {
				t.Fatalf("%s: route %d->%d: %v", srcName, a, b, err)
			}
			if a == b && hops != 0 {
				t.Fatalf("self route took %d hops", hops)
			}
		}
	}
}

func TestRouteToPointFindsOwner(t *testing.T) {
	o := newTestOverlay(5000)
	rng := rand.New(rand.NewSource(6))
	ids := fill(t, o, &workload.Uniform{Rand: rng}, 1000)
	for q := 0; q < 200; q++ {
		from := ids[rng.Intn(len(ids))]
		p := geom.Pt(rng.Float64(), rng.Float64())
		res, err := o.RouteToPoint(from, p)
		if err != nil {
			t.Fatal(err)
		}
		// The owner must be the nearest object (ground truth check).
		best, bestD := NoObject, math.Inf(1)
		for _, id := range ids {
			if d := geom.Dist2(o.objs[id].Pos, p); d < bestD {
				best, bestD = id, d
			}
		}
		if res.Owner != best && geom.Dist2(o.objs[res.Owner].Pos, p) != bestD {
			t.Fatalf("owner of %v: got %d (d=%g), want %d (d=%g)", p,
				res.Owner, geom.Dist2(o.objs[res.Owner].Pos, p), best, bestD)
		}
		// The stop object must satisfy Algorithm 5's stop condition.
		stop := o.objs[res.Stop]
		dCur := geom.Dist(p, stop.Pos)
		if dCur > o.DMin() {
			_, dz := o.vor.DistanceToRegion(stop.vert, p)
			if dz > dCur/3+1e-12 {
				t.Fatalf("stop condition violated: dz=%g dCur/3=%g", dz, dCur/3)
			}
		}
	}
}

func TestJoinMatchesInsertStructure(t *testing.T) {
	// A protocol Join must produce the same tessellation and valid views.
	o := newTestOverlay(2000)
	rng := rand.New(rand.NewSource(7))
	src := &workload.Uniform{Rand: rng}
	var last ObjectID = NoObject
	for i := 0; i < 300; i++ {
		id, err := o.Join(src.Next(), last)
		if err != nil {
			if errors.Is(err, ErrDuplicate) {
				continue
			}
			t.Fatalf("Join %d: %v", i, err)
		}
		last = id
	}
	if err := o.CheckInvariants(true); err != nil {
		t.Fatal(err)
	}
	c := o.Counters()
	if c.Joins != uint64(o.Len()) {
		t.Fatalf("joins=%d len=%d", c.Joins, o.Len())
	}
	if c.JoinRouteSteps == 0 || c.FictiveInserts == 0 || c.MaintenanceMessages == 0 {
		t.Fatalf("join accounting empty: %+v", c)
	}
	if c.Leaves != 0 {
		t.Fatalf("fictive removals leaked into Leaves: %d", c.Leaves)
	}
}

func TestChurnMaintainsInvariants(t *testing.T) {
	o := New(Config{NMax: 3000, Seed: 8, LongLinks: 2})
	rng := rand.New(rand.NewSource(9))
	src := workload.NewPowerLaw(2, rng)
	var ids []ObjectID
	for step := 0; step < 900; step++ {
		switch {
		case len(ids) < 5 || rng.Float64() < 0.55:
			id, err := o.Insert(src.Next())
			if err == nil {
				ids = append(ids, id)
			} else if !errors.Is(err, ErrDuplicate) {
				t.Fatalf("step %d: %v", step, err)
			}
		case rng.Float64() < 0.5 && len(ids) > 2:
			// Protocol join interleaved with direct inserts.
			id, err := o.Join(src.Next(), ids[rng.Intn(len(ids))])
			if err == nil {
				ids = append(ids, id)
			} else if !errors.Is(err, ErrDuplicate) {
				t.Fatalf("step %d join: %v", step, err)
			}
		default:
			i := rng.Intn(len(ids))
			id := ids[i]
			ids[i] = ids[len(ids)-1]
			ids = ids[:len(ids)-1]
			if err := o.Remove(id); err != nil {
				t.Fatalf("step %d remove: %v", step, err)
			}
		}
		if step%60 == 0 {
			if err := o.CheckInvariants(true); err != nil {
				t.Fatalf("step %d (n=%d): %v", step, o.Len(), err)
			}
		}
	}
	if err := o.CheckInvariants(true); err != nil {
		t.Fatal(err)
	}
	// Drain.
	for _, id := range ids {
		if err := o.Remove(id); err != nil {
			t.Fatalf("drain: %v", err)
		}
	}
	if o.Len() != 0 {
		t.Fatalf("overlay not empty: %d", o.Len())
	}
}

func TestLongLinkRepairOnLeave(t *testing.T) {
	o := newTestOverlay(2000)
	rng := rand.New(rand.NewSource(10))
	ids := fill(t, o, &workload.Uniform{Rand: rng}, 500)

	// Remove the long-range neighbour of some object and verify the link
	// is re-established to the new owner of the target point.
	var who ObjectID = NoObject
	for _, id := range ids {
		ln, _ := o.LongNeighbors(id)
		if ln[0] != id && ln[0] != NoObject {
			who = id
			break
		}
	}
	if who == NoObject {
		t.Fatal("no object with a foreign long link")
	}
	ln, _ := o.LongNeighbors(who)
	victim := ln[0]
	if err := o.Remove(victim); err != nil {
		t.Fatal(err)
	}
	ln2, _ := o.LongNeighbors(who)
	if ln2[0] == victim {
		t.Fatal("long link still names the departed object")
	}
	tgts, _ := o.LongTargets(who)
	owner, err := o.Owner(tgts[0], who)
	if err != nil {
		t.Fatal(err)
	}
	if ln2[0] != owner && !o.equidistantOwners(tgts[0], ln2[0], owner) {
		t.Fatalf("repaired link %d is not the owner %d of the target", ln2[0], owner)
	}
	if err := o.CheckInvariants(true); err != nil {
		t.Fatal(err)
	}
}

func TestHandleQuery(t *testing.T) {
	o := newTestOverlay(2000)
	rng := rand.New(rand.NewSource(11))
	ids := fill(t, o, &workload.Uniform{Rand: rng}, 400)
	for q := 0; q < 100; q++ {
		from := ids[rng.Intn(len(ids))]
		p := geom.Pt(rng.Float64(), rng.Float64())
		res, err := o.HandleQuery(from, p)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := o.Owner(p, NoObject)
		if res.Owner != want && !o.equidistantOwners(p, res.Owner, want) {
			t.Fatalf("query owner %d, want %d", res.Owner, want)
		}
	}
	// The fictive dance must leave the overlay unchanged.
	if o.Len() != len(ids) {
		t.Fatalf("queries changed the overlay size: %d != %d", o.Len(), len(ids))
	}
	if err := o.CheckInvariants(true); err != nil {
		t.Fatal(err)
	}
}

func TestRangeQuery(t *testing.T) {
	o := newTestOverlay(2000)
	rng := rand.New(rand.NewSource(12))
	ids := fill(t, o, &workload.Uniform{Rand: rng}, 500)
	a, b := geom.Pt(0.1, 0.4), geom.Pt(0.9, 0.4)
	got, st, err := o.RangeQuery(ids[0], a, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 {
		t.Fatal("empty range result")
	}
	// Ground truth: objects whose region intersects the segment = owners of
	// densely sampled points of the segment.
	want := map[ObjectID]bool{}
	for s := 0; s <= 4000; s++ {
		f := float64(s) / 4000
		p := geom.Pt(a.X+(b.X-a.X)*f, a.Y+(b.Y-a.Y)*f)
		id, _ := o.Owner(p, NoObject)
		want[id] = true
	}
	gotSet := map[ObjectID]bool{}
	for _, id := range got {
		gotSet[id] = true
	}
	for id := range want {
		if !gotSet[id] {
			t.Fatalf("range query missed owner %d", id)
		}
	}
	// Results must be ordered along the segment.
	for i := 1; i < len(got); i++ {
		pi := o.objs[got[i-1]].Pos.X
		pj := o.objs[got[i]].Pos.X
		if pi > pj {
			t.Fatal("range result not ordered along the segment")
		}
	}
	if st.Visited < len(got) {
		t.Fatalf("stats: visited %d < results %d", st.Visited, len(got))
	}
}

func TestRadiusQuery(t *testing.T) {
	o := newTestOverlay(2000)
	rng := rand.New(rand.NewSource(13))
	ids := fill(t, o, &workload.Uniform{Rand: rng}, 600)
	centre := geom.Pt(0.5, 0.5)
	r := 0.15
	got, _, err := o.RadiusQuery(ids[0], centre, r)
	if err != nil {
		t.Fatal(err)
	}
	want := map[ObjectID]bool{}
	for _, id := range ids {
		if geom.Dist(o.objs[id].Pos, centre) <= r {
			want[id] = true
		}
	}
	if len(got) != len(want) {
		t.Fatalf("radius query: %d results, want %d", len(got), len(want))
	}
	for _, id := range got {
		if !want[id] {
			t.Fatalf("radius query returned %d outside the disk", id)
		}
	}
	// Ordered by distance.
	for i := 1; i < len(got); i++ {
		if geom.Dist2(o.objs[got[i-1]].Pos, centre) > geom.Dist2(o.objs[got[i]].Pos, centre) {
			t.Fatal("radius result not ordered by distance")
		}
	}
}

func TestMultipleLongLinks(t *testing.T) {
	o := New(Config{NMax: 2000, LongLinks: 5, Seed: 14})
	rng := rand.New(rand.NewSource(15))
	ids := fill(t, o, &workload.Uniform{Rand: rng}, 500)
	for _, id := range ids {
		ln, _ := o.LongNeighbors(id)
		if len(ln) != 5 {
			t.Fatalf("object %d has %d long links", id, len(ln))
		}
	}
	if err := o.CheckInvariants(true); err != nil {
		t.Fatal(err)
	}
}

func TestAblationConfigs(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	pts := make([]geom.Point, 600)
	for i := range pts {
		pts[i] = geom.Pt(rng.Float64(), rng.Float64())
	}

	// No long links: routing still arrives (pure Delaunay greedy).
	o := New(Config{NMax: 2000, Seed: 17, DisableLongLinks: true})
	var ids []ObjectID
	for _, p := range pts {
		if id, err := o.Insert(p); err == nil {
			ids = append(ids, id)
		}
	}
	for q := 0; q < 100; q++ {
		if _, err := o.RouteToObject(ids[rng.Intn(len(ids))], ids[rng.Intn(len(ids))]); err != nil {
			t.Fatalf("no-long-link routing: %v", err)
		}
	}
	if err := o.CheckInvariants(true); err != nil {
		t.Fatal(err)
	}

	// No close neighbours: routing still arrives (vn alone guarantees
	// progress); cn affects the poly-log bound, not termination.
	o2 := New(Config{NMax: 2000, Seed: 18, DisableCloseNeighbours: true})
	ids = ids[:0]
	for _, p := range pts {
		if id, err := o2.Insert(p); err == nil {
			ids = append(ids, id)
		}
	}
	for q := 0; q < 100; q++ {
		if _, err := o2.RouteToObject(ids[rng.Intn(len(ids))], ids[rng.Intn(len(ids))]); err != nil {
			t.Fatalf("no-cn routing: %v", err)
		}
	}
}

func TestSetNMaxRefreshesDenseNeighbourhoods(t *testing.T) {
	// Provision for 100 objects, insert 2000 clustered ones: close
	// neighbourhoods overflow; growing NMax must shrink dmin and re-draw
	// links of dense objects.
	o := New(Config{NMax: 100, Seed: 19})
	rng := rand.New(rand.NewSource(20))
	src := workload.NewClusters(3, 0.01, rng)
	fill(t, o, src, 1500)
	oldDMin := o.DMin()

	refreshed := o.SetNMax(10000, 4)
	if o.DMin() >= oldDMin {
		t.Fatalf("dmin did not shrink: %g -> %g", oldDMin, o.DMin())
	}
	if refreshed == 0 {
		t.Fatal("no dense neighbourhood was refreshed")
	}
	if err := o.CheckInvariants(true); err != nil {
		t.Fatal(err)
	}
	// Routing still works.
	ids := o.ids
	for q := 0; q < 50; q++ {
		if _, err := o.RouteToObject(ids[rng.Intn(len(ids))], ids[rng.Intn(len(ids))]); err != nil {
			t.Fatal(err)
		}
	}
}

func TestLongLinkRadiusDistribution(t *testing.T) {
	// For s = 2 the radius is log-uniform on [dmin, √2]: the median must be
	// close to exp((ln dmin + ln √2)/2) = sqrt(dmin·√2).
	o := newTestOverlay(10000)
	n := 20000
	var count int
	median := math.Sqrt(o.DMin() * math.Sqrt2)
	for i := 0; i < n; i++ {
		if o.sampleLinkRadius(o.rng) < median {
			count++
		}
	}
	frac := float64(count) / float64(n)
	if frac < 0.47 || frac > 0.53 {
		t.Fatalf("log-uniform median check failed: %g below theoretical median", frac)
	}
	// Bounds.
	for i := 0; i < 1000; i++ {
		r := o.sampleLinkRadius(o.rng)
		if r < o.DMin()-1e-15 || r > math.Sqrt2+1e-12 {
			t.Fatalf("radius %g out of [dmin, √2]", r)
		}
	}
}

func TestChooseLRTLemma2(t *testing.T) {
	// Lemma 2: Pr[LRt in B(y, f·r)] is bounded below by πf²/(K(1+f)²)
	// independently of r. Empirically: the probability that the target
	// lands within distance d of the source scales like ln(d)/ln-range —
	// i.e. the radius CDF is log-linear. Check at three scales.
	o := newTestOverlay(100000)
	dmin := o.DMin()
	n := 50000
	counts := map[float64]int{0.01: 0, 0.1: 0, 1.0: 0}
	for i := 0; i < n; i++ {
		r := o.sampleLinkRadius(o.rng)
		for d := range counts {
			if r <= d {
				counts[d]++
			}
		}
	}
	logRange := math.Log(math.Sqrt2) - math.Log(dmin)
	for d, c := range counts {
		want := (math.Log(d) - math.Log(dmin)) / logRange
		got := float64(c) / float64(n)
		if math.Abs(got-want) > 0.02 {
			t.Fatalf("CDF(%g): got %g, want %g", d, got, want)
		}
	}
}

func TestRemoveErrors(t *testing.T) {
	o := newTestOverlay(100)
	if err := o.Remove(42); !errors.Is(err, ErrNotFound) {
		t.Fatalf("remove missing: %v", err)
	}
	id, _ := o.Insert(geom.Pt(0.5, 0.5))
	if err := o.Remove(id); err != nil {
		t.Fatal(err)
	}
	if err := o.Remove(id); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double remove: %v", err)
	}
}

func TestOwnerAndGreedyNeighborErrors(t *testing.T) {
	o := newTestOverlay(100)
	if _, err := o.Owner(geom.Pt(0.5, 0.5), NoObject); !errors.Is(err, ErrEmpty) {
		t.Fatalf("owner on empty overlay: %v", err)
	}
	if _, err := o.GreedyNeighbor(7, geom.Pt(0, 0)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("greedy neighbour of missing object: %v", err)
	}
	id, _ := o.Insert(geom.Pt(0.25, 0.25))
	n, err := o.GreedyNeighbor(id, geom.Pt(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	// Singleton with a self long-link: no other neighbour exists.
	if n != NoObject {
		t.Fatalf("singleton greedy neighbour: %d", n)
	}
}
