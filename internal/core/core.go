package core
