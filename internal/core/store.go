package core

import (
	"runtime"
	"sync"
	"time"

	"voronet/internal/delaunay"
	"voronet/internal/geom"
	"voronet/internal/metrics"
	"voronet/internal/proto"
	"voronet/internal/store"
)

// Store is the simulator mirror of the distributed object store
// (internal/node + internal/store): one process holds the per-object
// record buckets the distributed protocol maintains collectively. The
// placement rules are identical — a record lives at the owner of its key's
// Voronoi region and on the owner's Replication Voronoi neighbours closest
// to the key — so a workload driven through both implementations must
// agree key for key (see internal/sim's equivalence test).
//
// Concurrency: Put, Get and Delete are safe for any number of concurrent
// callers. By default they ride the overlay's read lock — each operation
// borrows a pooled Router, resolves the key's owner with a mutation-free
// nearest-site walk, and touches only the independently-locked buckets —
// so reads and writes to *different keys* run genuinely in parallel, and
// all of them run in parallel with each other while a single overlay
// writer proceeds serially. When removing objects under concurrent store
// traffic, use RemoveObject — it runs the store handoff and the
// tessellation surgery atomically; the two-call OnRemove + Overlay.Remove
// form is for serial drivers. With Config.FictiveQueries set, operations
// instead route through HandleQuery (Algorithm 4's fictive insert/remove
// dance) for paper-fidelity cost accounting and therefore serialise.
type Store struct {
	ov  *Overlay
	rep int
	// fictiveQueries caches Config.FictiveQueries (immutable after New)
	// so the per-operation mode branch costs no overlay lock round-trip.
	fictiveQueries bool

	// alpha mirrors internal/node's Config.Alpha for the fast read path:
	// when > 1, Get resolves via RouteToPointAlpha and reports the
	// first-byte hop count (the winning probe's). Writes stay serial —
	// speculation only ever accelerates reads. Set before driving load.
	alpha int

	mu      sync.RWMutex // guards buckets (the map, not the Locals)
	buckets map[ObjectID]*store.Local

	clients sync.Pool // *storeClient

	// metrics is nil unless SetMetrics installed a registry; the off
	// mode costs one pointer load per operation (the <5% overhead
	// budget of DESIGN.md §Observability is measured against it).
	metrics *simStoreMetrics
}

// simStoreMetrics caches the sim-mirror store's instruments (resolved
// once in SetMetrics, never per operation).
type simStoreMetrics struct {
	ops    *metrics.Counter // simstore_ops_total
	errs   *metrics.Counter // simstore_errors_total
	putLat *metrics.Histogram
	getLat *metrics.Histogram
	delLat *metrics.Histogram
	putHop *metrics.Histogram
	getHop *metrics.Histogram
	delHop *metrics.Histogram
}

// SetMetrics installs reg as the store's metric sink: per-operation
// latency and hop histograms (simstore_{put,get,delete}_{seconds,hops})
// plus total/error counters. Pass nil to switch metrics off again. Not
// safe to call concurrently with operations; install before driving
// load.
func (s *Store) SetMetrics(reg *metrics.Registry) {
	if reg == nil {
		s.metrics = nil
		return
	}
	lat := metrics.LatencyBuckets()
	hop := metrics.HopBuckets()
	s.metrics = &simStoreMetrics{
		ops:    reg.Counter("simstore_ops_total"),
		errs:   reg.Counter("simstore_errors_total"),
		putLat: reg.Histogram("simstore_put_seconds", lat),
		getLat: reg.Histogram("simstore_get_seconds", lat),
		delLat: reg.Histogram("simstore_delete_seconds", lat),
		putHop: reg.Histogram("simstore_put_hops", hop),
		getHop: reg.Histogram("simstore_get_hops", hop),
		delHop: reg.Histogram("simstore_delete_hops", hop),
	}
}

// done records one finished operation; errored ops stay out of the
// latency/hops books so placement failures cannot skew the route
// distributions.
func (m *simStoreMetrics) done(lat, hop *metrics.Histogram, start time.Time, hops int, err error) {
	m.ops.Inc()
	if err != nil {
		m.errs.Inc()
		return
	}
	lat.Observe(time.Since(start).Seconds())
	hop.Observe(float64(hops))
}

// storeClient is the per-goroutine scratch of one in-flight store
// operation: a Router for owner resolution and a neighbour buffer for
// replica placement.
type storeClient struct {
	r   *Router
	vns []ObjectID
}

// NewStore attaches an empty object store to ov. replication <= 0 selects
// store.DefaultReplication.
func NewStore(ov *Overlay, replication int) *Store {
	if replication <= 0 {
		replication = store.DefaultReplication
	}
	s := &Store{
		ov:             ov,
		rep:            replication,
		fictiveQueries: ov.Config().FictiveQueries,
		buckets:        make(map[ObjectID]*store.Local),
	}
	s.clients.New = func() any { return &storeClient{r: ov.NewRouter()} }
	return s
}

// Replication returns the replication factor R.
func (s *Store) Replication() int { return s.rep }

// SetAlpha sets the speculative fan-out for reads (alpha <= 1 restores
// the classic single-walk resolution). Not safe to call concurrently with
// operations; configure before driving load. Ignored in FictiveQueries
// mode, which serialises through HandleQuery for paper-fidelity costing.
func (s *Store) SetAlpha(alpha int) { s.alpha = alpha }

func (s *Store) bucket(id ObjectID) *store.Local {
	s.mu.RLock()
	b := s.buckets[id]
	s.mu.RUnlock()
	if b != nil {
		return b
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if b = s.buckets[id]; b == nil {
		b = store.NewLocal()
		s.buckets[id] = b
	}
	return b
}

// Put routes a PUT from object `from` to the owner of key, which stores
// value and replicates it. It returns the owner and the route's hop count.
func (s *Store) Put(from ObjectID, key geom.Point, value []byte) (owner ObjectID, hops int, err error) {
	if m := s.metrics; m != nil {
		start := time.Now()
		defer func() { m.done(m.putLat, m.putHop, start, hops, err) }()
	}
	if s.fictive() {
		res, err := s.ov.HandleQuery(from, key)
		if err != nil {
			return NoObject, 0, err
		}
		rec := s.bucket(res.Owner).Put(key, value)
		s.replicate(res.Owner, NoObject, rec)
		return res.Owner, res.Hops, nil
	}
	c := s.client()
	defer s.clients.Put(c)
	sh := shardOf(key)
	s.ov.shards.rlock(sh)
	defer s.ov.shards.runlock(sh)
	s.ov.mu.RLock()
	defer s.ov.mu.RUnlock()
	res, err := c.r.resolve(from, key)
	if err != nil {
		return NoObject, res.Hops, err
	}
	rec := s.bucket(res.Owner).Put(key, value)
	s.replicateLocked(c, res.Owner, NoObject, rec)
	return res.Owner, res.Hops, nil
}

// Get routes a GET from object `from` and returns the owner's record
// value, or store.ErrNotFound for a missing or deleted key.
func (s *Store) Get(from ObjectID, key geom.Point) (value []byte, hops int, err error) {
	if m := s.metrics; m != nil {
		start := time.Now()
		defer func() { m.done(m.getLat, m.getHop, start, hops, err) }()
	}
	if s.fictive() {
		res, err := s.ov.HandleQuery(from, key)
		if err != nil {
			return nil, 0, err
		}
		rec, ok := s.bucket(res.Owner).Get(key)
		if !ok {
			return nil, res.Hops, store.ErrNotFound
		}
		return rec.Value, res.Hops, nil
	}
	c := s.client()
	defer s.clients.Put(c)
	sh := shardOf(key)
	s.ov.shards.rlock(sh)
	defer s.ov.shards.runlock(sh)
	s.ov.mu.RLock()
	defer s.ov.mu.RUnlock()
	var res RouteResult
	if a := s.alpha; a > 1 {
		ar, aerr := c.r.resolveAlpha(from, key, a)
		res, err = ar.RouteResult, aerr
	} else {
		res, err = c.r.resolve(from, key)
	}
	if err != nil {
		return nil, res.Hops, err
	}
	rec, ok := s.bucket(res.Owner).Get(key)
	if !ok {
		return nil, res.Hops, store.ErrNotFound
	}
	return rec.Value, res.Hops, nil
}

// Delete routes a DELETE from object `from` to the owner of key, which
// tombstones the record and replicates the tombstone. It returns
// store.ErrNotFound when the owner had no live record.
func (s *Store) Delete(from ObjectID, key geom.Point) (hops int, err error) {
	if m := s.metrics; m != nil {
		start := time.Now()
		defer func() { m.done(m.delLat, m.delHop, start, hops, err) }()
	}
	if s.fictive() {
		res, err := s.ov.HandleQuery(from, key)
		if err != nil {
			return 0, err
		}
		tomb, ok := s.bucket(res.Owner).Delete(key)
		if !ok {
			return res.Hops, store.ErrNotFound
		}
		s.replicate(res.Owner, NoObject, tomb)
		return res.Hops, nil
	}
	c := s.client()
	defer s.clients.Put(c)
	sh := shardOf(key)
	s.ov.shards.rlock(sh)
	defer s.ov.shards.runlock(sh)
	s.ov.mu.RLock()
	defer s.ov.mu.RUnlock()
	res, err := c.r.resolve(from, key)
	if err != nil {
		return res.Hops, err
	}
	tomb, ok := s.bucket(res.Owner).Delete(key)
	if !ok {
		return res.Hops, store.ErrNotFound
	}
	s.replicateLocked(c, res.Owner, NoObject, tomb)
	return res.Hops, nil
}

func (s *Store) fictive() bool { return s.fictiveQueries }

func (s *Store) client() *storeClient { return s.clients.Get().(*storeClient) }

// replicate pushes rec to the rep Voronoi neighbours of owner closest to
// the record's key, skipping `exclude` (a departing object). It takes the
// overlay locks itself; the caller must hold none.
func (s *Store) replicate(owner, exclude ObjectID, rec proto.StoreRecord) {
	c := s.client()
	defer s.clients.Put(c)
	s.ov.mu.RLock()
	defer s.ov.mu.RUnlock()
	s.replicateLocked(c, owner, exclude, rec)
}

// replicateLocked is replicate under a held overlay read lock, placing
// replicas via the client's private scratch.
func (s *Store) replicateLocked(c *storeClient, owner, exclude ObjectID, rec proto.StoreRecord) {
	vns, err := c.r.voronoiNeighbors(owner, c.vns)
	c.vns = vns[:0]
	if err != nil {
		return
	}
	for picked := 0; picked < s.rep && len(vns) > 0; picked++ {
		best, bestAt := NoObject, -1
		bestD := 0.0
		for i, id := range vns {
			if id == exclude {
				continue
			}
			d := geom.Dist2(s.ov.objs[id].Pos, rec.Key)
			if bestAt < 0 || d < bestD {
				best, bestAt, bestD = id, i, d
			}
		}
		if bestAt < 0 {
			return
		}
		vns[bestAt] = vns[len(vns)-1]
		vns = vns[:len(vns)-1]
		s.bucket(best).Apply(rec)
	}
}

// StoreOp is one operation for the Do fan-out front-end.
type StoreOp struct {
	Kind  OpKind
	From  ObjectID
	Key   geom.Point
	Value []byte // OpPut only
}

// OpKind selects the operation of a StoreOp.
type OpKind uint8

// StoreOp kinds.
const (
	OpPut OpKind = iota
	OpGet
	OpDelete
)

// StoreResult reports one completed StoreOp.
type StoreResult struct {
	Owner ObjectID
	Hops  int
	Value []byte // OpGet only
	Err   error
}

// Do executes ops across `workers` goroutines (0 selects GOMAXPROCS) and
// returns one result per op, order-aligned. Operations on distinct keys
// are independent; operations on the same key race exactly as concurrent
// clients of the distributed store do (the per-bucket versioning keeps
// every interleaving consistent). (The bench harness fans out with its
// own worker loop because it also times each operation; Do is the
// batteries-included equivalent for callers that only need results.)
func (s *Store) Do(ops []StoreOp, workers int) []StoreResult {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(ops) {
		workers = len(ops)
	}
	results := make([]StoreResult, len(ops))
	if workers == 0 {
		return results
	}
	var wg sync.WaitGroup
	chunk := (len(ops) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := min(lo+chunk, len(ops))
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				op := ops[i]
				r := &results[i]
				switch op.Kind {
				case OpPut:
					r.Owner, r.Hops, r.Err = s.Put(op.From, op.Key, op.Value)
				case OpGet:
					r.Value, r.Hops, r.Err = s.Get(op.From, op.Key)
				case OpDelete:
					r.Hops, r.Err = s.Delete(op.From, op.Key)
				}
			}
		}(lo, hi)
	}
	wg.Wait()
	return results
}

// OnInsert performs the store side of AddVoronoiRegion for a freshly
// inserted object: each new Voronoi neighbour hands over the records whose
// key now falls in the newcomer's region (keeping its copy as a replica),
// and the newcomer re-replicates them. Call it right after Overlay.Insert
// or Overlay.Join. Fast-path operations landing between the insert and
// this handoff see the distributed system's mid-churn semantics: a GET at
// the new owner may miss a record still travelling (eventually
// consistent), and a PUT is stored at the new owner and survives the
// handoff — no acknowledged write is lost.
func (s *Store) OnInsert(id ObjectID) {
	c := s.client()
	defer s.clients.Put(c)
	s.ov.mu.Lock()
	defer s.ov.mu.Unlock()
	s.onInsertLocked(c, id)
}

func (s *Store) onInsertLocked(c *storeClient, id ObjectID) {
	obj := s.ov.objs[id]
	if obj == nil {
		return
	}
	vnsBuf, err := c.r.voronoiNeighbors(id, c.vns)
	c.vns = vnsBuf[:0]
	if err != nil {
		return
	}
	// Copy: replicateLocked below reuses the client's neighbour buffer.
	vns := append([]ObjectID(nil), vnsBuf...)
	for _, nid := range vns {
		s.mu.RLock()
		b := s.buckets[nid]
		s.mu.RUnlock()
		if b == nil {
			continue
		}
		npos := s.ov.objs[nid].Pos
		moved := b.Collect(func(k geom.Point) bool {
			return geom.Dist2(obj.Pos, k) < geom.Dist2(npos, k)
		})
		for _, rec := range moved {
			if s.bucket(id).Apply(rec) {
				s.replicateLocked(c, id, NoObject, rec)
			}
		}
	}
}

// OnRemove performs the store side of RemoveVoronoiRegion for a departing
// object: every record in its bucket is handed to the Voronoi neighbour
// closest to its key — the region's next owner — which re-replicates it.
// Call it right before Overlay.Remove, while the tessellation still holds
// the departing object.
//
// OnRemove + Overlay.Remove as two calls leaves a window in which a
// concurrent fast-path PUT could re-create the drained bucket and lose an
// acknowledged write once the object disappears. With concurrent store
// traffic use RemoveObject, which runs the handoff and the tessellation
// surgery in one atomic step; the two-call form is for serial drivers
// (the sim mirror protocol keeps handoff and surgery as separate protocol
// events).
func (s *Store) OnRemove(id ObjectID) {
	c := s.client()
	defer s.clients.Put(c)
	s.ov.mu.Lock()
	defer s.ov.mu.Unlock()
	s.onRemoveLocked(c, id)
}

// InsertObject inserts an object at p together with its store handoff,
// atomically with respect to concurrent Put/Get/Delete. The two-call
// Overlay.Insert + OnInsert form leaves a window in which a PUT acked by
// the fresh owner (whose bucket restarts the key's version chain) can be
// clobbered by the handoff delivering an older value with a higher
// version; running both under one write lock keeps every key's version
// chain continuous across ownership changes.
//
// Under the sharded engine (SerialSurgery unset) the atomicity is
// shard-scoped rather than global: surgery plus handoff run while the
// write locks of the shards covering the conflict region are held, and a
// Put/Get/Delete read-locks its key's shard before resolving — so
// operations on keys near the churn serialise against the full
// surgery+handoff step, while traffic in distant regions proceeds
// concurrently.
func (s *Store) InsertObject(p geom.Point) (ObjectID, error) {
	c := s.client()
	defer s.clients.Put(c)
	if !s.ov.cfg.SerialSurgery {
		return s.ov.insertSharded(p, func(id ObjectID) { s.onInsertLocked(c, id) })
	}
	s.ov.mu.Lock()
	defer s.ov.mu.Unlock()
	id, err := s.ov.insert(p, delaunay.NoVertex)
	if err != nil {
		return NoObject, err
	}
	s.onInsertLocked(c, id)
	return id, nil
}

// JoinObject is InsertObject through the full routed join protocol
// (Algorithm 1): protocol join plus store handoff in one atomic step
// (shard-scoped under the sharded engine; see InsertObject).
func (s *Store) JoinObject(p geom.Point, via ObjectID) (ObjectID, error) {
	c := s.client()
	defer s.clients.Put(c)
	if !s.ov.cfg.SerialSurgery {
		return s.ov.joinSharded(p, via, func(id ObjectID) { s.onInsertLocked(c, id) })
	}
	s.ov.mu.Lock()
	defer s.ov.mu.Unlock()
	id, err := s.ov.join(p, via)
	if err != nil {
		return NoObject, err
	}
	s.onInsertLocked(c, id)
	return id, nil
}

// RemoveObject removes object id from the overlay together with its store
// handoff, atomically with respect to concurrent Put/Get/Delete: no
// operation can slip between the bucket drain and the object's
// disappearance, because the handoff runs while the shard write locks
// covering the departing object's star are held (sharded engine) or under
// the overlay write lock (SerialSurgery).
func (s *Store) RemoveObject(id ObjectID) error {
	c := s.client()
	defer s.clients.Put(c)
	if !s.ov.cfg.SerialSurgery {
		return s.ov.removeSharded(id, func(id ObjectID) { s.onRemoveLocked(c, id) })
	}
	s.ov.mu.Lock()
	defer s.ov.mu.Unlock()
	s.onRemoveLocked(c, id)
	return s.ov.remove(id)
}

func (s *Store) onRemoveLocked(c *storeClient, id ObjectID) {
	s.mu.Lock()
	b := s.buckets[id]
	delete(s.buckets, id)
	s.mu.Unlock()
	if b == nil || s.ov.objs[id] == nil {
		return
	}
	vnsBuf, err := c.r.voronoiNeighbors(id, c.vns)
	c.vns = vnsBuf[:0]
	if err != nil || len(vnsBuf) == 0 {
		return
	}
	// Copy: replicateLocked below reuses the client's neighbour buffer.
	vns := append([]ObjectID(nil), vnsBuf...)
	pos := make([]geom.Point, len(vns))
	for i, nid := range vns {
		pos[i] = s.ov.objs[nid].Pos
	}
	for _, rec := range b.Snapshot() {
		best, bestAt := NoObject, -1
		bestD := 0.0
		for i, nid := range vns {
			d := geom.Dist2(pos[i], rec.Key)
			if bestAt < 0 || d < bestD {
				best, bestAt, bestD = nid, i, d
			}
		}
		if s.bucket(best).Apply(rec) {
			s.replicateLocked(c, best, id, rec)
		}
	}
}

// Copies returns the number of objects holding a live record for key.
func (s *Store) Copies(key geom.Point) int {
	n := 0
	for _, b := range s.snapshotBuckets() {
		if _, ok := b.Get(key); ok {
			n++
		}
	}
	return n
}

// Len returns the number of live records at the key's current owner,
// summed over all owners — i.e. the number of distinct live keys as the
// owners see them.
func (s *Store) Len() int {
	seen := make(map[geom.Point]bool)
	for _, b := range s.snapshotBuckets() {
		for _, rec := range b.Snapshot() {
			if !seen[rec.Key] {
				if _, err := s.StatusOf(rec.Key); err == nil {
					seen[rec.Key] = true
				}
			}
		}
	}
	return len(seen)
}

// snapshotBuckets copies the bucket list so diagnostics can iterate
// without holding the map lock across per-bucket work.
func (s *Store) snapshotBuckets() []*store.Local {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]*store.Local, 0, len(s.buckets))
	for _, b := range s.buckets {
		out = append(out, b)
	}
	return out
}

// StatusOf resolves key's current owner and reports whether it holds a
// live record (store.ErrNotFound otherwise).
func (s *Store) StatusOf(key geom.Point) (ObjectID, error) {
	owner, err := s.ov.Owner(key, NoObject)
	if err != nil {
		return NoObject, err
	}
	if _, ok := s.bucket(owner).Get(key); !ok {
		return owner, store.ErrNotFound
	}
	return owner, nil
}
