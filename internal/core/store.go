package core

import (
	"voronet/internal/geom"
	"voronet/internal/proto"
	"voronet/internal/store"
)

// Store is the simulator mirror of the distributed object store
// (internal/node + internal/store): one process holds the per-object
// record buckets the distributed protocol maintains collectively. The
// placement rules are identical — a record lives at the owner of its key's
// Voronoi region and on the owner's Replication Voronoi neighbours closest
// to the key — so a workload driven through both implementations must
// agree key for key (see internal/sim's equivalence test).
//
// Routing costs are accounted through HandleQuery (Algorithm 4), so store
// workloads inherit the simulator's exact protocol cost model.
type Store struct {
	ov      *Overlay
	rep     int
	buckets map[ObjectID]*store.Local
}

// NewStore attaches an empty object store to ov. replication <= 0 selects
// store.DefaultReplication.
func NewStore(ov *Overlay, replication int) *Store {
	if replication <= 0 {
		replication = store.DefaultReplication
	}
	return &Store{ov: ov, rep: replication, buckets: make(map[ObjectID]*store.Local)}
}

// Replication returns the replication factor R.
func (s *Store) Replication() int { return s.rep }

func (s *Store) bucket(id ObjectID) *store.Local {
	b := s.buckets[id]
	if b == nil {
		b = store.NewLocal()
		s.buckets[id] = b
	}
	return b
}

// Put routes a PUT from object `from` to the owner of key, which stores
// value and replicates it. It returns the owner and the route's hop count.
func (s *Store) Put(from ObjectID, key geom.Point, value []byte) (ObjectID, int, error) {
	res, err := s.ov.HandleQuery(from, key)
	if err != nil {
		return NoObject, 0, err
	}
	rec := s.bucket(res.Owner).Put(key, value)
	s.replicate(res.Owner, NoObject, rec)
	return res.Owner, res.Hops, nil
}

// Get routes a GET from object `from` and returns the owner's record
// value, or store.ErrNotFound for a missing or deleted key.
func (s *Store) Get(from ObjectID, key geom.Point) ([]byte, int, error) {
	res, err := s.ov.HandleQuery(from, key)
	if err != nil {
		return nil, 0, err
	}
	rec, ok := s.bucket(res.Owner).Get(key)
	if !ok {
		return nil, res.Hops, store.ErrNotFound
	}
	return rec.Value, res.Hops, nil
}

// Delete routes a DELETE from object `from` to the owner of key, which
// tombstones the record and replicates the tombstone. It returns
// store.ErrNotFound when the owner had no live record.
func (s *Store) Delete(from ObjectID, key geom.Point) (int, error) {
	res, err := s.ov.HandleQuery(from, key)
	if err != nil {
		return 0, err
	}
	tomb, ok := s.bucket(res.Owner).Delete(key)
	if !ok {
		return res.Hops, store.ErrNotFound
	}
	s.replicate(res.Owner, NoObject, tomb)
	return res.Hops, nil
}

// replicate pushes rec to the rep Voronoi neighbours of owner closest to
// the record's key, skipping `exclude` (a departing object).
func (s *Store) replicate(owner, exclude ObjectID, rec proto.StoreRecord) {
	vns, err := s.ov.VoronoiNeighbors(owner, nil)
	if err != nil {
		return
	}
	for picked := 0; picked < s.rep && len(vns) > 0; picked++ {
		best, bestAt := NoObject, -1
		bestD := 0.0
		for i, id := range vns {
			if id == exclude {
				continue
			}
			d := geom.Dist2(s.ov.objs[id].Pos, rec.Key)
			if bestAt < 0 || d < bestD {
				best, bestAt, bestD = id, i, d
			}
		}
		if bestAt < 0 {
			return
		}
		vns[bestAt] = vns[len(vns)-1]
		vns = vns[:len(vns)-1]
		s.bucket(best).Apply(rec)
	}
}

// OnInsert performs the store side of AddVoronoiRegion for a freshly
// inserted object: each new Voronoi neighbour hands over the records whose
// key now falls in the newcomer's region (keeping its copy as a replica),
// and the newcomer re-replicates them. Call it right after Overlay.Insert
// or Overlay.Join.
func (s *Store) OnInsert(id ObjectID) {
	obj := s.ov.objs[id]
	if obj == nil {
		return
	}
	vns, err := s.ov.VoronoiNeighbors(id, nil)
	if err != nil {
		return
	}
	for _, nid := range vns {
		b := s.buckets[nid]
		if b == nil {
			continue
		}
		npos := s.ov.objs[nid].Pos
		moved := b.Collect(func(k geom.Point) bool {
			return geom.Dist2(obj.Pos, k) < geom.Dist2(npos, k)
		})
		for _, rec := range moved {
			if s.bucket(id).Apply(rec) {
				s.replicate(id, NoObject, rec)
			}
		}
	}
}

// OnRemove performs the store side of RemoveVoronoiRegion for a departing
// object: every record in its bucket is handed to the Voronoi neighbour
// closest to its key — the region's next owner — which re-replicates it.
// Call it right before Overlay.Remove, while the tessellation still holds
// the departing object.
func (s *Store) OnRemove(id ObjectID) {
	b := s.buckets[id]
	delete(s.buckets, id)
	obj := s.ov.objs[id]
	if b == nil || obj == nil {
		return
	}
	vns, err := s.ov.VoronoiNeighbors(id, nil)
	if err != nil || len(vns) == 0 {
		return
	}
	for _, rec := range b.Snapshot() {
		best := NoObject
		bestD := 0.0
		for _, nid := range vns {
			d := geom.Dist2(s.ov.objs[nid].Pos, rec.Key)
			if best == NoObject || d < bestD {
				best, bestD = nid, d
			}
		}
		if s.bucket(best).Apply(rec) {
			s.replicate(best, id, rec)
		}
	}
}

// Copies returns the number of objects holding a live record for key.
func (s *Store) Copies(key geom.Point) int {
	n := 0
	for _, b := range s.buckets {
		if _, ok := b.Get(key); ok {
			n++
		}
	}
	return n
}

// Len returns the number of live records at the key's current owner,
// summed over all owners — i.e. the number of distinct live keys as the
// owners see them.
func (s *Store) Len() int {
	seen := make(map[geom.Point]bool)
	for _, b := range s.buckets {
		for _, rec := range b.Snapshot() {
			if !seen[rec.Key] {
				if _, err := s.StatusOf(rec.Key); err == nil {
					seen[rec.Key] = true
				}
			}
		}
	}
	return len(seen)
}

// StatusOf resolves key's current owner and reports whether it holds a
// live record (store.ErrNotFound otherwise).
func (s *Store) StatusOf(key geom.Point) (ObjectID, error) {
	owner, err := s.ov.Owner(key, NoObject)
	if err != nil {
		return NoObject, err
	}
	if _, ok := s.bucket(owner).Get(key); !ok {
		return owner, store.ErrNotFound
	}
	return owner, nil
}
