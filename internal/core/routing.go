package core

import (
	"fmt"
	"math"
	"math/rand"

	"voronet/internal/delaunay"
	"voronet/internal/geom"
	"voronet/internal/voronoi"
)

// chooseLRT draws a long-link target for an object at p per Algorithm 3
// (Choose-LRT): a radius with density proportional to r^(1-s) on
// [dmin, √2] — log-uniform for the paper's s = 2 — and a uniform angle.
// The target may land outside the unit square; its owner is still the
// nearest object (§4.3.2).
func (o *Overlay) chooseLRT(p geom.Point) geom.Point {
	// The RNG has its own leaf lock: serial surgery draws under the write
	// lock, the sharded engine's preparation phase under the read lock.
	o.rngMu.Lock()
	defer o.rngMu.Unlock()
	return o.chooseLRTWith(o.rng, p)
}

// chooseLRTWith is chooseLRT drawing from an explicit RNG: the parallel
// bulk loader gives each worker its own deterministically-seeded stream
// (bulkload.go), so the caller owns the locking story.
func (o *Overlay) chooseLRTWith(rng *rand.Rand, p geom.Point) geom.Point {
	draw := func() geom.Point {
		r := o.sampleLinkRadius(rng)
		theta := rng.Float64() * 2 * math.Pi
		return geom.Pt(p.X+r*math.Cos(theta), p.Y+r*math.Sin(theta))
	}
	tgt := draw()
	if o.cfg.InteriorTargets {
		for tries := 0; !tgt.InUnitSquare() && tries < 64; tries++ {
			tgt = draw()
		}
		if !tgt.InUnitSquare() {
			tgt = tgt.ClampUnitSquare()
		}
	}
	return tgt
}

func (o *Overlay) sampleLinkRadius(rng *rand.Rand) float64 {
	rmin, rmax := o.dmin, math.Sqrt2
	u := rng.Float64()
	if s := o.cfg.LongLinkExponent; s != 2 {
		e := 2 - s
		lo := math.Pow(rmin, e)
		hi := math.Pow(rmax, e)
		return math.Pow(lo+u*(hi-lo), 1/e)
	}
	// a ~ U[ln dmin, ln √2]; r = e^a.
	return math.Exp(math.Log(rmin) + u*(math.Log(rmax)-math.Log(rmin)))
}

// routeState is the mutable state one routing walk consumes: neighbour
// and grid scratch, a Voronoi scratch view for Algorithm 5's stop
// condition, and the Greedyneighbour counter to charge. The Overlay owns
// one (charged to the shared Counters, used under the write lock); every
// Router owns its own, which is what makes concurrent routing safe. Both
// paths execute the very same walk functions below, so they can never
// drift apart.
type routeState struct {
	nbuf  []delaunay.VertexID
	gbuf  []gridEntry
	vor   *voronoi.Diagram
	steps *uint64
}

// GreedyNeighbor returns the neighbour of id — over vn(o) ∪ cn(o) ∪ LRn(o)
// — closest to target, the paper's Greedyneighbour primitive. It returns
// NoObject only when the object has no neighbours (singleton overlay).
func (o *Overlay) GreedyNeighbor(id ObjectID, target geom.Point) (ObjectID, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	obj := o.objs[id]
	if obj == nil {
		return NoObject, ErrNotFound
	}
	n := o.greedyNeighbor(&o.rt, obj, target)
	if n == nil {
		return NoObject, nil
	}
	return n.ID, nil
}

// greedyNeighbor scans vn ∪ cn ∪ LRn considering (id, position) pairs read
// straight from the triangulation and the grid — one object-map lookup for
// the winner instead of one per candidate, which matters at one call per
// routing hop.
func (o *Overlay) greedyNeighbor(rt *routeState, obj *Object, target geom.Point) *Object {
	*rt.steps++
	best := NoObject
	bestD := math.Inf(1)
	consider := func(id ObjectID, pos geom.Point) {
		if id == obj.ID {
			return
		}
		if d := geom.Dist2(pos, target); d < bestD {
			best, bestD = id, d
		}
	}
	rt.nbuf = o.tr.Neighbors(obj.vert, rt.nbuf)
	for _, v := range rt.nbuf {
		consider(o.byVertex[v], o.tr.Point(v))
	}
	if !o.cfg.DisableCloseNeighbours && !cnCannotWin(obj.Pos, target, o.dmin, bestD) {
		rt.gbuf = o.grid.withinEntries(obj.Pos, o.dmin, obj.ID, rt.gbuf)
		for _, e := range rt.gbuf {
			consider(e.id, e.pos)
		}
	}
	for _, id := range obj.longNbrs {
		if id != NoObject {
			consider(id, o.objs[id].Pos)
		}
	}
	if best == NoObject {
		return nil
	}
	return o.objs[best]
}

// cnCannotWin reports whether the close-neighbour scan can be skipped
// without changing the greedy choice: every cn candidate lies within dmin
// of the current object, so by the triangle inequality its distance to the
// target is at least d(cur, target) − dmin. If some already-considered
// candidate beats that bound (strictly better than any cn could ever be,
// and ties keep the earlier candidate), probing the grid is pure cost —
// which is the common case away from the destination, where vn progress
// per hop dwarfs dmin.
func cnCannotWin(cur, target geom.Point, dmin, bestD float64) bool {
	if bestD == math.Inf(1) {
		return false
	}
	margin := geom.Dist(cur, target) - dmin
	return margin > 0 && bestD <= margin*margin
}

// RouteToObject greedily routes a message from object `from` to object
// `to` and returns the number of hops (Greedyneighbour calls). This is the
// measurement of Figs 6–8: mean hops between random object couples. The
// call serialises (it accounts into the shared counters); use Router for
// concurrent routing.
func (o *Overlay) RouteToObject(from, to ObjectID) (int, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.routeToObject(&o.rt, from, to)
}

// routeToObject is the object-routing loop shared by the serial path and
// the Router.
func (o *Overlay) routeToObject(rt *routeState, from, to ObjectID) (int, error) {
	cur := o.objs[from]
	dst := o.objs[to]
	if cur == nil || dst == nil {
		return 0, ErrNotFound
	}
	target := dst.Pos
	hops := 0
	limit := len(o.ids) + 16
	for cur.ID != to {
		next := o.greedyNeighbor(rt, cur, target)
		hops++
		if next == nil {
			return hops, fmt.Errorf("voronet: routing stalled at %d (no neighbours)", cur.ID)
		}
		if geom.Dist2(next.Pos, target) >= geom.Dist2(cur.Pos, target) {
			// Cannot happen on a correct overlay: greedy routing on a
			// Delaunay triangulation always makes strict progress towards
			// the region owner, and the target is an object.
			return hops, fmt.Errorf("voronet: greedy routing regressed at %d", cur.ID)
		}
		if hops > limit {
			return hops, fmt.Errorf("voronet: routing exceeded %d hops", limit)
		}
		cur = next
	}
	return hops, nil
}

// RouteResult reports the outcome of a point routing (Algorithm 5).
type RouteResult struct {
	// Stop is the object at which the termination condition fired.
	Stop ObjectID
	// Owner is the object whose region contains the target.
	Owner ObjectID
	// Hops is the number of Greedyneighbour calls.
	Hops int
}

// RouteToPoint routes from object `from` towards an arbitrary target point
// per the framework of Algorithm 5: forward greedily while
//
//	d(DistanceToRegion(target), target) > ⅓·d(target, current)
//	and d(target, current) > dmin,
//
// then stop; the stopping object can insert the target locally (Lemma 4).
// The returned Owner is the object whose Voronoi region contains target.
func (o *Overlay) RouteToPoint(from ObjectID, target geom.Point) (RouteResult, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	cur := o.objs[from]
	if cur == nil {
		return RouteResult{}, ErrNotFound
	}
	hops, err := o.routeToPoint(&o.rt, &cur, target)
	if err != nil {
		return RouteResult{Hops: hops}, err
	}
	ownerV := o.tr.NearestSite(target, cur.vert)
	return RouteResult{Stop: cur.ID, Owner: o.byVertex[ownerV], Hops: hops}, nil
}

// routeToPoint advances *cur until Algorithm 5's stop condition holds and
// returns the hop count. Shared by the serial path and the Router via rt.
func (o *Overlay) routeToPoint(rt *routeState, cur **Object, target geom.Point) (int, error) {
	hops := 0
	limit := len(o.ids) + 16
	for {
		c := *cur
		dCur := geom.Dist(target, c.Pos)
		if dCur <= o.dmin {
			return hops, nil
		}
		if o.tr.Dimension() < 2 {
			// Degenerate overlay (≤2 objects or collinear): regions are
			// halfplanes/slabs; route greedily to the nearest object.
			next := o.greedyNeighbor(rt, c, target)
			hops++
			if next == nil || geom.Dist2(next.Pos, target) >= geom.Dist2(c.Pos, target) {
				return hops, nil
			}
			*cur = next
			continue
		}
		// Cheap one-pass lower bound first; the exact cell-based distance
		// only runs near the stop, where the bound cannot decide.
		if !rt.vor.DistanceToRegionBeyond(c.vert, target, dCur/3) {
			_, dz := rt.vor.DistanceToRegion(c.vert, target)
			if dz <= dCur/3 {
				return hops, nil
			}
		}
		next := o.greedyNeighbor(rt, c, target)
		hops++
		if next == nil {
			return hops, nil
		}
		if geom.Dist2(next.Pos, target) >= geom.Dist2(c.Pos, target) {
			return hops, fmt.Errorf("voronet: point routing regressed at %d", c.ID)
		}
		if hops > limit {
			return hops, fmt.Errorf("voronet: point routing exceeded %d hops", limit)
		}
		*cur = next
	}
}

// Join adds an object at p through the full distributed protocol
// (Algorithm 1, AddObject): greedy-route from the introduction point `via`
// until the stop condition, insert a fictive object z at
// DistanceToRegion(p) when p is not locally insertable, insert the object,
// remove the fictive one, and establish each long link by SearchLongLink
// (Algorithm 2) — which itself routes and performs the two fictive
// insertions the paper notes. All costs are accounted in Counters.
//
// via may be NoObject, in which case a deterministic arbitrary object is
// used as the introduction point (the paper assumes each joining object
// knows one object in the overlay).
func (o *Overlay) Join(p geom.Point, via ObjectID) (ObjectID, error) {
	if !o.cfg.SerialSurgery {
		return o.joinSharded(p, via, nil)
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.join(p, via)
}

func (o *Overlay) join(p geom.Point, via ObjectID) (ObjectID, error) {
	if len(o.ids) == 0 {
		// Bootstrap: the first object has the whole square as its region;
		// its long links necessarily point to itself.
		id, err := o.insert(p, delaunay.NoVertex)
		if err == nil {
			o.counters.Joins++
		}
		return id, err
	}
	start := o.objs[via]
	if start == nil {
		start = o.objs[o.ids[0]]
	}

	// Route towards the new position (AddObject's loop).
	cur := start
	hops, err := o.routeToPoint(&o.rt, &cur, p)
	if err != nil {
		return NoObject, err
	}
	o.counters.JoinRouteSteps += uint64(hops)

	// Fictive object z = DistanceToRegion(p) at the stopping object, unless
	// p is already in R(stop) (Lemma 4 lets us insert z, then p from z).
	z, dz := o.fictiveSite(cur, p)
	var zID ObjectID = NoObject
	if dz > 0 {
		if id, err := o.insertCore(z, cur.vert, modeFictive); err == nil {
			zID = id
			o.counters.FictiveInserts++
		}
	}

	hint := cur.vert
	if zID != NoObject {
		hint = o.objs[zID].vert
	}
	id, err := o.insertCore(p, hint, modeJoining)
	if zID != NoObject {
		if rerr := o.remove(zID); rerr != nil {
			return NoObject, rerr
		}
		o.counters.Leaves-- // fictive removals are not protocol leaves
	}
	if err != nil {
		return NoObject, err
	}
	obj := o.objs[id]
	// AddVoronoiRegion exchanges O(|vn|) messages (§4.2.1).
	o.counters.MaintenanceMessages += uint64(o.tr.Degree(obj.vert))

	// Establish the long links through the routed protocol (Algorithm 2).
	if !o.cfg.DisableLongLinks {
		for j := 0; j < o.cfg.LongLinks; j++ {
			tgt := o.chooseLRT(p)
			ownerID, lhops, err := o.searchLongLink(obj, tgt)
			if err != nil {
				return NoObject, err
			}
			o.counters.JoinRouteSteps += uint64(lhops)
			obj.longTargets = append(obj.longTargets, tgt)
			obj.longNbrs = append(obj.longNbrs, ownerID)
			o.objs[ownerID].back = append(o.objs[ownerID].back, BackRef{Obj: id, Link: j})
		}
	}
	o.counters.Joins++
	return id, nil
}

// searchLongLink implements Algorithm 2: route from obj towards the target
// point, then determine the owning object via the double fictive insertion
// the paper describes ("finding LRn(x) requires to add two objects (to be
// removed!)").
func (o *Overlay) searchLongLink(obj *Object, tgt geom.Point) (ObjectID, int, error) {
	cur := obj
	hops, err := o.routeToPoint(&o.rt, &cur, tgt)
	if err != nil {
		return NoObject, hops, err
	}
	owner, err := o.resolveByFictive(cur, tgt)
	return owner, hops, err
}

// fictiveSite computes z = DistanceToRegion(target) at cur, handling the
// degenerate (dim < 2) overlay where regions are not polygons.
func (o *Overlay) fictiveSite(cur *Object, target geom.Point) (geom.Point, float64) {
	if o.tr.Dimension() < 2 {
		return cur.Pos, geom.Dist(cur.Pos, target)
	}
	return o.vor.DistanceToRegion(cur.vert, target)
}

// resolveByFictive determines Obj(tgt) the way the protocol does: insert a
// fictive object at z = DistanceToRegion(tgt) (if needed), insert a fictive
// object at tgt itself, read off the nearest Voronoi neighbour, and remove
// both again. Exercising the real insert/remove machinery here is
// deliberate: it is what the protocol costs and what the paper's
// correctness argument (Lemma 4) is about.
func (o *Overlay) resolveByFictive(cur *Object, tgt geom.Point) (ObjectID, error) {
	z, dz := o.fictiveSite(cur, tgt)
	var zID, tID ObjectID = NoObject, NoObject
	if dz > 0 {
		if id, err := o.insertCore(z, cur.vert, modeFictive); err == nil {
			zID = id
			o.counters.FictiveInserts++
		}
	}
	hint := cur.vert
	if zID != NoObject {
		hint = o.objs[zID].vert
	}
	if id, err := o.insertCore(tgt, hint, modeFictive); err == nil {
		tID = id
		o.counters.FictiveInserts++
	}

	// Remove the stepping-stone z before reading off the owner, as
	// Algorithm 4 does (AddVoronoiRegion(z); AddVoronoiRegion(Query);
	// RemoveVoronoiRegion(z); find y ∈ vn(Query) minimising d(y, Query)).
	// With z gone, the nearest Voronoi neighbour of the fictive target
	// object is exactly the object owning the target's region afterwards;
	// scanning while z is still present could name a shadowed second-best.
	if zID != NoObject {
		if err := o.remove(zID); err != nil {
			return NoObject, err
		}
		o.counters.Leaves--
	}
	var owner ObjectID = NoObject
	if tID != NoObject {
		tObj := o.objs[tID]
		o.nbuf = o.tr.Neighbors(tObj.vert, o.nbuf)
		best := math.Inf(1)
		for _, v := range o.nbuf {
			nid := o.byVertex[v]
			if nid == tID {
				continue
			}
			if d := geom.Dist2(o.objs[nid].Pos, tgt); d < best {
				owner, best = nid, d
			}
		}
		if err := o.remove(tID); err != nil {
			return NoObject, err
		}
		o.counters.Leaves--
	}
	if owner == NoObject {
		// tgt coincided with an existing object, or its neighbours were all
		// fictive: fall back to the ground truth.
		v := o.tr.NearestSite(tgt, cur.vert)
		owner = o.byVertex[v]
	}
	return owner, nil
}

// HandleQuery implements Algorithm 4: route the query point from object
// `from`, determine the owner, and "answer" it by returning the owner.
// Hops is the Greedyneighbour count.
//
// Owner determination depends on Config.FictiveQueries: by default the
// stopping object resolves Obj(query) with a read-only nearest-site walk
// (the stop condition guarantees the owner is in its vicinity — Lemma 4);
// with the flag set it performs the paper's literal fictive insert/remove
// dance and accounts its cost. Either way the call serialises against the
// overlay (it updates the shared counters); the Router/Store fast path is
// the concurrent equivalent.
func (o *Overlay) HandleQuery(from ObjectID, query geom.Point) (RouteResult, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.handleQuery(from, query)
}

func (o *Overlay) handleQuery(from ObjectID, query geom.Point) (RouteResult, error) {
	cur := o.objs[from]
	if cur == nil {
		return RouteResult{}, ErrNotFound
	}
	hops, err := o.routeToPoint(&o.rt, &cur, query)
	if err != nil {
		return RouteResult{Hops: hops}, err
	}
	var owner ObjectID
	if o.cfg.FictiveQueries {
		owner, err = o.resolveByFictive(cur, query)
		if err != nil {
			return RouteResult{Hops: hops}, err
		}
	} else {
		owner = o.resolveByNearest(cur, query)
	}
	o.counters.MaintenanceMessages++ // AnswerQuery back to the requester
	o.counters.Queries++
	return RouteResult{Stop: cur.ID, Owner: owner, Hops: hops}, nil
}

// resolveByNearest determines Obj(tgt) from the stopping object with a
// read-only nearest-site walk — the mutation-free equivalent of
// resolveByFictive. Starting the walk at the stopping object makes it
// O(1) expected: Algorithm 5's stop condition left us within a constant
// factor of the target's region (Lemma 4), so the greedy descent crosses
// only a handful of cells.
func (o *Overlay) resolveByNearest(cur *Object, tgt geom.Point) ObjectID {
	var v delaunay.VertexID
	v, o.nbuf = o.tr.NearestSiteRO(tgt, cur.vert, o.nbuf)
	return o.byVertex[v]
}
