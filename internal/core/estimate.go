package core

import (
	"math/rand"
	"sort"

	"voronet/internal/geom"
)

// This file implements the paper's second perspective (§7): dealing
// dynamically with the maximal number of objects. "A first solution would
// consist in having a background process estimating the overall number of
// objects, increasing the value of Nmax by a certain factor if a threshold
// is reached."
//
// The estimator is fully decentralized in spirit: each probe routes a
// uniform random point to its owner and reads off the owner's region area
// restricted to the unit square. A uniform point lands in region R_i with
// probability area(R_i), so E[1/area] = Σ_i area(R_i)·(1/area(R_i)) = N
// exactly — an unbiased size estimate obtained purely through routed
// queries, no global knowledge. Median-of-means over probe groups tames
// the heavy tail that tiny regions induce under skewed distributions.

// EstimateSize estimates the number of objects from `probes` routed probes
// using the caller's RNG. It needs a non-empty overlay with at least three
// non-collinear objects (regions of a degenerate overlay are unbounded in
// the square); smaller overlays return their exact size.
func (o *Overlay) EstimateSize(probes int, rng *rand.Rand) (float64, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.estimateSize(probes, rng)
}

func (o *Overlay) estimateSize(probes int, rng *rand.Rand) (float64, error) {
	if len(o.ids) == 0 {
		return 0, ErrEmpty
	}
	if o.tr.Dimension() < 2 || probes < 1 {
		return float64(len(o.ids)), nil
	}
	// Median of means over up to 8 groups.
	groups := 8
	if probes < groups {
		groups = 1
	}
	per := probes / groups
	means := make([]float64, 0, groups)
	unit0 := geom.Pt(0, 0)
	unit1 := geom.Pt(1, 1)
	hint := o.ids[0]
	for g := 0; g < groups; g++ {
		sum := 0.0
		n := 0
		for i := 0; i < per; i++ {
			p := geom.Pt(rng.Float64(), rng.Float64())
			ownerV := o.tr.NearestSite(p, o.objs[hint].vert)
			hint = o.byVertex[ownerV]
			a := o.vor.CellAreaIn(ownerV, unit0, unit1)
			if a <= 0 {
				continue
			}
			sum += 1 / a
			n++
		}
		if n > 0 {
			means = append(means, sum/float64(n))
		}
	}
	if len(means) == 0 {
		return float64(len(o.ids)), nil
	}
	sort.Float64s(means)
	return means[len(means)/2], nil
}

// AdaptNMax runs one round of the paper's dynamic-NMax loop: estimate the
// overlay size from routed probes and, if the estimate exceeds the
// provisioned NMax, grow it by growFactor (the paper's "increasing the
// value of Nmax by a certain factor if a threshold is reached"), shrinking
// dmin and re-drawing the long links of objects whose close neighbourhood
// became denser than denseThreshold. It reports the new NMax and how many
// objects were refreshed (0, NMax when no adaptation was needed).
func (o *Overlay) AdaptNMax(probes int, growFactor float64, denseThreshold int, rng *rand.Rand) (newNMax, refreshed int, err error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	est, err := o.estimateSize(probes, rng)
	if err != nil {
		return o.cfg.NMax, 0, err
	}
	if est <= float64(o.cfg.NMax) {
		return o.cfg.NMax, 0, nil
	}
	if growFactor < 1.1 {
		growFactor = 2
	}
	target := int(est * growFactor)
	refreshed = o.setNMax(target, denseThreshold)
	return o.cfg.NMax, refreshed, nil
}
