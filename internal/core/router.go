package core

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"voronet/internal/delaunay"
	"voronet/internal/geom"
)

// Router performs greedy routing over a *frozen* overlay without mutating
// any shared state: it owns its scratch buffers and its own step counter,
// so any number of Routers can run concurrently on different goroutines as
// long as no Insert/Join/Remove runs at the same time. This is how the
// experiment engine uses every core for the paper's route-length
// measurements (100 000 samples per checkpoint in §5).
type Router struct {
	o *Overlay
	// Steps counts Greedyneighbour invocations performed by this router.
	Steps uint64

	nbuf []delaunay.VertexID
	cbuf []ObjectID
}

// NewRouter returns a router bound to the overlay. The router is only
// valid while the overlay is not mutated.
func (o *Overlay) NewRouter() *Router {
	return &Router{o: o}
}

// greedyNeighbor mirrors Overlay.greedyNeighbor using private buffers.
func (r *Router) greedyNeighbor(obj *Object, target geom.Point) *Object {
	r.Steps++
	o := r.o
	var best *Object
	bestD := math.Inf(1)
	consider := func(id ObjectID) {
		if id == obj.ID || id == NoObject {
			return
		}
		c := o.objs[id]
		if d := geom.Dist2(c.Pos, target); d < bestD {
			best, bestD = c, d
		}
	}
	r.nbuf = o.tr.Neighbors(obj.vert, r.nbuf)
	for _, v := range r.nbuf {
		consider(o.byVertex[v])
	}
	if !o.cfg.DisableCloseNeighbours {
		r.cbuf = o.grid.within(obj.Pos, o.dmin, obj.ID, r.cbuf)
		for _, id := range r.cbuf {
			consider(id)
		}
	}
	for _, id := range obj.longNbrs {
		consider(id)
	}
	return best
}

// RouteToObject greedily routes from one object to another and returns the
// hop count, exactly like Overlay.RouteToObject but safe to call from
// multiple goroutines concurrently (on an unchanging overlay).
func (r *Router) RouteToObject(from, to ObjectID) (int, error) {
	cur := r.o.objs[from]
	dst := r.o.objs[to]
	if cur == nil || dst == nil {
		return 0, ErrNotFound
	}
	target := dst.Pos
	hops := 0
	limit := len(r.o.ids) + 16
	for cur.ID != to {
		next := r.greedyNeighbor(cur, target)
		hops++
		if next == nil {
			return hops, fmt.Errorf("voronet: routing stalled at %d (no neighbours)", cur.ID)
		}
		if geom.Dist2(next.Pos, target) >= geom.Dist2(cur.Pos, target) {
			return hops, fmt.Errorf("voronet: greedy routing regressed at %d", cur.ID)
		}
		if hops > limit {
			return hops, fmt.Errorf("voronet: routing exceeded %d hops", limit)
		}
		cur = next
	}
	return hops, nil
}

// RoutePair is one sampled couple for MeasureRoutes.
type RoutePair struct {
	From, To ObjectID
}

// MeasureRoutes routes every pair over `workers` goroutines (0 selects
// GOMAXPROCS) and returns the hop count per pair plus the total
// Greedyneighbour count. The overlay must not be mutated during the call.
func (o *Overlay) MeasureRoutes(pairs []RoutePair, workers int) ([]int, uint64, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(pairs) {
		workers = len(pairs)
	}
	if workers == 0 {
		return nil, 0, nil
	}
	hops := make([]int, len(pairs))
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	var steps uint64
	chunk := (len(pairs) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(pairs) {
			hi = len(pairs)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			r := o.NewRouter()
			for i := lo; i < hi; i++ {
				h, err := r.RouteToObject(pairs[i].From, pairs[i].To)
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
				hops[i] = h
			}
			mu.Lock()
			steps += r.Steps
			mu.Unlock()
		}(lo, hi)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, steps, firstErr
	}
	return hops, steps, nil
}
