package core

import (
	"runtime"
	"sort"
	"sync"

	"voronet/internal/delaunay"
	"voronet/internal/geom"
	"voronet/internal/voronoi"
)

// Router is the overlay's concurrent read engine: it performs greedy
// routing, mutation-free owner resolution and query floods without
// touching any shared overlay state — it owns its scratch buffers, its
// Voronoi scratch view, its flood scratch and its own step counter. Every
// exported Router method takes the overlay's read lock, so any number of
// Routers can run concurrently on different goroutines, including while a
// single writer joins, inserts and removes objects (the writer holds the
// write lock and serialises against all readers).
//
// This is how the experiment engine uses every core for the paper's
// route-length measurements (100 000 samples per checkpoint in §5) and how
// the Store fast path fans Put/Get/Delete across workers.
type Router struct {
	o *Overlay
	// Steps counts Greedyneighbour invocations performed by this router.
	Steps uint64

	// rt feeds the very same walk implementations the serial overlay path
	// runs (Overlay.greedyNeighbor / routeToPoint / routeToObject), just
	// charged to this router's private scratch and Steps counter - the two
	// paths cannot drift apart.
	rt   routeState
	nbuf []delaunay.VertexID
	sc   queryScratch
}

// NewRouter returns a router bound to the overlay.
func (o *Overlay) NewRouter() *Router {
	r := &Router{o: o}
	r.rt = routeState{vor: voronoi.New(o.tr), steps: &r.Steps}
	return r
}

// RouteToObject greedily routes from one object to another and returns the
// hop count, exactly like Overlay.RouteToObject but safe to call from
// multiple goroutines concurrently.
func (r *Router) RouteToObject(from, to ObjectID) (int, error) {
	r.o.mu.RLock()
	defer r.o.mu.RUnlock()
	return r.routeToObject(from, to)
}

func (r *Router) routeToObject(from, to ObjectID) (int, error) {
	return r.o.routeToObject(&r.rt, from, to)
}

// RouteToPoint routes towards an arbitrary point per Algorithm 5's
// framework and resolves the owner with a read-only nearest-site walk from
// the stopping object — the concurrent, mutation-free equivalent of
// Overlay.RouteToPoint.
func (r *Router) RouteToPoint(from ObjectID, target geom.Point) (RouteResult, error) {
	r.o.mu.RLock()
	defer r.o.mu.RUnlock()
	return r.resolve(from, target)
}

// resolve routes from `from` towards target and names Obj(target). Caller
// holds (at least) the overlay read lock.
//
// With an owner cache installed (Overlay.SetRouteCache) the walk first
// consults it: a cached owner strictly closer to the target than the
// origin is jumped to directly — one hop, charged honestly — and the
// greedy walk continues from there. On a cache hit for the true owner
// the whole route collapses to that single hop. The resolved owner
// (re)populates the cache on every successful resolve.
func (r *Router) resolve(from ObjectID, target geom.Point) (RouteResult, error) {
	cur := r.o.objs[from]
	if cur == nil {
		return RouteResult{}, ErrNotFound
	}
	jump := 0
	if c := r.o.cache; c != nil {
		if id, ok := c.lookup(target); ok {
			if hint := r.o.objs[id]; hint != nil &&
				geom.Dist2(hint.Pos, target) < geom.Dist2(cur.Pos, target) {
				cur = hint
				jump = 1
				c.jumps.Add(1)
			}
		}
	}
	hops, err := r.o.routeToPoint(&r.rt, &cur, target)
	hops += jump
	if err != nil {
		return RouteResult{Hops: hops}, err
	}
	var v delaunay.VertexID
	v, r.nbuf = r.o.tr.NearestSiteRO(target, cur.vert, r.nbuf)
	owner := r.o.byVertex[v]
	if c := r.o.cache; c != nil {
		c.insert(target, owner)
	}
	return RouteResult{Stop: cur.ID, Owner: owner, Hops: hops}, nil
}

// AlphaRouteResult reports one α-parallel point resolution
// (RouteToPointAlpha): the embedded RouteResult carries the owner and the
// first-byte hop count — the minimum over all probes, which is what an
// origin racing α speculative copies of a read observes as latency — while
// Probes and TotalHops expose the fan-out's bandwidth cost.
type AlphaRouteResult struct {
	RouteResult
	// Probes is the number of independent walks dispatched: the primary
	// greedy walk plus up to alpha-1 speculative ones.
	Probes int
	// TotalHops sums the hop counts of every probe; TotalHops - Hops is
	// the traffic speculation wasted to win Hops.
	TotalHops int
}

// RouteToPointAlpha is the simulator mirror of the distributed α-parallel
// dispatch (internal/node's Config.Alpha): the primary copy runs the
// ordinary greedy walk from the origin, and a speculative copy jumps
// directly to each of the next alpha-1 strictly-closer neighbours of the
// origin (over vn ∪ cn ∪ LRn, nearest to the target first) and walks on
// from there. The owner is identical across probes — speculation only
// changes which probe's answer arrives first — so the result's Hops is
// min(primary, 1 + probe walk) per probe. alpha <= 1 degenerates to
// RouteToPoint exactly.
func (r *Router) RouteToPointAlpha(from ObjectID, target geom.Point, alpha int) (AlphaRouteResult, error) {
	r.o.mu.RLock()
	defer r.o.mu.RUnlock()
	return r.resolveAlpha(from, target, alpha)
}

// resolveAlpha is RouteToPointAlpha under a held overlay read lock.
func (r *Router) resolveAlpha(from ObjectID, target geom.Point, alpha int) (AlphaRouteResult, error) {
	primary, err := r.resolve(from, target)
	out := AlphaRouteResult{RouteResult: primary, Probes: 1, TotalHops: primary.Hops}
	if err != nil || alpha <= 1 {
		return out, err
	}
	cands := r.alphaCandidates(from, target, alpha)
	// cands[0] is the greedy first hop the primary walk already took;
	// probes cover the runners-up, exactly as Node.dispatchRouted does.
	for i := 1; i < len(cands); i++ {
		pr, perr := r.resolve(cands[i], target)
		if perr != nil {
			// A lost probe never fails the operation — the primary
			// answer already resolved it.
			continue
		}
		hops := pr.Hops + 1 // the jump to the runner-up is itself a hop
		out.Probes++
		out.TotalHops += hops
		if hops < out.Hops {
			out.Hops = hops
			out.Stop = pr.Stop
		}
	}
	return out, nil
}

// alphaCandidates returns up to alpha neighbours of `from` strictly closer
// to target than `from` itself, nearest first, drawn from the same
// candidate set greedyNeighbor scans (Voronoi neighbours, close
// neighbours, long links). Caller holds the overlay read lock.
func (r *Router) alphaCandidates(from ObjectID, target geom.Point, alpha int) []ObjectID {
	origin := r.o.objs[from]
	if origin == nil {
		return nil
	}
	selfD := geom.Dist2(origin.Pos, target)
	type cand struct {
		id ObjectID
		d  float64
	}
	var cands []cand
	seen := map[ObjectID]bool{from: true}
	add := func(id ObjectID, pos geom.Point) {
		if id == NoObject || seen[id] {
			return
		}
		seen[id] = true
		if d := geom.Dist2(pos, target); d < selfD {
			cands = append(cands, cand{id, d})
		}
	}
	r.nbuf = r.o.tr.Neighbors(origin.vert, r.nbuf)
	for _, v := range r.nbuf {
		add(r.o.byVertex[v], r.o.tr.Point(v))
	}
	if !r.o.cfg.DisableCloseNeighbours {
		r.rt.gbuf = r.o.grid.withinEntries(origin.Pos, r.o.dmin, origin.ID, r.rt.gbuf)
		for _, e := range r.rt.gbuf {
			add(e.id, e.pos)
		}
	}
	for _, id := range origin.longNbrs {
		if id != NoObject {
			add(id, r.o.objs[id].Pos)
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].d != cands[j].d {
			return cands[i].d < cands[j].d
		}
		return cands[i].id < cands[j].id
	})
	if len(cands) > alpha {
		cands = cands[:alpha]
	}
	out := make([]ObjectID, len(cands))
	for i, c := range cands {
		out[i] = c.id
	}
	return out
}

// Owner resolves Obj(p) with a read-only nearest-site walk; hint
// accelerates the lookup. The concurrent, allocation-free equivalent of
// Overlay.Owner.
func (r *Router) Owner(p geom.Point, hint ObjectID) (ObjectID, error) {
	r.o.mu.RLock()
	defer r.o.mu.RUnlock()
	var id ObjectID
	id, r.nbuf = r.o.owner(p, hint, r.nbuf)
	if id == NoObject {
		return NoObject, ErrEmpty
	}
	return id, nil
}

// VoronoiNeighbors appends vn(id) to buf using the router's private vertex
// scratch — the concurrent equivalent of Overlay.VoronoiNeighbors.
func (r *Router) VoronoiNeighbors(id ObjectID, buf []ObjectID) ([]ObjectID, error) {
	r.o.mu.RLock()
	defer r.o.mu.RUnlock()
	return r.voronoiNeighbors(id, buf)
}

func (r *Router) voronoiNeighbors(id ObjectID, buf []ObjectID) ([]ObjectID, error) {
	obj := r.o.objs[id]
	if obj == nil {
		return buf[:0], ErrNotFound
	}
	buf = buf[:0]
	r.nbuf = r.o.tr.Neighbors(obj.vert, r.nbuf)
	for _, v := range r.nbuf {
		buf = append(buf, r.o.byVertex[v])
	}
	return buf, nil
}

// RangeQuery is the concurrent equivalent of Overlay.RangeQuery: the very
// same shared implementation, fed by the router's private scratch.
func (r *Router) RangeQuery(from ObjectID, a, b geom.Point) ([]ObjectID, QueryStats, error) {
	r.o.mu.RLock()
	defer r.o.mu.RUnlock()
	return r.o.rangeQuery(&r.rt, &r.sc, from, a, b)
}

// RadiusQuery is the concurrent equivalent of Overlay.RadiusQuery.
func (r *Router) RadiusQuery(from ObjectID, centre geom.Point, rad float64) ([]ObjectID, QueryStats, error) {
	r.o.mu.RLock()
	defer r.o.mu.RUnlock()
	return r.o.radiusQuery(&r.rt, &r.sc, from, centre, rad)
}

// RoutePair is one sampled couple for MeasureRoutes.
type RoutePair struct {
	From, To ObjectID
}

// MeasureRoutes routes every pair over `workers` goroutines (0 selects
// GOMAXPROCS) and returns the hop count per pair plus the total
// Greedyneighbour count. Each worker is an independent Router, so the
// measurement runs concurrently with other readers.
func (o *Overlay) MeasureRoutes(pairs []RoutePair, workers int) ([]int, uint64, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(pairs) {
		workers = len(pairs)
	}
	if workers == 0 {
		return nil, 0, nil
	}
	hops := make([]int, len(pairs))
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	var steps uint64
	chunk := (len(pairs) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(pairs) {
			hi = len(pairs)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			r := o.NewRouter()
			for i := lo; i < hi; i++ {
				h, err := r.RouteToObject(pairs[i].From, pairs[i].To)
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
				hops[i] = h
			}
			mu.Lock()
			steps += r.Steps
			mu.Unlock()
		}(lo, hi)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, steps, firstErr
	}
	return hops, steps, nil
}
