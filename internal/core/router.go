package core

import (
	"runtime"
	"sync"

	"voronet/internal/delaunay"
	"voronet/internal/geom"
	"voronet/internal/voronoi"
)

// Router is the overlay's concurrent read engine: it performs greedy
// routing, mutation-free owner resolution and query floods without
// touching any shared overlay state — it owns its scratch buffers, its
// Voronoi scratch view, its flood scratch and its own step counter. Every
// exported Router method takes the overlay's read lock, so any number of
// Routers can run concurrently on different goroutines, including while a
// single writer joins, inserts and removes objects (the writer holds the
// write lock and serialises against all readers).
//
// This is how the experiment engine uses every core for the paper's
// route-length measurements (100 000 samples per checkpoint in §5) and how
// the Store fast path fans Put/Get/Delete across workers.
type Router struct {
	o *Overlay
	// Steps counts Greedyneighbour invocations performed by this router.
	Steps uint64

	// rt feeds the very same walk implementations the serial overlay path
	// runs (Overlay.greedyNeighbor / routeToPoint / routeToObject), just
	// charged to this router's private scratch and Steps counter - the two
	// paths cannot drift apart.
	rt   routeState
	nbuf []delaunay.VertexID
	sc   queryScratch
}

// NewRouter returns a router bound to the overlay.
func (o *Overlay) NewRouter() *Router {
	r := &Router{o: o}
	r.rt = routeState{vor: voronoi.New(o.tr), steps: &r.Steps}
	return r
}

// RouteToObject greedily routes from one object to another and returns the
// hop count, exactly like Overlay.RouteToObject but safe to call from
// multiple goroutines concurrently.
func (r *Router) RouteToObject(from, to ObjectID) (int, error) {
	r.o.mu.RLock()
	defer r.o.mu.RUnlock()
	return r.routeToObject(from, to)
}

func (r *Router) routeToObject(from, to ObjectID) (int, error) {
	return r.o.routeToObject(&r.rt, from, to)
}

// RouteToPoint routes towards an arbitrary point per Algorithm 5's
// framework and resolves the owner with a read-only nearest-site walk from
// the stopping object — the concurrent, mutation-free equivalent of
// Overlay.RouteToPoint.
func (r *Router) RouteToPoint(from ObjectID, target geom.Point) (RouteResult, error) {
	r.o.mu.RLock()
	defer r.o.mu.RUnlock()
	return r.resolve(from, target)
}

// resolve routes from `from` towards target and names Obj(target). Caller
// holds (at least) the overlay read lock.
func (r *Router) resolve(from ObjectID, target geom.Point) (RouteResult, error) {
	cur := r.o.objs[from]
	if cur == nil {
		return RouteResult{}, ErrNotFound
	}
	hops, err := r.o.routeToPoint(&r.rt, &cur, target)
	if err != nil {
		return RouteResult{Hops: hops}, err
	}
	var v delaunay.VertexID
	v, r.nbuf = r.o.tr.NearestSiteRO(target, cur.vert, r.nbuf)
	return RouteResult{Stop: cur.ID, Owner: r.o.byVertex[v], Hops: hops}, nil
}

// Owner resolves Obj(p) with a read-only nearest-site walk; hint
// accelerates the lookup. The concurrent, allocation-free equivalent of
// Overlay.Owner.
func (r *Router) Owner(p geom.Point, hint ObjectID) (ObjectID, error) {
	r.o.mu.RLock()
	defer r.o.mu.RUnlock()
	var id ObjectID
	id, r.nbuf = r.o.owner(p, hint, r.nbuf)
	if id == NoObject {
		return NoObject, ErrEmpty
	}
	return id, nil
}

// VoronoiNeighbors appends vn(id) to buf using the router's private vertex
// scratch — the concurrent equivalent of Overlay.VoronoiNeighbors.
func (r *Router) VoronoiNeighbors(id ObjectID, buf []ObjectID) ([]ObjectID, error) {
	r.o.mu.RLock()
	defer r.o.mu.RUnlock()
	return r.voronoiNeighbors(id, buf)
}

func (r *Router) voronoiNeighbors(id ObjectID, buf []ObjectID) ([]ObjectID, error) {
	obj := r.o.objs[id]
	if obj == nil {
		return buf[:0], ErrNotFound
	}
	buf = buf[:0]
	r.nbuf = r.o.tr.Neighbors(obj.vert, r.nbuf)
	for _, v := range r.nbuf {
		buf = append(buf, r.o.byVertex[v])
	}
	return buf, nil
}

// RangeQuery is the concurrent equivalent of Overlay.RangeQuery: the very
// same shared implementation, fed by the router's private scratch.
func (r *Router) RangeQuery(from ObjectID, a, b geom.Point) ([]ObjectID, QueryStats, error) {
	r.o.mu.RLock()
	defer r.o.mu.RUnlock()
	return r.o.rangeQuery(&r.rt, &r.sc, from, a, b)
}

// RadiusQuery is the concurrent equivalent of Overlay.RadiusQuery.
func (r *Router) RadiusQuery(from ObjectID, centre geom.Point, rad float64) ([]ObjectID, QueryStats, error) {
	r.o.mu.RLock()
	defer r.o.mu.RUnlock()
	return r.o.radiusQuery(&r.rt, &r.sc, from, centre, rad)
}

// RoutePair is one sampled couple for MeasureRoutes.
type RoutePair struct {
	From, To ObjectID
}

// MeasureRoutes routes every pair over `workers` goroutines (0 selects
// GOMAXPROCS) and returns the hop count per pair plus the total
// Greedyneighbour count. Each worker is an independent Router, so the
// measurement runs concurrently with other readers.
func (o *Overlay) MeasureRoutes(pairs []RoutePair, workers int) ([]int, uint64, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(pairs) {
		workers = len(pairs)
	}
	if workers == 0 {
		return nil, 0, nil
	}
	hops := make([]int, len(pairs))
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	var steps uint64
	chunk := (len(pairs) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(pairs) {
			hi = len(pairs)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			r := o.NewRouter()
			for i := lo; i < hi; i++ {
				h, err := r.RouteToObject(pairs[i].From, pairs[i].To)
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
				hops[i] = h
			}
			mu.Lock()
			steps += r.Steps
			mu.Unlock()
		}(lo, hi)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, steps, firstErr
	}
	return hops, steps, nil
}
