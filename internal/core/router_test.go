package core

import (
	"math/rand"
	"testing"

	"voronet/internal/workload"
)

func TestRouterMatchesSequentialRouting(t *testing.T) {
	o := newTestOverlay(5000)
	rng := rand.New(rand.NewSource(201))
	ids := fill(t, o, &workload.Uniform{Rand: rng}, 1500)

	r := o.NewRouter()
	for q := 0; q < 200; q++ {
		a := ids[rng.Intn(len(ids))]
		b := ids[rng.Intn(len(ids))]
		h1, err1 := o.RouteToObject(a, b)
		h2, err2 := r.RouteToObject(a, b)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("error mismatch: %v vs %v", err1, err2)
		}
		if h1 != h2 {
			t.Fatalf("hop mismatch %d vs %d for %d->%d", h1, h2, a, b)
		}
	}
	if r.Steps == 0 {
		t.Fatal("router did not count steps")
	}
}

func TestMeasureRoutesParallel(t *testing.T) {
	o := newTestOverlay(5000)
	rng := rand.New(rand.NewSource(202))
	ids := fill(t, o, workload.NewPowerLaw(2, rng), 1200)

	pairs := make([]RoutePair, 400)
	for i := range pairs {
		pairs[i] = RoutePair{From: ids[rng.Intn(len(ids))], To: ids[rng.Intn(len(ids))]}
	}
	// Sequential reference.
	seq := make([]int, len(pairs))
	for i, p := range pairs {
		h, err := o.RouteToObject(p.From, p.To)
		if err != nil {
			t.Fatal(err)
		}
		seq[i] = h
	}
	for _, workers := range []int{1, 2, 4, 8} {
		hops, steps, err := o.MeasureRoutes(pairs, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		var total uint64
		for i := range hops {
			if hops[i] != seq[i] {
				t.Fatalf("workers=%d pair %d: %d vs %d", workers, i, hops[i], seq[i])
			}
			total += uint64(hops[i])
		}
		if steps != total {
			t.Fatalf("workers=%d: steps %d != total hops %d", workers, steps, total)
		}
	}
	// Degenerate inputs.
	if _, _, err := o.MeasureRoutes(nil, 4); err != nil {
		t.Fatal(err)
	}
	if _, _, err := o.MeasureRoutes([]RoutePair{{From: 999999, To: ids[0]}}, 2); err == nil {
		t.Fatal("missing object must error")
	}
}
