package core

import (
	"errors"
	"math/rand"
	"testing"

	"voronet/internal/geom"
	"voronet/internal/workload"
)

// TestOwnerResolutionEquivalence is the property behind the mutation-free
// read path: for any overlay and any query point, the owner named by the
// read-only nearest-site walk from the stopping object equals the owner
// named by the paper's fictive insert/remove dance (Algorithm 4), modulo
// genuine ties (a point equidistant from two objects lies on a region
// boundary — either is a correct Obj(target)). Checked across seeds,
// distributions and query points inside and outside the square.
func TestOwnerResolutionEquivalence(t *testing.T) {
	sources := []struct {
		name string
		mk   func(rng *rand.Rand) workload.Source
	}{
		{"uniform", func(rng *rand.Rand) workload.Source { return &workload.Uniform{Rand: rng} }},
		{"alpha2", func(rng *rand.Rand) workload.Source { return workload.NewPowerLaw(2, rng) }},
		{"alpha5", func(rng *rand.Rand) workload.Source { return workload.NewPowerLaw(5, rng) }},
		{"clusters", func(rng *rand.Rand) workload.Source { return workload.NewClusters(3, 0.01, rng) }},
	}
	for _, src := range sources {
		for seed := int64(1); seed <= 3; seed++ {
			rng := rand.New(rand.NewSource(seed * 1000))
			o := New(Config{NMax: 1500, Seed: seed})
			ids := fill(t, o, src.mk(rng), 350)
			for q := 0; q < 120; q++ {
				from := ids[rng.Intn(len(ids))]
				// Every third query leaves the unit square (long-link
				// targets do too; §4.3.2).
				p := geom.Pt(rng.Float64(), rng.Float64())
				if q%3 == 0 {
					p = geom.Pt(rng.Float64()*2-0.5, rng.Float64()*2-0.5)
				}
				checkResolutionAgreement(t, o, from, p, src.name)
			}
			if err := o.CheckInvariants(true); err != nil {
				t.Fatalf("%s seed %d: %v", src.name, seed, err)
			}
		}
	}
}

// TestOwnerResolutionEquivalenceDegenerate covers the overlays where the
// tessellation has dimension < 2: a singleton, two objects, and a
// collinear chain, where regions are halfplanes and slabs.
func TestOwnerResolutionEquivalenceDegenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	layouts := [][]geom.Point{
		{{X: 0.5, Y: 0.5}},
		{{X: 0.25, Y: 0.5}, {X: 0.75, Y: 0.5}},
		{{X: 0.1, Y: 0.5}, {X: 0.5, Y: 0.5}, {X: 0.9, Y: 0.5}},
		{{X: 0.2, Y: 0.2}, {X: 0.5, Y: 0.5}, {X: 0.8, Y: 0.8}}, // diagonal chain
	}
	for li, pts := range layouts {
		o := New(Config{NMax: 100, Seed: int64(li)})
		var ids []ObjectID
		for _, p := range pts {
			id, err := o.Insert(p)
			if err != nil {
				t.Fatal(err)
			}
			ids = append(ids, id)
		}
		for q := 0; q < 60; q++ {
			p := geom.Pt(rng.Float64()*1.6-0.3, rng.Float64()*1.6-0.3)
			checkResolutionAgreement(t, o, ids[rng.Intn(len(ids))], p, "degenerate")
		}
	}
}

// checkResolutionAgreement routes from `from` towards p once, then
// resolves the owner both ways from the same stopping object and compares.
func checkResolutionAgreement(t *testing.T, o *Overlay, from ObjectID, p geom.Point, label string) {
	t.Helper()
	cur := o.objs[from]
	if _, err := o.routeToPoint(&o.rt, &cur, p); err != nil {
		t.Fatalf("%s: route to %v: %v", label, p, err)
	}
	fast := o.resolveByNearest(cur, p)
	fict, err := o.resolveByFictive(cur, p)
	if err != nil {
		t.Fatalf("%s: fictive resolution at %v: %v", label, p, err)
	}
	if fast != fict && !o.equidistantOwners(p, fast, fict) {
		t.Fatalf("%s: owner of %v: fast path %d (d=%g), fictive %d (d=%g)",
			label, p, fast, geom.Dist2(o.objs[fast].Pos, p), fict, geom.Dist2(o.objs[fict].Pos, p))
	}
}

// TestFictiveQueriesFlag pins the public semantics of the fidelity flag:
// with FictiveQueries set HandleQuery accounts fictive insertions exactly
// as Algorithm 4 specifies; without it queries leave the fictive counter
// untouched — and both name the same owners on the same overlay content.
func TestFictiveQueriesFlag(t *testing.T) {
	build := func(fictive bool) (*Overlay, []ObjectID) {
		o := New(Config{NMax: 1000, Seed: 9, FictiveQueries: fictive})
		rng := rand.New(rand.NewSource(10))
		ids := fill(t, o, &workload.Uniform{Rand: rng}, 250)
		return o, ids
	}
	fast, idsFast := build(false)
	fict, idsFict := build(true)
	if len(idsFast) != len(idsFict) {
		t.Fatalf("overlays diverged: %d vs %d objects", len(idsFast), len(idsFict))
	}

	fast.ResetCounters()
	fict.ResetCounters()
	rng := rand.New(rand.NewSource(11))
	const queries = 80
	for q := 0; q < queries; q++ {
		p := geom.Pt(rng.Float64(), rng.Float64())
		from := idsFast[rng.Intn(len(idsFast))]
		rFast, err := fast.HandleQuery(from, p)
		if err != nil {
			t.Fatal(err)
		}
		rFict, err := fict.HandleQuery(from, p)
		if err != nil {
			t.Fatal(err)
		}
		if rFast.Owner != rFict.Owner && !fast.equidistantOwners(p, rFast.Owner, rFict.Owner) {
			t.Fatalf("query %v: fast owner %d, fictive owner %d", p, rFast.Owner, rFict.Owner)
		}
	}
	cFast, cFict := fast.Counters(), fict.Counters()
	if cFast.Queries != queries || cFict.Queries != queries {
		t.Fatalf("query counts: fast %d, fictive %d", cFast.Queries, cFict.Queries)
	}
	if cFast.FictiveInserts != 0 {
		t.Fatalf("fast path performed %d fictive inserts", cFast.FictiveInserts)
	}
	if cFict.FictiveInserts == 0 {
		t.Fatal("fidelity mode performed no fictive inserts")
	}
	// The dance must still leave the overlay unchanged.
	if fict.Len() != len(idsFict) {
		t.Fatalf("fictive queries changed the overlay: %d objects", fict.Len())
	}
	if err := fict.CheckInvariants(true); err != nil {
		t.Fatal(err)
	}
	// Both modes reject unknown introduction objects identically.
	if _, err := fast.HandleQuery(999999, geom.Pt(0.5, 0.5)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("fast path unknown origin: %v", err)
	}
	if _, err := fict.HandleQuery(999999, geom.Pt(0.5, 0.5)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("fictive path unknown origin: %v", err)
	}
}
