package core

import (
	"math/rand"
	"runtime"
	"sync"

	"voronet/internal/delaunay"
	"voronet/internal/geom"
)

// bulkChunk is the fixed work-granule of the parallel long-link phase.
// Chunking by a constant size — not by worker count — is what makes the
// build's RNG streams (and therefore the resulting overlay) identical for
// every worker count: chunk c always draws from the same seeded stream,
// whichever goroutine happens to process it.
const bulkChunk = 512

// bulkLink is one resolved long link awaiting serial registration.
type bulkLink struct {
	tgt   geom.Point
	owner delaunay.VertexID
}

// BulkLoad builds the overlay from a point set in one parallel pass:
// locality-sorted tessellation construction (delaunay.InsertBulkParallel),
// then the per-object link state — long-link target draws and their
// owner resolution — fanned out over `workers` goroutines (0 selects
// GOMAXPROCS). It returns one ObjectID per input point, order-aligned;
// duplicate positions yield NoObject.
//
// The structural outcome matches inserting the points one by one with
// Insert, except that the long-link targets come from per-chunk RNG
// streams derived from Config.Seed rather than the overlay's single
// sequential stream — a different but equally distributed draw. The
// result is bit-identical for every worker count (see bulkChunk).
//
// BulkLoad is a bootstrap operation: it takes the whole overlay — every
// shard lock plus the write lock — for the duration. On a non-empty
// overlay it falls back to serial insertion (the takeover exchange with
// existing objects' links has no batched equivalent).
func (o *Overlay) BulkLoad(points []geom.Point, workers int) ([]ObjectID, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	o.shards.lockSet(allShards)
	defer o.shards.unlockSet(allShards)
	o.mu.Lock()
	defer o.mu.Unlock()

	ids := make([]ObjectID, len(points))
	if len(o.ids) > 0 {
		for i, p := range points {
			id, err := o.insert(p, delaunay.NoVertex)
			if err != nil {
				id = NoObject
			}
			ids[i] = id
		}
		return ids, nil
	}

	// Phase 1: tessellation. Serial hinted insertion over the parallel
	// Hilbert sort; duplicates map to the already-claimed vertex.
	verts := o.tr.InsertBulkParallel(points, workers)

	// Phase 2: serial bookkeeping in input order (maps and the ids slice
	// are single mutable structures; this pass is linear and cheap). The
	// object records live in one arena so a million-object build costs one
	// allocation, not a million.
	arena := make([]Object, 0, len(points))
	for i, p := range points {
		v := verts[i]
		if v == delaunay.NoVertex || o.vertexObject(v) != NoObject {
			ids[i] = NoObject
			continue
		}
		id := o.nextID
		o.nextID++
		arena = append(arena, Object{ID: id, Pos: p, vert: v})
		obj := &arena[len(arena)-1]
		o.objs[id] = obj
		o.setVertexObject(v, id)
		o.idPos[id] = len(o.ids)
		o.ids = append(o.ids, id)
		o.grid.add(p, id)
		ids[i] = id
	}

	if o.cfg.DisableLongLinks || len(o.ids) == 0 {
		return ids, nil
	}

	// Phase 3: long links. Target draws and owner resolution are
	// read-only against the finished tessellation (NearestSiteRO is the
	// same walk concurrent Routers run), so chunks of objects fan out
	// across workers. Since every object's links are resolved against the
	// *final* point set, no takeover exchange is needed: the owner found
	// here is the owner the incremental exchange would have converged to.
	k := o.cfg.LongLinks
	live := o.ids
	nChunks := (len(live) + bulkChunk - 1) / bulkChunk
	links := make([][]bulkLink, nChunks)
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for c := 0; c < nChunks; c++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(c int) {
			defer wg.Done()
			defer func() { <-sem }()
			rng := rand.New(rand.NewSource(o.cfg.Seed + 1 + int64(c)))
			lo := c * bulkChunk
			hi := min(lo+bulkChunk, len(live))
			out := make([]bulkLink, 0, (hi-lo)*k)
			var vbuf []delaunay.VertexID
			for _, id := range live[lo:hi] {
				obj := o.objs[id]
				for j := 0; j < k; j++ {
					tgt := o.chooseLRTWith(rng, obj.Pos)
					var owner delaunay.VertexID
					owner, vbuf = o.tr.NearestSiteRO(tgt, obj.vert, vbuf)
					out = append(out, bulkLink{tgt: tgt, owner: owner})
				}
			}
			links[c] = out
		}(c)
	}
	wg.Wait()

	// Serial registration in chunk order — i.e. insertion order — so the
	// back sets come out in a deterministic order too.
	for c, out := range links {
		lo := c * bulkChunk
		for i, l := range out {
			obj := o.objs[live[lo+i/k]]
			ownerID := o.byVertex[l.owner]
			obj.longTargets = append(obj.longTargets, l.tgt)
			obj.longNbrs = append(obj.longNbrs, ownerID)
			o.objs[ownerID].back = append(o.objs[ownerID].back, BackRef{Obj: obj.ID, Link: i % k})
		}
	}
	return ids, nil
}
