package core

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"voronet/internal/geom"
	"voronet/internal/store"
)

func growUniform(t testing.TB, n int, seed int64) (*Overlay, []ObjectID, *rand.Rand) {
	t.Helper()
	ov := New(Config{NMax: n, Seed: seed})
	rng := rand.New(rand.NewSource(seed + 1))
	var ids []ObjectID
	for len(ids) < n {
		id, err := ov.Insert(geom.Pt(rng.Float64(), rng.Float64()))
		if err != nil {
			continue
		}
		ids = append(ids, id)
	}
	return ov, ids, rng
}

func TestStorePutGetDelete(t *testing.T) {
	ov, ids, rng := growUniform(t, 200, 51)
	st := NewStore(ov, 3)

	key := geom.Pt(0.42, 0.13)
	if _, _, err := st.Get(ids[0], key); !errors.Is(err, store.ErrNotFound) {
		t.Fatalf("missing key: %v", err)
	}
	owner, hops, err := st.Put(ids[3], key, []byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	if hops < 0 {
		t.Fatalf("hops = %d", hops)
	}
	trueOwner, _ := ov.Owner(key, NoObject)
	if owner != trueOwner {
		t.Fatalf("put owner %d, tessellation owner %d", owner, trueOwner)
	}
	for i := 0; i < 10; i++ {
		v, _, err := st.Get(ids[rng.Intn(len(ids))], key)
		if err != nil || !bytes.Equal(v, []byte("hello")) {
			t.Fatalf("get: %q, %v", v, err)
		}
	}
	if _, err := st.Delete(ids[7], key); err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.Get(ids[9], key); !errors.Is(err, store.ErrNotFound) {
		t.Fatalf("get after delete: %v", err)
	}
	if _, err := st.Delete(ids[2], key); !errors.Is(err, store.ErrNotFound) {
		t.Fatalf("double delete: %v", err)
	}
}

func TestStoreReplication(t *testing.T) {
	ov, ids, rng := growUniform(t, 300, 53)
	st := NewStore(ov, 3)
	for i := 0; i < 30; i++ {
		key := geom.Pt(rng.Float64(), rng.Float64())
		owner, _, err := st.Put(ids[rng.Intn(len(ids))], key, []byte{byte(i)})
		if err != nil {
			t.Fatal(err)
		}
		deg, _ := ov.Degree(owner)
		want := 1 + min(3, deg)
		if got := st.Copies(key); got < want {
			t.Fatalf("key %v: %d copies, want >= %d", key, got, want)
		}
	}
}

func TestStoreChurnHandoff(t *testing.T) {
	ov, ids, rng := growUniform(t, 150, 57)
	st := NewStore(ov, 3)

	type kv struct {
		key   geom.Point
		value []byte
	}
	var keys []kv
	for i := 0; i < 120; i++ {
		e := kv{key: geom.Pt(rng.Float64(), rng.Float64()), value: []byte(fmt.Sprintf("v%03d", i))}
		if _, _, err := st.Put(ids[rng.Intn(len(ids))], e.key, e.value); err != nil {
			t.Fatal(err)
		}
		keys = append(keys, e)
	}
	check := func(phase string) {
		live := ids[:0:0]
		for _, id := range ids {
			if ov.Object(id) != nil {
				live = append(live, id)
			}
		}
		for _, e := range keys {
			v, _, err := st.Get(live[rng.Intn(len(live))], e.key)
			if err != nil || !bytes.Equal(v, e.value) {
				t.Fatalf("%s: key %v: %q, %v", phase, e.key, v, err)
			}
		}
	}
	check("pre-churn")

	// Joins: every new region must inherit the records it now owns.
	for i := 0; i < 15; i++ {
		id, err := ov.Insert(geom.Pt(rng.Float64(), rng.Float64()))
		if err != nil {
			continue
		}
		st.OnInsert(id)
		ids = append(ids, id)
	}
	check("post-join")

	// Leaves: records must migrate to the next owner before removal.
	removed := 0
	for removed < 15 {
		id := ids[rng.Intn(len(ids))]
		if ov.Object(id) == nil {
			continue
		}
		st.OnRemove(id)
		if err := ov.Remove(id); err != nil {
			t.Fatal(err)
		}
		removed++
	}
	check("post-leave")
}
