package core

import (
	"math"

	"voronet/internal/geom"
)

// closeIndex is a uniform grid over the plane with cell width dmin, used to
// answer close-neighbour queries (cn(o) = objects within dmin of o) in O(1)
// expected time. It is the simulator's equivalent of the per-object cn sets
// the distributed protocol maintains via Lemma 1; the two are
// property-tested to agree.
//
// Cells are keyed by both coordinates packed into one int64 so lookups hit
// the runtime's fast 64-bit map path — the grid probe runs once per greedy
// hop, which makes it one of the hottest loads in the overlay.
type closeIndex struct {
	cell  float64
	cells map[int64][]gridEntry
}

type gridEntry struct {
	id  ObjectID
	pos geom.Point
}

func newCloseIndex(cell float64) *closeIndex {
	if cell <= 0 {
		cell = 1e-3
	}
	return &closeIndex{cell: cell, cells: make(map[int64][]gridEntry)}
}

func packCell(x, y int32) int64 {
	return int64(x)<<32 | int64(uint32(y))
}

func (c *closeIndex) key(p geom.Point) (int32, int32) {
	return int32(math.Floor(p.X / c.cell)), int32(math.Floor(p.Y / c.cell))
}

func (c *closeIndex) add(p geom.Point, id ObjectID) {
	kx, ky := c.key(p)
	k := packCell(kx, ky)
	c.cells[k] = append(c.cells[k], gridEntry{id: id, pos: p})
}

func (c *closeIndex) remove(p geom.Point, id ObjectID) {
	kx, ky := c.key(p)
	k := packCell(kx, ky)
	s := c.cells[k]
	for i := range s {
		if s[i].id == id {
			s[i] = s[len(s)-1]
			s = s[:len(s)-1]
			break
		}
	}
	if len(s) == 0 {
		delete(c.cells, k)
	} else {
		c.cells[k] = s
	}
}

// withinEntries appends to buf the (id, position) entries of all objects
// at distance <= r from p, excluding exclude. The overlay always queries
// with r = dmin = the cell width, so a 3×3 cell neighbourhood suffices.
// This is the one copy of the grid scan — it runs once per greedy hop, so
// the other forms are projections of it rather than separate loops.
func (c *closeIndex) withinEntries(p geom.Point, r float64, exclude ObjectID, buf []gridEntry) []gridEntry {
	buf = buf[:0]
	kx, ky := c.key(p)
	r2 := r * r
	for dx := int32(-1); dx <= 1; dx++ {
		for dy := int32(-1); dy <= 1; dy++ {
			for _, e := range c.cells[packCell(kx+dx, ky+dy)] {
				if e.id == exclude {
					continue
				}
				if geom.Dist2(p, e.pos) <= r2 {
					buf = append(buf, e)
				}
			}
		}
	}
	return buf
}

// within is withinEntries projected to IDs. The entry scratch is local:
// within serves concurrent read-locked callers (CloseNeighbors), so it
// must not share state through the index.
func (c *closeIndex) within(p geom.Point, r float64, exclude ObjectID, buf []ObjectID) []ObjectID {
	entries := c.withinEntries(p, r, exclude, nil)
	buf = buf[:0]
	for _, e := range entries {
		buf = append(buf, e.id)
	}
	return buf
}

// count returns the number of objects within r of p, excluding exclude,
// reusing buf for the scan (returned grown for the next call).
func (c *closeIndex) count(p geom.Point, r float64, exclude ObjectID, buf []gridEntry) (int, []gridEntry) {
	buf = c.withinEntries(p, r, exclude, buf)
	return len(buf), buf
}
