package core

import (
	"math"

	"voronet/internal/geom"
)

// closeIndex is a uniform grid over the plane with cell width dmin, used to
// answer close-neighbour queries (cn(o) = objects within dmin of o) in O(1)
// expected time. It is the simulator's equivalent of the per-object cn sets
// the distributed protocol maintains via Lemma 1; the two are
// property-tested to agree.
type closeIndex struct {
	cell  float64
	cells map[[2]int32][]gridEntry
}

type gridEntry struct {
	id  ObjectID
	pos geom.Point
}

func newCloseIndex(cell float64) *closeIndex {
	if cell <= 0 {
		cell = 1e-3
	}
	return &closeIndex{cell: cell, cells: make(map[[2]int32][]gridEntry)}
}

func (c *closeIndex) key(p geom.Point) [2]int32 {
	return [2]int32{int32(math.Floor(p.X / c.cell)), int32(math.Floor(p.Y / c.cell))}
}

func (c *closeIndex) add(p geom.Point, id ObjectID) {
	k := c.key(p)
	c.cells[k] = append(c.cells[k], gridEntry{id: id, pos: p})
}

func (c *closeIndex) remove(p geom.Point, id ObjectID) {
	k := c.key(p)
	s := c.cells[k]
	for i := range s {
		if s[i].id == id {
			s[i] = s[len(s)-1]
			s = s[:len(s)-1]
			break
		}
	}
	if len(s) == 0 {
		delete(c.cells, k)
	} else {
		c.cells[k] = s
	}
}

// within appends to buf the IDs of all objects at distance <= r from p,
// excluding exclude. The overlay always queries with r = dmin = the cell
// width, so a 3×3 cell neighbourhood suffices.
func (c *closeIndex) within(p geom.Point, r float64, exclude ObjectID, buf []ObjectID) []ObjectID {
	buf = buf[:0]
	k := c.key(p)
	r2 := r * r
	for dx := int32(-1); dx <= 1; dx++ {
		for dy := int32(-1); dy <= 1; dy++ {
			for _, e := range c.cells[[2]int32{k[0] + dx, k[1] + dy}] {
				if e.id == exclude {
					continue
				}
				if geom.Dist2(p, e.pos) <= r2 {
					buf = append(buf, e.id)
				}
			}
		}
	}
	return buf
}

// count returns the number of objects within r of p, excluding exclude.
func (c *closeIndex) count(p geom.Point, r float64, exclude ObjectID) int {
	k := c.key(p)
	r2 := r * r
	n := 0
	for dx := int32(-1); dx <= 1; dx++ {
		for dy := int32(-1); dy <= 1; dy++ {
			for _, e := range c.cells[[2]int32{k[0] + dx, k[1] + dy}] {
				if e.id != exclude && geom.Dist2(p, e.pos) <= r2 {
					n++
				}
			}
		}
	}
	return n
}
