package core

import (
	"math/rand"
	"testing"

	"voronet/internal/geom"
	"voronet/internal/workload"
)

// TestRouteCacheCollapsesHotRoutes: with the owner cache installed, a
// repeated resolution of the same hot target from a far origin collapses
// to a single hop (the jump to the cached owner), while the resolved
// owner stays identical to the uncached walk's.
func TestRouteCacheCollapsesHotRoutes(t *testing.T) {
	o := newTestOverlay(5000)
	rng := rand.New(rand.NewSource(301))
	ids := fill(t, o, &workload.Uniform{Rand: rng}, 1200)

	r := o.NewRouter()
	target := geom.Pt(0.875, 0.125)
	from := ids[0]
	cold, err := r.RouteToPoint(from, target)
	if err != nil {
		t.Fatal(err)
	}

	o.SetRouteCache(128)
	warmup, err := r.RouteToPoint(from, target)
	if err != nil {
		t.Fatal(err)
	}
	if warmup.Owner != cold.Owner {
		t.Fatalf("cached-mode owner %d != uncached owner %d", warmup.Owner, cold.Owner)
	}
	hot, err := r.RouteToPoint(from, target)
	if err != nil {
		t.Fatal(err)
	}
	if hot.Owner != cold.Owner {
		t.Fatalf("hot owner %d != cold owner %d", hot.Owner, cold.Owner)
	}
	if cold.Hops > 1 && hot.Hops != 1 {
		t.Fatalf("hot resolve took %d hops, want 1 (cold took %d)", hot.Hops, cold.Hops)
	}
	st := o.RouteCacheStats()
	if st.Hits == 0 || st.Jumps == 0 {
		t.Fatalf("stats = %+v, want hits and jumps", st)
	}
	if st.Entries == 0 {
		t.Fatalf("stats = %+v, want resident entries", st)
	}
}

// TestRouteCacheSurvivesOwnerRemoval: removing the cached owner must
// invalidate its entries; resolution afterwards still names the correct
// new owner whether or not the cell was cached.
func TestRouteCacheSurvivesOwnerRemoval(t *testing.T) {
	o := newTestOverlay(5000)
	rng := rand.New(rand.NewSource(302))
	ids := fill(t, o, &workload.Uniform{Rand: rng}, 600)
	o.SetRouteCache(64)

	r := o.NewRouter()
	target := geom.Pt(0.3, 0.7)
	from := ids[len(ids)-1]
	first, err := r.RouteToPoint(from, target)
	if err != nil {
		t.Fatal(err)
	}
	if err := o.Remove(first.Owner); err != nil {
		t.Fatal(err)
	}
	after, err := r.RouteToPoint(from, target)
	if err != nil {
		t.Fatal(err)
	}
	if after.Owner == first.Owner {
		t.Fatalf("resolve still names removed object %d", first.Owner)
	}
	want, err := o.Owner(target, NoObject)
	if err != nil {
		t.Fatal(err)
	}
	if after.Owner != want {
		t.Fatalf("post-removal owner %d, reference says %d", after.Owner, want)
	}
}

// TestRouteCacheStoreAgreement: the store with the cache enabled must
// return exactly the data an uncached store does under a Zipf-skewed
// workload with churn mixed in — the cache may only change hop counts.
func TestRouteCacheStoreAgreement(t *testing.T) {
	build := func(cacheSize int) (*Store, []ObjectID, *rand.Rand) {
		o := newTestOverlay(5000)
		rng := rand.New(rand.NewSource(303))
		ids := fill(t, o, &workload.Uniform{Rand: rng}, 400)
		s := NewStore(o, 0)
		if cacheSize > 0 {
			s.SetRouteCache(cacheSize)
		}
		return s, ids, rng
	}
	run := func(s *Store, ids []ObjectID, rng *rand.Rand) map[geom.Point]string {
		keys := make([]geom.Point, 24)
		for i := range keys {
			keys[i] = geom.Pt(rng.Float64(), rng.Float64())
		}
		out := make(map[geom.Point]string)
		for op := 0; op < 400; op++ {
			k := keys[rng.Intn(len(keys))]
			from := ids[rng.Intn(len(ids))]
			switch rng.Intn(3) {
			case 0, 1:
				val := []byte{byte(op), byte(op >> 8)}
				if _, _, err := s.Put(from, k, val); err != nil {
					t.Fatal(err)
				}
				out[k] = string(val)
			default:
				v, _, err := s.Get(from, k)
				if err == nil {
					out[k] = string(v)
				}
			}
		}
		return out
	}
	sc, idsC, rngC := build(128)
	su, idsU, rngU := build(0)
	got := run(sc, idsC, rngC)
	want := run(su, idsU, rngU)
	if len(got) != len(want) {
		t.Fatalf("cached run tracked %d keys, uncached %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("key %v: cached=%q uncached=%q", k, got[k], v)
		}
	}
	if st := sc.RouteCacheStats(); st.Hits == 0 {
		t.Fatalf("cached store recorded no hits: %+v", st)
	}
}
