package core

import (
	"math/rand"
	"testing"

	"voronet/internal/geom"
)

func bulkTestPoints(n int, seed int64) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Pt(rng.Float64(), rng.Float64())
	}
	return pts
}

func TestBulkLoadInvariants(t *testing.T) {
	pts := bulkTestPoints(3000, 11)
	// Plant duplicates: they must come back as NoObject, once each.
	pts[100] = pts[50]
	pts[2999] = pts[0]
	o := New(Config{NMax: 10000, Seed: 3, LongLinks: 2})
	ids, err := o.BulkLoad(pts, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != len(pts) {
		t.Fatalf("got %d ids for %d points", len(ids), len(pts))
	}
	if ids[100] != NoObject || ids[2999] != NoObject {
		t.Fatalf("duplicates not rejected: ids[100]=%d ids[2999]=%d", ids[100], ids[2999])
	}
	if o.Len() != len(pts)-2 {
		t.Fatalf("Len = %d, want %d", o.Len(), len(pts)-2)
	}
	for i, id := range ids {
		if i == 100 || i == 2999 {
			continue
		}
		if id == NoObject {
			t.Fatalf("point %d unexpectedly rejected", i)
		}
		if pos, err := o.Position(id); err != nil || pos != pts[i] {
			t.Fatalf("object %d at %v, want %v (err %v)", id, pos, pts[i], err)
		}
	}
	if err := o.CheckInvariants(true); err != nil {
		t.Fatalf("invariants after bulk load: %v", err)
	}
}

func TestBulkLoadWorkerCountInvariant(t *testing.T) {
	pts := bulkTestPoints(4000, 17)
	build := func(workers int) *Overlay {
		o := New(Config{NMax: 10000, Seed: 5, LongLinks: 1})
		if _, err := o.BulkLoad(pts, workers); err != nil {
			t.Fatal(err)
		}
		return o
	}
	ref := build(1)
	for _, w := range []int{2, 4, 8} {
		o := build(w)
		if o.Len() != ref.Len() {
			t.Fatalf("workers=%d: Len %d != %d", w, o.Len(), ref.Len())
		}
		for _, id := range ref.ids {
			a, b := ref.objs[id], o.objs[id]
			if b == nil || a.Pos != b.Pos {
				t.Fatalf("workers=%d: object %d differs", w, id)
			}
			if len(a.longTargets) != len(b.longTargets) {
				t.Fatalf("workers=%d: object %d link count differs", w, id)
			}
			for j := range a.longTargets {
				if a.longTargets[j] != b.longTargets[j] || a.longNbrs[j] != b.longNbrs[j] {
					t.Fatalf("workers=%d: object %d link %d differs: (%v,%d) vs (%v,%d)",
						w, id, j, a.longTargets[j], a.longNbrs[j], b.longTargets[j], b.longNbrs[j])
				}
			}
		}
	}
}

func TestBulkLoadNonEmptyFallback(t *testing.T) {
	o := New(Config{NMax: 10000, Seed: 9})
	if _, err := o.Insert(geom.Pt(0.5, 0.5)); err != nil {
		t.Fatal(err)
	}
	pts := bulkTestPoints(500, 23)
	ids, err := o.BulkLoad(pts, 4)
	if err != nil {
		t.Fatal(err)
	}
	if o.Len() != 501 {
		t.Fatalf("Len = %d, want 501", o.Len())
	}
	for i, id := range ids {
		if id == NoObject {
			t.Fatalf("point %d rejected on fallback path", i)
		}
	}
	if err := o.CheckInvariants(true); err != nil {
		t.Fatalf("invariants after fallback bulk load: %v", err)
	}
}
