package core

import (
	"math"
	"sort"
	"sync"

	"voronet/internal/geom"
)

// The region-sharded surgery engine partitions the attribute space into a
// fixed grid of shardAxis × shardAxis lock cells (the same quantisation
// idea as the cn grid in closeidx.go, but over the whole unit square so
// the shard of a point never changes). Surgery — join, insert, leave —
// locks the shards covering its conflict set before committing, so
// operations in distant regions proceed concurrently while operations in
// touching regions serialise against each other. See surgery.go for the
// protocol and DESIGN.md ("Sharded locking discipline") for the
// deadlock-freedom and conflict-coverage arguments.
const shardAxis = 16

// numShards is the total shard count (256: small enough that locking every
// shard — the bounded fallback — costs microseconds, large enough that two
// uniformly random surgeries rarely collide).
const numShards = shardAxis * shardAxis

// shardedMinObjects is the population below which surgery falls back to
// the lock-everything path: with a handful of objects every conflict set
// spans most of the square anyway, and the degenerate (dimension < 2)
// tessellation has no cavities to estimate.
const shardedMinObjects = 64

// shardMap is the grid of shard locks. Lock ordering discipline: shard
// locks are always acquired in ascending index order, and the overlay's
// global mu is only ever acquired while holding shard locks, never the
// reverse — one global acquisition order [shard 0 < … < shard 255 < mu],
// hence no cycles, hence no deadlock.
type shardMap struct {
	locks [numShards]sync.RWMutex
}

// shardOf maps a point to its shard index. Positions outside the unit
// square (long-link targets may overshoot, §4.3.2) clamp to the border
// cells, so every point has a shard.
func shardOf(p geom.Point) int {
	x := int(math.Floor(p.X * shardAxis))
	y := int(math.Floor(p.Y * shardAxis))
	if x < 0 {
		x = 0
	} else if x >= shardAxis {
		x = shardAxis - 1
	}
	if y < 0 {
		y = 0
	} else if y >= shardAxis {
		y = shardAxis - 1
	}
	return y*shardAxis + x
}

// lockSet write-locks the given ascending, deduplicated shard indices.
func (m *shardMap) lockSet(set []int) {
	for _, i := range set {
		m.locks[i].Lock()
	}
}

// unlockSet releases a set taken by lockSet (reverse order, by symmetry).
func (m *shardMap) unlockSet(set []int) {
	for i := len(set) - 1; i >= 0; i-- {
		m.locks[set[i]].Unlock()
	}
}

// rlock / runlock are the read-side used by store operations: a Put/Get/
// Delete read-locks the shard of its key before taking the overlay read
// lock, so it serialises against surgery whose conflict region covers the
// key — including the window between a commit and its store handoff —
// while surgery elsewhere leaves it untouched.
func (m *shardMap) rlock(i int)   { m.locks[i].RLock() }
func (m *shardMap) runlock(i int) { m.locks[i].RUnlock() }

// allShards is the full ascending index set, the lock-everything fallback.
var allShards = func() []int {
	s := make([]int, numShards)
	for i := range s {
		s[i] = i
	}
	return s
}()

// shardSet accumulates a conflict set as it is discovered and produces the
// ascending deduplicated index list lockSet wants. It lives in the
// per-surgery scratch (surgeon) and is reused across operations.
type shardSet struct {
	member [numShards]bool
	idx    []int
}

func (s *shardSet) reset() {
	for _, i := range s.idx {
		s.member[i] = false
	}
	s.idx = s.idx[:0]
}

func (s *shardSet) add(i int) {
	if !s.member[i] {
		s.member[i] = true
		s.idx = append(s.idx, i)
	}
}

func (s *shardSet) addPoint(p geom.Point) { s.add(shardOf(p)) }

// contains reports membership without touching the index list.
func (s *shardSet) contains(i int) bool { return s.member[i] }

// sorted sorts the accumulated indices in place (ascending) and returns
// them; required before lockSet.
func (s *shardSet) sorted() []int {
	sort.Ints(s.idx)
	return s.idx
}

// coveredBy reports whether every member of s is also a member of held.
func (s *shardSet) coveredBy(held *shardSet) bool {
	for _, i := range s.idx {
		if !held.member[i] {
			return false
		}
	}
	return true
}

// absorb merges other's members into s (used to widen a retry).
func (s *shardSet) absorb(other *shardSet) {
	for _, i := range other.idx {
		s.add(i)
	}
}
