package core

import (
	"math/rand"
	"testing"

	"voronet/internal/geom"
	"voronet/internal/workload"
)

// TestRouteToPointAlphaMatchesSerial: the α-parallel resolve must name the
// same owner as the serial walk for every target (the tessellation is the
// same for every probe), report first-byte hops no worse than the serial
// walk, and degrade to exactly the serial result at alpha <= 1.
func TestRouteToPointAlphaMatchesSerial(t *testing.T) {
	o := newTestOverlay(3000)
	rng := rand.New(rand.NewSource(31))
	ids := fill(t, o, &workload.Uniform{Rand: rng}, 800)
	r := o.NewRouter()

	for q := 0; q < 300; q++ {
		from := ids[rng.Intn(len(ids))]
		target := geom.Pt(rng.Float64(), rng.Float64())
		serial, err := r.RouteToPoint(from, target)
		if err != nil {
			t.Fatal(err)
		}
		for _, alpha := range []int{0, 1, 2, 3} {
			ar, err := r.RouteToPointAlpha(from, target, alpha)
			if err != nil {
				t.Fatal(err)
			}
			if ar.Owner != serial.Owner {
				t.Fatalf("alpha=%d owner %d != serial %d (from %d to %v)",
					alpha, ar.Owner, serial.Owner, from, target)
			}
			if alpha <= 1 {
				if ar.RouteResult != serial || ar.Probes != 1 || ar.TotalHops != serial.Hops {
					t.Fatalf("alpha=%d should be the serial walk: %+v vs %+v", alpha, ar, serial)
				}
				continue
			}
			if ar.Hops > serial.Hops {
				t.Fatalf("alpha=%d first-byte hops %d worse than serial %d", alpha, ar.Hops, serial.Hops)
			}
			if ar.Probes < 1 || ar.Probes > alpha {
				t.Fatalf("alpha=%d dispatched %d probes", alpha, ar.Probes)
			}
			if ar.TotalHops < ar.Hops {
				t.Fatalf("alpha=%d total hops %d below winning hops %d", alpha, ar.TotalHops, ar.Hops)
			}
		}
	}
}

// TestStoreAlphaGetIdentical: a store wired for α-parallel reads serves
// exactly the values the serial store serves.
func TestStoreAlphaGetIdentical(t *testing.T) {
	o := newTestOverlay(2000)
	rng := rand.New(rand.NewSource(32))
	ids := fill(t, o, &workload.Uniform{Rand: rng}, 400)

	serial := NewStore(o, 1)
	parallel := NewStore(o, 1)
	parallel.SetAlpha(3)

	keys := make([]geom.Point, 60)
	for i := range keys {
		keys[i] = geom.Pt(rng.Float64(), rng.Float64())
		val := []byte{byte(i)}
		if _, _, err := serial.Put(ids[rng.Intn(len(ids))], keys[i], val); err != nil {
			t.Fatal(err)
		}
		if _, _, err := parallel.Put(ids[rng.Intn(len(ids))], keys[i], val); err != nil {
			t.Fatal(err)
		}
	}
	for i, k := range keys {
		from := ids[rng.Intn(len(ids))]
		sv, sh, serr := serial.Get(from, k)
		pv, ph, perr := parallel.Get(from, k)
		if (serr == nil) != (perr == nil) {
			t.Fatalf("key %d error mismatch: %v vs %v", i, serr, perr)
		}
		if serr != nil {
			continue
		}
		if string(sv) != string(pv) {
			t.Fatalf("key %d value mismatch: %q vs %q", i, sv, pv)
		}
		if ph > sh {
			t.Fatalf("key %d alpha hops %d worse than serial %d", i, ph, sh)
		}
	}
}
