package core

import (
	"fmt"

	"voronet/internal/delaunay"
	"voronet/internal/geom"
)

// CheckInvariants validates the complete overlay state. With deep=true it
// additionally verifies the long-link ownership invariant against the
// ground-truth tessellation (O(n) nearest-site queries). Intended for
// tests; returns the first violation.
//
// Invariants:
//
//  1. the underlying triangulation is a valid Delaunay triangulation;
//  2. object/vertex/id bookkeeping is bijective and consistent;
//  3. every object has exactly Config.LongLinks long links (unless
//     disabled), each registered in its holder's BLRn set;
//  4. every BLRn entry points back to an object whose corresponding long
//     link names the holder;
//  5. deep: LRn_j(w) is exactly the object owning the region containing
//     LRt_j(w) — the paper's long-link placement invariant ("the object in
//     charge of the target of the long range link is always the closest
//     from the target point", §3.3);
//  6. the close-neighbour index agrees with Lemma 1's local computation.
func (o *Overlay) CheckInvariants(deep bool) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	if err := o.tr.Validate(); err != nil {
		return fmt.Errorf("triangulation: %w", err)
	}
	liveVerts := 0
	for _, id := range o.byVertex {
		if id != NoObject {
			liveVerts++
		}
	}
	if len(o.objs) != len(o.ids) || len(o.objs) != liveVerts || len(o.objs) != len(o.idPos) {
		return fmt.Errorf("bookkeeping sizes diverge: objs=%d ids=%d byVertex=%d idPos=%d",
			len(o.objs), len(o.ids), liveVerts, len(o.idPos))
	}
	if o.tr.NumSites() != len(o.objs) {
		return fmt.Errorf("triangulation has %d sites for %d objects", o.tr.NumSites(), len(o.objs))
	}
	for i, id := range o.ids {
		obj := o.objs[id]
		if obj == nil {
			return fmt.Errorf("ids[%d]=%d has no object", i, id)
		}
		if o.idPos[id] != i {
			return fmt.Errorf("idPos[%d]=%d, want %d", id, o.idPos[id], i)
		}
		if o.byVertex[obj.vert] != id {
			return fmt.Errorf("byVertex[%d]=%d, want %d", obj.vert, o.byVertex[obj.vert], id)
		}
		if !o.tr.Alive(obj.vert) {
			return fmt.Errorf("object %d references dead vertex %d", id, obj.vert)
		}
		if o.tr.Point(obj.vert) != obj.Pos {
			return fmt.Errorf("object %d position diverges from its site", id)
		}
	}

	// Long links and BLRn cross-consistency.
	for _, id := range o.ids {
		obj := o.objs[id]
		if !o.cfg.DisableLongLinks && len(obj.longNbrs) != o.cfg.LongLinks {
			return fmt.Errorf("object %d has %d long links, want %d", id, len(obj.longNbrs), o.cfg.LongLinks)
		}
		for j, nid := range obj.longNbrs {
			if nid == NoObject {
				continue // legitimately orphaned (overlay emptied past it)
			}
			holder := o.objs[nid]
			if holder == nil {
				return fmt.Errorf("object %d long link %d names dead object %d", id, j, nid)
			}
			found := false
			for _, ref := range holder.back {
				if ref.Obj == id && ref.Link == j {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("object %d long link %d not registered in BLRn(%d)", id, j, nid)
			}
		}
		for _, ref := range obj.back {
			w := o.objs[ref.Obj]
			if w == nil {
				return fmt.Errorf("BLRn(%d) references dead object %d", id, ref.Obj)
			}
			if ref.Link >= len(w.longNbrs) || w.longNbrs[ref.Link] != id {
				return fmt.Errorf("BLRn(%d) entry (%d,%d) not mirrored", id, ref.Obj, ref.Link)
			}
		}
	}

	if deep {
		for _, id := range o.ids {
			obj := o.objs[id]
			for j, tgt := range obj.longTargets {
				ownerV := o.tr.NearestSite(tgt, obj.vert)
				want := o.byVertex[ownerV]
				got := obj.longNbrs[j]
				if got != want && !o.equidistantOwners(tgt, got, want) {
					return fmt.Errorf("object %d long link %d points to %d, owner is %d", id, j, got, want)
				}
			}
		}
		// Lemma 1 agreement on a sample of objects (all of them when small).
		for i, id := range o.ids {
			if len(o.ids) > 500 && i%97 != 0 {
				continue
			}
			if err := o.checkLemma1(id); err != nil {
				return err
			}
		}
	}
	return nil
}

// equidistantOwners reports whether a and b are both at minimal distance
// from tgt (ties on region boundaries make the owner ambiguous; either
// choice is a correct "closest object").
func (o *Overlay) equidistantOwners(tgt geom.Point, a, b ObjectID) bool {
	oa, ob := o.objs[a], o.objs[b]
	if oa == nil || ob == nil {
		return false
	}
	return geom.Dist2(oa.Pos, tgt) == geom.Dist2(ob.Pos, tgt)
}

// CloseNeighborsLemma1 computes cn(id) the way the distributed protocol
// does after Lemma 1: every close neighbour of a freshly inserted object is
// either one of its Voronoi neighbours or a close neighbour of one of them.
// The simulator's grid index must agree exactly; tests enforce this.
func (o *Overlay) CloseNeighborsLemma1(id ObjectID) ([]ObjectID, error) {
	o.mu.RLock()
	defer o.mu.RUnlock()
	return o.closeNeighborsLemma1(id)
}

func (o *Overlay) closeNeighborsLemma1(id ObjectID) ([]ObjectID, error) {
	obj := o.objs[id]
	if obj == nil {
		return nil, ErrNotFound
	}
	seen := map[ObjectID]bool{id: true}
	var out []ObjectID
	consider := func(cid ObjectID) {
		if seen[cid] {
			return
		}
		seen[cid] = true
		if geom.Dist(o.objs[cid].Pos, obj.Pos) <= o.dmin {
			out = append(out, cid)
		}
	}
	var vbuf []delaunay.VertexID
	vbuf = o.tr.Neighbors(obj.vert, vbuf)
	var cbuf []ObjectID
	for _, v := range vbuf {
		nid := o.byVertex[v]
		consider(nid)
		// Close neighbours of the Voronoi neighbour.
		cbuf = o.grid.within(o.objs[nid].Pos, o.dmin, nid, cbuf)
		for _, cid := range cbuf {
			consider(cid)
		}
	}
	return out, nil
}

func (o *Overlay) checkLemma1(id ObjectID) error {
	viaLemma, err := o.closeNeighborsLemma1(id)
	if err != nil {
		return err
	}
	direct, err := o.closeNeighbors(id, nil)
	if err != nil {
		return err
	}
	if len(viaLemma) != len(direct) {
		return fmt.Errorf("Lemma 1 computation for %d yields %d close neighbours, grid yields %d",
			id, len(viaLemma), len(direct))
	}
	set := make(map[ObjectID]bool, len(direct))
	for _, d := range direct {
		set[d] = true
	}
	for _, l := range viaLemma {
		if !set[l] {
			return fmt.Errorf("Lemma 1 found %d not in grid answer for %d", l, id)
		}
	}
	return nil
}
