package core

import (
	"container/list"
	"math"
	"sync"
	"sync/atomic"

	"voronet/internal/geom"
)

// ownerCache is the simulator mirror of the distributed hot-region owner
// cache (internal/node's Config.RouteCacheSize): a small shared LRU
// mapping a quantised attribute-space cell to the object last resolved
// as the owner of a key in that cell. Routers consult it at the start of
// resolve and, when the cached object is strictly closer to the target
// than the origin, jump straight to it (one hop) before the greedy walk
// continues — the in-process equivalent of feeding the cached owner into
// the origin's next-hop scan. The strictly-closer guard is the whole
// safety argument: a stale entry (owner departed, region shrank, ID slot
// reused) either fails the guard or merely starts the walk somewhere
// closer, so it can cost a wasted comparison but never misroute.
//
// The cache is shared by every Router of the overlay (the pooled store
// clients included) behind its own leaf mutex; it takes no overlay lock,
// so it is safe to touch from under the overlay's read lock on every
// resolve. Entries naming a removed object are dropped eagerly by
// Overlay.remove; everything else ages out by LRU.
type ownerCache struct {
	mu      sync.Mutex
	cap     int
	grid    float64
	entries map[uint64]*list.Element
	lru     *list.List // front = most recently used

	hits, misses, jumps atomic.Uint64
}

// ownerCacheEntry is one cached cell→owner binding.
type ownerCacheEntry struct {
	cell  uint64
	owner ObjectID
}

// defaultOwnerCacheGrid matches the node cache's quantisation floor:
// cells never get coarser than 1/256 of the unit square even for large
// DMin, so distinct hot regions rarely share a cell.
const defaultOwnerCacheGrid = 1.0 / 256

func newOwnerCache(capacity int, dmin float64) *ownerCache {
	grid := dmin
	if grid < defaultOwnerCacheGrid || math.IsNaN(grid) {
		grid = defaultOwnerCacheGrid
	}
	return &ownerCache{
		cap:     capacity,
		grid:    grid,
		entries: make(map[uint64]*list.Element, capacity),
		lru:     list.New(),
	}
}

// cellOf quantises p to its grid cell, packed into one map key. The
// int32 fold keeps any finite point addressable (long-link targets
// overshoot the unit square).
func (c *ownerCache) cellOf(p geom.Point) uint64 {
	cx := uint64(uint32(int32(math.Floor(p.X / c.grid))))
	cy := uint64(uint32(int32(math.Floor(p.Y / c.grid))))
	return cx<<32 | cy
}

// lookup returns the cached owner for p's cell, refreshing its recency.
func (c *ownerCache) lookup(p geom.Point) (ObjectID, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[c.cellOf(p)]
	if !ok {
		c.misses.Add(1)
		return NoObject, false
	}
	c.hits.Add(1)
	c.lru.MoveToFront(el)
	return el.Value.(*ownerCacheEntry).owner, true
}

// insert records owner as the resolved owner for p's cell, evicting the
// least recently used entry at capacity.
func (c *ownerCache) insert(p geom.Point, owner ObjectID) {
	if owner == NoObject {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	cell := c.cellOf(p)
	if el, ok := c.entries[cell]; ok {
		el.Value.(*ownerCacheEntry).owner = owner
		c.lru.MoveToFront(el)
		return
	}
	for c.lru.Len() >= c.cap && c.lru.Len() > 0 {
		oldest := c.lru.Back()
		delete(c.entries, oldest.Value.(*ownerCacheEntry).cell)
		c.lru.Remove(oldest)
	}
	c.entries[cell] = c.lru.PushFront(&ownerCacheEntry{cell: cell, owner: owner})
}

// invalidateOwner drops every entry naming id and returns how many it
// removed — called when the object leaves the overlay, so a dead owner
// does not linger even as a jump hint.
func (c *ownerCache) invalidateOwner(id ObjectID) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	dropped := 0
	for cell, el := range c.entries {
		if el.Value.(*ownerCacheEntry).owner == id {
			delete(c.entries, cell)
			c.lru.Remove(el)
			dropped++
		}
	}
	return dropped
}

// RouteCacheStats snapshots the owner cache's counters.
type RouteCacheStats struct {
	// Hits and Misses count lookup outcomes; Jumps counts the hits whose
	// cached owner actually won the strictly-closer guard and shortcut
	// the walk (a hit on a stale or farther owner is not a jump).
	Hits, Misses, Jumps uint64
	// Entries is the current resident entry count.
	Entries int
}

// SetRouteCache installs a shared hot-region owner cache with the given
// capacity on the overlay (capacity <= 0 removes it). Every Router —
// including the Store's pooled clients — consults it in resolve. Not
// safe to call concurrently with routing; configure before driving load.
func (o *Overlay) SetRouteCache(capacity int) {
	if capacity <= 0 {
		o.cache = nil
		return
	}
	o.cache = newOwnerCache(capacity, o.dmin)
}

// RouteCacheStats returns the owner cache's counters (zero value when no
// cache is installed).
func (o *Overlay) RouteCacheStats() RouteCacheStats {
	c := o.cache
	if c == nil {
		return RouteCacheStats{}
	}
	c.mu.Lock()
	entries := c.lru.Len()
	c.mu.Unlock()
	return RouteCacheStats{
		Hits:    c.hits.Load(),
		Misses:  c.misses.Load(),
		Jumps:   c.jumps.Load(),
		Entries: entries,
	}
}

// SetRouteCache delegates to the overlay: one shared cache accelerates
// every pooled store client. Configure before driving load.
func (s *Store) SetRouteCache(capacity int) { s.ov.SetRouteCache(capacity) }

// RouteCacheStats returns the shared owner cache's counters.
func (s *Store) RouteCacheStats() RouteCacheStats { return s.ov.RouteCacheStats() }
