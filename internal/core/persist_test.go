package core

import (
	"bytes"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"voronet/internal/workload"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	o := New(Config{NMax: 2000, Seed: 71, LongLinks: 2})
	rng := rand.New(rand.NewSource(72))
	ids := fill(t, o, workload.NewPowerLaw(2, rng), 400)
	// Some churn so the snapshot is not a pristine build.
	for i := 0; i < 50; i++ {
		o.Remove(ids[i])
	}
	ids = ids[50:]

	var buf bytes.Buffer
	if err := o.Save(&buf); err != nil {
		t.Fatal(err)
	}
	o2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := o2.CheckInvariants(true); err != nil {
		t.Fatalf("loaded overlay invalid: %v", err)
	}
	if o2.Len() != o.Len() {
		t.Fatalf("len %d vs %d", o2.Len(), o.Len())
	}

	// Views must be identical object for object.
	for _, id := range ids {
		p1, _ := o.Position(id)
		p2, err := o2.Position(id)
		if err != nil || p1 != p2 {
			t.Fatalf("object %d position %v vs %v (%v)", id, p1, p2, err)
		}
		v1, _ := o.VoronoiNeighbors(id, nil)
		v2, _ := o2.VoronoiNeighbors(id, nil)
		sortIDs(v1)
		sortIDs(v2)
		if !reflect.DeepEqual(v1, v2) {
			t.Fatalf("object %d vn %v vs %v", id, v1, v2)
		}
		l1, _ := o.LongNeighbors(id)
		l2, _ := o2.LongNeighbors(id)
		if !reflect.DeepEqual(l1, l2) {
			t.Fatalf("object %d LRn %v vs %v", id, l1, l2)
		}
		t1, _ := o.LongTargets(id)
		t2, _ := o2.LongTargets(id)
		if !reflect.DeepEqual(t1, t2) {
			t.Fatalf("object %d targets differ", id)
		}
		c1, _ := o.CloseNeighbors(id, nil)
		c2, _ := o2.CloseNeighbors(id, nil)
		sortIDs(c1)
		sortIDs(c2)
		if !reflect.DeepEqual(c1, c2) {
			t.Fatalf("object %d cn %v vs %v", id, c1, c2)
		}
	}

	// Routing behaves identically.
	for q := 0; q < 100; q++ {
		a := ids[rng.Intn(len(ids))]
		b := ids[rng.Intn(len(ids))]
		h1, e1 := o.RouteToObject(a, b)
		h2, e2 := o2.RouteToObject(a, b)
		if h1 != h2 || (e1 == nil) != (e2 == nil) {
			t.Fatalf("route %d->%d: %d/%v vs %d/%v", a, b, h1, e1, h2, e2)
		}
	}

	// The loaded overlay remains fully operational (insert, remove, join).
	nid, err := o2.Insert(workload.NewPowerLaw(2, rng).Next())
	if err != nil {
		t.Fatal(err)
	}
	if nid < 400 {
		t.Fatalf("ID allocation resumed too low: %d", nid)
	}
	if err := o2.Remove(ids[0]); err != nil {
		t.Fatal(err)
	}
	if err := o2.CheckInvariants(true); err != nil {
		t.Fatal(err)
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("junk"))); err == nil {
		t.Fatal("garbage must not load")
	}
	var buf bytes.Buffer
	o := New(Config{NMax: 10, Seed: 1})
	o.Insert(workload.NewPowerLaw(1, rand.New(rand.NewSource(2))).Next())
	if err := o.Save(&buf); err != nil {
		t.Fatal(err)
	}
	// Corrupt the version.
	b := buf.Bytes()
	b[len(b)-1] ^= 0xFF
	if _, err := Load(bytes.NewReader(b)); err == nil {
		t.Log("note: tail corruption not always detectable by gob; acceptable")
	}
}

func sortIDs(s []ObjectID) {
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
}
