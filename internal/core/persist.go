package core

import (
	"encoding/gob"
	"fmt"
	"io"

	"voronet/internal/delaunay"
	"voronet/internal/geom"
)

// Snapshot format version; bump on incompatible layout changes.
const snapshotVersion = 1

type snapshot struct {
	Version int
	Config  Config
	DMin    float64
	NextID  ObjectID
	Objects []objectSnapshot
}

type objectSnapshot struct {
	ID          ObjectID
	Pos         geom.Point
	LongTargets []geom.Point
	LongNbrs    []ObjectID
}

// Save serialises the overlay — configuration, objects, long-link state —
// with encoding/gob. The tessellation, close-neighbour index and BLRn sets
// are derived state and are rebuilt on Load.
//
// The private RNG position is not part of the snapshot: a loaded overlay
// draws *future* long-link targets from a fresh stream seeded by
// Config.Seed. All existing links and targets are preserved exactly.
func (o *Overlay) Save(w io.Writer) error {
	o.mu.RLock()
	defer o.mu.RUnlock()
	s := snapshot{
		Version: snapshotVersion,
		Config:  o.cfg,
		DMin:    o.dmin,
		NextID:  o.nextID,
	}
	for _, id := range o.ids {
		obj := o.objs[id]
		s.Objects = append(s.Objects, objectSnapshot{
			ID:          obj.ID,
			Pos:         obj.Pos,
			LongTargets: obj.longTargets,
			LongNbrs:    obj.longNbrs,
		})
	}
	if err := gob.NewEncoder(w).Encode(&s); err != nil {
		return fmt.Errorf("voronet: save: %w", err)
	}
	return nil
}

// Load reconstructs an overlay from a Save snapshot: objects are
// re-inserted into a fresh tessellation (Hilbert-ordered bulk
// construction), the close-neighbour index is rebuilt, and the BLRn sets
// are re-derived from the saved long links.
func Load(r io.Reader) (*Overlay, error) {
	var s snapshot
	if err := gob.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("voronet: load: %w", err)
	}
	if s.Version != snapshotVersion {
		return nil, fmt.Errorf("voronet: load: snapshot version %d, want %d", s.Version, snapshotVersion)
	}
	o := New(s.Config)
	o.dmin = s.DMin
	o.grid = newCloseIndex(s.DMin)
	o.nextID = s.NextID

	// Rebuild the tessellation with locality-sorted bulk insertion. The
	// sort's total order makes the build identical for any worker count,
	// so parallelism is safe to apply unconditionally here.
	pts := make([]geom.Point, len(s.Objects))
	for i, os := range s.Objects {
		pts[i] = os.Pos
	}
	verts := o.tr.InsertBulkParallel(pts, 0)
	for i, os := range s.Objects {
		v := verts[i]
		if v == delaunay.NoVertex || !o.tr.Alive(v) {
			return nil, fmt.Errorf("voronet: load: object %d could not be re-inserted", os.ID)
		}
		if o.vertexObject(v) != NoObject {
			return nil, fmt.Errorf("voronet: load: duplicate position for object %d", os.ID)
		}
		obj := &Object{
			ID:          os.ID,
			Pos:         os.Pos,
			vert:        v,
			longTargets: os.LongTargets,
			longNbrs:    os.LongNbrs,
		}
		o.objs[os.ID] = obj
		o.setVertexObject(v, os.ID)
		o.idPos[os.ID] = len(o.ids)
		o.ids = append(o.ids, os.ID)
		o.grid.add(os.Pos, os.ID)
		if os.ID >= o.nextID {
			o.nextID = os.ID + 1
		}
	}
	// Re-derive the back long-range sets from the saved links.
	for _, id := range o.ids {
		obj := o.objs[id]
		for j, nid := range obj.longNbrs {
			if nid == NoObject {
				continue
			}
			holder := o.objs[nid]
			if holder == nil {
				return nil, fmt.Errorf("voronet: load: object %d link %d names missing object %d", id, j, nid)
			}
			holder.back = append(holder.back, BackRef{Obj: id, Link: j})
		}
	}
	return o, nil
}
