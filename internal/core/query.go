package core

import (
	"sort"

	"voronet/internal/geom"
)

// This file implements the richer query mechanisms the paper sketches as
// perspectives (§7): range queries along a segment of the attribute space
// and radius (disk) queries, both resolved by local forwarding over the
// tessellation, plus the dynamic-NMax adaptation sketch.

// QueryStats accounts the cost of a multi-object query.
type QueryStats struct {
	// RouteHops is the greedy hop count to reach the query area.
	RouteHops int
	// ForwardMessages is the number of forwarding messages inside the
	// query area (one per visited object beyond the first).
	ForwardMessages int
	// Visited is the number of objects that processed the query.
	Visited int
}

// RangeQuery returns the objects whose Voronoi region intersects the
// segment [a, b] — the paper's one-attribute range query, "represented as a
// segment in the unit square ... reached easily by forwarding the query
// along this line" (§7). Results are ordered by projection onto the
// segment. from is the query's introduction object.
func (o *Overlay) RangeQuery(from ObjectID, a, b geom.Point) ([]ObjectID, QueryStats, error) {
	var st QueryStats
	if o.objs[from] == nil {
		return nil, st, ErrNotFound
	}
	if len(o.ids) == 0 {
		return nil, st, ErrEmpty
	}
	// Route to the owner of the segment start.
	res, err := o.RouteToPoint(from, a)
	if err != nil {
		return nil, st, err
	}
	st.RouteHops = res.Hops

	// Flood along the segment: starting from the owner of a, visit every
	// object whose region intersects [a, b]; the set of such regions is
	// connected, so neighbour forwarding covers it.
	inQuery := func(id ObjectID) bool {
		obj := o.objs[id]
		if o.tr.Dimension() < 2 {
			// Degenerate overlay (≤2 objects or all collinear): an object
			// serves the query iff it owns the segment point nearest to it.
			q := geom.ClosestPointOnSegment(obj.Pos, a, b)
			return o.ownerIs(q, id)
		}
		return o.regionIntersectsSegment(obj, a, b)
	}

	visited := map[ObjectID]bool{}
	var queue []ObjectID
	var result []ObjectID
	push := func(id ObjectID) {
		if !visited[id] {
			visited[id] = true
			queue = append(queue, id)
		}
	}
	push(res.Owner)
	for len(queue) > 0 {
		id := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		if !inQuery(id) {
			continue
		}
		result = append(result, id)
		st.Visited++
		vn, _ := o.VoronoiNeighbors(id, nil)
		for _, nid := range vn {
			if !visited[nid] {
				st.ForwardMessages++
				push(nid)
			}
		}
	}
	// Order results along the segment.
	dir := b.Sub(a)
	sort.Slice(result, func(i, j int) bool {
		pi := o.objs[result[i]].Pos.Sub(a).Dot(dir)
		pj := o.objs[result[j]].Pos.Sub(a).Dot(dir)
		return pi < pj
	})
	return result, st, nil
}

func (o *Overlay) ownerIs(p geom.Point, id ObjectID) bool {
	obj := o.objs[id]
	dp := geom.Dist2(p, obj.Pos)
	for _, other := range o.ids {
		if geom.Dist2(p, o.objs[other].Pos) < dp {
			return false
		}
	}
	return true
}

// regionIntersectsSegment reports whether R(obj) meets segment [a, b].
func (o *Overlay) regionIntersectsSegment(obj *Object, a, b geom.Point) bool {
	// Quick accept: the object's site projects onto the segment within its
	// own region.
	q := geom.ClosestPointOnSegment(obj.Pos, a, b)
	if o.vor.Contains(obj.vert, q) {
		return true
	}
	// Exact test via the cell polygon.
	return geom.ConvexPolygonIntersectsSegment(o.vor.Cell(obj.vert), a, b)
}

// RadiusQuery returns the objects within distance r of centre — the
// paper's "radius query, where all objects in a given disk are queried"
// (§7). The query floods outward from the owner of the centre through
// every object whose region intersects the disk, which is exactly the
// connected set DistanceToRegion ≤ r.
func (o *Overlay) RadiusQuery(from ObjectID, centre geom.Point, r float64) ([]ObjectID, QueryStats, error) {
	var st QueryStats
	if o.objs[from] == nil {
		return nil, st, ErrNotFound
	}
	res, err := o.RouteToPoint(from, centre)
	if err != nil {
		return nil, st, err
	}
	st.RouteHops = res.Hops

	visited := map[ObjectID]bool{}
	var queue []ObjectID
	var result []ObjectID
	push := func(id ObjectID) {
		if !visited[id] {
			visited[id] = true
			queue = append(queue, id)
		}
	}
	push(res.Owner)
	for len(queue) > 0 {
		id := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		obj := o.objs[id]
		intersects := false
		if o.tr.Dimension() < 2 {
			intersects = geom.Dist(obj.Pos, centre) <= r || o.ownerIs(centre, id)
		} else {
			_, dist := o.vor.DistanceToRegion(obj.vert, centre)
			intersects = dist <= r
		}
		if !intersects {
			continue
		}
		st.Visited++
		if geom.Dist(obj.Pos, centre) <= r {
			result = append(result, id)
		}
		vn, _ := o.VoronoiNeighbors(id, nil)
		for _, nid := range vn {
			if !visited[nid] {
				st.ForwardMessages++
				push(nid)
			}
		}
	}
	sort.Slice(result, func(i, j int) bool {
		return geom.Dist2(o.objs[result[i]].Pos, centre) < geom.Dist2(o.objs[result[j]].Pos, centre)
	})
	return result, st, nil
}

// SetNMax implements the dynamic-NMax perspective (§7, second point): when
// the overlay grows past its provisioned size, raise NMax, shrink dmin
// accordingly, and re-draw the long links of the objects whose close
// neighbourhood became denser than the threshold ("updating only the
// objects whose neighbourhood is too dense"). Returns the number of
// objects whose links were re-drawn.
func (o *Overlay) SetNMax(nmax, denseThreshold int) int {
	if nmax <= 0 || nmax == o.cfg.NMax {
		return 0
	}
	o.cfg.NMax = nmax
	newDMin := DefaultDMin(nmax)

	// Rebuild the close-neighbour grid at the new radius.
	oldGrid := o.grid
	o.grid = newCloseIndex(newDMin)
	for _, id := range o.ids {
		o.grid.add(o.objs[id].Pos, id)
	}
	_ = oldGrid
	prevDMin := o.dmin
	o.dmin = newDMin

	if o.cfg.DisableLongLinks {
		return 0
	}
	refreshed := 0
	for _, id := range o.ids {
		obj := o.objs[id]
		// Density test against the *previous* radius: objects that had more
		// close neighbours than the threshold re-draw their links under the
		// new dmin.
		if o.grid.count(obj.Pos, prevDMin, id) <= denseThreshold {
			continue
		}
		refreshed++
		for j := range obj.longTargets {
			// Withdraw the old link...
			if holder := o.objs[obj.longNbrs[j]]; holder != nil {
				for i, ref := range holder.back {
					if ref.Obj == id && ref.Link == j {
						holder.back[i] = holder.back[len(holder.back)-1]
						holder.back = holder.back[:len(holder.back)-1]
						break
					}
				}
			}
			// ...and draw a fresh one under the new dmin.
			tgt := o.chooseLRT(obj.Pos)
			obj.longTargets[j] = tgt
			ownerV := o.tr.NearestSite(tgt, obj.vert)
			ownerID := o.byVertex[ownerV]
			obj.longNbrs[j] = ownerID
			o.objs[ownerID].back = append(o.objs[ownerID].back, BackRef{Obj: id, Link: j})
		}
	}
	return refreshed
}
