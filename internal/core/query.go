package core

import (
	"sort"

	"voronet/internal/delaunay"
	"voronet/internal/geom"
	"voronet/internal/voronoi"
)

// This file implements the richer query mechanisms the paper sketches as
// perspectives (§7): range queries along a segment of the attribute space
// and radius (disk) queries, both resolved by local forwarding over the
// tessellation, plus the dynamic-NMax adaptation sketch.

// QueryStats accounts the cost of a multi-object query.
type QueryStats struct {
	// RouteHops is the greedy hop count to reach the query area.
	RouteHops int
	// ForwardMessages is the number of forwarding messages inside the
	// query area (one per visited object beyond the first).
	ForwardMessages int
	// Visited is the number of objects that processed the query.
	Visited int
}

// queryScratch is the reusable state of one query flood: a
// generation-stamped visited set (cleared in O(1) by bumping the
// generation instead of reallocating a map per call), the worklist, and a
// vertex buffer for neighbour expansion. The overlay owns one for the
// serially-accounted query path; every Router owns its own.
type queryScratch struct {
	mark  map[ObjectID]uint64
	gen   uint64
	queue []ObjectID
	vbuf  []delaunay.VertexID
}

// begin starts a new flood: all previous marks become stale at once.
// live bounds the mark map: ObjectIDs are never reused, so under churn a
// long-lived scratch would otherwise accumulate one entry per object ever
// visited; when the map far outgrows the live population it is rebuilt.
func (sc *queryScratch) begin(live int) {
	if sc.mark == nil || len(sc.mark) > 4*live+64 {
		sc.mark = make(map[ObjectID]uint64, live)
	}
	sc.gen++
	sc.queue = sc.queue[:0]
}

func (sc *queryScratch) push(id ObjectID) bool {
	if sc.mark[id] == sc.gen {
		return false
	}
	sc.mark[id] = sc.gen
	sc.queue = append(sc.queue, id)
	return true
}

// RangeQuery returns the objects whose Voronoi region intersects the
// segment [a, b] — the paper's one-attribute range query, "represented as a
// segment in the unit square ... reached easily by forwarding the query
// along this line" (§7). Results are ordered by projection onto the
// segment. from is the query's introduction object. The call serialises
// (it accounts into the shared counters); Router.RangeQuery is the
// concurrent equivalent.
func (o *Overlay) RangeQuery(from ObjectID, a, b geom.Point) ([]ObjectID, QueryStats, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.rangeQuery(&o.rt, &o.qsc, from, a, b)
}

// rangeQuery is the route-to-start-then-flood implementation shared by
// the serial path and the Router: all mutable state comes from rt and sc,
// so the two paths cannot drift apart.
func (o *Overlay) rangeQuery(rt *routeState, sc *queryScratch, from ObjectID, a, b geom.Point) ([]ObjectID, QueryStats, error) {
	var st QueryStats
	cur := o.objs[from]
	if cur == nil {
		return nil, st, ErrNotFound
	}
	if len(o.ids) == 0 {
		return nil, st, ErrEmpty
	}
	// Route to the owner of the segment start.
	hops, err := o.routeToPoint(rt, &cur, a)
	if err != nil {
		return nil, st, err
	}
	st.RouteHops = hops
	var ownerV delaunay.VertexID
	ownerV, rt.nbuf = o.tr.NearestSiteRO(a, cur.vert, rt.nbuf)
	result := o.floodSegment(o.byVertex[ownerV], a, b, rt.vor, sc, &st)
	return result, st, nil
}

// floodSegment floods from the owner of segment start a over every object
// whose region intersects [a, b] (the set of such regions is connected, so
// neighbour forwarding covers it) and returns them ordered by projection
// onto the segment. vor and sc supply the caller's scratch, so concurrent
// callers never share state.
func (o *Overlay) floodSegment(start ObjectID, a, b geom.Point, vor *voronoi.Diagram, sc *queryScratch, st *QueryStats) []ObjectID {
	inQuery := func(id ObjectID) bool {
		obj := o.objs[id]
		if o.tr.Dimension() < 2 {
			// Degenerate overlay (≤2 objects or all collinear): an object
			// serves the query iff it owns the segment point nearest to it.
			q := geom.ClosestPointOnSegment(obj.Pos, a, b)
			return o.ownerIs(q, id)
		}
		return o.regionIntersectsSegment(obj, a, b, vor)
	}

	sc.begin(len(o.ids))
	var result []ObjectID
	sc.push(start)
	for len(sc.queue) > 0 {
		id := sc.queue[len(sc.queue)-1]
		sc.queue = sc.queue[:len(sc.queue)-1]
		if !inQuery(id) {
			continue
		}
		result = append(result, id)
		st.Visited++
		sc.vbuf = o.tr.Neighbors(o.objs[id].vert, sc.vbuf)
		for _, v := range sc.vbuf {
			if sc.push(o.byVertex[v]) {
				st.ForwardMessages++
			}
		}
	}
	// Order results along the segment.
	dir := b.Sub(a)
	sort.Slice(result, func(i, j int) bool {
		pi := o.objs[result[i]].Pos.Sub(a).Dot(dir)
		pj := o.objs[result[j]].Pos.Sub(a).Dot(dir)
		return pi < pj
	})
	return result
}

func (o *Overlay) ownerIs(p geom.Point, id ObjectID) bool {
	obj := o.objs[id]
	dp := geom.Dist2(p, obj.Pos)
	for _, other := range o.ids {
		if geom.Dist2(p, o.objs[other].Pos) < dp {
			return false
		}
	}
	return true
}

// regionIntersectsSegment reports whether R(obj) meets segment [a, b],
// evaluated against the caller's Voronoi scratch view.
func (o *Overlay) regionIntersectsSegment(obj *Object, a, b geom.Point, vor *voronoi.Diagram) bool {
	// Quick accept: the object's site projects onto the segment within its
	// own region.
	q := geom.ClosestPointOnSegment(obj.Pos, a, b)
	if vor.Contains(obj.vert, q) {
		return true
	}
	// Exact test via the cell polygon.
	return geom.ConvexPolygonIntersectsSegment(vor.Cell(obj.vert), a, b)
}

// RadiusQuery returns the objects within distance r of centre — the
// paper's "radius query, where all objects in a given disk are queried"
// (§7). The query floods outward from the owner of the centre through
// every object whose region intersects the disk, which is exactly the
// connected set DistanceToRegion ≤ r. The call serialises;
// Router.RadiusQuery is the concurrent equivalent.
func (o *Overlay) RadiusQuery(from ObjectID, centre geom.Point, r float64) ([]ObjectID, QueryStats, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.radiusQuery(&o.rt, &o.qsc, from, centre, r)
}

// radiusQuery is the shared implementation behind Overlay.RadiusQuery and
// Router.RadiusQuery; see rangeQuery.
func (o *Overlay) radiusQuery(rt *routeState, sc *queryScratch, from ObjectID, centre geom.Point, r float64) ([]ObjectID, QueryStats, error) {
	var st QueryStats
	cur := o.objs[from]
	if cur == nil {
		return nil, st, ErrNotFound
	}
	hops, err := o.routeToPoint(rt, &cur, centre)
	if err != nil {
		return nil, st, err
	}
	st.RouteHops = hops
	var ownerV delaunay.VertexID
	ownerV, rt.nbuf = o.tr.NearestSiteRO(centre, cur.vert, rt.nbuf)
	result := o.floodDisk(o.byVertex[ownerV], centre, r, rt.vor, sc, &st)
	return result, st, nil
}

// floodDisk floods from the owner of centre over every object whose region
// intersects the disk and returns the objects inside it, ordered by
// distance to the centre. vor and sc supply the caller's scratch.
func (o *Overlay) floodDisk(start ObjectID, centre geom.Point, r float64, vor *voronoi.Diagram, sc *queryScratch, st *QueryStats) []ObjectID {
	sc.begin(len(o.ids))
	var result []ObjectID
	sc.push(start)
	for len(sc.queue) > 0 {
		id := sc.queue[len(sc.queue)-1]
		sc.queue = sc.queue[:len(sc.queue)-1]
		obj := o.objs[id]
		intersects := false
		if o.tr.Dimension() < 2 {
			intersects = geom.Dist(obj.Pos, centre) <= r || o.ownerIs(centre, id)
		} else {
			_, dist := vor.DistanceToRegion(obj.vert, centre)
			intersects = dist <= r
		}
		if !intersects {
			continue
		}
		st.Visited++
		if geom.Dist(obj.Pos, centre) <= r {
			result = append(result, id)
		}
		sc.vbuf = o.tr.Neighbors(obj.vert, sc.vbuf)
		for _, v := range sc.vbuf {
			if sc.push(o.byVertex[v]) {
				st.ForwardMessages++
			}
		}
	}
	sort.Slice(result, func(i, j int) bool {
		return geom.Dist2(o.objs[result[i]].Pos, centre) < geom.Dist2(o.objs[result[j]].Pos, centre)
	})
	return result
}

// SetNMax implements the dynamic-NMax perspective (§7, second point): when
// the overlay grows past its provisioned size, raise NMax, shrink dmin
// accordingly, and re-draw the long links of the objects whose close
// neighbourhood became denser than the threshold ("updating only the
// objects whose neighbourhood is too dense"). Returns the number of
// objects whose links were re-drawn.
func (o *Overlay) SetNMax(nmax, denseThreshold int) int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.setNMax(nmax, denseThreshold)
}

func (o *Overlay) setNMax(nmax, denseThreshold int) int {
	if nmax <= 0 || nmax == o.cfg.NMax {
		return 0
	}
	o.cfg.NMax = nmax
	newDMin := DefaultDMin(nmax)

	// Rebuild the close-neighbour grid at the new radius.
	oldGrid := o.grid
	o.grid = newCloseIndex(newDMin)
	for _, id := range o.ids {
		o.grid.add(o.objs[id].Pos, id)
	}
	_ = oldGrid
	prevDMin := o.dmin
	o.dmin = newDMin

	if o.cfg.DisableLongLinks {
		return 0
	}
	refreshed := 0
	for _, id := range o.ids {
		obj := o.objs[id]
		// Density test against the *previous* radius: objects that had more
		// close neighbours than the threshold re-draw their links under the
		// new dmin.
		var dense int
		dense, o.rt.gbuf = o.grid.count(obj.Pos, prevDMin, id, o.rt.gbuf)
		if dense <= denseThreshold {
			continue
		}
		refreshed++
		for j := range obj.longTargets {
			// Withdraw the old link...
			if holder := o.objs[obj.longNbrs[j]]; holder != nil {
				for i, ref := range holder.back {
					if ref.Obj == id && ref.Link == j {
						holder.back[i] = holder.back[len(holder.back)-1]
						holder.back = holder.back[:len(holder.back)-1]
						break
					}
				}
			}
			// ...and draw a fresh one under the new dmin.
			tgt := o.chooseLRT(obj.Pos)
			obj.longTargets[j] = tgt
			ownerV := o.tr.NearestSite(tgt, obj.vert)
			ownerID := o.byVertex[ownerV]
			obj.longNbrs[j] = ownerID
			o.objs[ownerID].back = append(o.objs[ownerID].back, BackRef{Obj: id, Link: j})
		}
	}
	return refreshed
}
