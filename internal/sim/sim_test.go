package sim

import (
	"strings"
	"testing"
)

func TestDegreeExperimentShape(t *testing.T) {
	// Scaled-down Fig 5: the degree distribution is centred on 6 regardless
	// of the distribution.
	for _, dist := range Fig5Distributions {
		h, err := DegreeExperiment{N: 3000, Distribution: dist, Seed: 42}.Run()
		if err != nil {
			t.Fatalf("%s: %v", dist, err)
		}
		if h.N() != 3000 {
			t.Fatalf("%s: histogram over %d objects", dist, h.N())
		}
		mean := h.Mean()
		if mean < 5.3 || mean > 6.0 {
			t.Errorf("%s: mean degree %.2f, expected slightly below 6", dist, mean)
		}
		mode, _ := h.Mode()
		if mode < 5 || mode > 7 {
			t.Errorf("%s: mode %d, expected near 6", dist, mode)
		}
		if mass := h.MassIn(3, 9); mass < 0.9 {
			t.Errorf("%s: only %.2f of mass in [3,9]", dist, mass)
		}
	}
}

func TestRouteExperimentGrowsPolylog(t *testing.T) {
	// Scaled-down Fig 6: hops grow, but far slower than sqrt(N).
	pts, err := RouteExperiment{
		MaxN: 4000, Checkpoint: 1000, Samples: 300,
		Distribution: "uniform", Seed: 7,
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("checkpoints: %d", len(pts))
	}
	if pts[3].MeanHops <= pts[0].MeanHops {
		t.Fatalf("hops did not grow: %v", pts)
	}
	// sqrt scaling would double hops from 1000 to 4000 objects.
	if pts[3].MeanHops > pts[0].MeanHops*1.9 {
		t.Fatalf("hop growth looks polynomial: %.1f -> %.1f", pts[0].MeanHops, pts[3].MeanHops)
	}
	fit := FitPolylog(pts)
	if fit.Slope < 0.5 || fit.Slope > 4 {
		t.Errorf("polylog exponent %.2f wildly off", fit.Slope)
	}
}

func TestRouteExperimentSkewInsensitive(t *testing.T) {
	// Fig 6's headline: the curves for uniform and highly skewed data are
	// close. As analysed in EXPERIMENTS.md this holds for greedy routing
	// over vn ∪ LRn (the measurement the paper's curves are consistent
	// with); with cn shortcuts enabled, skewed data routes strictly
	// *faster* (most couples share the giant cluster), which we assert too.
	uni, err := RouteExperiment{MaxN: 3000, Samples: 300, Distribution: "uniform",
		DisableCloseNeighbours: true, Seed: 8}.Run()
	if err != nil {
		t.Fatal(err)
	}
	skew, err := RouteExperiment{MaxN: 3000, Samples: 300, Distribution: "alpha5",
		DisableCloseNeighbours: true, Seed: 8}.Run()
	if err != nil {
		t.Fatal(err)
	}
	ru, rs := uni[len(uni)-1].MeanHops, skew[len(skew)-1].MeanHops
	if rs > 2.5*ru || ru > 2.5*rs {
		t.Fatalf("distribution sensitivity too high: uniform %.1f vs alpha5 %.1f", ru, rs)
	}

	// Full protocol (cn included): skew can only help.
	skewCN, err := RouteExperiment{MaxN: 3000, Samples: 300, Distribution: "alpha5", Seed: 8}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got := skewCN[len(skewCN)-1].MeanHops; got > rs+1 {
		t.Fatalf("cn shortcuts should not slow skewed routing: %.1f vs %.1f", got, rs)
	}
}

func TestMoreLongLinksHelp(t *testing.T) {
	// Fig 8's headline: k = 4 long links beat k = 1.
	k1, err := RouteExperiment{MaxN: 3000, Samples: 400, Distribution: "uniform", LongLinks: 1, Seed: 9}.Run()
	if err != nil {
		t.Fatal(err)
	}
	k4, err := RouteExperiment{MaxN: 3000, Samples: 400, Distribution: "uniform", LongLinks: 4, Seed: 9}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if k4[0].MeanHops >= k1[0].MeanHops {
		t.Fatalf("k=4 (%.1f hops) should beat k=1 (%.1f hops)",
			k4[0].MeanHops, k1[0].MeanHops)
	}
}

func TestAblationNoLongLinksIsWorse(t *testing.T) {
	with, err := RouteExperiment{MaxN: 2500, Samples: 300, Distribution: "uniform", Seed: 10}.Run()
	if err != nil {
		t.Fatal(err)
	}
	without, err := RouteExperiment{MaxN: 2500, Samples: 300, Distribution: "uniform",
		DisableLongLinks: true, Seed: 10}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if without[0].MeanHops <= with[0].MeanHops {
		t.Fatalf("long links must help: with %.1f, without %.1f",
			with[0].MeanHops, without[0].MeanHops)
	}
}

func TestWriteSeries(t *testing.T) {
	var b strings.Builder
	pts := []RoutePoint{{N: 1000, MeanHops: 12.5, StdHops: 3.25}}
	if err := WriteSeries(&b, "uniform", pts); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	if !strings.Contains(got, "# uniform\n") || !strings.Contains(got, "1000\t12.500\t3.250\n") {
		t.Fatalf("unexpected series output: %q", got)
	}
}

func TestUnknownDistribution(t *testing.T) {
	if _, err := (DegreeExperiment{N: 10, Distribution: "nope"}).Run(); err == nil {
		t.Fatal("want error for unknown distribution")
	}
	if _, err := (RouteExperiment{MaxN: 10, Samples: 1, Distribution: "nope"}).Run(); err == nil {
		t.Fatal("want error for unknown distribution")
	}
}
