package sim

import (
	"errors"
	"fmt"
	"math/rand"

	"voronet/internal/core"
	"voronet/internal/workload"
)

// MaintenancePoint is one row of the overlay-management cost table: the
// paper's §4.2/§4.4 analysis predicts that per-operation maintenance
// traffic (AddVoronoiRegion / RemoveVoronoiRegion messages) is O(1) in the
// overlay size while the routed part of a join grows like O(log² N).
type MaintenancePoint struct {
	N int
	// JoinRouteSteps is the mean number of Greedyneighbour calls per join
	// (routing to the insertion region plus the long-link searches).
	JoinRouteSteps float64
	// JoinMaintenance is the mean number of neighbourhood-update messages
	// per join.
	JoinMaintenance float64
	// LeaveMaintenance is the mean number of messages per leave.
	LeaveMaintenance float64
	// FictivePerJoin is the mean number of fictive-object insertions per
	// join (Algorithms 1 and 2 use up to 1 + 2·k of them).
	FictivePerJoin float64
}

// MaintenanceExperiment measures protocol management costs across overlay
// sizes.
type MaintenanceExperiment struct {
	// Sizes are the overlay sizes to probe.
	Sizes []int
	// Ops is the number of joins (and separately leaves) measured per size.
	Ops int
	// Distribution names the workload.
	Distribution string
	// LongLinks per object (k).
	LongLinks int
	// InteriorTargets keeps long-link targets inside the unit square,
	// preventing the exterior-target pile-up on hull objects (see
	// core.Config.InteriorTargets and EXPERIMENTS.md).
	InteriorTargets bool
	Seed            int64
}

// Run executes the experiment.
func (e MaintenanceExperiment) Run() ([]MaintenancePoint, error) {
	if e.Ops <= 0 {
		e.Ops = 200
	}
	rng := rand.New(rand.NewSource(e.Seed))
	src := workload.ByName(e.Distribution, rng)
	if src == nil {
		return nil, fmt.Errorf("sim: unknown distribution %q", e.Distribution)
	}
	var out []MaintenancePoint
	for _, n := range e.Sizes {
		ov := core.New(core.Config{
			NMax: n, LongLinks: e.LongLinks, InteriorTargets: e.InteriorTargets, Seed: e.Seed + 1,
		})
		if err := grow(ov, src, n); err != nil {
			return nil, err
		}

		// Joins.
		ov.ResetCounters()
		var joined []core.ObjectID
		via, err := ov.RandomObject(rng)
		if err != nil {
			return nil, err
		}
		for len(joined) < e.Ops {
			id, err := ov.Join(src.Next(), via)
			if err != nil {
				if errors.Is(err, core.ErrDuplicate) {
					continue
				}
				return nil, err
			}
			joined = append(joined, id)
		}
		cj := ov.Counters()
		pt := MaintenancePoint{
			N:              n,
			JoinRouteSteps: float64(cj.JoinRouteSteps) / float64(e.Ops),
			FictivePerJoin: float64(cj.FictiveInserts) / float64(e.Ops),
		}
		// Joins also perform fictive removals, which are counted in
		// MaintenanceMessages; report the total per join.
		pt.JoinMaintenance = float64(cj.MaintenanceMessages) / float64(e.Ops)

		// Leaves (remove exactly the objects we added, restoring N).
		ov.ResetCounters()
		for _, id := range joined {
			if err := ov.Remove(id); err != nil {
				return nil, err
			}
		}
		cl := ov.Counters()
		pt.LeaveMaintenance = float64(cl.MaintenanceMessages) / float64(e.Ops)
		out = append(out, pt)
	}
	return out, nil
}
