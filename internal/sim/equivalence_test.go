package sim

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"voronet/internal/core"
	"voronet/internal/geom"
	"voronet/internal/stats"
	"voronet/internal/workload"
)

// TestInsertBuildEquivalentToJoinBuild validates the experiment engine's
// central shortcut: figures are generated from overlays built with direct
// inserts, on the argument (DESIGN.md) that a protocol Join produces the
// same tessellation and the same long-link distribution. Here we build two
// overlays from the same position stream — one with Insert, one with the
// full Algorithm-1 Join — and require identical degree statistics and
// statistically indistinguishable route lengths.
func TestInsertBuildEquivalentToJoinBuild(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	const n = 4000
	posRng := rand.New(rand.NewSource(71))
	src := workload.NewPowerLaw(2, posRng)
	positions := make([]geom.Point, 0, n)
	for len(positions) < n {
		positions = append(positions, src.Next())
	}

	build := func(useJoin bool) *core.Overlay {
		ov := core.New(core.Config{NMax: n, Seed: 72})
		var last core.ObjectID = core.NoObject
		for _, p := range positions {
			var id core.ObjectID
			var err error
			if useJoin {
				id, err = ov.Join(p, last)
			} else {
				id, err = ov.Insert(p)
			}
			if err != nil {
				if errors.Is(err, core.ErrDuplicate) {
					continue
				}
				t.Fatal(err)
			}
			last = id
		}
		return ov
	}
	a := build(false)
	b := build(true)
	if a.Len() != b.Len() {
		t.Fatalf("sizes differ: %d vs %d", a.Len(), b.Len())
	}

	// Identical tessellations: degree histograms must match bucket for
	// bucket (the Delaunay triangulation of a point set is unique for
	// points in general position).
	ha, hb := stats.NewHistogram(), stats.NewHistogram()
	a.ForEachObject(func(o *core.Object) bool {
		d, _ := a.Degree(o.ID)
		ha.Add(d)
		return true
	})
	b.ForEachObject(func(o *core.Object) bool {
		d, _ := b.Degree(o.ID)
		hb.Add(d)
		return true
	})
	for _, v := range ha.Values() {
		if ha.Count(v) != hb.Count(v) {
			t.Fatalf("degree histograms differ at %d: %d vs %d", v, ha.Count(v), hb.Count(v))
		}
	}

	// Long links are drawn from the same distribution but with different
	// RNG consumption patterns, so routes are compared statistically.
	measure := func(ov *core.Overlay, seed int64) float64 {
		rng := rand.New(rand.NewSource(seed))
		var agg stats.Running
		for i := 0; i < 1500; i++ {
			x, _ := ov.RandomObject(rng)
			y, _ := ov.RandomObject(rng)
			if x == y {
				continue
			}
			h, err := ov.RouteToObject(x, y)
			if err != nil {
				t.Fatal(err)
			}
			agg.Add(float64(h))
		}
		return agg.Mean()
	}
	ma := measure(a, 73)
	mb := measure(b, 73)
	if math.Abs(ma-mb) > 0.15*math.Max(ma, mb) {
		t.Fatalf("route lengths diverge: insert-built %.2f vs join-built %.2f", ma, mb)
	}
	t.Logf("mean hops: insert-built %.2f, join-built %.2f", ma, mb)
}
