package sim

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"voronet/internal/core"
	"voronet/internal/geom"
	"voronet/internal/node"
	"voronet/internal/store"
	"voronet/internal/transport"
)

// TestStoreEquivalenceUnderChurn drives the same object-store workload —
// joins, puts, overwrites, deletes, a churn phase, more puts — through the
// distributed implementation (internal/node over the in-memory bus) and
// the simulator mirror (internal/core.Store), and requires the two to
// agree key for key: same value, or both deleted/missing.
func TestStoreEquivalenceUnderChurn(t *testing.T) {
	const (
		nStart = 80
		dmin   = 0.02
		rep    = 3
	)
	rng := rand.New(rand.NewSource(2025))

	// Distributed side.
	bus := transport.NewBus()
	nodes := make(map[string]*node.Node) // live nodes by address
	var addrs []string                   // live addresses, insertion order
	seq := 0

	// Mirror side, sharing positions with the distributed side.
	ov := core.New(core.Config{NMax: nStart + 64, Seed: 2026})
	st := core.NewStore(ov, rep)
	idOf := make(map[string]core.ObjectID)

	addPeer := func(pos geom.Point) string {
		addr := fmt.Sprintf("p%03d", seq)
		seq++
		ep, err := bus.Attach(addr)
		if err != nil {
			t.Fatal(err)
		}
		nd := node.New(ep, pos, node.Config{DMin: dmin, LongLinks: 1, Seed: int64(seq), Replication: rep})
		if len(addrs) == 0 {
			if err := nd.Bootstrap(); err != nil {
				t.Fatal(err)
			}
		} else {
			if err := nd.Join(addrs[rng.Intn(len(addrs))]); err != nil {
				t.Fatal(err)
			}
			bus.Drain()
			if !nd.Joined() {
				t.Fatalf("node %s failed to join", addr)
			}
		}
		nodes[addr] = nd
		addrs = append(addrs, addr)

		id, err := ov.Insert(pos)
		if err != nil {
			t.Fatalf("mirror insert: %v", err)
		}
		st.OnInsert(id)
		idOf[addr] = id
		return addr
	}

	removePeer := func(addr string) {
		nd := nodes[addr]
		if err := nd.Leave(); err != nil {
			t.Fatal(err)
		}
		bus.Drain()
		delete(nodes, addr)
		for i, a := range addrs {
			if a == addr {
				addrs = append(addrs[:i], addrs[i+1:]...)
				break
			}
		}
		st.OnRemove(idOf[addr])
		if err := ov.Remove(idOf[addr]); err != nil {
			t.Fatalf("mirror remove: %v", err)
		}
		delete(idOf, addr)
	}

	for i := 0; i < nStart; i++ {
		addPeer(geom.Pt(rng.Float64(), rng.Float64()))
	}

	// Both sides execute every operation from the same origin peer.
	put := func(key geom.Point, value []byte) {
		origin := addrs[rng.Intn(len(addrs))]
		var got *store.Reply
		if err := nodes[origin].Put(key, value, func(r store.Reply) { got = &r }); err != nil {
			t.Fatal(err)
		}
		bus.Drain()
		if got == nil || got.Err != nil || !got.Found {
			t.Fatalf("distributed put %v: %+v", key, got)
		}
		if _, _, err := st.Put(idOf[origin], key, value); err != nil {
			t.Fatalf("mirror put %v: %v", key, err)
		}
	}
	del := func(key geom.Point) {
		origin := addrs[rng.Intn(len(addrs))]
		if err := nodes[origin].Delete(key, nil); err != nil {
			t.Fatal(err)
		}
		bus.Drain()
		if _, err := st.Delete(idOf[origin], key); err != nil && !errors.Is(err, store.ErrNotFound) {
			t.Fatalf("mirror delete %v: %v", key, err)
		}
	}

	var keys []geom.Point
	value := func(i, gen int) []byte { return []byte(fmt.Sprintf("k%03d-g%d", i, gen)) }
	for i := 0; i < 300; i++ {
		keys = append(keys, geom.Pt(rng.Float64(), rng.Float64()))
		put(keys[i], value(i, 0))
	}
	// Overwrites and deletes before the churn phase.
	for i := 0; i < 50; i++ {
		put(keys[i], value(i, 1))
	}
	for i := 260; i < 300; i++ {
		del(keys[i])
	}

	// Churn: 12 joins and 12 leaves interleaved.
	joins, leaves := 0, 0
	for joins < 12 || leaves < 12 {
		if joins < 12 && (leaves >= 12 || rng.Float64() < 0.5) {
			addPeer(geom.Pt(rng.Float64(), rng.Float64()))
			joins++
		} else {
			removePeer(addrs[rng.Intn(len(addrs))])
			leaves++
		}
	}

	// Fresh keys, overwrites and deletes on the churned overlay.
	for i := 300; i < 350; i++ {
		keys = append(keys, geom.Pt(rng.Float64(), rng.Float64()))
		put(keys[i], value(i, 0))
	}
	for i := 50; i < 90; i++ {
		put(keys[i], value(i, 2))
	}
	for i := 220; i < 260; i++ {
		del(keys[i])
	}

	// Key-for-key agreement, read from a random live peer each time.
	for i, key := range keys {
		origin := addrs[rng.Intn(len(addrs))]
		var got *store.Reply
		if err := nodes[origin].Get(key, func(r store.Reply) { got = &r }); err != nil {
			t.Fatal(err)
		}
		bus.Drain()
		if got == nil || got.Err != nil {
			t.Fatalf("distributed get %d %v: %+v", i, key, got)
		}
		mv, _, merr := st.Get(idOf[origin], key)
		switch {
		case merr == nil && !got.Found:
			t.Fatalf("key %d %v: mirror has %q, distributed misses", i, key, mv)
		case errors.Is(merr, store.ErrNotFound) && got.Found:
			t.Fatalf("key %d %v: distributed has %q, mirror misses", i, key, got.Value)
		case merr == nil && !bytes.Equal(mv, got.Value):
			t.Fatalf("key %d %v: mirror %q vs distributed %q", i, key, mv, got.Value)
		case merr != nil && !errors.Is(merr, store.ErrNotFound):
			t.Fatalf("mirror get %d: %v", i, merr)
		}
	}

	// Equivalence only means anything on a loss-free network: if the
	// fault-free bus dropped a single message, the comparison above
	// validated a degraded run, not the protocol.
	if bus.DroppedCount() != 0 {
		t.Fatalf("fault-free equivalence run dropped %d messages", bus.DroppedCount())
	}
}
