package sim

import "testing"

func TestMaintenanceCostsScale(t *testing.T) {
	// With clamped long-link targets the paper's O(1)-maintenance analysis
	// holds empirically; the unclamped (paper-literal) variant is measured
	// below and its hull pile-up documented in EXPERIMENTS.md.
	pts, err := MaintenanceExperiment{
		Sizes:           []int{1000, 4000, 16000},
		Ops:             150,
		Distribution:    "uniform",
		InteriorTargets: true,
		Seed:            61,
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("points: %d", len(pts))
	}
	small, large := pts[0], pts[2]

	// Routing part of a join grows (poly-logarithmically) with N...
	if large.JoinRouteSteps <= small.JoinRouteSteps {
		t.Errorf("join route steps should grow with N: %.1f -> %.1f",
			small.JoinRouteSteps, large.JoinRouteSteps)
	}
	// ...but far slower than sqrt scaling (x4 for a 16x size increase).
	if large.JoinRouteSteps > 3*small.JoinRouteSteps {
		t.Errorf("join route steps grew polynomially: %.1f -> %.1f",
			small.JoinRouteSteps, large.JoinRouteSteps)
	}
	// Maintenance is O(1): no systematic growth (generous 2x headroom for
	// sampling noise).
	if large.JoinMaintenance > 2*small.JoinMaintenance {
		t.Errorf("join maintenance not O(1): %.1f -> %.1f",
			small.JoinMaintenance, large.JoinMaintenance)
	}
	if large.LeaveMaintenance > 2*small.LeaveMaintenance {
		t.Errorf("leave maintenance not O(1): %.1f -> %.1f",
			small.LeaveMaintenance, large.LeaveMaintenance)
	}
	// Fictive objects per join: Algorithm 1 uses at most 1, plus 2 per
	// long link (Algorithm 2), here k=1 => at most 3.
	if large.FictivePerJoin <= 0 || large.FictivePerJoin > 3 {
		t.Errorf("fictive inserts per join: %.2f", large.FictivePerJoin)
	}
}

func TestMaintenanceHullPileUpWithoutClamping(t *testing.T) {
	// Paper-literal targets (LRt may leave the unit square): exterior
	// targets pile onto the few hull objects and the fictive-object
	// shuffle drags join maintenance up with N. This test pins the
	// finding: unclamped join maintenance grows markedly while the
	// clamped variant stays flat.
	sizes := []int{1000, 16000}
	unclamped, err := MaintenanceExperiment{
		Sizes: sizes, Ops: 120, Distribution: "uniform", Seed: 62,
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	clamped, err := MaintenanceExperiment{
		Sizes: sizes, Ops: 120, Distribution: "uniform", InteriorTargets: true, Seed: 62,
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	growU := unclamped[1].JoinMaintenance / unclamped[0].JoinMaintenance
	growC := clamped[1].JoinMaintenance / clamped[0].JoinMaintenance
	t.Logf("join maintenance growth 1k->16k: unclamped %.2fx, clamped %.2fx", growU, growC)
	if growU < growC {
		t.Errorf("expected the unclamped hull pile-up to dominate: %.2fx vs %.2fx", growU, growC)
	}
}

func TestMaintenanceExperimentErrors(t *testing.T) {
	if _, err := (MaintenanceExperiment{Sizes: []int{10}, Distribution: "nope"}).Run(); err == nil {
		t.Fatal("unknown distribution must error")
	}
}
