// Package sim is the experiment engine that regenerates the paper's
// evaluation (§5): it grows VoroNet overlays under the paper's object
// distributions, takes checkpoints, measures degree distributions and
// greedy route lengths, and emits the rows/series behind Figures 5–8.
//
// Every experiment is deterministic given its seed, and every knob the
// paper fixes (300 000 objects, checkpoints every 10 000 inserts, 100 000
// route samples) is a parameter here so tests and benchmarks can run
// scaled-down instances of the same code path.
package sim

import (
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"

	"voronet/internal/core"
	"voronet/internal/stats"
	"voronet/internal/workload"
)

// DegreeExperiment reproduces Fig 5: the distribution of |vn(o)| after N
// objects have been inserted under a given distribution.
type DegreeExperiment struct {
	N            int
	Distribution string
	Seed         int64
}

// Run executes the experiment and returns the out-degree histogram.
func (e DegreeExperiment) Run() (*stats.Histogram, error) {
	rng := rand.New(rand.NewSource(e.Seed))
	src := workload.ByName(e.Distribution, rng)
	if src == nil {
		return nil, fmt.Errorf("sim: unknown distribution %q", e.Distribution)
	}
	ov := core.New(core.Config{NMax: e.N, Seed: e.Seed + 1})
	if err := grow(ov, src, e.N); err != nil {
		return nil, err
	}
	h := stats.NewHistogram()
	ov.ForEachObject(func(obj *core.Object) bool {
		d, _ := ov.Degree(obj.ID)
		h.Add(d)
		return true
	})
	return h, nil
}

// RoutePoint is one checkpoint of a route-length experiment.
type RoutePoint struct {
	N        int     // overlay size at the checkpoint
	MeanHops float64 // mean greedy hops over the sampled pairs
	StdHops  float64
	Samples  int
}

// RouteExperiment reproduces one curve of Fig 6 / Fig 8: mean greedy route
// length between random object couples as the overlay grows.
type RouteExperiment struct {
	// MaxN is the final overlay size (paper: 300 000).
	MaxN int
	// Checkpoint is the growth step between measurements (paper: 10 000).
	Checkpoint int
	// Samples is the number of random ordered couples per checkpoint
	// (paper: 100 000; means converge far earlier).
	Samples int
	// Distribution names the workload (see workload.ByName).
	Distribution string
	// LongLinks is the number of long-range links per object (Fig 8).
	LongLinks int
	// LongLinkExponent overrides the harmonic exponent (ablation A3).
	LongLinkExponent float64
	// DisableCloseNeighbours / DisableLongLinks are the ablation knobs.
	DisableCloseNeighbours bool
	DisableLongLinks       bool
	// Workers routes the samples of each checkpoint over this many
	// goroutines (0 = GOMAXPROCS; 1 = sequential). Results are identical
	// regardless of the worker count.
	Workers int
	Seed    int64
}

// Run grows the overlay and measures each checkpoint.
func (e RouteExperiment) Run() ([]RoutePoint, error) {
	if e.Checkpoint <= 0 {
		e.Checkpoint = e.MaxN
	}
	rng := rand.New(rand.NewSource(e.Seed))
	src := workload.ByName(e.Distribution, rng)
	if src == nil {
		return nil, fmt.Errorf("sim: unknown distribution %q", e.Distribution)
	}
	ov := core.New(core.Config{
		NMax:                   e.MaxN,
		LongLinks:              e.LongLinks,
		LongLinkExponent:       e.LongLinkExponent,
		Seed:                   e.Seed + 1,
		DisableCloseNeighbours: e.DisableCloseNeighbours,
		DisableLongLinks:       e.DisableLongLinks,
	})
	measRng := rand.New(rand.NewSource(e.Seed + 2))
	var points []RoutePoint
	for n := e.Checkpoint; n <= e.MaxN; n += e.Checkpoint {
		if err := grow(ov, src, n); err != nil {
			return nil, err
		}
		pairs := make([]core.RoutePair, 0, e.Samples)
		for s := 0; s < e.Samples; s++ {
			a, err := ov.RandomObject(measRng)
			if err != nil {
				return nil, err
			}
			b, err := ov.RandomObject(measRng)
			if err != nil {
				return nil, err
			}
			if a == b {
				continue
			}
			pairs = append(pairs, core.RoutePair{From: a, To: b})
		}
		hops, _, err := ov.MeasureRoutes(pairs, e.Workers)
		if err != nil {
			return nil, err
		}
		var agg stats.Running
		for _, h := range hops {
			agg.Add(float64(h))
		}
		points = append(points, RoutePoint{
			N: ov.Len(), MeanHops: agg.Mean(), StdHops: agg.Std(), Samples: agg.N(),
		})
	}
	return points, nil
}

// grow inserts objects from src until the overlay holds n objects.
func grow(ov *core.Overlay, src workload.Source, n int) error {
	for ov.Len() < n {
		_, err := ov.Insert(src.Next())
		if err != nil && !errors.Is(err, core.ErrDuplicate) {
			return err
		}
	}
	return nil
}

// FitPolylog fits log(H) = x·log(log(N)) + c over the checkpoints — the
// Fig 7 analysis. The returned slope is the paper's exponent x ≈ 2.
func FitPolylog(points []RoutePoint) stats.Fit {
	var xs, ys []float64
	for _, p := range points {
		if p.N < 3 || p.MeanHops <= 0 {
			continue
		}
		xs = append(xs, math.Log(math.Log(float64(p.N))))
		ys = append(ys, math.Log(p.MeanHops))
	}
	return stats.LinearFit(xs, ys)
}

// WriteSeries renders checkpoints as TSV rows "N\tmeanHops\tstdHops",
// the data behind one curve of Fig 6 / Fig 8.
func WriteSeries(w io.Writer, label string, points []RoutePoint) error {
	if _, err := fmt.Fprintf(w, "# %s\n", label); err != nil {
		return err
	}
	for _, p := range points {
		if _, err := fmt.Fprintf(w, "%d\t%.3f\t%.3f\n", p.N, p.MeanHops, p.StdHops); err != nil {
			return err
		}
	}
	return nil
}

// Fig5Distributions are the two panels of Fig 5.
var Fig5Distributions = []string{"uniform", "alpha5"}

// Fig6Distributions are the four curves of Fig 6/7.
var Fig6Distributions = []string{"uniform", "alpha1", "alpha2", "alpha5"}
