package sim

import (
	"math"
	"testing"
)

// Shape tests pinning the paper's qualitative claims at test scale. These
// run the exact code paths of the full-size reproductions in EXPERIMENTS.md
// and fail if a regression changes who wins or where curves bend.

func TestFig5LowAndMidSkewEquivalent(t *testing.T) {
	// §5: "Results for low and mid-sparse distributions are equivalent."
	h1, err := DegreeExperiment{N: 4000, Distribution: "alpha1", Seed: 81}.Run()
	if err != nil {
		t.Fatal(err)
	}
	h2, err := DegreeExperiment{N: 4000, Distribution: "alpha2", Seed: 81}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(h1.Mean()-h2.Mean()) > 0.1 {
		t.Fatalf("alpha1 mean %.3f vs alpha2 mean %.3f", h1.Mean(), h2.Mean())
	}
	m1, _ := h1.Mode()
	m2, _ := h2.Mode()
	if m1 != m2 {
		t.Fatalf("modes differ: %d vs %d", m1, m2)
	}
}

func TestFig8KneeAroundSixLinks(t *testing.T) {
	// Fig 8: "the impact is the most significant up to 6 long range
	// neighbours". Compare marginal gains 1->4 and 6->9 at test scale.
	hops := map[int]float64{}
	for _, k := range []int{1, 4, 6, 9} {
		pts, err := RouteExperiment{
			MaxN: 4000, Samples: 600, Distribution: "uniform",
			LongLinks: k, DisableCloseNeighbours: true, Seed: 82,
		}.Run()
		if err != nil {
			t.Fatal(err)
		}
		hops[k] = pts[len(pts)-1].MeanHops
	}
	if !(hops[1] > hops[4] && hops[4] > hops[6] && hops[6] > hops[9]) {
		t.Fatalf("hops not monotone in k: %v", hops)
	}
	gainEarly := (hops[1] - hops[4]) / 3
	gainLate := (hops[6] - hops[9]) / 3
	if gainEarly <= gainLate {
		t.Fatalf("no diminishing returns: early %.2f/link, late %.2f/link", gainEarly, gainLate)
	}
}

func TestFig7SlopeAtTestScale(t *testing.T) {
	pts, err := RouteExperiment{
		MaxN: 8000, Checkpoint: 1000, Samples: 500,
		Distribution: "uniform", DisableCloseNeighbours: true, Seed: 83,
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	fit := FitPolylog(pts)
	if fit.R2 < 0.8 {
		t.Fatalf("log H vs log log N not linear: R²=%.3f", fit.R2)
	}
	if fit.Slope < 1.2 || fit.Slope < 0 {
		t.Fatalf("slope %.2f too shallow for a log² mechanism", fit.Slope)
	}
	t.Logf("test-scale polylog fit: slope=%.2f R²=%.3f", fit.Slope, fit.R2)
}

func TestWorkersDoNotChangeResults(t *testing.T) {
	// The parallel measurement path must be observationally identical.
	base := RouteExperiment{
		MaxN: 3000, Samples: 400, Distribution: "alpha2",
		DisableCloseNeighbours: true, Seed: 84,
	}
	seq := base
	seq.Workers = 1
	par := base
	par.Workers = 4
	a, err := seq.Run()
	if err != nil {
		t.Fatal(err)
	}
	b, err := par.Run()
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].MeanHops != b[i].MeanHops || a[i].Samples != b[i].Samples {
			t.Fatalf("checkpoint %d: %.3f/%d vs %.3f/%d", i,
				a[i].MeanHops, a[i].Samples, b[i].MeanHops, b[i].Samples)
		}
	}
}
