package kleinberg

import (
	"math"
	"math/rand"
	"testing"
)

func TestRouteArrives(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := New(30, 1, 2, rng)
	for i := 0; i < 200; i++ {
		a := rng.Int31n(int32(g.Nodes()))
		b := rng.Int31n(int32(g.Nodes()))
		h, err := g.Route(a, b)
		if err != nil {
			t.Fatalf("route %d->%d: %v", a, b, err)
		}
		if h > g.dist(a, b)*2+1 && h > 4*g.N {
			t.Fatalf("greedy route absurdly long: %d hops for distance %d", h, g.dist(a, b))
		}
	}
}

func TestRouteNeverLongerThanLattice(t *testing.T) {
	// Long-range contacts only help: the greedy route is never longer than
	// the pure lattice route (greedy lattice distance strictly decreases).
	rng := rand.New(rand.NewSource(2))
	g := New(20, 1, 2, rng)
	for i := 0; i < 200; i++ {
		a := rng.Int31n(int32(g.Nodes()))
		b := rng.Int31n(int32(g.Nodes()))
		h, err := g.Route(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if h > g.dist(a, b) {
			t.Fatalf("route %d hops exceeds lattice distance %d", h, g.dist(a, b))
		}
	}
}

func TestHarmonicExponentBeatsHighExponents(t *testing.T) {
	// Kleinberg's theorem: s = 2 is asymptotically optimal. At feasible
	// test sizes the optimum sits slightly below 2 (a well-known
	// finite-size effect — long jumps are cheap when the grid is small),
	// so we assert only the robust side: s = 2 clearly beats s = 3 and
	// s = 4, whose links are too short to be useful.
	rng := rand.New(rand.NewSource(3))
	n := 100
	mean := func(s float64) float64 {
		g := New(n, 1, s, rng)
		m, err := g.MeanRouteLength(2000, rng)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	m0 := mean(0)
	m2 := mean(2)
	m3 := mean(3)
	m4 := mean(4)
	t.Logf("mean hops: s=0 %.1f, s=2 %.1f, s=3 %.1f, s=4 %.1f", m0, m2, m3, m4)
	if m2 >= m3 {
		t.Fatalf("s=2 (%.1f hops) should beat s=3 (%.1f hops)", m2, m3)
	}
	if m2 >= m4 {
		t.Fatalf("s=2 (%.1f hops) should beat s=4 (%.1f hops)", m2, m4)
	}
}

func TestPolylogScaling(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	// Mean hops should grow far slower than sqrt(nodes): compare n=40 and
	// n=120; lattice scaling would triple the mean, log² scaling adds ~35%.
	rng := rand.New(rand.NewSource(4))
	g1 := New(40, 1, 2, rng)
	g2 := New(120, 1, 2, rng)
	m1, err := g1.MeanRouteLength(1500, rng)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := g2.MeanRouteLength(1500, rng)
	if err != nil {
		t.Fatal(err)
	}
	if m2 > m1*2.2 {
		t.Fatalf("scaling looks polynomial: %.1f -> %.1f hops", m1, m2)
	}
	want := math.Pow(math.Log(float64(g2.Nodes()))/math.Log(float64(g1.Nodes())), 2)
	t.Logf("hops %0.1f -> %0.1f (log² ratio would be %0.2f, got %0.2f)", m1, m2, want, m2/m1)
}

func TestMultipleContacts(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g1 := New(60, 1, 2, rng)
	g4 := New(60, 4, 2, rng)
	m1, err := g1.MeanRouteLength(1500, rng)
	if err != nil {
		t.Fatal(err)
	}
	m4, err := g4.MeanRouteLength(1500, rng)
	if err != nil {
		t.Fatal(err)
	}
	if m4 >= m1 {
		t.Fatalf("4 contacts (%.1f) should beat 1 contact (%.1f)", m4, m1)
	}
	for v := range g4.long {
		if len(g4.long[v]) != 4 {
			t.Fatalf("node %d has %d contacts", v, len(g4.long[v]))
		}
	}
}

func BenchmarkKleinbergRoute(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	g := New(150, 1, 2, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := rng.Int31n(int32(g.Nodes()))
		t := rng.Int31n(int32(g.Nodes()))
		if _, err := g.Route(a, t); err != nil {
			b.Fatal(err)
		}
	}
}
