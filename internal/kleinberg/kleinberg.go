// Package kleinberg implements Kleinberg's small-world grid model (§2.1 of
// the VoroNet paper; Kleinberg, STOC 2000), the baseline VoroNet
// generalises: an n×n lattice where every vertex knows its four lattice
// neighbours plus k long-range contacts drawn with probability proportional
// to d^(-s) in lattice distance. Greedy routing needs Θ(log² n) expected
// hops exactly when s equals the dimension (s = 2).
//
// VoroNet's claim is that it achieves the same bound without the grid:
// benchmarks route both structures side by side on comparable sizes.
package kleinberg

import (
	"fmt"
	"math"
	"math/rand"
)

// Grid is an n×n Kleinberg small-world lattice.
type Grid struct {
	N int // side length
	K int // long-range contacts per node
	S float64

	long [][]int32 // long[v] = long-range contact node indices
}

// NodeID addresses a lattice node as row*N + col.
type NodeID = int32

// New builds the lattice and samples the long-range contacts. The radius
// of each contact is drawn log-uniformly for s = 2 (the same continuous
// trick as VoroNet's Choose-LRT) and by inverse-CDF of r^(1-s) otherwise;
// the angle is uniform. Contacts falling outside the grid are re-sampled.
func New(n, k int, s float64, rng *rand.Rand) *Grid {
	if n < 2 {
		panic("kleinberg: n must be >= 2")
	}
	g := &Grid{N: n, K: k, S: s, long: make([][]int32, n*n)}
	maxR := float64(2 * (n - 1))
	for v := 0; v < n*n; v++ {
		x, y := v%n, v/n
		contacts := make([]int32, 0, k)
		for len(contacts) < k {
			r := sampleRadius(1, maxR, s, rng)
			theta := rng.Float64() * 2 * math.Pi
			tx := x + int(math.Round(r*math.Cos(theta)))
			ty := y + int(math.Round(r*math.Sin(theta)))
			if tx < 0 || tx >= n || ty < 0 || ty >= n {
				continue
			}
			t := int32(ty*n + tx)
			if t == int32(v) {
				continue
			}
			contacts = append(contacts, t)
		}
		g.long[v] = contacts
	}
	return g
}

func sampleRadius(rmin, rmax, s float64, rng *rand.Rand) float64 {
	u := rng.Float64()
	if s == 2 {
		return math.Exp(math.Log(rmin) + u*(math.Log(rmax)-math.Log(rmin)))
	}
	e := 2 - s
	lo := math.Pow(rmin, e)
	hi := math.Pow(rmax, e)
	return math.Pow(lo+u*(hi-lo), 1/e)
}

// Nodes returns the number of lattice nodes.
func (g *Grid) Nodes() int { return g.N * g.N }

// dist is the lattice (Manhattan) distance.
func (g *Grid) dist(a, b int32) int {
	ax, ay := int(a)%g.N, int(a)/g.N
	bx, by := int(b)%g.N, int(b)/g.N
	dx := ax - bx
	if dx < 0 {
		dx = -dx
	}
	dy := ay - by
	if dy < 0 {
		dy = -dy
	}
	return dx + dy
}

// Route greedily forwards from a to b over lattice plus long-range links,
// returning the hop count. Greedy always terminates: a lattice neighbour
// strictly reduces Manhattan distance.
func (g *Grid) Route(a, b int32) (int, error) {
	if a < 0 || int(a) >= g.Nodes() || b < 0 || int(b) >= g.Nodes() {
		return 0, fmt.Errorf("kleinberg: node out of range")
	}
	cur := a
	hops := 0
	for cur != b {
		best := cur
		bestD := g.dist(cur, b)
		step := func(t int32) {
			if d := g.dist(t, b); d < bestD {
				best, bestD = t, d
			}
		}
		x, y := int(cur)%g.N, int(cur)/g.N
		if x > 0 {
			step(cur - 1)
		}
		if x < g.N-1 {
			step(cur + 1)
		}
		if y > 0 {
			step(cur - int32(g.N))
		}
		if y < g.N-1 {
			step(cur + int32(g.N))
		}
		for _, t := range g.long[cur] {
			step(t)
		}
		if best == cur {
			return hops, fmt.Errorf("kleinberg: greedy stalled at %d", cur)
		}
		cur = best
		hops++
	}
	return hops, nil
}

// MeanRouteLength samples `samples` random ordered pairs and returns the
// mean greedy hop count.
func (g *Grid) MeanRouteLength(samples int, rng *rand.Rand) (float64, error) {
	total := 0
	n := int32(g.Nodes())
	for i := 0; i < samples; i++ {
		a := rng.Int31n(n)
		b := rng.Int31n(n)
		h, err := g.Route(a, b)
		if err != nil {
			return 0, err
		}
		total += h
	}
	return float64(total) / float64(samples), nil
}
