package kleinberg

import (
	"math"
	"math/rand"
	"testing"

	"voronet/internal/stats"
)

// TestSampleRadiusFollowsDHarmonicLaw verifies the long-range contact
// radius sampler against the d-harmonic law it implements. In d = 2, a
// contact at lattice distance r is chosen with probability ∝ r^(−s) and
// there are ∝ r candidates at distance r, so the radius density is
// ∝ r^(1−s): log-uniform for the critical exponent s = 2, and CDF
// (r^e − rmin^e)/(rmax^e − rmin^e) with e = 2−s otherwise. The observed
// bucket counts under a fixed seed are χ²-tested against the analytic
// expectation.
func TestSampleRadiusFollowsDHarmonicLaw(t *testing.T) {
	const (
		rmin, rmax = 1.0, 512.0
		samples    = 40000
		buckets    = 16
	)
	// χ² critical value for buckets−1 = 15 degrees of freedom at
	// α = 0.001; a correct sampler under a fixed seed sits far below it.
	const critical = 37.70

	cdf := func(s, r float64) float64 {
		if s == 2 {
			return math.Log(r/rmin) / math.Log(rmax/rmin)
		}
		e := 2 - s
		return (math.Pow(r, e) - math.Pow(rmin, e)) / (math.Pow(rmax, e) - math.Pow(rmin, e))
	}

	for _, s := range []float64{1, 2, 3} {
		rng := rand.New(rand.NewSource(20070326))
		// Log-spaced bucket edges keep every expectation well above the
		// χ²-approximation floor (≥ 5 observations) for all exponents.
		edges := make([]float64, buckets+1)
		for i := range edges {
			edges[i] = rmin * math.Pow(rmax/rmin, float64(i)/buckets)
		}
		observed := make([]float64, buckets)
		for i := 0; i < samples; i++ {
			r := sampleRadius(rmin, rmax, s, rng)
			if r < rmin || r > rmax {
				t.Fatalf("s=%g: radius %g outside [%g,%g]", s, r, rmin, rmax)
			}
			lo, hi := 0, buckets-1
			for lo < hi {
				mid := (lo + hi + 1) / 2
				if r >= edges[mid] {
					lo = mid
				} else {
					hi = mid - 1
				}
			}
			observed[lo]++
		}
		expected := make([]float64, buckets)
		for i := range expected {
			expected[i] = samples * (cdf(s, edges[i+1]) - cdf(s, edges[i]))
			if expected[i] < 5 {
				t.Fatalf("s=%g: bucket %d expectation %.2f too small for χ²", s, i, expected[i])
			}
		}
		chi2 := stats.ChiSquared(observed, expected)
		t.Logf("s=%g: χ² = %.2f (critical %.2f at 15 dof, α=0.001)", s, chi2, critical)
		if chi2 > critical {
			t.Fatalf("s=%g: χ² = %.2f exceeds %.2f — radius sampling does not follow the d-harmonic law", s, chi2, critical)
		}
	}
}

// TestGridContactsRespectExponentShape is a coarse structural check on the
// full contact sampler (radius + angle + grid clipping): under the
// critical exponent the contact distances must spread across scales —
// each factor-of-4 annulus of the reachable range gets a non-trivial
// share — rather than collapse to short range as s = 3 does.
func TestGridContactsRespectExponentShape(t *testing.T) {
	const n, k = 64, 3
	shareBeyond := func(s float64, d int) float64 {
		g := New(n, k, s, rand.New(rand.NewSource(9)))
		far, total := 0, 0
		for v := 0; v < g.Nodes(); v++ {
			for _, c := range g.long[v] {
				total++
				if g.dist(int32(v), c) >= d {
					far++
				}
			}
		}
		return float64(far) / float64(total)
	}
	farAt2 := shareBeyond(2, 16)
	farAt3 := shareBeyond(3, 16)
	if farAt2 < 0.10 {
		t.Fatalf("s=2: only %.3f of contacts reach distance ≥ 16; the small world lost its long range", farAt2)
	}
	if farAt3 > farAt2/2 {
		t.Fatalf("s=3 (%.3f) should be much shorter-ranged than s=2 (%.3f)", farAt3, farAt2)
	}
}
