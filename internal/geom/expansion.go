package geom

import "math"

// Floating-point expansion arithmetic after Shewchuk, "Adaptive Precision
// Floating-Point Arithmetic and Fast Robust Geometric Predicates" (1997).
//
// An expansion is a slice of float64 components of increasing magnitude
// whose exact sum is the represented value, with the components pairwise
// non-overlapping. All operations below preserve that invariant (with zero
// elimination), so the sign of an expansion is the sign of its last
// component. Two_Product uses math.FMA, which is exact and removes the need
// for Shewchuk's splitter.

// twoSum returns x, y with a + b = x + y exactly and x = fl(a+b).
func twoSum(a, b float64) (x, y float64) {
	x = a + b
	bVirt := x - a
	aVirt := x - bVirt
	bRound := b - bVirt
	aRound := a - aVirt
	y = aRound + bRound
	return
}

// fastTwoSum is twoSum under the precondition |a| >= |b|.
func fastTwoSum(a, b float64) (x, y float64) {
	x = a + b
	bVirt := x - a
	y = b - bVirt
	return
}

// twoDiff returns x, y with a - b = x + y exactly and x = fl(a-b).
func twoDiff(a, b float64) (x, y float64) {
	x = a - b
	bVirt := a - x
	aVirt := x + bVirt
	bRound := bVirt - b
	aRound := a - aVirt
	y = aRound + bRound
	return
}

// twoProd returns x, y with a * b = x + y exactly and x = fl(a*b).
func twoProd(a, b float64) (x, y float64) {
	x = a * b
	y = math.FMA(a, b, -x)
	return
}

// expansion is a non-overlapping float64 expansion, components ordered by
// increasing magnitude, zeros eliminated (except the canonical zero {0}).
type expansion []float64

// sign returns -1, 0 or +1 according to the exact sum of e.
func (e expansion) sign() int {
	if len(e) == 0 {
		return 0
	}
	last := e[len(e)-1]
	switch {
	case last > 0:
		return 1
	case last < 0:
		return -1
	default:
		return 0
	}
}

// approx returns a floating-point approximation of the exact sum of e.
func (e expansion) approx() float64 {
	s := 0.0
	for _, c := range e {
		s += c
	}
	return s
}

// newExp2 builds a two-component expansion from the (hi, lo) pair produced
// by twoSum / twoDiff / twoProd.
func newExp2(hi, lo float64) expansion {
	if lo == 0 {
		if hi == 0 {
			return expansion{0}
		}
		return expansion{hi}
	}
	return expansion{lo, hi}
}

// fastExpansionSum returns the exact sum of expansions e and f with zero
// elimination (Shewchuk's FAST_EXPANSION_SUM_ZEROELIM).
func fastExpansionSum(e, f expansion) expansion {
	elen, flen := len(e), len(f)
	if elen == 0 {
		return f
	}
	if flen == 0 {
		return e
	}
	h := make(expansion, 0, elen+flen)
	enow, fnow := e[0], f[0]
	eindex, findex := 0, 0
	var q float64
	if (fnow > enow) == (fnow > -enow) {
		q = enow
		eindex++
	} else {
		q = fnow
		findex++
	}
	var hh float64
	if eindex < elen && findex < flen {
		enow = e[eindex]
		fnow = f[findex]
		if (fnow > enow) == (fnow > -enow) {
			q, hh = fastTwoSum(enow, q)
			eindex++
		} else {
			q, hh = fastTwoSum(fnow, q)
			findex++
		}
		if hh != 0 {
			h = append(h, hh)
		}
		for eindex < elen && findex < flen {
			enow = e[eindex]
			fnow = f[findex]
			if (fnow > enow) == (fnow > -enow) {
				q, hh = twoSum(q, enow)
				eindex++
			} else {
				q, hh = twoSum(q, fnow)
				findex++
			}
			if hh != 0 {
				h = append(h, hh)
			}
		}
	}
	for eindex < elen {
		q, hh = twoSum(q, e[eindex])
		eindex++
		if hh != 0 {
			h = append(h, hh)
		}
	}
	for findex < flen {
		q, hh = twoSum(q, f[findex])
		findex++
		if hh != 0 {
			h = append(h, hh)
		}
	}
	if q != 0 || len(h) == 0 {
		h = append(h, q)
	}
	return h
}

// scaleExpansion returns the exact product e · b with zero elimination
// (Shewchuk's SCALE_EXPANSION_ZEROELIM).
func scaleExpansion(e expansion, b float64) expansion {
	if len(e) == 0 || b == 0 {
		return expansion{0}
	}
	h := make(expansion, 0, 2*len(e))
	q, hh := twoProd(e[0], b)
	if hh != 0 {
		h = append(h, hh)
	}
	for i := 1; i < len(e); i++ {
		p1, p0 := twoProd(e[i], b)
		var sum float64
		sum, hh = twoSum(q, p0)
		if hh != 0 {
			h = append(h, hh)
		}
		q, hh = fastTwoSum(p1, sum)
		if hh != 0 {
			h = append(h, hh)
		}
	}
	if q != 0 || len(h) == 0 {
		h = append(h, q)
	}
	return h
}

// mulExpansion returns the exact product of two expansions by distributing
// scaleExpansion over the components of the shorter operand.
func mulExpansion(e, f expansion) expansion {
	if len(f) > len(e) {
		e, f = f, e
	}
	acc := expansion{0}
	for _, c := range f {
		if c == 0 {
			continue
		}
		acc = fastExpansionSum(acc, scaleExpansion(e, c))
	}
	return acc
}

// negExpansion returns -e.
func negExpansion(e expansion) expansion {
	h := make(expansion, len(e))
	for i, c := range e {
		h[i] = -c
	}
	return h
}

// subExpansion returns the exact difference e - f.
func subExpansion(e, f expansion) expansion {
	return fastExpansionSum(e, negExpansion(f))
}
