// Package geom provides the 2-D geometric primitives and robust predicates
// that the VoroNet substrate is built on.
//
// The two predicates that decide the topology of a Delaunay triangulation —
// Orient2D and InCircle — are evaluated adaptively: a fast floating-point
// path guarded by a forward error bound (Shewchuk's "A" filter), falling
// back to exact floating-point expansion arithmetic when the filter cannot
// certify the sign. This makes the triangulation, and therefore the VoroNet
// overlay state derived from it, immune to the calculation degeneracy the
// paper addresses via Sugihara–Iri [13]: duplicated, collinear and
// co-circular sites never corrupt the structure.
package geom

import "math"

// Point is a site in the 2-D attribute space. VoroNet positions live in the
// unit square [0,1]×[0,1], but nothing in this package assumes that: long
// range targets (Choose-LRT) may land outside it.
type Point struct {
	X, Y float64
}

// Pt is shorthand for Point{x, y}.
func Pt(x, y float64) Point { return Point{x, y} }

// Add returns p + q (componentwise).
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p - q (componentwise).
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by s.
func (p Point) Scale(s float64) Point { return Point{p.X * s, p.Y * s} }

// Dot returns the dot product p·q.
func (p Point) Dot(q Point) float64 { return p.X*q.X + p.Y*q.Y }

// Cross returns the 2-D cross product p×q = p.X·q.Y − p.Y·q.X.
func (p Point) Cross(q Point) float64 { return p.X*q.Y - p.Y*q.X }

// Norm returns the Euclidean length of p viewed as a vector.
func (p Point) Norm() float64 { return math.Hypot(p.X, p.Y) }

// Dist returns the Euclidean distance between p and q.
func Dist(p, q Point) float64 { return math.Hypot(p.X-q.X, p.Y-q.Y) }

// Dist2 returns the squared Euclidean distance between p and q. Prefer it
// for comparisons: it is exact-enough, monotone in Dist and avoids the
// square root.
func Dist2(p, q Point) float64 {
	dx := p.X - q.X
	dy := p.Y - q.Y
	return dx*dx + dy*dy
}

// InUnitSquare reports whether p lies in the closed unit square, the
// attribute domain used throughout the paper.
func (p Point) InUnitSquare() bool {
	return p.X >= 0 && p.X <= 1 && p.Y >= 0 && p.Y <= 1
}

// ClampUnitSquare returns p clamped to the closed unit square.
func (p Point) ClampUnitSquare() Point {
	return Point{math.Min(1, math.Max(0, p.X)), math.Min(1, math.Max(0, p.Y))}
}

// Circumcenter returns the circumcentre of triangle abc, i.e. the Voronoi
// vertex dual to the Delaunay face abc. ok is false when the points are
// (numerically) collinear and no finite circumcentre exists.
//
// The computation is translated to the origin at a for accuracy; it is not
// exact, which is fine: circumcentres parameterise Voronoi cell *geometry*
// (drawing, DistanceToRegion) while all topological decisions go through
// the exact predicates.
func Circumcenter(a, b, c Point) (Point, bool) {
	bx := b.X - a.X
	by := b.Y - a.Y
	cx := c.X - a.X
	cy := c.Y - a.Y
	d := 2 * (bx*cy - by*cx)
	if d == 0 {
		return Point{}, false
	}
	b2 := bx*bx + by*by
	c2 := cx*cx + cy*cy
	ux := (cy*b2 - by*c2) / d
	uy := (bx*c2 - cx*b2) / d
	return Point{a.X + ux, a.Y + uy}, true
}

// ClosestPointOnSegment returns the point of segment [a,b] closest to p.
func ClosestPointOnSegment(p, a, b Point) Point {
	ab := b.Sub(a)
	den := ab.Dot(ab)
	if den == 0 {
		return a
	}
	t := p.Sub(a).Dot(ab) / den
	if t <= 0 {
		return a
	}
	if t >= 1 {
		return b
	}
	return a.Add(ab.Scale(t))
}

// SegmentIntersectsDisk reports whether segment [a,b] intersects the closed
// disk of centre c and radius r.
func SegmentIntersectsDisk(a, b, c Point, r float64) bool {
	q := ClosestPointOnSegment(c, a, b)
	return Dist2(q, c) <= r*r
}

// ConvexPolygonIntersectsSegment reports whether a convex counterclockwise
// polygon and segment [a,b] intersect, via separating-axis tests over the
// polygon edge normals and the segment normal.
func ConvexPolygonIntersectsSegment(poly []Point, a, b Point) bool {
	if len(poly) < 3 {
		return false
	}
	test := func(ax Point) bool {
		minP, maxP := math.Inf(1), math.Inf(-1)
		for _, p := range poly {
			v := ax.Dot(p)
			minP = math.Min(minP, v)
			maxP = math.Max(maxP, v)
		}
		sa, sb := ax.Dot(a), ax.Dot(b)
		minS, maxS := math.Min(sa, sb), math.Max(sa, sb)
		return maxP < minS || maxS < minP
	}
	for i := range poly {
		e := poly[(i+1)%len(poly)].Sub(poly[i])
		if test(Pt(-e.Y, e.X)) {
			return false
		}
	}
	d := b.Sub(a)
	return !test(Pt(-d.Y, d.X))
}
