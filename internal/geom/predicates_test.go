package geom

import (
	"math"
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

// ratOrient2D is a reference implementation of Orient2D over exact
// rationals. Every float64 is exactly representable as a big.Rat, so this is
// ground truth.
func ratOrient2D(a, b, c Point) int {
	ax := new(big.Rat).SetFloat64(a.X)
	ay := new(big.Rat).SetFloat64(a.Y)
	bx := new(big.Rat).SetFloat64(b.X)
	by := new(big.Rat).SetFloat64(b.Y)
	cx := new(big.Rat).SetFloat64(c.X)
	cy := new(big.Rat).SetFloat64(c.Y)

	l := new(big.Rat).Mul(new(big.Rat).Sub(ax, cx), new(big.Rat).Sub(by, cy))
	r := new(big.Rat).Mul(new(big.Rat).Sub(ay, cy), new(big.Rat).Sub(bx, cx))
	return l.Cmp(r)
}

// ratInCircle is a reference implementation of InCircle over exact
// rationals.
func ratInCircle(a, b, c, d Point) int {
	toRat := func(f float64) *big.Rat { return new(big.Rat).SetFloat64(f) }
	dx := toRat(d.X)
	dy := toRat(d.Y)
	col := func(p Point) (x, y, lift *big.Rat) {
		x = new(big.Rat).Sub(toRat(p.X), dx)
		y = new(big.Rat).Sub(toRat(p.Y), dy)
		lift = new(big.Rat).Add(new(big.Rat).Mul(x, x), new(big.Rat).Mul(y, y))
		return
	}
	ax, ay, al := col(a)
	bx, by, bl := col(b)
	cx, cy, cl := col(c)

	// det = al*(bx*cy-by*cx) - bl*(ax*cy-ay*cx) + cl*(ax*by-ay*bx)
	m1 := new(big.Rat).Sub(new(big.Rat).Mul(bx, cy), new(big.Rat).Mul(by, cx))
	m2 := new(big.Rat).Sub(new(big.Rat).Mul(ax, cy), new(big.Rat).Mul(ay, cx))
	m3 := new(big.Rat).Sub(new(big.Rat).Mul(ax, by), new(big.Rat).Mul(ay, bx))
	det := new(big.Rat).Mul(al, m1)
	det.Sub(det, new(big.Rat).Mul(bl, m2))
	det.Add(det, new(big.Rat).Mul(cl, m3))
	return det.Sign()
}

func TestOrient2DBasic(t *testing.T) {
	a, b := Pt(0, 0), Pt(1, 0)
	if got := Orient2D(a, b, Pt(0, 1)); got != 1 {
		t.Errorf("ccw triple: got %d, want 1", got)
	}
	if got := Orient2D(a, b, Pt(0, -1)); got != -1 {
		t.Errorf("cw triple: got %d, want -1", got)
	}
	if got := Orient2D(a, b, Pt(2, 0)); got != 0 {
		t.Errorf("collinear triple: got %d, want 0", got)
	}
	if got := Orient2D(a, b, b); got != 0 {
		t.Errorf("duplicate point: got %d, want 0", got)
	}
}

func TestOrient2DExactCollinear(t *testing.T) {
	// Dyadic coordinates: p, p+d, p+2d computed without any rounding, so the
	// triple is exactly collinear and only the exact path can certify it.
	p := Pt(0.5, 0.25)
	d := Pt(0.25, 0.125)
	q := p.Add(d)
	r := p.Add(d.Scale(2))
	if got := Orient2D(p, q, r); got != 0 {
		t.Errorf("exactly collinear: got %d, want 0", got)
	}
}

func TestOrient2DNearDegenerate(t *testing.T) {
	// Shewchuk's classic stress: points nearly collinear, differing by one ulp.
	base := Pt(12.0, 12.0)
	for i := 0; i < 64; i++ {
		for j := 0; j < 64; j++ {
			a := Pt(0.5+float64(i)*epsilon, 0.5+float64(i)*epsilon)
			b := base
			c := Pt(24.0+float64(j)*epsilon, 24.0+float64(j)*epsilon)
			want := ratOrient2D(a, b, c)
			if got := Orient2D(a, b, c); got != want {
				t.Fatalf("Orient2D(%v,%v,%v) = %d, want %d", a, b, c, got, want)
			}
		}
	}
}

func TestInCircleBasic(t *testing.T) {
	// Unit circle through (1,0), (0,1), (-1,0) (ccw).
	a, b, c := Pt(1, 0), Pt(0, 1), Pt(-1, 0)
	if got := InCircle(a, b, c, Pt(0, 0)); got != 1 {
		t.Errorf("centre: got %d, want 1 (inside)", got)
	}
	if got := InCircle(a, b, c, Pt(2, 2)); got != -1 {
		t.Errorf("far point: got %d, want -1 (outside)", got)
	}
	if got := InCircle(a, b, c, Pt(0, -1)); got != 0 {
		t.Errorf("co-circular point: got %d, want 0", got)
	}
}

func TestInCircleCocircularGrid(t *testing.T) {
	// The four corners of any axis-aligned square are co-circular. Grid
	// workloads (jittered Zipf) produce these; the predicate must return 0.
	for _, s := range []float64{1, 0.5, 1.0 / 3.0, 1e-9} {
		a, b, c, d := Pt(0, 0), Pt(s, 0), Pt(s, s), Pt(0, s)
		if got := InCircle(a, b, c, d); got != 0 {
			t.Errorf("square side %g: got %d, want 0", s, got)
		}
	}
}

func TestPredicatesMatchExactReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	gen := func() Point {
		// Mix of scales, including clustered coordinates that defeat the
		// floating-point filter.
		switch rng.Intn(3) {
		case 0:
			return Pt(rng.Float64(), rng.Float64())
		case 1:
			base := 0.5
			return Pt(base+rng.Float64()*1e-12, base+rng.Float64()*1e-12)
		default:
			// Exact grid points: guaranteed collinear/co-circular cases.
			return Pt(float64(rng.Intn(4))*0.25, float64(rng.Intn(4))*0.25)
		}
	}
	for i := 0; i < 20000; i++ {
		a, b, c, d := gen(), gen(), gen(), gen()
		if got, want := Orient2D(a, b, c), ratOrient2D(a, b, c); got != want {
			t.Fatalf("Orient2D(%v,%v,%v) = %d, want %d", a, b, c, got, want)
		}
		if got, want := InCircle(a, b, c, d), ratInCircle(a, b, c, d); got != want {
			t.Fatalf("InCircle(%v,%v,%v,%v) = %d, want %d", a, b, c, d, got, want)
		}
	}
}

func TestOrient2DAntisymmetry(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy float64) bool {
		a, b, c := Pt(ax, ay), Pt(bx, by), Pt(cx, cy)
		if !finitePts(a, b, c) {
			return true
		}
		return Orient2D(a, b, c) == -Orient2D(b, a, c) &&
			Orient2D(a, b, c) == Orient2D(b, c, a)
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestInCircleSymmetry(t *testing.T) {
	// InCircle is invariant under cyclic permutation of the triangle and
	// flips sign when the triangle orientation flips.
	f := func(ax, ay, bx, by, cx, cy, dx, dy float64) bool {
		a, b, c, d := Pt(ax, ay), Pt(bx, by), Pt(cx, cy), Pt(dx, dy)
		if !finitePts(a, b, c, d) {
			return true
		}
		s := InCircle(a, b, c, d)
		return s == InCircle(b, c, a, d) && s == -InCircle(b, a, c, d)
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestExpansionArithmetic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		a := rng.NormFloat64()
		b := rng.NormFloat64()
		x, y := twoSum(a, b)
		if ratNE(ratAdd(a, b), ratAdd(x, y)) {
			t.Fatalf("twoSum(%g,%g) not exact", a, b)
		}
		x, y = twoDiff(a, b)
		if ratNE(ratSub(a, b), ratAdd(x, y)) {
			t.Fatalf("twoDiff(%g,%g) not exact", a, b)
		}
		x, y = twoProd(a, b)
		if ratNE(ratMul(a, b), ratAdd(x, y)) {
			t.Fatalf("twoProd(%g,%g) not exact", a, b)
		}
	}
}

func TestExpansionSumAndScale(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 500; i++ {
		e := newExp2(twoProd(rng.NormFloat64(), rng.NormFloat64()))
		f := newExp2(twoProd(rng.NormFloat64(), rng.NormFloat64()))
		sum := fastExpansionSum(e, f)
		if ratNE(ratOfExp(sum), new(big.Rat).Add(ratOfExp(e), ratOfExp(f))) {
			t.Fatalf("fastExpansionSum wrong for %v + %v", e, f)
		}
		s := rng.NormFloat64()
		sc := scaleExpansion(e, s)
		if ratNE(ratOfExp(sc), new(big.Rat).Mul(ratOfExp(e), new(big.Rat).SetFloat64(s))) {
			t.Fatalf("scaleExpansion wrong for %v * %g", e, s)
		}
		prod := mulExpansion(e, f)
		if ratNE(ratOfExp(prod), new(big.Rat).Mul(ratOfExp(e), ratOfExp(f))) {
			t.Fatalf("mulExpansion wrong for %v * %v", e, f)
		}
	}
}

func TestCircumcenter(t *testing.T) {
	a, b, c := Pt(0, 0), Pt(2, 0), Pt(0, 2)
	cc, ok := Circumcenter(a, b, c)
	if !ok {
		t.Fatal("circumcenter of right triangle must exist")
	}
	if math.Abs(cc.X-1) > 1e-12 || math.Abs(cc.Y-1) > 1e-12 {
		t.Errorf("got %v, want (1,1)", cc)
	}
	if _, ok := Circumcenter(Pt(0, 0), Pt(1, 1), Pt(2, 2)); ok {
		t.Error("collinear points must not have a circumcentre")
	}
}

func TestCircumcenterEquidistant(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy float64) bool {
		a := Pt(math.Mod(math.Abs(ax), 1), math.Mod(math.Abs(ay), 1))
		b := Pt(math.Mod(math.Abs(bx), 1), math.Mod(math.Abs(by), 1))
		c := Pt(math.Mod(math.Abs(cx), 1), math.Mod(math.Abs(cy), 1))
		if !finitePts(a, b, c) || Orient2D(a, b, c) == 0 {
			return true
		}
		cc, ok := Circumcenter(a, b, c)
		if !ok {
			return false
		}
		ra, rb, rc := Dist(cc, a), Dist(cc, b), Dist(cc, c)
		tol := 1e-6 * (1 + ra)
		return math.Abs(ra-rb) < tol && math.Abs(ra-rc) < tol
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestClosestPointOnSegment(t *testing.T) {
	a, b := Pt(0, 0), Pt(10, 0)
	cases := []struct {
		p, want Point
	}{
		{Pt(5, 3), Pt(5, 0)},
		{Pt(-4, 2), Pt(0, 0)},
		{Pt(14, -2), Pt(10, 0)},
		{Pt(0, 0), Pt(0, 0)},
	}
	for _, tc := range cases {
		if got := ClosestPointOnSegment(tc.p, a, b); Dist(got, tc.want) > 1e-12 {
			t.Errorf("ClosestPointOnSegment(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
	// Degenerate segment.
	if got := ClosestPointOnSegment(Pt(3, 4), a, a); got != a {
		t.Errorf("degenerate segment: got %v, want %v", got, a)
	}
}

func TestSegmentIntersectsDisk(t *testing.T) {
	a, b := Pt(0, 0), Pt(10, 0)
	if !SegmentIntersectsDisk(a, b, Pt(5, 1), 1.5) {
		t.Error("disk overlapping the middle must intersect")
	}
	if SegmentIntersectsDisk(a, b, Pt(5, 3), 1.5) {
		t.Error("distant disk must not intersect")
	}
	if !SegmentIntersectsDisk(a, b, Pt(-1, 0), 1.0) {
		t.Error("disk touching endpoint must intersect")
	}
}

// --- helpers ---

func quickCfg() *quick.Config {
	return &quick.Config{
		MaxCount: 300,
		Rand:     rand.New(rand.NewSource(1)),
		Values:   nil,
	}
}

func finitePts(ps ...Point) bool {
	for _, p := range ps {
		if math.IsNaN(p.X) || math.IsInf(p.X, 0) || math.IsNaN(p.Y) || math.IsInf(p.Y, 0) {
			return false
		}
		// Keep magnitudes sane so reference computations stay fast.
		if math.Abs(p.X) > 1e30 || math.Abs(p.Y) > 1e30 {
			return false
		}
	}
	return true
}

func ratAdd(a, b float64) *big.Rat {
	return new(big.Rat).Add(new(big.Rat).SetFloat64(a), new(big.Rat).SetFloat64(b))
}
func ratSub(a, b float64) *big.Rat {
	return new(big.Rat).Sub(new(big.Rat).SetFloat64(a), new(big.Rat).SetFloat64(b))
}
func ratMul(a, b float64) *big.Rat {
	return new(big.Rat).Mul(new(big.Rat).SetFloat64(a), new(big.Rat).SetFloat64(b))
}
func ratOfExp(e expansion) *big.Rat {
	s := new(big.Rat)
	for _, c := range e {
		s.Add(s, new(big.Rat).SetFloat64(c))
	}
	return s
}
func ratNE(a, b *big.Rat) bool { return a.Cmp(b) != 0 }

func BenchmarkOrient2DFastPath(b *testing.B) {
	p, q, r := Pt(0.1, 0.2), Pt(0.9, 0.3), Pt(0.4, 0.8)
	for i := 0; i < b.N; i++ {
		Orient2D(p, q, r)
	}
}

func BenchmarkOrient2DExactPath(b *testing.B) {
	p := Pt(0.1, 0.7)
	d := Pt(0.25, 0.125)
	q := p.Add(d)
	r := p.Add(d.Scale(2))
	for i := 0; i < b.N; i++ {
		Orient2D(p, q, r)
	}
}

func BenchmarkInCircleFastPath(b *testing.B) {
	for i := 0; i < b.N; i++ {
		InCircle(Pt(1, 0), Pt(0, 1), Pt(-1, 0), Pt(0.3, 0.2))
	}
}

func BenchmarkInCircleExactPath(b *testing.B) {
	a, c, d, e := Pt(0, 0), Pt(1, 0), Pt(1, 1), Pt(0, 1)
	for i := 0; i < b.N; i++ {
		InCircle(a, c, d, e)
	}
}
