package geom

import "math"

// Error-bound coefficients for the floating-point filters, after Shewchuk.
// epsilon is half an ulp of 1.0 (2^-53): the largest power of two such that
// 1.0 + epsilon rounds to 1.0 under round-to-nearest.
const (
	epsilon = 1.0 / (1 << 53)

	ccwErrBoundA = (3.0 + 16.0*epsilon) * epsilon
	iccErrBoundA = (10.0 + 96.0*epsilon) * epsilon
)

// Counters for observability in tests and benchmarks: how often the exact
// fallback fired. They are not synchronised; treat them as best-effort
// diagnostics (the simulator is single-goroutine per overlay).
var (
	// Orient2DExactCount counts exact-arithmetic fallbacks of Orient2D.
	Orient2DExactCount uint64
	// InCircleExactCount counts exact-arithmetic fallbacks of InCircle.
	InCircleExactCount uint64
)

// Orient2D returns the orientation of the ordered triple (a, b, c):
//
//	+1 if they make a counterclockwise turn (c lies left of a→b),
//	-1 if they make a clockwise turn,
//	 0 if they are exactly collinear.
//
// The result is the exact sign of the determinant
//
//	| a.X-c.X  a.Y-c.Y |
//	| b.X-c.X  b.Y-c.Y |
func Orient2D(a, b, c Point) int {
	detLeft := (a.X - c.X) * (b.Y - c.Y)
	detRight := (a.Y - c.Y) * (b.X - c.X)
	det := detLeft - detRight

	var detSum float64
	switch {
	case detLeft > 0:
		if detRight <= 0 {
			return signOf(det)
		}
		detSum = detLeft + detRight
	case detLeft < 0:
		if detRight >= 0 {
			return signOf(det)
		}
		detSum = -detLeft - detRight
	default:
		// detLeft == 0: det == -detRight computed exactly.
		return signOf(det)
	}

	errBound := ccwErrBoundA * detSum
	if det >= errBound || -det >= errBound {
		return signOf(det)
	}
	Orient2DExactCount++
	return orient2DExact(a, b, c)
}

// orient2DExact evaluates the orientation determinant with exact expansion
// arithmetic.
func orient2DExact(a, b, c Point) int {
	acx := newExp2(twoDiff(a.X, c.X))
	bcy := newExp2(twoDiff(b.Y, c.Y))
	acy := newExp2(twoDiff(a.Y, c.Y))
	bcx := newExp2(twoDiff(b.X, c.X))
	left := mulExpansion(acx, bcy)
	right := mulExpansion(acy, bcx)
	return subExpansion(left, right).sign()
}

// InCircle returns the position of d relative to the circle through a, b, c:
//
//	+1 if d lies strictly inside the circumcircle of the
//	   counterclockwise-oriented triangle abc,
//	-1 if strictly outside,
//	 0 if exactly on the circle.
//
// If abc is clockwise the sign is reversed (standard determinant symmetry);
// callers in this module always pass counterclockwise triangles.
func InCircle(a, b, c, d Point) int {
	adx := a.X - d.X
	bdx := b.X - d.X
	cdx := c.X - d.X
	ady := a.Y - d.Y
	bdy := b.Y - d.Y
	cdy := c.Y - d.Y

	bdxcdy := bdx * cdy
	cdxbdy := cdx * bdy
	alift := adx*adx + ady*ady

	cdxady := cdx * ady
	adxcdy := adx * cdy
	blift := bdx*bdx + bdy*bdy

	adxbdy := adx * bdy
	bdxady := bdx * ady
	clift := cdx*cdx + cdy*cdy

	det := alift*(bdxcdy-cdxbdy) + blift*(cdxady-adxcdy) + clift*(adxbdy-bdxady)

	permanent := (math.Abs(bdxcdy)+math.Abs(cdxbdy))*alift +
		(math.Abs(cdxady)+math.Abs(adxcdy))*blift +
		(math.Abs(adxbdy)+math.Abs(bdxady))*clift
	errBound := iccErrBoundA * permanent
	if det > errBound || -det > errBound {
		return signOf(det)
	}
	InCircleExactCount++
	return inCircleExact(a, b, c, d)
}

// inCircleExact evaluates the incircle determinant with exact expansion
// arithmetic:
//
//	det = (adx·bdy − ady·bdx)·(cdx²+cdy²)
//	    + (bdx·cdy − bdy·cdx)·(adx²+ady²)
//	    + (cdx·ady − cdy·adx)·(bdx²+bdy²)
func inCircleExact(a, b, c, d Point) int {
	adx := newExp2(twoDiff(a.X, d.X))
	ady := newExp2(twoDiff(a.Y, d.Y))
	bdx := newExp2(twoDiff(b.X, d.X))
	bdy := newExp2(twoDiff(b.Y, d.Y))
	cdx := newExp2(twoDiff(c.X, d.X))
	cdy := newExp2(twoDiff(c.Y, d.Y))

	ab := subExpansion(mulExpansion(adx, bdy), mulExpansion(ady, bdx))
	bc := subExpansion(mulExpansion(bdx, cdy), mulExpansion(bdy, cdx))
	ca := subExpansion(mulExpansion(cdx, ady), mulExpansion(cdy, adx))

	aLift := fastExpansionSum(mulExpansion(adx, adx), mulExpansion(ady, ady))
	bLift := fastExpansionSum(mulExpansion(bdx, bdx), mulExpansion(bdy, bdy))
	cLift := fastExpansionSum(mulExpansion(cdx, cdx), mulExpansion(cdy, cdy))

	det := fastExpansionSum(
		fastExpansionSum(mulExpansion(ab, cLift), mulExpansion(bc, aLift)),
		mulExpansion(ca, bLift),
	)
	return det.sign()
}

func signOf(x float64) int {
	switch {
	case x > 0:
		return 1
	case x < 0:
		return -1
	default:
		return 0
	}
}
