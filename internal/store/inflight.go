package store

import (
	"sync"
	"time"

	"voronet/internal/proto"
)

// Reply is the outcome of one routed store operation, delivered to the
// callback registered with Inflight.Add.
type Reply struct {
	// Found reports whether the key had a live record (GET) or the
	// operation was applied (PUT / DELETE ack).
	Found bool
	// Value is the record payload (GET only).
	Value []byte
	// Version is the version acted upon.
	Version uint64
	// Owner is the node that answered.
	Owner proto.NodeInfo
	// Hops is the greedy route length the request travelled.
	Hops int
	// Path is the per-hop routing trace, populated only for traced
	// operations (Node.GetTrace): one entry per node the request
	// visited, ending with the answering owner or replica.
	Path []proto.TraceHop
	// Err is ErrTimeout when the reply deadline passed, nil otherwise.
	Err error
}

// Inflight correlates routed store requests with their replies: each
// request gets a fresh ID carried in the envelope's QueryID field, and the
// reply (or a timeout) resolves it exactly once.
type Inflight struct {
	mu      sync.Mutex
	seq     uint64
	pending map[uint64]*pendingReq
}

type pendingReq struct {
	cb    func(Reply)
	timer *time.Timer
}

// NewInflight returns an empty correlation table.
func NewInflight() *Inflight {
	return &Inflight{pending: make(map[uint64]*pendingReq)}
}

// Add registers cb and returns the request ID to route with. If timeout is
// positive and no reply resolves the ID in time, cb fires with
// Reply{Err: ErrTimeout}.
func (f *Inflight) Add(cb func(Reply), timeout time.Duration) uint64 {
	f.mu.Lock()
	f.seq++
	id := f.seq
	req := &pendingReq{cb: cb}
	f.pending[id] = req
	if timeout > 0 {
		req.timer = time.AfterFunc(timeout, func() {
			f.Resolve(id, Reply{Err: ErrTimeout})
		})
	}
	f.mu.Unlock()
	return id
}

// Resolve fires the callback registered under id with r and forgets the
// request. It reports whether id was pending (late or duplicate replies
// return false and are dropped).
func (f *Inflight) Resolve(id uint64, r Reply) bool {
	f.mu.Lock()
	req, ok := f.pending[id]
	delete(f.pending, id)
	f.mu.Unlock()
	if !ok {
		return false
	}
	if req.timer != nil {
		req.timer.Stop()
	}
	req.cb(r)
	return true
}

// Cancel forgets the request registered under id without firing its
// callback and reports whether it was still pending. Use it when the
// request could not be dispatched at all (a failed send): the caller
// already owns the error and no reply or timeout should fire for the ID.
func (f *Inflight) Cancel(id uint64) bool {
	f.mu.Lock()
	req, ok := f.pending[id]
	delete(f.pending, id)
	f.mu.Unlock()
	if !ok {
		return false
	}
	if req.timer != nil {
		req.timer.Stop()
	}
	return true
}

// Pending returns the number of unresolved requests.
func (f *Inflight) Pending() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.pending)
}
