package store

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"voronet/internal/geom"
	"voronet/internal/proto"
)

func TestLocalPutGetDelete(t *testing.T) {
	l := NewLocal()
	k := geom.Pt(0.3, 0.7)
	if _, ok := l.Get(k); ok {
		t.Fatal("empty store must miss")
	}
	r1 := l.Put(k, []byte("one"))
	if r1.Version != 1 {
		t.Fatalf("first version = %d", r1.Version)
	}
	got, ok := l.Get(k)
	if !ok || !bytes.Equal(got.Value, []byte("one")) {
		t.Fatalf("get after put: %+v ok=%v", got, ok)
	}
	r2 := l.Put(k, []byte("two"))
	if r2.Version != 2 {
		t.Fatalf("second version = %d", r2.Version)
	}
	tomb, ok := l.Delete(k)
	if !ok || !tomb.Deleted || tomb.Version != 3 {
		t.Fatalf("delete: %+v ok=%v", tomb, ok)
	}
	if _, ok := l.Get(k); ok {
		t.Fatal("tombstoned key must miss")
	}
	if _, ok := l.Lookup(k); !ok {
		t.Fatal("tombstone must remain visible to Lookup")
	}
	if _, ok := l.Delete(k); ok {
		t.Fatal("double delete must report not found")
	}
	// A put over the tombstone resurrects with a higher version.
	r4 := l.Put(k, []byte("three"))
	if r4.Version != 4 || r4.Deleted {
		t.Fatalf("resurrect: %+v", r4)
	}
	if l.Len() != 1 {
		t.Fatalf("live records = %d", l.Len())
	}
}

func TestLocalApplyNewerWins(t *testing.T) {
	l := NewLocal()
	k := geom.Pt(0.1, 0.2)
	if !l.Apply(proto.StoreRecord{Key: k, Value: []byte("v3"), Version: 3}) {
		t.Fatal("fresh apply must change state")
	}
	if l.Apply(proto.StoreRecord{Key: k, Value: []byte("v2"), Version: 2}) {
		t.Fatal("stale apply must be dropped")
	}
	if l.Apply(proto.StoreRecord{Key: k, Value: []byte("v3b"), Version: 3}) {
		t.Fatal("equal-version apply must keep the resident record")
	}
	got, _ := l.Get(k)
	if !bytes.Equal(got.Value, []byte("v3")) {
		t.Fatalf("value after merges: %q", got.Value)
	}
	// A newer tombstone shadows the value; an even newer value resurrects.
	if !l.Apply(proto.StoreRecord{Key: k, Version: 4, Deleted: true}) {
		t.Fatal("newer tombstone must apply")
	}
	if _, ok := l.Get(k); ok {
		t.Fatal("tombstone must hide the value")
	}
	// Put continues the version chain past the tombstone.
	if r := l.Put(k, []byte("v5")); r.Version != 5 {
		t.Fatalf("put over tombstone: %+v", r)
	}
}

func TestLocalCollect(t *testing.T) {
	l := NewLocal()
	l.Put(geom.Pt(0.1, 0.1), []byte("a"))
	l.Put(geom.Pt(0.9, 0.9), []byte("b"))
	l.Delete(geom.Pt(0.9, 0.9))
	left := l.Collect(func(k geom.Point) bool { return k.X < 0.5 })
	if len(left) != 1 || left[0].Deleted {
		t.Fatalf("collect left: %+v", left)
	}
	right := l.Collect(func(k geom.Point) bool { return k.X > 0.5 })
	if len(right) != 1 || !right[0].Deleted {
		t.Fatalf("collect must include tombstones: %+v", right)
	}
	if n := len(l.Snapshot()); n != 2 {
		t.Fatalf("snapshot size = %d", n)
	}
	l.Clear()
	if n := len(l.Snapshot()); n != 0 {
		t.Fatalf("snapshot after clear = %d", n)
	}
}

func TestInflightResolve(t *testing.T) {
	f := NewInflight()
	var got Reply
	id := f.Add(func(r Reply) { got = r }, 0)
	if f.Pending() != 1 {
		t.Fatalf("pending = %d", f.Pending())
	}
	if !f.Resolve(id, Reply{Found: true, Value: []byte("x"), Hops: 4}) {
		t.Fatal("resolve must find the request")
	}
	if !got.Found || got.Hops != 4 || !bytes.Equal(got.Value, []byte("x")) {
		t.Fatalf("reply: %+v", got)
	}
	if f.Resolve(id, Reply{}) {
		t.Fatal("duplicate resolve must be dropped")
	}
	if f.Pending() != 0 {
		t.Fatalf("pending after resolve = %d", f.Pending())
	}
}

func TestInflightTimeout(t *testing.T) {
	f := NewInflight()
	done := make(chan Reply, 1)
	f.Add(func(r Reply) { done <- r }, 10*time.Millisecond)
	select {
	case r := <-done:
		if r.Err != ErrTimeout {
			t.Fatalf("timeout reply: %+v", r)
		}
	case <-time.After(time.Second):
		t.Fatal("timeout never fired")
	}
	if f.Pending() != 0 {
		t.Fatalf("pending after timeout = %d", f.Pending())
	}
}

func TestLocalConcurrentAccess(t *testing.T) {
	l := NewLocal()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			k := geom.Pt(float64(g)/8, 0.5)
			for i := 0; i < 200; i++ {
				l.Put(k, []byte{byte(i)})
				l.Get(k)
				l.Apply(proto.StoreRecord{Key: k, Version: uint64(i)})
			}
		}(g)
	}
	wg.Wait()
	if l.Len() != 8 {
		t.Fatalf("live records = %d", l.Len())
	}
}
