// Package store implements the attribute-addressed object store that rides
// on the VoroNet overlay: values are keyed by points of the 2-D attribute
// space and live at the node whose Voronoi region contains the key, with
// replicas on the owner's Voronoi neighbours.
//
// The package holds the machinery shared by the distributed node
// (internal/node) and the simulator mirror (internal/core): Local, a
// versioned keyed store with tombstones and newer-wins merge, and Inflight,
// the request/response correlation table with per-request timeouts used by
// the routed PUT/GET/DELETE operations.
//
// Placement follows the paper's object model: a key is an attribute vector,
// so the object responsible for it is Obj(key) — the owner of the Voronoi
// region containing the key — and churn handoff is the storage face of
// AddVoronoiRegion / RemoveVoronoiRegion (§4.2): when the tessellation
// changes, records migrate so the invariant "Obj(key) holds key" is
// restored, exactly as BLRn entries migrate with their targets.
package store

import (
	"errors"
	"sort"
	"sync"

	"voronet/internal/geom"
	"voronet/internal/proto"
)

// DefaultReplication is the default replication factor R: besides the
// owner, a record is pushed to the R Voronoi neighbours of the owner
// closest to the key.
const DefaultReplication = 3

// MaxValueBytes bounds a single stored value. Routed operations travel in
// one wire envelope (capped at proto.MaxEnvelopeBytes ≈ 1 MiB, matching
// the TCP frame limit), so oversized values are rejected loudly at Put
// instead of being dropped silently by the frame decoder.
const MaxValueBytes = 512 << 10

// Errors returned by store operations.
var (
	// ErrNotFound reports a GET or DELETE for a key with no live record.
	ErrNotFound = errors.New("store: key not found")
	// ErrTimeout reports a routed operation whose reply did not arrive
	// within the request timeout.
	ErrTimeout = errors.New("store: request timed out")
	// ErrValueTooLarge reports a PUT whose value exceeds MaxValueBytes.
	ErrValueTooLarge = errors.New("store: value exceeds MaxValueBytes")
	// ErrOverloaded reports an operation shed by admission control — at
	// the origin (inflight budget exhausted, node draining) or at the
	// owner (concurrent store work above budget). The operation was NOT
	// performed; retry after a backoff.
	ErrOverloaded = errors.New("store: overloaded, retry later")
)

// Local is a thread-safe keyed store holding the records (live and
// tombstoned) a single node is responsible for, as owner or replica. It
// does not distinguish the two roles: responsibility is derived from the
// tessellation at message-handling time, never cached.
type Local struct {
	mu   sync.Mutex
	recs map[geom.Point]proto.StoreRecord
}

// NewLocal returns an empty local store.
func NewLocal() *Local {
	return &Local{recs: make(map[geom.Point]proto.StoreRecord)}
}

// Get returns the live record for key. ok is false when the key is absent
// or tombstoned.
func (l *Local) Get(key geom.Point) (proto.StoreRecord, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	rec, ok := l.recs[key]
	if !ok || rec.Deleted {
		return proto.StoreRecord{}, false
	}
	return rec, true
}

// Lookup returns the record for key even if tombstoned (a tombstone is an
// authoritative "deleted" answer, distinct from "never seen").
func (l *Local) Lookup(key geom.Point) (proto.StoreRecord, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	rec, ok := l.recs[key]
	return rec, ok
}

// Put writes value under key with the next version and returns the stored
// record. Called by the key's region owner.
func (l *Local) Put(key geom.Point, value []byte) proto.StoreRecord {
	l.mu.Lock()
	defer l.mu.Unlock()
	rec := proto.StoreRecord{
		Key:     key,
		Value:   append([]byte(nil), value...),
		Version: l.recs[key].Version + 1,
	}
	l.recs[key] = rec
	return rec
}

// Delete tombstones key with the next version and returns the tombstone.
// ok is false (and no tombstone is written) when the key has no live
// record.
func (l *Local) Delete(key geom.Point) (proto.StoreRecord, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	old, ok := l.recs[key]
	if !ok || old.Deleted {
		return proto.StoreRecord{}, false
	}
	rec := proto.StoreRecord{Key: key, Version: old.Version + 1, Deleted: true}
	l.recs[key] = rec
	return rec, true
}

// Apply merges a replicated or handed-off record, newer version wins.
// Equal versions keep the resident record (owner writes are the only
// version sources, so equal versions carry equal content). It reports
// whether the local state changed.
func (l *Local) Apply(rec proto.StoreRecord) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if old, ok := l.recs[rec.Key]; ok && old.Version >= rec.Version {
		return false
	}
	l.recs[rec.Key] = rec
	return true
}

// DropTombstone removes the tombstone for key, but only if it still sits
// at exactly the given version — a newer tombstone (or a resurrection)
// must survive. Used by WAL compaction's two-phase tombstone GC: a
// tombstone that persisted unchanged across a whole compaction interval
// has had anti-entropy time to reach every replica and can be purged.
func (l *Local) DropTombstone(key geom.Point, version uint64) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	rec, ok := l.recs[key]
	if !ok || !rec.Deleted || rec.Version != version {
		return false
	}
	delete(l.recs, key)
	return true
}

// Clear discards every record (a node that left the overlay hands its
// records off first and must not retain state a later rejoin could leak).
func (l *Local) Clear() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.recs = make(map[geom.Point]proto.StoreRecord)
}

// Len returns the number of live (non-tombstoned) records.
func (l *Local) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := 0
	for _, rec := range l.recs {
		if !rec.Deleted {
			n++
		}
	}
	return n
}

// Snapshot returns every record, tombstones included, sorted by key so
// that message sequences derived from it are deterministic.
func (l *Local) Snapshot() []proto.StoreRecord {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]proto.StoreRecord, 0, len(l.recs))
	for _, rec := range l.recs {
		out = append(out, rec)
	}
	sortRecords(out)
	return out
}

// Collect returns the records whose key satisfies pred, tombstones
// included (a tombstone must migrate like a value, or a stale replica
// could resurrect the deleted key at the new owner). The result is sorted
// by key so that message sequences derived from it are deterministic.
func (l *Local) Collect(pred func(key geom.Point) bool) []proto.StoreRecord {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []proto.StoreRecord
	for k, rec := range l.recs {
		if pred(k) {
			out = append(out, rec)
		}
	}
	sortRecords(out)
	return out
}

// sortRecords orders records by key, X before Y (map iteration order must
// never leak into the wire: replayable chaos transcripts depend on it).
func sortRecords(recs []proto.StoreRecord) {
	sort.Slice(recs, func(i, j int) bool {
		a, b := recs[i].Key, recs[j].Key
		if a.X != b.X {
			return a.X < b.X
		}
		return a.Y < b.Y
	})
}
