// Package metrics is the repo's zero-dependency observability substrate:
// a race-safe registry of named counters, gauges and fixed-bucket
// histograms with cheap snapshot semantics.
//
// Design constraints (see DESIGN.md §Observability):
//
//   - Hot-path cost is one atomic op per event. Instruments are resolved
//     once (at construction time) and cached as struct fields; the
//     registry map is only consulted at registration and snapshot time.
//   - A nil *Registry is a valid no-op registry: every constructor on a
//     nil receiver returns a nil instrument, and every instrument method
//     on a nil receiver returns immediately. Code can therefore be
//     instrumented unconditionally and run metrics-free at zero cost.
//   - Snapshots are deterministic given deterministic event sequences:
//     iteration order is sorted by name, and histogram counts depend only
//     on the observed values, never on wall-clock time. (Latency
//     histograms observe wall time and so are deterministic in count but
//     not in bucket distribution; simnet determinism tests compare counts
//     and value-deterministic buckets only.)
//   - No external dependencies; encoding/json only at snapshot time.
package metrics

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. All methods are
// safe on a nil receiver (no-ops / zero values).
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by d.
func (c *Counter) Add(d uint64) {
	if c == nil {
		return
	}
	c.v.Add(d)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous signed level (queue depths, in-flight
// dispatches, buffered bytes). All methods are safe on a nil receiver.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add moves the gauge by d (negative d decreases it).
func (g *Gauge) Add(d int64) {
	if g == nil {
		return
	}
	g.v.Add(d)
}

// Inc moves the gauge up by one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec moves the gauge down by one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current level.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket histogram: bucket i counts observations v
// with v <= Bounds[i]; one implicit overflow bucket counts the rest. The
// bucket counts and the total count are atomics; the running sum is a
// float64 maintained with a CAS loop. All methods are safe on a nil
// receiver.
type Histogram struct {
	bounds  []float64 // sorted, immutable after construction
	buckets []atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64 // float64 bits
}

func newHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	return &Histogram{bounds: b, buckets: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Find the first bound >= v. Bucket arrays are tiny (≤ ~20 bounds);
	// a linear scan beats sort.Search at this size and branch-predicts
	// well for skewed distributions.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the running sum of observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds:  h.bounds,
		Buckets: make([]uint64, len(h.buckets)),
		Count:   h.count.Load(),
		Sum:     math.Float64frombits(h.sum.Load()),
	}
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// HistogramSnapshot is one histogram's state at snapshot time.
// Buckets[i] counts observations <= Bounds[i]; Buckets[len(Bounds)] is
// the overflow bucket.
type HistogramSnapshot struct {
	Bounds  []float64 `json:"bounds"`
	Buckets []uint64  `json:"buckets"`
	Count   uint64    `json:"count"`
	Sum     float64   `json:"sum"`
}

// Quantile returns an upper-bound estimate of quantile q (0 <= q <= 1)
// from the bucket counts: the bound of the bucket containing the q-th
// observation, or +Inf if it falls in the overflow bucket.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(s.Count)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i, b := range s.Buckets {
		cum += b
		if cum >= rank {
			if i < len(s.Bounds) {
				return s.Bounds[i]
			}
			return math.Inf(1)
		}
	}
	return math.Inf(1)
}

// Mean returns the average observed value.
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Snapshot is a point-in-time copy of a registry, with deterministic
// (sorted) JSON encoding via encoding/json's map key ordering.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Registry holds named instruments. Registration is idempotent: asking
// twice for the same name returns the same instrument, so independent
// subsystems can share one registry without coordination. A nil
// *Registry is a valid no-op registry.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the counter registered under name, creating it if
// needed. Returns nil on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it if needed.
// Returns nil on a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it
// with the given bucket bounds if needed. Re-registration with different
// bounds keeps the original bounds (first registration wins). Returns
// nil on a nil registry.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = newHistogram(bounds)
		r.histograms[name] = h
	}
	return h
}

// Snapshot copies every instrument's current state. Safe to call
// concurrently with updates; each instrument is read atomically (the
// snapshot is per-instrument consistent, not globally consistent).
// Returns an empty snapshot on a nil registry.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]uint64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.histograms {
		s.Histograms[name] = h.snapshot()
	}
	return s
}

// Names returns every registered instrument name, sorted, for
// diagnostics and tests.
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.histograms))
	for n := range r.counters {
		names = append(names, n)
	}
	for n := range r.gauges {
		names = append(names, n)
	}
	for n := range r.histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Merge adds other's counters and histogram contents into s and keeps
// the element-wise max of gauges (a level summed across nodes is
// meaningless; the max is the hot spot). Histograms merge bucket-wise
// when bounds match; mismatched bounds keep s's entry and add only
// count/sum. Merge is how per-node registries aggregate into one
// cluster-wide snapshot (voronet-bench -net).
func (s *Snapshot) Merge(other Snapshot) {
	if s.Counters == nil {
		s.Counters = map[string]uint64{}
	}
	if s.Gauges == nil {
		s.Gauges = map[string]int64{}
	}
	if s.Histograms == nil {
		s.Histograms = map[string]HistogramSnapshot{}
	}
	for name, v := range other.Counters {
		s.Counters[name] += v
	}
	for name, v := range other.Gauges {
		if cur, ok := s.Gauges[name]; !ok || v > cur {
			s.Gauges[name] = v
		}
	}
	for name, h := range other.Histograms {
		cur, ok := s.Histograms[name]
		if !ok {
			cp := HistogramSnapshot{
				Bounds:  append([]float64(nil), h.Bounds...),
				Buckets: append([]uint64(nil), h.Buckets...),
				Count:   h.Count,
				Sum:     h.Sum,
			}
			s.Histograms[name] = cp
			continue
		}
		cur.Count += h.Count
		cur.Sum += h.Sum
		if boundsEqual(cur.Bounds, h.Bounds) {
			merged := append([]uint64(nil), cur.Buckets...)
			for i := range h.Buckets {
				merged[i] += h.Buckets[i]
			}
			cur.Buckets = merged
		}
		s.Histograms[name] = cur
	}
}

func boundsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// LatencyBuckets is the preset bound set for wall-clock latency
// histograms, in seconds: 1µs … 10s, roughly ×3 per step.
func LatencyBuckets() []float64 {
	return []float64{
		1e-6, 3e-6, 1e-5, 3e-5, 1e-4, 3e-4,
		1e-3, 3e-3, 1e-2, 3e-2, 1e-1, 3e-1, 1, 3, 10,
	}
}

// HopBuckets is the preset bound set for greedy-route hop-count
// histograms: the paper's O(log²N) bound keeps real routes short, so
// single-hop resolution up to 16 then coarse tail buckets.
func HopBuckets() []float64 {
	return []float64{
		0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16,
		24, 32, 48, 64, 128,
	}
}
