package metrics

import (
	"encoding/json"
	"math"
	"reflect"
	"sync"
	"testing"
)

// TestNilRegistryIsNoOp: the metrics-off mode is a nil registry; every
// instrument path must be callable and free of panics.
func TestNilRegistryIsNoOp(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("y")
	h := r.Histogram("z", LatencyBuckets())
	if c != nil || g != nil || h != nil {
		t.Fatalf("nil registry must hand out nil instruments, got %v %v %v", c, g, h)
	}
	c.Inc()
	c.Add(10)
	g.Set(5)
	g.Inc()
	g.Dec()
	h.Observe(0.5)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil instruments must read as zero")
	}
	s := r.Snapshot()
	if len(s.Counters) != 0 || len(s.Gauges) != 0 || len(s.Histograms) != 0 {
		t.Fatalf("nil registry snapshot must be empty, got %+v", s)
	}
	if r.Names() != nil {
		t.Fatal("nil registry must have no names")
	}
}

func TestRegistrationIsIdempotent(t *testing.T) {
	r := NewRegistry()
	if r.Counter("a") != r.Counter("a") {
		t.Fatal("same name must return same counter")
	}
	if r.Gauge("b") != r.Gauge("b") {
		t.Fatal("same name must return same gauge")
	}
	h1 := r.Histogram("c", []float64{1, 2})
	h2 := r.Histogram("c", []float64{5, 6, 7})
	if h1 != h2 {
		t.Fatal("same name must return same histogram")
	}
	if !reflect.DeepEqual(h1.bounds, []float64{1, 2}) {
		t.Fatalf("first registration's bounds must win, got %v", h1.bounds)
	}
}

// TestHistogramBucketBoundaries pins the bucketing rule: bucket i counts
// v <= Bounds[i], the last bucket is overflow.
func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", []float64{1, 2, 5})
	for _, v := range []float64{
		-3,   // below every bound -> bucket 0
		1,    // exactly bound 0 -> bucket 0 (<= rule)
		1.5,  // -> bucket 1
		2,    // exactly bound 1 -> bucket 1
		4.99, // -> bucket 2
		5,    // exactly bound 2 -> bucket 2
		5.01, // -> overflow
		1e18, // -> overflow
	} {
		h.Observe(v)
	}
	s := r.Snapshot().Histograms["h"]
	want := []uint64{2, 2, 2, 2}
	if !reflect.DeepEqual(s.Buckets, want) {
		t.Fatalf("buckets = %v, want %v", s.Buckets, want)
	}
	if s.Count != 8 {
		t.Fatalf("count = %d, want 8", s.Count)
	}
	wantSum := -3 + 1 + 1.5 + 2 + 4.99 + 5 + 5.01 + 1e18
	if math.Abs(s.Sum-wantSum) > 1 { // 1e18 dwarfs float precision
		t.Fatalf("sum = %g, want %g", s.Sum, wantSum)
	}
}

func TestHistogramUnsortedBoundsAreSorted(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", []float64{5, 1, 2})
	h.Observe(1.5)
	s := r.Snapshot().Histograms["h"]
	if !reflect.DeepEqual(s.Bounds, []float64{1, 2, 5}) {
		t.Fatalf("bounds = %v, want sorted", s.Bounds)
	}
	if s.Buckets[1] != 1 {
		t.Fatalf("1.5 must land in bucket 1 of sorted bounds, got %v", s.Buckets)
	}
}

func TestQuantileAndMean(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", []float64{1, 2, 3, 4})
	for i := 0; i < 100; i++ {
		h.Observe(float64(i%4) + 0.5) // 25 each in buckets 0..3
	}
	s := r.Snapshot().Histograms["h"]
	if got := s.Quantile(0.5); got != 2 {
		t.Fatalf("p50 = %v, want 2", got)
	}
	if got := s.Quantile(0.99); got != 4 {
		t.Fatalf("p99 = %v, want 4", got)
	}
	if got := s.Mean(); got != 2.0 {
		t.Fatalf("mean = %v, want 2.0", got)
	}
	empty := HistogramSnapshot{}
	if empty.Quantile(0.5) != 0 || empty.Mean() != 0 {
		t.Fatal("empty histogram must report 0 quantile and mean")
	}
	over := HistogramSnapshot{Bounds: []float64{1}, Buckets: []uint64{0, 3}, Count: 3}
	if !math.IsInf(over.Quantile(0.5), 1) {
		t.Fatal("overflow-only histogram quantile must be +Inf")
	}
}

// TestConcurrentTorture hammers one registry from many goroutines while
// snapshots run concurrently; run under -race this is the registry's
// race certification, and the final totals certify no lost updates.
func TestConcurrentTorture(t *testing.T) {
	r := NewRegistry()
	const (
		workers = 16
		iters   = 2000
	)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Concurrent snapshotter.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = r.Snapshot()
			}
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter("shared_counter")
			g := r.Gauge("shared_gauge")
			h := r.Histogram("shared_hist", []float64{0.25, 0.5, 0.75})
			for i := 0; i < iters; i++ {
				c.Inc()
				g.Inc()
				h.Observe(float64(i%4) * 0.25)
				// Also exercise registration under contention.
				r.Counter("shared_counter").Add(1)
			}
		}(w)
	}
	// Wait for the workers, then stop the snapshotter and wait for it.
	wgDone := make(chan struct{})
	go func() { wg.Wait(); close(wgDone) }()
	close(stop)
	<-wgDone

	s := r.Snapshot()
	if got, want := s.Counters["shared_counter"], uint64(workers*iters*2); got != want {
		t.Fatalf("counter = %d, want %d (lost updates)", got, want)
	}
	if got, want := s.Gauges["shared_gauge"], int64(workers*iters); got != want {
		t.Fatalf("gauge = %d, want %d", got, want)
	}
	hs := s.Histograms["shared_hist"]
	if got, want := hs.Count, uint64(workers*iters); got != want {
		t.Fatalf("hist count = %d, want %d", got, want)
	}
	var bucketTotal uint64
	for _, b := range hs.Buckets {
		bucketTotal += b
	}
	if bucketTotal != hs.Count {
		t.Fatalf("bucket total %d != count %d", bucketTotal, hs.Count)
	}
	// Sum: each worker observes 0,0.25,0.5,0.75 repeating -> 1.5 per 4 iters.
	wantSum := float64(workers) * float64(iters) / 4 * 1.5
	if math.Abs(hs.Sum-wantSum) > 1e-6*wantSum {
		t.Fatalf("hist sum = %g, want %g", hs.Sum, wantSum)
	}
}

func TestSnapshotMerge(t *testing.T) {
	a := NewRegistry()
	b := NewRegistry()
	a.Counter("c").Add(3)
	b.Counter("c").Add(4)
	b.Counter("only_b").Add(1)
	a.Gauge("g").Set(10)
	b.Gauge("g").Set(7) // max wins
	bounds := []float64{1, 2}
	a.Histogram("h", bounds).Observe(0.5)
	b.Histogram("h", bounds).Observe(1.5)
	b.Histogram("h", bounds).Observe(9)

	s := a.Snapshot()
	s.Merge(b.Snapshot())
	if s.Counters["c"] != 7 || s.Counters["only_b"] != 1 {
		t.Fatalf("merged counters = %v", s.Counters)
	}
	if s.Gauges["g"] != 10 {
		t.Fatalf("merged gauge = %d, want max 10", s.Gauges["g"])
	}
	h := s.Histograms["h"]
	if !reflect.DeepEqual(h.Buckets, []uint64{1, 1, 1}) {
		t.Fatalf("merged buckets = %v", h.Buckets)
	}
	if h.Count != 3 || h.Sum != 11 {
		t.Fatalf("merged count/sum = %d/%g", h.Count, h.Sum)
	}

	// Mismatched bounds: count/sum still aggregate, buckets keep target's.
	c := NewRegistry()
	c.Histogram("h", []float64{100}).Observe(50)
	s.Merge(c.Snapshot())
	h = s.Histograms["h"]
	if h.Count != 4 || h.Sum != 61 {
		t.Fatalf("mismatched-bounds merge count/sum = %d/%g", h.Count, h.Sum)
	}
	if !reflect.DeepEqual(h.Bounds, []float64{1, 2}) {
		t.Fatalf("mismatched-bounds merge must keep target bounds, got %v", h.Bounds)
	}
}

// TestMergeDoesNotAliasSource: merging into an empty snapshot must deep
// copy bucket slices, not alias them.
func TestMergeDoesNotAliasSource(t *testing.T) {
	src := NewRegistry()
	src.Histogram("h", []float64{1}).Observe(0.5)
	srcSnap := src.Snapshot()
	var dst Snapshot
	dst.Merge(srcSnap)
	dst.Merge(srcSnap) // second merge doubles dst, must not corrupt srcSnap
	if srcSnap.Histograms["h"].Buckets[0] != 1 {
		t.Fatalf("source snapshot mutated: %v", srcSnap.Histograms["h"].Buckets)
	}
	if dst.Histograms["h"].Buckets[0] != 2 {
		t.Fatalf("double merge = %v, want bucket 2", dst.Histograms["h"].Buckets)
	}
}

// TestSnapshotJSONDeterministic: two identical registries must encode to
// byte-identical JSON (encoding/json sorts map keys) — the property the
// simnet determinism test and BENCH trajectory diffs rely on.
func TestSnapshotJSONDeterministic(t *testing.T) {
	build := func() *Registry {
		r := NewRegistry()
		for _, n := range []string{"z_last", "a_first", "m_mid"} {
			r.Counter(n).Add(7)
			r.Gauge("g_" + n).Set(3)
			r.Histogram("h_"+n, HopBuckets()).Observe(4)
		}
		return r
	}
	j1, err := json.Marshal(build().Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	j2, err := json.Marshal(build().Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if string(j1) != string(j2) {
		t.Fatalf("snapshot JSON not deterministic:\n%s\n%s", j1, j2)
	}
}

func TestNames(t *testing.T) {
	r := NewRegistry()
	r.Counter("b")
	r.Gauge("a")
	r.Histogram("c", nil)
	if got := r.Names(); !reflect.DeepEqual(got, []string{"a", "b", "c"}) {
		t.Fatalf("names = %v", got)
	}
}
