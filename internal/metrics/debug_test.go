package metrics

import (
	"encoding/json"
	"io"
	"net/http"
	"testing"
)

// TestDebugServer boots the live endpoint and smoke-checks /metrics,
// /healthz and the pprof index — the same surface CI curls against a
// running voronet-node.
func TestDebugServer(t *testing.T) {
	r1 := NewRegistry()
	r2 := NewRegistry()
	r1.Counter("node_sent_total").Add(5)
	r2.Counter("node_sent_total").Add(2)
	r2.Gauge("tcp_inflight_dispatches").Set(3)
	r1.Histogram("store_get_hops", HopBuckets()).Observe(4)

	srv, err := ServeDebug("127.0.0.1:0", r1.Snapshot, r2.Snapshot, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) (int, []byte) {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, body
	}

	code, body := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	var snap Snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("/metrics not valid JSON: %v\n%s", err, body)
	}
	if snap.Counters["node_sent_total"] != 7 {
		t.Fatalf("merged counter = %d, want 7", snap.Counters["node_sent_total"])
	}
	if snap.Gauges["tcp_inflight_dispatches"] != 3 {
		t.Fatalf("gauge = %d, want 3", snap.Gauges["tcp_inflight_dispatches"])
	}
	if snap.Histograms["store_get_hops"].Count != 1 {
		t.Fatalf("histogram missing from /metrics: %+v", snap.Histograms)
	}

	if code, _ := get("/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz status %d", code)
	}
	code, body = get("/debug/pprof/")
	if code != http.StatusOK || len(body) == 0 {
		t.Fatalf("/debug/pprof/ status %d len %d", code, len(body))
	}
}
