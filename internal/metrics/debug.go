package metrics

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// DebugMux builds the live-introspection HTTP mux served by
// voronet-node's -debug-addr listener:
//
//	GET /metrics        — one JSON Snapshot merged over all sources
//	GET /debug/pprof/*  — the standard net/http/pprof handlers
//	GET /healthz        — 200 "ok"
//
// sources are snapshotted and merged in order at request time, so one
// process can expose several registries (node + transport endpoint)
// through a single endpoint. Nil sources are skipped.
func DebugMux(sources ...func() Snapshot) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		merged := Snapshot{}
		for _, src := range sources {
			if src == nil {
				continue
			}
			merged.Merge(src())
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(merged)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, req *http.Request) {
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// DebugServer is a running debug listener; Close shuts it down.
type DebugServer struct {
	ln  net.Listener
	srv *http.Server
}

// ServeDebug starts an HTTP debug listener on addr ("127.0.0.1:0" picks
// a free port) serving DebugMux(sources...). It returns once the
// listener is bound; serving continues in a background goroutine.
func ServeDebug(addr string, sources ...func() Snapshot) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{
		Handler:           DebugMux(sources...),
		ReadHeaderTimeout: 10 * time.Second,
	}
	go srv.Serve(ln)
	return &DebugServer{ln: ln, srv: srv}, nil
}

// Addr returns the bound listen address.
func (d *DebugServer) Addr() string { return d.ln.Addr().String() }

// Close stops the listener and in-flight handlers.
func (d *DebugServer) Close() error { return d.srv.Close() }
