package node

import (
	"sort"
	"testing"

	"voronet/internal/geom"
	"voronet/internal/proto"
)

func TestDistributedRangeQuery(t *testing.T) {
	c := newCluster(t, 70, 0.02, 90)
	a, b := geom.Pt(0.1, 0.55), geom.Pt(0.9, 0.55)

	var hits []string
	from := c.nodes[3]
	if err := from.RangeQuery(a, b, func(owner proto.NodeInfo) {
		hits = append(hits, owner.Addr)
	}); err != nil {
		t.Fatal(err)
	}
	c.bus.Drain()

	// Ground truth: owners of densely sampled segment points.
	want := map[string]bool{}
	for s := 0; s <= 3000; s++ {
		f := float64(s) / 3000
		p := geom.Pt(a.X+(b.X-a.X)*f, a.Y+(b.Y-a.Y)*f)
		best := c.nodes[0].Info()
		for _, nd := range c.nodes {
			if geom.Dist2(nd.Info().Pos, p) < geom.Dist2(best.Pos, p) {
				best = nd.Info()
			}
		}
		want[best.Addr] = true
	}
	got := map[string]bool{}
	for _, h := range hits {
		if got[h] {
			t.Fatalf("duplicate hit %s", h)
		}
		got[h] = true
	}
	for w := range want {
		if !got[w] {
			t.Fatalf("range flood missed owner %s", w)
		}
	}
	// Every reported node's region must actually intersect the segment; we
	// accept boundary-touching extras (the hit set may exceed the sampled
	// owners only by regions grazing the segment).
	if len(got) > len(want)+4 {
		var g, w []string
		for k := range got {
			g = append(g, k)
		}
		for k := range want {
			w = append(w, k)
		}
		sort.Strings(g)
		sort.Strings(w)
		t.Fatalf("too many hits: got %v want %v", g, w)
	}
}

func TestDistributedRangeQueryTiny(t *testing.T) {
	// Works on one- and two-node overlays.
	c := newCluster(t, 1, 0.05, 91)
	var hits int
	if err := c.nodes[0].RangeQuery(geom.Pt(0, 0), geom.Pt(1, 1), func(proto.NodeInfo) {
		hits++
	}); err != nil {
		t.Fatal(err)
	}
	c.bus.Drain()
	if hits != 1 {
		t.Fatalf("singleton overlay: %d hits", hits)
	}

	c2 := newCluster(t, 2, 0.05, 92)
	hits = 0
	if err := c2.nodes[1].RangeQuery(geom.Pt(0, 0), geom.Pt(1, 1), func(proto.NodeInfo) {
		hits++
	}); err != nil {
		t.Fatal(err)
	}
	c2.bus.Drain()
	if hits < 1 || hits > 2 {
		t.Fatalf("two-node overlay: %d hits", hits)
	}
}

func TestRangeQueryRequiresJoin(t *testing.T) {
	c := newCluster(t, 3, 0.05, 93)
	nd := c.nodes[2]
	if err := nd.Leave(); err != nil {
		t.Fatal(err)
	}
	c.bus.Drain()
	if err := nd.RangeQuery(geom.Pt(0, 0), geom.Pt(1, 1), func(proto.NodeInfo) {}); err != ErrNotJoined {
		t.Fatalf("range query after leave: %v", err)
	}
}
