package node

import (
	"voronet/internal/metrics"
	"voronet/internal/proto"
)

// nodeMetrics caches every instrument the node's hot paths touch, so a
// message send or receive costs a few atomic ops and never a registry
// map lookup. The registry itself is always present (New builds one);
// the instruments are pointers so the struct is cheap to embed.
//
// Naming: node_* for protocol counters, store_* for the object-store
// face, with per-kind counters node_send_<kind>_total /
// node_recv_<kind>_total derived from proto.Kind.String().
type nodeMetrics struct {
	reg *metrics.Registry

	sent     *metrics.Counter // node_sent_total: every send() call (cost accounting)
	sendSelf *metrics.Counter // node_send_self_total: delivered in-process, bypassing the transport
	sendErrs *metrics.Counter // node_send_errors_total: transport refused the frame
	retries  *metrics.Counter // node_send_retries_total: second attempts by sendWithRetry

	decodeErrs *metrics.Counter // node_decode_errors_total: malformed inbound frames dropped

	sentByKind [proto.KindCount]*metrics.Counter
	recvByKind [proto.KindCount]*metrics.Counter

	// Per-kind bytes-on-wire books (node_wire_bytes_sent_<kind>_total /
	// node_wire_bytes_recv_<kind>_total): encoded frame sizes as the
	// codec produced them, so a codec or message-shape regression is
	// observable per message class, not just as an aggregate. Sent is
	// counted at encode time (self-delivered frames included — they pay
	// the encode cost), recv at decode time.
	wireSentByKind [proto.KindCount]*metrics.Counter
	wireRecvByKind [proto.KindCount]*metrics.Counter

	queryLatency  *metrics.Histogram // node_query_seconds: Query round trip
	queryHops     *metrics.Histogram // node_query_hops: answered greedy route length
	queryTimeouts *metrics.Counter   // node_query_timeouts_total

	storePutLatency *metrics.Histogram // store_put_seconds etc.: routed op round trip
	storeGetLatency *metrics.Histogram
	storeDelLatency *metrics.Histogram
	storePutHops    *metrics.Histogram // store_put_hops etc.: request route length
	storeGetHops    *metrics.Histogram
	storeDelHops    *metrics.Histogram
	storeTimeouts   *metrics.Counter // store_timeouts_total

	// View-surgery timings (the paper's AddVoronoiRegion /
	// RemoveVoronoiRegion executions) and BLRn maintenance volume.
	joinAdmitTime *metrics.Histogram // node_join_admit_seconds: owner-side admission
	joinGrantTime *metrics.Histogram // node_join_grant_seconds: joiner-side view install
	leaveTime     *metrics.Histogram // node_leave_seconds: graceful departure surgery
	departTime    *metrics.Histogram // node_depart_repair_seconds: crash repair surgery
	backMoves     *metrics.Counter   // node_blrn_moves_total: BLRn entries re-placed

	traced *metrics.Counter // node_traced_routes_total: envelopes handled with Trace set

	// The low-latency lookup stack: route-cache effectiveness, the cost
	// of α-parallel speculation, and the latency-defining hop count of
	// the first answer to arrive (which speculation and caching shrink;
	// node_query_hops / store_*_hops keep recording whichever probe won).
	cacheHits          *metrics.Counter   // node_cache_hits_total: origin found a cached owner for the target's cell
	cacheMisses        *metrics.Counter   // node_cache_misses_total: origin consulted the cache and found nothing
	cacheInvalidations *metrics.Counter   // node_cache_invalidations_total: entries dropped by view-change surgery
	cacheRefresh       *metrics.Counter   // node_cache_refresh_total: hot entries re-validated by the background refresher
	probeWasted        *metrics.Counter   // node_probe_wasted_total: answers for an already-resolved request
	firstByteHops      *metrics.Histogram // node_first_byte_hops: hops of the first answer per read (Query / GET)

	// Durability (see durable.go) and overload shedding.
	walAppends       *metrics.Counter   // wal_appends_total: records logged
	walErrs          *metrics.Counter   // wal_errors_total: append/sync/compact failures (durability degraded, availability kept)
	walFsync         *metrics.Histogram // wal_fsync_seconds: per-fsync wall time
	walReplayed      *metrics.Counter   // wal_replayed_records_total: records recovered at startup
	walCorrupt       *metrics.Counter   // wal_corrupt_frames_total: bad frames skipped by replay
	walTorn          *metrics.Counter   // wal_torn_tails_total: benign crash-truncated final frames
	walCompactions   *metrics.Counter   // wal_compactions_total
	walTombGC        *metrics.Counter   // wal_tombstones_gced_total: tombstones purged by two-phase GC
	antiEntropyBytes *metrics.Counter   // node_antientropy_bytes_total: replica-maintenance bytes sent (digest + pull + records)
	storeShed        *metrics.Counter   // store_shed_total: ops refused by admission control (origin or owner side)
}

func newNodeMetrics() nodeMetrics {
	r := metrics.NewRegistry()
	lat := metrics.LatencyBuckets()
	hops := metrics.HopBuckets()
	nm := nodeMetrics{
		reg:             r,
		sent:            r.Counter("node_sent_total"),
		sendSelf:        r.Counter("node_send_self_total"),
		sendErrs:        r.Counter("node_send_errors_total"),
		retries:         r.Counter("node_send_retries_total"),
		decodeErrs:      r.Counter("node_decode_errors_total"),
		queryLatency:    r.Histogram("node_query_seconds", lat),
		queryHops:       r.Histogram("node_query_hops", hops),
		queryTimeouts:   r.Counter("node_query_timeouts_total"),
		storePutLatency: r.Histogram("store_put_seconds", lat),
		storeGetLatency: r.Histogram("store_get_seconds", lat),
		storeDelLatency: r.Histogram("store_delete_seconds", lat),
		storePutHops:    r.Histogram("store_put_hops", hops),
		storeGetHops:    r.Histogram("store_get_hops", hops),
		storeDelHops:    r.Histogram("store_delete_hops", hops),
		storeTimeouts:   r.Counter("store_timeouts_total"),
		joinAdmitTime:   r.Histogram("node_join_admit_seconds", lat),
		joinGrantTime:   r.Histogram("node_join_grant_seconds", lat),
		leaveTime:       r.Histogram("node_leave_seconds", lat),
		departTime:      r.Histogram("node_depart_repair_seconds", lat),
		backMoves:       r.Counter("node_blrn_moves_total"),
		traced:          r.Counter("node_traced_routes_total"),

		cacheHits:          r.Counter("node_cache_hits_total"),
		cacheMisses:        r.Counter("node_cache_misses_total"),
		cacheInvalidations: r.Counter("node_cache_invalidations_total"),
		cacheRefresh:       r.Counter("node_cache_refresh_total"),
		probeWasted:        r.Counter("node_probe_wasted_total"),
		firstByteHops:      r.Histogram("node_first_byte_hops", hops),

		walAppends:       r.Counter("wal_appends_total"),
		walErrs:          r.Counter("wal_errors_total"),
		walFsync:         r.Histogram("wal_fsync_seconds", lat),
		walReplayed:      r.Counter("wal_replayed_records_total"),
		walCorrupt:       r.Counter("wal_corrupt_frames_total"),
		walTorn:          r.Counter("wal_torn_tails_total"),
		walCompactions:   r.Counter("wal_compactions_total"),
		walTombGC:        r.Counter("wal_tombstones_gced_total"),
		antiEntropyBytes: r.Counter("node_antientropy_bytes_total"),
		storeShed:        r.Counter("store_shed_total"),
	}
	for k := proto.Kind(0); k < proto.KindCount; k++ {
		nm.sentByKind[k] = r.Counter("node_send_" + k.String() + "_total")
		nm.recvByKind[k] = r.Counter("node_recv_" + k.String() + "_total")
		nm.wireSentByKind[k] = r.Counter("node_wire_bytes_sent_" + k.String() + "_total")
		nm.wireRecvByKind[k] = r.Counter("node_wire_bytes_recv_" + k.String() + "_total")
	}
	return nm
}

// storeLatencyFor / storeHopsFor select the per-purpose instruments of a
// routed store operation.
func (nm *nodeMetrics) storeLatencyFor(p proto.RoutedPurpose) *metrics.Histogram {
	switch p {
	case proto.PurposeStorePut:
		return nm.storePutLatency
	case proto.PurposeStoreGet:
		return nm.storeGetLatency
	default:
		return nm.storeDelLatency
	}
}

func (nm *nodeMetrics) storeHopsFor(p proto.RoutedPurpose) *metrics.Histogram {
	switch p {
	case proto.PurposeStorePut:
		return nm.storePutHops
	case proto.PurposeStoreGet:
		return nm.storeGetHops
	default:
		return nm.storeDelHops
	}
}

// Metrics returns the node's instrument registry. It is always non-nil;
// snapshot it with Metrics().Snapshot() or merge it into a debug
// endpoint (see cmd/voronet-node's -debug-addr).
func (n *Node) Metrics() *metrics.Registry { return n.nm.reg }

// SentCount returns the number of protocol messages this node has sent
// (the old Node.Sent counter, now backed by the registry's
// node_sent_total so cost accounting and metrics cannot diverge).
func (n *Node) SentCount() uint64 { return n.nm.sent.Value() }
