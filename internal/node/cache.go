package node

import (
	"container/list"
	"math"
	"sync"

	"voronet/internal/geom"
	"voronet/internal/proto"
)

// routeCache is the hot-region owner cache (the path-caching half of the
// Kademlia-style lookup acceleration): a small LRU mapping a quantised
// attribute-space cell to the node last observed answering for a key in
// that cell. The origin consults it before the greedy scan and feeds the
// cached owner in as one more next-hop candidate; because the candidate
// must still win the strictly-closer distance test, a stale entry can
// cost at most a wasted comparison — it can never misroute, loop, or
// serve a stale owner silently. Under a Zipf-skewed workload the hot
// keys' owners pin themselves in the cache and the route to them
// collapses to one hop.
//
// Coherence rules (see DESIGN.md):
//   - populated only at the origin, from answers (Query answers and
//     store replies carry the answering node);
//   - invalidated by address whenever the node tombstones a departure
//     (leave, crash repair, tombstone gossip) — a dead owner must not
//     linger even as a candidate;
//   - invalidated by region when a newcomer integrates: every entry
//     whose key the newcomer is strictly closer to than the cached
//     owner is dropped, since that region is no longer the owner's;
//   - cleared wholesale when this node leaves.
//
// Locking: the cache has its own leaf mutex and takes no other lock, so
// it is safe to touch from under n.mu (read or write) and from callback
// paths alike.
type routeCache struct {
	mu      sync.Mutex
	cap     int
	grid    float64
	entries map[uint64]*list.Element
	lru     *list.List // front = most recently used
}

// cacheEntry is one cached region→owner binding. key is the exact
// target that populated the entry; invalidation distance tests run
// against it rather than the cell centre, so they exactly mirror the
// ownership comparisons the store layer makes.
type cacheEntry struct {
	cell  uint64
	key   geom.Point
	owner proto.NodeInfo
}

// defaultCacheGrid is the quantisation floor: cells never get coarser
// than this even for large DMin, so distinct hot regions rarely share a
// cell (a shared cell only costs evictions, never correctness).
const defaultCacheGrid = 1.0 / 256

func newRouteCache(capacity int, dmin float64) *routeCache {
	grid := dmin
	if grid < defaultCacheGrid || math.IsNaN(grid) {
		grid = defaultCacheGrid
	}
	return &routeCache{
		cap:     capacity,
		grid:    grid,
		entries: make(map[uint64]*list.Element, capacity),
		lru:     list.New(),
	}
}

// cellOf quantises p to its grid cell. Coordinates live in [0,1] with
// small excursions (long-link targets overshoot the square); the int32
// fold keeps any finite point addressable.
func (rc *routeCache) cellOf(p geom.Point) uint64 {
	cx := uint64(uint32(int32(math.Floor(p.X / rc.grid))))
	cy := uint64(uint32(int32(math.Floor(p.Y / rc.grid))))
	return cx<<32 | cy
}

// lookup returns the cached owner for p's cell, refreshing its recency.
func (rc *routeCache) lookup(p geom.Point) (proto.NodeInfo, bool) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	el, ok := rc.entries[rc.cellOf(p)]
	if !ok {
		return proto.NodeInfo{}, false
	}
	rc.lru.MoveToFront(el)
	return el.Value.(*cacheEntry).owner, true
}

// insert records owner as the answerer for p's cell, evicting the least
// recently used entry at capacity.
func (rc *routeCache) insert(p geom.Point, owner proto.NodeInfo) {
	if owner.Addr == "" {
		return
	}
	rc.mu.Lock()
	defer rc.mu.Unlock()
	cell := rc.cellOf(p)
	if el, ok := rc.entries[cell]; ok {
		ent := el.Value.(*cacheEntry)
		ent.key, ent.owner = p, owner
		rc.lru.MoveToFront(el)
		return
	}
	for rc.lru.Len() >= rc.cap && rc.lru.Len() > 0 {
		oldest := rc.lru.Back()
		delete(rc.entries, oldest.Value.(*cacheEntry).cell)
		rc.lru.Remove(oldest)
	}
	rc.entries[cell] = rc.lru.PushFront(&cacheEntry{cell: cell, key: p, owner: owner})
}

// invalidateOwner drops every entry naming addr and returns how many it
// removed. Called from the tombstone path: leave, crash repair and
// tombstone gossip all funnel through it.
func (rc *routeCache) invalidateOwner(addr string) int {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	removed := 0
	for el := rc.lru.Front(); el != nil; {
		next := el.Next()
		if ent := el.Value.(*cacheEntry); ent.owner.Addr == addr {
			delete(rc.entries, ent.cell)
			rc.lru.Remove(el)
			removed++
		}
		el = next
	}
	return removed
}

// invalidateTakenOver drops every entry whose key the newcomer at pos is
// strictly closer to than the cached owner — those regions changed hands
// in the AddVoronoiRegion the caller just executed. Returns the number
// removed.
func (rc *routeCache) invalidateTakenOver(pos geom.Point) int {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	removed := 0
	for el := rc.lru.Front(); el != nil; {
		next := el.Next()
		if ent := el.Value.(*cacheEntry); geom.Dist2(pos, ent.key) < geom.Dist2(ent.owner.Pos, ent.key) {
			delete(rc.entries, ent.cell)
			rc.lru.Remove(el)
			removed++
		}
		el = next
	}
	return removed
}

// hottest returns the keys of the k most-recently-used entries, hottest
// first — the candidates the background refresher re-validates (see
// refresh.go).
func (rc *routeCache) hottest(k int) []geom.Point {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	out := make([]geom.Point, 0, k)
	for el := rc.lru.Front(); el != nil && len(out) < k; el = el.Next() {
		out = append(out, el.Value.(*cacheEntry).key)
	}
	return out
}

// clear empties the cache (this node left the overlay).
func (rc *routeCache) clear() {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	rc.entries = make(map[uint64]*list.Element, rc.cap)
	rc.lru.Init()
}

// size returns the number of cached entries.
func (rc *routeCache) size() int {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.lru.Len()
}
