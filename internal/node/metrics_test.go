package node

import (
	"fmt"
	"testing"

	"voronet/internal/geom"
	"voronet/internal/metrics"
	"voronet/internal/proto"
	"voronet/internal/store"
)

// tracedQuery runs one traced query from the given node, drains the bus,
// and returns the answer. The cluster's effectively-infinite query timeout
// guarantees the callback fired during the drain or not at all.
func tracedQuery(t *testing.T, c *cluster, from *Node, p geom.Point) (proto.NodeInfo, int, []proto.TraceHop) {
	t.Helper()
	var (
		owner proto.NodeInfo
		hops  int
		path  []proto.TraceHop
		fired bool
	)
	err := from.QueryTrace(p, func(o proto.NodeInfo, h int, pth []proto.TraceHop) {
		owner, hops, path, fired = o, h, pth, true
	})
	if err != nil {
		t.Fatalf("QueryTrace: %v", err)
	}
	c.bus.Drain()
	if !fired {
		t.Fatalf("traced query for %v never answered", p)
	}
	if hops == HopsTimedOut {
		t.Fatalf("traced query for %v timed out", p)
	}
	return owner, hops, path
}

// TestTracedQueryReturnsGreedyPath checks the trace contract on a live
// overlay: one hop per visited node (origin included), a terminal "owner"
// hop naming the answering node, intermediate rules drawn from the greedy
// candidate classes, and strictly decreasing distance to the target along
// the path — the definition of greedy routing.
func TestTracedQueryReturnsGreedyPath(t *testing.T) {
	c := newCluster(t, 50, 0.02, 11)
	posOf := map[string]geom.Point{}
	for _, nd := range c.nodes {
		posOf[nd.Info().Addr] = nd.Info().Pos
	}
	for i, target := range []geom.Point{geom.Pt(0.9, 0.9), geom.Pt(0.1, 0.8), geom.Pt(0.5, 0.05)} {
		from := c.nodes[i]
		owner, hops, path := tracedQuery(t, c, from, target)
		if len(path) != hops+1 {
			t.Fatalf("path has %d hops, want hops+1=%d (path %v)", len(path), hops+1, path)
		}
		if path[0].Addr != from.Info().Addr {
			t.Fatalf("path starts at %s, want origin %s", path[0].Addr, from.Info().Addr)
		}
		last := path[len(path)-1]
		if last.Rule != "owner" || last.Addr != owner.Addr {
			t.Fatalf("terminal hop %+v, want owner %s", last, owner.Addr)
		}
		for j, h := range path[:len(path)-1] {
			switch h.Rule {
			case "vn", "cn", "long":
			default:
				t.Fatalf("hop %d has rule %q, want vn/cn/long", j, h.Rule)
			}
		}
		for j := 1; j < len(path); j++ {
			prev, cur := posOf[path[j-1].Addr], posOf[path[j].Addr]
			if geom.Dist2(cur, target) >= geom.Dist2(prev, target) {
				t.Fatalf("hop %d (%s) did not move closer to %v: %v -> %v",
					j, path[j].Addr, target, prev, cur)
			}
		}
	}
}

// TestTracedStoreGetPath checks that a traced GET carries the routing
// trace back in the reply, terminating at the node that answered.
func TestTracedStoreGetPath(t *testing.T) {
	c := newCluster(t, 40, 0.02, 12)
	key := geom.Pt(0.77, 0.31)
	putDone := false
	if err := c.nodes[1].Put(key, []byte("traced"), func(r store.Reply) {
		if r.Err != nil {
			t.Errorf("put: %v", r.Err)
		}
		putDone = true
	}); err != nil {
		t.Fatal(err)
	}
	c.bus.Drain()
	if !putDone {
		t.Fatal("put never acknowledged")
	}
	var got store.Reply
	fired := false
	if err := c.nodes[5].GetTrace(key, func(r store.Reply) { got, fired = r, true }); err != nil {
		t.Fatal(err)
	}
	c.bus.Drain()
	if !fired {
		t.Fatal("traced get never answered")
	}
	if got.Err != nil || !got.Found {
		t.Fatalf("traced get: err=%v found=%v", got.Err, got.Found)
	}
	if string(got.Value) != "traced" {
		t.Fatalf("traced get value %q", got.Value)
	}
	if len(got.Path) == 0 {
		t.Fatal("traced get returned no path")
	}
	last := got.Path[len(got.Path)-1]
	if last.Rule != "owner" && last.Rule != "replica" {
		t.Fatalf("terminal hop rule %q, want owner or replica", last.Rule)
	}
	// An untraced Get must not pay for a path.
	fired = false
	if err := c.nodes[5].Get(key, func(r store.Reply) { got, fired = r, true }); err != nil {
		t.Fatal(err)
	}
	c.bus.Drain()
	if !fired {
		t.Fatal("plain get never answered")
	}
	if got.Path != nil {
		t.Fatalf("untraced get carried a path: %v", got.Path)
	}
}

// runReplayWorkload builds a seeded cluster and drives a fixed workload
// (queries, puts, gets — some traced) over the serial simnet. Everything
// that feeds it is derived from seed, so two calls with the same seed
// must take byte-identical routing decisions.
func runReplayWorkload(t *testing.T, seed int64) (*cluster, []string) {
	t.Helper()
	c := newCluster(t, 30, 0.02, seed)
	var traces []string
	for i := 0; i < 10; i++ {
		from := c.nodes[i%len(c.nodes)]
		p := geom.Pt(float64(i)*0.09+0.05, float64((i*7)%10)*0.09+0.05)
		_, _, path := tracedQuery(t, c, from, p)
		line := ""
		for _, h := range path {
			line += fmt.Sprintf("%s/%s ", h.Addr, h.Rule)
		}
		traces = append(traces, line)
		if err := from.Put(p, []byte{byte(i)}, func(store.Reply) {}); err != nil {
			t.Fatal(err)
		}
		c.bus.Drain()
		if err := c.nodes[(i+3)%len(c.nodes)].Get(p, func(store.Reply) {}); err != nil {
			t.Fatal(err)
		}
		c.bus.Drain()
	}
	return c, traces
}

// mergedSnapshot merges the bus books with every node's registry.
func mergedSnapshot(c *cluster) metrics.Snapshot {
	snap := c.bus.MetricsSnapshot()
	for _, nd := range c.nodes {
		snap.Merge(nd.Metrics().Snapshot())
	}
	return snap
}

// TestTraceDeterministicAcrossReplays replays the same seeded workload
// twice and requires the (addr, rule) hop sequences to be identical —
// the property that makes `voronet-node trace` reproducible in simnet.
func TestTraceDeterministicAcrossReplays(t *testing.T) {
	_, a := runReplayWorkload(t, 21)
	_, b := runReplayWorkload(t, 21)
	if len(a) != len(b) {
		t.Fatalf("replay produced %d traces vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trace %d diverged:\n  run1: %s\n  run2: %s", i, a[i], b[i])
		}
	}
}

// TestMetricsSnapshotDeterministicAcrossReplays replays the same seeded
// workload twice and compares the merged metric snapshots. Counters and
// value-deterministic histograms (hop counts) must match exactly; only
// wall-clock latency histograms may differ, and for those the observation
// counts must still agree.
func TestMetricsSnapshotDeterministicAcrossReplays(t *testing.T) {
	c1, _ := runReplayWorkload(t, 33)
	c2, _ := runReplayWorkload(t, 33)
	s1, s2 := mergedSnapshot(c1), mergedSnapshot(c2)

	if len(s1.Counters) != len(s2.Counters) {
		t.Fatalf("counter sets differ: %d vs %d", len(s1.Counters), len(s2.Counters))
	}
	for name, v1 := range s1.Counters {
		if v2, ok := s2.Counters[name]; !ok || v1 != v2 {
			t.Errorf("counter %s: %d vs %d (present=%v)", name, v1, v2, ok)
		}
	}
	for name, h1 := range s1.Histograms {
		h2, ok := s2.Histograms[name]
		if !ok {
			t.Errorf("histogram %s missing from replay", name)
			continue
		}
		if h1.Count != h2.Count {
			t.Errorf("histogram %s count: %d vs %d", name, h1.Count, h2.Count)
		}
		if name == "node_query_hops" || name == "store_put_hops" || name == "store_get_hops" {
			for i := range h1.Buckets {
				if h1.Buckets[i] != h2.Buckets[i] {
					t.Errorf("histogram %s bucket %d: %d vs %d", name, i, h1.Buckets[i], h2.Buckets[i])
				}
			}
			if h1.Sum != h2.Sum {
				t.Errorf("histogram %s sum: %v vs %v", name, h1.Sum, h2.Sum)
			}
		}
	}
}

// TestNodeSendsReconcileWithBus checks message conservation on a healthy
// overlay: every message a node hands to its endpoint is accounted for by
// the bus, minus self-deliveries (which bypass the transport) and send
// errors (which never enter the bus books). The harness enforces the same
// invariant under fault plans; this pins it in the fault-free base case.
func TestNodeSendsReconcileWithBus(t *testing.T) {
	c, _ := runReplayWorkload(t, 44)
	snap := mergedSnapshot(c)
	sent := snap.Counters["node_sent_total"]
	self := snap.Counters["node_send_self_total"]
	errs := snap.Counters["node_send_errors_total"]
	if got, want := sent-self-errs, c.bus.SendCount(); got != want {
		t.Fatalf("node books %d (sent=%d self=%d errs=%d) vs bus sends %d",
			got, sent, self, errs, want)
	}
	if d, dr := c.bus.DeliveredCount(), c.bus.DroppedCount(); d+dr != c.bus.SendCount() {
		t.Fatalf("bus books do not balance: delivered=%d dropped=%d sends=%d", d, dr, c.bus.SendCount())
	}
	if dr := c.bus.DroppedCount(); dr != 0 {
		t.Fatalf("fault-free bus dropped %d messages", dr)
	}
	if to := snap.Counters["node_query_timeouts_total"]; to != 0 {
		t.Fatalf("workload recorded %d query timeouts", to)
	}
	if tr := snap.Counters["node_traced_routes_total"]; tr == 0 {
		t.Fatal("traced workload recorded no traced routes")
	}
}
