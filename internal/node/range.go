package node

import (
	"time"

	"voronet/internal/geom"
	"voronet/internal/proto"
	"voronet/internal/voronoi"
)

// This file implements the distributed one-attribute range query sketched
// in the paper's perspectives (§7): "this query may be represented as a
// segment in the unit square. Then all objects lying on this segment can
// be reached easily by forwarding the query along this line."
//
// The query is greedy-routed to the owner of the segment start, then
// flooded along Voronoi neighbours: each node tests *its own region*
// against the segment — the region is computable purely from the node's
// local view (voronoi.LocalCell over vn) — answers the origin directly if
// it intersects, and forwards once to its neighbours. Per-query
// deduplication keeps the flood linear in the answer size. The whole
// flood path is read-only over the view: dedup state lives under queryMu
// and the cell test runs under the shared read lock, so concurrent floods
// and routed traffic never serialise behind view surgery.

// RangeQuery routes a segment query and invokes cb once per in-range
// object as answers arrive (ordering is arbitrary; the in-memory bus makes
// collection synchronous under Drain). There is no completion signal — the
// protocol, like the paper's sketch, is fire-and-collect; the collection
// window closes after Config.QueryTimeout, when the callback registration
// is reaped (late hits are dropped, never leaked).
func (n *Node) RangeQuery(a, b geom.Point, cb func(owner proto.NodeInfo)) error {
	n.mu.RLock()
	if !n.joined {
		n.mu.RUnlock()
		return ErrNotJoined
	}
	n.mu.RUnlock()
	n.queryMu.Lock()
	n.querySeq++
	id := n.querySeq
	pr := &pendingRange{cb: cb}
	pr.timer = time.AfterFunc(n.cfg.QueryTimeout, func() {
		n.queryMu.Lock()
		if n.rangeHits[id] == pr {
			delete(n.rangeHits, id)
		}
		n.queryMu.Unlock()
		// After reap returns no hit can invoke cb anymore, even one that
		// had already read the registration from the map.
		pr.reap()
	})
	n.rangeHits[id] = pr
	n.queryMu.Unlock()
	env := &proto.Envelope{
		Type:    proto.KindRoute,
		Purpose: proto.PurposeRange,
		Target:  a,
		TargetB: b,
		Origin:  n.self,
		QueryID: id,
	}
	n.handle(n.self.Addr, mustEncode(env))
	return nil
}

// startRangeFlood begins the flood at the owner of the segment start.
func (n *Node) startRangeFlood(env *proto.Envelope) {
	fwd := *env
	fwd.Type = proto.KindRangeForward
	fwd.From = n.self
	n.handleRangeForward(&fwd)
}

// handleRangeForward processes one flood step.
func (n *Node) handleRangeForward(env *proto.Envelope) {
	key := rangeKey{origin: env.Origin.Addr, id: env.QueryID}
	n.queryMu.Lock()
	if n.rangeSeen[key] {
		n.queryMu.Unlock()
		return
	}
	n.rangeSeen[key] = true
	n.rangeOrder = append(n.rangeOrder, key)
	if len(n.rangeOrder) > maxRangeMemory {
		old := n.rangeOrder[0]
		n.rangeOrder = n.rangeOrder[1:]
		delete(n.rangeSeen, old)
	}
	n.queryMu.Unlock()

	n.mu.RLock()
	if !n.joined {
		n.mu.RUnlock()
		return
	}
	// Does our own region intersect the segment? Computable locally.
	var nbrPts []geom.Point
	for _, v := range n.vn {
		nbrPts = append(nbrPts, v.Pos)
	}
	inRange := false
	if len(nbrPts) == 0 {
		inRange = true // singleton overlay owns everything
	} else {
		q := geom.ClosestPointOnSegment(n.self.Pos, env.Target, env.TargetB)
		dq := geom.Dist2(q, n.self.Pos)
		inRange = true
		for _, p := range nbrPts {
			if geom.Dist2(q, p) < dq {
				inRange = false
				break
			}
		}
		if !inRange {
			cell := voronoi.LocalCell(n.self.Pos, nbrPts, 0)
			inRange = geom.ConvexPolygonIntersectsSegment(cell, env.Target, env.TargetB)
		}
	}
	var fwdTo []proto.NodeInfo
	if inRange {
		fwdTo = n.vnList()
	}
	n.mu.RUnlock()

	if !inRange {
		return
	}
	n.send(env.Origin.Addr, &proto.Envelope{
		Type: proto.KindRangeHit, From: n.self, QueryID: env.QueryID,
	})
	for _, v := range fwdTo {
		fwd := *env
		fwd.From = n.self
		n.send(v.Addr, &fwd)
	}
}

type rangeKey struct {
	origin string
	id     uint64
}

// maxRangeMemory bounds the per-node deduplication memory for range
// floods; old query IDs are forgotten FIFO.
const maxRangeMemory = 1024
