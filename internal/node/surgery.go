package node

import "voronet/internal/proto"

// Optimistic view surgery
//
// The expensive step of every view change is the local Delaunay
// computation (miniNeighbors) over the candidate pool — historically run
// under the write lock, stalling every concurrent routed message on the
// node. The handlers in handle.go instead run it optimistically, in the
// same spirit as internal/core's sharded engine:
//
//	R. snapshot the candidate pool under the read lock and compute the
//	   new neighbour list with no lock held;
//	W. take the write lock, rebuild the pool from current state and
//	   compare: if nothing changed in between (by far the common case,
//	   and always the case under the serial simnet), install the
//	   precomputed list; otherwise recompute under the lock — which is
//	   byte-for-byte the pre-optimistic code path.
//
// Validation is by pool equality, not a generation counter: the pool is
// exactly the computation's input, so input-equality is the strongest
// possible "nothing changed" check and cannot be defeated by a mutation
// that forgets to bump a counter. Config.SerialSurgery skips phase R
// entirely for A/B comparison.
//
// The write lock is still taken for the install, so the lock-across-send
// audit (TestNoLockHeldAcrossSends) and the deterministic transcript
// property are untouched: under the serial simnet no handler runs between
// the two phases, the pools always match, and the installed view — and
// therefore every message sent — is identical to the serial path's.

// poolsEqual reports whether two candidate pools have exactly the same
// members with exactly the same identities (proto.NodeInfo is comparable).
func poolsEqual(a, b map[string]proto.NodeInfo) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if w, ok := b[k]; !ok || w != v {
			return false
		}
	}
	return true
}

// recomputeFromLocked installs specVN — computed off-lock from specPool —
// when specPool still equals the freshly rebuilt pool; otherwise it falls
// back to recomputing under the lock. specPool == nil (serial surgery, or
// no phase R ran) always recomputes. Caller holds n.mu.
func (n *Node) recomputeFromLocked(pool, specPool map[string]proto.NodeInfo, specVN []proto.NodeInfo) bool {
	if specPool != nil && poolsEqual(pool, specPool) {
		return n.installVNLocked(specVN)
	}
	return n.installVNLocked(miniNeighbors(n.self, pool))
}

// candidatePoolOverride is candidatePool with one two-hop list replaced
// (or supplied) without mutating n.twoHop — the optimistic phase of
// handleNeighborList must see the pool the locked phase will build *after*
// storing the sender's fresh list. Caller holds n.mu (read suffices).
func (n *Node) candidatePoolOverride(addr string, list []proto.NodeInfo) map[string]proto.NodeInfo {
	pool := make(map[string]proto.NodeInfo, 1+len(n.vn)*6)
	pool[n.self.Addr] = n.self
	for a, v := range n.vn {
		if !n.deadLocked(v) {
			pool[a] = v
		}
	}
	seenOverride := false
	for a, lst := range n.twoHop {
		if a == addr {
			lst = list
			seenOverride = true
		}
		for _, v := range lst {
			if _, ok := pool[v.Addr]; !ok && !n.deadLocked(v) {
				pool[v.Addr] = v
			}
		}
	}
	if !seenOverride {
		for _, v := range list {
			if _, ok := pool[v.Addr]; !ok && !n.deadLocked(v) {
				pool[v.Addr] = v
			}
		}
	}
	return pool
}
