package node

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"time"

	"voronet/internal/delaunay"
	"voronet/internal/geom"
	"voronet/internal/proto"
	"voronet/internal/transport"
)

// cluster builds n nodes on an in-memory bus, joined one at a time through
// random sponsors, draining the bus between operations.
type cluster struct {
	bus   *transport.Bus
	nodes []*Node
	rng   *rand.Rand
	seq   int
	// cfgMut, when set before nodes are added, adjusts each node's config
	// (e.g. enabling Alpha or RouteCacheSize for the lookup-stack tests).
	cfgMut func(*Config)
}

func newCluster(t *testing.T, n int, dmin float64, seed int64) *cluster {
	t.Helper()
	return newClusterCfg(t, n, dmin, seed, nil)
}

func newClusterCfg(t *testing.T, n int, dmin float64, seed int64, cfgMut func(*Config)) *cluster {
	t.Helper()
	c := &cluster{bus: transport.NewBus(), rng: rand.New(rand.NewSource(seed)), cfgMut: cfgMut}
	for i := 0; i < n; i++ {
		pos := geom.Pt(c.rng.Float64(), c.rng.Float64())
		c.addNode(t, pos, dmin)
	}
	return c
}

func (c *cluster) addNode(t *testing.T, pos geom.Point, dmin float64) *Node {
	t.Helper()
	addr := fmt.Sprintf("n%03d", c.seq)
	c.seq++
	ep, err := c.bus.Attach(addr)
	if err != nil {
		t.Fatal(err)
	}
	// Replies either arrive during the synchronous drain or are lost for
	// good; an effectively infinite query timeout keeps wall-clock reaper
	// timers (whose async callbacks would race with test state) out of
	// bus-driven tests. The reaper itself is tested in query_leak_test.go.
	cfg := Config{DMin: dmin, LongLinks: 1, Seed: int64(c.seq),
		QueryTimeout: 365 * 24 * time.Hour}
	if c.cfgMut != nil {
		c.cfgMut(&cfg)
	}
	var nd *Node
	if cfg.WALDir != "" {
		var err error
		nd, _, err = NewDurable(ep, pos, cfg)
		if err != nil {
			t.Fatal(err)
		}
	} else {
		nd = New(ep, pos, cfg)
	}
	if len(c.nodes) == 0 {
		if err := nd.Bootstrap(); err != nil {
			t.Fatal(err)
		}
	} else {
		via := c.nodes[c.rng.Intn(len(c.nodes))].Info().Addr
		if err := nd.Join(via); err != nil {
			t.Fatal(err)
		}
		c.bus.Drain()
		if !nd.Joined() {
			t.Fatalf("node %s failed to join", addr)
		}
	}
	c.nodes = append(c.nodes, nd)
	return nd
}

// checkViewsAgainstReference rebuilds the ground-truth Delaunay
// triangulation of the live nodes and requires every node's vn to match it
// exactly.
func (c *cluster) checkViewsAgainstReference(t *testing.T) {
	t.Helper()
	tr := delaunay.New()
	byVert := map[delaunay.VertexID]string{}
	vertOf := map[string]delaunay.VertexID{}
	for _, nd := range c.nodes {
		if !nd.Joined() {
			continue
		}
		v, err := tr.Insert(nd.Info().Pos, delaunay.NoVertex)
		if err != nil {
			t.Fatalf("reference insert: %v", err)
		}
		byVert[v] = nd.Info().Addr
		vertOf[nd.Info().Addr] = v
	}
	for _, nd := range c.nodes {
		if !nd.Joined() {
			continue
		}
		var want []string
		for _, v := range tr.Neighbors(vertOf[nd.Info().Addr], nil) {
			want = append(want, byVert[v])
		}
		var got []string
		for _, v := range nd.Neighbors() {
			got = append(got, v.Addr)
		}
		sort.Strings(want)
		sort.Strings(got)
		if len(got) != len(want) {
			t.Fatalf("node %s: vn=%v, want %v", nd.Info().Addr, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("node %s: vn=%v, want %v", nd.Info().Addr, got, want)
			}
		}
	}
}

func TestTwoNodes(t *testing.T) {
	c := newCluster(t, 2, 0.05, 1)
	a, b := c.nodes[0], c.nodes[1]
	an := a.Neighbors()
	bn := b.Neighbors()
	if len(an) != 1 || an[0].Addr != b.Info().Addr {
		t.Fatalf("a's neighbours: %v", an)
	}
	if len(bn) != 1 || bn[0].Addr != a.Info().Addr {
		t.Fatalf("b's neighbours: %v", bn)
	}
}

func TestJoinViewsMatchReference(t *testing.T) {
	c := newCluster(t, 60, 0.02, 2)
	c.checkViewsAgainstReference(t)
}

func TestJoinViewsMatchReferenceLarger(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	c := newCluster(t, 200, 0.02, 3)
	c.checkViewsAgainstReference(t)
}

func TestCloseNeighboursSymmetricAndComplete(t *testing.T) {
	// Large dmin so close neighbourhoods are non-trivial.
	dmin := 0.15
	c := newCluster(t, 50, dmin, 4)
	nonEmpty := 0
	for _, nd := range c.nodes {
		cn := nd.CloseNeighbors()
		if len(cn) > 0 {
			nonEmpty++
		}
		got := map[string]bool{}
		for _, e := range cn {
			got[e.Addr] = true
		}
		for _, other := range c.nodes {
			if other == nd {
				continue
			}
			want := geom.Dist(nd.Info().Pos, other.Info().Pos) <= dmin
			if want && !got[other.Info().Addr] {
				t.Fatalf("%s is missing close neighbour %s (d=%g)",
					nd.Info().Addr, other.Info().Addr, geom.Dist(nd.Info().Pos, other.Info().Pos))
			}
			if !want && got[other.Info().Addr] {
				t.Fatalf("%s has far close neighbour %s", nd.Info().Addr, other.Info().Addr)
			}
		}
	}
	if nonEmpty == 0 {
		t.Fatal("vacuous test: no close neighbourhoods")
	}
}

func TestLongLinksPointToOwner(t *testing.T) {
	c := newCluster(t, 50, 0.02, 5)
	for _, nd := range c.nodes {
		targets := nd.LongTargets()
		links := nd.LongNeighbors()
		if len(links) != len(targets) || len(links) == 0 {
			t.Fatalf("%s: %d links for %d targets", nd.Info().Addr, len(links), len(targets))
		}
		for j, tgt := range targets {
			// Ground truth owner: nearest node to the target.
			bestD := geom.Dist2(links[j].Pos, tgt)
			for _, other := range c.nodes {
				if d := geom.Dist2(other.Info().Pos, tgt); d < bestD {
					t.Fatalf("%s link %d: %s holds it, but %s is closer to %v",
						nd.Info().Addr, j, links[j].Addr, other.Info().Addr, tgt)
				}
			}
		}
	}
}

func TestBackEntriesMirrorLongLinks(t *testing.T) {
	c := newCluster(t, 40, 0.02, 6)
	holders := map[string]*Node{}
	for _, nd := range c.nodes {
		holders[nd.Info().Addr] = nd
	}
	for _, nd := range c.nodes {
		for j, l := range nd.LongNeighbors() {
			h := holders[l.Addr]
			found := false
			for _, ref := range h.BackEntries() {
				if ref.Origin.Addr == nd.Info().Addr && ref.Link == j {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("%s link %d not mirrored at %s", nd.Info().Addr, j, l.Addr)
			}
		}
	}
}

func TestLeaveRepairsViewsAndLinks(t *testing.T) {
	c := newCluster(t, 50, 0.02, 7)
	// Remove a third of the nodes (not the ones we check below).
	for i := 0; i < 16; i++ {
		idx := 1 + c.rng.Intn(len(c.nodes)-1)
		nd := c.nodes[idx]
		if !nd.Joined() {
			continue
		}
		if err := nd.Leave(); err != nil {
			t.Fatal(err)
		}
		c.bus.Drain()
	}
	var live []*Node
	for _, nd := range c.nodes {
		if nd.Joined() {
			live = append(live, nd)
		}
	}
	c.nodes = live
	c.checkViewsAgainstReference(t)

	// Long links must point at live owners.
	addrs := map[string]bool{}
	for _, nd := range live {
		addrs[nd.Info().Addr] = true
	}
	for _, nd := range live {
		for j, l := range nd.LongNeighbors() {
			if l.Addr == "" {
				continue
			}
			if !addrs[l.Addr] {
				t.Fatalf("%s link %d points at departed node %s", nd.Info().Addr, j, l.Addr)
			}
			tgt := nd.LongTargets()[j]
			for _, other := range live {
				if geom.Dist2(other.Info().Pos, tgt) < geom.Dist2(l.Pos, tgt) {
					t.Fatalf("%s link %d held by %s but %s is closer", nd.Info().Addr, j, l.Addr, other.Info().Addr)
				}
			}
		}
	}
}

func TestQueryFindsOwner(t *testing.T) {
	c := newCluster(t, 60, 0.02, 8)
	for q := 0; q < 40; q++ {
		p := geom.Pt(c.rng.Float64(), c.rng.Float64())
		from := c.nodes[c.rng.Intn(len(c.nodes))]
		var got proto.NodeInfo
		gotHops := -1
		if err := from.Query(p, func(owner proto.NodeInfo, hops int) {
			got = owner
			gotHops = hops
		}); err != nil {
			t.Fatal(err)
		}
		c.bus.Drain()
		if gotHops < 0 {
			t.Fatal("query unanswered")
		}
		// Ground truth.
		best := c.nodes[0].Info()
		for _, nd := range c.nodes {
			if geom.Dist2(nd.Info().Pos, p) < geom.Dist2(best.Pos, p) {
				best = nd.Info()
			}
		}
		if got.Addr != best.Addr && geom.Dist2(got.Pos, p) != geom.Dist2(best.Pos, p) {
			t.Fatalf("query %v answered by %s, owner is %s", p, got.Addr, best.Addr)
		}
	}
}

func TestJoinErrors(t *testing.T) {
	bus := transport.NewBus()
	ep, _ := bus.Attach("solo")
	nd := New(ep, geom.Pt(0.5, 0.5), Config{DMin: 0.01})
	if err := nd.Leave(); err != ErrNotJoined {
		t.Fatalf("leave before join: %v", err)
	}
	if err := nd.Bootstrap(); err != nil {
		t.Fatal(err)
	}
	if err := nd.Bootstrap(); err != ErrAlreadyJoined {
		t.Fatalf("double bootstrap: %v", err)
	}
	if err := nd.Join("nowhere"); err != ErrAlreadyJoined {
		t.Fatalf("join after bootstrap: %v", err)
	}
}

func TestChurnSequence(t *testing.T) {
	// Interleave joins and leaves; views must track the reference at every
	// quiescent point.
	c := newCluster(t, 12, 0.05, 9)
	dmin := 0.05
	for step := 0; step < 40; step++ {
		if len(c.nodes) < 6 || c.rng.Float64() < 0.6 {
			c.addNode(t, geom.Pt(c.rng.Float64(), c.rng.Float64()), dmin)
		} else {
			idx := c.rng.Intn(len(c.nodes))
			nd := c.nodes[idx]
			if err := nd.Leave(); err != nil {
				t.Fatal(err)
			}
			c.bus.Drain()
			nd.ep.Close()
			c.nodes = append(c.nodes[:idx], c.nodes[idx+1:]...)
		}
		if step%8 == 0 {
			c.checkViewsAgainstReference(t)
		}
	}
	c.checkViewsAgainstReference(t)
}

func TestOverTCP(t *testing.T) {
	// A small real-sockets overlay: bootstrap + joins + a query.
	var nodes []*Node
	mk := func(pos geom.Point) *Node {
		ep, err := transport.ListenTCP("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		nd := New(ep, pos, Config{DMin: 0.05, LongLinks: 1, Seed: int64(len(nodes))})
		nodes = append(nodes, nd)
		return nd
	}
	defer func() {
		for _, nd := range nodes {
			nd.ep.Close()
		}
	}()

	first := mk(geom.Pt(0.2, 0.2))
	if err := first.Bootstrap(); err != nil {
		t.Fatal(err)
	}
	positions := []geom.Point{{X: 0.8, Y: 0.2}, {X: 0.5, Y: 0.8}, {X: 0.4, Y: 0.4}, {X: 0.7, Y: 0.6}}
	for _, p := range positions {
		nd := mk(p)
		if err := nd.Join(first.Info().Addr); err != nil {
			t.Fatal(err)
		}
		waitFor(t, 5*time.Second, nd.Joined)
	}
	// Quiesce: give maintenance traffic a moment, then check a query.
	time.Sleep(100 * time.Millisecond)

	target := geom.Pt(0.45, 0.45)
	done := make(chan proto.NodeInfo, 1)
	if err := nodes[1].Query(target, func(owner proto.NodeInfo, hops int) {
		done <- owner
	}); err != nil {
		t.Fatal(err)
	}
	select {
	case owner := <-done:
		best := nodes[0].Info()
		for _, nd := range nodes {
			if geom.Dist2(nd.Info().Pos, target) < geom.Dist2(best.Pos, target) {
				best = nd.Info()
			}
		}
		if owner.Addr != best.Addr {
			t.Fatalf("TCP query answered by %s, want %s", owner.Addr, best.Addr)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("TCP query timed out")
	}
}

func waitFor(t *testing.T, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("condition not reached in time")
}
