package node

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"

	"voronet/internal/geom"
	"voronet/internal/store"
	"voronet/internal/transport"
)

// lockAuditEndpoint wraps a transport endpoint and, on every outbound
// send, checks that the owning node holds neither of its mutexes. The
// in-memory bus delivers synchronously on the driving goroutine, so a
// failed TryLock can only mean *this* goroutine reached the transport
// with a lock held — exactly the "network under locks" bug class: a
// blocking TCP write would then stall every other operation on the node.
type lockAuditEndpoint struct {
	transport.Endpoint
	node       *Node
	violations *atomic.Int64
}

func (e *lockAuditEndpoint) Send(to string, payload []byte) error {
	if n := e.node; n != nil {
		if n.mu.TryLock() {
			n.mu.Unlock()
		} else {
			e.violations.Add(1)
		}
		if n.queryMu.TryLock() {
			n.queryMu.Unlock()
		} else {
			e.violations.Add(1)
		}
	}
	return e.Endpoint.Send(to, payload)
}

// TestNoLockHeldAcrossSends audits the whole node protocol — join,
// gossip, long-link search, the routed store Put/Get/Delete path, leave —
// for transport sends performed while a node mutex is held. Regression
// test for the store read/write path audit: every send must happen after
// the state under the lock has been snapshotted and the lock released.
func TestNoLockHeldAcrossSends(t *testing.T) {
	bus := transport.NewBus()
	var violations atomic.Int64
	rng := rand.New(rand.NewSource(61))

	const peers = 12
	nodes := make([]*Node, 0, peers)
	addrs := make([]string, 0, peers)
	for i := 0; i < peers; i++ {
		addr := fmt.Sprintf("n%02d", i)
		ep, err := bus.Attach(addr)
		if err != nil {
			t.Fatal(err)
		}
		guard := &lockAuditEndpoint{Endpoint: ep, violations: &violations}
		nd := New(guard, geom.Pt(rng.Float64(), rng.Float64()), Config{
			DMin: 0.05, LongLinks: 1, Seed: int64(i), Replication: 2,
		})
		guard.node = nd
		if i == 0 {
			if err := nd.Bootstrap(); err != nil {
				t.Fatal(err)
			}
		} else {
			if err := nd.Join(addrs[rng.Intn(len(addrs))]); err != nil {
				t.Fatal(err)
			}
			bus.Drain()
			if !nd.Joined() {
				t.Fatalf("node %s failed to join", addr)
			}
		}
		nodes = append(nodes, nd)
		addrs = append(addrs, addr)
	}

	// The routed store path: puts, gets (hit and miss), overwrite, delete.
	keys := make([]geom.Point, 20)
	for i := range keys {
		keys[i] = geom.Pt(rng.Float64(), rng.Float64())
		val := []byte(fmt.Sprintf("v%02d", i))
		if err := nodes[rng.Intn(peers)].Put(keys[i], val, nil); err != nil {
			t.Fatal(err)
		}
		bus.Drain()
	}
	for i, k := range keys {
		var got *store.Reply
		if err := nodes[rng.Intn(peers)].Get(k, func(r store.Reply) { got = &r }); err != nil {
			t.Fatal(err)
		}
		bus.Drain()
		if got == nil || !got.Found || !bytes.Equal(got.Value, []byte(fmt.Sprintf("v%02d", i))) {
			t.Fatalf("get %d: %+v", i, got)
		}
	}
	if err := nodes[1].Get(geom.Pt(0.999, 0.999), nil); err != nil {
		t.Fatal(err)
	}
	bus.Drain()
	if err := nodes[2].Delete(keys[0], nil); err != nil {
		t.Fatal(err)
	}
	bus.Drain()

	// Churn: anti-entropy plus a leave, both heavy send paths.
	for _, nd := range nodes {
		nd.SyncReplicas()
	}
	bus.Drain()
	if err := nodes[peers-1].Leave(); err != nil {
		t.Fatal(err)
	}
	bus.Drain()

	if v := violations.Load(); v != 0 {
		t.Fatalf("%d transport send(s) performed while a node mutex was held", v)
	}
}
