package node

import (
	"strings"
	"testing"

	"voronet/internal/geom"
)

func TestNearestKnownAndString(t *testing.T) {
	c := newCluster(t, 25, 0.05, 94)
	nd := c.nodes[5]
	if s := nd.String(); !strings.Contains(s, nd.Info().Addr) {
		t.Fatalf("String(): %q", s)
	}
	// NearestKnown returns the closest node within the local view; it must
	// never be farther than the node itself and must prefer a neighbour
	// whose position is closer.
	for q := 0; q < 40; q++ {
		p := geom.Pt(c.rng.Float64(), c.rng.Float64())
		got := nd.NearestKnown(p)
		if geom.Dist2(got.Pos, p) > geom.Dist2(nd.Info().Pos, p) {
			t.Fatalf("NearestKnown farther than self for %v", p)
		}
		for _, v := range nd.Neighbors() {
			if geom.Dist2(v.Pos, p) < geom.Dist2(got.Pos, p) {
				t.Fatalf("NearestKnown missed closer neighbour %s", v.Addr)
			}
		}
	}
}
