package node

import (
	"bytes"
	"encoding/gob"
	"testing"

	"voronet/internal/geom"
	"voronet/internal/proto"
	"voronet/internal/transport"
)

// rawEncode serialises an envelope with gob directly, bypassing any
// validation the proto package performs: the bytes a malicious peer would
// put on the wire.
func rawEncode(t *testing.T, env *proto.Envelope) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(env); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestNegativeLinkEnvelopeDoesNotPanic: a KindLongLinkGrant (or Update)
// carrying Link: -1 used to crash the node with an index-out-of-range
// panic at the longNbrs slice. The frame must be dropped at decode, and —
// defence in depth — the handlers must bounds-check even an envelope that
// somehow got past the decoder.
func TestNegativeLinkEnvelopeDoesNotPanic(t *testing.T) {
	bus := transport.NewBus()
	ep, err := bus.Attach("victim")
	if err != nil {
		t.Fatal(err)
	}
	n := New(ep, geom.Pt(0.5, 0.5), Config{DMin: 0.05, LongLinks: 2, Seed: 1})
	if err := n.Bootstrap(); err != nil {
		t.Fatal(err)
	}

	hostile := []*proto.Envelope{
		{Type: proto.KindLongLinkGrant, From: proto.NodeInfo{Addr: "evil", Pos: geom.Pt(0.1, 0.1)}, Link: -1},
		{Type: proto.KindLongLinkUpdate, From: proto.NodeInfo{Addr: "evil"}, Granter: proto.NodeInfo{Addr: "evil2"}, Link: -1},
		{Type: proto.KindLongLinkGrant, From: proto.NodeInfo{Addr: "evil"}, Link: 1 << 30},
		{Type: proto.KindRoute, Purpose: proto.PurposeQuery, Target: geom.Pt(0.2, 0.2),
			Origin: proto.NodeInfo{Addr: "evil", Pos: geom.Pt(0.1, 0.1)}, Hops: -7},
	}
	for _, env := range hostile {
		// The wire path: raw gob bytes reach handle, Decode's validation
		// rejects the negative fields, the frame is dropped.
		n.handle("evil", rawEncode(t, env))
		// The defence-in-depth path: inject the decoded envelope past the
		// wire validation straight into the dispatcher; the in-handler
		// bounds checks must hold on their own.
		n.deliver(env)
	}
	bus.Drain()

	// The node survived and its long-link state is intact.
	for j, l := range n.LongNeighbors() {
		if l.Addr != n.Info().Addr {
			t.Fatalf("long link %d corrupted by hostile envelope: %+v", j, l)
		}
	}
	if !n.Joined() {
		t.Fatal("node no longer joined after hostile envelopes")
	}
}
