package node

import (
	"testing"

	"voronet/internal/geom"
	"voronet/internal/proto"
	"voronet/internal/stats"
)

func TestDistributedQueryHopsArePolylog(t *testing.T) {
	// A medium distributed overlay: query hop counts must look like greedy
	// routing (small, bounded far below n), and every query must resolve
	// to the exact owner.
	if testing.Short() {
		t.Skip("short mode")
	}
	const n = 150
	c := newCluster(t, n, 0.02, 77)
	var hops stats.Running
	for q := 0; q < 120; q++ {
		p := geom.Pt(c.rng.Float64(), c.rng.Float64())
		from := c.nodes[c.rng.Intn(len(c.nodes))]
		answered := false
		if err := from.Query(p, func(owner proto.NodeInfo, h int) {
			answered = true
			hops.Add(float64(h))
			best := c.nodes[0].Info()
			for _, nd := range c.nodes {
				if geom.Dist2(nd.Info().Pos, p) < geom.Dist2(best.Pos, p) {
					best = nd.Info()
				}
			}
			if owner.Addr != best.Addr && geom.Dist2(owner.Pos, p) != geom.Dist2(best.Pos, p) {
				t.Errorf("query %v: owner %s, want %s", p, owner.Addr, best.Addr)
			}
		}); err != nil {
			t.Fatal(err)
		}
		c.bus.Drain()
		if !answered {
			t.Fatalf("query %d unanswered", q)
		}
	}
	if hops.Mean() > 12 {
		t.Fatalf("mean query hops %.1f implausibly high for n=%d", hops.Mean(), n)
	}
	t.Logf("distributed queries: mean %.2f hops, max %.0f over %d nodes", hops.Mean(), hops.Max(), n)
}

func TestJoinMessageCostIsConstant(t *testing.T) {
	// §4.2: AddVoronoiRegion costs O(|vn|) messages. Measure the marginal
	// bus traffic of late joins; it must not grow with the overlay size.
	if testing.Short() {
		t.Skip("short mode")
	}
	c := newCluster(t, 40, 0.02, 78)
	before := c.bus.DeliveredCount()
	c.addNode(t, geom.Pt(c.rng.Float64(), c.rng.Float64()), 0.02)
	costAt40 := c.bus.DeliveredCount() - before

	for len(c.nodes) < 160 {
		c.addNode(t, geom.Pt(c.rng.Float64(), c.rng.Float64()), 0.02)
	}
	before = c.bus.DeliveredCount()
	c.addNode(t, geom.Pt(c.rng.Float64(), c.rng.Float64()), 0.02)
	costAt160 := c.bus.DeliveredCount() - before

	// Routing adds O(log^2 n) and maintenance O(1); a 4x size increase must
	// not multiply the message cost (allow generous headroom for routing
	// growth and gossip variance).
	if costAt160 > 6*costAt40+60 {
		t.Fatalf("join cost grew from %d to %d messages", costAt40, costAt160)
	}
	t.Logf("join cost: %d messages at n=40, %d at n=160", costAt40, costAt160)
}

func TestMessageLossDegradesGracefully(t *testing.T) {
	// Failure injection: drop a fraction of gossip traffic *after* the
	// overlay is built. Queries routed over surviving state must still
	// resolve (routing needs no acknowledgements), even though view
	// maintenance under loss is out of the paper's scope.
	c := newCluster(t, 40, 0.02, 79)
	c.bus.DropRate = 0.1
	okCount := 0
	for q := 0; q < 30; q++ {
		p := geom.Pt(c.rng.Float64(), c.rng.Float64())
		from := c.nodes[c.rng.Intn(len(c.nodes))]
		if err := from.Query(p, func(owner proto.NodeInfo, h int) {
			okCount++
		}); err != nil {
			t.Fatal(err)
		}
		c.bus.Drain()
	}
	// With 10% loss some queries die in flight; most must survive.
	if okCount < 15 {
		t.Fatalf("only %d/30 queries survived 10%% message loss", okCount)
	}
	t.Logf("%d/30 queries answered under 10%% loss", okCount)
}
