package node

import (
	"encoding/binary"
	"hash/fnv"
	"math"
	"sort"

	"voronet/internal/geom"
	"voronet/internal/proto"
)

// Digest-based anti-entropy: SyncReplicas no longer pushes full records
// every sweep. Instead each target first receives a KindSyncDigest — a
// compact sorted list of 8-byte fingerprints of the records this node
// would push there — and answers with a KindSyncPull naming only the
// fingerprints it does not hold; the sender then streams full records
// (ordinary KindReplicaSync) for exactly that subset. When replicas
// already agree (the common steady state), the whole exchange is one
// small digest per target and silence back: no-diff sync bytes drop by
// an order of magnitude (the acceptance measurement lives in
// SyncReplicasProbe and the harness SyncBytes step).
//
// The exchange is stateless on both sides — the pull is answered by
// recomputing placement from the current view, so a view change between
// digest and pull at worst wastes one round, never corrupts. All
// correctness still rests on the receiver's newest-wins Apply:
// duplicated, reordered or stale streams converge exactly as the full
// push did. Config.FullSyncReplicas restores the old unconditional push.

// recordFP fingerprints a record's identity: key bits, version and
// tombstone flag through 64-bit FNV-1a. The value bytes are deliberately
// not hashed — owner writes are the only version sources, so equal
// (key, version, deleted) implies equal content (the same argument that
// lets Apply keep the resident record on equal versions).
func recordFP(rec proto.StoreRecord) uint64 {
	var b [25]byte
	binary.LittleEndian.PutUint64(b[0:8], math.Float64bits(rec.Key.X))
	binary.LittleEndian.PutUint64(b[8:16], math.Float64bits(rec.Key.Y))
	binary.LittleEndian.PutUint64(b[16:24], rec.Version)
	if rec.Deleted {
		b[24] = 1
	}
	h := fnv.New64a()
	h.Write(b[:])
	return h.Sum64()
}

func recFPs(recs []proto.StoreRecord) []uint64 {
	fps := make([]uint64, len(recs))
	for i, rec := range recs {
		fps[i] = recordFP(rec)
	}
	return fps
}

// packFPs serialises fingerprints as sorted little-endian 8-byte words —
// one flat blob, not a gob []uint64 (gob's per-element varint framing
// would double the size), sorted so identical sets produce identical
// bytes (replayable transcripts).
func packFPs(fps []uint64) []byte {
	sort.Slice(fps, func(i, j int) bool { return fps[i] < fps[j] })
	out := make([]byte, 0, len(fps)*8)
	for _, fp := range fps {
		out = binary.LittleEndian.AppendUint64(out, fp)
	}
	return out
}

func unpackFPs(b []byte) []uint64 {
	fps := make([]uint64, 0, len(b)/8)
	for len(b) >= 8 {
		fps = append(fps, binary.LittleEndian.Uint64(b[:8]))
		b = b[8:]
	}
	return fps
}

// syncTarget is one anti-entropy destination: the records this node
// would push to addr, either as replica refresh (handoff false) or as an
// ownership handoff. One address can appear twice, once per mode.
type syncTarget struct {
	addr    string
	handoff bool
	recs    []proto.StoreRecord
}

// syncTargets computes the full anti-entropy push plan, mirroring
// pushByOwner's placement exactly: records this node owns go to the
// replication closest Voronoi neighbours per key (replica refresh),
// records it merely holds go to the key's owner as a handoff. Targets
// and records keep first-seen order over the sorted record snapshot, so
// derived message sequences are deterministic.
func syncTargets(self proto.NodeInfo, vns []proto.NodeInfo, replication int, recs []proto.StoreRecord, exclude string) []syncTarget {
	type tkey struct {
		addr    string
		handoff bool
	}
	idx := make(map[tkey]int)
	var out []syncTarget
	add := func(addr string, handoff bool, rec proto.StoreRecord) {
		if addr == "" || addr == exclude {
			return
		}
		k := tkey{addr, handoff}
		i, ok := idx[k]
		if !ok {
			i = len(out)
			idx[k] = i
			out = append(out, syncTarget{addr: addr, handoff: handoff})
		}
		out[i].recs = append(out[i].recs, rec)
	}
	sorted := append([]proto.NodeInfo(nil), vns...)
	for _, rec := range recs {
		owner, isSelf := ownerForKey(self, vns, rec.Key)
		if !isSelf {
			add(owner.Addr, true, rec)
			continue
		}
		// Replica set: the replication closest neighbours, distance then
		// address — the same ordering replicateRecords uses, so digest
		// mode and full mode name identical destinations.
		sort.Slice(sorted, func(i, j int) bool {
			di, dj := geom.Dist2(sorted[i].Pos, rec.Key), geom.Dist2(sorted[j].Pos, rec.Key)
			if di != dj {
				return di < dj
			}
			return sorted[i].Addr < sorted[j].Addr
		})
		picked := 0
		for _, v := range sorted {
			if picked == replication {
				break
			}
			if v.Addr == exclude {
				continue
			}
			add(v.Addr, false, rec)
			picked++
		}
	}
	return out
}

// handleSyncDigest answers an anti-entropy opener: fingerprint our whole
// local holding, pull only what we lack. No reply at all when nothing is
// missing — silence is the no-diff fast path.
func (n *Node) handleSyncDigest(env *proto.Envelope) {
	n.mu.RLock()
	joined := n.joined
	n.mu.RUnlock()
	if !joined && !env.Handoff {
		// A plain replica refresh to a departed node is stale: drop,
		// exactly as handleReplicaSync does. A handoff digest is
		// different — our store is empty, so the pull below requests
		// everything and the records arrive as a KindReplicaSync
		// handoff, which the redelegation path re-places at a survivor.
		return
	}
	have := make(map[uint64]bool)
	for _, rec := range n.kv.Snapshot() {
		have[recordFP(rec)] = true
	}
	var missing []uint64
	for _, fp := range unpackFPs(env.Digest) {
		if !have[fp] {
			missing = append(missing, fp)
		}
	}
	if len(missing) == 0 {
		return
	}
	_ = n.send(env.From.Addr, &proto.Envelope{
		Type: proto.KindSyncPull, From: n.self, Handoff: env.Handoff,
		Digest: packFPs(missing),
	})
}

// handleSyncPull streams the records a digest receiver asked for. The
// push plan is recomputed from the current view rather than remembered:
// if the view moved between digest and pull, unmatched fingerprints are
// simply dropped and the next sweep re-offers them.
func (n *Node) handleSyncPull(env *proto.Envelope) {
	n.mu.RLock()
	if !n.joined {
		n.mu.RUnlock()
		return
	}
	self := n.self
	vns := n.vnList()
	rep := n.cfg.Replication
	n.mu.RUnlock()
	recs := n.kv.Snapshot()
	if len(recs) == 0 {
		return
	}
	wanted := make(map[uint64]bool, len(env.Digest)/8)
	for _, fp := range unpackFPs(env.Digest) {
		wanted[fp] = true
	}
	for _, t := range syncTargets(self, vns, rep, recs, "") {
		if t.addr != env.From.Addr || t.handoff != env.Handoff {
			continue
		}
		var stream []proto.StoreRecord
		for _, rec := range t.recs {
			if wanted[recordFP(rec)] {
				stream = append(stream, rec)
			}
		}
		for _, chunk := range chunkRecords(stream) {
			// Best effort, like every anti-entropy push: a vanished
			// peer is repaired by its own departure notifications.
			_ = n.send(t.addr, &proto.Envelope{
				Type: proto.KindReplicaSync, From: self, Records: chunk, Handoff: t.handoff,
			})
		}
	}
}

// SyncReplicasProbe measures, without sending anything, what one
// anti-entropy sweep would cost on the wire in each mode: the encoded
// bytes of the digest envelopes (the whole cost of a no-diff digest
// sweep) versus the encoded bytes of the full-record push. The harness
// SyncBytes step asserts the ratio; BENCH_chaos.json records it.
func (n *Node) SyncReplicasProbe() (digestBytes, fullBytes int) {
	n.mu.RLock()
	if !n.joined {
		n.mu.RUnlock()
		return 0, 0
	}
	self := n.self
	vns := n.vnList()
	rep := n.cfg.Replication
	n.mu.RUnlock()
	recs := n.kv.Snapshot()
	if len(recs) == 0 {
		return 0, 0
	}
	// Measure in the codec this node actually sends with (Config.GobWire
	// selects the legacy baseline), so the probe's byte accounting
	// matches what the wire counters would record.
	wb := proto.GetBuf()
	defer wb.Put()
	for _, t := range syncTargets(self, vns, rep, recs, "") {
		if b, err := proto.AppendEncodeMode(wb.B[:0], &proto.Envelope{
			Type: proto.KindSyncDigest, From: self, Handoff: t.handoff,
			Digest: packFPs(recFPs(t.recs)),
		}, n.cfg.GobWire); err == nil {
			wb.B = b
			digestBytes += len(b)
		}
		for _, chunk := range chunkRecords(t.recs) {
			if b, err := proto.AppendEncodeMode(wb.B[:0], &proto.Envelope{
				Type: proto.KindReplicaSync, From: self, Records: chunk, Handoff: t.handoff,
			}, n.cfg.GobWire); err == nil {
				wb.B = b
				fullBytes += len(b)
			}
		}
	}
	return digestBytes, fullBytes
}
