package node

import (
	"time"

	"voronet/internal/proto"
)

// Route-cache refresher: the cache (cache.go) repairs itself reactively —
// a stale entry loses the strictly-closer scan or is invalidated by view
// surgery — but the client that triggers the repair still pays the full
// greedy route for its read. With Config.CacheRefreshInterval set, a
// background loop re-queries the origin's hottest cached targets each
// interval; the answer travels the normal query path and re-populates (or
// corrects) the entry at the origin, so the keys a Zipf workload hammers
// stay one-hop fresh without a client ever eating the miss. Each
// re-validated entry counts in node_cache_refresh_total.
//
// The refresher holds no lock while querying (it rides the public Query
// path) and skips rounds while the node is not joined, so it is safe to
// start at construction and leave running until Leave or Shutdown stops
// it. A node that rejoins after Leave runs without the refresher — the
// cache restarts cold there anyway.

// startRefresher launches the refresh loop when the config asks for one.
// Called from newNode; idempotent per node.
func (n *Node) startRefresher() {
	if n.cache == nil || n.cfg.CacheRefreshInterval <= 0 {
		return
	}
	n.refreshStop = make(chan struct{})
	go n.refreshLoop()
}

// stopRefresher ends the refresh loop; safe to call multiple times and
// when no refresher runs.
func (n *Node) stopRefresher() {
	if n.refreshStop == nil {
		return
	}
	n.refreshOnce.Do(func() { close(n.refreshStop) })
}

func (n *Node) refreshLoop() {
	tick := time.NewTicker(n.cfg.CacheRefreshInterval)
	defer tick.Stop()
	for {
		select {
		case <-n.refreshStop:
			return
		case <-tick.C:
			n.refreshCacheOnce()
		}
	}
}

// refreshCacheOnce re-queries up to Config.CacheRefreshBatch of the
// hottest cached targets. The answers flow through the regular
// KindQueryAnswer path, whose origin-side handler already inserts the
// answering node into the cache — the refresher needs no result plumbing
// of its own.
func (n *Node) refreshCacheOnce() {
	if !n.Joined() {
		return
	}
	batch := n.cfg.CacheRefreshBatch
	if batch <= 0 {
		batch = 4
	}
	for _, key := range n.cache.hottest(batch) {
		if err := n.Query(key, func(proto.NodeInfo, int) {}); err != nil {
			return // not joined (raced a Leave): try again next tick
		}
		n.nm.cacheRefresh.Inc()
	}
}
