package node

import (
	"fmt"
	"testing"

	"voronet/internal/geom"
	"voronet/internal/proto"
)

func info(addr string, p geom.Point) proto.NodeInfo {
	return proto.NodeInfo{Addr: addr, Pos: p}
}

func TestRouteCacheLRUEviction(t *testing.T) {
	rc := newRouteCache(3, 0.05)
	// Four well-separated points: distinct cells at grid 0.05.
	pts := []geom.Point{geom.Pt(0.1, 0.1), geom.Pt(0.3, 0.3), geom.Pt(0.5, 0.5), geom.Pt(0.7, 0.7)}
	for i := 0; i < 3; i++ {
		rc.insert(pts[i], info(fmt.Sprintf("n%d", i), pts[i]))
	}
	if rc.size() != 3 {
		t.Fatalf("size = %d, want 3", rc.size())
	}
	// Touch the oldest entry so the middle one becomes LRU.
	if _, ok := rc.lookup(pts[0]); !ok {
		t.Fatal("entry 0 missing before eviction")
	}
	rc.insert(pts[3], info("n3", pts[3]))
	if rc.size() != 3 {
		t.Fatalf("size = %d after eviction, want 3", rc.size())
	}
	if _, ok := rc.lookup(pts[1]); ok {
		t.Fatal("LRU entry 1 survived the eviction")
	}
	for _, i := range []int{0, 2, 3} {
		if owner, ok := rc.lookup(pts[i]); !ok || owner.Addr != fmt.Sprintf("n%d", i) {
			t.Fatalf("entry %d = %+v (present %v)", i, owner, ok)
		}
	}
}

func TestRouteCacheCellQuantisation(t *testing.T) {
	rc := newRouteCache(8, 0.1)
	// Two keys inside the same 0.1-cell share one entry: the second
	// insert overwrites, and both look up to the latest owner.
	a, b := geom.Pt(0.51, 0.52), geom.Pt(0.53, 0.58)
	rc.insert(a, info("first", a))
	rc.insert(b, info("second", b))
	if rc.size() != 1 {
		t.Fatalf("size = %d, want 1 (same cell)", rc.size())
	}
	if owner, ok := rc.lookup(a); !ok || owner.Addr != "second" {
		t.Fatalf("lookup(a) = %+v, want overwritten owner", owner)
	}
	// A key in the neighbouring cell is independent.
	c := geom.Pt(0.61, 0.52)
	if _, ok := rc.lookup(c); ok {
		t.Fatal("neighbouring cell unexpectedly cached")
	}
	rc.insert(c, info("third", c))
	if rc.size() != 2 {
		t.Fatalf("size = %d, want 2", rc.size())
	}
	// The quantisation floor: a tiny DMin never coarsens below 1/256,
	// and a NaN DMin (unset config) falls back to it too.
	if g := newRouteCache(4, 1e-9).grid; g != defaultCacheGrid {
		t.Fatalf("grid = %v, want floor %v", g, defaultCacheGrid)
	}
	// Slightly-negative excursions (long-link targets overshoot the unit
	// square) quantise without panicking and stay distinct from cell 0.
	neg := geom.Pt(-0.01, 0.5)
	rc.insert(neg, info("edge", neg))
	if owner, ok := rc.lookup(neg); !ok || owner.Addr != "edge" {
		t.Fatalf("negative-coordinate entry = %+v (present %v)", owner, ok)
	}
	if owner, _ := rc.lookup(geom.Pt(0.01, 0.5)); owner.Addr == "edge" {
		t.Fatal("negative cell collided with positive cell")
	}
}

func TestRouteCacheInvalidateOwner(t *testing.T) {
	rc := newRouteCache(8, 0.05)
	pts := []geom.Point{geom.Pt(0.1, 0.1), geom.Pt(0.3, 0.3), geom.Pt(0.5, 0.5)}
	rc.insert(pts[0], info("dead", pts[0]))
	rc.insert(pts[1], info("alive", pts[1]))
	rc.insert(pts[2], info("dead", pts[2]))
	if removed := rc.invalidateOwner("dead"); removed != 2 {
		t.Fatalf("invalidateOwner removed %d, want 2", removed)
	}
	if rc.size() != 1 {
		t.Fatalf("size = %d, want 1", rc.size())
	}
	if _, ok := rc.lookup(pts[0]); ok {
		t.Fatal("dead owner's entry survived")
	}
	if owner, ok := rc.lookup(pts[1]); !ok || owner.Addr != "alive" {
		t.Fatalf("unrelated entry dropped: %+v (present %v)", owner, ok)
	}
	if removed := rc.invalidateOwner("dead"); removed != 0 {
		t.Fatalf("second invalidation removed %d, want 0", removed)
	}
}

func TestRouteCacheInvalidateTakenOver(t *testing.T) {
	rc := newRouteCache(8, 0.05)
	// Entry A: owner sits on its key (unbeatable). Entry B: owner far
	// from its key, so a newcomer near the key takes the region over.
	keyA, keyB := geom.Pt(0.2, 0.2), geom.Pt(0.8, 0.8)
	rc.insert(keyA, info("a", keyA))
	rc.insert(keyB, info("b", geom.Pt(0.6, 0.6)))
	newcomer := geom.Pt(0.79, 0.79)
	if removed := rc.invalidateTakenOver(newcomer); removed != 1 {
		t.Fatalf("invalidateTakenOver removed %d, want 1", removed)
	}
	if _, ok := rc.lookup(keyB); ok {
		t.Fatal("taken-over region still cached")
	}
	if owner, ok := rc.lookup(keyA); !ok || owner.Addr != "a" {
		t.Fatalf("unaffected region dropped: %+v (present %v)", owner, ok)
	}
}

func TestRouteCacheClear(t *testing.T) {
	rc := newRouteCache(4, 0.05)
	rc.insert(geom.Pt(0.1, 0.1), info("x", geom.Pt(0.1, 0.1)))
	rc.insert(geom.Pt(0.9, 0.9), info("y", geom.Pt(0.9, 0.9)))
	rc.clear()
	if rc.size() != 0 {
		t.Fatalf("size = %d after clear, want 0", rc.size())
	}
	// The cache stays usable after a clear (re-join after leave).
	rc.insert(geom.Pt(0.5, 0.5), info("z", geom.Pt(0.5, 0.5)))
	if rc.size() != 1 {
		t.Fatalf("size = %d after re-insert, want 1", rc.size())
	}
}
