package node

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"

	"voronet/internal/geom"
	"voronet/internal/proto"
	"voronet/internal/store"
	"voronet/internal/wal"
)

// newDurableCluster builds a cluster whose nodes all log to per-address
// WAL directories under one temp root, so tests can crash a node and
// rebuild it from disk. cfgMut relies on addNode assigning addresses in
// sequence (n000, n001, ...), the same order it is invoked in.
func newDurableCluster(t *testing.T, n int, seed int64, mut func(*Config)) (*cluster, string) {
	t.Helper()
	walRoot := t.TempDir()
	i := 0
	c := newClusterCfg(t, n, 0.02, seed, func(cfg *Config) {
		cfg.WALDir = filepath.Join(walRoot, fmt.Sprintf("n%03d", i))
		i++
		if mut != nil {
			mut(cfg)
		}
	})
	return c, walRoot
}

// TestDurableRestartRecovers crashes a node (transport cut, no flush
// beyond what each acked op already appended), rebuilds it from its WAL
// at the same address, and requires (a) byte-exact recovery of every
// record it held and (b) no acked write lost cluster-wide after rejoin.
func TestDurableRestartRecovers(t *testing.T) {
	c, _ := newDurableCluster(t, 16, 201, nil)
	rng := rand.New(rand.NewSource(7))
	keys := make([]geom.Point, 0, 40)
	for k := 0; k < 40; k++ {
		key := geom.Pt(rng.Float64(), rng.Float64())
		keys = append(keys, key)
		c.putKey(t, c.nodes[k%len(c.nodes)], key, []byte(fmt.Sprintf("val-%03d", k)))
	}
	victim := c.nodes[3]
	addr, pos, cfg := victim.Info().Addr, victim.Info().Pos, victim.cfg
	before := victim.StoreSnapshot()
	if len(before) == 0 {
		t.Fatalf("victim %s holds no records; test needs a loaded victim", addr)
	}

	// Crash: the endpoint vanishes mid-flight, survivors repair around it.
	victim.ep.Close()
	for _, nd := range c.nodes {
		if nd != victim {
			nd.NotifyDeparted(addr)
		}
	}
	c.bus.Drain()

	// Restart from disk at the same address.
	ep, err := c.bus.Attach(addr)
	if err != nil {
		t.Fatal(err)
	}
	nd2, stats, err := NewDurable(ep, pos, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Records == 0 {
		t.Fatal("restart replayed no WAL records")
	}
	if stats.CorruptFrames != 0 || stats.Truncated {
		t.Fatalf("clean shutdownless crash produced corruption flags: %+v", stats)
	}
	for _, rec := range before {
		got, ok := nd2.StoreLookup(rec.Key)
		if !ok || got.Version != rec.Version || got.Deleted != rec.Deleted || !bytes.Equal(got.Value, rec.Value) {
			t.Fatalf("record %v not recovered from WAL: got %+v ok=%v want %+v", rec.Key, got, ok, rec)
		}
	}

	if err := nd2.Join(c.nodes[0].Info().Addr); err != nil {
		t.Fatal(err)
	}
	c.bus.Drain()
	if !nd2.Joined() {
		t.Fatal("restarted node failed to rejoin")
	}
	c.nodes[3] = nd2
	for _, nd := range c.nodes {
		nd.SyncReplicas()
	}
	c.bus.Drain()
	c.checkViewsAgainstReference(t)
	for k, key := range keys {
		r := c.getKey(t, c.nodes[(k+5)%len(c.nodes)], key)
		if !r.Found || !bytes.Equal(r.Value, []byte(fmt.Sprintf("val-%03d", k))) {
			t.Fatalf("acked write %d lost across crash-restart: %+v", k, r)
		}
	}
}

// TestShutdownLosesNoAckedWrite drives acked writes through a node, shuts
// it down gracefully, and requires every acked write to survive in the
// remaining cluster — plus a drained WAL (the records were handed off)
// and synchronous refusal of new work while draining.
func TestShutdownLosesNoAckedWrite(t *testing.T) {
	c, _ := newDurableCluster(t, 12, 202, nil)
	rng := rand.New(rand.NewSource(11))
	keys := make([]geom.Point, 0, 30)
	for k := 0; k < 30; k++ {
		key := geom.Pt(rng.Float64(), rng.Float64())
		keys = append(keys, key)
		c.putKey(t, c.nodes[k%len(c.nodes)], key, []byte(fmt.Sprintf("ack-%03d", k)))
	}
	victim := c.nodes[4]

	// The draining gate refuses origin work before the view changes.
	victim.draining.Store(true)
	if err := victim.Put(geom.Pt(0.5, 0.5), []byte("late"), nil); !errors.Is(err, store.ErrOverloaded) {
		t.Fatalf("draining put: got %v, want ErrOverloaded", err)
	}
	if victim.nm.storeShed.Value() == 0 {
		t.Fatal("draining refusal not counted in store_shed_total")
	}

	if err := victim.Shutdown(); err != nil {
		t.Fatal(err)
	}
	c.bus.Drain()

	// Leave handed everything off and reset the log: replay sees nothing.
	stats, err := wal.Replay(victim.cfg.WALDir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Records != 0 {
		t.Fatalf("WAL not drained by graceful shutdown: %d records remain", stats.Records)
	}

	live := make([]*Node, 0, len(c.nodes)-1)
	for _, nd := range c.nodes {
		if nd != victim {
			live = append(live, nd)
		}
	}
	for k, key := range keys {
		r := c.getKey(t, live[k%len(live)], key)
		if !r.Found || !bytes.Equal(r.Value, []byte(fmt.Sprintf("ack-%03d", k))) {
			t.Fatalf("acked write %d lost across graceful shutdown: %+v", k, r)
		}
	}
}

// TestOverloadAdmissionControl exercises both shed points with
// MaxInflight = 1: the origin gate (inflight budget full -> synchronous
// ErrOverloaded, no wire traffic) and the owner gate (execution slot
// held -> Shed reply mapped back to ErrOverloaded at the origin, not
// counted as a timeout). Both must recover as soon as load drains.
func TestOverloadAdmissionControl(t *testing.T) {
	c := newClusterCfg(t, 12, 0.02, 203, func(cfg *Config) { cfg.MaxInflight = 1 })
	origin := c.nodes[1]
	// A key at another node's position is owned there, so the origin's
	// op stays pending until the bus drains.
	owner := c.nodes[5]
	key := owner.Info().Pos

	var first *store.Reply
	if err := origin.Put(key, []byte("a"), func(r store.Reply) { first = &r }); err != nil {
		t.Fatal(err)
	}
	if first != nil {
		t.Fatalf("put resolved before drain; key %v not remote to %s", key, origin.Info().Addr)
	}
	// Budget full: refused synchronously, counted, nothing sent.
	if err := origin.Put(geom.Pt(0.5, 0.5), []byte("b"), nil); !errors.Is(err, store.ErrOverloaded) {
		t.Fatalf("second put at budget: got %v, want ErrOverloaded", err)
	}
	if origin.nm.storeShed.Value() != 1 {
		t.Fatalf("origin store_shed_total = %d, want 1", origin.nm.storeShed.Value())
	}
	c.bus.Drain()
	if first == nil || first.Err != nil || !first.Found {
		t.Fatalf("admitted put failed: %+v", first)
	}
	// Budget freed: admitted again.
	c.putKey(t, origin, key, []byte("c"))

	// Owner-side: hold the owner's only execution slot and route a put
	// at it from elsewhere; the shed reply must come back fast as
	// ErrOverloaded, not burn the origin's timeout.
	owner.storeBusy.Add(1)
	var shed *store.Reply
	if err := origin.Put(key, []byte("d"), func(r store.Reply) { shed = &r }); err != nil {
		t.Fatal(err)
	}
	c.bus.Drain()
	if shed == nil || !errors.Is(shed.Err, store.ErrOverloaded) {
		t.Fatalf("owner shed reply: %+v, want ErrOverloaded", shed)
	}
	if owner.nm.storeShed.Value() == 0 {
		t.Fatal("owner refusal not counted in store_shed_total")
	}
	if origin.nm.storeTimeouts.Value() != 0 {
		t.Fatalf("owner shed miscounted as timeout at origin: %d", origin.nm.storeTimeouts.Value())
	}
	owner.storeBusy.Add(-1)
	c.putKey(t, origin, key, []byte("e"))
}

// TestDigestSyncNoDiffRatio is the anti-entropy bytes regression
// assertion CI runs: once replicas agree, a digest sweep must cost at
// most 0.15x of the full-record push it replaces (the acceptance bound;
// with kilobyte values the measured ratio is far lower). It also
// requires the converged sweep to be silent — digests out, no pulls, no
// record streams.
func TestDigestSyncNoDiffRatio(t *testing.T) {
	c := newCluster(t, 20, 0.02, 204)
	rng := rand.New(rand.NewSource(9))
	// Kilobyte-scale values and a few records per target: the regime the
	// 10x claim is about. (Envelope framing overhead, not fingerprints,
	// floors the digest cost, so near-empty stores would measure framing,
	// not the protocol.)
	val := bytes.Repeat([]byte("x"), 2048)
	for k := 0; k < 150; k++ {
		c.putKey(t, c.nodes[k%len(c.nodes)], geom.Pt(rng.Float64(), rng.Float64()), val)
	}
	for _, nd := range c.nodes {
		nd.SyncReplicas()
	}
	c.bus.Drain()

	var dig, full int
	for _, nd := range c.nodes {
		d, f := nd.SyncReplicasProbe()
		dig += d
		full += f
	}
	if full == 0 {
		t.Fatal("probe saw no records")
	}
	if ratio := float64(dig) / float64(full); ratio > 0.15 {
		t.Fatalf("no-diff digest sweep %dB vs full push %dB: ratio %.3f > 0.15", dig, full, ratio)
	}

	// Converged: another sweep is digests-only. Any pull or record
	// stream here means fingerprints or placement disagree between
	// sender and receiver.
	pulls := func() (n uint64) {
		for _, nd := range c.nodes {
			n += nd.nm.sentByKind[proto.KindSyncPull].Value() + nd.nm.sentByKind[proto.KindReplicaSync].Value()
		}
		return n
	}
	before := pulls()
	for _, nd := range c.nodes {
		nd.SyncReplicas()
	}
	c.bus.Drain()
	if got := pulls(); got != before {
		t.Fatalf("converged sweep still transferred data: %d pull/stream sends", got-before)
	}
}

// TestDigestSyncRepairsWipedReplica wipes one node's store outright and
// requires a digest sweep to restore every record it held: replica
// refreshes repair what it replicated, handoff digests repair what it
// owned.
func TestDigestSyncRepairsWipedReplica(t *testing.T) {
	c := newCluster(t, 20, 0.02, 205)
	rng := rand.New(rand.NewSource(13))
	for k := 0; k < 50; k++ {
		c.putKey(t, c.nodes[k%len(c.nodes)], geom.Pt(rng.Float64(), rng.Float64()), []byte(fmt.Sprintf("v-%03d", k)))
	}
	victim := c.nodes[7]
	snap := victim.StoreSnapshot()
	if len(snap) == 0 {
		t.Fatal("victim holds no records; test needs a loaded victim")
	}
	victim.kv.Clear()

	for _, nd := range c.nodes {
		nd.SyncReplicas()
	}
	c.bus.Drain()

	for _, rec := range snap {
		got, ok := victim.StoreLookup(rec.Key)
		if !ok || got.Version < rec.Version {
			t.Fatalf("record %v not repaired by digest sweep: got %+v ok=%v", rec.Key, got, ok)
		}
	}
}
