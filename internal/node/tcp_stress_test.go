package node

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"voronet/internal/geom"
	"voronet/internal/proto"
	"voronet/internal/transport"
)

// TestTCPConcurrentAPIDuringChurn is the live-node counterpart of the
// simulator's concurrent-readers test (internal/core/concurrent_test.go):
// real TCP endpoints with parallel dispatch lanes, concurrent Query / Put
// / Get / RangeQuery API calls from several client goroutines, while a
// churn loop joins and removes nodes. Run under -race in CI; the
// assertions are deliberately loose (operations may time out around a
// churn event) — the test's job is to drive every read path concurrently
// with view surgery and let the race detector judge the locking.
func TestTCPConcurrentAPIDuringChurn(t *testing.T) {
	if testing.Short() {
		t.Skip("TCP churn stress skipped in -short")
	}
	const (
		baseNodes   = 6
		clients     = 4
		opsPerGorou = 40
		churnCycles = 3
	)
	mkCfg := func(i int) Config {
		return Config{
			DMin: 0.05, LongLinks: 2, Seed: int64(i), Replication: 2,
			StoreTimeout: 2 * time.Second, QueryTimeout: 2 * time.Second,
		}
	}
	var nodes []*Node
	var mu sync.Mutex // guards nodes (the churn loop appends/removes)
	mk := func(i int, pos geom.Point) *Node {
		ep, err := transport.ListenTCP("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		return New(ep, pos, mkCfg(i))
	}
	defer func() {
		mu.Lock()
		defer mu.Unlock()
		for _, nd := range nodes {
			nd.ep.Close()
		}
	}()

	rng := rand.New(rand.NewSource(4242))
	first := mk(0, geom.Pt(rng.Float64(), rng.Float64()))
	if err := first.Bootstrap(); err != nil {
		t.Fatal(err)
	}
	nodes = append(nodes, first)
	for i := 1; i < baseNodes; i++ {
		nd := mk(i, geom.Pt(rng.Float64(), rng.Float64()))
		if err := nd.Join(first.Info().Addr); err != nil {
			t.Fatal(err)
		}
		waitFor(t, 10*time.Second, nd.Joined)
		nodes = append(nodes, nd)
	}
	time.Sleep(50 * time.Millisecond) // let maintenance gossip settle

	// Seed some records so GETs can hit.
	keys := make([]geom.Point, 16)
	for i := range keys {
		keys[i] = geom.Pt(rng.Float64(), rng.Float64())
		if err := nodes[i%baseNodes].PutSync(keys[i], []byte(fmt.Sprintf("seed-%02d", i))); err != nil {
			t.Fatalf("seed put %d: %v", i, err)
		}
	}

	pick := func(r *rand.Rand) *Node {
		mu.Lock()
		defer mu.Unlock()
		return nodes[r.Intn(baseNodes)] // base nodes never leave
	}

	var answered, timedOut atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(1000 + c)))
			for i := 0; i < opsPerGorou; i++ {
				nd := pick(r)
				p := geom.Pt(r.Float64(), r.Float64())
				switch i % 4 {
				case 0:
					done := make(chan struct{})
					if err := nd.Query(p, func(owner proto.NodeInfo, hops int) {
						if hops == HopsTimedOut {
							timedOut.Add(1)
						} else {
							answered.Add(1)
						}
						close(done)
					}); err == nil {
						<-done
					}
				case 1:
					_ = nd.PutSync(p, []byte(fmt.Sprintf("c%d-i%d", c, i)))
				case 2:
					if _, err := nd.GetSync(keys[r.Intn(len(keys))]); err == nil {
						answered.Add(1)
					}
				case 3:
					a := geom.Pt(r.Float64(), r.Float64())
					b := geom.Pt(a.X+0.1*(r.Float64()-0.5), a.Y+0.1*(r.Float64()-0.5))
					_ = nd.RangeQuery(a, b, func(proto.NodeInfo) {})
				}
			}
		}(c)
	}

	// Churn alongside the clients: extra nodes join, live briefly, leave.
	wg.Add(1)
	go func() {
		defer wg.Done()
		r := rand.New(rand.NewSource(777))
		for cyc := 0; cyc < churnCycles; cyc++ {
			nd := mk(100+cyc, geom.Pt(r.Float64(), r.Float64()))
			if err := nd.Join(first.Info().Addr); err != nil {
				nd.ep.Close()
				continue
			}
			// A join admitted by a region owner that crashed mid-grant can
			// be lost (no retransmission layer by design); give up on that
			// cycle after a bounded wait instead of stalling the churn loop.
			deadline := time.Now().Add(3 * time.Second)
			for !nd.Joined() && time.Now().Before(deadline) {
				time.Sleep(5 * time.Millisecond)
			}
			time.Sleep(30 * time.Millisecond)
			if nd.Joined() {
				_ = nd.Leave()
			}
			nd.ep.Close()
		}
	}()
	wg.Wait()

	if answered.Load() == 0 {
		t.Fatalf("no query or get succeeded during churn (%d timeouts)", timedOut.Load())
	}
	// The overlay must still work end to end after the churn storm. The
	// first operation after a crash may legitimately lose a frame to a
	// dying TCP connection (the write succeeds locally before the RST
	// arrives; the *next* send through that connection errors and drives
	// the departure repair), so a bounded retry is part of the protocol's
	// recovery model — what must hold is that the overlay converges to
	// serving again, not that no single op ever times out.
	k := geom.Pt(0.123, 0.456)
	var perr error
	for attempt := 0; attempt < 4; attempt++ {
		if perr = nodes[1].PutSync(k, []byte("post-churn")); perr == nil {
			break
		}
	}
	if perr != nil {
		t.Fatalf("post-churn put never succeeded: %v", perr)
	}
	var v []byte
	var gerr error
	for attempt := 0; attempt < 4; attempt++ {
		if v, gerr = nodes[2].GetSync(k); gerr == nil {
			break
		}
	}
	if gerr != nil || string(v) != "post-churn" {
		t.Fatalf("post-churn get: %q, %v", v, gerr)
	}
	// Every Query callback completed (answered or reaped), so nothing may
	// remain registered on the origin nodes.
	for i, nd := range nodes[:baseNodes] {
		if pq := pendingQueries(nd); pq != 0 {
			t.Errorf("node %d still holds %d query callbacks after the storm", i, pq)
		}
	}
}
