package node

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"voronet/internal/geom"
	"voronet/internal/proto"
	"voronet/internal/store"
)

// lookupStackCluster builds a cluster whose nodes run the full tuned
// lookup stack: α-parallel speculation plus the hot-region route cache.
func lookupStackCluster(t *testing.T, n int, seed int64) *cluster {
	t.Helper()
	return newClusterCfg(t, n, 0.02, seed, func(cfg *Config) {
		cfg.Alpha = 3
		cfg.RouteCacheSize = 64
	})
}

// TestCacheCoherenceUnderChurn is the cache-invalidation property suite:
// two clusters replay one identical seeded script of joins, leaves,
// crashes, puts, deletes and reads — one cluster with the tuned lookup
// stack (alpha=3 + route cache), one with the classic serial router. Every
// reply must be identical between the two: any stale cache entry surviving
// a view change would surface as a divergent owner, value, or found bit.
func TestCacheCoherenceUnderChurn(t *testing.T) {
	const (
		seed    = 77
		initial = 24
		rounds  = 8
		opsPer  = 20
	)
	tuned := lookupStackCluster(t, initial, seed)
	plain := newClusterCfg(t, initial, 0.02, seed, nil)

	// One script rng per cluster, identically seeded: the clusters consume
	// draws in lockstep, so the op sequences are the same.
	run := func(c *cluster, script *rand.Rand) []string {
		var log []string
		keys := make([]geom.Point, 0, rounds*opsPer)
		for round := 0; round < rounds; round++ {
			// Churn first: one join, and alternately a graceful leave or a
			// crash of a random non-bootstrap node.
			c.addNode(t, geom.Pt(script.Float64(), script.Float64()), 0.02)
			if len(c.nodes) > 4 {
				idx := 1 + script.Intn(len(c.nodes)-1)
				victim := c.nodes[idx]
				if round%2 == 0 {
					if err := victim.Leave(); err != nil {
						t.Fatalf("round %d leave: %v", round, err)
					}
				} else {
					victim.ep.Close() // crash: no protocol, links die
					gone := victim.Info().Addr
					for i, nd := range c.nodes {
						if i != idx {
							nd.NotifyDeparted(gone)
						}
					}
				}
				c.nodes = append(c.nodes[:idx], c.nodes[idx+1:]...)
				c.bus.Drain()
			}
			// Then a burst of store traffic. Reads deliberately revisit
			// earlier keys: those are the ones whose cached owners the
			// churn above may have invalidated.
			for op := 0; op < opsPer; op++ {
				origin := c.nodes[script.Intn(len(c.nodes))]
				switch {
				case op%4 == 0 || len(keys) == 0: // put a fresh key
					k := geom.Pt(script.Float64(), script.Float64())
					keys = append(keys, k)
					var r store.Reply
					if err := origin.Put(k, []byte(fmt.Sprintf("v%d-%d", round, op)), func(rep store.Reply) { r = rep }); err != nil {
						t.Fatalf("round %d put: %v", round, err)
					}
					c.bus.Drain()
					log = append(log, fmt.Sprintf("put %v found=%v err=%v", k, r.Found, r.Err))
				case op%7 == 0: // delete an old key
					k := keys[script.Intn(len(keys))]
					var r store.Reply
					if err := origin.Delete(k, func(rep store.Reply) { r = rep }); err != nil {
						t.Fatalf("round %d delete: %v", round, err)
					}
					c.bus.Drain()
					log = append(log, fmt.Sprintf("del %v found=%v err=%v", k, r.Found, r.Err))
				default: // read an old key
					k := keys[script.Intn(len(keys))]
					var r store.Reply
					if err := origin.Get(k, func(rep store.Reply) { r = rep }); err != nil {
						t.Fatalf("round %d get: %v", round, err)
					}
					c.bus.Drain()
					log = append(log, fmt.Sprintf("get %v found=%v val=%q err=%v", k, r.Found, r.Value, r.Err))
				}
			}
		}
		// Closing sweep: read every key from three distinct origins — any
		// cache entry still naming a departed or displaced owner would
		// answer wrongly here.
		for i, k := range keys {
			origin := c.nodes[(i*3+1)%len(c.nodes)]
			var r store.Reply
			if err := origin.Get(k, func(rep store.Reply) { r = rep }); err != nil {
				t.Fatalf("sweep get: %v", err)
			}
			c.bus.Drain()
			log = append(log, fmt.Sprintf("sweep %v found=%v val=%q err=%v", k, r.Found, r.Value, r.Err))
		}
		return log
	}

	tunedLog := run(tuned, rand.New(rand.NewSource(seed+1)))
	plainLog := run(plain, rand.New(rand.NewSource(seed+1)))
	if len(tunedLog) != len(plainLog) {
		t.Fatalf("op counts diverged: %d vs %d", len(tunedLog), len(plainLog))
	}
	for i := range tunedLog {
		if tunedLog[i] != plainLog[i] {
			t.Fatalf("op %d diverged:\n  tuned: %s\n  plain: %s", i, tunedLog[i], plainLog[i])
		}
	}

	// The suite must actually have exercised the cache and its coherence
	// paths, or the equality above proves nothing.
	var hits, invals uint64
	for _, nd := range tuned.nodes {
		snap := nd.Metrics().Snapshot()
		hits += snap.Counters["node_cache_hits_total"]
		invals += snap.Counters["node_cache_invalidations_total"]
	}
	if hits == 0 {
		t.Fatal("churn script produced no cache hits — property untested")
	}
	if invals == 0 {
		t.Fatal("churn script produced no cache invalidations — property untested")
	}
}

// TestAlphaAnswersMatchSerial: with speculation on, every query and read
// resolves to exactly the answer the serial protocol gives — probes can
// only waste bandwidth, never change results — and late duplicate answers
// are counted, not delivered.
func TestAlphaAnswersMatchSerial(t *testing.T) {
	tuned := lookupStackCluster(t, 30, 55)
	plain := newClusterCfg(t, 30, 0.02, 55, nil)

	script := func(c *cluster) []string {
		rng := rand.New(rand.NewSource(99))
		var log []string
		// Seed some records.
		keys := make([]geom.Point, 40)
		for i := range keys {
			keys[i] = geom.Pt(rng.Float64(), rng.Float64())
			origin := c.nodes[rng.Intn(len(c.nodes))]
			var r store.Reply
			if err := origin.Put(keys[i], []byte{byte(i)}, func(rep store.Reply) { r = rep }); err != nil {
				t.Fatal(err)
			}
			c.bus.Drain()
			if r.Err != nil || !r.Found {
				t.Fatalf("seed put %d: %+v", i, r)
			}
		}
		for q := 0; q < 120; q++ {
			origin := c.nodes[rng.Intn(len(c.nodes))]
			if q%3 == 0 {
				p := geom.Pt(rng.Float64(), rng.Float64())
				var owner string
				var hops int
				if err := origin.Query(p, func(o proto.NodeInfo, h int) { owner, hops = o.Addr, h }); err != nil {
					t.Fatal(err)
				}
				c.bus.Drain()
				_ = hops // speculative first-byte hops may beat serial; only the owner must match
				log = append(log, fmt.Sprintf("query %v owner=%s", p, owner))
			} else {
				k := keys[rng.Intn(len(keys))]
				var r store.Reply
				if err := origin.Get(k, func(rep store.Reply) { r = rep }); err != nil {
					t.Fatal(err)
				}
				c.bus.Drain()
				log = append(log, fmt.Sprintf("get %v found=%v val=%q", k, r.Found, r.Value))
			}
		}
		return log
	}

	tunedLog := script(tuned)
	plainLog := script(plain)
	for i := range tunedLog {
		if tunedLog[i] != plainLog[i] {
			t.Fatalf("op %d diverged:\n  tuned: %s\n  plain: %s", i, tunedLog[i], plainLog[i])
		}
	}

	// Speculation really ran: some probes lost the race and were dropped
	// at the origin as wasted, none leaked as user-visible answers.
	var wasted uint64
	for _, nd := range tuned.nodes {
		wasted += nd.Metrics().Snapshot().Counters["node_probe_wasted_total"]
	}
	if wasted == 0 {
		t.Fatal("alpha=3 run recorded no wasted probes — speculation never fanned out")
	}
}

// TestCacheHitCollapsesHotRoute: after one read populates the origin's
// cache, a repeat read of the same key routes directly to the owner — at
// most one forwarding hop — where the cold read took a longer greedy walk.
func TestCacheHitCollapsesHotRoute(t *testing.T) {
	c := newClusterCfg(t, 40, 0.02, 91, func(cfg *Config) { cfg.RouteCacheSize = 32 })

	rng := rand.New(rand.NewSource(7))
	var hot geom.Point
	var origin *Node
	var coldHops int
	// Find a key whose cold route from some origin takes >= 2 hops, so the
	// collapse to 1 is observable. The PUT happens at a different node:
	// the putter's own ack caches the owner, the cold reader's cache is
	// genuinely empty for this region.
	for try := 0; try < 200; try++ {
		k := geom.Pt(rng.Float64(), rng.Float64())
		writer := c.nodes[rng.Intn(len(c.nodes))]
		org := c.nodes[rng.Intn(len(c.nodes))]
		if org == writer {
			continue
		}
		var ack store.Reply
		if err := writer.Put(k, []byte("hot"), func(rep store.Reply) { ack = rep }); err != nil {
			t.Fatal(err)
		}
		c.bus.Drain()
		if ack.Err != nil || !ack.Found {
			t.Fatalf("seed put: %+v", ack)
		}
		var r store.Reply
		if err := org.Get(k, func(rep store.Reply) { r = rep }); err != nil {
			t.Fatal(err)
		}
		c.bus.Drain()
		if r.Err != nil || !r.Found {
			t.Fatalf("cold get: %+v", r)
		}
		if r.Hops >= 2 {
			hot, origin, coldHops = k, org, r.Hops
			break
		}
	}
	if origin == nil {
		t.Skip("no multi-hop route found in this topology")
	}
	var r store.Reply
	if err := origin.Get(hot, func(rep store.Reply) { r = rep }); err != nil {
		t.Fatal(err)
	}
	c.bus.Drain()
	if r.Err != nil || !r.Found || !bytes.Equal(r.Value, []byte("hot")) {
		t.Fatalf("hot get: %+v", r)
	}
	if r.Hops > 1 {
		t.Fatalf("cached re-read took %d hops (cold took %d), want <= 1", r.Hops, coldHops)
	}
	snap := origin.Metrics().Snapshot()
	if snap.Counters["node_cache_hits_total"] == 0 {
		t.Fatal("hot read did not hit the cache")
	}
}
