package node

import (
	"testing"
	"time"

	"voronet/internal/geom"
	"voronet/internal/proto"
	"voronet/internal/store"
)

// TestCrashedOriginReplyCountsAndRepairs: an origin that crashes between
// dispatching a store op and the owner's reply must not vanish silently —
// the failed reply send is counted in node_send_errors_total and triggers
// the same departure repair a failed forward does, so the crashed origin
// is tombstoned out of the answerer's views.
func TestCrashedOriginReplyCountsAndRepairs(t *testing.T) {
	// Infinite store timeout for the same reason the shared cluster pins
	// QueryTimeout: the crashed origin's inflight timer would otherwise
	// fire asynchronously after the test completes.
	c := newClusterCfg(t, 16, 0.02, 41, func(cfg *Config) {
		cfg.StoreTimeout = 365 * 24 * time.Hour
	})

	// Pick an origin and a key it does not own, so the reply really has
	// to travel back over the transport; owner is the node that will have
	// to deliver that reply.
	var origin, owner *Node
	var key geom.Point
	rng := c.rng
	for try := 0; try < 100; try++ {
		k := geom.Pt(rng.Float64(), rng.Float64())
		org := c.nodes[1+rng.Intn(len(c.nodes)-1)]
		best, bestD := org, geom.Dist2(org.Info().Pos, k)
		for _, nd := range c.nodes {
			if d := geom.Dist2(nd.Info().Pos, k); d < bestD {
				best, bestD = nd, d
			}
		}
		if best != org {
			origin, owner, key = org, best, k
			break
		}
	}
	if origin == nil {
		t.Fatal("no suitable origin found")
	}

	// Dispatch the PUT (enqueues the routed envelope on the bus), then
	// crash the origin before anything is delivered: the owner will apply
	// the write and fail to acknowledge it.
	if err := origin.Put(key, []byte("doomed"), func(r store.Reply) {
		if r.Err == nil {
			t.Error("ack delivered to a crashed origin")
		}
	}); err != nil {
		t.Fatal(err)
	}
	gone := origin.Info().Addr
	origin.ep.Close()
	for i, nd := range c.nodes {
		if nd == origin {
			c.nodes = append(c.nodes[:i], c.nodes[i+1:]...)
			break
		}
	}
	c.bus.Drain()

	var sendErrs uint64
	for _, nd := range c.nodes {
		sendErrs += nd.Metrics().Snapshot().Counters["node_send_errors_total"]
	}
	if sendErrs == 0 {
		t.Fatal("failed reply to crashed origin was not counted in node_send_errors_total")
	}
	// The answerer repaired around the crash: the origin is tombstoned at
	// the owner and gone from its view — a later route through the owner
	// can never pick the dead address again.
	c.bus.Drain()
	owner.mu.RLock()
	tombstoned := owner.tombs[gone]
	owner.mu.RUnlock()
	if !tombstoned {
		t.Fatalf("owner %s did not tombstone crashed origin %s after the failed reply",
			owner.Info().Addr, gone)
	}
	for _, v := range owner.Neighbors() {
		if v.Addr == gone {
			t.Fatalf("owner %s still lists crashed origin %s in vn after reply-failure repair",
				owner.Info().Addr, gone)
		}
	}
	// The write itself survived: the record is durable at its owner even
	// though the ack was undeliverable.
	reader := c.nodes[1]
	var r store.Reply
	if err := reader.Get(key, func(rep store.Reply) { r = rep }); err != nil {
		t.Fatal(err)
	}
	c.bus.Drain()
	if r.Err != nil || !r.Found || string(r.Value) != "doomed" {
		t.Fatalf("get after crashed-origin put: %+v", r)
	}
}

// TestQuerySecondsReconcilesWithInflightWindow is the regression test for
// the simnet bench inflation bug: when a driver keeps at most W queries in
// flight, the node_query_seconds histogram sum can never exceed W times
// the measured wall clock (each in-flight query accrues wall time at most
// 1x, and at most W accrue at once). The broken driver enqueued every op
// before one Drain, making sum ~= ops x drain-wall.
func TestQuerySecondsReconcilesWithInflightWindow(t *testing.T) {
	c := newCluster(t, 12, 0.02, 67)
	const ops, window = 160, 8

	rng := c.rng
	start := time.Now()
	for lo := 0; lo < ops; lo += window {
		for i := lo; i < lo+window && i < ops; i++ {
			origin := c.nodes[rng.Intn(len(c.nodes))]
			if err := origin.Query(geom.Pt(rng.Float64(), rng.Float64()), func(proto.NodeInfo, int) {}); err != nil {
				t.Fatal(err)
			}
		}
		c.bus.Drain()
	}
	wall := time.Since(start).Seconds()

	var sum float64
	var count uint64
	for _, nd := range c.nodes {
		h := nd.Metrics().Snapshot().Histograms["node_query_seconds"]
		sum += h.Sum
		count += h.Count
	}
	if count != ops {
		t.Fatalf("query_seconds count = %d, want %d", count, ops)
	}
	// 1.05 covers clock-read skew between the driver's wall measurement
	// and the per-query timers; the broken driver overshot this bound by
	// an ops/window factor (20x here), not 5%.
	if bound := wall * window * 1.05; sum > bound {
		t.Fatalf("query_seconds sum %.4fs exceeds wall x window bound %.4fs (wall %.4fs, window %d)",
			sum, bound, wall, window)
	}
}
