package node

import (
	"fmt"
	"math/rand"
	"testing"

	"voronet/internal/geom"
	"voronet/internal/proto"
	"voronet/internal/store"
	"voronet/internal/transport"
)

// TestCrashRepairViaNotifyDeparted crashes a third of the overlay without
// any leave protocol — endpoints close abruptly — and feeds the survivor
// set failure-detector notifications. Views, long links and back pointers
// must converge to the reference state of the surviving population.
func TestCrashRepairViaNotifyDeparted(t *testing.T) {
	c := newCluster(t, 45, 0.02, 11)

	var crashed []string
	for i := 0; i < 15; i++ {
		idx := 1 + c.rng.Intn(len(c.nodes)-1)
		nd := c.nodes[idx]
		nd.ep.Close() // abrupt: no Leave, records and links die with it
		crashed = append(crashed, nd.Info().Addr)
		c.nodes = append(c.nodes[:idx], c.nodes[idx+1:]...)
	}
	for _, nd := range c.nodes {
		for _, gone := range crashed {
			nd.NotifyDeparted(gone)
		}
	}
	c.bus.Drain()

	c.checkViewsAgainstReference(t)

	live := map[string]*Node{}
	for _, nd := range c.nodes {
		live[nd.Info().Addr] = nd
	}
	for _, nd := range c.nodes {
		links := nd.LongNeighbors()
		targets := nd.LongTargets()
		for j, l := range links {
			if l.Addr == "" {
				t.Fatalf("%s link %d still unresolved after repair", nd.Info().Addr, j)
			}
			h, ok := live[l.Addr]
			if !ok {
				t.Fatalf("%s link %d points at crashed node %s", nd.Info().Addr, j, l.Addr)
			}
			for _, other := range c.nodes {
				if geom.Dist2(other.Info().Pos, targets[j]) < geom.Dist2(l.Pos, targets[j]) {
					t.Fatalf("%s link %d held by %s but %s is closer", nd.Info().Addr, j, l.Addr, other.Info().Addr)
				}
			}
			found := false
			for _, ref := range h.BackEntries() {
				if ref.Origin.Addr == nd.Info().Addr && ref.Link == j {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("%s link %d not mirrored at %s after repair", nd.Info().Addr, j, l.Addr)
			}
		}
		// No back entry may reference a crashed origin.
		for _, ref := range nd.BackEntries() {
			if _, ok := live[ref.Origin.Addr]; !ok {
				t.Fatalf("%s holds back entry for crashed origin %s", nd.Info().Addr, ref.Origin.Addr)
			}
		}
	}
}

// TestRouteRetriesAroundCrashedPeer crashes a node silently (no failure
// detector) and requires greedy routing to repair around it on the fly:
// the failed transport send tombstones the peer and the route retries.
func TestRouteRetriesAroundCrashedPeer(t *testing.T) {
	c := newCluster(t, 30, 0.02, 12)

	// Crash a node nobody is told about.
	idx := 1 + c.rng.Intn(len(c.nodes)-1)
	dead := c.nodes[idx]
	deadInfo := dead.Info()
	dead.ep.Close()
	c.nodes = append(c.nodes[:idx], c.nodes[idx+1:]...)

	// Query points in the dead node's old region: greedy paths will try to
	// forward into it and must route around.
	answered := 0
	for q := 0; q < 25; q++ {
		jit := geom.Pt(deadInfo.Pos.X+0.01*(c.rng.Float64()-0.5), deadInfo.Pos.Y+0.01*(c.rng.Float64()-0.5))
		from := c.nodes[c.rng.Intn(len(c.nodes))]
		var got proto.NodeInfo
		ok := false
		if err := from.Query(jit, func(owner proto.NodeInfo, hops int) {
			got = owner
			ok = true
		}); err != nil {
			t.Fatal(err)
		}
		c.bus.Drain()
		if !ok {
			continue
		}
		answered++
		if got.Addr == deadInfo.Addr {
			t.Fatalf("query answered by crashed node %s", deadInfo.Addr)
		}
		best := c.nodes[0].Info()
		for _, nd := range c.nodes {
			if geom.Dist2(nd.Info().Pos, jit) < geom.Dist2(best.Pos, jit) {
				best = nd.Info()
			}
		}
		if got.Addr != best.Addr && geom.Dist2(got.Pos, jit) != geom.Dist2(best.Pos, jit) {
			t.Fatalf("query %v answered by %s, owner is %s", jit, got.Addr, best.Addr)
		}
	}
	if answered < 20 {
		t.Fatalf("only %d/25 queries answered around a crashed peer", answered)
	}
}

// TestConcurrentLeavesDoNotStrandRecords pins the adversarial handoff
// race: with replication 1, a key whose owner and sole replica are two
// adjacent nodes has every copy on them. Both leave concurrently (each
// issues Leave before the other's messages deliver), so the owner's
// handoff lands on a node that has itself already left. The farewell
// re-delegation chain must carry the record to a survivor — the key may
// not be lost — and the drain must terminate (no farewell ping-pong
// between the two departed endpoints, which stay open).
func TestConcurrentLeavesDoNotStrandRecords(t *testing.T) {
	bus := transport.NewBus()
	rng := rand.New(rand.NewSource(13))
	var nodes []*Node
	mk := func(pos geom.Point) *Node {
		addr := fmt.Sprintf("n%03d", len(nodes))
		ep, err := bus.Attach(addr)
		if err != nil {
			t.Fatal(err)
		}
		nd := New(ep, pos, Config{DMin: 0.02, LongLinks: 1, Seed: int64(len(nodes)), Replication: 1})
		if len(nodes) == 0 {
			if err := nd.Bootstrap(); err != nil {
				t.Fatal(err)
			}
		} else {
			if err := nd.Join(nodes[rng.Intn(len(nodes))].Info().Addr); err != nil {
				t.Fatal(err)
			}
			bus.Drain()
			if !nd.Joined() {
				t.Fatalf("%s failed to join", addr)
			}
		}
		nodes = append(nodes, nd)
		return nd
	}
	for i := 0; i < 12; i++ {
		mk(geom.Pt(rng.Float64(), rng.Float64()))
	}

	// Find an adjacent pair (a, b) and a key owned by a whose sole
	// replica is b: a point near their midpoint, nudged toward a.
	var a, b *Node
	var key geom.Point
search:
	for _, nd := range nodes[1:] {
		for _, v := range nd.Neighbors() {
			var other *Node
			for _, o := range nodes[1:] {
				if o.Info().Addr == v.Addr {
					other = o
				}
			}
			if other == nil {
				continue
			}
			pa, pb := nd.Info().Pos, other.Info().Pos
			k := geom.Pt(pa.X+(pb.X-pa.X)*0.45, pa.Y+(pb.Y-pa.Y)*0.45)
			// The key must be owned by nd with `other` next closest
			// globally, so with R=1 both copies sit on the pair.
			dn, do := geom.Dist2(pa, k), geom.Dist2(pb, k)
			ok := dn < do
			for _, x := range nodes {
				if x != nd && x != other && geom.Dist2(x.Info().Pos, k) < do {
					ok = false
				}
			}
			if ok {
				a, b, key = nd, other, k
				break search
			}
		}
	}
	if a == nil {
		t.Fatal("no suitable adjacent pair found")
	}

	done := false
	if err := a.Put(key, []byte("survivor"), func(store.Reply) { done = true }); err != nil {
		t.Fatal(err)
	}
	bus.Drain()
	if !done {
		t.Fatal("put unacknowledged")
	}
	holders := 0
	for _, nd := range nodes {
		if _, ok := nd.StoreLookup(key); ok {
			holders++
			if nd != a && nd != b {
				t.Fatalf("setup broken: %s holds the key", nd.Info().Addr)
			}
		}
	}
	if holders != 2 {
		t.Fatalf("setup broken: %d holders, want exactly the pair", holders)
	}

	// Both leave before either's messages deliver; endpoints stay open.
	if err := a.Leave(); err != nil {
		t.Fatal(err)
	}
	if err := b.Leave(); err != nil {
		t.Fatal(err)
	}
	bus.Drain()

	var live []*Node
	for _, nd := range nodes {
		if nd != a && nd != b {
			live = append(live, nd)
		}
	}
	for round := 0; round < 2; round++ {
		for _, nd := range live {
			nd.SyncReplicas()
		}
		bus.Drain()
	}

	var got []byte
	found := false
	if err := live[0].Get(key, func(r store.Reply) { got, found = r.Value, r.Found }); err != nil {
		t.Fatal(err)
	}
	bus.Drain()
	if !found {
		t.Fatal("key lost: the crossed handoff stranded it on a departed node")
	}
	if string(got) != "survivor" {
		t.Fatalf("got %q, want %q", got, "survivor")
	}
}
