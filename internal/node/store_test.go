package node

import (
	"bytes"
	"fmt"
	"testing"

	"voronet/internal/geom"
	"voronet/internal/store"
)

// putKey issues a Put from nd and drains the bus, failing the test unless
// the acknowledgement arrives.
func (c *cluster) putKey(t *testing.T, nd *Node, key geom.Point, value []byte) {
	t.Helper()
	var got *store.Reply
	if err := nd.Put(key, value, func(r store.Reply) { got = &r }); err != nil {
		t.Fatal(err)
	}
	c.bus.Drain()
	if got == nil {
		t.Fatalf("put %v: no reply", key)
	}
	if got.Err != nil || !got.Found {
		t.Fatalf("put %v: %+v", key, got)
	}
}

// getKey issues a Get from nd and drains the bus, returning the reply.
func (c *cluster) getKey(t *testing.T, nd *Node, key geom.Point) store.Reply {
	t.Helper()
	var got *store.Reply
	if err := nd.Get(key, func(r store.Reply) { got = &r }); err != nil {
		t.Fatal(err)
	}
	c.bus.Drain()
	if got == nil {
		t.Fatalf("get %v: no reply", key)
	}
	if got.Err != nil {
		t.Fatalf("get %v: %v", key, got.Err)
	}
	return *got
}

func TestStorePutGetDeleteSmall(t *testing.T) {
	c := newCluster(t, 20, 0.02, 101)
	key := geom.Pt(0.37, 0.62)

	// Missing key: authoritative miss.
	if r := c.getKey(t, c.nodes[3], key); r.Found {
		t.Fatalf("missing key found: %+v", r)
	}

	c.putKey(t, c.nodes[5], key, []byte("hello"))
	r := c.getKey(t, c.nodes[11], key)
	if !r.Found || !bytes.Equal(r.Value, []byte("hello")) || r.Version != 1 {
		t.Fatalf("get after put: %+v", r)
	}

	// Overwrite bumps the version.
	c.putKey(t, c.nodes[7], key, []byte("world"))
	r = c.getKey(t, c.nodes[2], key)
	if !r.Found || !bytes.Equal(r.Value, []byte("world")) || r.Version != 2 {
		t.Fatalf("get after overwrite: %+v", r)
	}

	// Delete tombstones everywhere a replica could answer.
	var del *store.Reply
	if err := c.nodes[9].Delete(key, func(r store.Reply) { del = &r }); err != nil {
		t.Fatal(err)
	}
	c.bus.Drain()
	if del == nil || del.Err != nil || !del.Found {
		t.Fatalf("delete: %+v", del)
	}
	for _, nd := range c.nodes {
		if r := c.getKey(t, nd, key); r.Found {
			t.Fatalf("deleted key served to %s: %+v", nd.Info().Addr, r)
		}
	}

	// Deleting again reports not found.
	del = nil
	if err := c.nodes[4].Delete(key, func(r store.Reply) { del = &r }); err != nil {
		t.Fatal(err)
	}
	c.bus.Drain()
	if del == nil || del.Found {
		t.Fatalf("double delete: %+v", del)
	}

	// A put over the tombstone resurrects the key.
	c.putKey(t, c.nodes[1], key, []byte("again"))
	r = c.getKey(t, c.nodes[14], key)
	if !r.Found || !bytes.Equal(r.Value, []byte("again")) {
		t.Fatalf("resurrect: %+v", r)
	}
}

func TestStoreUnjoinedErrors(t *testing.T) {
	c := newCluster(t, 1, 0.05, 102)
	solo := c.nodes[0]
	// The bootstrap node owns everything; its own ops resolve locally.
	c.putKey(t, solo, geom.Pt(0.5, 0.5), []byte("v"))
	if r := c.getKey(t, solo, geom.Pt(0.5, 0.5)); !r.Found {
		t.Fatalf("solo get: %+v", r)
	}

	ep, err := c.bus.Attach("outsider")
	if err != nil {
		t.Fatal(err)
	}
	out := New(ep, geom.Pt(0.1, 0.1), Config{DMin: 0.05})
	if err := out.Put(geom.Pt(0.2, 0.2), []byte("x"), nil); err != ErrNotJoined {
		t.Fatalf("put before join: %v", err)
	}
	if err := out.Get(geom.Pt(0.2, 0.2), nil); err != ErrNotJoined {
		t.Fatalf("get before join: %v", err)
	}
	if err := out.Delete(geom.Pt(0.2, 0.2), nil); err != ErrNotJoined {
		t.Fatalf("delete before join: %v", err)
	}
}

// TestStoreReplicationFactor checks that a put lands on the owner plus the
// R Voronoi neighbours of the owner closest to the key.
func TestStoreReplicationFactor(t *testing.T) {
	c := newCluster(t, 40, 0.02, 103)
	for i := 0; i < 20; i++ {
		key := geom.Pt(c.rng.Float64(), c.rng.Float64())
		c.putKey(t, c.nodes[c.rng.Intn(len(c.nodes))], key, []byte{byte(i)})

		// Ground-truth owner: nearest node to the key.
		owner := c.nodes[0]
		for _, nd := range c.nodes {
			if geom.Dist2(nd.Info().Pos, key) < geom.Dist2(owner.Info().Pos, key) {
				owner = nd
			}
		}
		copies := 0
		for _, nd := range c.nodes {
			if _, ok := nd.kv.Lookup(key); ok {
				copies++
			}
		}
		want := 1 + min(owner.cfg.Replication, len(owner.Neighbors()))
		if copies < want {
			t.Fatalf("key %v: %d copies, want >= %d", key, copies, want)
		}
		if _, ok := owner.kv.Get(key); !ok {
			t.Fatalf("key %v: owner %s holds no copy", key, owner.Info().Addr)
		}
	}
}

// TestStoreEndToEndChurn is the acceptance scenario: 64 nodes, 500 keys
// put from random origins and read back from different origins, then a
// churn phase (12 joins + 12 leaves) after which every key is still
// retrievable with its correct value.
func TestStoreEndToEndChurn(t *testing.T) {
	const (
		nNodes = 64
		nKeys  = 500
		dmin   = 0.02
	)
	c := newCluster(t, nNodes, dmin, 104)

	type kv struct {
		key    geom.Point
		value  []byte
		origin string
	}
	keys := make([]kv, 0, nKeys)
	for i := 0; i < nKeys; i++ {
		e := kv{
			key:   geom.Pt(c.rng.Float64(), c.rng.Float64()),
			value: []byte(fmt.Sprintf("value-%04d", i)),
		}
		nd := c.nodes[c.rng.Intn(len(c.nodes))]
		e.origin = nd.Info().Addr
		c.putKey(t, nd, e.key, e.value)
		keys = append(keys, e)
	}

	verify := func(phase string) {
		for i, e := range keys {
			// Read from an origin different from the one that wrote.
			var reader *Node
			for {
				reader = c.nodes[c.rng.Intn(len(c.nodes))]
				if reader.Info().Addr != e.origin {
					break
				}
			}
			r := c.getKey(t, reader, e.key)
			if !r.Found {
				t.Fatalf("%s: key %d %v lost", phase, i, e.key)
			}
			if !bytes.Equal(r.Value, e.value) {
				t.Fatalf("%s: key %d %v: got %q want %q", phase, i, e.key, r.Value, e.value)
			}
		}
	}
	verify("pre-churn")

	// Churn: 12 joins and 12 leaves interleaved.
	joins, leaves := 0, 0
	for joins < 12 || leaves < 12 {
		if joins < 12 && (leaves >= 12 || c.rng.Float64() < 0.5) {
			c.addNode(t, geom.Pt(c.rng.Float64(), c.rng.Float64()), dmin)
			joins++
		} else {
			idx := c.rng.Intn(len(c.nodes))
			nd := c.nodes[idx]
			if err := nd.Leave(); err != nil {
				t.Fatal(err)
			}
			c.bus.Drain()
			nd.ep.Close()
			c.nodes = append(c.nodes[:idx], c.nodes[idx+1:]...)
			leaves++
		}
	}
	c.checkViewsAgainstReference(t)
	verify("post-churn")

	// Writes against the churned overlay must be consistent too: stale
	// copies left behind by handoff may never answer for overwritten or
	// deleted keys.
	for i := 0; i < 50; i++ {
		keys[i].value = []byte(fmt.Sprintf("value-%04d-v2", i))
		nd := c.nodes[c.rng.Intn(len(c.nodes))]
		keys[i].origin = nd.Info().Addr
		c.putKey(t, nd, keys[i].key, keys[i].value)
	}
	for i := 50; i < 100; i++ {
		if err := c.nodes[c.rng.Intn(len(c.nodes))].Delete(keys[i].key, nil); err != nil {
			t.Fatal(err)
		}
		c.bus.Drain()
	}
	for i := 50; i < 100; i++ {
		if r := c.getKey(t, c.nodes[c.rng.Intn(len(c.nodes))], keys[i].key); r.Found {
			t.Fatalf("post-churn delete: key %d still served: %+v", i, r)
		}
	}
	keys = append(keys[:50], keys[100:]...)
	verify("post-churn-writes")
}
