package node

import (
	"errors"
	"sync"
	"testing"

	"voronet/internal/geom"
	"voronet/internal/proto"
	"voronet/internal/transport"
)

// flakyEndpoint wraps a bus endpoint and injects per-destination send
// failures: the first failN sends to a destination fail with failErr, the
// rest pass through. It counts every attempt.
type flakyEndpoint struct {
	transport.Endpoint
	mu       sync.Mutex
	failN    map[string]int
	failErr  error
	attempts map[string]int
}

func newFlaky(ep transport.Endpoint, failErr error) *flakyEndpoint {
	return &flakyEndpoint{Endpoint: ep, failErr: failErr,
		failN: map[string]int{}, attempts: map[string]int{}}
}

func (f *flakyEndpoint) Send(to string, payload []byte) error {
	f.mu.Lock()
	f.attempts[to]++
	fail := f.failN[to] > 0
	if fail {
		f.failN[to]--
	}
	f.mu.Unlock()
	if fail {
		return f.failErr
	}
	return f.Endpoint.Send(to, payload)
}

func (f *flakyEndpoint) sentTo(to string) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.attempts[to]
}

// twoNodeOverlay builds origin(0.1,0.1) + peer(0.9,0.9) with origin's
// endpoint wrapped by the given flaky wrapper factory.
func twoNodeOverlay(t *testing.T, bus *transport.Bus, wrap func(transport.Endpoint) *flakyEndpoint) (*Node, *Node, *flakyEndpoint) {
	t.Helper()
	epO, err := bus.Attach("origin")
	if err != nil {
		t.Fatal(err)
	}
	fl := wrap(epO)
	origin := New(fl, geom.Pt(0.1, 0.1), Config{DMin: 0.05, LongLinks: 1, Seed: 11})
	epP, err := bus.Attach("peer")
	if err != nil {
		t.Fatal(err)
	}
	peer := New(epP, geom.Pt(0.9, 0.9), Config{DMin: 0.05, LongLinks: 1, Seed: 12})
	if err := origin.Bootstrap(); err != nil {
		t.Fatal(err)
	}
	if err := peer.Join(origin.Info().Addr); err != nil {
		t.Fatal(err)
	}
	bus.Drain()
	if !peer.Joined() {
		t.Fatal("peer failed to join")
	}
	return origin, peer, fl
}

// TestRouteRetryOnTransientFailure: a transient send failure on a flaky
// link (a cached TCP connection the remote closed while idle) must be
// retried exactly once and succeed — without condemning the peer.
func TestRouteRetryOnTransientFailure(t *testing.T) {
	bus := transport.NewBus()
	origin, peer, fl := twoNodeOverlay(t, bus, func(ep transport.Endpoint) *flakyEndpoint {
		return newFlaky(ep, errors.New("transient: connection reset"))
	})

	before := fl.sentTo("peer")
	fl.mu.Lock()
	fl.failN["peer"] = 1 // next send to peer fails once
	fl.mu.Unlock()

	var owner proto.NodeInfo
	if err := origin.Query(geom.Pt(0.88, 0.88), func(o proto.NodeInfo, hops int) { owner = o }); err != nil {
		t.Fatal(err)
	}
	bus.Drain()

	if owner.Addr != peer.Info().Addr {
		t.Fatalf("query answered by %q, want %q", owner.Addr, peer.Info().Addr)
	}
	if got := fl.sentTo("peer") - before; got != 2 {
		t.Fatalf("%d send attempts to peer, want 2 (first + one retry)", got)
	}
	if origin.tombstoned("peer") {
		t.Fatal("transient failure must not tombstone the peer")
	}
}

// TestRouteNoRetryOnStructuralFailure: ErrUnknownPeer (and ErrClosed)
// mean resending the identical frame can never succeed. The old retry
// policy resent anyway, doubling the cost of every send to a crashed
// simnet peer; the shared helper must fail over to departure repair after
// a single attempt.
func TestRouteNoRetryOnStructuralFailure(t *testing.T) {
	for _, structural := range []error{transport.ErrUnknownPeer, transport.ErrClosed} {
		t.Run(structural.Error(), func(t *testing.T) {
			bus := transport.NewBus()
			origin, peer, fl := twoNodeOverlay(t, bus, func(ep transport.Endpoint) *flakyEndpoint {
				return newFlaky(ep, structural)
			})

			before := fl.sentTo("peer")
			fl.mu.Lock()
			fl.failN["peer"] = 1 << 20 // every send to peer now fails
			fl.mu.Unlock()

			var owner proto.NodeInfo
			if err := origin.Query(geom.Pt(0.88, 0.88), func(o proto.NodeInfo, hops int) { owner = o }); err != nil {
				t.Fatal(err)
			}
			bus.Drain()

			// One attempt for the routed query; the failure repairs the view
			// (tombstone + departure surgery) and the route falls back to the
			// origin itself, which answers as the surviving owner.
			if got := fl.sentTo("peer") - before; got != 1 {
				t.Fatalf("%d send attempts to peer, want exactly 1 (no structural retry)", got)
			}
			if !origin.tombstoned("peer") {
				t.Fatal("structural failure must tombstone the unreachable peer")
			}
			if owner.Addr != origin.Info().Addr {
				t.Fatalf("query answered by %q, want fallback owner %q", owner.Addr, origin.Info().Addr)
			}
			_ = peer
		})
	}
}

// tombstoned reports whether addr is in this node's tombstone set
// (white-box test helper).
func (n *Node) tombstoned(addr string) bool {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.tombs[addr]
}
