package node

import (
	"sort"

	"voronet/internal/geom"
	"voronet/internal/proto"
	"voronet/internal/store"
)

// The node face of the attribute-addressed object store (internal/store):
// Put / Get / Delete greedy-route the operation to the owner of the key's
// Voronoi region, which applies it to its local keyed store and replicates
// to the Voronoi neighbours closest to the key. Churn handoff rides on the
// same events that maintain the tessellation: integrateNewcomer hands the
// newcomer the records its region took over, Leave delegates every record
// to the neighbour closest to its key, and handleLeave re-replicates the
// records the survivor now owns.

// Put routes a PUT for key to its region owner and invokes cb (may be nil)
// with the acknowledgement or a timeout.
func (n *Node) Put(key geom.Point, value []byte, cb func(store.Reply)) error {
	return n.storeOp(proto.PurposeStorePut, key, value, cb)
}

// Get routes a GET for key and invokes cb with the value held by the first
// replica on the greedy path, or the owner's authoritative answer.
func (n *Node) Get(key geom.Point, cb func(store.Reply)) error {
	return n.storeOp(proto.PurposeStoreGet, key, nil, cb)
}

// Delete routes a DELETE for key to its region owner, which tombstones the
// record and replicates the tombstone.
func (n *Node) Delete(key geom.Point, cb func(store.Reply)) error {
	return n.storeOp(proto.PurposeStoreDelete, key, nil, cb)
}

func (n *Node) storeOp(purpose proto.RoutedPurpose, key geom.Point, value []byte, cb func(store.Reply)) error {
	n.mu.Lock()
	if !n.joined {
		n.mu.Unlock()
		return ErrNotJoined
	}
	timeout := n.cfg.StoreTimeout
	n.mu.Unlock()
	if cb == nil {
		cb = func(store.Reply) {}
	}
	id := n.inflight.Add(cb, timeout)
	env := &proto.Envelope{
		Type:    proto.KindRoute,
		Purpose: purpose,
		Target:  key,
		Value:   value,
		Origin:  n.self,
		QueryID: id,
	}
	// Start routing at ourselves (we may already own the key's region).
	n.handle(n.self.Addr, mustEncode(env))
	return nil
}

// PutSync is Put blocking until the acknowledgement (or timeout). Safe over
// the TCP transport; over the in-memory bus it must be called from a
// goroutine other than the one draining.
func (n *Node) PutSync(key geom.Point, value []byte) error {
	r, err := n.waitOp(func(cb func(store.Reply)) error { return n.Put(key, value, cb) })
	if err != nil {
		return err
	}
	return r.Err
}

// GetSync is Get blocking until the answer; it returns store.ErrNotFound
// for a missing or deleted key.
func (n *Node) GetSync(key geom.Point) ([]byte, error) {
	r, err := n.waitOp(func(cb func(store.Reply)) error { return n.Get(key, cb) })
	if err != nil {
		return nil, err
	}
	if r.Err != nil {
		return nil, r.Err
	}
	if !r.Found {
		return nil, store.ErrNotFound
	}
	return r.Value, nil
}

// DeleteSync is Delete blocking until the acknowledgement; it returns
// store.ErrNotFound when the owner had no live record.
func (n *Node) DeleteSync(key geom.Point) error {
	r, err := n.waitOp(func(cb func(store.Reply)) error { return n.Delete(key, cb) })
	if err != nil {
		return err
	}
	if r.Err != nil {
		return r.Err
	}
	if !r.Found {
		return store.ErrNotFound
	}
	return nil
}

func (n *Node) waitOp(op func(cb func(store.Reply)) error) (store.Reply, error) {
	ch := make(chan store.Reply, 1)
	if err := op(func(r store.Reply) { ch <- r }); err != nil {
		return store.Reply{}, err
	}
	// The inflight timeout guarantees the callback fires.
	return <-ch, nil
}

// StoreLen returns the number of live records this node holds (as owner or
// replica).
func (n *Node) StoreLen() int { return n.kv.Len() }

// StoreSnapshot returns every record this node holds, tombstones included.
func (n *Node) StoreSnapshot() []proto.StoreRecord { return n.kv.Snapshot() }

// handleStoreOwned executes a routed store operation at the owner of the
// key's region (no neighbour is closer to the key).
func (n *Node) handleStoreOwned(env *proto.Envelope) {
	reply := &proto.Envelope{Type: proto.KindStoreReply, From: n.self, QueryID: env.QueryID, Hops: env.Hops}
	switch env.Purpose {
	case proto.PurposeStorePut:
		rec := n.kv.Put(env.Target, env.Value)
		n.replicateRecords([]proto.StoreRecord{rec}, false, "")
		reply.Found = true
		reply.Version = rec.Version
	case proto.PurposeStoreGet:
		// The on-path replica check in handleRoute answered if we held the
		// key; reaching here as owner means an authoritative miss.
		if rec, ok := n.kv.Get(env.Target); ok {
			reply.Found = true
			reply.Value = rec.Value
			reply.Version = rec.Version
		}
	case proto.PurposeStoreDelete:
		if tomb, ok := n.kv.Delete(env.Target); ok {
			n.replicateRecords([]proto.StoreRecord{tomb}, false, "")
			reply.Found = true
			reply.Version = tomb.Version
		}
	}
	n.send(env.Origin.Addr, reply)
}

// replyStoreHit answers a GET from this node's local record (owner or
// replica on the greedy path). A tombstone is an authoritative miss.
func (n *Node) replyStoreHit(env *proto.Envelope, rec proto.StoreRecord) {
	reply := &proto.Envelope{Type: proto.KindStoreReply, From: n.self, QueryID: env.QueryID, Hops: env.Hops}
	if !rec.Deleted {
		reply.Found = true
		reply.Value = rec.Value
		reply.Version = rec.Version
	}
	n.send(env.Origin.Addr, reply)
}

// handleReplicaSync merges pushed records; a handoff makes this node the
// new owner of the carried keys, so it restores the replication factor by
// pushing them to its own neighbourhood.
func (n *Node) handleReplicaSync(env *proto.Envelope) {
	// Only records that actually changed local state are re-replicated:
	// overlapping handoff batches from several affected neighbours would
	// otherwise each trigger a redundant replication round.
	var changed []proto.StoreRecord
	for _, rec := range env.Records {
		if n.kv.Apply(rec) {
			changed = append(changed, rec)
		}
	}
	if env.Handoff && len(changed) > 0 {
		// Exclude the sender: a leaving node hands off and must not be
		// re-replicated to.
		n.replicateRecords(changed, false, env.From.Addr)
	}
}

// replicateRecords pushes records to their replica set: for each record,
// the cfg.Replication Voronoi neighbours closest to its key. Batches one
// message per distinct target. exclude (may be empty) names a peer to skip.
func (n *Node) replicateRecords(recs []proto.StoreRecord, handoff bool, exclude string) {
	n.mu.Lock()
	vns := n.vnList()
	r := n.cfg.Replication
	n.mu.Unlock()
	if len(vns) == 0 || len(recs) == 0 {
		return
	}
	batches := make(map[string][]proto.StoreRecord)
	order := make([]string, 0, len(vns))
	for _, rec := range recs {
		sort.Slice(vns, func(i, j int) bool {
			return geom.Dist2(vns[i].Pos, rec.Key) < geom.Dist2(vns[j].Pos, rec.Key)
		})
		picked := 0
		for _, v := range vns {
			if picked == r {
				break
			}
			if v.Addr == exclude {
				continue
			}
			if _, seen := batches[v.Addr]; !seen {
				order = append(order, v.Addr)
			}
			batches[v.Addr] = append(batches[v.Addr], rec)
			picked++
		}
	}
	for _, addr := range order {
		n.send(addr, &proto.Envelope{
			Type: proto.KindReplicaSync, From: n.self, Records: batches[addr], Handoff: handoff,
		})
	}
}

// inReplicaSet reports whether this node is in the key's current replica
// set — it is the owner, or one of the R nodes the owner replicates to
// (the R members of the owner's Voronoi neighbour list closest to the
// key). The owner's list is read from the two-hop table, so the test is
// exact once views are converged. Nodes outside the set may hold copies
// that churn has made stale; they forward GETs to the owner instead of
// answering.
func (n *Node) inReplicaSet(key geom.Point) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	// The owner candidate by our view: nearest to the key among us and
	// our neighbours.
	ownerAddr := n.self.Addr
	ownerD := geom.Dist2(n.self.Pos, key)
	for _, v := range n.vn {
		if dv := geom.Dist2(v.Pos, key); dv < ownerD {
			ownerD, ownerAddr = dv, v.Addr
		}
	}
	if ownerAddr == n.self.Addr {
		return true
	}
	lst, ok := n.twoHop[ownerAddr]
	if !ok {
		return false
	}
	selfD := geom.Dist2(n.self.Pos, key)
	inList := false
	closer := 0
	for _, v := range lst {
		if v.Addr == n.self.Addr {
			inList = true
			continue
		}
		dv := geom.Dist2(v.Pos, key)
		if dv < ownerD {
			// The candidate has a neighbour closer to the key, so it is
			// not the owner (greedy property): we are too far from the key
			// to know the true replica set.
			return false
		}
		if dv < selfD {
			closer++
		}
	}
	return inList && closer < n.cfg.Replication
}

// storeHandoffToNewcomer collects the records whose key now falls in the
// newcomer's region (strictly closer to it than to us) for a handoff push.
// We keep our copy: the shrunken cell's node remains a natural replica.
func (n *Node) storeHandoffToNewcomer(j proto.NodeInfo) []proto.StoreRecord {
	return n.kv.Collect(func(k geom.Point) bool {
		return geom.Dist2(j.Pos, k) < geom.Dist2(n.self.Pos, k)
	})
}

// storeReclaimAfterLeave collects the records this node owns now that
// `gone` departed: the departed node was closer to the key than we are,
// and no current neighbour beats us. Those records lost their owner, so
// the new owner re-replicates them.
func storeReclaimAfterLeave(kv *store.Local, self proto.NodeInfo, gone proto.NodeInfo, vns []proto.NodeInfo) []proto.StoreRecord {
	return kv.Collect(func(k geom.Point) bool {
		d := geom.Dist2(self.Pos, k)
		if geom.Dist2(gone.Pos, k) >= d {
			return false // we already owned (or tied on) this key
		}
		for _, v := range vns {
			if geom.Dist2(v.Pos, k) < d {
				return false // a surviving neighbour owns it
			}
		}
		return true
	})
}
