package node

import (
	"errors"
	"math"
	"sort"
	"time"

	"voronet/internal/geom"
	"voronet/internal/proto"
	"voronet/internal/store"
	"voronet/internal/transport"
)

// maxSyncBatchBytes bounds the record payload of one KindReplicaSync
// envelope so frames stay far below proto.MaxEnvelopeBytes and the TCP
// frame cap whatever the batch size — large handoffs are chunked, never
// silently rejected by the decoder.
const maxSyncBatchBytes = 256 << 10

// chunkRecords splits recs into envelope-sized chunks (cumulative value
// bytes plus per-record overhead under maxSyncBatchBytes; always at least
// one record per chunk).
func chunkRecords(recs []proto.StoreRecord) [][]proto.StoreRecord {
	var out [][]proto.StoreRecord
	var cur []proto.StoreRecord
	size := 0
	for _, rec := range recs {
		sz := len(rec.Value) + 64
		if len(cur) > 0 && size+sz > maxSyncBatchBytes {
			out = append(out, cur)
			cur, size = nil, 0
		}
		cur = append(cur, rec)
		size += sz
	}
	if len(cur) > 0 {
		out = append(out, cur)
	}
	return out
}

// The node face of the attribute-addressed object store (internal/store):
// Put / Get / Delete greedy-route the operation to the owner of the key's
// Voronoi region, which applies it to its local keyed store and replicates
// to the Voronoi neighbours closest to the key. Churn handoff rides on the
// same events that maintain the tessellation: integrateNewcomer hands the
// newcomer the records its region took over, Leave delegates every record
// to the neighbour closest to its key, and handleLeave re-replicates the
// records the survivor now owns.

// Put routes a PUT for key to its region owner and invokes cb (may be nil)
// with the acknowledgement or a timeout.
func (n *Node) Put(key geom.Point, value []byte, cb func(store.Reply)) error {
	return n.storeOp(proto.PurposeStorePut, key, value, cb)
}

// Get routes a GET for key and invokes cb with the value held by the first
// replica on the greedy path, or the owner's authoritative answer.
func (n *Node) Get(key geom.Point, cb func(store.Reply)) error {
	return n.storeOp(proto.PurposeStoreGet, key, nil, cb)
}

// Delete routes a DELETE for key to its region owner, which tombstones the
// record and replicates the tombstone.
func (n *Node) Delete(key geom.Point, cb func(store.Reply)) error {
	return n.storeOp(proto.PurposeStoreDelete, key, nil, cb)
}

// GetTrace is Get with per-hop tracing: the request travels with Trace
// set, every node on the greedy path appends one proto.TraceHop, and
// the reply's Path holds the full route, ending with the answering
// owner ("owner") or on-path replica ("replica").
func (n *Node) GetTrace(key geom.Point, cb func(store.Reply)) error {
	return n.storeOpTraced(proto.PurposeStoreGet, key, nil, cb, true)
}

// GetTraceSync is GetTrace blocking until the reply (or timeout).
func (n *Node) GetTraceSync(key geom.Point) (store.Reply, error) {
	return n.waitOp(func(cb func(store.Reply)) error { return n.GetTrace(key, cb) })
}

func (n *Node) storeOp(purpose proto.RoutedPurpose, key geom.Point, value []byte, cb func(store.Reply)) error {
	return n.storeOpTraced(purpose, key, value, cb, false)
}

func (n *Node) storeOpTraced(purpose proto.RoutedPurpose, key geom.Point, value []byte, cb func(store.Reply), trace bool) error {
	if purpose == proto.PurposeStorePut && len(value) > store.MaxValueBytes {
		// Reject loudly: an oversized envelope would be dropped by the
		// frame decoder and the operation would hang until its timeout.
		return store.ErrValueTooLarge
	}
	n.mu.RLock()
	if !n.joined {
		n.mu.RUnlock()
		return ErrNotJoined
	}
	timeout := n.cfg.StoreTimeout
	n.mu.RUnlock()
	// Origin-side admission: a draining node (mid-Shutdown) and an
	// origin already at its inflight budget refuse synchronously —
	// shedding here costs nothing on the wire, and the caller learns
	// "retry later" in microseconds instead of a timeout later.
	if n.draining.Load() || (n.cfg.MaxInflight > 0 && n.inflight.Pending() >= n.cfg.MaxInflight) {
		n.nm.storeShed.Inc()
		return store.ErrOverloaded
	}
	if cb == nil {
		cb = func(store.Reply) {}
	}
	// Observe the op's round trip and route length on the way back to
	// the caller; a timeout (or any error reply) counts separately and
	// stays out of the latency book. Successful replies also feed the
	// route cache: the answering node is the best-known waypoint for
	// this key's region (for a GET answered by an on-path replica it is
	// a node adjacent to the owner, which the strictly-closer scan still
	// routes through profitably).
	start := time.Now()
	inner := cb
	instrumented := func(r store.Reply) {
		if r.Err == nil {
			n.nm.storeLatencyFor(purpose).Observe(time.Since(start).Seconds())
			n.nm.storeHopsFor(purpose).Observe(float64(r.Hops))
			if purpose == proto.PurposeStoreGet {
				n.nm.firstByteHops.Observe(float64(r.Hops))
			}
			if n.cache != nil && r.Owner.Addr != "" && r.Owner.Addr != n.self.Addr {
				n.cache.insert(key, r.Owner)
			}
		} else if !errors.Is(r.Err, store.ErrOverloaded) {
			// An owner-side shed came back fast and was already counted
			// in store_shed_total at the owner; only genuine timeouts
			// belong in store_timeouts_total.
			n.nm.storeTimeouts.Inc()
		}
		inner(r)
	}
	id := n.inflight.Add(instrumented, timeout)
	env := &proto.Envelope{
		Type:    proto.KindRoute,
		Purpose: purpose,
		Target:  key,
		Value:   value,
		Origin:  n.self,
		QueryID: id,
		Trace:   trace,
	}
	// Start routing at ourselves (we may already own the key's region);
	// GETs fan out speculatively at Alpha > 1.
	n.dispatchRouted(env)
	return nil
}

// PutSync is Put blocking until the acknowledgement (or timeout). Safe over
// the TCP transport; over the in-memory bus it must be called from a
// goroutine other than the one draining.
func (n *Node) PutSync(key geom.Point, value []byte) error {
	r, err := n.waitOp(func(cb func(store.Reply)) error { return n.Put(key, value, cb) })
	if err != nil {
		return err
	}
	return r.Err
}

// GetSync is Get blocking until the answer; it returns store.ErrNotFound
// for a missing or deleted key.
func (n *Node) GetSync(key geom.Point) ([]byte, error) {
	r, err := n.waitOp(func(cb func(store.Reply)) error { return n.Get(key, cb) })
	if err != nil {
		return nil, err
	}
	if r.Err != nil {
		return nil, r.Err
	}
	if !r.Found {
		return nil, store.ErrNotFound
	}
	return r.Value, nil
}

// DeleteSync is Delete blocking until the acknowledgement; it returns
// store.ErrNotFound when the owner had no live record.
func (n *Node) DeleteSync(key geom.Point) error {
	r, err := n.waitOp(func(cb func(store.Reply)) error { return n.Delete(key, cb) })
	if err != nil {
		return err
	}
	if r.Err != nil {
		return r.Err
	}
	if !r.Found {
		return store.ErrNotFound
	}
	return nil
}

func (n *Node) waitOp(op func(cb func(store.Reply)) error) (store.Reply, error) {
	ch := make(chan store.Reply, 1)
	if err := op(func(r store.Reply) { ch <- r }); err != nil {
		return store.Reply{}, err
	}
	// The inflight timeout guarantees the callback fires.
	return <-ch, nil
}

// StoreLen returns the number of live records this node holds (as owner or
// replica).
func (n *Node) StoreLen() int { return n.kv.Len() }

// StoreSnapshot returns every record this node holds, tombstones included.
func (n *Node) StoreSnapshot() []proto.StoreRecord { return n.kv.Snapshot() }

// StoreLookup returns this node's local record for key, tombstones
// included (invariant checkers inspect replica placement without routing).
func (n *Node) StoreLookup(key geom.Point) (proto.StoreRecord, bool) { return n.kv.Lookup(key) }

// SyncReplicas is the anti-entropy sweep that restores placement after a
// fault epoch (a healed partition, a repaired crash): every record this
// node holds is pushed toward where it belongs. Records this node owns —
// per its local view, no Voronoi neighbour is closer to the key — go to
// their replica set, replaying any replica push lost to a fault. Records
// it merely holds go to the key's owner as a handoff: a crash can leave
// the new owner of a region without copies of its keys (the old owner's
// replica set need not contain the new owner), and only the surviving
// holders can close that gap. Recipients apply idempotently — newer
// version wins, equal versions keep the resident record — so repeated
// sweeps converge. It returns the number of records considered.
//
// By default the sweep is digest-first (see digest.go): each target gets
// a compact fingerprint list of what we would push and pulls only what
// it lacks, so a no-diff sweep costs a digest per target instead of the
// full record stream. Config.FullSyncReplicas restores the
// unconditional push.
func (n *Node) SyncReplicas() int {
	n.mu.RLock()
	if !n.joined {
		n.mu.RUnlock()
		return 0
	}
	self := n.self
	vns := n.vnList()
	rep := n.cfg.Replication
	full := n.cfg.FullSyncReplicas
	n.mu.RUnlock()
	recs := n.kv.Snapshot()
	if len(recs) == 0 {
		return 0
	}
	if full {
		n.pushByOwner(self, vns, recs, "")
		return len(recs)
	}
	for _, t := range syncTargets(self, vns, rep, recs, "") {
		// Best effort, like the full push: an unreachable target is
		// repaired by its own departure notifications.
		_ = n.send(t.addr, &proto.Envelope{
			Type: proto.KindSyncDigest, From: self, Handoff: t.handoff,
			Digest: packFPs(recFPs(t.recs)),
		})
	}
	return len(recs)
}

// batchRecords groups recs by the address assign returns, preserving
// first-seen order so derived message sequences are deterministic. An
// empty assignment drops the record.
func batchRecords(recs []proto.StoreRecord, assign func(proto.StoreRecord) string) ([]string, map[string][]proto.StoreRecord) {
	batches := make(map[string][]proto.StoreRecord)
	var order []string
	for _, rec := range recs {
		addr := assign(rec)
		if addr == "" {
			continue
		}
		if _, seen := batches[addr]; !seen {
			order = append(order, addr)
		}
		batches[addr] = append(batches[addr], rec)
	}
	return order, batches
}

// pushByOwner sends each record toward where the local view places it:
// records this node owns go to their replica set via replicateRecords,
// the rest travel to the key's owner as a handoff (the owner
// re-replicates anything that changed its state). exclude names a peer
// never to replicate to (a departed address). Caller must not hold n.mu.
func (n *Node) pushByOwner(self proto.NodeInfo, vns []proto.NodeInfo, recs []proto.StoreRecord, exclude string) {
	var owned []proto.StoreRecord
	order, batches := batchRecords(recs, func(rec proto.StoreRecord) string {
		owner, isSelf := ownerForKey(self, vns, rec.Key)
		if isSelf {
			owned = append(owned, rec)
			return ""
		}
		return owner.Addr
	})
	if len(owned) > 0 {
		n.replicateRecords(owned, false, exclude)
	}
	for _, addr := range order {
		for _, chunk := range chunkRecords(batches[addr]) {
			// Best effort: an unreachable owner is repaired by its own
			// departure notifications.
			_ = n.send(addr, &proto.Envelope{
				Type: proto.KindReplicaSync, From: self, Records: chunk, Handoff: true,
			})
		}
	}
}

// ownerForKey returns the owner of key per this view — the nearest of
// self and vns, ties to the lowest address with self winning its ties —
// and whether it is self.
func ownerForKey(self proto.NodeInfo, vns []proto.NodeInfo, key geom.Point) (proto.NodeInfo, bool) {
	best := self
	bestD := geom.Dist2(self.Pos, key)
	isSelf := true
	for _, v := range vns {
		d := geom.Dist2(v.Pos, key)
		if d < bestD || (d == bestD && !isSelf && v.Addr < best.Addr) {
			best, bestD, isSelf = v, d, false
		}
	}
	return best, isSelf
}

// handleStoreOwned executes a routed store operation at the owner of the
// key's region (no neighbour is closer to the key).
func (n *Node) handleStoreOwned(env *proto.Envelope) {
	// env.Path already ends with this node's terminal hop (handleRoute
	// appended it before dispatching here); the reply carries it home.
	reply := &proto.Envelope{
		Type: proto.KindStoreReply, From: n.self, QueryID: env.QueryID,
		Hops: env.Hops, Path: env.Path,
	}
	// Owner-side admission: bound how many store ops execute here
	// concurrently. Beyond the budget the op is refused — fast, explicit,
	// before any state changed — and the origin maps Shed back to
	// store.ErrOverloaded. Shedding load the origin gate could not see
	// (many origins converging on one hot owner) is exactly this path.
	if max := int64(n.cfg.MaxInflight); max > 0 {
		if n.storeBusy.Add(1) > max {
			n.storeBusy.Add(-1)
			n.nm.storeShed.Inc()
			reply.Shed = true
			n.replyToOrigin(env.Origin.Addr, reply)
			return
		}
		defer n.storeBusy.Add(-1)
	}
	switch env.Purpose {
	case proto.PurposeStorePut:
		rec := n.kv.Put(env.Target, env.Value)
		// Log before the ack: once the origin sees Found, the record
		// survives a crash of this process (wal.SyncAlways).
		n.walAppend(rec)
		n.replicateRecords([]proto.StoreRecord{rec}, false, "")
		reply.Found = true
		reply.Version = rec.Version
	case proto.PurposeStoreGet:
		// The on-path replica check in handleRoute answered if we held the
		// key; reaching here as owner means an authoritative miss.
		if rec, ok := n.kv.Get(env.Target); ok {
			reply.Found = true
			reply.Value = rec.Value
			reply.Version = rec.Version
		}
	case proto.PurposeStoreDelete:
		if tomb, ok := n.kv.Delete(env.Target); ok {
			n.walAppend(tomb)
			n.replicateRecords([]proto.StoreRecord{tomb}, false, "")
			reply.Found = true
			reply.Version = tomb.Version
		}
	}
	n.replyToOrigin(env.Origin.Addr, reply)
}

// replyToOrigin delivers a reply (store ack/answer or query answer) to
// the requesting origin. A failed reply used to vanish silently — the
// send error was dropped and the origin just timed out. It is now
// accounted (send() already counts it in node_send_errors_total) and a
// structural failure triggers departure repair: ErrUnknownPeer means the
// origin detached from the bus (crashed), ErrClosed that no frame can
// ever be delivered again — in both cases the views around the origin
// are worth repairing now rather than at the next routed operation
// through it. Transient TCP failures already got their one retry inside
// sendWithRetry; repairing on them too would tombstone live peers over a
// dropped connection, so they are only counted.
func (n *Node) replyToOrigin(origin string, reply *proto.Envelope) {
	err := n.sendWithRetry(origin, reply)
	if err == nil {
		return
	}
	if errors.Is(err, transport.ErrUnknownPeer) || errors.Is(err, transport.ErrClosed) {
		n.NotifyDeparted(origin)
	}
}

// replyStoreHit answers a GET from this node's local record (owner or
// replica on the greedy path). A tombstone is an authoritative miss.
func (n *Node) replyStoreHit(env *proto.Envelope, rec proto.StoreRecord) {
	reply := &proto.Envelope{
		Type: proto.KindStoreReply, From: n.self, QueryID: env.QueryID,
		Hops: env.Hops, Path: env.Path,
	}
	if !rec.Deleted {
		reply.Found = true
		reply.Value = rec.Value
		reply.Version = rec.Version
	}
	n.replyToOrigin(env.Origin.Addr, reply)
}

// handleReplicaSync merges pushed records; a handoff makes this node the
// new owner of the carried keys, so it restores the replication factor by
// pushing them to its own neighbourhood. A handoff that arrives after
// this node has itself left is re-delegated, never absorbed: applying it
// to a cleared store on a departed node would strand the records (two
// adjacent nodes leaving concurrently hand their records to each other).
func (n *Node) handleReplicaSync(env *proto.Envelope) {
	n.mu.RLock()
	joined := n.joined
	self := n.self
	var lastVN []proto.NodeInfo
	if !joined {
		lastVN = append([]proto.NodeInfo(nil), n.lastVN...)
	}
	n.mu.RUnlock()
	if !joined {
		if env.Handoff {
			n.redelegateHandoff(env, self, lastVN)
		}
		// A plain replica refresh to a departed node is stale: drop.
		return
	}
	// Only records that actually changed local state are re-replicated:
	// overlapping handoff batches from several affected neighbours would
	// otherwise each trigger a redundant replication round.
	var changed []proto.StoreRecord
	for _, rec := range env.Records {
		if n.kv.Apply(rec) {
			changed = append(changed, rec)
		}
	}
	// Replica applies are logged too: a crashed replica recovers its
	// copies from its own WAL, so any single surviving log in a key's
	// replica set can restore every acked write.
	n.walAppend(changed...)
	if env.Handoff && len(changed) > 0 {
		// Exclude the sender: a leaving node hands off and must not be
		// re-replicated to.
		n.replicateRecords(changed, false, env.From.Addr)
	}
}

// redelegateHandoff forwards a handoff that reached this node after it
// left: each record travels to the nearest pre-departure neighbour not
// known to have departed. The exclusion set accumulates along the chain
// (every hop adds itself to the farewell Departed list, and a
// transport-unreachable candidate — a silent crash — joins it locally),
// so concurrent leavers cannot ping-pong a batch and the chain terminates
// at a live node — or, when every candidate is gone, drops the records
// exactly as if the whole group had crashed.
func (n *Node) redelegateHandoff(env *proto.Envelope, self proto.NodeInfo, lastVN []proto.NodeInfo) {
	// dead excludes candidates from selection; gone is the subset that is
	// confirmed departed and safe to broadcast. The original sender is
	// only excluded locally: it may be a live node pushing with a stale
	// view, and putting it on the wire Departed list would tombstone it
	// across the overlay.
	dead := map[string]bool{self.Addr: true, env.From.Addr: true}
	gone := map[string]bool{self.Addr: true}
	goneGen := map[string]uint64{self.Addr: self.Gen}
	for i, d := range env.Departed {
		dead[d] = true
		gone[d] = true
		if i < len(env.DepartedGen) {
			goneGen[d] = env.DepartedGen[i]
		}
	}
	addrGen := make(map[string]uint64, len(lastVN))
	for _, v := range lastVN {
		addrGen[v.Addr] = v.Gen
	}
	pending := env.Records
	for len(pending) > 0 {
		depart := make([]string, 0, len(gone))
		for a := range gone {
			depart = append(depart, a)
		}
		sort.Strings(depart)
		var departGen []uint64
		for i, a := range depart {
			if g := goneGen[a]; g > 0 {
				if departGen == nil {
					departGen = make([]uint64, len(depart))
				}
				departGen[i] = g
			}
		}
		order, batches := batchRecords(pending, func(rec proto.StoreRecord) string {
			best := ""
			bestD := math.Inf(1)
			for _, v := range lastVN {
				if dead[v.Addr] {
					continue
				}
				if d := geom.Dist2(v.Pos, rec.Key); d < bestD || (d == bestD && v.Addr < best) {
					best, bestD = v.Addr, d
				}
			}
			return best // "" when no surviving candidate: the record dies with us
		})
		if len(order) == 0 {
			return
		}
		pending = nil
		for _, addr := range order {
			failed := false
			for _, chunk := range chunkRecords(batches[addr]) {
				if err := n.send(addr, &proto.Envelope{
					Type: proto.KindReplicaSync, From: self, Records: chunk,
					Handoff: true, Departed: depart, DepartedGen: departGen,
				}); err != nil {
					failed = true
					break // structural failure: further chunks fail too
				}
			}
			if failed {
				// The candidate crashed without a farewell: exclude it
				// and retry the batch with the next survivor (duplicate
				// chunks that did land are applied idempotently).
				dead[addr] = true
				gone[addr] = true
				goneGen[addr] = addrGen[addr]
				pending = append(pending, batches[addr]...)
			}
		}
	}
}

// replicateRecords pushes records to their replica set: for each record,
// the cfg.Replication Voronoi neighbours closest to its key. Batches one
// message per distinct target. exclude (may be empty) names a peer to skip.
func (n *Node) replicateRecords(recs []proto.StoreRecord, handoff bool, exclude string) {
	n.mu.RLock()
	vns := n.vnList()
	r := n.cfg.Replication
	n.mu.RUnlock()
	if len(vns) == 0 || len(recs) == 0 {
		return
	}
	batches := make(map[string][]proto.StoreRecord)
	order := make([]string, 0, len(vns))
	for _, rec := range recs {
		sort.Slice(vns, func(i, j int) bool {
			di, dj := geom.Dist2(vns[i].Pos, rec.Key), geom.Dist2(vns[j].Pos, rec.Key)
			if di != dj {
				return di < dj
			}
			// Equidistant replicas rank by address so the replica set is
			// the same no matter which node computes it.
			return vns[i].Addr < vns[j].Addr
		})
		picked := 0
		for _, v := range vns {
			if picked == r {
				break
			}
			if v.Addr == exclude {
				continue
			}
			if _, seen := batches[v.Addr]; !seen {
				order = append(order, v.Addr)
			}
			batches[v.Addr] = append(batches[v.Addr], rec)
			picked++
		}
	}
	for _, addr := range order {
		for _, chunk := range chunkRecords(batches[addr]) {
			n.send(addr, &proto.Envelope{
				Type: proto.KindReplicaSync, From: n.self, Records: chunk, Handoff: handoff,
			})
		}
	}
}

// inReplicaSet reports whether this node is in the key's current replica
// set — it is the owner, or one of the R nodes the owner replicates to
// (the R members of the owner's Voronoi neighbour list closest to the
// key). The owner's list is read from the two-hop table, so the test is
// exact once views are converged. Nodes outside the set may hold copies
// that churn has made stale; they forward GETs to the owner instead of
// answering.
func (n *Node) inReplicaSet(key geom.Point) bool {
	n.mu.RLock()
	defer n.mu.RUnlock()
	// The owner candidate by our view: nearest to the key among us and
	// our neighbours.
	ownerAddr := n.self.Addr
	ownerD := geom.Dist2(n.self.Pos, key)
	for _, v := range n.vn {
		if dv := geom.Dist2(v.Pos, key); dv < ownerD {
			ownerD, ownerAddr = dv, v.Addr
		}
	}
	if ownerAddr == n.self.Addr {
		return true
	}
	lst, ok := n.twoHop[ownerAddr]
	if !ok {
		return false
	}
	selfD := geom.Dist2(n.self.Pos, key)
	inList := false
	closer := 0
	for _, v := range lst {
		if v.Addr == n.self.Addr {
			inList = true
			continue
		}
		dv := geom.Dist2(v.Pos, key)
		if dv < ownerD {
			// The candidate has a neighbour closer to the key, so it is
			// not the owner (greedy property): we are too far from the key
			// to know the true replica set.
			return false
		}
		if dv < selfD {
			closer++
		}
	}
	return inList && closer < n.cfg.Replication
}

// storeHandoffToNewcomer collects the records whose key now falls in the
// newcomer's region (strictly closer to it than to us) for a handoff push.
// We keep our copy: the shrunken cell's node remains a natural replica.
func (n *Node) storeHandoffToNewcomer(j proto.NodeInfo) []proto.StoreRecord {
	return n.kv.Collect(func(k geom.Point) bool {
		return geom.Dist2(j.Pos, k) < geom.Dist2(n.self.Pos, k)
	})
}

// repairDepartedRecords restores store placement after the peer at gone
// departed without a handoff: every record gone was strictly closer to
// than we are lost its owner-side copy. Records we now own are
// re-replicated from here; records a surviving neighbour owns are pushed
// to it as a handoff — the new owner may hold nothing at all, since the
// old owner's replica set need not contain it, and only surviving holders
// can close that gap. vns must already exclude the departed peer; caller
// must not hold n.mu.
func (n *Node) repairDepartedRecords(self, gone proto.NodeInfo, vns []proto.NodeInfo) {
	affected := n.kv.Collect(func(k geom.Point) bool {
		return geom.Dist2(gone.Pos, k) < geom.Dist2(self.Pos, k)
	})
	if len(affected) == 0 {
		return
	}
	n.pushByOwner(self, vns, affected, gone.Addr)
}
