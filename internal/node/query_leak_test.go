package node

import (
	"sync/atomic"
	"testing"
	"time"

	"voronet/internal/geom"
	"voronet/internal/proto"
	"voronet/internal/transport"
)

// pendingQueries counts the registered Query callbacks (white-box).
func pendingQueries(n *Node) int {
	n.queryMu.Lock()
	defer n.queryMu.Unlock()
	return len(n.queries)
}

// pendingRanges counts the registered RangeQuery callbacks (white-box).
func pendingRanges(n *Node) int {
	n.queryMu.Lock()
	defer n.queryMu.Unlock()
	return len(n.rangeHits)
}

// TestQueryTimeoutReapsCallback: the owner of the queried point crashes
// after the query reached it but before its answer could be delivered.
// The registered callback used to leak in n.queries forever; now the
// per-query deadline reaps it and fires it exactly once with HopsTimedOut.
func TestQueryTimeoutReapsCallback(t *testing.T) {
	bus := transport.NewBus()
	mk := func(addr string, pos geom.Point) (*Node, transport.Endpoint) {
		ep, err := bus.Attach(addr)
		if err != nil {
			t.Fatal(err)
		}
		return New(ep, pos, Config{DMin: 0.05, LongLinks: 1, Seed: 7,
			QueryTimeout: 50 * time.Millisecond}), ep
	}
	origin, _ := mk("origin", geom.Pt(0.1, 0.1))
	owner, ownerEP := mk("owner", geom.Pt(0.9, 0.9))
	if err := origin.Bootstrap(); err != nil {
		t.Fatal(err)
	}
	if err := owner.Join(origin.Info().Addr); err != nil {
		t.Fatal(err)
	}
	bus.Drain()
	if !owner.Joined() {
		t.Fatal("owner failed to join")
	}

	var fired atomic.Int32
	var timedOut atomic.Bool
	const queries = 5
	for q := 0; q < queries; q++ {
		// The query routes toward owner's region; owner crashes with the
		// messages in flight, so no answer ever comes back.
		err := origin.Query(geom.Pt(0.89, 0.89), func(got proto.NodeInfo, hops int) {
			fired.Add(1)
			if hops == HopsTimedOut && got.Addr == "" {
				timedOut.Store(true)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if got := pendingQueries(origin); got != queries {
		t.Fatalf("pending queries before crash: %d, want %d", got, queries)
	}
	ownerEP.Close() // crash: the in-flight queries die with the owner
	bus.Drain()

	deadline := time.Now().Add(2 * time.Second)
	for pendingQueries(origin) > 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := pendingQueries(origin); got != 0 {
		t.Fatalf("%d query callbacks leaked after the owner crashed", got)
	}
	if got := fired.Load(); got != queries {
		t.Fatalf("callbacks fired %d times, want %d", got, queries)
	}
	if !timedOut.Load() {
		t.Fatal("no callback observed the HopsTimedOut signal")
	}

	// A late answer for a reaped ID must be dropped, not double-fire.
	origin.deliver(&proto.Envelope{Type: proto.KindQueryAnswer,
		From: owner.Info(), QueryID: 1, Hops: 3})
	if got := fired.Load(); got != queries {
		t.Fatalf("late answer double-fired a reaped callback: %d", got)
	}
}

// TestRangeQueryTimeoutReapsCallback: a RangeQuery whose flood dies with a
// crashed region owner must not leak its collection callback.
func TestRangeQueryTimeoutReapsCallback(t *testing.T) {
	bus := transport.NewBus()
	epA, err := bus.Attach("a")
	if err != nil {
		t.Fatal(err)
	}
	a := New(epA, geom.Pt(0.1, 0.5), Config{DMin: 0.05, LongLinks: 1, Seed: 3,
		QueryTimeout: 50 * time.Millisecond})
	epB, err := bus.Attach("b")
	if err != nil {
		t.Fatal(err)
	}
	b := New(epB, geom.Pt(0.9, 0.5), Config{DMin: 0.05, LongLinks: 1, Seed: 4,
		QueryTimeout: 50 * time.Millisecond})
	if err := a.Bootstrap(); err != nil {
		t.Fatal(err)
	}
	if err := b.Join(a.Info().Addr); err != nil {
		t.Fatal(err)
	}
	bus.Drain()

	// Sever b's answers so the collection window closes on the deadline.
	bus.SetLinkRule("b", "a", transport.LinkRule{Down: true})
	if err := a.RangeQuery(geom.Pt(0.8, 0.5), geom.Pt(0.95, 0.5), func(proto.NodeInfo) {}); err != nil {
		t.Fatal(err)
	}
	bus.Drain()

	deadline := time.Now().Add(2 * time.Second)
	for pendingRanges(a) > 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := pendingRanges(a); got != 0 {
		t.Fatalf("%d range callbacks leaked after the deadline", got)
	}
}
