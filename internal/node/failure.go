package node

import (
	"time"

	"voronet/internal/geom"
	"voronet/internal/proto"
)

// NotifyDeparted tells the node that the peer at addr has crashed — the
// input an external failure detector (or a failed transport send, see
// handleRoute) provides. Unlike a graceful departure, a crashed peer sends
// no KindLeave and hands nothing off, so the survivor performs the whole
// RemoveVoronoiRegion surgery from its own state: tombstone the address,
// close the tessellation hole from the candidate pool (the dead peer's
// old neighbour list in our two-hop table supplies the hole's border),
// drop its BLRn entries, re-route our long links it held, and reclaim and
// re-replicate the store records whose owner disappeared.
//
// The method is idempotent: a second notification for a tombstoned
// address is a no-op, which also bounds the recursion when repair gossip
// itself hits further dead peers.
func (n *Node) NotifyDeparted(addr string) {
	start := time.Now()
	n.mu.Lock()
	if !n.joined || addr == n.self.Addr {
		n.mu.Unlock()
		return
	}
	if n.tombs[addr] {
		// Idempotence — unless a newer incarnation of the address has
		// since rejoined our views; its crash is fresh news.
		v, inVN := n.vn[addr]
		c, inCN := n.cn[addr]
		if !(inVN && v.Gen > n.tombGen[addr]) && !(inCN && c.Gen > n.tombGen[addr]) {
			n.mu.Unlock()
			return
		}
	}
	defer func() { n.nm.departTime.Observe(time.Since(start).Seconds()) }()
	gone, wasVN := n.vn[addr]
	// Tombstone the incarnation we knew; a durably restarted successor
	// (higher generation) stays admissible.
	gen := gone.Gen
	if !wasVN {
		if c, ok := n.cn[addr]; ok {
			gen = c.Gen
		}
	}
	n.tombstoneLocked(addr, gen)
	// Build the pool before dropping the dead peer's list: its old
	// neighbours are exactly the other border nodes of the hole.
	pool := n.candidatePool()
	delete(pool, addr)
	delete(n.vn, addr)
	delete(n.twoHop, addr)
	delete(n.cn, addr)
	if wasVN {
		n.recomputeLocked(pool)
	}
	// Drop BLRn entries originated by the dead peer: there is no origin
	// left to serve the link for.
	kept := n.back[:0]
	for _, ref := range n.back {
		if ref.Origin.Addr != addr {
			kept = append(kept, ref)
		}
	}
	n.back = kept
	// Long links the dead peer held must be re-routed to the targets' new
	// owners; clear the slot so routing skips it until the grant arrives.
	var relink []int
	for j, h := range n.longNbrs {
		if h.Addr == addr {
			n.longNbrs[j] = proto.NodeInfo{}
			relink = append(relink, j)
		}
	}
	var vns []proto.NodeInfo
	if wasVN {
		vns = n.vnList()
	}
	dep, depGen := n.departedLocked()
	self := n.self
	targets := make([]geom.Point, len(relink))
	for i, j := range relink {
		targets[i] = n.longTargets[j]
	}
	n.mu.Unlock()

	for _, v := range vns {
		// Best effort: further dead peers are repaired by their own
		// notifications.
		_ = n.send(v.Addr, &proto.Envelope{Type: proto.KindNeighborList, From: self, Neighbors: vns, Departed: dep, DepartedGen: depGen})
	}
	for i, j := range relink {
		env := &proto.Envelope{
			Type:    proto.KindRoute,
			Purpose: proto.PurposeLongLink,
			Target:  targets[i],
			Origin:  self,
			Link:    j,
		}
		n.handle(self.Addr, mustEncode(env))
	}
	// Store repair: records the dead peer owned lost their owner-side
	// copy; re-replicate the ones we now own and push the rest to their
	// new owners (who may hold nothing — the dead owner's replica set
	// need not contain them).
	if wasVN {
		n.repairDepartedRecords(self, gone, vns)
	}
}
