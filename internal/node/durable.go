package node

import (
	"voronet/internal/geom"
	"voronet/internal/proto"
	"voronet/internal/transport"
	"voronet/internal/wal"
)

// The durability face of the node: a write-ahead log under
// Config.WALDir records every store mutation this node acks or applies —
// owner-side PUT/DELETE before the ack leaves, replica applies as they
// merge — so a crashed node restarted at the same address recovers every
// record it held and reconverges through the ordinary anti-entropy
// sweep. The log is segmented; once it spans walCompactSegments segments
// it is compacted down to a snapshot of the live store, and tombstones
// that survived a full compaction interval unchanged are garbage
// collected (two-phase: anti-entropy has had a whole interval to push
// the tombstone to every replica, so dropping it cannot resurrect the
// key — the same grace-period reasoning as Cassandra's gc_grace).

// walCompactSegments is the compaction trigger: once the log spans this
// many segments, the next append folds it into a snapshot segment.
const walCompactSegments = 3

// NewDurable creates a node like New and attaches a write-ahead log
// under cfg.WALDir: the log is replayed into the store before the
// message handler is installed (recovery races with nothing), and every
// subsequent store mutation is logged. The returned stats describe the
// replay; a torn tail or corrupt frames are recovery facts, not errors.
func NewDurable(ep transport.Endpoint, pos geom.Point, cfg Config) (*Node, wal.ReplayStats, error) {
	n := newNode(ep, pos, cfg)
	l, stats, err := wal.Open(wal.Options{
		Dir:          cfg.WALDir,
		SegmentBytes: cfg.WALSegmentBytes,
		Policy:       cfg.WALSync,
		FsyncObserve: n.nm.walFsync.Observe,
	}, func(rec proto.StoreRecord) { n.kv.Apply(rec) })
	if err != nil {
		return nil, stats, err
	}
	n.wal = l
	// Adopt the persisted incarnation number before any message leaves:
	// peers that tombstoned the previous incarnation admit this one only
	// because its generation is higher.
	n.self.Gen = stats.Generation
	n.cfg.Generation = stats.Generation
	n.nm.walReplayed.Add(uint64(stats.Records))
	n.nm.walCorrupt.Add(uint64(stats.CorruptFrames))
	if stats.Truncated {
		n.nm.walTorn.Inc()
	}
	ep.SetHandler(n.handle)
	return n, stats, nil
}

// walAppend logs store mutations. On a non-durable node it is free (wal
// is nil forever, set once before the handler was installed). Append
// errors are counted, never propagated: a full or failing disk degrades
// durability, not availability — the in-memory store stays correct and
// the operator sees wal_errors_total climb.
func (n *Node) walAppend(recs ...proto.StoreRecord) {
	if n.wal == nil {
		return
	}
	n.walMu.Lock()
	for _, rec := range recs {
		if err := n.wal.Append(rec); err != nil {
			n.nm.walErrs.Inc()
			n.walMu.Unlock()
			return
		}
		n.nm.walAppends.Inc()
	}
	compact := n.wal.Segments() >= walCompactSegments
	n.walMu.Unlock()
	if compact {
		n.compactWAL()
	}
}

// compactWAL folds the log into a snapshot of the current store and runs
// the two-phase tombstone GC: a tombstone still present at the same
// version as at the previous compaction has been stable for a full
// interval — long enough for anti-entropy to have delivered it
// everywhere — and is purged from both the snapshot and the store.
func (n *Node) compactWAL() {
	n.walMu.Lock()
	defer n.walMu.Unlock()
	// The snapshot must be taken while holding walMu: handlers run
	// concurrently, and a record logged by another handler between an
	// early snapshot and the lock would be missing from the snapshot yet
	// have its only WAL frame in a segment Compact deletes — an acked
	// write lost on the next crash. Under walMu the ordering is safe:
	// every mutation is kv-applied before walAppend, so any append that
	// completed before we got the lock is already in this snapshot (lock
	// order walMu → store lock is deadlock-free; walAppend never runs
	// with the store lock held).
	snap := n.kv.Snapshot()
	prev := n.walGC
	next := make(map[geom.Point]uint64)
	kept := snap[:0]
	for _, rec := range snap {
		if rec.Deleted {
			if v, seen := prev[rec.Key]; seen && v == rec.Version && n.kv.DropTombstone(rec.Key, rec.Version) {
				n.nm.walTombGC.Inc()
				continue
			}
			next[rec.Key] = rec.Version
		}
		kept = append(kept, rec)
	}
	n.walGC = next
	if err := n.wal.Compact(kept); err != nil {
		n.nm.walErrs.Inc()
		return
	}
	n.nm.walCompactions.Inc()
}

// walReset discards the log after a graceful Leave handed every record
// off (safe on any node: nil wal is a no-op).
func (n *Node) walReset() {
	if n.wal == nil {
		return
	}
	n.walMu.Lock()
	defer n.walMu.Unlock()
	n.walGC = nil
	if err := n.wal.Reset(); err != nil {
		n.nm.walErrs.Inc()
	}
}

// WALSync flushes outstanding WAL appends to disk — the periodic flush
// hook for Config.WALSync == wal.SyncBatch.
func (n *Node) WALSync() {
	if n.wal == nil {
		return
	}
	n.walMu.Lock()
	defer n.walMu.Unlock()
	if err := n.wal.Sync(); err != nil {
		n.nm.walErrs.Inc()
	}
}

// Shutdown leaves the overlay gracefully, durably: stop admitting new
// origin-side store operations, flush the WAL (so even a failure later
// in the sequence loses nothing acked), hand every record off via Leave,
// then close the log. After a completed Leave the log is empty — the
// records now live (and are logged) at the surviving nodes.
func (n *Node) Shutdown() error {
	n.draining.Store(true)
	n.WALSync()
	err := n.Leave()
	if n.wal != nil {
		n.walMu.Lock()
		if cerr := n.wal.Close(); cerr != nil {
			n.nm.walErrs.Inc()
		}
		n.walMu.Unlock()
	}
	return err
}
