package node

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"voronet/internal/geom"
	"voronet/internal/proto"
	"voronet/internal/store"
	"voronet/internal/transport"
)

// TestBusParallelDrainEquivalence: the opt-in parallel simnet delivery
// must agree with the deterministic serial drain on protocol outcomes.
// The overlay is built under serial delivery (joins are view surgery and
// their transcripts must stay replayable); the read-only workload —
// routed point queries and store GETs — then runs under each mode and
// must name the same owners, the same hop counts and the same values.
// Run under -race: the parallel drain invokes node handlers concurrently,
// so this is also the race audit of the node's read-path locking over the
// simnet.
func TestBusParallelDrainEquivalence(t *testing.T) {
	const (
		peers   = 24
		queries = 60
		keys    = 20
	)
	type answer struct {
		owner string
		hops  int
	}

	run := func(parallel bool) ([]answer, []string) {
		bus := transport.NewBus()
		rng := rand.New(rand.NewSource(99))
		var nodes []*Node
		for i := 0; i < peers; i++ {
			addr := fmt.Sprintf("n%03d", i)
			ep, err := bus.Attach(addr)
			if err != nil {
				t.Fatal(err)
			}
			nd := New(ep, geom.Pt(rng.Float64(), rng.Float64()), Config{
				DMin: 0.05, LongLinks: 1, Seed: int64(i), Replication: 2,
				QueryTimeout: 365 * 24 * time.Hour, StoreTimeout: 365 * 24 * time.Hour,
			})
			if i == 0 {
				if err := nd.Bootstrap(); err != nil {
					t.Fatal(err)
				}
			} else {
				if err := nd.Join(nodes[rng.Intn(len(nodes))].Info().Addr); err != nil {
					t.Fatal(err)
				}
				bus.Drain()
				if !nd.Joined() {
					t.Fatalf("node %s failed to join", addr)
				}
			}
			nodes = append(nodes, nd)
		}
		// Seed the store under serial delivery too: PUTs mutate replica
		// state and are not part of the read-path equivalence claim.
		keyPts := make([]geom.Point, keys)
		for i := range keyPts {
			keyPts[i] = geom.Pt(rng.Float64(), rng.Float64())
			if err := nodes[rng.Intn(peers)].Put(keyPts[i], []byte(fmt.Sprintf("v%03d", i)), nil); err != nil {
				t.Fatal(err)
			}
			bus.Drain()
		}

		if parallel {
			bus.SetParallelDelivery(8)
		}

		// The read-only workload: fixed query points from fixed origins.
		answers := make([]answer, queries)
		var mu sync.Mutex
		wrng := rand.New(rand.NewSource(7))
		for q := 0; q < queries; q++ {
			q := q
			p := geom.Pt(wrng.Float64(), wrng.Float64())
			if err := nodes[q%peers].Query(p, func(owner proto.NodeInfo, hops int) {
				mu.Lock()
				answers[q] = answer{owner: owner.Addr, hops: hops}
				mu.Unlock()
			}); err != nil {
				t.Fatal(err)
			}
		}
		bus.Drain()

		values := make([]string, keys)
		for i := range keyPts {
			i := i
			if err := nodes[(i*3)%peers].Get(keyPts[i], func(r store.Reply) {
				mu.Lock()
				values[i] = string(r.Value)
				mu.Unlock()
			}); err != nil {
				t.Fatal(err)
			}
		}
		bus.Drain()
		return answers, values
	}

	serialAns, serialVals := run(false)
	parAns, parVals := run(true)
	for q := range serialAns {
		if serialAns[q] != parAns[q] {
			t.Errorf("query %d: serial %+v, parallel %+v", q, serialAns[q], parAns[q])
		}
	}
	for i := range serialVals {
		if serialVals[i] != parVals[i] {
			t.Errorf("get %d: serial %q, parallel %q", i, serialVals[i], parVals[i])
		}
	}
}
