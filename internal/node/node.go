// Package node implements the distributed, message-passing VoroNet peer:
// each node holds only its own view — its position, its Voronoi neighbours
// vn with their neighbour lists (the "neighbours' neighbours" knowledge of
// §4.1), its close neighbours cn, its long links and its BLRn set — and
// maintains that view purely by exchanging internal/proto messages over an
// internal/transport endpoint. No node ever sees a global structure.
//
// Local tessellation surgery follows the paper's division of labour: the
// object owning the affected region recomputes the partial tessellation
// and the neighbourhood is told to update (§3.3). Concretely, every
// affected node rebuilds its own Voronoi neighbour list from its candidate
// pool (itself, its neighbours, their neighbours, plus the arriving or
// departing object) with a small local Delaunay computation; the pool
// provably contains the true new neighbour set under the paper's 2-hop
// knowledge assumption, and the node tests validate the resulting views
// against the reference substrate (internal/core) site-for-site.
//
// One deliberate divergence from Algorithms 1–5: routed operations travel
// greedily all the way to the region owner instead of stopping at the
// ⅓-distance condition and inserting fictive objects. The fictive-object
// machinery exists to prove termination bounds for point targets; greedy
// forwarding over Voronoi neighbours already terminates at the owner
// (every non-owner has a neighbour strictly closer to the target), and the
// owner inserts locally. The simulator (internal/core) implements the
// literal fictive-object protocol and accounts its costs.
package node

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"time"

	"sync/atomic"

	"voronet/internal/delaunay"
	"voronet/internal/geom"
	"voronet/internal/proto"
	"voronet/internal/store"
	"voronet/internal/transport"
	"voronet/internal/wal"
)

// Config parameterises a node.
type Config struct {
	// DMin is the close-neighbour radius (all nodes must agree on it;
	// derive it from NMax with core.DefaultDMin).
	DMin float64
	// LongLinks is the number of long-range links to establish.
	LongLinks int
	// Seed seeds the node's private RNG (long-link targets).
	Seed int64
	// Replication is the object-store replication factor R: a stored
	// record is pushed to the R Voronoi neighbours of the owner closest
	// to the key (default store.DefaultReplication).
	Replication int
	// StoreTimeout bounds each routed store operation; the callback fires
	// with store.ErrTimeout when it passes (default 5s).
	StoreTimeout time.Duration
	// QueryTimeout bounds each routed Query and RangeQuery: when it
	// passes without an answer (the owner crashed mid-query, the answer
	// was lost), the registered callback is reaped — a Query callback
	// fires once with HopsTimedOut — instead of leaking forever
	// (default 5s).
	QueryTimeout time.Duration
	// Alpha is the speculative-routing fan-out: an idempotent read
	// (Query, store GET) is dispatched from the origin to up to Alpha
	// strictly-closer candidates at once; the first answer wins and late
	// duplicates are counted in node_probe_wasted_total. Values <= 1
	// keep the classic single-path greedy dispatch (the default).
	// Writes always route single-path regardless.
	Alpha int
	// RouteCacheSize enables the hot-region owner cache with that many
	// entries: origins remember which node answered for a target cell
	// and feed it into the next greedy scan as an extra candidate (see
	// cache.go for the coherence rules). 0 (the default) disables the
	// cache entirely — byte-identical routing with prior releases.
	RouteCacheSize int
	// WALDir, when non-empty and the node is built with NewDurable,
	// holds the write-ahead log: every acked PUT/DELETE (and every
	// replica apply) is logged there before the ack, and a restarted
	// node replays it into its store (see durable.go).
	WALDir string
	// WALSync selects the WAL fsync cadence (default wal.SyncAlways:
	// an acked write is on disk before the ack leaves the node).
	WALSync wal.SyncPolicy
	// WALSegmentBytes overrides the WAL segment rotation threshold
	// (default wal.DefaultSegmentBytes).
	WALSegmentBytes int64
	// MaxInflight bounds admitted store work: at the origin, no more
	// than this many locally-issued routed store ops may be pending; at
	// the owner, no more than this many store ops execute concurrently.
	// Work beyond the budget is shed fast with store.ErrOverloaded
	// (counted in store_shed_total) instead of queueing toward a
	// timeout. 0 (the default) disables admission control.
	MaxInflight int
	// FullSyncReplicas restores the pre-digest anti-entropy behaviour:
	// SyncReplicas pushes full records unconditionally. The default
	// (false) exchanges compact fingerprints first and streams only the
	// records the receiver is missing (see digest.go).
	FullSyncReplicas bool
	// Generation is this node's incarnation number, carried in its
	// NodeInfo. NewDurable overrides it with the persisted counter from
	// the WAL directory (bumped on every open), which is what lets a
	// crashed node rejoin at its old address without stale departure
	// gossip killing it again. Leave 0 for nodes that never restart.
	Generation uint64
	// SerialSurgery disables the optimistic view-surgery path (see
	// surgery.go): handlers then run their Delaunay recompute entirely
	// under the write lock, the pre-optimistic behaviour. The default
	// (false) precomputes off-lock and validates by pool equality before
	// installing. Exists for A/B benchmarking; the installed views and
	// the serial-simnet transcripts are identical either way.
	SerialSurgery bool
	// CacheRefreshInterval, with RouteCacheSize > 0, starts a background
	// loop that re-queries the origin's hottest cached targets each
	// interval: the answer re-populates (or corrects) the cache entry
	// before a client pays for the miss. 0 (the default) disables the
	// refresher; see refresh.go.
	CacheRefreshInterval time.Duration
	// CacheRefreshBatch bounds how many hot entries each refresh round
	// re-validates (default 4).
	CacheRefreshBatch int
	// GobWire restores the legacy encoding/gob wire codec for every
	// frame this node sends — the A/B baseline for the binary codec.
	// Inbound frames are auto-detected from their first byte either way,
	// so gob and binary nodes interoperate in one overlay (see
	// proto/wire.go). Default false: the compact zero-allocation binary
	// codec.
	GobWire bool
}

// HopsTimedOut is the hop count a Query callback receives when its
// deadline passed without an answer; the owner argument is the zero
// NodeInfo.
const HopsTimedOut = -1

// Errors returned by node operations.
var (
	ErrNotJoined     = errors.New("node: not joined")
	ErrAlreadyJoined = errors.New("node: already joined")
)

// Node is one VoroNet peer.
//
// Locking discipline (see DESIGN.md): mu is a single-writer /
// many-readers lock over the view state (vn, twoHop, cn, long links,
// back, tombs). Read-only message paths — the greedy next-hop scan, query
// and store-GET serving, range-flood fan-out, the public snapshot
// accessors — take the read lock, snapshot what they need, release it and
// only then touch the transport. View surgery (join admission, leave,
// departure repair, neighbour recomputation, BLRn rebalance) takes the
// write lock. No lock is ever held across a transport send
// (TestNoLockHeldAcrossSends). queryMu independently guards the
// query/range callback and flood-dedup tables; it never nests with mu.
type Node struct {
	mu   sync.RWMutex
	ep   transport.Endpoint
	self proto.NodeInfo
	cfg  Config
	rng  *rand.Rand

	joined bool
	vn     map[string]proto.NodeInfo   // Voronoi neighbours
	twoHop map[string][]proto.NodeInfo // their neighbour lists
	cn     map[string]proto.NodeInfo   // close neighbours

	longTargets []geom.Point
	longNbrs    []proto.NodeInfo
	back        []proto.BackEntry

	// tombs records departed addresses so that stale gossip cannot
	// resurrect them (see handle). tombOrder bounds what we re-advertise.
	// tombGen holds, lazily (gen-free overlays never touch it), the
	// incarnation number each tombstoned address died at: a NodeInfo
	// carrying a higher generation is a durably restarted successor and
	// passes every tombstone filter (see deadLocked).
	tombs     map[string]bool
	tombGen   map[string]uint64
	tombOrder []string

	// lastVN snapshots the Voronoi neighbour list at departure: a store
	// handoff bounced back after Leave is re-delegated through it rather
	// than stranded (see handleReplicaSync).
	lastVN []proto.NodeInfo

	queryMu  sync.Mutex
	queries  map[uint64]*pendingQuery
	querySeq uint64

	// Range-query state: per-origin callbacks (with their reaping timers)
	// and flood deduplication, all under queryMu so the read-only flood
	// path never needs the view write lock.
	rangeHits  map[uint64]*pendingRange
	rangeSeen  map[rangeKey]bool
	rangeOrder []rangeKey

	// Object store: the records this node holds (as owner or replica) and
	// the correlation table for its own routed PUT/GET/DELETE requests.
	kv       *store.Local
	inflight *store.Inflight

	// cache is the hot-region owner cache (nil unless
	// Config.RouteCacheSize > 0). It is a leaf lock: safe to consult
	// under n.mu and from callback paths.
	cache *routeCache

	// refreshStop ends the background cache refresher (see refresh.go);
	// nil when no refresher was configured.
	refreshStop chan struct{}
	refreshOnce sync.Once

	// Durability (see durable.go): wal is set once by NewDurable before
	// the message handler is installed and never reassigned, so the nil
	// fast path needs no lock; all operations on a live log serialise
	// on walMu. walGC holds the tombstones seen at the previous
	// compaction (two-phase GC), also under walMu.
	wal   *wal.Log
	walMu sync.Mutex
	walGC map[geom.Point]uint64

	// Admission control (see Config.MaxInflight): draining is set by
	// Shutdown so new origin ops are refused during the handoff;
	// storeBusy counts store ops executing at this node as owner.
	draining  atomic.Bool
	storeBusy atomic.Int64

	// nm caches the node's metric instruments (see metrics.go); the
	// registry is exposed via Metrics() and the legacy Sent counter via
	// SentCount().
	nm nodeMetrics
}

// pendingQuery is one registered Query callback and the deadline timer
// that reaps it if the answer never arrives (the owner crashed
// mid-query): without the timer the entry — and everything the callback
// closure captures — would leak forever. start feeds the query-latency
// histogram; target lets the winning answer populate the route cache;
// path is nil unless the query was traced.
type pendingQuery struct {
	cb     func(owner proto.NodeInfo, hops int, path []proto.TraceHop)
	start  time.Time
	target geom.Point
	timer  *time.Timer
}

// pendingRange is one registered RangeQuery callback with its reaping
// timer. The protocol is fire-and-collect with no completion signal, so
// the timer simply ends the collection window; late hits are dropped.
// deliver and reap synchronise on mu: once reap returns, no further cb
// invocation can start — callers may safely tear down whatever the
// callback writes to after the window closes.
type pendingRange struct {
	cb    func(owner proto.NodeInfo)
	timer *time.Timer

	mu     sync.Mutex
	reaped bool
}

// deliver invokes the callback unless the registration has been reaped.
func (pr *pendingRange) deliver(owner proto.NodeInfo) {
	pr.mu.Lock()
	defer pr.mu.Unlock()
	if !pr.reaped {
		pr.cb(owner)
	}
}

// reap closes the collection window: it blocks until any in-flight
// delivery completes and prevents all future ones.
func (pr *pendingRange) reap() {
	pr.mu.Lock()
	pr.reaped = true
	pr.mu.Unlock()
}

// New creates a node at pos attached to ep. The node is not part of any
// overlay until Bootstrap or Join is called.
func New(ep transport.Endpoint, pos geom.Point, cfg Config) *Node {
	n := newNode(ep, pos, cfg)
	ep.SetHandler(n.handle)
	return n
}

// newNode builds the node without installing the message handler, so
// NewDurable can replay the WAL into the store before any message can
// race with the recovery.
func newNode(ep transport.Endpoint, pos geom.Point, cfg Config) *Node {
	if cfg.LongLinks <= 0 {
		cfg.LongLinks = 1
	}
	if cfg.DMin <= 0 {
		cfg.DMin = 1e-3
	}
	if cfg.Replication <= 0 {
		cfg.Replication = store.DefaultReplication
	}
	if cfg.StoreTimeout <= 0 {
		cfg.StoreTimeout = 5 * time.Second
	}
	if cfg.QueryTimeout <= 0 {
		cfg.QueryTimeout = 5 * time.Second
	}
	n := &Node{
		ep:        ep,
		self:      proto.NodeInfo{Addr: ep.Addr(), Pos: pos, Gen: cfg.Generation},
		cfg:       cfg,
		rng:       rand.New(rand.NewSource(cfg.Seed ^ int64(len(ep.Addr())))),
		vn:        make(map[string]proto.NodeInfo),
		twoHop:    make(map[string][]proto.NodeInfo),
		cn:        make(map[string]proto.NodeInfo),
		tombs:     make(map[string]bool),
		tombGen:   make(map[string]uint64),
		queries:   make(map[uint64]*pendingQuery),
		rangeHits: make(map[uint64]*pendingRange),
		rangeSeen: make(map[rangeKey]bool),
		kv:        store.NewLocal(),
		inflight:  store.NewInflight(),
		nm:        newNodeMetrics(),
	}
	if cfg.RouteCacheSize > 0 {
		n.cache = newRouteCache(cfg.RouteCacheSize, cfg.DMin)
	}
	n.startRefresher()
	return n
}

// Info returns the node's identity.
func (n *Node) Info() proto.NodeInfo { return n.self }

// Joined reports whether the node is part of an overlay.
func (n *Node) Joined() bool {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.joined
}

// Neighbors returns a snapshot of vn.
func (n *Node) Neighbors() []proto.NodeInfo {
	n.mu.RLock()
	defer n.mu.RUnlock()
	out := make([]proto.NodeInfo, 0, len(n.vn))
	for _, v := range n.vn {
		out = append(out, v)
	}
	return out
}

// CloseNeighbors returns a snapshot of cn.
func (n *Node) CloseNeighbors() []proto.NodeInfo {
	n.mu.RLock()
	defer n.mu.RUnlock()
	out := make([]proto.NodeInfo, 0, len(n.cn))
	for _, v := range n.cn {
		out = append(out, v)
	}
	return out
}

// LongNeighbors returns a snapshot of the long-link view.
func (n *Node) LongNeighbors() []proto.NodeInfo {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return append([]proto.NodeInfo(nil), n.longNbrs...)
}

// BackEntries returns a snapshot of BLRn.
func (n *Node) BackEntries() []proto.BackEntry {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return append([]proto.BackEntry(nil), n.back...)
}

// LongTargets returns the node's fixed long-link target points.
func (n *Node) LongTargets() []geom.Point {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return append([]geom.Point(nil), n.longTargets...)
}

// Bootstrap declares this node the first object of a fresh overlay: it
// owns the whole attribute space and its long links point to itself.
func (n *Node) Bootstrap() error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.joined {
		return ErrAlreadyJoined
	}
	n.joined = true
	for j := 0; j < n.cfg.LongLinks; j++ {
		n.longTargets = append(n.longTargets, n.chooseLRT())
		n.longNbrs = append(n.longNbrs, n.self)
		n.back = append(n.back, proto.BackEntry{Origin: n.self, Link: j, Target: n.longTargets[j]})
	}
	return nil
}

// Join asks the overlay member at `via` to admit this node: the join
// request is greedy-routed to the owner of the node's position, which
// performs AddVoronoiRegion and replies with the new view. Completion is
// asynchronous; poll Joined (the in-memory bus makes it synchronous under
// Drain).
func (n *Node) Join(via string) error {
	n.mu.RLock()
	if n.joined {
		n.mu.RUnlock()
		return ErrAlreadyJoined
	}
	n.mu.RUnlock()
	return n.send(via, &proto.Envelope{
		Type:    proto.KindRoute,
		Purpose: proto.PurposeJoin,
		Target:  n.self.Pos,
		Origin:  n.self,
	})
}

// Query greedy-routes a point query (Algorithm 4) and invokes cb with the
// owning object and the hop count when the answer arrives. If no answer
// arrives within Config.QueryTimeout — the owner crashed mid-query, the
// answer was lost — cb fires exactly once with the zero NodeInfo and
// HopsTimedOut, and the registration is reaped rather than leaked.
func (n *Node) Query(p geom.Point, cb func(owner proto.NodeInfo, hops int)) error {
	return n.query(p, false, func(owner proto.NodeInfo, hops int, _ []proto.TraceHop) {
		cb(owner, hops)
	})
}

// QueryTrace is Query with per-hop tracing: the envelope travels with
// Trace set, every node on the greedy path appends one proto.TraceHop,
// and cb additionally receives the accumulated path (ending with the
// owner's terminal hop). On timeout the path is nil.
func (n *Node) QueryTrace(p geom.Point, cb func(owner proto.NodeInfo, hops int, path []proto.TraceHop)) error {
	return n.query(p, true, cb)
}

func (n *Node) query(p geom.Point, trace bool, cb func(owner proto.NodeInfo, hops int, path []proto.TraceHop)) error {
	n.mu.RLock()
	if !n.joined {
		n.mu.RUnlock()
		return ErrNotJoined
	}
	n.mu.RUnlock()
	n.queryMu.Lock()
	n.querySeq++
	id := n.querySeq
	pq := &pendingQuery{cb: cb, start: time.Now(), target: p}
	pq.timer = time.AfterFunc(n.cfg.QueryTimeout, func() {
		n.queryMu.Lock()
		reaped := n.queries[id] == pq
		if reaped {
			delete(n.queries, id)
		}
		n.queryMu.Unlock()
		if reaped {
			n.nm.queryTimeouts.Inc()
			cb(proto.NodeInfo{}, HopsTimedOut, nil)
		}
	})
	n.queries[id] = pq
	n.queryMu.Unlock()
	env := &proto.Envelope{
		Type:    proto.KindRoute,
		Purpose: proto.PurposeQuery,
		Target:  p,
		Origin:  n.self,
		QueryID: id,
		Trace:   trace,
	}
	// Start routing at ourselves (speculatively fanning out at Alpha > 1).
	n.dispatchRouted(env)
	return nil
}

// dispatchRouted starts routing env at this node. With cfg.Alpha > 1 and
// an idempotent read purpose (Query, store GET), it additionally fans
// speculative probes out to the next-best strictly-closer candidates in
// the local view: the primary copy takes the classic greedy path through
// handleRoute (whose scan will pick the single best candidate), and each
// extra probe jumps straight to one runner-up candidate and continues
// greedily from there. All probes carry the same QueryID, so the first
// answer resolves the request at the origin and late duplicates are
// dropped by the query/inflight tables (counted in
// node_probe_wasted_total). Correctness never depends on a probe: the
// primary path alone is the unmodified serial protocol.
//
// Writes (PUT/DELETE) and every other purpose stay single-path — a
// duplicated write would apply twice and split the version chain. Traced
// envelopes also stay single-path: a trace documents the greedy route,
// and racing probes would make it nondeterministic.
func (n *Node) dispatchRouted(env *proto.Envelope) {
	speculate := n.cfg.Alpha > 1 && !env.Trace &&
		(env.Purpose == proto.PurposeQuery || env.Purpose == proto.PurposeStoreGet)
	if speculate && n.cache != nil {
		// Cache-first: when the hot-region cache already names an owner
		// for this target, the primary path below will route straight to
		// it — fanning probes out on top would only burn bandwidth on the
		// very keys the cache exists to shortcut. Speculation is for the
		// cold keys the cache cannot help.
		if _, ok := n.cache.lookup(env.Target); ok {
			speculate = false
		}
	}
	if speculate {
		cands := n.alphaCandidates(env.Target, n.cfg.Alpha)
		for i := 1; i < len(cands); i++ {
			probe := *env
			// The direct jump to the runner-up is itself one hop.
			probe.Hops = 1
			probe.From = n.self
			if err := n.sendWithRetry(cands[i].Addr, &probe); err != nil {
				// A dead candidate costs the probe, never the request:
				// repair the views and move on — the primary path below
				// re-scans after the repair.
				n.NotifyDeparted(cands[i].Addr)
			}
		}
	}
	n.handle(n.self.Addr, mustEncode(env))
}

// alphaCandidates snapshots the up-to-alpha strictly-closer candidates
// for target among vn ∪ cn ∪ long links, nearest first with ties broken
// by address (the same deterministic order the greedy scan uses). The
// head of the list is what handleRoute's scan will choose, so
// speculative probes go to entries [1:].
func (n *Node) alphaCandidates(target geom.Point, alpha int) []proto.NodeInfo {
	n.mu.RLock()
	selfD := geom.Dist2(n.self.Pos, target)
	seen := make(map[string]bool, len(n.vn)+len(n.cn)+len(n.longNbrs))
	cands := make([]proto.NodeInfo, 0, alpha*2)
	consider := func(c proto.NodeInfo) {
		if c.Addr == "" || c.Addr == n.self.Addr || seen[c.Addr] || n.deadLocked(c) {
			return
		}
		if geom.Dist2(c.Pos, target) < selfD {
			seen[c.Addr] = true
			cands = append(cands, c)
		}
	}
	for _, v := range n.vn {
		consider(v)
	}
	for _, c := range n.cn {
		consider(c)
	}
	for _, l := range n.longNbrs {
		consider(l)
	}
	n.mu.RUnlock()
	sort.Slice(cands, func(i, j int) bool {
		di, dj := geom.Dist2(cands[i].Pos, target), geom.Dist2(cands[j].Pos, target)
		if di != dj {
			return di < dj
		}
		return cands[i].Addr < cands[j].Addr
	})
	if len(cands) > alpha {
		cands = cands[:alpha]
	}
	return cands
}

// Leave departs the overlay: the node recomputes the tessellation around
// its hole for its neighbours, delegates its BLRn entries to the closest
// neighbour of each target, withdraws its own links and informs its close
// neighbours (§4.2.2).
func (n *Node) Leave() error {
	start := time.Now()
	n.mu.Lock()
	if !n.joined {
		n.mu.Unlock()
		return ErrNotJoined
	}
	defer func() { n.nm.leaveTime.Observe(time.Since(start).Seconds()) }()
	n.joined = false

	type outMsg struct {
		to  string
		env *proto.Envelope
	}
	var out []outMsg
	// All iteration below runs over sorted snapshots: the resulting
	// message sequence must be deterministic for replayable chaos runs.
	vns := n.vnList()
	n.lastVN = vns
	cns := make([]proto.NodeInfo, 0, len(n.cn))
	for _, c := range n.cn {
		cns = append(cns, c)
	}
	sort.Slice(cns, func(i, j int) bool { return cns[i].Addr < cns[j].Addr })

	// Delegate BLRn entries to the Voronoi neighbour closest to each
	// target; after our region disappears that neighbour owns the target.
	for _, ref := range n.back {
		if ref.Origin.Addr == n.self.Addr {
			continue
		}
		best := proto.NodeInfo{}
		bestD := math.Inf(1)
		for _, v := range vns {
			if d := geom.Dist2(v.Pos, ref.Target); d < bestD {
				best, bestD = v, d
			}
		}
		if best.Addr == "" {
			continue
		}
		out = append(out,
			outMsg{best.Addr, &proto.Envelope{Type: proto.KindBackTransfer, From: n.self, Back: []proto.BackEntry{ref}}},
			outMsg{ref.Origin.Addr, &proto.Envelope{Type: proto.KindLongLinkUpdate, From: n.self, Granter: best, Link: ref.Link}},
		)
	}
	n.back = nil

	// Withdraw our own long links from their holders.
	for j, h := range n.longNbrs {
		if h.Addr == "" || h.Addr == n.self.Addr {
			continue
		}
		out = append(out, outMsg{h.Addr, &proto.Envelope{Type: proto.KindBackWithdraw, From: n.self, Link: j}})
	}

	// Store handoff: delegate every record (tombstones included) to the
	// Voronoi neighbour closest to its key — after our region disappears
	// that neighbour owns the key — marked Handoff so the recipient
	// restores the replication factor.
	if recs := n.kv.Snapshot(); len(recs) > 0 && len(vns) > 0 {
		order, batches := batchRecords(recs, func(rec proto.StoreRecord) string {
			best := ""
			bestD := math.Inf(1)
			for _, v := range vns {
				// vns is sorted by address, so the strict < keeps the
				// lowest-address neighbour on ties — the same rule as
				// ownerForKey.
				if d := geom.Dist2(v.Pos, rec.Key); d < bestD {
					best, bestD = v.Addr, d
				}
			}
			return best
		})
		for _, addr := range order {
			for _, chunk := range chunkRecords(batches[addr]) {
				out = append(out, outMsg{addr, &proto.Envelope{
					Type: proto.KindReplicaSync, From: n.self, Records: chunk, Handoff: true,
				}})
			}
		}
	}
	// Clear in place: handlers read n.kv without n.mu, so the pointer
	// itself must never change.
	n.kv.Clear()

	// Tell the neighbourhood to close the hole and close neighbours to
	// forget us.
	for _, v := range vns {
		out = append(out, outMsg{v.Addr, &proto.Envelope{Type: proto.KindLeave, From: n.self}})
	}
	for _, c := range cns {
		out = append(out, outMsg{c.Addr, &proto.Envelope{Type: proto.KindLeaveCN, From: n.self}})
	}
	n.vn = map[string]proto.NodeInfo{}
	n.twoHop = map[string][]proto.NodeInfo{}
	n.cn = map[string]proto.NodeInfo{}
	n.longNbrs = nil
	n.longTargets = nil
	if n.cache != nil {
		n.cache.clear()
	}
	n.mu.Unlock()

	for _, m := range out {
		// Unreachable peers have already departed and need no notice;
		// other transport failures are also non-fatal for a leave (the
		// neighbourhood converges through its own gossip).
		_ = n.send(m.to, m.env)
	}
	// Every record was handed off above, so the WAL holds nothing worth
	// recovering: a rejoin at this address must start clean, exactly as
	// the in-memory store does (n.kv.Clear).
	n.walReset()
	n.stopRefresher()
	return nil
}

// chooseLRT draws a long-link target (Algorithm 3) around the node.
func (n *Node) chooseLRT() geom.Point {
	rmin, rmax := n.cfg.DMin, math.Sqrt2
	u := n.rng.Float64()
	r := math.Exp(math.Log(rmin) + u*(math.Log(rmax)-math.Log(rmin)))
	theta := n.rng.Float64() * 2 * math.Pi
	return geom.Pt(n.self.Pos.X+r*math.Cos(theta), n.self.Pos.Y+r*math.Sin(theta))
}

func (n *Node) send(to string, env *proto.Envelope) error {
	if env.From.Addr == "" {
		env.From = n.self
	}
	// Encode into a pooled buffer: neither transport retains the payload
	// after Send returns (see transport.Endpoint), and local delivery
	// decodes synchronously with copying semantics, so the buffer can go
	// straight back to the pool on every path out of this function.
	wb := proto.GetBuf()
	defer wb.Put()
	b, err := proto.AppendEncodeMode(wb.B[:0], env, n.cfg.GobWire)
	if err != nil {
		return err
	}
	wb.B = b
	n.nm.sent.Inc()
	n.nm.sentByKind[env.Type].Inc()
	n.nm.wireSentByKind[env.Type].Add(uint64(len(b)))
	switch env.Type {
	case proto.KindReplicaSync, proto.KindSyncDigest, proto.KindSyncPull:
		// All replica-maintenance traffic, digest-mode and full-record
		// alike, so the anti-entropy savings show up in one series.
		n.nm.antiEntropyBytes.Add(uint64(len(b)))
	}
	if to == n.self.Addr {
		// Local delivery without the transport.
		n.nm.sendSelf.Inc()
		n.handle(n.self.Addr, b)
		return nil
	}
	if err := n.ep.Send(to, b); err != nil {
		n.nm.sendErrs.Inc()
		return err
	}
	return nil
}

// sendWithRetry sends env to `to`, retrying exactly once on a transient
// transport failure — a cached TCP connection the remote closed while
// idle fails its first write, and the retry re-dials. Structural failures
// (transport.ErrUnknownPeer, transport.ErrClosed) mean resending the same
// frame can never succeed, so they return immediately; the retry policy
// lives here, shared by the greedy forwarding step and the store reply
// paths, instead of being re-implemented per call site.
func (n *Node) sendWithRetry(to string, env *proto.Envelope) error {
	err := n.send(to, env)
	if err == nil || errors.Is(err, transport.ErrUnknownPeer) || errors.Is(err, transport.ErrClosed) {
		return err
	}
	n.nm.retries.Inc()
	return n.send(to, env)
}

func mustEncode(env *proto.Envelope) []byte {
	b, err := proto.Encode(env)
	if err != nil {
		panic(err)
	}
	return b
}

func (n *Node) String() string {
	return fmt.Sprintf("node(%s @ %.4f,%.4f)", n.self.Addr, n.self.Pos.X, n.self.Pos.Y)
}

// miniNeighbors rebuilds this node's Voronoi neighbour list from a
// candidate pool via a local Delaunay computation. pool must contain the
// node itself. Candidates are inserted in address order so the resulting
// neighbour list — which rides on the wire in grants and gossip — is
// independent of map iteration order.
func miniNeighbors(self proto.NodeInfo, pool map[string]proto.NodeInfo) []proto.NodeInfo {
	tr := delaunay.New()
	byVert := make(map[delaunay.VertexID]proto.NodeInfo, len(pool))
	var selfV delaunay.VertexID = delaunay.NoVertex
	// Insert self first so duplicates resolve in our favour deterministically.
	sv, err := tr.Insert(self.Pos, delaunay.NoVertex)
	if err == nil {
		selfV = sv
		byVert[sv] = self
	}
	addrs := make([]string, 0, len(pool))
	for a := range pool {
		if a != self.Addr {
			addrs = append(addrs, a)
		}
	}
	sort.Strings(addrs)
	for _, a := range addrs {
		inf := pool[a]
		v, err := tr.Insert(inf.Pos, delaunay.NoVertex)
		if err != nil {
			continue // duplicate position: ignore the shadowed candidate
		}
		byVert[v] = inf
	}
	if selfV == delaunay.NoVertex {
		return nil
	}
	var out []proto.NodeInfo
	for _, v := range tr.Neighbors(selfV, nil) {
		out = append(out, byVert[v])
	}
	return out
}
