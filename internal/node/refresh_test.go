package node

import (
	"testing"
	"time"

	"voronet/internal/geom"
	"voronet/internal/proto"
)

// TestCacheRefreshLoop drives a query through a refresher-enabled cluster
// to seed the origin's cache, then waits for the background loop to
// re-validate the hot entry: node_cache_refresh_total must advance and
// the entry must still name the region's true owner afterwards.
func TestCacheRefreshLoop(t *testing.T) {
	c := newClusterCfg(t, 16, 0.02, 31, func(cfg *Config) {
		cfg.RouteCacheSize = 32
		cfg.CacheRefreshInterval = 5 * time.Millisecond
		cfg.CacheRefreshBatch = 2
	})
	origin := c.nodes[1]
	key := geom.Pt(0.77, 0.31)

	var owner string
	if err := origin.Query(key, func(o proto.NodeInfo, _ int) { owner = o.Addr }); err != nil {
		t.Fatal(err)
	}
	c.bus.Drain()
	if owner == "" {
		t.Fatal("seed query unanswered")
	}
	if origin.cache.size() == 0 {
		t.Fatal("seed query did not populate the cache")
	}

	// The refresher ticks on wall time; the bus delivers only on Drain.
	// Pump until the counter moves (bounded, so a broken loop fails fast).
	deadline := time.Now().Add(5 * time.Second)
	for origin.nm.cacheRefresh.Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("refresher never re-validated a cache entry")
		}
		time.Sleep(10 * time.Millisecond)
		c.bus.Drain()
	}

	if cached, ok := origin.cache.lookup(key); !ok || cached.Addr != owner {
		t.Fatalf("after refresh: cached owner %q (present %v), want %q", cached.Addr, ok, owner)
	}

	// Leave stops the loop; the counter must go quiet.
	if err := origin.Leave(); err != nil {
		t.Fatal(err)
	}
	c.bus.Drain()
	quiesced := origin.nm.cacheRefresh.Value()
	time.Sleep(30 * time.Millisecond)
	c.bus.Drain()
	if v := origin.nm.cacheRefresh.Value(); v != quiesced {
		t.Fatalf("refresher still running after Leave: %d -> %d", quiesced, v)
	}
}
