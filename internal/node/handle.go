package node

import (
	"math"
	"sort"
	"time"

	"voronet/internal/geom"
	"voronet/internal/proto"
	"voronet/internal/store"
)

// handle dispatches one inbound protocol message. Handlers may run
// concurrently (the TCP transport delivers independent peers' messages in
// parallel; per-peer order is preserved): every access to shared state
// goes through n.mu — read paths under the read lock, view surgery under
// the write lock — or through queryMu / the internally-locked store
// tables.
func (n *Node) handle(from string, payload []byte) {
	env, err := proto.Decode(payload)
	if err != nil {
		n.nm.decodeErrs.Inc()
		return // malformed frame: drop
	}
	if env.Type >= 0 && env.Type < proto.KindCount {
		n.nm.wireRecvByKind[env.Type].Add(uint64(len(payload)))
	}
	n.deliver(env)
}

// deliver processes one decoded envelope (split from handle so tests can
// inject envelopes that the wire decoder would reject, proving the
// defence-in-depth guards below hold on their own).
func (n *Node) deliver(env *proto.Envelope) {
	if env.Type >= 0 && env.Type < proto.KindCount {
		n.nm.recvByKind[env.Type].Inc()
	}
	// Tombstone bookkeeping needs the write lock, but the overwhelmingly
	// common case — no departures advertised, sender not tombstoned — can
	// establish under the read lock that there is nothing to do.
	needTombWork := len(env.Departed) > 0
	if !needTombWork {
		n.mu.RLock()
		needTombWork = n.tombs[env.From.Addr]
		n.mu.RUnlock()
	}
	if needTombWork {
		n.mu.Lock()
		// Merge the sender's tombstones: gossip must not resurrect the
		// dead. Each entry kills one incarnation (Departed[i] at
		// DepartedGen[i], generation 0 when absent) — if we can see a
		// newer incarnation of the address alive in our views, the news
		// predates its durable restart and is ignored.
		selfDeparted := false
		for i, d := range env.Departed {
			if d == env.From.Addr {
				selfDeparted = true
			}
			if d == n.self.Addr {
				continue
			}
			var g uint64
			if i < len(env.DepartedGen) {
				g = env.DepartedGen[i]
			}
			if v, ok := n.vn[d]; ok && v.Gen > g {
				continue
			}
			if v, ok := n.cn[d]; ok && v.Gen > g {
				continue
			}
			n.tombstoneLocked(d, g)
		}
		// A message from a tombstoned address proves it is alive again
		// (rejoined at the same address): lift the tombstone — unless the
		// sender lists itself as departed (a farewell message from a node
		// on its way out), or the message is a straggler from the dead
		// incarnation itself (sender generation below the one that died).
		lifted := false
		if !selfDeparted && env.Type != proto.KindLeave && env.Type != proto.KindLeaveCN &&
			n.tombs[env.From.Addr] && env.From.Gen >= n.tombGen[env.From.Addr] {
			n.liftTombLocked(env.From.Addr)
			lifted = true
		}
		n.purgeTombstonedLocked()
		n.mu.Unlock()
		if lifted {
			// Lifting alone is not enough: while the address was
			// tombstoned, every piece of gossip naming it (SetNeighbors,
			// CNAdd candidates, view recomputes) was dropped, so nothing
			// downstream will ever put the rejoined node back into our
			// view. Its first direct message carries its identity —
			// integrate it as a newcomer and recompute now.
			n.integrateNewcomer(env.From)
		}
	}

	switch env.Type {
	case proto.KindRoute:
		n.handleRoute(env)
	case proto.KindJoinGrant:
		n.handleJoinGrant(env)
	case proto.KindSetNeighbors:
		n.handleSetNeighbors(env)
	case proto.KindNeighborList:
		n.handleNeighborList(env)
	case proto.KindCNAdd:
		n.handleCNAdd(env)
	case proto.KindCNRemove:
		n.mu.Lock()
		delete(n.cn, env.From.Addr)
		n.mu.Unlock()
	case proto.KindLeaveCN:
		n.mu.Lock()
		delete(n.cn, env.From.Addr)
		n.tombstoneLocked(env.From.Addr, env.From.Gen)
		n.purgeTombstonedLocked()
		n.mu.Unlock()
	case proto.KindLongLinkGrant:
		n.mu.Lock()
		// The lower bound is defence in depth: proto.Decode rejects
		// negative Link fields, but a slice index from the wire must
		// never be trusted on one layer alone (a Link of -1 panicked the
		// node before the guard).
		if env.Link >= 0 && env.Link < len(n.longNbrs) {
			n.longNbrs[env.Link] = env.From
		}
		n.mu.Unlock()
	case proto.KindLongLinkUpdate:
		n.mu.Lock()
		if env.Link >= 0 && env.Link < len(n.longNbrs) {
			n.longNbrs[env.Link] = env.Granter
		}
		n.mu.Unlock()
	case proto.KindBackTransfer:
		n.mu.Lock()
		if !n.joined {
			// We have left but a reordered transfer still reached us.
			// If the sender has also departed (its farewell marker lists
			// itself), bouncing would ping-pong between two dead nodes
			// forever: drop the entries — the origins' long links repair
			// through the routed re-grant path when they next touch a
			// dead holder. Otherwise bounce so a live node re-places
			// them; our farewell marker (Departed contains us) tombstones
			// us at the recipient, whose rebalance then cannot choose us.
			self := n.self
			n.mu.Unlock()
			fromDeparted := false
			for _, d := range env.Departed {
				if d == env.From.Addr {
					fromDeparted = true
					break
				}
			}
			if !fromDeparted {
				var fg []uint64
				if self.Gen > 0 {
					fg = []uint64{self.Gen}
				}
				_ = n.send(env.From.Addr, &proto.Envelope{
					Type: proto.KindBackTransfer, From: self, Back: env.Back,
					Departed: []string{self.Addr}, DepartedGen: fg,
				})
			}
			return
		}
		n.back = append(n.back, env.Back...)
		// The sender believed we are closer to the targets than it is; a
		// neighbour of ours may be closer still. Re-placing forwards the
		// entry along strictly decreasing distance, so the chain
		// terminates at the true owner. The sender is excluded: a leaving
		// node delegates its entries while it still sits in our view, and
		// bouncing one back would strand it on the departed node.
		moves := n.backRebalanceLocked(env.From.Addr)
		n.mu.Unlock()
		n.sendBackMoves(moves)
	case proto.KindBackWithdraw:
		n.mu.Lock()
		for i, ref := range n.back {
			if ref.Origin.Addr == env.From.Addr && ref.Link == env.Link {
				n.back[i] = n.back[len(n.back)-1]
				n.back = n.back[:len(n.back)-1]
				break
			}
		}
		n.mu.Unlock()
	case proto.KindLeave:
		n.handleLeave(env)
	case proto.KindRangeForward:
		n.handleRangeForward(env)
	case proto.KindRangeHit:
		n.queryMu.Lock()
		pr := n.rangeHits[env.QueryID]
		n.queryMu.Unlock()
		if pr != nil {
			pr.deliver(env.From)
		}
	case proto.KindQueryAnswer:
		n.queryMu.Lock()
		pq := n.queries[env.QueryID]
		delete(n.queries, env.QueryID)
		n.queryMu.Unlock()
		if pq == nil {
			// A losing speculative probe's answer (or one past its
			// deadline): the request is already resolved, the work was
			// wasted.
			n.nm.probeWasted.Inc()
			return
		}
		pq.timer.Stop()
		n.nm.queryLatency.Observe(time.Since(pq.start).Seconds())
		n.nm.queryHops.Observe(float64(env.Hops))
		n.nm.firstByteHops.Observe(float64(env.Hops))
		if n.cache != nil && env.From.Addr != n.self.Addr {
			n.cache.insert(pq.target, env.From)
		}
		pq.cb(env.From, env.Hops, env.Path)
	case proto.KindStoreReply:
		r := store.Reply{
			Found: env.Found, Value: env.Value, Version: env.Version,
			Owner: env.From, Hops: env.Hops, Path: env.Path,
		}
		if env.Shed {
			// The owner refused the op under overload: surface the
			// explicit fast error, not a silent not-found.
			r.Err = store.ErrOverloaded
		}
		if !n.inflight.Resolve(env.QueryID, r) {
			n.nm.probeWasted.Inc()
		}
	case proto.KindReplicaSync:
		n.handleReplicaSync(env)
	case proto.KindSyncDigest:
		n.handleSyncDigest(env)
	case proto.KindSyncPull:
		n.handleSyncPull(env)
	}
}

// handleRoute performs one greedy step of Algorithm 5's framework, or
// handles the routed purpose locally when this node owns the target
// region (no neighbour is closer). The whole forwarding path is read-only
// over the view — concurrent routed messages scan under the shared read
// lock and never wait on each other.
func (n *Node) handleRoute(env *proto.Envelope) {
	var hopStart time.Time
	if env.Trace {
		hopStart = time.Now()
		n.nm.traced.Inc()
	}
	// A GET is answered by the first node on the greedy path holding the
	// key — owner or replica; a tombstone answers "deleted" with equal
	// authority. The rank check keeps nodes that dropped out of the key's
	// replica set under churn from serving stale versions.
	if env.Purpose == proto.PurposeStoreGet && n.Joined() {
		if rec, ok := n.kv.Lookup(env.Target); ok && n.inReplicaSet(env.Target) {
			if env.Trace {
				hit := *env
				hit.Path = proto.AppendHop(env.Path, n.traceHop("replica", hopStart))
				n.replyStoreHit(&hit, rec)
				return
			}
			n.replyStoreHit(env, rec)
			return
		}
	}
	n.mu.RLock()
	if !n.joined {
		// Not joined, or a concurrent Leave completed while the replica
		// probe ran without the lock.
		n.mu.RUnlock()
		return
	}
	best := n.self
	bestD := geom.Dist2(n.self.Pos, env.Target)
	// bestRule names the candidate class the winning next hop came from —
	// the per-hop trace's routing rule ("owner" when no candidate beats
	// self).
	bestRule := "owner"
	// A join must be admitted by the current owner of the joiner's
	// region — never routed to the joiner itself, which is not in the
	// overlay yet and would drop it. The joiner can appear in views
	// mid-join when it is a durable restart: the tombstone lift above
	// integrated it the moment its join request arrived, and its target
	// (its own position) is at distance zero from itself.
	skip := ""
	if env.Purpose == proto.PurposeJoin {
		skip = env.Origin.Addr
	}
	consider := func(c proto.NodeInfo, class string) {
		if c.Addr == "" || c.Addr == n.self.Addr || c.Addr == skip || n.deadLocked(c) {
			return
		}
		d := geom.Dist2(c.Pos, env.Target)
		// Strictly closer wins; among equally close candidates the lowest
		// address wins (ties with self keep self: the owner stays put).
		// The tie-break makes the choice independent of map iteration
		// order, a requirement for replayable chaos transcripts.
		if d < bestD || (d == bestD && best.Addr != n.self.Addr && c.Addr < best.Addr) {
			best, bestD = c, d
			bestRule = class
		}
	}
	// The route cache is consulted before the view scan, at the origin
	// only (env.Hops == 0): origins are where answers populate it, so
	// intermediate hops would only ever miss. The cached owner is just
	// one more candidate under the strictly-closer rule — a stale entry
	// loses the scan or fails the send (repairing the views), it cannot
	// misroute or serve a stale owner.
	if n.cache != nil && env.Hops == 0 {
		if owner, ok := n.cache.lookup(env.Target); ok {
			n.nm.cacheHits.Inc()
			consider(owner, "cache")
		} else {
			n.nm.cacheMisses.Inc()
		}
	}
	for _, v := range n.vn {
		consider(v, "vn")
	}
	for _, c := range n.cn {
		consider(c, "cn")
	}
	for _, l := range n.longNbrs {
		consider(l, "long")
	}
	n.mu.RUnlock()

	if best.Addr != n.self.Addr {
		fwd := *env
		fwd.Hops++
		fwd.From = n.self
		if fwd.Trace {
			// Copy-append: fwd shares env's Path backing array, and the
			// departure-repair retry below re-traces from env.
			fwd.Path = proto.AppendHop(env.Path, n.traceHop(bestRule, hopStart))
		}
		if err := n.sendWithRetry(best.Addr, &fwd); err != nil {
			// The chosen next hop is unreachable at the transport level —
			// it crashed without a leave announcement. Repair the views
			// around it and retry the step with what remains; each retry
			// tombstones one address, so the recursion terminates.
			n.NotifyDeparted(best.Addr)
			n.handleRoute(env)
		}
		return
	}

	// We own the target's region; a traced envelope records the terminal
	// hop and the answer carries the whole path back to the origin.
	if env.Trace {
		owned := *env
		owned.Path = proto.AppendHop(env.Path, n.traceHop("owner", hopStart))
		env = &owned
	}
	switch env.Purpose {
	case proto.PurposeJoin:
		n.admitJoin(env)
	case proto.PurposeLongLink:
		n.mu.Lock()
		n.back = append(n.back, proto.BackEntry{Origin: env.Origin, Link: env.Link, Target: env.Target})
		n.mu.Unlock()
		n.send(env.Origin.Addr, &proto.Envelope{
			Type: proto.KindLongLinkGrant, From: n.self, Link: env.Link, Hops: env.Hops,
		})
	case proto.PurposeQuery:
		n.replyToOrigin(env.Origin.Addr, &proto.Envelope{
			Type: proto.KindQueryAnswer, From: n.self, QueryID: env.QueryID,
			Hops: env.Hops, Path: env.Path,
		})
	case proto.PurposeRange:
		n.startRangeFlood(env)
	case proto.PurposeStorePut, proto.PurposeStoreGet, proto.PurposeStoreDelete:
		n.handleStoreOwned(env)
	}
}

// traceHop builds this node's entry for a traced envelope's path. The
// latency is the wall time the hop spent in handleRoute; under the
// serial simnet the (Addr, Rule) sequence is deterministic, Nanos is not.
func (n *Node) traceHop(rule string, start time.Time) proto.TraceHop {
	return proto.TraceHop{Addr: n.self.Addr, Rule: rule, Nanos: time.Since(start).Nanoseconds()}
}

// admitJoin is AddVoronoiRegion (§4.2.1) executed at the owner of the
// joining object's region: recompute the local tessellation with the new
// object, grant the joiner its view, and tell every affected neighbour to
// insert the newcomer and recompute.
func (n *Node) admitJoin(env *proto.Envelope) {
	start := time.Now()
	defer func() { n.nm.joinAdmitTime.Observe(time.Since(start).Seconds()) }()
	j := env.Origin

	// Optimistic phase (see surgery.go): the joiner's neighbour list is a
	// pure function of the candidate pool, so compute it off-lock and only
	// redo it under the lock if the pool moved in between.
	var newVN []proto.NodeInfo
	var specPool map[string]proto.NodeInfo
	if !n.cfg.SerialSurgery {
		n.mu.RLock()
		specPool = n.candidatePool()
		specPool[j.Addr] = j
		n.mu.RUnlock()
		newVN = miniNeighbors(j, specPool)
	}

	n.mu.Lock()
	// Candidate pool: us, our neighbours, their neighbours.
	pool := n.candidatePool()
	pool[j.Addr] = j
	if specPool == nil || !poolsEqual(pool, specPool) {
		newVN = miniNeighbors(j, pool)
	}

	// Bootstrap two-hop knowledge for the joiner from what we know.
	var records []proto.NeighborRecord
	for _, y := range newVN {
		switch {
		case y.Addr == n.self.Addr:
			records = append(records, proto.NeighborRecord{Node: n.self, VN: n.vnList()})
		default:
			if lst, ok := n.twoHop[y.Addr]; ok {
				records = append(records, proto.NeighborRecord{Node: y, VN: lst})
			}
		}
	}
	n.mu.Unlock()

	// Grant the joiner its region and view.
	n.send(j.Addr, &proto.Envelope{
		Type:      proto.KindJoinGrant,
		From:      n.self,
		Neighbors: newVN,
		TwoHop:    records,
		Hops:      env.Hops,
	})
	// Tell each affected node (including ourselves) to take the newcomer
	// into account and recompute its own neighbourhood.
	for _, y := range newVN {
		if y.Addr == n.self.Addr {
			continue
		}
		n.send(y.Addr, &proto.Envelope{Type: proto.KindSetNeighbors, From: n.self, Origin: j})
	}
	n.integrateNewcomer(j)
}

// handleJoinGrant installs the view granted by the region owner and
// finishes the join: announce our neighbour list, then establish the long
// links (Algorithm 2).
func (n *Node) handleJoinGrant(env *proto.Envelope) {
	start := time.Now()
	n.mu.Lock()
	if n.joined {
		n.mu.Unlock()
		return
	}
	defer func() { n.nm.joinGrantTime.Observe(time.Since(start).Seconds()) }()
	n.joined = true
	for _, v := range env.Neighbors {
		n.vn[v.Addr] = v
	}
	for _, rec := range env.TwoHop {
		n.twoHop[rec.Node.Addr] = rec.VN
	}
	targets := make([]geom.Point, 0, n.cfg.LongLinks)
	for jdx := 0; jdx < n.cfg.LongLinks; jdx++ {
		targets = append(targets, n.chooseLRT())
	}
	n.longTargets = targets
	n.longNbrs = make([]proto.NodeInfo, len(targets))
	vns := n.vnList()
	dep, depGen := n.departedLocked()
	n.mu.Unlock()

	// Freshness: our neighbours need our list in their two-hop tables.
	for _, v := range vns {
		n.send(v.Addr, &proto.Envelope{Type: proto.KindNeighborList, From: n.self, Neighbors: vns, Departed: dep, DepartedGen: depGen})
	}
	// Long links: route each search starting at ourselves.
	for jdx, tgt := range targets {
		env := &proto.Envelope{
			Type:    proto.KindRoute,
			Purpose: proto.PurposeLongLink,
			Target:  tgt,
			Origin:  n.self,
			Link:    jdx,
		}
		n.handle(n.self.Addr, mustEncode(env))
	}
}

// handleSetNeighbors: a newcomer (env.Origin) entered our region's
// neighbourhood; integrate it and recompute.
func (n *Node) handleSetNeighbors(env *proto.Envelope) {
	n.integrateNewcomer(env.Origin)
}

// integrateNewcomer recomputes vn with the newcomer in the candidate pool,
// refreshes neighbours, and performs the close-neighbour and BLRn
// exchanges of AddVoronoiRegion.
func (n *Node) integrateNewcomer(j proto.NodeInfo) {
	// Optimistic phase (see surgery.go): snapshot the pool under the read
	// lock, run the Delaunay recompute with no lock held.
	var specPool map[string]proto.NodeInfo
	var specVN []proto.NodeInfo
	if !n.cfg.SerialSurgery {
		n.mu.RLock()
		if !n.joined || j.Addr == n.self.Addr ||
			(n.tombs[j.Addr] && j.Gen <= n.tombGen[j.Addr]) {
			n.mu.RUnlock()
			return
		}
		specPool = n.candidatePool()
		specPool[j.Addr] = j
		n.mu.RUnlock()
		specVN = miniNeighbors(n.self, specPool)
	}
	n.mu.Lock()
	if !n.joined || j.Addr == n.self.Addr {
		n.mu.Unlock()
		return
	}
	if n.tombs[j.Addr] {
		if j.Gen <= n.tombGen[j.Addr] {
			// Stale gossip about a dead incarnation: integrating it would
			// resurrect a crashed node until the next purge killed it
			// again. Only a strictly newer generation — a durably
			// restarted successor — overrides a tombstone here.
			n.mu.Unlock()
			return
		}
		n.liftTombLocked(j.Addr)
	}
	pool := n.candidatePool()
	pool[j.Addr] = j
	changed := n.recomputeFromLocked(pool, specPool, specVN)
	// Cache coherence on AddVoronoiRegion: regions the newcomer is now
	// strictly closer to changed hands, so their cached owners are stale.
	if n.cache != nil {
		if dropped := n.cache.invalidateTakenOver(j.Pos); dropped > 0 {
			n.nm.cacheInvalidations.Add(uint64(dropped))
		}
	}

	// Lemma 1 exchange: send the newcomer every close-neighbour candidate
	// we can see (ourselves and our cn entries within dmin of it).
	var cand []proto.NodeInfo
	if geom.Dist(n.self.Pos, j.Pos) <= n.cfg.DMin {
		cand = append(cand, n.self)
	}
	for _, c := range n.cn {
		if geom.Dist(c.Pos, j.Pos) <= n.cfg.DMin {
			cand = append(cand, c)
		}
	}
	sort.Slice(cand, func(i, k int) bool { return cand[i].Addr < cand[k].Addr })
	// BLRn handover: entries some neighbour (usually the newcomer) is now
	// strictly closer to move to their new owner. The newcomer case of
	// §4.2.1 is subsumed: if j took over a target's region it is either a
	// neighbour of ours or reachable through one, and the transfer chain
	// strictly approaches the target.
	moves := n.backRebalanceLocked("")
	var vns []proto.NodeInfo
	if changed {
		vns = n.vnList()
	}
	dep, depGen := n.departedLocked()
	n.mu.Unlock()

	for _, v := range vns {
		n.send(v.Addr, &proto.Envelope{Type: proto.KindNeighborList, From: n.self, Neighbors: vns, Departed: dep, DepartedGen: depGen})
	}
	if len(cand) > 0 {
		n.send(j.Addr, &proto.Envelope{Type: proto.KindCNAdd, From: n.self, CloseCand: cand})
	}
	n.sendBackMoves(moves)
	// Store handoff: the records whose key now lies in the newcomer's
	// region migrate to it (the storage face of AddVoronoiRegion). We keep
	// our copy as a replica; the newcomer re-replicates.
	if moved := n.storeHandoffToNewcomer(j); len(moved) > 0 {
		for _, chunk := range chunkRecords(moved) {
			n.send(j.Addr, &proto.Envelope{
				Type: proto.KindReplicaSync, From: n.self, Records: chunk, Handoff: true,
			})
		}
	}
}

// handleNeighborList refreshes the sender's entry in the two-hop table and
// recomputes our own neighbourhood from the enriched pool. This is the
// gossip step that makes views converge when a tessellation change reaches
// past the responsible node's two-hop horizon: each refresh can surface a
// true neighbour we had not seen (Delaunay edges present globally are
// present in any candidate subset, so the local recompute can only gain
// correct edges as the pool grows). A change in our own list is broadcast
// in turn; broadcasts stop as soon as views are exact, so the exchange
// terminates.
func (n *Node) handleNeighborList(env *proto.Envelope) {
	mentionsUs := false
	for _, v := range env.Neighbors {
		if v.Addr == n.self.Addr {
			mentionsUs = true
			break
		}
	}
	// Optimistic phase (see surgery.go): build the pool as it will look
	// after the sender's list is stored — candidatePoolOverride substitutes
	// the fresh list without mutating the table — and recompute off-lock.
	var specPool map[string]proto.NodeInfo
	var specVN []proto.NodeInfo
	if !n.cfg.SerialSurgery {
		n.mu.RLock()
		if !n.joined {
			n.mu.RUnlock()
			return
		}
		if _, isNbr := n.vn[env.From.Addr]; !isNbr && !mentionsUs {
			n.mu.RUnlock()
			return
		}
		specPool = n.candidatePoolOverride(env.From.Addr, env.Neighbors)
		specPool[env.From.Addr] = env.From
		n.mu.RUnlock()
		specVN = miniNeighbors(n.self, specPool)
	}
	n.mu.Lock()
	if !n.joined {
		n.mu.Unlock()
		return
	}
	_, isNbr := n.vn[env.From.Addr]
	if !isNbr && !mentionsUs {
		n.mu.Unlock()
		return
	}
	n.twoHop[env.From.Addr] = env.Neighbors
	pool := n.candidatePool()
	pool[env.From.Addr] = env.From
	changed := n.recomputeFromLocked(pool, specPool, specVN)
	_, nowNbr := n.vn[env.From.Addr]
	var vns []proto.NodeInfo
	var moves []backMove
	if changed {
		vns = n.vnList()
		// A sharpened view can reveal a neighbour closer to one of our
		// BLRn targets: re-place those entries at the new owner.
		moves = n.backRebalanceLocked("")
	}
	// Asymmetry repair: the sender believes we are its neighbour but our
	// richer pool disagrees (its view holds a false edge). Send it our
	// list: it carries the witness that invalidates the edge, so the
	// sender's next recompute drops us and views converge.
	var rebut []proto.NodeInfo
	if mentionsUs && !nowNbr {
		rebut = n.vnList()
	}
	dep, depGen := n.departedLocked()
	n.mu.Unlock()
	for _, v := range vns {
		n.send(v.Addr, &proto.Envelope{Type: proto.KindNeighborList, From: n.self, Neighbors: vns, Departed: dep, DepartedGen: depGen})
	}
	if rebut != nil {
		n.send(env.From.Addr, &proto.Envelope{Type: proto.KindNeighborList, From: n.self, Neighbors: rebut, Departed: dep, DepartedGen: depGen})
	}
	n.sendBackMoves(moves)
}

// handleCNAdd installs close-neighbour candidates, replying so the
// relation stays symmetric. Replies are sent only for newly added
// entries, which makes the exchange converge.
func (n *Node) handleCNAdd(env *proto.Envelope) {
	n.mu.Lock()
	var replyTo []proto.NodeInfo
	for _, c := range env.CloseCand {
		if c.Addr == n.self.Addr {
			continue
		}
		// A candidate list computed before its sender learned of a crash
		// can still carry the dead address; since the preamble no longer
		// purges on every message (only when tombstone work arrives),
		// nothing downstream would evict it.
		if n.deadLocked(c) {
			continue
		}
		if geom.Dist(c.Pos, n.self.Pos) > n.cfg.DMin {
			continue
		}
		if _, known := n.cn[c.Addr]; known {
			continue
		}
		n.cn[c.Addr] = c
		replyTo = append(replyTo, c)
	}
	self := n.self
	n.mu.Unlock()
	for _, c := range replyTo {
		n.send(c.Addr, &proto.Envelope{Type: proto.KindCNAdd, From: self, CloseCand: []proto.NodeInfo{self}})
	}
}

// backMove is one BLRn entry due at a holder closer to its target.
type backMove struct {
	to  proto.NodeInfo
	ref proto.BackEntry
}

// backRebalanceLocked removes from BLRn every entry some current Voronoi
// neighbour is strictly closer to than this node and returns the moves.
// The paper keeps each back entry at the owner of its target; under
// concurrent joins and churn, ownership knowledge sharpens as views
// converge, so every view change re-places the entries. Each move
// strictly decreases the holder's distance to the target (ties never
// move), so transfer chains terminate at the true owner once views are
// exact — the greedy property guarantees the owner's neighbourhood always
// contains a closer next holder while the entry is misplaced. exclude
// (may be empty) names a peer never to move to. Caller holds n.mu.
func (n *Node) backRebalanceLocked(exclude string) []backMove {
	if len(n.back) == 0 || len(n.vn) == 0 {
		return nil
	}
	vns := n.vnList()
	var moves []backMove
	kept := n.back[:0]
	for _, ref := range n.back {
		best := proto.NodeInfo{}
		bestD := geom.Dist2(n.self.Pos, ref.Target)
		for _, v := range vns {
			if v.Addr == exclude {
				continue
			}
			if d := geom.Dist2(v.Pos, ref.Target); d < bestD {
				best, bestD = v, d
			}
		}
		if best.Addr == "" {
			kept = append(kept, ref)
		} else {
			moves = append(moves, backMove{to: best, ref: ref})
		}
	}
	n.back = kept
	return moves
}

// sendBackMoves executes the transfers computed by backRebalanceLocked:
// each entry travels to its new holder and the link's origin is told who
// holds it now. A transport-unreachable holder (a crash the views have
// not caught up with) triggers the departure repair and the entry is
// re-placed rather than lost; each failure tombstones one address, so
// the loop terminates. Caller must not hold n.mu.
func (n *Node) sendBackMoves(moves []backMove) {
	for len(moves) > 0 {
		var retry []proto.BackEntry
		for _, mv := range moves {
			if err := n.send(mv.to.Addr, &proto.Envelope{
				Type: proto.KindBackTransfer, From: n.self, Back: []proto.BackEntry{mv.ref},
			}); err != nil {
				n.NotifyDeparted(mv.to.Addr)
				retry = append(retry, mv.ref)
				continue
			}
			n.nm.backMoves.Inc()
			// An unreachable origin keeps a stale pointer; it repairs
			// itself when it next routes through the dead holder.
			_ = n.send(mv.ref.Origin.Addr, &proto.Envelope{
				Type: proto.KindLongLinkUpdate, From: n.self, Granter: mv.to, Link: mv.ref.Link,
			})
		}
		if len(retry) == 0 {
			return
		}
		n.mu.Lock()
		n.back = append(n.back, retry...)
		moves = n.backRebalanceLocked("")
		n.mu.Unlock()
	}
}

// handleLeave: a Voronoi neighbour departed; close the hole by
// recomputing our neighbourhood without it (its old neighbour list, which
// we hold in the two-hop table, supplies the hole's other border nodes).
func (n *Node) handleLeave(env *proto.Envelope) {
	gone := env.From.Addr
	// Optimistic phase (see surgery.go): the post-leave pool is today's
	// pool minus the departed node, so it can be built and recomputed
	// without the write lock.
	var specPool map[string]proto.NodeInfo
	var specVN []proto.NodeInfo
	if !n.cfg.SerialSurgery {
		n.mu.RLock()
		if !n.joined {
			n.mu.RUnlock()
			return
		}
		specPool = n.candidatePool()
		delete(specPool, gone)
		n.mu.RUnlock()
		specVN = miniNeighbors(n.self, specPool)
	}
	n.mu.Lock()
	if !n.joined {
		n.mu.Unlock()
		return
	}
	n.tombstoneLocked(gone, env.From.Gen)
	// Build the pool *before* dropping the departed node's list: its old
	// neighbours are exactly the other border nodes of the hole.
	pool := n.candidatePool()
	delete(pool, gone)
	delete(n.vn, gone)
	delete(n.twoHop, gone)
	delete(n.cn, gone)
	n.recomputeFromLocked(pool, specPool, specVN)
	vns := n.vnList()
	dep, depGen := n.departedLocked()
	n.mu.Unlock()
	for _, v := range vns {
		n.send(v.Addr, &proto.Envelope{
			Type: proto.KindNeighborList, From: n.self, Neighbors: vns, Departed: dep, DepartedGen: depGen,
		})
	}
	// Store repair: records the departed node owned lost their owner-side
	// copy; re-replicate the ones we now own and push the rest to their
	// new owners (the storage face of RemoveVoronoiRegion).
	n.repairDepartedRecords(n.self, env.From, vns)
}

// candidatePool gathers self + vn + two-hop nodes, excluding tombstoned
// (departed) addresses. Caller holds n.mu.
func (n *Node) candidatePool() map[string]proto.NodeInfo {
	pool := make(map[string]proto.NodeInfo, 1+len(n.vn)*6)
	pool[n.self.Addr] = n.self
	for a, v := range n.vn {
		if !n.deadLocked(v) {
			pool[a] = v
		}
	}
	for _, lst := range n.twoHop {
		for _, v := range lst {
			if _, ok := pool[v.Addr]; !ok && !n.deadLocked(v) {
				pool[v.Addr] = v
			}
		}
	}
	return pool
}

// tombstoneLocked records a departure and evicts the address from all
// views, including the route cache — every departure path (graceful
// leave, crash repair, tombstone gossip) funnels through here, so a dead
// owner can never linger as a cached candidate. Caller holds n.mu (the
// cache is a leaf lock).
func (n *Node) tombstoneLocked(addr string, gen uint64) {
	if n.tombs[addr] {
		// Already dead — but a later incarnation may have died since;
		// remember the highest generation seen dead so its gossip
		// cannot be shadowed by the older tombstone.
		if gen > n.tombGen[addr] {
			n.tombGen[addr] = gen
		}
		return
	}
	n.tombs[addr] = true
	if gen > 0 {
		n.tombGen[addr] = gen
	}
	n.tombOrder = append(n.tombOrder, addr)
	if n.cache != nil {
		if dropped := n.cache.invalidateOwner(addr); dropped > 0 {
			n.nm.cacheInvalidations.Add(uint64(dropped))
		}
	}
}

// liftTombLocked removes a tombstone entirely — presence, generation and
// the re-advertisement queue entry — so this node stops gossiping the
// departure of an address it has seen alive again. Caller holds n.mu.
func (n *Node) liftTombLocked(addr string) {
	delete(n.tombs, addr)
	delete(n.tombGen, addr)
	for i, a := range n.tombOrder {
		if a == addr {
			n.tombOrder = append(n.tombOrder[:i], n.tombOrder[i+1:]...)
			break
		}
	}
}

// deadLocked reports whether c refers to a tombstoned incarnation: the
// address is tombstoned and c's generation is not newer than the one
// that died. A NodeInfo carrying a higher generation is a durably
// restarted successor and passes. Caller holds n.mu (read or write).
func (n *Node) deadLocked(c proto.NodeInfo) bool {
	return n.tombs[c.Addr] && c.Gen <= n.tombGen[c.Addr]
}

// purgeTombstonedLocked removes tombstoned addresses from the live views.
// Caller holds n.mu.
func (n *Node) purgeTombstonedLocked() {
	if len(n.tombs) == 0 {
		return
	}
	for a, v := range n.vn {
		if n.deadLocked(v) {
			delete(n.vn, a)
			delete(n.twoHop, a)
		}
	}
	for a, v := range n.cn {
		if n.deadLocked(v) {
			delete(n.cn, a)
		}
	}
}

// maxAdvertisedTombs bounds how many departures ride on each gossip
// message; older ones have long since propagated.
const maxAdvertisedTombs = 64

// departedLocked snapshots the most recent tombstones with the
// generations they died at (nil gens when all zero, keeping the wire
// format of gen-free overlays unchanged). Caller holds n.mu.
func (n *Node) departedLocked() ([]string, []uint64) {
	if len(n.tombOrder) == 0 {
		return nil, nil
	}
	start := 0
	if len(n.tombOrder) > maxAdvertisedTombs {
		start = len(n.tombOrder) - maxAdvertisedTombs
	}
	addrs := append([]string(nil), n.tombOrder[start:]...)
	var gens []uint64
	for i, a := range addrs {
		if g := n.tombGen[a]; g > 0 {
			if gens == nil {
				gens = make([]uint64, len(addrs))
			}
			gens[i] = g
		}
	}
	return addrs, gens
}

// recomputeLocked rebuilds vn from the pool and reports whether the set
// changed. Caller holds n.mu.
func (n *Node) recomputeLocked(pool map[string]proto.NodeInfo) bool {
	return n.installVNLocked(miniNeighbors(n.self, pool))
}

// installVNLocked replaces vn with newVN and reports whether the set
// changed. Caller holds n.mu.
func (n *Node) installVNLocked(newVN []proto.NodeInfo) bool {
	fresh := make(map[string]proto.NodeInfo, len(newVN))
	for _, v := range newVN {
		fresh[v.Addr] = v
	}
	changed := len(fresh) != len(n.vn)
	if !changed {
		for a := range fresh {
			if _, ok := n.vn[a]; !ok {
				changed = true
				break
			}
		}
	}
	// Drop stale two-hop entries for nodes that left the neighbourhood.
	for a := range n.twoHop {
		if _, keep := fresh[a]; !keep {
			delete(n.twoHop, a)
		}
	}
	n.vn = fresh
	return changed
}

// vnList snapshots vn as a slice, sorted by address: the list rides on the
// wire and drives send loops, and deterministic chaos transcripts require
// that map iteration order never leak into the message sequence. Caller
// holds n.mu.
func (n *Node) vnList() []proto.NodeInfo {
	out := make([]proto.NodeInfo, 0, len(n.vn))
	for _, v := range n.vn {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// NearestKnown returns the closest node to p among this node's view
// (including itself) — a local helper for diagnostics and examples.
func (n *Node) NearestKnown(p geom.Point) proto.NodeInfo {
	n.mu.RLock()
	defer n.mu.RUnlock()
	best := n.self
	bestD := geom.Dist2(n.self.Pos, p)
	for _, v := range n.vn {
		if d := geom.Dist2(v.Pos, p); d < bestD {
			best, bestD = v, d
		}
	}
	for _, v := range n.cn {
		if d := geom.Dist2(v.Pos, p); d < bestD {
			best, bestD = v, d
		}
	}
	for _, v := range n.longNbrs {
		if v.Addr == "" {
			continue
		}
		if d := geom.Dist2(v.Pos, p); d < bestD {
			best, bestD = v, d
		}
	}
	if bestD == math.Inf(1) {
		return n.self
	}
	return best
}
