package harness

// Scenarios returns the standard chaos battery. Every scenario is
// registered both as a go test case (TestScenarios) and behind
// `voronet-bench -chaos`; seeds are fixed so BENCH_chaos.json baselines
// and CI transcripts are reproducible, and CI additionally shifts the
// seeds (CHAOS_SEED) to keep the invariants honest across randomness.
//
// EXPERIMENTS.md tabulates the battery with expected outcomes.
func Scenarios() []Scenario {
	return []Scenario{
		{
			// Sustained interleaved joins, graceful leaves and crashes
			// with workload throughout: the tessellation, link mesh and
			// replica placement must track every population change.
			Name: "churn-storm", Seed: 101,
			Steps: []Step{
				Join{N: 30},
				Workload{Ops: 60},
				Settle{},
				Check{},
				Leave{Count: 5},
				Crash{Count: 3},
				Join{N: 10},
				Settle{},
				Workload{Ops: 60, GetFrac: 0.4},
				Settle{},
				Check{},
				Leave{Count: 4},
				Crash{Count: 2},
				Join{N: 6},
				Settle{},
				Check{},
			},
		},
		{
			// Fifty nodes join within one network round against a 5-node
			// seed overlay: admission under heavy concurrent tessellation
			// surgery.
			Name: "flash-crowd", Seed: 102,
			Steps: []Step{
				Join{N: 5},
				Settle{},
				Check{},
				Join{N: 50, Batch: true},
				Settle{},
				Check{},
				Workload{Ops: 50, GetFrac: 0.3},
				Settle{},
				Check{},
			},
		},
		{
			// The sharded-surgery stress: a batch flash crowd lands while
			// the overlay is simultaneously shrinking by leaves and
			// crashes, then a second crowd hits the shrunken mesh. Every
			// Check runs the full invariant battery, so any conflict-set
			// miscomputation in the concurrent view surgery (lost back
			// refs, torn Voronoi stars, replica holes) fails the scenario.
			Name: "flash-crowd-churn", Seed: 110,
			Steps: []Step{
				Join{N: 10},
				Settle{},
				Check{},
				Join{N: 30, Batch: true},
				Leave{Count: 4},
				Crash{Count: 3},
				Settle{},
				Check{},
				Workload{Ops: 60, GetFrac: 0.4},
				Join{N: 20, Batch: true},
				Crash{Count: 4},
				Settle{},
				Workload{Ops: 40, GetFrac: 0.5},
				Settle{},
				Check{},
			},
		},
		{
			// The acceptance scenario: a named east/west partition stands
			// while the workload keeps writing, then heals. The final
			// check demands 100% greedy-routing success and full
			// replica-set coverage for every surviving key.
			Name: "partition-heal", Seed: 103,
			Steps: []Step{
				Join{N: 30},
				Workload{Ops: 60},
				Settle{},
				Check{},
				Partition{Name: "east-west", At: 0.5},
				Workload{Ops: 80, GetFrac: 0.3},
				Check{SkipStore: true}, // views are fault-free; stores diverge until heal
				Heal{},
				Settle{},
				Workload{Ops: 30, GetFrac: 0.5},
				Settle{},
				Check{},
			},
		},
		{
			// Zipf(1.2) over 12 keys: one region owner absorbs most of
			// the write traffic, then loses nodes around the hot spot.
			Name: "hot-keys", Seed: 104,
			Steps: []Step{
				Join{N: 25},
				Workload{Dist: "zipf", Ops: 120, GetFrac: 0.5, Keys: 12},
				Settle{},
				Check{},
				Crash{Count: 3},
				Settle{},
				Workload{Dist: "zipf", Ops: 80, GetFrac: 0.5, Keys: 12},
				Settle{},
				Check{},
			},
		},
		{
			// 8% seeded message loss on every link while the store works:
			// operations may be lost but nothing may corrupt, and the
			// anti-entropy settle must restore full replication.
			Name: "lossy-links", Seed: 105,
			Steps: []Step{
				Join{N: 25},
				Workload{Ops: 40},
				Settle{},
				Check{},
				Lossy{Rate: 0.08},
				Workload{Ops: 80, GetFrac: 0.5},
				ClearFaults{},
				Settle{},
				Check{},
			},
		},
		{
			// One node's links run 50–120 virtual ticks slow, reordering
			// its traffic against the whole network, while new nodes keep
			// joining through the reordered gossip.
			Name: "straggler", Seed: 106,
			Steps: []Step{
				Join{N: 25},
				Straggler{Node: 3, MinLat: 50, MaxLat: 120},
				Workload{Ops: 60, GetFrac: 0.3},
				Join{N: 10},
				Settle{},
				Check{},
				ClearFaults{},
				Settle{},
				Check{},
			},
		},
		{
			// A fifth of the overlay crashes at once with no leave
			// protocol: survivors must close every hole, re-route orphaned
			// long links and restore the replication factor.
			Name: "blackout", Seed: 107,
			Steps: []Step{
				Join{N: 30},
				Workload{Ops: 60},
				Settle{},
				Check{},
				Crash{Count: 6},
				Settle{},
				Workload{Ops: 40, GetFrac: 0.5},
				Settle{},
				Check{},
			},
		},
		{
			// Durable nodes with 2 KiB payloads: a quarter of the overlay
			// crashes abruptly, then every victim restarts from its
			// write-ahead log at its old address and rejoins — no acked
			// write may be lost, the final check must be fully green, and
			// a converged no-diff anti-entropy sweep must cost at most
			// 0.15× of the full-record push (the digest acceptance bound).
			Name: "crash-restart", Seed: 109, Durable: true,
			Steps: []Step{
				Join{N: 24},
				Workload{Ops: 150, GetFrac: 0.2, ValueBytes: 2048},
				Settle{},
				Check{},
				Crash{Count: 6},
				Settle{},
				Restart{},
				Settle{},
				Check{},
				SyncBytes{MaxRatio: 0.15},
				Workload{Ops: 60, GetFrac: 0.5, ValueBytes: 2048},
				Settle{},
				Check{},
			},
		},
		{
			// Grow, shrink by graceful leaves, regrow: placement and
			// routing must be exact at every plateau.
			Name: "elastic", Seed: 108,
			Steps: []Step{
				Join{N: 20},
				Settle{},
				Check{},
				Join{N: 20},
				Workload{Ops: 40},
				Settle{},
				Check{},
				Leave{Count: 15},
				Settle{},
				Check{},
				Join{N: 10},
				Workload{Ops: 40, GetFrac: 0.5},
				Settle{},
				Check{},
			},
		},
	}
}

// ByName returns the named scenario, or nil.
func ByName(name string) *Scenario {
	for _, s := range Scenarios() {
		if s.Name == name {
			return &s
		}
	}
	return nil
}
