package harness

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

// seedOffset lets CI run the whole battery under shifted seeds
// (CHAOS_SEED=n): the invariants must hold for any seed, not just the
// committed baselines.
func seedOffset(t testing.TB) int64 {
	v := os.Getenv("CHAOS_SEED")
	if v == "" {
		return 0
	}
	n, err := strconv.ParseInt(v, 10, 64)
	if err != nil {
		t.Fatalf("CHAOS_SEED=%q: %v", v, err)
	}
	return n
}

// writeTranscript saves a run's transcript when CHAOS_TRANSCRIPT_DIR is
// set (CI uploads the directory on failure).
func writeTranscript(t testing.TB, name string, seed int64, transcript []byte) {
	dir := os.Getenv("CHAOS_TRANSCRIPT_DIR")
	if dir == "" {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Logf("transcript dir: %v", err)
		return
	}
	path := filepath.Join(dir, fmt.Sprintf("%s-seed%d.txt", name, seed))
	if err := os.WriteFile(path, transcript, 0o644); err != nil {
		t.Logf("transcript write: %v", err)
	}
}

// TestScenarios runs the whole chaos battery; every scenario must pass
// all of its checks.
func TestScenarios(t *testing.T) {
	off := seedOffset(t)
	for _, s := range Scenarios() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			s.Seed += off
			res, err := s.Run()
			if err != nil {
				t.Fatal(err)
			}
			writeTranscript(t, s.Name, s.Seed, res.Transcript)
			t.Logf("%s: ops=%d lost=%d delivered=%d dropped=%d vt=%d checks=%d",
				s.Name, res.Ops, res.OpsLost, res.Delivered, res.Dropped, res.VirtualTime, len(res.Checks))
			if !res.Passed {
				for _, f := range res.Failures {
					t.Errorf("%s: %s", s.Name, f)
				}
			}
		})
	}
}

// TestTranscriptDeterminism runs scenarios twice with the same seed and
// requires byte-identical transcripts — the property that makes every
// chaos failure replayable. partition-heal and straggler cover the RNG-
// and reordering-heavy paths; churn-storm covers crash repair.
func TestTranscriptDeterminism(t *testing.T) {
	off := seedOffset(t)
	for _, name := range []string{"partition-heal", "straggler", "churn-storm"} {
		name := name
		t.Run(name, func(t *testing.T) {
			s := ByName(name)
			if s == nil {
				t.Fatalf("scenario %q not registered", name)
			}
			s.Seed += off
			r1, err := s.Run()
			if err != nil {
				t.Fatal(err)
			}
			r2, err := s.Run()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(r1.Transcript, r2.Transcript) {
				writeTranscript(t, name+"-run1", s.Seed, r1.Transcript)
				writeTranscript(t, name+"-run2", s.Seed, r2.Transcript)
				a, b := r1.Transcript, r2.Transcript
				i := 0
				for i < len(a) && i < len(b) && a[i] == b[i] {
					i++
				}
				lo := i - 120
				if lo < 0 {
					lo = 0
				}
				ha, hb := i+120, i+120
				if ha > len(a) {
					ha = len(a)
				}
				if hb > len(b) {
					hb = len(b)
				}
				t.Fatalf("transcripts diverge at byte %d:\nrun1: …%s…\nrun2: …%s…", i, a[lo:ha], b[lo:hb])
			}
		})
	}
}

// TestPartitionHealAcceptance pins the acceptance criterion explicitly:
// after the partition heals and the network settles, the final check must
// report 100%% greedy-routing success and full replica-set coverage for
// every surviving key.
func TestPartitionHealAcceptance(t *testing.T) {
	s := ByName("partition-heal")
	if s == nil {
		t.Fatal("partition-heal not registered")
	}
	s.Seed += seedOffset(t)
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	writeTranscript(t, "partition-heal-acceptance", s.Seed, res.Transcript)
	if len(res.Checks) == 0 {
		t.Fatal("no checks ran")
	}
	final := res.Checks[len(res.Checks)-1]
	if final.RouteTried == 0 || final.RouteOK != final.RouteTried {
		t.Fatalf("greedy routing after heal: %d/%d, want 100%%", final.RouteOK, final.RouteTried)
	}
	if final.StoreKeys == 0 {
		t.Fatal("no surviving keys tracked: vacuous acceptance")
	}
	if final.StoreErrors != 0 {
		t.Fatalf("replica coverage after heal: %d/%d keys violated", final.StoreErrors, final.StoreKeys)
	}
	if !res.Passed {
		t.Fatalf("scenario failures: %v", res.Failures)
	}
	// The partition must have actually bitten: cross-cut traffic dropped.
	if res.Dropped == 0 {
		t.Fatal("partition dropped nothing: the fault plan never engaged")
	}
}

// TestCrashUntracksOnlyWhollyLostKeys ensures the Crash step's data-loss
// accounting is not an escape hatch: with the default replication factor
// and a small crash count, most keys must survive and stay tracked.
func TestCrashUntracksOnlyWhollyLostKeys(t *testing.T) {
	s := Scenario{
		Name: "crash-accounting", Seed: 991,
		Steps: []Step{
			Join{N: 24},
			Workload{Ops: 50},
			Settle{},
			Crash{Count: 3},
			Settle{},
			Check{},
		},
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Passed {
		t.Fatalf("failures: %v", res.Failures)
	}
	final := res.Checks[len(res.Checks)-1]
	if final.StoreKeys < 30 {
		t.Fatalf("only %d keys survived a 3-node crash at R=3: accounting too eager", final.StoreKeys)
	}
}
