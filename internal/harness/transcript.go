package harness

import (
	"bytes"
	"fmt"
)

// transcript is the append-only run log. Every line is produced with
// fixed-precision formatting from deterministic state, so two runs of the
// same scenario and seed yield byte-identical transcripts — the property
// the determinism test in harness_test.go pins down.
type transcript struct {
	buf  bytes.Buffer
	line int
}

func newTranscript() *transcript { return &transcript{} }

// logf appends one numbered line.
func (t *transcript) logf(format string, args ...any) {
	t.line++
	fmt.Fprintf(&t.buf, "%04d %s\n", t.line, fmt.Sprintf(format, args...))
}

func (t *transcript) bytes() []byte {
	return append([]byte(nil), t.buf.Bytes()...)
}
