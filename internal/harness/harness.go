// Package harness is the deterministic chaos harness for the distributed
// VoroNet node: a declarative scenario engine that drives real node.Node
// instances over the transport.Bus simnet through joins, graceful leaves,
// abrupt crashes, named partitions, lossy links, stragglers and keyed
// workloads, and checks network-wide invariants at every Check step —
// global Delaunay validity of the union of local views, long-link /
// back-pointer symmetry, replica-set placement of every acknowledged key,
// and greedy-routing reachability.
//
// Every run is reproducible: the scenario seed drives all random choices
// (positions, sponsors, victims, keys, fault draws via the seeded bus),
// the node and store layers emit messages in sorted deterministic order,
// and the run records a replayable transcript whose bytes are identical
// across runs of the same scenario and seed. The transcript includes the
// bus's Delivered/Dropped counters and virtual clock, so it is a complete
// causally-ordered account of the run — when a scenario fails in CI, the
// transcript is the artefact to diff.
package harness

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"time"

	"voronet/internal/geom"
	"voronet/internal/metrics"
	"voronet/internal/node"
	"voronet/internal/proto"
	"voronet/internal/stats"
	"voronet/internal/store"
	"voronet/internal/transport"
	"voronet/internal/workload"
)

// Scenario is a declarative chaos script: a seeded overlay configuration
// plus an ordered list of steps.
type Scenario struct {
	Name string
	// Seed drives every random choice in the run (and the bus's fault
	// draws). Same scenario + same seed ⇒ byte-identical transcript.
	Seed int64
	// DMin, LongLinks, Replication parameterise the nodes (defaults:
	// 0.02, 1, store.DefaultReplication).
	DMin        float64
	LongLinks   int
	Replication int
	// Positions names the workload source for node positions (default
	// "uniform").
	Positions string
	// Durable gives every node a write-ahead log in a private temp
	// directory (removed when the run ends): nodes are built with
	// node.NewDurable, crashes stop untracking keys (the records survive
	// on disk), and the Restart step can bring crashed members back at
	// their old addresses with their stores recovered. WAL paths are
	// host-specific and never appear in the transcript.
	Durable bool
	Steps   []Step
}

// Step is one scenario action. Implementations live in steps.go.
type Step interface {
	run(r *Run) error
}

// Result is the outcome of a scenario run.
type Result struct {
	// Transcript is the replayable causally-ordered run log.
	Transcript []byte
	// Passed is true when every Check met its expectations and every
	// structural step (joins, workload sanity) succeeded.
	Passed bool
	// Failures lists every violated expectation.
	Failures []string
	// Checks holds the report of each Check step in order.
	Checks []CheckReport
	// Workload counters across all Workload steps.
	Ops, OpsLost, OpsFailed int
	// SyncDigestBytes / SyncFullBytes accumulate the SyncBytes probes:
	// what the anti-entropy sweeps measured there would have cost on the
	// wire in digest mode versus full-push mode.
	SyncDigestBytes, SyncFullBytes uint64
	// Sends, Delivered, Dropped and VirtualTime snapshot the bus at the
	// end. The run fails unless Sends == Delivered + Dropped (the
	// message-conservation invariant; a settled run has nothing pending).
	Sends, Delivered, Dropped uint64
	VirtualTime               uint64
	// Metrics is the run-wide metric snapshot: every node's registry
	// merged with the bus counters. voronet-bench -chaos embeds it in
	// BENCH_chaos.json.
	Metrics metrics.Snapshot
}

// member is one node slot in a run; slots are never reused, so a node's
// index is stable for the whole scenario.
type member struct {
	nd    *node.Node
	ep    transport.Endpoint
	addr  string
	idx   int
	alive bool
	// crashed marks a member killed by Crash (as opposed to a graceful
	// Leave): in a Durable scenario its WAL survives and Restart may
	// revive it at the same address.
	crashed bool
}

// expectation tracks what the harness believes about one stored key.
type expectation struct {
	val []byte
	// sure is false when a later put on the key was lost in flight: the
	// op may or may not have been applied, so the value is indeterminate
	// (but some record must still exist).
	sure bool
}

// Run is the executing state of a scenario.
type Run struct {
	scn Scenario
	bus *transport.Bus
	rng *rand.Rand
	src workload.Source
	tr  *transcript

	members []*member
	// walRoot is the run's private WAL directory (Durable scenarios
	// only); each member logs under walRoot/<addr>. Removed when the run
	// ends, and never written to the transcript.
	walRoot string
	// retired holds the metric registries of node instances replaced by
	// Restart: the bus counted their traffic, so reconciliation (and the
	// merged snapshot) must keep counting them too.
	retired []*metrics.Registry
	// zipf is the lazily created hot-key source shared by all zipf
	// Workload steps of the run (same key set throughout).
	zipf *workload.ZipfKeys

	// opSeq numbers workload operations across the whole run (values are
	// derived from it, so every put writes something fresh).
	opSeq int
	// dropFaults and partitioned track the active fault state; lossy
	// stays set from the first loss fault until a Settle runs with no
	// fault active (reads are only strongly checked outside the lossy
	// regime — under loss, replicas are eventually consistent).
	// activeParts holds the installed partition specs so joins during a
	// partition re-assign the groups over the grown membership.
	dropFaults  bool
	partitioned bool
	lossy       bool
	activeParts []Partition

	expected map[geom.Point]*expectation
	res      *Result
}

// Run executes the scenario and returns its result. Execution errors
// (structural misuse, not invariant violations) surface as error.
func (s Scenario) Run() (*Result, error) {
	if s.DMin <= 0 {
		s.DMin = 0.02
	}
	if s.LongLinks <= 0 {
		s.LongLinks = 1
	}
	if s.Replication <= 0 {
		s.Replication = store.DefaultReplication
	}
	if s.Positions == "" {
		s.Positions = "uniform"
	}
	rng := rand.New(rand.NewSource(s.Seed))
	src := workload.ByName(s.Positions, rng)
	if src == nil {
		return nil, fmt.Errorf("harness: unknown position source %q", s.Positions)
	}
	r := &Run{
		scn:      s,
		bus:      transport.NewSeededBus(s.Seed),
		rng:      rng,
		src:      src,
		tr:       newTranscript(),
		expected: make(map[geom.Point]*expectation),
		res:      &Result{},
	}
	if s.Durable {
		// The WAL root is host state, not scenario state: its path must
		// never leak into the transcript (byte-identical replays).
		dir, err := os.MkdirTemp("", "voronet-chaos-wal-")
		if err != nil {
			return nil, fmt.Errorf("harness: wal root: %w", err)
		}
		defer os.RemoveAll(dir)
		r.walRoot = dir
	}
	r.tr.logf("scenario %s seed=%d dmin=%.4f longlinks=%d replication=%d positions=%s durable=%v",
		s.Name, s.Seed, s.DMin, s.LongLinks, s.Replication, s.Positions, s.Durable)
	for i, st := range s.Steps {
		if err := st.run(r); err != nil {
			return nil, fmt.Errorf("harness: scenario %s step %d: %w", s.Name, i+1, err)
		}
	}
	r.reconcileMetrics()
	r.res.Passed = len(r.res.Failures) == 0
	r.res.Sends = r.bus.SendCount()
	r.res.Delivered = r.bus.DeliveredCount()
	r.res.Dropped = r.bus.DroppedCount()
	r.res.VirtualTime = r.bus.Now()
	r.tr.logf("end passed=%v failures=%d %s", r.res.Passed, len(r.res.Failures), r.busLine())
	r.res.Transcript = r.tr.bytes()
	return r.res, nil
}

// reconcileMetrics checks the end-of-run message-conservation
// invariants against the metric registries and builds the run-wide
// merged snapshot. Two books are kept independently — the bus counts
// what the network did, each node's registry counts what it asked for —
// and a run is only healthy when they agree:
//
//	bus sends == bus delivered + bus dropped + bus pending
//	Σ node sent_total − Σ send_self_total − Σ send_errors_total == bus sends
//
// (self-sends are delivered in-process without touching the transport;
// errored sends were refused by the bus and never entered its books).
func (r *Run) reconcileMetrics() {
	sends := r.bus.SendCount()
	delivered := r.bus.DeliveredCount()
	dropped := r.bus.DroppedCount()
	pending := uint64(r.bus.Pending())
	if sends != delivered+dropped+pending {
		r.fail("bus conservation: sends=%d != delivered=%d + dropped=%d + pending=%d",
			sends, delivered, dropped, pending)
	}
	merged := r.bus.MetricsSnapshot()
	var sent, self, errs uint64
	regs := make([]*metrics.Registry, 0, len(r.members)+len(r.retired))
	regs = append(regs, r.retired...)
	for _, m := range r.members {
		regs = append(regs, m.nd.Metrics())
	}
	for _, reg := range regs {
		snap := reg.Snapshot()
		sent += snap.Counters["node_sent_total"]
		self += snap.Counters["node_send_self_total"]
		errs += snap.Counters["node_send_errors_total"]
		merged.Merge(snap)
	}
	if sent-self-errs != sends {
		r.fail("node/bus reconciliation: Σsent=%d − Σself=%d − Σerrors=%d = %d != bus sends=%d",
			sent, self, errs, sent-self-errs, sends)
	}
	r.res.Metrics = merged
	r.tr.logf("metrics sends=%d delivered=%d dropped=%d pending=%d node_sent=%d self=%d errors=%d",
		sends, delivered, dropped, pending, sent, self, errs)
}

// live returns the live members in index order.
func (r *Run) live() []*member {
	out := make([]*member, 0, len(r.members))
	for _, m := range r.members {
		if m.alive {
			out = append(out, m)
		}
	}
	return out
}

// liveNodes returns the live node handles in index order.
func (r *Run) liveNodes() []*node.Node {
	var out []*node.Node
	for _, m := range r.live() {
		out = append(out, m.nd)
	}
	return out
}

// busLine renders the bus counters for transcript lines.
func (r *Run) busLine() string {
	return fmt.Sprintf("delivered=%d dropped=%d vt=%d",
		r.bus.DeliveredCount(), r.bus.DroppedCount(), r.bus.Now())
}

// fail records one expectation violation (the run keeps going: a scenario
// reports every violation it finds, not just the first).
func (r *Run) fail(format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	r.res.Failures = append(r.res.Failures, msg)
	r.tr.logf("FAIL %s", msg)
}

// nodeConfig builds the Config for the member at index idx — shared by
// addNode and Restart so a revived node runs exactly the configuration
// its predecessor did.
func (r *Run) nodeConfig(idx int, addr string) node.Config {
	cfg := node.Config{
		DMin:        r.scn.DMin,
		LongLinks:   r.scn.LongLinks,
		Seed:        r.scn.Seed + int64(idx),
		Replication: r.scn.Replication,
		// Replies either arrive during the drain or are lost to a fault;
		// effectively infinite timeouts keep wall-clock timers (which
		// would be nondeterministic) out of the run entirely.
		StoreTimeout: 365 * 24 * time.Hour,
		QueryTimeout: 365 * 24 * time.Hour,
	}
	if r.scn.Durable {
		cfg.WALDir = filepath.Join(r.walRoot, addr)
	}
	return cfg
}

// addNode attaches and joins one node; via is the sponsor address ("" for
// bootstrap). Join completion is verified after the caller drains.
func (r *Run) addNode() (*member, error) {
	idx := len(r.members)
	addr := fmt.Sprintf("n%03d", idx)
	ep, err := r.bus.Attach(addr)
	if err != nil {
		return nil, err
	}
	pos := r.src.Next()
	cfg := r.nodeConfig(idx, addr)
	var nd *node.Node
	if r.scn.Durable {
		nd, _, err = node.NewDurable(ep, pos, cfg)
		if err != nil {
			return nil, fmt.Errorf("durable node %s: %w", addr, err)
		}
	} else {
		nd = node.New(ep, pos, cfg)
	}
	m := &member{nd: nd, ep: ep, addr: addr, idx: idx, alive: true}
	r.members = append(r.members, m)
	return m, nil
}

// sortedExpectedKeys returns the tracked keys in deterministic order.
func (r *Run) sortedExpectedKeys() []geom.Point {
	keys := make([]geom.Point, 0, len(r.expected))
	for k := range r.expected {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].X != keys[j].X {
			return keys[i].X < keys[j].X
		}
		return keys[i].Y < keys[j].Y
	})
	return keys
}

// holdersOf returns the addresses of live members holding a record for
// key, in index order.
func (r *Run) holdersOf(key geom.Point) []string {
	var out []string
	for _, m := range r.live() {
		if _, ok := m.nd.StoreLookup(key); ok {
			out = append(out, m.addr)
		}
	}
	return out
}

// hopsSummary renders mean and p99 over a hop sample.
func hopsSummary(hops []float64) string {
	if len(hops) == 0 {
		return "meanhops=0.000 p99hops=0.0"
	}
	var run stats.Running
	for _, h := range hops {
		run.Add(h)
	}
	cp := append([]float64(nil), hops...)
	return fmt.Sprintf("meanhops=%.3f p99hops=%.1f", run.Mean(), stats.Percentile(cp, 99))
}

// infoOf is a convenience for transcript lines.
func infoOf(m *member) proto.NodeInfo { return m.nd.Info() }
