package harness

import (
	"bytes"
	"fmt"

	"voronet/internal/geom"
	"voronet/internal/node"
	"voronet/internal/store"
	"voronet/internal/transport"
	"voronet/internal/workload"
)

// Join adds N nodes to the overlay, each joining through a random live
// sponsor. With Batch set, all N join requests are issued before the bus
// drains once — a flash crowd arriving within one network round instead
// of a sequential trickle.
type Join struct {
	N     int
	Batch bool
}

func (s Join) run(r *Run) error {
	mode := "sequential"
	if s.Batch {
		mode = "batch"
	}
	sponsors := r.live()
	var joined []*member
	for i := 0; i < s.N; i++ {
		m, err := r.addNode()
		if err != nil {
			return err
		}
		if len(r.members) == 1 {
			if err := m.nd.Bootstrap(); err != nil {
				return err
			}
			r.tr.logf("bootstrap %s pos=(%.6f,%.6f)", m.addr, infoOf(m).Pos.X, infoOf(m).Pos.Y)
			sponsors = append(sponsors, m)
			continue
		}
		pool := sponsors
		if !s.Batch {
			pool = r.live()[:len(r.live())-1] // everyone joined so far
		}
		via := pool[r.rng.Intn(len(pool))].addr
		if err := m.nd.Join(via); err != nil {
			return err
		}
		r.tr.logf("join %s pos=(%.6f,%.6f) via=%s", m.addr, infoOf(m).Pos.X, infoOf(m).Pos.Y, via)
		joined = append(joined, m)
		if !s.Batch {
			r.bus.Drain()
			if !m.nd.Joined() {
				r.fail("join: %s failed to join via %s", m.addr, via)
				m.alive = false
			}
		}
	}
	if s.Batch {
		r.bus.Drain()
		for _, m := range joined {
			if !m.nd.Joined() {
				r.fail("join: %s failed to join (batch)", m.addr)
				m.alive = false
			}
		}
	}
	// Newcomers must not bridge an installed partition: re-assign the
	// groups over the grown membership.
	for _, p := range r.activeParts {
		west, east := r.installPartition(p)
		r.tr.logf("partition %s refreshed west=%d east=%d", p.Name, west, east)
	}
	r.tr.logf("joined n=%d mode=%s live=%d %s", s.N, mode, len(r.live()), r.busLine())
	return nil
}

// Leave makes Count random live nodes depart gracefully (store handoff,
// BLRn delegation, neighbourhood repair — the §4.2.2 protocol).
type Leave struct{ Count int }

func (s Leave) run(r *Run) error {
	for i := 0; i < s.Count; i++ {
		live := r.live()
		if len(live) <= 1 {
			break
		}
		m := live[r.rng.Intn(len(live))]
		if err := m.nd.Leave(); err != nil {
			return err
		}
		r.bus.Drain()
		m.ep.Close()
		m.alive = false
		r.tr.logf("leave %s live=%d %s", m.addr, len(r.live()), r.busLine())
	}
	return nil
}

// Crash kills Count random live nodes abruptly: endpoints close with no
// leave protocol, records and links die with them, and the surviving
// population receives failure-detector notifications (NotifyDeparted) and
// repairs itself. Tracked keys whose every live copy was on a crashed
// node are recorded as lost and untracked — losing more than the
// replication factor simultaneously is data loss by design, not a bug.
type Crash struct{ Count int }

func (s Crash) run(r *Run) error {
	live := r.live()
	count := s.Count
	if count > len(live)-1 {
		count = len(live) - 1
	}
	if count <= 0 {
		return nil
	}
	perm := r.rng.Perm(len(live))
	victims := make([]*member, count)
	victimSet := make(map[string]bool, count)
	for i := 0; i < count; i++ {
		victims[i] = live[perm[i]]
		victimSet[victims[i].addr] = true
	}
	// Data-loss accounting, judged against the pre-crash replica set: a
	// key whose owner and every required replica die together is lost by
	// design (more simultaneous failures than the replication factor).
	// If no copy at all survives the key is untracked; if only stale
	// copies outside the replica set survive, the key stays tracked but
	// its value becomes indeterminate — anti-entropy may resurrect an
	// older version, which is recovery, not corruption.
	//
	// In a Durable scenario none of that applies: every acked write was
	// logged before its ack, the victims' WALs survive the crash, and a
	// later Restart recovers the records byte-exact — so every tracked
	// key stays tracked at full confidence.
	if !r.scn.Durable {
		ref, err := r.buildReference()
		if err != nil {
			return err
		}
		for _, k := range r.sortedExpectedKeys() {
			var surviving []string
			for _, h := range r.holdersOf(k) {
				if !victimSet[h] {
					surviving = append(surviving, h)
				}
			}
			if len(surviving) == 0 {
				delete(r.expected, k)
				r.tr.logf("crash loses key=(%.6f,%.6f): every copy on a victim", k.X, k.Y)
				continue
			}
			owner := ref.ownerOf(k)
			requiredDead := victimSet[owner.addr]
			if requiredDead {
				for _, m := range ref.replicaSet(owner, k, r.scn.Replication) {
					if !victimSet[m.addr] {
						requiredDead = false
						break
					}
				}
			}
			if requiredDead {
				r.expected[k].sure = false
				r.tr.logf("crash orphans key=(%.6f,%.6f): replica set dead, %d stale copies survive", k.X, k.Y, len(surviving))
			}
		}
	}
	for _, v := range victims {
		v.ep.Close()
		v.alive = false
		v.crashed = true
		r.tr.logf("crash %s", v.addr)
	}
	for _, m := range r.live() {
		for _, v := range victims {
			m.nd.NotifyDeparted(v.addr)
		}
	}
	r.bus.Drain()
	r.tr.logf("crashed n=%d live=%d %s", count, len(r.live()), r.busLine())
	return nil
}

// Partition splits the live population into two named groups by attribute
// coordinate — members with Pos.X (or Pos.Y when Axis is "y") below At go
// west, the rest east — and installs the partition on the bus. Messages
// crossing the cut are dropped until Heal.
type Partition struct {
	Name string
	Axis string // "x" (default) or "y"
	At   float64
}

func (s Partition) run(r *Run) error {
	for i, p := range r.activeParts {
		if p.Name == s.Name {
			r.activeParts = append(r.activeParts[:i], r.activeParts[i+1:]...)
			break
		}
	}
	r.activeParts = append(r.activeParts, s)
	west, east := r.installPartition(s)
	r.partitioned = true
	r.lossy = true
	r.tr.logf("partition %s axis=%s at=%.3f west=%d east=%d", s.Name, axisName(s.Axis), s.At, west, east)
	return nil
}

// installPartition (re)installs one partition over the current live
// membership and returns the group sizes. Called again after every join
// while the partition stands, so newcomers are constrained by coordinate
// instead of silently bridging the cut.
func (r *Run) installPartition(s Partition) (west, east int) {
	var w, e []string
	for _, m := range r.live() {
		c := infoOf(m).Pos.X
		if s.Axis == "y" {
			c = infoOf(m).Pos.Y
		}
		if c < s.At {
			w = append(w, m.addr)
		} else {
			e = append(e, m.addr)
		}
	}
	r.bus.InstallPartition(s.Name, w, e)
	return len(w), len(e)
}

func axisName(a string) string {
	if a == "y" {
		return "y"
	}
	return "x"
}

// Heal removes every installed partition. Replica sets damaged while the
// partition stood are restored by the next Settle's anti-entropy sweep.
type Heal struct{}

func (s Heal) run(r *Run) error {
	r.bus.Heal()
	r.activeParts = nil
	r.partitioned = false
	r.tr.logf("heal %s", r.busLine())
	return nil
}

// Lossy installs a default link rule dropping the given fraction of every
// message (seeded, deterministic). Rate 0 restores perfect links.
type Lossy struct{ Rate float64 }

func (s Lossy) run(r *Run) error {
	r.bus.SetDefaultRule(transport.LinkRule{Drop: s.Rate})
	r.dropFaults = s.Rate > 0
	if s.Rate > 0 {
		r.lossy = true
	}
	r.tr.logf("lossy rate=%.3f", s.Rate)
	return nil
}

// Straggler gives every link into and out of one node (by join index) a
// latency in [MinLat, MaxLat] virtual ticks, reordering its traffic
// against the rest of the network.
type Straggler struct {
	Node           int
	MinLat, MaxLat uint64
}

func (s Straggler) run(r *Run) error {
	if s.Node < 0 || s.Node >= len(r.members) {
		return fmt.Errorf("straggler: no member %d", s.Node)
	}
	m := r.members[s.Node]
	r.bus.SetPeerRule(m.addr, transport.LinkRule{MinLatency: s.MinLat, MaxLatency: s.MaxLat})
	r.tr.logf("straggler %s lat=[%d,%d]", m.addr, s.MinLat, s.MaxLat)
	return nil
}

// ClearFaults removes every link, peer and default rule (partitions heal
// separately).
type ClearFaults struct{}

func (s ClearFaults) run(r *Run) error {
	r.bus.ClearRules()
	r.dropFaults = false
	r.tr.logf("clearfaults")
	return nil
}

// Workload issues Ops routed store operations from random live nodes:
// puts with fresh values, and gets with probability GetFrac. Keys come
// from the named distribution — "uniform" draws fresh uniform keys for
// puts and revisits tracked keys for gets; "zipf" draws from a fixed
// hot-key set with Zipf(Alpha) popularity (both puts and gets hammer the
// head keys). Operations whose reply never arrives (lost to a fault) are
// recorded as lost; a lost put makes the key's value indeterminate until
// the next acknowledged put.
type Workload struct {
	Dist    string // "uniform" (default) or "zipf"
	Ops     int
	GetFrac float64
	Alpha   float64 // zipf skew (default 1.2)
	Keys    int     // zipf key-set size (default 16)
	// ValueBytes pads every put value to this size (0 keeps the bare
	// 7-byte sequence tag). Realistic payloads matter to the SyncBytes
	// measurement: with tiny values the wire cost of a full push is all
	// envelope framing and the digest ratio is meaningless.
	ValueBytes int
}

func (s Workload) run(r *Run) error {
	live := r.live()
	if len(live) == 0 {
		return fmt.Errorf("workload: no live nodes")
	}
	var keysrc workload.Source
	switch s.Dist {
	case "", "uniform":
		keysrc = &workload.Uniform{Rand: r.rng}
	case "zipf":
		if r.zipf == nil {
			alpha := s.Alpha
			if alpha <= 0 {
				alpha = 1.2
			}
			k := s.Keys
			if k <= 0 {
				k = 16
			}
			r.zipf = workload.NewZipfKeys(alpha, k, r.rng)
		}
		keysrc = r.zipf
	default:
		return fmt.Errorf("workload: unknown distribution %q", s.Dist)
	}
	acked, lost := 0, 0
	for i := 0; i < s.Ops; i++ {
		live = r.live()
		m := live[r.rng.Intn(len(live))]
		isGet := r.rng.Float64() < s.GetFrac
		if isGet {
			key, ok := r.getKey(keysrc)
			if !ok {
				isGet = false // nothing to read yet: fall through to a put
			} else {
				if r.doGet(m, key) {
					acked++
				} else {
					lost++
				}
				continue
			}
		}
		if !isGet {
			key := keysrc.Next()
			if r.doPut(m, key, s.ValueBytes) {
				acked++
			} else {
				lost++
			}
		}
	}
	r.res.Ops += s.Ops
	r.res.OpsLost += lost
	r.tr.logf("workload dist=%s ops=%d acked=%d lost=%d tracked=%d %s",
		keysrc.Name(), s.Ops, acked, lost, len(r.expected), r.busLine())
	return nil
}

// getKey picks a key to read: zipf reads redraw from the hot-key set,
// uniform reads revisit a random tracked key.
func (r *Run) getKey(src workload.Source) (geom.Point, bool) {
	if z, ok := src.(*workload.ZipfKeys); ok {
		return z.Next(), true
	}
	keys := r.sortedExpectedKeys()
	if len(keys) == 0 {
		return geom.Point{}, false
	}
	return keys[r.rng.Intn(len(keys))], true
}

// doPut issues one routed put and drains; it reports whether the ack
// arrived. valueBytes > 0 pads the value to that size (the sequence tag
// keeps every put distinguishable).
func (r *Run) doPut(m *member, key geom.Point, valueBytes int) bool {
	r.opSeq++
	val := []byte(fmt.Sprintf("v%06d", r.opSeq))
	if valueBytes > len(val) {
		val = append(val, bytes.Repeat([]byte{'.'}, valueBytes-len(val))...)
	}
	var rep store.Reply
	done := false
	if err := m.nd.Put(key, val, func(rp store.Reply) { rep = rp; done = true }); err != nil {
		r.res.OpsFailed++
		r.fail("put from %s refused: %v", m.addr, err)
		return false
	}
	r.bus.Drain()
	if !done {
		if exp, ok := r.expected[key]; ok {
			exp.sure = false // the lost put may or may not have applied
		}
		r.tr.logf("op %06d put %s key=(%.6f,%.6f) lost", r.opSeq, m.addr, key.X, key.Y)
		return false
	}
	r.expected[key] = &expectation{val: val, sure: true}
	r.tr.logf("op %06d put %s key=(%.6f,%.6f) ok v=%d hops=%d", r.opSeq, m.addr, key.X, key.Y, rep.Version, rep.Hops)
	return true
}

// doGet issues one routed get and drains; it reports whether the answer
// arrived. When the harness knows the key's value for certain and no loss
// fault is active, the answer must match.
func (r *Run) doGet(m *member, key geom.Point) bool {
	r.opSeq++
	var rep store.Reply
	done := false
	if err := m.nd.Get(key, func(rp store.Reply) { rep = rp; done = true }); err != nil {
		r.res.OpsFailed++
		r.fail("get from %s refused: %v", m.addr, err)
		return false
	}
	r.bus.Drain()
	if !done {
		r.tr.logf("op %06d get %s key=(%.6f,%.6f) lost", r.opSeq, m.addr, key.X, key.Y)
		return false
	}
	state := "miss"
	if rep.Found {
		state = "hit"
	}
	if exp, ok := r.expected[key]; ok && exp.sure {
		if !rep.Found || !bytes.Equal(rep.Value, exp.val) {
			if r.lossy {
				// A replica starved by message loss may serve a stale
				// version until the next anti-entropy sweep: eventual, not
				// immediate, consistency under faults.
				state = "stale"
			} else {
				r.fail("get %s key=(%.6f,%.6f): got found=%v %q, want %q",
					m.addr, key.X, key.Y, rep.Found, rep.Value, exp.val)
			}
		}
	}
	r.tr.logf("op %06d get %s key=(%.6f,%.6f) %s hops=%d", r.opSeq, m.addr, key.X, key.Y, state, rep.Hops)
	return true
}

// Settle quiesces the network: each round drains the bus, runs one
// anti-entropy sweep (every live node pushes the records it owns to their
// replica sets) and drains again. Two rounds reach a fixpoint after any
// single fault epoch: the first restores ownership placement, the second
// re-replicates from the restored owners. Once no drop faults remain
// active, the run leaves the lossy regime: reads are strongly checked
// again.
type Settle struct{ Rounds int }

func (s Settle) run(r *Run) error {
	rounds := s.Rounds
	if rounds <= 0 {
		rounds = 2
	}
	for i := 0; i < rounds; i++ {
		r.bus.Drain()
		pushed := 0
		for _, m := range r.live() {
			pushed += m.nd.SyncReplicas()
		}
		r.bus.Drain()
		r.tr.logf("settle round=%d pushed=%d %s", i+1, pushed, r.busLine())
	}
	if !r.dropFaults && !r.partitioned {
		r.lossy = false
	}
	return nil
}

// Check runs the network-wide invariant checker: global Delaunay validity
// of the union of local views, long-link back-pointer symmetry, replica
// placement and value convergence of every tracked key, and
// greedy-routing reachability over sampled pairs. Zero-valued fields mean
// strict: MinRouteSuccess 0 is read as 1.0 and all aspects are checked
// unless skipped explicitly.
type Check struct {
	Samples         int     // routing pairs to sample (default 40)
	MinRouteSuccess float64 // required success fraction (default 1.0)
	SkipViews       bool
	SkipBacklinks   bool
	SkipStore       bool
}

func (s Check) run(r *Run) error {
	rep := r.runCheck(s)
	r.res.Checks = append(r.res.Checks, rep)
	r.tr.logf("check nodes=%d views=%d backlinks=%d store=%d/%d route=%d/%d %s %s",
		rep.Nodes, rep.ViewErrors, rep.BacklinkErrors,
		rep.StoreErrors, rep.StoreKeys, rep.RouteOK, rep.RouteTried,
		hopsSummary(rep.hops), r.busLine())
	min := s.MinRouteSuccess
	if min <= 0 {
		min = 1.0
	}
	if !s.SkipViews && rep.ViewErrors > 0 {
		r.fail("check: %d nodes disagree with the reference tessellation (first: %s)", rep.ViewErrors, rep.firstDetail("view"))
	}
	if !s.SkipBacklinks && rep.BacklinkErrors > 0 {
		r.fail("check: %d long-link/back-pointer violations (first: %s)", rep.BacklinkErrors, rep.firstDetail("backlink"))
	}
	if !s.SkipStore && rep.StoreErrors > 0 {
		r.fail("check: %d/%d tracked keys misplaced or diverged (first: %s)", rep.StoreErrors, rep.StoreKeys, rep.firstDetail("store"))
	}
	if rep.RouteTried > 0 && float64(rep.RouteOK)/float64(rep.RouteTried) < min {
		r.fail("check: routing success %d/%d below %.3f", rep.RouteOK, rep.RouteTried, min)
	}
	return nil
}

// Restart revives crashed members of a Durable scenario at their old
// addresses: each victim reattaches to the bus, replays its write-ahead
// log into a fresh store (the recovered record count is asserted and
// logged — paths never are), and rejoins through a random live sponsor.
// The persisted incarnation counter bumped by the WAL open is what lets
// the survivors, who tombstoned the old incarnation, admit the new one.
// Count 0 restarts every crashed member, in join order.
type Restart struct{ Count int }

func (s Restart) run(r *Run) error {
	if !r.scn.Durable {
		return fmt.Errorf("restart: scenario is not durable")
	}
	var victims []*member
	for _, m := range r.members {
		if !m.alive && m.crashed {
			victims = append(victims, m)
		}
	}
	if s.Count > 0 && s.Count < len(victims) {
		victims = victims[:s.Count]
	}
	if len(victims) == 0 {
		return fmt.Errorf("restart: no crashed members to revive")
	}
	for _, m := range victims {
		ep, err := r.bus.Attach(m.addr)
		if err != nil {
			return fmt.Errorf("restart %s: %w", m.addr, err)
		}
		pos := m.nd.Info().Pos
		held := len(m.nd.StoreSnapshot())
		nd, stats, err := node.NewDurable(ep, pos, r.nodeConfig(m.idx, m.addr))
		if err != nil {
			return fmt.Errorf("restart %s: %w", m.addr, err)
		}
		if stats.Records < held {
			r.fail("restart %s: replayed %d records, held %d at crash", m.addr, stats.Records, held)
		}
		live := r.live()
		via := live[r.rng.Intn(len(live))].addr
		if err := nd.Join(via); err != nil {
			return fmt.Errorf("restart %s join: %w", m.addr, err)
		}
		r.bus.Drain()
		if !nd.Joined() {
			r.fail("restart: %s failed to rejoin via %s", m.addr, via)
			// The failed instance still sent join traffic the bus counted.
			r.retired = append(r.retired, nd.Metrics())
			ep.Close()
			continue
		}
		// The dead instance's registry already reconciled traffic with the
		// bus; keep its books when the slot is taken over.
		r.retired = append(r.retired, m.nd.Metrics())
		m.nd, m.ep, m.alive, m.crashed = nd, ep, true, false
		r.tr.logf("restart %s recovered=%d torn=%v corrupt=%d gen=%d via=%s",
			m.addr, stats.Records, stats.Truncated, stats.CorruptFrames, stats.Generation, via)
	}
	r.bus.Drain()
	r.tr.logf("restarted n=%d live=%d %s", len(victims), len(r.live()), r.busLine())
	return nil
}

// SyncBytes probes every live node's anti-entropy cost in both modes
// (digest opener vs full-record push — node.SyncReplicasProbe encodes
// the envelopes without sending) and fails the run when digest/full
// exceeds MaxRatio. Run it on a converged store: the digest bytes then
// are the entire recurring cost of a no-diff sweep.
type SyncBytes struct{ MaxRatio float64 }

func (s SyncBytes) run(r *Run) error {
	var digest, full int
	for _, m := range r.live() {
		d, f := m.nd.SyncReplicasProbe()
		digest += d
		full += f
	}
	r.res.SyncDigestBytes += uint64(digest)
	r.res.SyncFullBytes += uint64(full)
	ratio := 0.0
	if full > 0 {
		ratio = float64(digest) / float64(full)
	}
	r.tr.logf("syncbytes digest=%d full=%d ratio=%.4f", digest, full, ratio)
	if full == 0 {
		r.fail("syncbytes: no records to probe (vacuous measurement)")
		return nil
	}
	if s.MaxRatio > 0 && ratio > s.MaxRatio {
		r.fail("syncbytes: digest/full = %d/%d = %.4f exceeds %.4f", digest, full, ratio, s.MaxRatio)
	}
	return nil
}

// ensure all step types satisfy Step.
var (
	_ Step = Join{}
	_ Step = Leave{}
	_ Step = Crash{}
	_ Step = Partition{}
	_ Step = Heal{}
	_ Step = Lossy{}
	_ Step = Straggler{}
	_ Step = ClearFaults{}
	_ Step = Workload{}
	_ Step = Settle{}
	_ Step = Check{}
	_ Step = Restart{}
	_ Step = SyncBytes{}
)
