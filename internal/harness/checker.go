package harness

import (
	"fmt"
	"sort"

	"voronet/internal/delaunay"
	"voronet/internal/geom"
	"voronet/internal/node"
	"voronet/internal/proto"
	"voronet/internal/stats"
)

// CheckReport is the outcome of one network-wide invariant check.
type CheckReport struct {
	// Nodes is the live population size at check time.
	Nodes int
	// ViewErrors counts live nodes whose Voronoi neighbour list differs
	// from the reference Delaunay triangulation of the live population.
	ViewErrors int
	// BacklinkErrors counts long-link / back-pointer violations: an
	// unresolved or dead link holder, a holder that is not the nearest
	// live node to the link's target, a link without its mirroring back
	// entry, or a back entry whose origin is dead or disagrees.
	BacklinkErrors int
	// StoreKeys is the number of tracked keys examined; StoreErrors
	// counts keys missing from their replica set or with diverged copies.
	StoreKeys, StoreErrors int
	// RouteTried/RouteOK count sampled greedy view-walks and how many
	// arrived at the true owner of their target.
	RouteTried, RouteOK int
	// MeanHops is the mean greedy hop count over successful walks.
	MeanHops float64

	hops    []float64
	details []string // "kind: description", first occurrence per kind kept
}

func (c *CheckReport) addDetail(kind, format string, args ...any) {
	c.details = append(c.details, kind+": "+fmt.Sprintf(format, args...))
}

// firstDetail returns the first recorded detail of the given kind.
func (c *CheckReport) firstDetail(kind string) string {
	for _, d := range c.details {
		if len(d) > len(kind) && d[:len(kind)] == kind {
			return d[len(kind)+2:]
		}
	}
	return "n/a"
}

// reference holds the ground-truth tessellation of the live population.
type reference struct {
	members []*member
	byAddr  map[string]*member
	nbrs    map[string][]proto.NodeInfo // reference Delaunay neighbours
}

// buildReference triangulates the live members' positions.
func (r *Run) buildReference() (*reference, error) {
	ref := &reference{byAddr: make(map[string]*member)}
	tr := delaunay.New()
	vertOf := make(map[string]delaunay.VertexID)
	byVert := make(map[delaunay.VertexID]*member)
	for _, m := range r.live() {
		v, err := tr.Insert(infoOf(m).Pos, delaunay.NoVertex)
		if err != nil {
			return nil, fmt.Errorf("reference insert %s: %w", m.addr, err)
		}
		ref.members = append(ref.members, m)
		ref.byAddr[m.addr] = m
		vertOf[m.addr] = v
		byVert[v] = m
	}
	ref.nbrs = make(map[string][]proto.NodeInfo, len(ref.members))
	for _, m := range ref.members {
		var lst []proto.NodeInfo
		for _, v := range tr.Neighbors(vertOf[m.addr], nil) {
			lst = append(lst, infoOf(byVert[v]))
		}
		sort.Slice(lst, func(i, j int) bool { return lst[i].Addr < lst[j].Addr })
		ref.nbrs[m.addr] = lst
	}
	return ref, nil
}

// ownerOf returns the live member nearest to p (ties to the lowest
// address, matching the routing tie-break).
func (ref *reference) ownerOf(p geom.Point) *member {
	var best *member
	bestD := 0.0
	for _, m := range ref.members {
		d := geom.Dist2(infoOf(m).Pos, p)
		if best == nil || d < bestD || (d == bestD && m.addr < best.addr) {
			best, bestD = m, d
		}
	}
	return best
}

// replicaSet returns the owner's R reference neighbours closest to key,
// ranked by (distance, address) exactly as the owner ranks them.
func (ref *reference) replicaSet(owner *member, key geom.Point, rf int) []*member {
	nbrs := append([]proto.NodeInfo(nil), ref.nbrs[owner.addr]...)
	sort.Slice(nbrs, func(i, j int) bool {
		di, dj := geom.Dist2(nbrs[i].Pos, key), geom.Dist2(nbrs[j].Pos, key)
		if di != dj {
			return di < dj
		}
		return nbrs[i].Addr < nbrs[j].Addr
	})
	if rf > len(nbrs) {
		rf = len(nbrs)
	}
	out := make([]*member, 0, rf)
	for _, v := range nbrs[:rf] {
		out = append(out, ref.byAddr[v.Addr])
	}
	return out
}

// runCheck executes every invariant aspect and returns the report. The
// checker reads node state through public accessors only — it never sends
// messages, so checking cannot perturb the run.
func (r *Run) runCheck(c Check) CheckReport {
	rep := CheckReport{}
	ref, err := r.buildReference()
	if err != nil {
		rep.addDetail("view", "reference build failed: %v", err)
		rep.ViewErrors++
		return rep
	}
	rep.Nodes = len(ref.members)

	if !c.SkipViews {
		r.checkViews(ref, &rep)
	}
	if !c.SkipBacklinks {
		r.checkBacklinks(ref, &rep)
	}
	if !c.SkipStore {
		r.checkStore(ref, &rep)
	}
	samples := c.Samples
	if samples <= 0 {
		samples = 40
	}
	r.checkRouting(ref, samples, &rep)
	return rep
}

// checkViews: every live node's vn must equal its reference Delaunay
// neighbourhood — the union of local views forms the global tessellation.
func (r *Run) checkViews(ref *reference, rep *CheckReport) {
	for _, m := range ref.members {
		got := m.nd.Neighbors()
		sort.Slice(got, func(i, j int) bool { return got[i].Addr < got[j].Addr })
		want := ref.nbrs[m.addr]
		ok := len(got) == len(want)
		if ok {
			for i := range got {
				if got[i].Addr != want[i].Addr {
					ok = false
					break
				}
			}
		}
		if !ok {
			rep.ViewErrors++
			rep.addDetail("view", "%s has %s, reference says %s", m.addr, addrList(got), addrList(want))
		}
	}
}

// checkBacklinks: every long link must resolve to the nearest live node
// to its target and be mirrored by a back entry there; every back entry
// must point back at a live origin that still holds the link.
func (r *Run) checkBacklinks(ref *reference, rep *CheckReport) {
	for _, m := range ref.members {
		links := m.nd.LongNeighbors()
		targets := m.nd.LongTargets()
		for j, l := range links {
			if l.Addr == "" {
				rep.BacklinkErrors++
				rep.addDetail("backlink", "%s link %d unresolved", m.addr, j)
				continue
			}
			h, live := ref.byAddr[l.Addr]
			if !live {
				rep.BacklinkErrors++
				rep.addDetail("backlink", "%s link %d held by dead %s", m.addr, j, l.Addr)
				continue
			}
			if j < len(targets) {
				tgt := targets[j]
				holderD := geom.Dist2(l.Pos, tgt)
				if best := ref.ownerOf(tgt); geom.Dist2(infoOf(best).Pos, tgt) < holderD {
					rep.BacklinkErrors++
					rep.addDetail("backlink", "%s link %d held by %s but %s is closer to its target", m.addr, j, l.Addr, best.addr)
				}
			}
			mirrored := false
			for _, bk := range h.nd.BackEntries() {
				if bk.Origin.Addr == m.addr && bk.Link == j {
					mirrored = true
					break
				}
			}
			if !mirrored {
				rep.BacklinkErrors++
				rep.addDetail("backlink", "%s link %d not mirrored at %s", m.addr, j, l.Addr)
			}
		}
		for _, bk := range m.nd.BackEntries() {
			o, live := ref.byAddr[bk.Origin.Addr]
			if !live {
				rep.BacklinkErrors++
				rep.addDetail("backlink", "%s holds back entry for dead origin %s", m.addr, bk.Origin.Addr)
				continue
			}
			ol := o.nd.LongNeighbors()
			if bk.Link >= len(ol) || ol[bk.Link].Addr != m.addr {
				rep.BacklinkErrors++
				rep.addDetail("backlink", "%s back entry link %d of %s not held by the origin", m.addr, bk.Link, bk.Origin.Addr)
			}
		}
	}
}

// checkStore: every tracked key must be present on its whole replica set
// — the owner and the R reference neighbours of the owner closest to the
// key — with identical version and value on every copy, matching the
// harness's expectation when the value is determinate.
func (r *Run) checkStore(ref *reference, rep *CheckReport) {
	for _, key := range r.sortedExpectedKeys() {
		exp := r.expected[key]
		rep.StoreKeys++
		owner := ref.ownerOf(key)
		required := append([]*member{owner}, ref.replicaSet(owner, key, r.scn.Replication)...)
		bad := false
		var v0 *proto.StoreRecord
		for _, m := range required {
			rec, ok := m.nd.StoreLookup(key)
			if !ok {
				rep.addDetail("store", "key=(%.6f,%.6f) missing at %s (owner %s)", key.X, key.Y, m.addr, owner.addr)
				bad = true
				continue
			}
			if v0 == nil {
				cp := rec
				v0 = &cp
			} else if rec.Version != v0.Version || rec.Deleted != v0.Deleted || string(rec.Value) != string(v0.Value) {
				rep.addDetail("store", "key=(%.6f,%.6f) diverged: v%d vs v%d", key.X, key.Y, rec.Version, v0.Version)
				bad = true
			}
		}
		if !bad && exp.sure && v0 != nil {
			if v0.Deleted || string(v0.Value) != string(exp.val) {
				rep.addDetail("store", "key=(%.6f,%.6f) holds %q, expected %q", key.X, key.Y, v0.Value, exp.val)
				bad = true
			}
		}
		if bad {
			rep.StoreErrors++
		}
	}
}

// checkRouting samples (origin, target) pairs and walks the greedy route
// over the nodes' actual views — vn ∪ cn ∪ long links, live entries only,
// exactly the candidate set handleRoute uses — requiring arrival at the
// true owner of the target.
func (r *Run) checkRouting(ref *reference, samples int, rep *CheckReport) {
	limit := 4*len(ref.members) + 20
	for i := 0; i < samples; i++ {
		origin := ref.members[r.rng.Intn(len(ref.members))]
		target := geom.Pt(r.rng.Float64(), r.rng.Float64())
		cur := origin
		hops := 0
		for ; hops <= limit; hops++ {
			next := nextHop(cur.nd, target, ref)
			if next == "" {
				break
			}
			cur = ref.byAddr[next]
		}
		rep.RouteTried++
		want := ref.ownerOf(target)
		arrived := cur.addr == want.addr ||
			geom.Dist2(infoOf(cur).Pos, target) == geom.Dist2(infoOf(want).Pos, target)
		if hops > limit {
			arrived = false
		}
		if arrived {
			rep.RouteOK++
			rep.hops = append(rep.hops, float64(hops))
		} else {
			rep.addDetail("route", "%s→(%.6f,%.6f) stalled at %s after %d hops (owner %s)",
				origin.addr, target.X, target.Y, cur.addr, hops, want.addr)
		}
	}
	if len(rep.hops) > 0 {
		var run stats.Running
		for _, h := range rep.hops {
			run.Add(h)
		}
		rep.MeanHops = run.Mean()
	}
}

// nextHop picks the strictly closer live view entry exactly as
// handleRoute would (ties to the lowest address), or "" when nd's region
// contains the target.
func nextHop(nd *node.Node, target geom.Point, ref *reference) string {
	self := nd.Info()
	best := self.Addr
	bestD := geom.Dist2(self.Pos, target)
	consider := func(c proto.NodeInfo) {
		if c.Addr == "" || c.Addr == self.Addr {
			return
		}
		if _, live := ref.byAddr[c.Addr]; !live {
			return
		}
		d := geom.Dist2(c.Pos, target)
		if d < bestD || (d == bestD && best != self.Addr && c.Addr < best) {
			best, bestD = c.Addr, d
		}
	}
	for _, v := range nd.Neighbors() {
		consider(v)
	}
	for _, v := range nd.CloseNeighbors() {
		consider(v)
	}
	for _, v := range nd.LongNeighbors() {
		consider(v)
	}
	if best == self.Addr {
		return ""
	}
	return best
}

func addrList(infos []proto.NodeInfo) string {
	out := "["
	for i, v := range infos {
		if i > 0 {
			out += " "
		}
		out += v.Addr
	}
	return out + "]"
}
