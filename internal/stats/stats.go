// Package stats provides the small statistical toolkit the benchmark
// harness uses to turn raw measurements into the rows and series of the
// paper's figures: integer histograms (Fig 5), running means (Fig 6, 8) and
// least-squares fits (the Fig 7 slope).
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Histogram counts integer observations.
type Histogram struct {
	counts map[int]int
	n      int
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{counts: make(map[int]int)}
}

// Add records one observation of value v.
func (h *Histogram) Add(v int) {
	h.counts[v]++
	h.n++
}

// Count returns the number of observations of value v.
func (h *Histogram) Count(v int) int { return h.counts[v] }

// N returns the total number of observations.
func (h *Histogram) N() int { return h.n }

// Mode returns the most frequent value (smallest wins ties) and its count.
func (h *Histogram) Mode() (value, count int) {
	first := true
	for v, c := range h.counts {
		if first || c > count || (c == count && v < value) {
			value, count = v, c
			first = false
		}
	}
	return
}

// Mean returns the mean observation.
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	s := 0.0
	for v, c := range h.counts {
		s += float64(v) * float64(c)
	}
	return s / float64(h.n)
}

// MassIn returns the fraction of observations with lo <= v <= hi.
func (h *Histogram) MassIn(lo, hi int) float64 {
	if h.n == 0 {
		return 0
	}
	s := 0
	for v, c := range h.counts {
		if v >= lo && v <= hi {
			s += c
		}
	}
	return float64(s) / float64(h.n)
}

// Values returns the observed values in increasing order.
func (h *Histogram) Values() []int {
	vs := make([]int, 0, len(h.counts))
	for v := range h.counts {
		vs = append(vs, v)
	}
	sort.Ints(vs)
	return vs
}

// String renders the histogram as "value\tcount" rows, the format of the
// paper's Fig 5 data.
func (h *Histogram) String() string {
	var b strings.Builder
	for _, v := range h.Values() {
		fmt.Fprintf(&b, "%d\t%d\n", v, h.counts[v])
	}
	return b.String()
}

// Running accumulates a stream of float64 observations.
type Running struct {
	n    int
	sum  float64
	sum2 float64
	min  float64
	max  float64
}

// Add records x.
func (r *Running) Add(x float64) {
	if r.n == 0 || x < r.min {
		r.min = x
	}
	if r.n == 0 || x > r.max {
		r.max = x
	}
	r.n++
	r.sum += x
	r.sum2 += x * x
}

// N returns the observation count.
func (r *Running) N() int { return r.n }

// Mean returns the sample mean.
func (r *Running) Mean() float64 {
	if r.n == 0 {
		return 0
	}
	return r.sum / float64(r.n)
}

// Std returns the sample standard deviation.
func (r *Running) Std() float64 {
	if r.n < 2 {
		return 0
	}
	m := r.Mean()
	v := (r.sum2 - float64(r.n)*m*m) / float64(r.n-1)
	if v < 0 {
		v = 0
	}
	return math.Sqrt(v)
}

// Min returns the smallest observation (0 when empty).
func (r *Running) Min() float64 { return r.min }

// Max returns the largest observation (0 when empty).
func (r *Running) Max() float64 { return r.max }

// Fit is a least-squares line y = Slope·x + Intercept.
type Fit struct {
	Slope     float64
	Intercept float64
	R2        float64
}

// LinearFit fits a least-squares line through (x[i], y[i]). This is how
// Fig 7 extracts the exponent of the poly-logarithmic routing cost: fitting
// log(H) against log(log(N)) yields slope ≈ 2.
func LinearFit(x, y []float64) Fit {
	n := float64(len(x))
	if len(x) != len(y) || len(x) < 2 {
		return Fit{}
	}
	var sx, sy, sxx, sxy, syy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
		sxx += x[i] * x[i]
		sxy += x[i] * y[i]
		syy += y[i] * y[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return Fit{}
	}
	slope := (n*sxy - sx*sy) / den
	intercept := (sy - slope*sx) / n
	// Coefficient of determination.
	ssTot := syy - sy*sy/n
	ssRes := 0.0
	for i := range x {
		d := y[i] - (slope*x[i] + intercept)
		ssRes += d * d
	}
	r2 := 1.0
	if ssTot > 0 {
		r2 = 1 - ssRes/ssTot
	}
	return Fit{Slope: slope, Intercept: intercept, R2: r2}
}

// ChiSquared returns the χ² statistic Σ (obs−exp)²/exp for observed bucket
// counts against expected counts. Buckets with non-positive expectation
// are skipped (they carry no information). Statistical tests compare the
// result against a critical value for their degrees of freedom — e.g. the
// kleinberg long-link sampling test checks its radius histogram against
// the d-harmonic law this way.
func ChiSquared(observed, expected []float64) float64 {
	if len(observed) != len(expected) {
		return math.Inf(1)
	}
	s := 0.0
	for i := range observed {
		if expected[i] <= 0 {
			continue
		}
		d := observed[i] - expected[i]
		s += d * d / expected[i]
	}
	return s
}

// Percentile returns the p-th percentile (0..100) of xs (which it sorts).
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sort.Float64s(xs)
	if p <= 0 {
		return xs[0]
	}
	if p >= 100 {
		return xs[len(xs)-1]
	}
	rank := p / 100 * float64(len(xs)-1)
	lo := int(rank)
	frac := rank - float64(lo)
	if lo+1 >= len(xs) {
		return xs[lo]
	}
	return xs[lo]*(1-frac) + xs[lo+1]*frac
}
