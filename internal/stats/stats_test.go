package stats

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestHistogram(t *testing.T) {
	h := NewHistogram()
	for _, v := range []int{6, 6, 6, 5, 7, 4} {
		h.Add(v)
	}
	if h.N() != 6 {
		t.Fatalf("N=%d", h.N())
	}
	if mode, c := h.Mode(); mode != 6 || c != 3 {
		t.Fatalf("mode %d/%d", mode, c)
	}
	if got := h.Mean(); math.Abs(got-34.0/6) > 1e-12 {
		t.Fatalf("mean %g", got)
	}
	if got := h.MassIn(5, 7); math.Abs(got-5.0/6) > 1e-12 {
		t.Fatalf("mass %g", got)
	}
	if h.Count(6) != 3 || h.Count(99) != 0 {
		t.Fatal("counts wrong")
	}
	s := h.String()
	if !strings.Contains(s, "6\t3\n") {
		t.Fatalf("render: %q", s)
	}
	vs := h.Values()
	for i := 1; i < len(vs); i++ {
		if vs[i-1] >= vs[i] {
			t.Fatal("values not sorted")
		}
	}
}

func TestRunning(t *testing.T) {
	var r Running
	for _, x := range []float64{1, 2, 3, 4} {
		r.Add(x)
	}
	if r.N() != 4 || r.Mean() != 2.5 || r.Min() != 1 || r.Max() != 4 {
		t.Fatalf("running stats wrong: %+v", r)
	}
	// Sample std of 1..4 = sqrt(5/3).
	if math.Abs(r.Std()-math.Sqrt(5.0/3)) > 1e-12 {
		t.Fatalf("std %g", r.Std())
	}
}

func TestLinearFitExact(t *testing.T) {
	x := []float64{0, 1, 2, 3}
	y := []float64{1, 3, 5, 7} // y = 2x + 1
	f := LinearFit(x, y)
	if math.Abs(f.Slope-2) > 1e-12 || math.Abs(f.Intercept-1) > 1e-12 {
		t.Fatalf("fit %+v", f)
	}
	if f.R2 < 1-1e-12 {
		t.Fatalf("R2 %g", f.R2)
	}
}

func TestLinearFitRecoversNoisyLine(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	f := func(slope, intercept float64) bool {
		slope = math.Mod(slope, 10)
		intercept = math.Mod(intercept, 10)
		if math.IsNaN(slope) || math.IsNaN(intercept) {
			return true
		}
		var xs, ys []float64
		for i := 0; i < 200; i++ {
			x := float64(i) / 10
			xs = append(xs, x)
			ys = append(ys, slope*x+intercept+rng.NormFloat64()*0.01)
		}
		fit := LinearFit(xs, ys)
		return math.Abs(fit.Slope-slope) < 0.01 && math.Abs(fit.Intercept-intercept) < 0.05
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestLinearFitDegenerate(t *testing.T) {
	if f := LinearFit([]float64{1}, []float64{2}); f.Slope != 0 {
		t.Fatal("single point must not fit")
	}
	if f := LinearFit([]float64{1, 1}, []float64{2, 3}); f.Slope != 0 {
		t.Fatal("vertical line must not fit")
	}
	if f := LinearFit([]float64{1, 2}, []float64{5, 5}); f.Slope != 0 || f.R2 != 1 {
		t.Fatalf("horizontal line: %+v", f)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	if got := Percentile(xs, 0); got != 1 {
		t.Fatalf("p0 %g", got)
	}
	if got := Percentile(xs, 100); got != 5 {
		t.Fatalf("p100 %g", got)
	}
	if got := Percentile(xs, 50); got != 3 {
		t.Fatalf("p50 %g", got)
	}
	if got := Percentile(xs, 25); got != 2 {
		t.Fatalf("p25 %g", got)
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Fatalf("empty %g", got)
	}
}

func TestChiSquared(t *testing.T) {
	// Perfect agreement scores zero.
	if got := ChiSquared([]float64{10, 20, 30}, []float64{10, 20, 30}); got != 0 {
		t.Fatalf("exact fit scored %g", got)
	}
	// One bucket off by its own expectation contributes exactly 1·exp/exp.
	if got := ChiSquared([]float64{20, 20}, []float64{10, 20}); got != 10 {
		t.Fatalf("single deviation scored %g, want 10", got)
	}
	// Zero-expectation buckets are skipped, not divided by.
	if got := ChiSquared([]float64{5, 10}, []float64{0, 10}); got != 0 {
		t.Fatalf("zero-expectation bucket scored %g", got)
	}
	// Length mismatch is an unconditional rejection.
	if got := ChiSquared([]float64{1}, []float64{1, 2}); !math.IsInf(got, 1) {
		t.Fatalf("length mismatch scored %g", got)
	}
}
