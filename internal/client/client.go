// Package client is a thin pipelined VoroNet client: it multiplexes any
// number of in-flight PUT / GET / DELETE / point-query operations over a
// single connection to one overlay member (the gateway), without joining
// the overlay itself.
//
// The client owns a transport endpoint whose address rides in each routed
// envelope's Origin field, so answers travel from the answering node
// straight back to the client — the gateway forwards requests but never
// relays replies. Requests are correlated by QueryID through the same
// Inflight table the node runtime uses; each request carries its own
// deadline, so a crashed owner fails one operation, not the connection.
//
// This replaces dial-per-operation command loops: over TCP all requests
// to the gateway share one cached connection (the transport's group
// commit batches their frames), and responses are demultiplexed as they
// arrive, so slow operations never head-of-line-block fast ones.
package client

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"voronet/internal/geom"
	"voronet/internal/proto"
	"voronet/internal/store"
	"voronet/internal/transport"
)

// DefaultTimeout is the per-request deadline when Options.Timeout is zero.
const DefaultTimeout = 30 * time.Second

// DefaultRetryBackoff is the first retry delay when Options.Retries > 0
// and Options.RetryBackoff is zero. Each further attempt doubles it.
const DefaultRetryBackoff = 50 * time.Millisecond

// Options tunes Dial.
type Options struct {
	// Listen is the TCP address the client receives replies on
	// ("127.0.0.1:0" when empty — note the reply path requires the
	// answering nodes to be able to dial it back).
	Listen string
	// Timeout is the per-request deadline (DefaultTimeout when zero).
	Timeout time.Duration
	// Retries is how many times an operation refused with
	// store.ErrOverloaded (an admission-control shed, not a failure) is
	// transparently re-dispatched before the error reaches the caller.
	// Zero disables retrying.
	Retries int
	// RetryBackoff is the delay before the first retry, doubling on each
	// further attempt (DefaultRetryBackoff when zero and Retries > 0).
	RetryBackoff time.Duration
	// GobWire sends requests with the legacy gob codec instead of the
	// binary wire format — the A/B baseline knob, mirroring
	// node.Config.GobWire. Replies decode either way.
	GobWire bool
}

// Client is a pipelined connection to a VoroNet overlay. Methods are safe
// for concurrent use; any number of operations may be in flight at once.
type Client struct {
	ep       transport.Endpoint
	ownEP    bool
	gateway  string
	timeout  time.Duration
	inflight *store.Inflight
	self     proto.NodeInfo
	retries  int
	backoff  time.Duration
	retried  atomic.Uint64
	gobWire  bool

	mu     sync.Mutex
	closed bool
}

// Dial opens a pipelined client to the overlay member at gateway,
// listening for replies on its own TCP endpoint.
func Dial(gateway string, opts Options) (*Client, error) {
	listen := opts.Listen
	if listen == "" {
		listen = "127.0.0.1:0"
	}
	ep, err := transport.ListenTCP(listen)
	if err != nil {
		return nil, err
	}
	c := New(ep, gateway, opts.Timeout)
	c.SetRetryPolicy(opts.Retries, opts.RetryBackoff)
	c.gobWire = opts.GobWire
	c.ownEP = true
	return c, nil
}

// New builds a client over an existing endpoint (a simnet Bus attachment
// in tests, or a shared TCP endpoint). The client installs the endpoint's
// handler; the endpoint is not closed by Client.Close.
func New(ep transport.Endpoint, gateway string, timeout time.Duration) *Client {
	if timeout <= 0 {
		timeout = DefaultTimeout
	}
	c := &Client{
		ep:       ep,
		gateway:  gateway,
		timeout:  timeout,
		inflight: store.NewInflight(),
		self:     proto.NodeInfo{Addr: ep.Addr()},
	}
	ep.SetHandler(c.handle)
	return c
}

// SetRetryPolicy configures transparent retrying of overload sheds for a
// client built with New (Dial wires it from Options): up to retries
// re-dispatches per operation, the first after backoff, doubling each
// attempt. Call before issuing operations.
func (c *Client) SetRetryPolicy(retries int, backoff time.Duration) {
	if retries > 0 && backoff <= 0 {
		backoff = DefaultRetryBackoff
	}
	c.retries, c.backoff = retries, backoff
}

// Retried returns how many overload-shed retries this client has issued.
func (c *Client) Retried() uint64 { return c.retried.Load() }

// SetGobWire switches the request codec for a client built with New
// (Dial wires it from Options.GobWire). Call before issuing operations.
func (c *Client) SetGobWire(on bool) { c.gobWire = on }

// Addr returns the client's reply address.
func (c *Client) Addr() string { return c.self.Addr }

// Pending returns the number of operations awaiting a reply.
func (c *Client) Pending() int { return c.inflight.Pending() }

// Close tears the client down. Replies arriving afterwards are dropped;
// in-flight operations fail via their own deadlines. The endpoint is
// closed only if Dial created it.
func (c *Client) Close() error {
	c.mu.Lock()
	c.closed = true
	own := c.ownEP
	c.mu.Unlock()
	if own {
		return c.ep.Close()
	}
	return nil
}

// handle demultiplexes one inbound reply frame onto its waiting request.
func (c *Client) handle(from string, payload []byte) {
	env, err := proto.Decode(payload)
	if err != nil {
		return // malformed frame: drop, the request's deadline reports it
	}
	switch env.Type {
	case proto.KindStoreReply:
		r := store.Reply{
			Found: env.Found, Value: env.Value, Version: env.Version,
			Owner: env.From, Hops: env.Hops, Path: env.Path,
		}
		if env.Shed {
			// The owner refused the op under overload: an explicit
			// retry-later error, which the retry policy may absorb.
			r.Err = store.ErrOverloaded
		}
		c.inflight.Resolve(env.QueryID, r)
	case proto.KindQueryAnswer:
		// A point query's answer: the owner itself is the payload.
		c.inflight.Resolve(env.QueryID, store.Reply{
			Found: true, Owner: env.From, Hops: env.Hops, Path: env.Path,
		})
	}
}

// dispatch registers cb under a fresh request ID and sends one routed
// envelope to the gateway. A failed send unregisters the callback and
// returns the error — cb fires exactly once (reply or deadline) iff
// dispatch returned nil.
func (c *Client) dispatch(purpose proto.RoutedPurpose, key geom.Point, value []byte, cb func(store.Reply)) error {
	if cb == nil {
		cb = func(store.Reply) {}
	}
	return c.dispatchAttempt(purpose, key, value, cb, 0)
}

// dispatchAttempt is dispatch with retry bookkeeping: while attempts
// remain, an ErrOverloaded reply (origin-gateway or owner shed) is
// absorbed and the operation re-dispatched after an exponentially grown
// backoff instead of reaching the caller. Each attempt is a fresh
// request with its own deadline; the caller's callback still fires
// exactly once.
func (c *Client) dispatchAttempt(purpose proto.RoutedPurpose, key geom.Point, value []byte, cb func(store.Reply), attempt int) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return transport.ErrClosed
	}
	c.mu.Unlock()
	inner := cb
	if attempt < c.retries {
		inner = func(r store.Reply) {
			if !errors.Is(r.Err, store.ErrOverloaded) {
				cb(r)
				return
			}
			c.retried.Add(1)
			time.AfterFunc(c.backoff<<attempt, func() {
				if err := c.dispatchAttempt(purpose, key, value, cb, attempt+1); err != nil {
					cb(store.Reply{Err: err})
				}
			})
		}
	}
	id := c.inflight.Add(inner, c.timeout)
	env := &proto.Envelope{
		Type:    proto.KindRoute,
		Purpose: purpose,
		Target:  key,
		Value:   value,
		From:    c.self,
		Origin:  c.self,
		QueryID: id,
	}
	// Encode into a pooled buffer: Endpoint.Send never retains the
	// payload after it returns (see transport.Endpoint), so the buffer
	// recycles as soon as the outcome is known. GobWire selects the
	// legacy codec for A/B runs; Decode auto-detects, so a gob client
	// interoperates with a binary overlay and vice versa.
	wb := proto.GetBuf()
	defer wb.Put()
	b, err := proto.AppendEncodeMode(wb.B[:0], env, c.gobWire)
	if err != nil {
		c.inflight.Cancel(id)
		return err
	}
	wb.B = b
	if err := c.ep.Send(c.gateway, b); err != nil {
		c.inflight.Cancel(id)
		return err
	}
	return nil
}

// Put stores value under key; cb fires with the owner's ack (or a
// deadline error).
func (c *Client) Put(key geom.Point, value []byte, cb func(store.Reply)) error {
	return c.dispatch(proto.PurposeStorePut, key, value, cb)
}

// Get fetches the record under key; cb fires with the first answer (owner
// or passing replica).
func (c *Client) Get(key geom.Point, cb func(store.Reply)) error {
	return c.dispatch(proto.PurposeStoreGet, key, nil, cb)
}

// Delete tombstones the record under key.
func (c *Client) Delete(key geom.Point, cb func(store.Reply)) error {
	return c.dispatch(proto.PurposeStoreDelete, key, nil, cb)
}

// Query resolves the overlay node owning point p's Voronoi region; cb's
// Reply carries it in Owner.
func (c *Client) Query(p geom.Point, cb func(store.Reply)) error {
	return c.dispatch(proto.PurposeQuery, p, nil, cb)
}

// sync runs op and waits for its reply.
func (c *Client) sync(op func(cb func(store.Reply)) error) (store.Reply, error) {
	ch := make(chan store.Reply, 1)
	if err := op(func(r store.Reply) { ch <- r }); err != nil {
		return store.Reply{}, err
	}
	r := <-ch
	return r, r.Err
}

// PutSync is Put, awaited.
func (c *Client) PutSync(key geom.Point, value []byte) error {
	_, err := c.sync(func(cb func(store.Reply)) error { return c.Put(key, value, cb) })
	return err
}

// GetSync is Get, awaited; store.ErrNotFound reports a missing key.
func (c *Client) GetSync(key geom.Point) ([]byte, error) {
	r, err := c.sync(func(cb func(store.Reply)) error { return c.Get(key, cb) })
	if err != nil {
		return nil, err
	}
	if !r.Found {
		return nil, store.ErrNotFound
	}
	return r.Value, nil
}

// DeleteSync is Delete, awaited; store.ErrNotFound reports a missing key.
func (c *Client) DeleteSync(key geom.Point) error {
	r, err := c.sync(func(cb func(store.Reply)) error { return c.Delete(key, cb) })
	if err != nil {
		return err
	}
	if !r.Found {
		return store.ErrNotFound
	}
	return nil
}

// QuerySync is Query, awaited: the owner of p's region and the hop count
// of the answer.
func (c *Client) QuerySync(p geom.Point) (proto.NodeInfo, int, error) {
	r, err := c.sync(func(cb func(store.Reply)) error { return c.Query(p, cb) })
	if err != nil {
		return proto.NodeInfo{}, 0, err
	}
	return r.Owner, r.Hops, nil
}
