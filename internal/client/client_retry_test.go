package client_test

import (
	"errors"
	"sync"
	"testing"
	"time"

	"voronet/internal/client"
	"voronet/internal/geom"
	"voronet/internal/proto"
	"voronet/internal/store"
	"voronet/internal/transport"
)

// shedGateway is a scripted overlay stand-in on the bus: it answers each
// routed store op with an overload shed until its budget runs out, then
// with a normal ack. It lets the retry tests control exactly how many
// sheds a single logical operation sees.
type shedGateway struct {
	ep    transport.Endpoint
	mu    sync.Mutex
	sheds int // remaining replies to refuse
	seen  int // routed requests received
}

func newShedGateway(t *testing.T, bus *transport.Bus, sheds int) *shedGateway {
	t.Helper()
	ep, err := bus.Attach("gw")
	if err != nil {
		t.Fatal(err)
	}
	g := &shedGateway{ep: ep, sheds: sheds}
	ep.SetHandler(func(from string, payload []byte) {
		env, err := proto.Decode(payload)
		if err != nil || env.Type != proto.KindRoute {
			return
		}
		reply := &proto.Envelope{
			Type:    proto.KindStoreReply,
			From:    proto.NodeInfo{Addr: "gw"},
			QueryID: env.QueryID,
		}
		g.mu.Lock()
		g.seen++
		if g.sheds > 0 {
			g.sheds--
			reply.Shed = true
		} else {
			reply.Found = true
			reply.Version = 1
		}
		g.mu.Unlock()
		b, err := proto.Encode(reply)
		if err != nil {
			t.Errorf("encode reply: %v", err)
			return
		}
		_ = g.ep.Send(env.Origin.Addr, b)
	})
	return g
}

func (g *shedGateway) requests() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.seen
}

// drainUntil pumps the bus (retry timers are wall-clock, so delivery
// alternates with real sleeps) until done reports true or the deadline
// passes.
func drainUntil(t *testing.T, bus *transport.Bus, done func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !done() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached before deadline")
		}
		bus.Drain()
		time.Sleep(time.Millisecond)
	}
}

// TestClientRetriesOverloadShed: an op refused with an overload shed is
// transparently re-dispatched and eventually succeeds, with the shed
// count visible via Retried().
func TestClientRetriesOverloadShed(t *testing.T) {
	bus := transport.NewBus()
	gw := newShedGateway(t, bus, 2)
	cep, err := bus.Attach("client")
	if err != nil {
		t.Fatal(err)
	}
	cl := client.New(cep, "gw", 2*time.Second)
	defer cl.Close()
	cl.SetRetryPolicy(3, time.Millisecond)

	var mu sync.Mutex
	var got *store.Reply
	if err := cl.Put(geom.Pt(0.5, 0.5), []byte("v"), func(r store.Reply) {
		mu.Lock()
		got = &r
		mu.Unlock()
	}); err != nil {
		t.Fatal(err)
	}
	drainUntil(t, bus, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return got != nil
	})
	if got.Err != nil || !got.Found {
		t.Fatalf("retried put reply = %+v, want success", *got)
	}
	if n := cl.Retried(); n != 2 {
		t.Fatalf("Retried() = %d, want 2 (one per shed)", n)
	}
	if n := gw.requests(); n != 3 {
		t.Fatalf("gateway saw %d requests, want 3 (2 sheds + success)", n)
	}
	if cl.Pending() != 0 {
		t.Fatalf("pending = %d after resolution, want 0", cl.Pending())
	}
}

// TestClientRetryBudgetExhausted: when every attempt is shed, the caller
// sees store.ErrOverloaded exactly once, after retries+1 dispatches.
func TestClientRetryBudgetExhausted(t *testing.T) {
	bus := transport.NewBus()
	gw := newShedGateway(t, bus, 100)
	cep, err := bus.Attach("client")
	if err != nil {
		t.Fatal(err)
	}
	cl := client.New(cep, "gw", 2*time.Second)
	defer cl.Close()
	cl.SetRetryPolicy(2, time.Millisecond)

	var mu sync.Mutex
	calls := 0
	var last store.Reply
	if err := cl.Put(geom.Pt(0.25, 0.75), []byte("v"), func(r store.Reply) {
		mu.Lock()
		calls++
		last = r
		mu.Unlock()
	}); err != nil {
		t.Fatal(err)
	}
	drainUntil(t, bus, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return calls > 0
	})
	// Give any stray extra callback a moment to fire before asserting
	// exactly-once.
	time.Sleep(10 * time.Millisecond)
	bus.Drain()
	mu.Lock()
	defer mu.Unlock()
	if calls != 1 {
		t.Fatalf("callback fired %d times, want exactly once", calls)
	}
	if !errors.Is(last.Err, store.ErrOverloaded) {
		t.Fatalf("reply err = %v, want store.ErrOverloaded", last.Err)
	}
	if n := cl.Retried(); n != 2 {
		t.Fatalf("Retried() = %d, want 2", n)
	}
	if n := gw.requests(); n != 3 {
		t.Fatalf("gateway saw %d requests, want 3 (initial + 2 retries)", n)
	}
}

// TestClientNoRetryByDefault: without a retry policy a shed surfaces as
// store.ErrOverloaded on the first reply — the default client never
// re-dispatches on its own.
func TestClientNoRetryByDefault(t *testing.T) {
	bus := transport.NewBus()
	gw := newShedGateway(t, bus, 1)
	cep, err := bus.Attach("client")
	if err != nil {
		t.Fatal(err)
	}
	cl := client.New(cep, "gw", 2*time.Second)
	defer cl.Close()

	var mu sync.Mutex
	var got *store.Reply
	if err := cl.Put(geom.Pt(0.1, 0.9), []byte("v"), func(r store.Reply) {
		mu.Lock()
		got = &r
		mu.Unlock()
	}); err != nil {
		t.Fatal(err)
	}
	bus.Drain()
	mu.Lock()
	defer mu.Unlock()
	if got == nil {
		t.Fatal("no reply after drain")
	}
	if !errors.Is(got.Err, store.ErrOverloaded) {
		t.Fatalf("reply err = %v, want store.ErrOverloaded", got.Err)
	}
	if n := cl.Retried(); n != 0 {
		t.Fatalf("Retried() = %d, want 0", n)
	}
	if n := gw.requests(); n != 1 {
		t.Fatalf("gateway saw %d requests, want 1", n)
	}
}
