package client_test

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"voronet/internal/client"
	"voronet/internal/geom"
	"voronet/internal/node"
	"voronet/internal/store"
	"voronet/internal/transport"
)

// busOverlay builds n overlay members on a simnet bus and returns them
// with the bus. The bus is drained manually, so tests use the client's
// async API and drain between dispatch and assertion.
func busOverlay(t *testing.T, n int) (*transport.Bus, []*node.Node) {
	t.Helper()
	bus := transport.NewBus()
	rng := rand.New(rand.NewSource(7))
	nodes := make([]*node.Node, 0, n)
	for i := 0; i < n; i++ {
		ep, err := bus.Attach(fmt.Sprintf("n%03d", i))
		if err != nil {
			t.Fatal(err)
		}
		nd := node.New(ep, geom.Pt(rng.Float64(), rng.Float64()), node.Config{
			DMin: 0.05, LongLinks: 1, Seed: int64(i),
			QueryTimeout: 365 * 24 * time.Hour, StoreTimeout: 365 * 24 * time.Hour,
		})
		if i == 0 {
			if err := nd.Bootstrap(); err != nil {
				t.Fatal(err)
			}
		} else {
			if err := nd.Join(nodes[rng.Intn(len(nodes))].Info().Addr); err != nil {
				t.Fatal(err)
			}
			bus.Drain()
			if !nd.Joined() {
				t.Fatalf("node %d failed to join", i)
			}
		}
		nodes = append(nodes, nd)
	}
	return bus, nodes
}

// TestClientOverBus drives the full client surface — pipelined PUT, GET,
// DELETE, point query — through a gateway member on the deterministic
// simnet, with many requests in flight at once.
func TestClientOverBus(t *testing.T) {
	bus, nodes := busOverlay(t, 10)
	cep, err := bus.Attach("client")
	if err != nil {
		t.Fatal(err)
	}
	cl := client.New(cep, nodes[3].Info().Addr, 0)
	defer cl.Close()

	rng := rand.New(rand.NewSource(11))
	const n = 24
	keys := make([]geom.Point, n)
	var mu sync.Mutex
	acks := map[int]store.Reply{}
	for i := range keys {
		keys[i] = geom.Pt(rng.Float64(), rng.Float64())
		i := i
		if err := cl.Put(keys[i], []byte(fmt.Sprintf("v-%02d", i)), func(r store.Reply) {
			mu.Lock()
			acks[i] = r
			mu.Unlock()
		}); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	if cl.Pending() != n {
		t.Fatalf("pending = %d before drain, want %d in flight at once", cl.Pending(), n)
	}
	bus.Drain()
	if cl.Pending() != 0 {
		t.Fatalf("pending = %d after drain, want 0", cl.Pending())
	}
	for i := 0; i < n; i++ {
		r, ok := acks[i]
		if !ok || r.Err != nil || !r.Found {
			t.Fatalf("put %d ack = %+v (present %v)", i, r, ok)
		}
	}

	gets := map[int]store.Reply{}
	for i := range keys {
		i := i
		if err := cl.Get(keys[i], func(r store.Reply) {
			mu.Lock()
			gets[i] = r
			mu.Unlock()
		}); err != nil {
			t.Fatalf("get %d: %v", i, err)
		}
	}
	bus.Drain()
	for i := 0; i < n; i++ {
		r := gets[i]
		if r.Err != nil || !r.Found || string(r.Value) != fmt.Sprintf("v-%02d", i) {
			t.Fatalf("get %d = %+v", i, r)
		}
	}

	// Query: the answer names the true owner (closest member to the point).
	p := keys[0]
	var q store.Reply
	if err := cl.Query(p, func(r store.Reply) { q = r }); err != nil {
		t.Fatal(err)
	}
	bus.Drain()
	if q.Err != nil || q.Owner.Addr == "" {
		t.Fatalf("query = %+v", q)
	}
	best, bestD := "", 0.0
	for _, nd := range nodes {
		if d := geom.Dist2(nd.Info().Pos, p); best == "" || d < bestD {
			best, bestD = nd.Info().Addr, d
		}
	}
	if q.Owner.Addr != best {
		t.Fatalf("query owner = %s, want %s", q.Owner.Addr, best)
	}

	// Delete, then the GET reports not-found.
	var del, miss store.Reply
	if err := cl.Delete(keys[0], func(r store.Reply) { del = r }); err != nil {
		t.Fatal(err)
	}
	bus.Drain()
	if del.Err != nil || !del.Found {
		t.Fatalf("delete = %+v", del)
	}
	if err := cl.Get(keys[0], func(r store.Reply) { miss = r }); err != nil {
		t.Fatal(err)
	}
	bus.Drain()
	if miss.Err != nil || miss.Found {
		t.Fatalf("get after delete = %+v, want not found", miss)
	}
}

// TestClientFailedSendCancels: a dispatch the transport refuses leaves no
// orphaned inflight entry (the callback never fires, the error is the
// caller's signal).
func TestClientFailedSendCancels(t *testing.T) {
	bus := transport.NewBus()
	cep, err := bus.Attach("client")
	if err != nil {
		t.Fatal(err)
	}
	cl := client.New(cep, "nowhere", 0)
	defer cl.Close()
	err = cl.Put(geom.Pt(0.5, 0.5), []byte("x"), func(store.Reply) {
		t.Error("callback fired for a failed send")
	})
	if !errors.Is(err, transport.ErrUnknownPeer) {
		t.Fatalf("err = %v, want ErrUnknownPeer", err)
	}
	if cl.Pending() != 0 {
		t.Fatalf("pending = %d after failed send, want 0", cl.Pending())
	}
}

// TestClientPipelinedTCP is the end-to-end check over real sockets: one
// pipelined client, many concurrent goroutines sharing it, a small TCP
// overlay. Run under -race in CI.
func TestClientPipelinedTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("TCP client test skipped in -short")
	}
	const members = 5
	rng := rand.New(rand.NewSource(23))
	cfg := func(i int) node.Config {
		return node.Config{
			DMin: 0.05, LongLinks: 2, Seed: int64(i), Replication: 2,
			StoreTimeout: 5 * time.Second, QueryTimeout: 5 * time.Second,
		}
	}
	var nodes []*node.Node
	var eps []transport.Endpoint
	defer func() {
		for _, ep := range eps {
			ep.Close()
		}
	}()
	for i := 0; i < members; i++ {
		ep, err := transport.ListenTCP("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		eps = append(eps, ep)
		nd := node.New(ep, geom.Pt(rng.Float64(), rng.Float64()), cfg(i))
		if i == 0 {
			if err := nd.Bootstrap(); err != nil {
				t.Fatal(err)
			}
		} else {
			if err := nd.Join(nodes[0].Info().Addr); err != nil {
				t.Fatal(err)
			}
			deadline := time.Now().Add(10 * time.Second)
			for !nd.Joined() {
				if time.Now().After(deadline) {
					t.Fatalf("node %d failed to join", i)
				}
				time.Sleep(5 * time.Millisecond)
			}
		}
		nodes = append(nodes, nd)
	}

	cl, err := client.Dial(nodes[1].Info().Addr, client.Options{Timeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	const goroutines, opsEach = 8, 12
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*opsEach)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + g)))
			for i := 0; i < opsEach; i++ {
				key := geom.Pt(rng.Float64(), rng.Float64())
				want := fmt.Sprintf("g%d-%d", g, i)
				if err := cl.PutSync(key, []byte(want)); err != nil {
					errs <- fmt.Errorf("put: %w", err)
					return
				}
				got, err := cl.GetSync(key)
				if err != nil {
					errs <- fmt.Errorf("get: %w", err)
					return
				}
				if string(got) != want {
					errs <- fmt.Errorf("get = %q, want %q", got, want)
					return
				}
				if _, _, err := cl.QuerySync(key); err != nil {
					errs <- fmt.Errorf("query: %w", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if cl.Pending() != 0 {
		t.Fatalf("pending = %d after all ops resolved, want 0", cl.Pending())
	}
}
