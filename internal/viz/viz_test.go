package viz

import (
	"math/rand"
	"strings"
	"testing"

	"voronet/internal/core"
	"voronet/internal/geom"
)

func buildOverlay(t *testing.T, n int) (*core.Overlay, []core.ObjectID) {
	t.Helper()
	ov := core.New(core.Config{NMax: 1000, Seed: 3})
	rng := rand.New(rand.NewSource(4))
	var ids []core.ObjectID
	for len(ids) < n {
		id, err := ov.Insert(geom.Pt(rng.Float64(), rng.Float64()))
		if err != nil {
			continue
		}
		ids = append(ids, id)
	}
	return ov, ids
}

func TestWriteSVGContainsAllLayers(t *testing.T) {
	ov, ids := buildOverlay(t, 60)
	path, err := RoutePath(ov, ids[0], ids[30])
	if err != nil {
		t.Fatal(err)
	}
	if len(path) < 2 || path[0] != ids[0] || path[len(path)-1] != ids[30] {
		t.Fatalf("route path endpoints wrong: %v", path)
	}

	var b strings.Builder
	opt := DefaultOptions()
	opt.DrawLongLinks = true
	opt.Route = path
	opt.Title = "test overlay"
	if err := WriteSVG(&b, ov, opt); err != nil {
		t.Fatal(err)
	}
	svg := b.String()
	for _, want := range []string{
		"<svg", "</svg>", "<polygon", "<line", "<circle", "<polyline", "test overlay",
	} {
		if !strings.Contains(svg, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	// One circle per object.
	if got := strings.Count(svg, "<circle"); got != 60 {
		t.Errorf("%d circles for 60 objects", got)
	}
	// Polyline points count equals route length.
	if !strings.Contains(svg, `stroke="#c02020"`) {
		t.Error("route layer missing")
	}
}

func TestWriteSVGMinimalOptions(t *testing.T) {
	ov, _ := buildOverlay(t, 10)
	var b strings.Builder
	if err := WriteSVG(&b, ov, Options{}); err != nil {
		t.Fatal(err)
	}
	svg := b.String()
	if strings.Contains(svg, "<polygon") || strings.Contains(svg, "<line") {
		t.Error("layers drawn despite being disabled")
	}
	if !strings.Contains(svg, `width="800"`) {
		t.Error("default size not applied")
	}
}

func TestRoutePathErrors(t *testing.T) {
	ov, ids := buildOverlay(t, 10)
	if _, err := RoutePath(ov, ids[0], 424242); err == nil {
		t.Fatal("route to missing object must fail")
	}
	// Self route.
	p, err := RoutePath(ov, ids[3], ids[3])
	if err != nil || len(p) != 1 {
		t.Fatalf("self route: %v %v", p, err)
	}
}

func TestDegreeLegend(t *testing.T) {
	ov, _ := buildOverlay(t, 30)
	leg := DegreeLegend(ov)
	if !strings.HasPrefix(leg, "degree:") || !strings.Contains(leg, "×") {
		t.Fatalf("legend: %q", leg)
	}
}
