// Package viz renders VoroNet overlays as standalone SVG documents:
// objects, Delaunay edges, Voronoi cell boundaries, long-range links and
// routes. It exists for debugging and documentation — a tessellation bug
// or a routing pathology is obvious at a glance — and mirrors the
// figures of the paper (Fig 1–3 are exactly such drawings).
package viz

import (
	"fmt"
	"io"
	"sort"

	"voronet/internal/core"
	"voronet/internal/geom"
)

// Options controls the rendering.
type Options struct {
	// SizePx is the output width and height in pixels (default 800).
	SizePx int
	// DrawDelaunay draws the object-to-object (Voronoi neighbour) edges.
	DrawDelaunay bool
	// DrawVoronoi draws the Voronoi cell boundaries.
	DrawVoronoi bool
	// DrawLongLinks draws each object's long-range links.
	DrawLongLinks bool
	// Route, if non-empty, is a sequence of object IDs drawn as a bold
	// polyline (use RoutePath to capture one).
	Route []core.ObjectID
	// Title is an optional caption.
	Title string
}

// DefaultOptions renders Delaunay edges and cells at 800×800.
func DefaultOptions() Options {
	return Options{SizePx: 800, DrawDelaunay: true, DrawVoronoi: true}
}

// WriteSVG renders the overlay to w.
func WriteSVG(w io.Writer, ov *core.Overlay, opt Options) error {
	if opt.SizePx <= 0 {
		opt.SizePx = 800
	}
	s := float64(opt.SizePx)
	// The attribute space is the unit square; SVG y grows downward, so
	// flip the y axis to keep the mathematical orientation.
	tx := func(p geom.Point) (float64, float64) { return p.X * s, (1 - p.Y) * s }

	var err error
	pr := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	pr(`<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		opt.SizePx, opt.SizePx, opt.SizePx, opt.SizePx)
	pr(`<rect width="%d" height="%d" fill="white"/>`+"\n", opt.SizePx, opt.SizePx)

	// Voronoi cells (clipped to the drawing square).
	if opt.DrawVoronoi {
		pr(`<g stroke="#b9d4ef" stroke-width="0.7" fill="none">` + "\n")
		ov.ForEachObject(func(o *core.Object) bool {
			poly := ov.Cell(o.ID)
			if len(poly) < 3 {
				return true
			}
			pr(`<polygon points="`)
			for _, p := range poly {
				x, y := tx(p.ClampUnitSquare())
				pr("%.2f,%.2f ", x, y)
			}
			pr(`"/>` + "\n")
			return true
		})
		pr("</g>\n")
	}

	// Delaunay edges (each drawn once).
	if opt.DrawDelaunay {
		pr(`<g stroke="#888888" stroke-width="0.8">` + "\n")
		var buf []core.ObjectID
		ov.ForEachObject(func(o *core.Object) bool {
			buf, _ = ov.VoronoiNeighbors(o.ID, buf)
			for _, nid := range buf {
				if nid <= o.ID {
					continue
				}
				q, _ := ov.Position(nid)
				x1, y1 := tx(o.Pos)
				x2, y2 := tx(q)
				pr(`<line x1="%.2f" y1="%.2f" x2="%.2f" y2="%.2f"/>`+"\n", x1, y1, x2, y2)
			}
			return true
		})
		pr("</g>\n")
	}

	// Long-range links.
	if opt.DrawLongLinks {
		pr(`<g stroke="#e08030" stroke-width="0.6" stroke-dasharray="4 3" opacity="0.7">` + "\n")
		ov.ForEachObject(func(o *core.Object) bool {
			ln, _ := ov.LongNeighbors(o.ID)
			for _, nid := range ln {
				if nid == o.ID || nid == core.NoObject {
					continue
				}
				q, _ := ov.Position(nid)
				x1, y1 := tx(o.Pos)
				x2, y2 := tx(q)
				pr(`<line x1="%.2f" y1="%.2f" x2="%.2f" y2="%.2f"/>`+"\n", x1, y1, x2, y2)
			}
			return true
		})
		pr("</g>\n")
	}

	// Route overlay.
	if len(opt.Route) > 1 {
		pr(`<polyline fill="none" stroke="#c02020" stroke-width="2.2" points="`)
		for _, id := range opt.Route {
			p, perr := ov.Position(id)
			if perr != nil {
				continue
			}
			x, y := tx(p)
			pr("%.2f,%.2f ", x, y)
		}
		pr(`"/>` + "\n")
	}

	// Objects on top.
	pr(`<g fill="#1a3a5c">` + "\n")
	ov.ForEachObject(func(o *core.Object) bool {
		x, y := tx(o.Pos)
		pr(`<circle cx="%.2f" cy="%.2f" r="2.0"/>`+"\n", x, y)
		return true
	})
	pr("</g>\n")

	if opt.Title != "" {
		pr(`<text x="10" y="20" font-family="sans-serif" font-size="14">%s</text>`+"\n", opt.Title)
	}
	pr("</svg>\n")
	return err
}

// RoutePath replays the greedy route between two objects and returns the
// sequence of objects visited (inclusive of both endpoints), for rendering
// with Options.Route.
func RoutePath(ov *core.Overlay, from, to core.ObjectID) ([]core.ObjectID, error) {
	path := []core.ObjectID{from}
	cur := from
	tgt, err := ov.Position(to)
	if err != nil {
		return nil, err
	}
	for cur != to {
		next, err := ov.GreedyNeighbor(cur, tgt)
		if err != nil {
			return nil, err
		}
		if next == core.NoObject {
			return path, fmt.Errorf("viz: route stalled at %d", cur)
		}
		path = append(path, next)
		cur = next
		if len(path) > ov.Len()+1 {
			return path, fmt.Errorf("viz: route too long")
		}
	}
	return path, nil
}

// DegreeLegend summarises the degree distribution as an SVG-embeddable
// caption string (handy for titles).
func DegreeLegend(ov *core.Overlay) string {
	counts := map[int]int{}
	ov.ForEachObject(func(o *core.Object) bool {
		d, _ := ov.Degree(o.ID)
		counts[d]++
		return true
	})
	var keys []int
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	out := "degree:"
	for _, k := range keys {
		out += fmt.Sprintf(" %d×%d", k, counts[k])
	}
	return out
}
