package transport

import (
	"fmt"
	"testing"
)

func pair(t *testing.T, bus *Bus) (Endpoint, Endpoint, *[]string) {
	t.Helper()
	a, err := bus.Attach("a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := bus.Attach("b")
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	b.SetHandler(func(from string, p []byte) { got = append(got, string(p)) })
	a.SetHandler(func(string, []byte) {})
	return a, b, &got
}

func TestSimnetLatencyReordersDeliveries(t *testing.T) {
	bus := NewSeededBus(7)
	a, _, got := pair(t, bus)
	c, err := bus.Attach("c")
	if err != nil {
		t.Fatal(err)
	}
	c.SetHandler(func(string, []byte) {})
	// a→b is slow, c→b is instant: a message sent first on the slow link
	// arrives after a later message on the fast one.
	bus.SetLinkRule("a", "b", LinkRule{MinLatency: 100, MaxLatency: 100})
	if err := a.Send("b", []byte("slow")); err != nil {
		t.Fatal(err)
	}
	if err := c.Send("b", []byte("fast")); err != nil {
		t.Fatal(err)
	}
	bus.Drain()
	if len(*got) != 2 || (*got)[0] != "fast" || (*got)[1] != "slow" {
		t.Fatalf("delivery order %v, want [fast slow]", *got)
	}
	if bus.Now() != 100 {
		t.Fatalf("virtual clock %d, want 100", bus.Now())
	}
}

func TestSimnetEqualLatencyIsFIFO(t *testing.T) {
	bus := NewSeededBus(7)
	a, _, got := pair(t, bus)
	bus.SetDefaultRule(LinkRule{MinLatency: 5, MaxLatency: 5})
	for i := 0; i < 6; i++ {
		if err := a.Send("b", []byte(fmt.Sprintf("m%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	bus.Drain()
	for i, m := range *got {
		if m != fmt.Sprintf("m%d", i) {
			t.Fatalf("out of order: %v", *got)
		}
	}
}

func TestSimnetSeededDropsAreDeterministic(t *testing.T) {
	run := func(seed int64) (uint64, uint64, []string) {
		bus := NewSeededBus(seed)
		a, _, got := pair(t, bus)
		bus.SetDefaultRule(LinkRule{Drop: 0.3})
		for i := 0; i < 50; i++ {
			if err := a.Send("b", []byte(fmt.Sprintf("m%d", i))); err != nil {
				t.Fatal(err)
			}
		}
		bus.Drain()
		return bus.DeliveredCount(), bus.DroppedCount(), *got
	}
	d1, x1, g1 := run(42)
	d2, x2, g2 := run(42)
	if d1 != d2 || x1 != x2 || len(g1) != len(g2) {
		t.Fatalf("same seed diverged: %d/%d vs %d/%d", d1, x1, d2, x2)
	}
	for i := range g1 {
		if g1[i] != g2[i] {
			t.Fatalf("same seed delivered different messages: %v vs %v", g1, g2)
		}
	}
	if x1 == 0 || d1 == 0 {
		t.Fatalf("want both drops and deliveries, got %d/%d", d1, x1)
	}
	d3, _, _ := run(43)
	if d3 == d1 {
		t.Log("different seeds happened to agree (possible but unlikely)")
	}
}

func TestSimnetOneWayLinkFailure(t *testing.T) {
	bus := NewSeededBus(1)
	a, b, got := pair(t, bus)
	var fromB []string
	// Reuse a's handler slot to observe b→a traffic.
	a.SetHandler(func(from string, p []byte) { fromB = append(fromB, string(p)) })
	bus.SetLinkRule("a", "b", LinkRule{Down: true})
	if err := a.Send("b", []byte("dropped")); err != nil {
		t.Fatalf("one-way failure must be silent, got %v", err)
	}
	if err := b.Send("a", []byte("returned")); err != nil {
		t.Fatal(err)
	}
	bus.Drain()
	if len(*got) != 0 {
		t.Fatalf("a→b delivered through a down link: %v", *got)
	}
	if len(fromB) != 1 || fromB[0] != "returned" {
		t.Fatalf("b→a direction affected: %v", fromB)
	}
	if bus.DroppedCount() != 1 {
		t.Fatalf("Dropped=%d, want 1", bus.DroppedCount())
	}
}

func TestSimnetScheduledOutageWindow(t *testing.T) {
	bus := NewSeededBus(1)
	a, _, got := pair(t, bus)
	// Messages take 10 ticks; the a→b link is down for sends in [10, 20).
	bus.SetDefaultRule(LinkRule{MinLatency: 10, MaxLatency: 10})
	bus.SetLinkRule("a", "b", LinkRule{MinLatency: 10, MaxLatency: 10, DropFrom: 10, DropUntil: 20})
	if err := a.Send("b", []byte("before")); err != nil { // sent at t=0
		t.Fatal(err)
	}
	bus.Drain()                                           // clock advances to 10
	if err := a.Send("b", []byte("during")); err != nil { // sent at t=10: dropped
		t.Fatal(err)
	}
	bus.Drain()
	if err := a.Send("b", []byte("also during")); err != nil { // still t=10
		t.Fatal(err)
	}
	bus.AdvanceTime(10)                                  // clock 20: the outage window closes
	if err := a.Send("b", []byte("after")); err != nil { // sent at t=20: delivered
		t.Fatal(err)
	}
	bus.Drain()
	want := []string{"before", "after"}
	if len(*got) != 2 || (*got)[0] != want[0] || (*got)[1] != want[1] {
		t.Fatalf("outage window delivered %v, want %v", *got, want)
	}
	if bus.DroppedCount() != 2 {
		t.Fatalf("Dropped=%d, want 2", bus.DroppedCount())
	}
}

func TestSimnetPartitionAndHeal(t *testing.T) {
	bus := NewSeededBus(1)
	eps := map[string]Endpoint{}
	recv := map[string][]string{}
	for _, addr := range []string{"w1", "w2", "e1", "e2"} {
		ep, err := bus.Attach(addr)
		if err != nil {
			t.Fatal(err)
		}
		addr := addr
		ep.SetHandler(func(from string, p []byte) { recv[addr] = append(recv[addr], string(p)) })
		eps[addr] = ep
	}
	bus.InstallPartition("split", []string{"w1", "w2"}, []string{"e1", "e2"})
	eps["w1"].Send("w2", []byte("in-west"))
	eps["w1"].Send("e1", []byte("cross"))
	eps["e1"].Send("e2", []byte("in-east"))
	bus.Drain()
	if len(recv["w2"]) != 1 || len(recv["e2"]) != 1 {
		t.Fatalf("intra-partition traffic blocked: %v", recv)
	}
	if len(recv["e1"]) != 0 {
		t.Fatalf("cross-partition message delivered: %v", recv["e1"])
	}
	if bus.DroppedCount() != 1 {
		t.Fatalf("Dropped=%d, want 1", bus.DroppedCount())
	}
	bus.HealPartition("split")
	eps["w1"].Send("e1", []byte("healed"))
	bus.Drain()
	if len(recv["e1"]) != 1 || recv["e1"][0] != "healed" {
		t.Fatalf("healed link still dropping: %v", recv["e1"])
	}
}

func TestSimnetCrashedDestinationCountsDropped(t *testing.T) {
	bus := NewSeededBus(1)
	a, b, _ := pair(t, bus)
	if err := a.Send("b", []byte("in flight")); err != nil {
		t.Fatal(err)
	}
	b.Close() // crash with the message queued
	bus.Drain()
	if bus.DroppedCount() != 1 || bus.DeliveredCount() != 0 {
		t.Fatalf("Delivered=%d Dropped=%d, want 0/1", bus.DeliveredCount(), bus.DroppedCount())
	}
	// After the crash, sends to the address fail structurally.
	if err := a.Send("b", []byte("late")); err == nil {
		t.Fatal("send to crashed peer must error")
	}
}

func TestSimnetPeerRuleSlowsBothDirections(t *testing.T) {
	bus := NewSeededBus(1)
	a, _, got := pair(t, bus)
	c, err := bus.Attach("c")
	if err != nil {
		t.Fatal(err)
	}
	var atC []string
	c.SetHandler(func(from string, p []byte) { atC = append(atC, string(p)) })
	bus.SetPeerRule("c", LinkRule{MinLatency: 50, MaxLatency: 50})
	if err := c.Send("b", []byte("from straggler")); err != nil { // out of c: slow
		t.Fatal(err)
	}
	if err := a.Send("b", []byte("fast path")); err != nil {
		t.Fatal(err)
	}
	if err := a.Send("c", []byte("to straggler")); err != nil { // into c: slow
		t.Fatal(err)
	}
	bus.Drain()
	if (*got)[0] != "fast path" || (*got)[1] != "from straggler" {
		t.Fatalf("straggler output not delayed: %v", *got)
	}
	if len(atC) != 1 {
		t.Fatalf("straggler input lost: %v", atC)
	}
}
