package transport

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestBusFIFODelivery(t *testing.T) {
	bus := NewBus()
	a, err := bus.Attach("a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := bus.Attach("b")
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	b.SetHandler(func(from string, payload []byte) {
		got = append(got, string(payload))
	})
	a.SetHandler(func(string, []byte) {})
	for i := 0; i < 5; i++ {
		if err := a.Send("b", []byte(fmt.Sprintf("m%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	n := bus.Drain()
	if n != 5 {
		t.Fatalf("delivered %d", n)
	}
	for i, m := range got {
		if m != fmt.Sprintf("m%d", i) {
			t.Fatalf("out of order: %v", got)
		}
	}
}

func TestBusHandlerEnqueues(t *testing.T) {
	// Messages enqueued by handlers during a drain are delivered in the
	// same drain.
	bus := NewBus()
	a, _ := bus.Attach("a")
	b, _ := bus.Attach("b")
	count := 0
	b.SetHandler(func(from string, payload []byte) {
		count++
		if count < 4 {
			b.Send("b", []byte("again"))
		}
	})
	a.SetHandler(func(string, []byte) {})
	a.Send("b", []byte("go"))
	bus.Drain()
	if count != 4 {
		t.Fatalf("chained deliveries: %d", count)
	}
	if bus.Pending() != 0 {
		t.Fatalf("pending after drain: %d", bus.Pending())
	}
}

func TestBusErrors(t *testing.T) {
	bus := NewBus()
	a, _ := bus.Attach("a")
	if _, err := bus.Attach("a"); err == nil {
		t.Fatal("duplicate attach must fail")
	}
	if err := a.Send("ghost", nil); !errors.Is(err, ErrUnknownPeer) {
		t.Fatalf("send to ghost: %v", err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Send("a", nil); err == nil {
		t.Fatal("send after close must fail")
	}
}

func TestBusDropRate(t *testing.T) {
	bus := NewBus()
	a, _ := bus.Attach("a")
	b, _ := bus.Attach("b")
	delivered := 0
	b.SetHandler(func(string, []byte) { delivered++ })
	a.SetHandler(func(string, []byte) {})
	bus.DropRate = 0.25
	for i := 0; i < 100; i++ {
		a.Send("b", []byte("x"))
	}
	bus.Drain()
	if delivered != 75 {
		t.Fatalf("delivered %d with 25%% drop", delivered)
	}
	// Drops are observable, not inferred from silence.
	if bus.DroppedCount() != 25 {
		t.Fatalf("Dropped=%d, want 25", bus.DroppedCount())
	}
	if bus.DeliveredCount() != 75 {
		t.Fatalf("Delivered=%d, want 75", bus.DeliveredCount())
	}
}

func TestBusPayloadIsolation(t *testing.T) {
	// The bus must copy payloads: mutating the sender's buffer after Send
	// must not affect delivery.
	bus := NewBus()
	a, _ := bus.Attach("a")
	b, _ := bus.Attach("b")
	var got string
	b.SetHandler(func(_ string, p []byte) { got = string(p) })
	buf := []byte("original")
	a.Send("b", buf)
	copy(buf, "CLOBBER!")
	bus.Drain()
	if got != "original" {
		t.Fatalf("payload mutated in flight: %q", got)
	}
}

func TestTCPRoundTrip(t *testing.T) {
	a, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	type msg struct {
		from string
		body string
	}
	ch := make(chan msg, 10)
	b.SetHandler(func(from string, payload []byte) {
		ch <- msg{from, string(payload)}
	})
	a.SetHandler(func(from string, payload []byte) {
		ch <- msg{from, string(payload)}
	})

	if err := a.Send(b.Addr(), []byte("hello")); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-ch:
		if m.body != "hello" || m.from != a.Addr() {
			t.Fatalf("got %+v", m)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("timeout")
	}

	// Reply over a fresh connection from b to a.
	if err := b.Send(a.Addr(), []byte("world")); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-ch:
		if m.body != "world" || m.from != b.Addr() {
			t.Fatalf("got %+v", m)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("timeout")
	}
}

func TestTCPManyFrames(t *testing.T) {
	a, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	var mu sync.Mutex
	seen := 0
	b.SetHandler(func(string, []byte) {
		mu.Lock()
		seen++
		mu.Unlock()
	})
	for i := 0; i < 200; i++ {
		if err := a.Send(b.Addr(), []byte("frame")); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		n := seen
		mu.Unlock()
		if n == 200 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("saw %d/200 frames", n)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestTCPSendAfterClose(t *testing.T) {
	a, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := a.Addr()
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Send(addr, []byte("x")); err == nil {
		t.Fatal("send after close must fail")
	}
}
