package transport

import (
	"net"
	"sync"
	"testing"
	"time"
)

// gatedConn is a fake net.Conn whose first Write blocks until released,
// forcing every concurrent writeCoalesced call after the first into the
// pending queue — a deterministic way to build a large backlog and then
// observe exactly how flushPending batches it.
type gatedConn struct {
	mu     sync.Mutex
	writes []int // size of every completed Write
	first  bool
	gate   chan struct{}
}

func newGatedConn() *gatedConn {
	return &gatedConn{gate: make(chan struct{})}
}

func (g *gatedConn) Write(p []byte) (int, error) {
	g.mu.Lock()
	block := !g.first
	g.first = true
	g.mu.Unlock()
	if block {
		<-g.gate
	}
	g.mu.Lock()
	g.writes = append(g.writes, len(p))
	g.mu.Unlock()
	return len(p), nil
}

func (g *gatedConn) Read(p []byte) (int, error)         { select {} }
func (g *gatedConn) Close() error                       { return nil }
func (g *gatedConn) LocalAddr() net.Addr                { return nil }
func (g *gatedConn) RemoteAddr() net.Addr               { return nil }
func (g *gatedConn) SetDeadline(t time.Time) error      { return nil }
func (g *gatedConn) SetReadDeadline(t time.Time) error  { return nil }
func (g *gatedConn) SetWriteDeadline(t time.Time) error { return nil }

// TestCoalesceBatchesBounded builds a backlog much larger than
// maxCoalesceBytes behind a gated first write and verifies flushPending
// drains it in Writes no larger than the cap — the bounded group-commit
// window that keeps a small frame's queueing delay independent of the
// total backlog size (the mixed-load tail-latency fix).
func TestCoalesceBatchesBounded(t *testing.T) {
	g := newGatedConn()
	cc := &tcpConn{c: g}

	const frames = 40
	frame := make([]byte, 8<<10) // 8 KiB each → 320 KiB backlog, 5× the cap
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // becomes the inline writer, parks on the gate
		defer wg.Done()
		if err := cc.writeCoalesced(frame); err != nil {
			t.Errorf("inline write: %v", err)
		}
	}()
	// Wait until the inline writer holds the flushing flag.
	for {
		cc.mu.Lock()
		f := cc.flushing
		cc.mu.Unlock()
		if f {
			break
		}
		time.Sleep(time.Millisecond)
	}
	for i := 0; i < frames; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := cc.writeCoalesced(frame); err != nil {
				t.Errorf("queued write: %v", err)
			}
		}()
	}
	// Wait for all senders to be parked in pending, then open the gate.
	for {
		cc.mu.Lock()
		n := len(cc.pending)
		cc.mu.Unlock()
		if n == frames {
			break
		}
		time.Sleep(time.Millisecond)
	}
	close(g.gate)
	wg.Wait()

	g.mu.Lock()
	writes := append([]int(nil), g.writes...)
	g.mu.Unlock()
	if len(writes) < 2 {
		t.Fatalf("expected the backlog to flush in multiple writes, got %d", len(writes))
	}
	total := 0
	for i, w := range writes {
		total += w
		if i == 0 {
			continue // the inline write is a single frame by construction
		}
		if w > maxCoalesceBytes {
			t.Fatalf("flush write %d is %d bytes, exceeds maxCoalesceBytes=%d", i, w, maxCoalesceBytes)
		}
	}
	if want := (frames + 1) * len(frame); total != want {
		t.Fatalf("bytes written = %d, want %d (no frame lost or duplicated)", total, want)
	}
	// The cap should actually bite: with a 320 KiB backlog and a 64 KiB
	// window the drain needs at least 5 flush batches.
	if min := 1 + frames*len(frame)/maxCoalesceBytes; len(writes) < min {
		t.Fatalf("backlog drained in %d writes, want >= %d capped batches", len(writes), min)
	}
}

// TestCoalesceOversizedFrameAlone verifies a single frame larger than the
// batch cap is still sent (alone), not starved by the bound.
func TestCoalesceOversizedFrameAlone(t *testing.T) {
	g := newGatedConn()
	cc := &tcpConn{c: g}

	small := make([]byte, 64)
	big := make([]byte, maxCoalesceBytes+4096)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := cc.writeCoalesced(small); err != nil {
			t.Errorf("inline write: %v", err)
		}
	}()
	for {
		cc.mu.Lock()
		f := cc.flushing
		cc.mu.Unlock()
		if f {
			break
		}
		time.Sleep(time.Millisecond)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := cc.writeCoalesced(big); err != nil {
			t.Errorf("oversized write: %v", err)
		}
	}()
	for {
		cc.mu.Lock()
		n := len(cc.pending)
		cc.mu.Unlock()
		if n == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	close(g.gate)
	wg.Wait()

	g.mu.Lock()
	writes := append([]int(nil), g.writes...)
	g.mu.Unlock()
	if len(writes) != 2 || writes[1] != len(big) {
		t.Fatalf("writes = %v, want [%d %d]", writes, len(small), len(big))
	}
}
