package transport

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestTCPPerPeerFIFO: with parallel dispatch, messages from one peer must
// still be handled strictly in send order, whatever the worker pool does.
func TestTCPPerPeerFIFO(t *testing.T) {
	recv, err := ListenTCPOptions("127.0.0.1:0", TCPOptions{DispatchWorkers: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()

	const senders = 4
	const perSender = 200
	var mu sync.Mutex
	last := make(map[string]uint32) // sender addr -> last sequence seen
	var violations, got atomic.Int64
	recv.SetHandler(func(from string, payload []byte) {
		seq := binary.BigEndian.Uint32(payload)
		mu.Lock()
		if prev, ok := last[from]; ok && seq != prev+1 {
			violations.Add(1)
		}
		last[from] = seq
		mu.Unlock()
		got.Add(1)
	})

	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		ep, err := ListenTCP("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer ep.Close()
		wg.Add(1)
		go func(ep *TCPEndpoint) {
			defer wg.Done()
			var buf [4]byte
			for i := 1; i <= perSender; i++ {
				binary.BigEndian.PutUint32(buf[:], uint32(i))
				if err := ep.Send(recv.Addr(), buf[:]); err != nil {
					t.Errorf("send: %v", err)
					return
				}
			}
		}(ep)
	}
	wg.Wait()
	deadline := time.Now().Add(10 * time.Second)
	for got.Load() < senders*perSender && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if got.Load() != senders*perSender {
		t.Fatalf("delivered %d of %d", got.Load(), senders*perSender)
	}
	if v := violations.Load(); v != 0 {
		t.Fatalf("%d per-peer FIFO violations under parallel dispatch", v)
	}
}

// TestTCPParallelDispatchOverlaps: messages from independent peers must be
// *in flight concurrently* — the property the old global dispatch mutex
// made impossible. Each handler invocation parks until `want` of them
// overlap; with serial dispatch this would deadlock, so reaching the
// barrier proves parallelism.
func TestTCPParallelDispatchOverlaps(t *testing.T) {
	const want = 3
	recv, err := ListenTCPOptions("127.0.0.1:0", TCPOptions{DispatchWorkers: want})
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()

	var inflight atomic.Int64
	reached := make(chan struct{})
	var once sync.Once
	release := make(chan struct{})
	recv.SetHandler(func(string, []byte) {
		if inflight.Add(1) == want {
			once.Do(func() { close(reached) })
		}
		select {
		case <-release:
		case <-time.After(15 * time.Second):
		}
		inflight.Add(-1)
	})

	for s := 0; s < want; s++ {
		ep, err := ListenTCP("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer ep.Close()
		if err := ep.Send(recv.Addr(), []byte(fmt.Sprintf("m%d", s))); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case <-reached:
		close(release) // success: want handlers overlapped
	case <-time.After(10 * time.Second):
		close(release)
		t.Fatalf("handlers never overlapped: dispatch is serialised (inflight max %d)", inflight.Load())
	}
}

// TestTCPSerialDispatchOption: the legacy mode must never let two handler
// invocations overlap, across any number of connections.
func TestTCPSerialDispatchOption(t *testing.T) {
	recv, err := ListenTCPOptions("127.0.0.1:0", TCPOptions{SerialDispatch: true})
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()

	var inflight, maxInflight, got atomic.Int64
	recv.SetHandler(func(string, []byte) {
		cur := inflight.Add(1)
		for {
			prev := maxInflight.Load()
			if cur <= prev || maxInflight.CompareAndSwap(prev, cur) {
				break
			}
		}
		time.Sleep(200 * time.Microsecond)
		inflight.Add(-1)
		got.Add(1)
	})

	const senders = 4
	const perSender = 25
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		ep, err := ListenTCP("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer ep.Close()
		wg.Add(1)
		go func(ep *TCPEndpoint) {
			defer wg.Done()
			for i := 0; i < perSender; i++ {
				if err := ep.Send(recv.Addr(), []byte("x")); err != nil {
					t.Errorf("send: %v", err)
					return
				}
			}
		}(ep)
	}
	wg.Wait()
	deadline := time.Now().Add(10 * time.Second)
	for got.Load() < senders*perSender && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if got.Load() != senders*perSender {
		t.Fatalf("delivered %d of %d", got.Load(), senders*perSender)
	}
	if m := maxInflight.Load(); m != 1 {
		t.Fatalf("serial dispatch overlapped %d handlers", m)
	}
}

// TestTCPCoalescedWritesIntact: hammer one connection from many goroutines
// in both write modes; group-commit coalescing must never corrupt or drop
// a frame.
func TestTCPCoalescedWritesIntact(t *testing.T) {
	for _, mode := range []struct {
		name string
		opts TCPOptions
	}{
		{"coalesced", TCPOptions{}},
		{"no-coalesce", TCPOptions{NoCoalesce: true}},
	} {
		t.Run(mode.name, func(t *testing.T) {
			recv, err := ListenTCP("127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			defer recv.Close()
			var mu sync.Mutex
			seen := make(map[string]bool)
			var got atomic.Int64
			recv.SetHandler(func(_ string, payload []byte) {
				mu.Lock()
				seen[string(payload)] = true
				mu.Unlock()
				got.Add(1)
			})

			snd, err := ListenTCPOptions("127.0.0.1:0", mode.opts)
			if err != nil {
				t.Fatal(err)
			}
			defer snd.Close()

			const workers = 16
			const perWorker = 100
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < perWorker; i++ {
						msg := fmt.Sprintf("w%02d-i%03d", w, i)
						if err := snd.Send(recv.Addr(), []byte(msg)); err != nil {
							t.Errorf("send %s: %v", msg, err)
							return
						}
					}
				}(w)
			}
			wg.Wait()
			total := int64(workers * perWorker)
			deadline := time.Now().Add(10 * time.Second)
			for got.Load() < total && time.Now().Before(deadline) {
				time.Sleep(2 * time.Millisecond)
			}
			mu.Lock()
			defer mu.Unlock()
			if int64(len(seen)) != total || got.Load() != total {
				t.Fatalf("distinct %d, delivered %d, want %d (frames corrupted, dropped or duplicated)",
					len(seen), got.Load(), total)
			}
		})
	}
}

// TestBusParallelDrainFIFOAndCounts: the opt-in parallel simnet drain must
// deliver everything exactly once, preserve per-destination order, and
// keep the Delivered counter coherent.
func TestBusParallelDrainFIFOAndCounts(t *testing.T) {
	bus := NewBus()
	bus.SetParallelDelivery(4)

	const receivers = 5
	const perReceiver = 100
	var mu sync.Mutex
	seqs := make(map[string][]uint32)
	sender, err := bus.Attach("sender")
	if err != nil {
		t.Fatal(err)
	}
	for rcv := 0; rcv < receivers; rcv++ {
		addr := fmt.Sprintf("r%d", rcv)
		ep, err := bus.Attach(addr)
		if err != nil {
			t.Fatal(err)
		}
		ep.SetHandler(func(_ string, payload []byte) {
			mu.Lock()
			seqs[addr] = append(seqs[addr], binary.BigEndian.Uint32(payload))
			mu.Unlock()
		})
	}
	for i := 0; i < perReceiver; i++ {
		for rcv := 0; rcv < receivers; rcv++ {
			var buf [4]byte
			binary.BigEndian.PutUint32(buf[:], uint32(i))
			if err := sender.Send(fmt.Sprintf("r%d", rcv), buf[:]); err != nil {
				t.Fatal(err)
			}
		}
	}
	n := bus.Drain()
	if n != receivers*perReceiver {
		t.Fatalf("parallel drain delivered %d, want %d", n, receivers*perReceiver)
	}
	if bus.DeliveredCount() != uint64(receivers*perReceiver) {
		t.Fatalf("Delivered counter %d, want %d", bus.DeliveredCount(), receivers*perReceiver)
	}
	for addr, got := range seqs {
		if len(got) != perReceiver {
			t.Fatalf("%s got %d messages, want %d", addr, len(got), perReceiver)
		}
		for i, s := range got {
			if s != uint32(i) {
				t.Fatalf("%s: message %d out of order (seq %d)", addr, i, s)
			}
		}
	}
}
