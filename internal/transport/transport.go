// Package transport carries opaque messages between VoroNet nodes. Two
// implementations are provided: a deterministic in-memory bus for protocol
// tests and simulation, and a TCP transport (net) for real deployments.
package transport

import (
	"errors"
	"fmt"
	"sync"
)

// Handler processes an inbound message.
type Handler func(from string, payload []byte)

// Endpoint is one node's attachment to a transport.
type Endpoint interface {
	// Addr is this endpoint's address, routable by peers.
	Addr() string
	// Send delivers payload to the endpoint with address `to`.
	Send(to string, payload []byte) error
	// SetHandler installs the inbound message handler. Must be called
	// before any message can be delivered.
	SetHandler(h Handler)
	// Close detaches the endpoint.
	Close() error
}

// ErrUnknownPeer reports a send to an address that is not attached.
var ErrUnknownPeer = errors.New("transport: unknown peer")

// Bus is an in-memory message bus with FIFO delivery. Messages are queued
// and delivered by Drain in deterministic order, which makes distributed
// protocol runs reproducible and free of re-entrancy.
type Bus struct {
	mu    sync.Mutex
	peers map[string]*busEndpoint
	queue []busMsg
	// Delivered counts messages delivered since creation (protocol cost
	// measurements).
	Delivered uint64
	// DropRate in [0,1] silently drops a deterministic fraction of
	// messages (failure injection in tests). The counter increments on
	// drops too.
	DropRate float64
	dropSeq  uint64
}

type busMsg struct {
	from, to string
	payload  []byte
}

type busEndpoint struct {
	bus     *Bus
	addr    string
	handler Handler
	closed  bool
}

// NewBus returns an empty bus.
func NewBus() *Bus {
	return &Bus{peers: make(map[string]*busEndpoint)}
}

// Attach creates an endpoint with the given address.
func (b *Bus) Attach(addr string) (Endpoint, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, dup := b.peers[addr]; dup {
		return nil, fmt.Errorf("transport: address %q already attached", addr)
	}
	ep := &busEndpoint{bus: b, addr: addr}
	b.peers[addr] = ep
	return ep, nil
}

// Drain delivers queued messages (including ones enqueued by handlers
// during the drain) until the queue is empty. It returns the number of
// messages delivered.
func (b *Bus) Drain() int {
	n := 0
	for {
		b.mu.Lock()
		if len(b.queue) == 0 {
			b.mu.Unlock()
			return n
		}
		m := b.queue[0]
		b.queue = b.queue[1:]
		ep := b.peers[m.to]
		drop := false
		if b.DropRate > 0 {
			b.dropSeq++
			// Deterministic drop pattern: every k-th message where
			// k = 1/DropRate.
			if b.DropRate >= 1 || b.dropSeq%uint64(1/b.DropRate+0.5) == 0 {
				drop = true
			}
		}
		b.Delivered++
		b.mu.Unlock()
		if ep != nil && ep.handler != nil && !drop {
			ep.handler(m.from, m.payload)
		}
		n++
	}
}

// Pending returns the number of undelivered messages.
func (b *Bus) Pending() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.queue)
}

func (e *busEndpoint) Addr() string { return e.addr }

func (e *busEndpoint) Send(to string, payload []byte) error {
	b := e.bus
	b.mu.Lock()
	defer b.mu.Unlock()
	if e.closed {
		return errors.New("transport: endpoint closed")
	}
	if _, ok := b.peers[to]; !ok {
		return fmt.Errorf("%w: %q", ErrUnknownPeer, to)
	}
	cp := make([]byte, len(payload))
	copy(cp, payload)
	b.queue = append(b.queue, busMsg{from: e.addr, to: to, payload: cp})
	return nil
}

func (e *busEndpoint) SetHandler(h Handler) { e.handler = h }

func (e *busEndpoint) Close() error {
	b := e.bus
	b.mu.Lock()
	defer b.mu.Unlock()
	e.closed = true
	delete(b.peers, e.addr)
	return nil
}
