// Package transport carries opaque messages between VoroNet nodes. Two
// implementations are provided: a deterministic in-memory simnet (Bus) for
// protocol tests, simulation and chaos scenarios, and a TCP transport
// (net) for real deployments.
package transport

import (
	"container/heap"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"

	"voronet/internal/metrics"
)

// Handler processes an inbound message. The payload slice is owned by
// the transport and valid only for the duration of the call: TCP read
// loops reuse one buffer per connection, so a handler that needs the
// bytes later must copy them (every handler in this codebase decodes or
// copies synchronously).
type Handler func(from string, payload []byte)

// Endpoint is one node's attachment to a transport.
type Endpoint interface {
	// Addr is this endpoint's address, routable by peers.
	Addr() string
	// Send delivers payload to the endpoint with address `to`. Send does
	// not retain payload after it returns — the Bus copies it into the
	// queued message and TCP blocks until the bytes reach the socket
	// write — so callers may encode into pooled buffers and recycle them
	// as soon as Send's outcome is known (see proto.GetBuf).
	Send(to string, payload []byte) error
	// SetHandler installs the inbound message handler. Must be called
	// before any message can be delivered.
	SetHandler(h Handler)
	// Close detaches the endpoint.
	Close() error
}

// ErrUnknownPeer reports a send to an address that is not attached.
var ErrUnknownPeer = errors.New("transport: unknown peer")

// ErrClosed reports a send through an endpoint that has been closed. Like
// ErrUnknownPeer it is structural: the message can never be delivered by
// retrying the same send, so callers must repair instead of retry.
var ErrClosed = errors.New("transport: endpoint closed")

// Bus is an in-memory simnet. Messages are timestamped in virtual time at
// Send and delivered by Drain in (delivery time, send sequence) order, so
// a fault-free bus behaves as a FIFO queue and latency rules reorder
// deliveries exactly as a real network would. All fault decisions — drops,
// latencies, partitions — are drawn from a single seeded RNG at Send time,
// which makes whole distributed protocol runs reproducible bit for bit.
//
// Fault injection is per directed link: SetLinkRule pins a rule to one
// (from, to) pair, SetPeerRule to every link touching one address, and
// SetDefaultRule to everything else. Named partitions drop messages that
// cross group boundaries until healed. Faults never surface as Send
// errors: like a real lossy network, the message silently disappears (and
// DroppedCount increments). Send errors are reserved for structural
// conditions — a closed endpoint or an address that was never attached or
// has crashed.
type Bus struct {
	mu    sync.Mutex
	peers map[string]*busEndpoint
	queue msgQueue
	seq   uint64
	now   uint64
	rng   *rand.Rand

	// Message accounting. Atomics, not plain fields: Drain's parallel
	// mode and any goroutine holding a snapshot read them concurrently
	// with senders. The conservation law tests and the harness checker
	// rely on is sends == delivered + dropped + pending.
	sends     atomic.Uint64 // Send calls that returned nil (queued or fault-dropped)
	delivered atomic.Uint64 // messages handed to a handler
	dropped   atomic.Uint64 // lost to faults at send time or to a detached destination

	// DropRate in [0,1] silently drops a deterministic fraction of
	// messages (legacy failure injection: every k-th send with
	// k = 1/DropRate). Prefer LinkRule.Drop for seeded probabilistic loss.
	DropRate float64
	dropSeq  uint64

	defRule    LinkRule
	linkRules  map[[2]string]LinkRule
	peerRules  map[string]LinkRule
	partitions map[string]map[string]int

	// parallelWorkers > 1 switches Drain to the opt-in parallel delivery
	// mode (see SetParallelDelivery). Zero keeps the deterministic serial
	// drain that chaos transcripts depend on.
	parallelWorkers int
}

// LinkRule describes fault injection for a set of directed links. The zero
// value is a perfect link: zero latency, no loss.
type LinkRule struct {
	// MinLatency and MaxLatency bound the virtual-time delivery delay in
	// ticks; each message draws uniformly from [MinLatency, MaxLatency].
	// Unequal latencies across links reorder deliveries.
	MinLatency, MaxLatency uint64
	// Drop is the probability in [0,1] that a message on the link is
	// silently lost, drawn from the bus's seeded RNG.
	Drop float64
	// Down severs the link while set: every message is dropped. A one-way
	// failure is expressed by setting Down on one direction only.
	Down bool
	// DropFrom and DropUntil schedule an outage in virtual time: a
	// message sent at now ∈ [DropFrom, DropUntil) is dropped. The window
	// is inactive when DropUntil is zero.
	DropFrom, DropUntil uint64
}

type busMsg struct {
	at       uint64 // virtual delivery time
	seq      uint64 // send order, ties broken FIFO
	from, to string
	payload  []byte
}

// msgQueue is a delivery-time-ordered heap of in-flight messages.
type msgQueue []busMsg

func (q msgQueue) Len() int { return len(q) }
func (q msgQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q msgQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *msgQueue) Push(x any)   { *q = append(*q, x.(busMsg)) }
func (q *msgQueue) Pop() any {
	old := *q
	n := len(old)
	m := old[n-1]
	*q = old[:n-1]
	return m
}

type busEndpoint struct {
	bus     *Bus
	addr    string
	handler Handler
	closed  bool
}

// NewBus returns an empty bus with a fixed default seed (fault draws are
// deterministic out of the box).
func NewBus() *Bus { return NewSeededBus(1) }

// NewSeededBus returns an empty bus whose fault decisions (probabilistic
// drops, latency draws) follow the given seed.
func NewSeededBus(seed int64) *Bus {
	return &Bus{
		peers:      make(map[string]*busEndpoint),
		rng:        rand.New(rand.NewSource(seed)),
		linkRules:  make(map[[2]string]LinkRule),
		peerRules:  make(map[string]LinkRule),
		partitions: make(map[string]map[string]int),
	}
}

// Attach creates an endpoint with the given address.
func (b *Bus) Attach(addr string) (Endpoint, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, dup := b.peers[addr]; dup {
		return nil, fmt.Errorf("transport: address %q already attached", addr)
	}
	ep := &busEndpoint{bus: b, addr: addr}
	b.peers[addr] = ep
	return ep, nil
}

// SetDefaultRule installs the rule applied to links with no more specific
// rule.
func (b *Bus) SetDefaultRule(r LinkRule) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.defRule = r
}

// SetLinkRule pins a rule to the directed link from → to, overriding peer
// and default rules.
func (b *Bus) SetLinkRule(from, to string, r LinkRule) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.linkRules[[2]string{from, to}] = r
}

// SetPeerRule applies a rule to every link into or out of addr (a slow or
// flaky host rather than a single bad cable). An exact link rule wins; the
// destination's peer rule is consulted before the source's.
func (b *Bus) SetPeerRule(addr string, r LinkRule) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.peerRules[addr] = r
}

// ClearRules removes every link, peer and default rule. Installed
// partitions are unaffected (heal them explicitly).
func (b *Bus) ClearRules() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.defRule = LinkRule{}
	b.linkRules = make(map[[2]string]LinkRule)
	b.peerRules = make(map[string]LinkRule)
}

// InstallPartition installs (or replaces) a named partition: a message
// whose source and destination fall in different groups is dropped.
// Addresses absent from every group are unconstrained by this partition.
// The partition persists until HealPartition or Heal.
func (b *Bus) InstallPartition(name string, groups ...[]string) {
	m := make(map[string]int)
	for gi, g := range groups {
		for _, a := range g {
			m[a] = gi
		}
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.partitions[name] = m
}

// HealPartition removes the named partition.
func (b *Bus) HealPartition(name string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	delete(b.partitions, name)
}

// Heal removes every installed partition.
func (b *Bus) Heal() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.partitions = make(map[string]map[string]int)
}

// AdvanceTime moves the virtual clock forward by ticks. The clock
// otherwise advances only when Drain pops a message bearing a later
// delivery time; scheduled fault windows (LinkRule.DropFrom/DropUntil)
// are evaluated against it at send time.
func (b *Bus) AdvanceTime(ticks uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.now += ticks
}

// Now returns the current virtual time in ticks. It advances only when
// Drain delivers a message bearing a later timestamp.
func (b *Bus) Now() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.now
}

// ruleFor resolves the effective rule for one directed link. Caller holds
// b.mu.
func (b *Bus) ruleFor(from, to string) LinkRule {
	if r, ok := b.linkRules[[2]string{from, to}]; ok {
		return r
	}
	if r, ok := b.peerRules[to]; ok {
		return r
	}
	if r, ok := b.peerRules[from]; ok {
		return r
	}
	return b.defRule
}

// partitioned reports whether any installed partition separates from and
// to. Caller holds b.mu. (Map iteration order is irrelevant: the result is
// a pure OR and no RNG is consumed.)
func (b *Bus) partitioned(from, to string) bool {
	for _, groups := range b.partitions {
		gf, okf := groups[from]
		gt, okt := groups[to]
		if okf && okt && gf != gt {
			return true
		}
	}
	return false
}

// SetParallelDelivery switches Drain to the opt-in parallel mode: ready
// messages are handed to handlers concurrently, up to workers goroutines
// at once, preserving per-destination FIFO order (each destination's
// messages are delivered in (time, send sequence) order by a single
// goroutine per round). Handlers must be safe for concurrent invocation.
//
// Parallel delivery deliberately gives up transcript determinism: the
// interleaving of handlers — and therefore the send order of any messages
// they emit — depends on the scheduler, so chaos transcripts require the
// default serial mode (workers <= 1 restores it). Fault rules still apply
// at send time either way; TestBusParallelDrainEquivalence asserts the
// two modes agree on protocol outcomes on a fault-free bus.
func (b *Bus) SetParallelDelivery(workers int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if workers <= 1 {
		b.parallelWorkers = 0
	} else {
		b.parallelWorkers = workers
	}
}

// Drain delivers queued messages in virtual-time order (including ones
// enqueued by handlers during the drain) until the queue is empty,
// advancing the virtual clock to each message's delivery time. It returns
// the number of messages delivered.
//
// In parallel mode (SetParallelDelivery) Drain proceeds in rounds: every
// message queued at the start of a round is delivered, concurrently
// across destinations, before the messages those deliveries enqueue are
// considered.
func (b *Bus) Drain() int {
	b.mu.Lock()
	workers := b.parallelWorkers
	b.mu.Unlock()
	if workers > 1 {
		return b.drainParallel(workers)
	}
	n := 0
	for {
		b.mu.Lock()
		if len(b.queue) == 0 {
			b.mu.Unlock()
			return n
		}
		m := heap.Pop(&b.queue).(busMsg)
		if m.at > b.now {
			b.now = m.at
		}
		ep := b.peers[m.to]
		if ep == nil || ep.handler == nil {
			// The destination detached (crashed) with the message in
			// flight: the message is lost, observably.
			b.dropped.Add(1)
			b.mu.Unlock()
			continue
		}
		b.delivered.Add(1)
		h := ep.handler
		b.mu.Unlock()
		h(m.from, m.payload)
		n++
	}
}

// drainParallel delivers rounds of queued messages concurrently across
// destinations: within a round, each destination's messages keep their
// (time, send sequence) order and are delivered by one goroutine, while a
// semaphore bounds how many destinations are being served at once.
func (b *Bus) drainParallel(workers int) int {
	n := 0
	for {
		b.mu.Lock()
		if len(b.queue) == 0 {
			b.mu.Unlock()
			return n
		}
		// Pop the whole round in (time, seq) order, advancing the clock
		// past every message in it, and resolve handlers while the lock
		// protects the peer table.
		type delivery struct {
			h Handler
			m busMsg
		}
		groups := make(map[string][]delivery)
		var order []string
		for len(b.queue) > 0 {
			m := heap.Pop(&b.queue).(busMsg)
			if m.at > b.now {
				b.now = m.at
			}
			ep := b.peers[m.to]
			if ep == nil || ep.handler == nil {
				b.dropped.Add(1)
				continue
			}
			b.delivered.Add(1)
			if _, seen := groups[m.to]; !seen {
				order = append(order, m.to)
			}
			groups[m.to] = append(groups[m.to], delivery{h: ep.handler, m: m})
		}
		b.mu.Unlock()

		sem := make(chan struct{}, workers)
		var wg sync.WaitGroup
		for _, to := range order {
			msgs := groups[to]
			wg.Add(1)
			sem <- struct{}{}
			go func(msgs []delivery) {
				defer wg.Done()
				for _, d := range msgs {
					d.h(d.m.from, d.m.payload)
				}
				<-sem
			}(msgs)
			n += len(msgs)
		}
		wg.Wait()
	}
}

// Pending returns the number of undelivered messages.
func (b *Bus) Pending() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.queue)
}

// SendCount returns how many Send calls were accepted (queued for
// delivery or silently fault-dropped; errored sends are excluded).
func (b *Bus) SendCount() uint64 { return b.sends.Load() }

// DeliveredCount returns how many messages were handed to a handler.
func (b *Bus) DeliveredCount() uint64 { return b.delivered.Load() }

// DroppedCount returns how many messages were lost — to fault injection
// (DropRate, link rules, partitions) at send time, or to a destination
// that detached while the message was in flight.
func (b *Bus) DroppedCount() uint64 { return b.dropped.Load() }

// MetricsSnapshot exports the bus counters as a metrics snapshot, for
// merging into node registries (voronet-bench, the harness checker).
// Every accepted send is accounted exactly once as delivered, dropped or
// pending, so bus_sends_total == bus_delivered_total + bus_dropped_total
// + bus_pending after any full Drain.
func (b *Bus) MetricsSnapshot() metrics.Snapshot {
	return metrics.Snapshot{
		Counters: map[string]uint64{
			"bus_sends_total":     b.sends.Load(),
			"bus_delivered_total": b.delivered.Load(),
			"bus_dropped_total":   b.dropped.Load(),
		},
		Gauges: map[string]int64{
			"bus_pending": int64(b.Pending()),
		},
	}
}

func (e *busEndpoint) Addr() string { return e.addr }

func (e *busEndpoint) Send(to string, payload []byte) error {
	b := e.bus
	b.mu.Lock()
	defer b.mu.Unlock()
	if e.closed {
		return ErrClosed
	}
	if _, ok := b.peers[to]; !ok {
		return fmt.Errorf("%w: %q", ErrUnknownPeer, to)
	}
	// Fault decisions happen at send time, in send order, so a fixed
	// message sequence consumes the RNG identically across runs.
	drop := false
	if b.DropRate > 0 {
		b.dropSeq++
		// Deterministic drop pattern: every k-th message where
		// k = 1/DropRate.
		if b.DropRate >= 1 || b.dropSeq%uint64(1/b.DropRate+0.5) == 0 {
			drop = true
		}
	}
	rule := b.ruleFor(e.addr, to)
	if !drop {
		switch {
		case b.partitioned(e.addr, to):
			drop = true
		case rule.Down:
			drop = true
		case rule.DropUntil > 0 && b.now >= rule.DropFrom && b.now < rule.DropUntil:
			drop = true
		case rule.Drop > 0 && b.rng.Float64() < rule.Drop:
			drop = true
		}
	}
	if drop {
		b.sends.Add(1)
		b.dropped.Add(1)
		return nil
	}
	lat := rule.MinLatency
	if rule.MaxLatency > rule.MinLatency {
		lat += uint64(b.rng.Int63n(int64(rule.MaxLatency - rule.MinLatency + 1)))
	}
	cp := make([]byte, len(payload))
	copy(cp, payload)
	b.seq++
	b.sends.Add(1)
	heap.Push(&b.queue, busMsg{at: b.now + lat, seq: b.seq, from: e.addr, to: to, payload: cp})
	return nil
}

func (e *busEndpoint) SetHandler(h Handler) { e.handler = h }

func (e *busEndpoint) Close() error {
	b := e.bus
	b.mu.Lock()
	defer b.mu.Unlock()
	e.closed = true
	delete(b.peers, e.addr)
	return nil
}
