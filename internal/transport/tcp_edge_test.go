package transport

import (
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestTCPSendAfterCloseWithCachedConn: a closed endpoint must refuse to
// send even over a connection it had already dialled and cached, and must
// keep refusing (no panic, no resurrection).
func TestTCPSendAfterCloseWithCachedConn(t *testing.T) {
	a, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	b, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	b.SetHandler(func(string, []byte) {})

	if err := a.Send(b.Addr(), []byte("before close")); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := a.Send(b.Addr(), []byte("after close")); err == nil {
			t.Fatal("send after close must fail")
		} else if !strings.Contains(err.Error(), "closed") {
			t.Fatalf("send after close: %v", err)
		}
	}
}

// TestTCPSendUnknownPeer: sending to an address nothing listens on fails
// with a dial error instead of blocking or panicking.
func TestTCPSendUnknownPeer(t *testing.T) {
	a, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	// Reserve a port, then free it so the dial is refused.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := ln.Addr().String()
	ln.Close()

	if err := a.Send(dead, []byte("hello?")); err == nil {
		t.Fatal("send to unknown peer must fail")
	}
	// The endpoint stays usable after the failure.
	b, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	got := make(chan struct{}, 1)
	b.SetHandler(func(string, []byte) { got <- struct{}{} })
	if err := a.Send(b.Addr(), []byte("still alive")); err != nil {
		t.Fatal(err)
	}
	select {
	case <-got:
	case <-time.After(5 * time.Second):
		t.Fatal("delivery after failed send timed out")
	}
}

// TestTCPConcurrentSends hammers one receiver from many goroutines over
// two sender endpoints. Every frame must arrive intact: frame writes to a
// shared connection must not interleave.
func TestTCPConcurrentSends(t *testing.T) {
	recv, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()

	const (
		senders   = 2
		workers   = 8
		perWorker = 50
	)
	total := senders * workers * perWorker
	var delivered atomic.Int64
	seen := make(map[string]bool, total)
	var seenMu sync.Mutex
	recv.SetHandler(func(from string, payload []byte) {
		seenMu.Lock()
		seen[string(payload)] = true
		seenMu.Unlock()
		delivered.Add(1)
	})

	var eps []*TCPEndpoint
	for i := 0; i < senders; i++ {
		ep, err := ListenTCP("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer ep.Close()
		eps = append(eps, ep)
	}

	var wg sync.WaitGroup
	for s, ep := range eps {
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(ep *TCPEndpoint, s, w int) {
				defer wg.Done()
				for i := 0; i < perWorker; i++ {
					msg := fmt.Sprintf("s%d-w%d-i%03d|%s", s, w, i, strings.Repeat("x", 100+i))
					if err := ep.Send(recv.Addr(), []byte(msg)); err != nil {
						t.Errorf("send %s: %v", msg, err)
						return
					}
				}
			}(ep, s, w)
		}
	}
	wg.Wait()

	deadline := time.Now().Add(10 * time.Second)
	for delivered.Load() < int64(total) && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := delivered.Load(); got != int64(total) {
		t.Fatalf("delivered %d of %d frames", got, total)
	}
	seenMu.Lock()
	defer seenMu.Unlock()
	if len(seen) != total {
		t.Fatalf("distinct payloads %d of %d (frames corrupted or duplicated)", len(seen), total)
	}
}

// TestTCPSendAfterPeerRestart: a peer that dies and restarts on the same
// address must be reachable again. The failure mode this guards: the
// sender's cached outbound connection to the dead incarnation accepts its
// first write into the kernel buffer (the RST only surfaces on the write
// after), silently losing one frame — exactly the frame that grants a
// durably-restarted node its rejoin. The restarted peer's fresh inbound
// dial is the refresh signal (refreshOutbound).
func TestTCPSendAfterPeerRestart(t *testing.T) {
	a, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	aGot := make(chan string, 8)
	a.SetHandler(func(_ string, p []byte) { aGot <- string(p) })

	b1, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := b1.Addr()
	b1Got := make(chan string, 8)
	b1.SetHandler(func(_ string, p []byte) { b1Got <- string(p) })

	// Establish (and cache) a's outbound connection to the first
	// incarnation.
	if err := a.Send(addr, []byte("one")); err != nil {
		t.Fatal(err)
	}
	select {
	case <-b1Got:
	case <-time.After(5 * time.Second):
		t.Fatal("first incarnation never received the frame")
	}
	if err := b1.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart on the same address and dial a — the rejoin pattern.
	b2, err := ListenTCP(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer b2.Close()
	b2Got := make(chan string, 8)
	b2.SetHandler(func(_ string, p []byte) { b2Got <- string(p) })
	if err := b2.Send(a.Addr(), []byte("rejoining")); err != nil {
		t.Fatal(err)
	}
	select {
	case <-aGot:
	case <-time.After(5 * time.Second):
		t.Fatal("a never received the restarted peer's frame")
	}

	// a's reply must reach the restarted incarnation, not vanish into the
	// stale cached socket.
	if err := a.Send(addr, []byte("two")); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-b2Got:
		if got != "two" {
			t.Fatalf("restarted peer got %q, want %q", got, "two")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("frame to the restarted peer was lost")
	}
}
