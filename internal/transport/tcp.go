package transport

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"runtime"
	"sync"
	"time"

	"voronet/internal/metrics"
)

// TCPOptions tunes a TCP endpoint's dispatch and write behaviour. The zero
// value selects the concurrent defaults: per-connection ordered delivery
// lanes dispatched by a bounded worker pool, and coalesced frame writes.
type TCPOptions struct {
	// DispatchWorkers bounds how many handler invocations run at once
	// across all inbound connections; messages from one connection are
	// always handled in order, one at a time. <= 0 selects GOMAXPROCS
	// (at least 2, so a slow handler cannot monopolise the endpoint).
	DispatchWorkers int
	// SerialDispatch restores the legacy behaviour: one global mutex
	// serialises every handler invocation across all connections. This is
	// the pre-concurrency baseline voronet-bench -net measures against.
	SerialDispatch bool
	// NoCoalesce disables write coalescing: every Send performs its own
	// Write syscall, as the pre-concurrency transport did.
	NoCoalesce bool
}

func (o TCPOptions) workers() int {
	if o.DispatchWorkers > 0 {
		return o.DispatchWorkers
	}
	w := runtime.GOMAXPROCS(0)
	if w < 2 {
		w = 2
	}
	return w
}

// TCPEndpoint is a transport endpoint over TCP. Each message is a
// length-prefixed frame carrying the sender address and the payload.
// Connections are dialled on demand and cached.
//
// Inbound delivery is organised as per-peer ordered lanes: every inbound
// connection's read loop invokes the handler inline, one frame at a time
// in arrival order, with a semaphore bounding how many handler
// invocations run at once across connections. Messages from one peer are
// therefore handled strictly FIFO while independent peers' messages are
// handled in parallel; a slow handler stops frame reads on its own
// connection only (the kernel socket buffer and TCP flow control are the
// bounded mailbox), never its peers'. The handler must be safe for
// concurrent invocation (internal/node is; its read paths share an
// RWMutex). TCPOptions.SerialDispatch restores the legacy single-mutex
// dispatch.
type TCPEndpoint struct {
	ln      net.Listener
	opts    TCPOptions
	sem     chan struct{} // bounds concurrent handler invocations
	mu      sync.Mutex    // guards conns/inbound + handler installation
	conns   map[string]*tcpConn
	inbound map[net.Conn]struct{}
	handler Handler

	dispatch sync.Mutex // serialises handler invocations (SerialDispatch)
	closed   bool
	wg       sync.WaitGroup

	metrics *metrics.Registry
	em      endpointMetrics
}

// endpointMetrics caches the endpoint's instruments so the hot paths
// never touch the registry map. All fields are nil-safe no-ops when the
// registry is nil (they never are: ListenTCPOptions always builds one —
// the per-event cost is a handful of atomic ops, measured <5% on the
// store benchmark).
type endpointMetrics struct {
	framesIn  *metrics.Counter // frames handed to the handler
	bytesIn   *metrics.Counter
	framesOut *metrics.Counter // frames written (or queued into a coalesced write)
	bytesOut  *metrics.Counter
	sendErrs  *metrics.Counter // Send calls that returned an error
	dials     *metrics.Counter // outbound connections established
	accepts   *metrics.Counter // inbound connections accepted
	refreshes *metrics.Counter // cached outbound conns dropped on peer re-dial

	// dispatchWait is the time an inbound frame waited for a dispatch
	// worker slot (the endpoint's lock-wait signal: it grows when
	// handlers outnumber workers). inflight is the number of handler
	// invocations running right now; queueBytes is the write-coalescing
	// backlog across connections (the dispatch-queue-depth gauges).
	dispatchWait *metrics.Histogram
	inflight     *metrics.Gauge
	queueBytes   *metrics.Gauge
}

func newEndpointMetrics(r *metrics.Registry) endpointMetrics {
	return endpointMetrics{
		framesIn:     r.Counter("tcp_frames_in_total"),
		bytesIn:      r.Counter("tcp_bytes_in_total"),
		framesOut:    r.Counter("tcp_frames_out_total"),
		bytesOut:     r.Counter("tcp_bytes_out_total"),
		sendErrs:     r.Counter("tcp_send_errors_total"),
		dials:        r.Counter("tcp_dials_total"),
		accepts:      r.Counter("tcp_accepts_total"),
		refreshes:    r.Counter("tcp_conn_refresh_total"),
		dispatchWait: r.Histogram("tcp_dispatch_wait_seconds", metrics.LatencyBuckets()),
		inflight:     r.Gauge("tcp_inflight_dispatches"),
		queueBytes:   r.Gauge("tcp_write_queue_bytes"),
	}
}

// tcpConn is one cached outbound connection with group-commit write
// coalescing: the first sender to reach an idle connection writes its
// frame immediately and becomes the flusher; frames from senders that
// arrive while that write syscall is in flight accumulate in pending and
// are flushed in batches once it returns. Coalescing adds no latency when
// the connection is idle and batches exactly when the connection is the
// bottleneck.
//
// Each flush batch is capped at maxCoalesceBytes: the backlog is drained
// FIFO in bounded Writes rather than one unbounded Write, so a small
// frame queued behind a burst of large ones waits for at most one capped
// batch ahead of it, not for the entire backlog to hit the wire. (The
// unbounded window was the mixed-load tail-latency bug: 128 KiB store
// PUTs pooling in pending inflated a queued query's wait to the transfer
// time of the whole pool.)
type tcpConn struct {
	c  net.Conn
	em *endpointMetrics // owning endpoint's instruments (may be nil in tests)

	mu       sync.Mutex // guards pending/flushing
	flushing bool
	pending  []pendingFrame
	wbuf     []byte // flusher-private batch scratch (single flusher at a time)

	wmu sync.Mutex // serialises writes in NoCoalesce mode
}

// pendingFrame is one queued frame awaiting a coalesced flush; done
// receives the outcome of the Write call that carried its bytes.
type pendingFrame struct {
	buf  []byte
	done chan error
}

// maxCoalesceBytes caps one coalesced flush batch. 64 KiB keeps the
// syscall amortisation of group commit (dozens of small frames per
// Write) while bounding how long any queued frame can be delayed by
// bytes ahead of it in the same backlog.
const maxCoalesceBytes = 64 << 10

func (cc *tcpConn) queueGauge() *metrics.Gauge {
	if cc.em == nil {
		return nil
	}
	return cc.em.queueBytes
}

// MaxFrame is the largest accepted message frame (1 MiB); VoroNet views
// are O(1) so real frames are tiny.
const MaxFrame = 1 << 20

// frameBuf is a pooled outbound frame buffer: Send encodes
// [header | payload] into one and blocks until the write carrying those
// bytes finished (directly or inside a coalesced flush batch), so the
// buffer can return to the pool the moment Send's outcome is known —
// per-frame allocation churn was the transport-side half of the
// per-message cost the pooled codec removes. maxPooledFrame keeps the
// occasional MiB-sized value frame from pinning pool memory.
type frameBuf struct{ b []byte }

const maxPooledFrame = 1 << 18

var framePool = sync.Pool{New: func() any { return &frameBuf{b: make([]byte, 0, 2048)} }}

func putFrameBuf(fb *frameBuf) {
	if cap(fb.b) > maxPooledFrame {
		fb.b = make([]byte, 0, 2048)
	}
	framePool.Put(fb)
}

// ListenTCP starts an endpoint on the given address ("127.0.0.1:0" picks a
// free port) with the default concurrent options.
func ListenTCP(addr string) (*TCPEndpoint, error) {
	return ListenTCPOptions(addr, TCPOptions{})
}

// ListenTCPOptions starts an endpoint with explicit dispatch and write
// options.
func ListenTCPOptions(addr string, opts TCPOptions) (*TCPEndpoint, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen: %w", err)
	}
	reg := metrics.NewRegistry()
	ep := &TCPEndpoint{
		ln:      ln,
		opts:    opts,
		sem:     make(chan struct{}, opts.workers()),
		conns:   make(map[string]*tcpConn),
		inbound: make(map[net.Conn]struct{}),
		metrics: reg,
		em:      newEndpointMetrics(reg),
	}
	ep.wg.Add(1)
	go ep.acceptLoop()
	return ep, nil
}

// Addr returns the listening address.
func (e *TCPEndpoint) Addr() string { return e.ln.Addr().String() }

// Metrics returns the endpoint's instrument registry (frame and byte
// counters, dispatch-wait histogram, in-flight and write-queue gauges),
// for merging into a node's debug endpoint or a bench snapshot.
func (e *TCPEndpoint) Metrics() *metrics.Registry { return e.metrics }

// SetHandler installs the inbound handler.
func (e *TCPEndpoint) SetHandler(h Handler) {
	e.mu.Lock()
	e.handler = h
	e.mu.Unlock()
}

func (e *TCPEndpoint) acceptLoop() {
	defer e.wg.Done()
	for {
		c, err := e.ln.Accept()
		if err != nil {
			return
		}
		e.mu.Lock()
		if e.closed {
			e.mu.Unlock()
			c.Close()
			return
		}
		e.inbound[c] = struct{}{}
		e.mu.Unlock()
		e.em.accepts.Inc()
		e.wg.Add(1)
		go e.readLoop(c)
	}
}

func (e *TCPEndpoint) readLoop(c net.Conn) {
	defer e.wg.Done()
	defer func() {
		c.Close()
		e.mu.Lock()
		delete(e.inbound, c)
		e.mu.Unlock()
	}()

	// This read loop IS the connection's ordered delivery lane: frames are
	// handled inline, one at a time, in arrival order. In the default
	// parallel mode the endpoint semaphore bounds concurrency across
	// lanes and a handler that stalls blocks only this connection (its
	// socket buffer and TCP flow control provide the bounded mailbox); in
	// SerialDispatch mode the legacy global mutex serialises handlers
	// across all connections.
	// Frames are read into two buffers reused for the life of the
	// connection (the Handler contract: payloads are valid only for the
	// duration of the call, and every handler in this codebase decodes or
	// copies synchronously). The peer's address is constant per
	// connection, so the `from` string is interned once; together with
	// the pooled send frames this makes the steady-state transport path
	// allocation-free per message.
	r := bufio.NewReader(c)
	peer := ""
	var fromBuf, payloadBuf []byte
	for {
		fromB, payload, err := readFrameInto(r, &fromBuf, &payloadBuf)
		if err != nil {
			return
		}
		from := peer
		if string(fromB) != peer { // comparison does not allocate
			from = string(fromB)
		}
		if peer == "" {
			// First frame on a fresh inbound connection: the peer dialled
			// us anew, which is the one observable signal that it may have
			// restarted — in which case our cached outbound connection to
			// it is a dead socket whose first write would succeed into the
			// kernel buffer and vanish (the RST only surfaces on the write
			// after). Drop the cached connection while it is idle so the
			// next Send re-dials the live incarnation. A healthy peer
			// re-dialling costs one extra dial, nothing more.
			peer = from
			e.refreshOutbound(from)
		}
		e.mu.Lock()
		h := e.handler
		e.mu.Unlock()
		if h == nil {
			continue
		}
		// The wait for a dispatch slot (worker semaphore or the legacy
		// global mutex) is the endpoint's contention signal; the gauge
		// pair brackets the handler so /metrics shows live concurrency.
		wait := time.Now()
		if e.opts.SerialDispatch {
			e.dispatch.Lock()
			e.em.dispatchWait.Observe(time.Since(wait).Seconds())
			e.em.framesIn.Inc()
			e.em.bytesIn.Add(uint64(len(payload)))
			e.em.inflight.Inc()
			h(from, payload)
			e.em.inflight.Dec()
			e.dispatch.Unlock()
		} else {
			e.sem <- struct{}{}
			e.em.dispatchWait.Observe(time.Since(wait).Seconds())
			e.em.framesIn.Inc()
			e.em.bytesIn.Add(uint64(len(payload)))
			e.em.inflight.Inc()
			h(from, payload)
			e.em.inflight.Dec()
			<-e.sem
		}
		if cap(payloadBuf) > maxPooledFrame {
			// Don't let one oversized value frame pin a MiB of buffer for
			// the connection's remaining lifetime.
			payloadBuf = nil
		}
	}
}

// refreshOutbound drops the cached outbound connection to `to` if it is
// idle (no coalesced write in flight, nothing queued). Called when `to`
// dials in on a fresh connection — the restart hint; see readLoop. A
// connection mid-write is left alone: if it really is dead the write
// fails and Send's error path evicts it anyway.
func (e *TCPEndpoint) refreshOutbound(to string) {
	e.mu.Lock()
	c, ok := e.conns[to]
	if ok {
		c.mu.Lock()
		idle := !c.flushing && len(c.pending) == 0
		c.mu.Unlock()
		if !idle {
			c = nil
		} else {
			delete(e.conns, to)
		}
	} else {
		c = nil
	}
	e.mu.Unlock()
	if c != nil {
		c.c.Close()
		e.em.refreshes.Inc()
	}
}

// Send dials (or reuses) a connection to the peer and writes one frame.
// Concurrent Sends are safe: frames to the same peer never interleave
// their bytes, and unless NoCoalesce is set, frames queued while another
// frame's write syscall is in flight are flushed together with a single
// Write (group commit). Send returns once its own frame has been written
// (or the coalesced write carrying it failed).
func (e *TCPEndpoint) Send(to string, payload []byte) error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return ErrClosed
	}
	c, ok := e.conns[to]
	e.mu.Unlock()
	if !ok {
		nc, err := net.Dial("tcp", to)
		if err != nil {
			e.em.sendErrs.Inc()
			return fmt.Errorf("transport: dial %s: %w", to, err)
		}
		e.em.dials.Inc()
		e.mu.Lock()
		if e.closed {
			e.mu.Unlock()
			nc.Close()
			return ErrClosed
		}
		if existing, dup := e.conns[to]; dup {
			nc.Close()
			c = existing
		} else {
			c = &tcpConn{c: nc, em: &e.em}
			e.conns[to] = c
		}
		e.mu.Unlock()
	}
	fb := framePool.Get().(*frameBuf)
	fb.b = appendFrame(fb.b[:0], e.Addr(), payload)
	frame := fb.b
	var err error
	if e.opts.NoCoalesce {
		c.wmu.Lock()
		_, err = c.c.Write(frame)
		c.wmu.Unlock()
	} else {
		// writeCoalesced returns only after the Write call that carried
		// this frame's bytes finished (its own, or a flush batch that
		// copied them out first), so the buffer is reusable on return.
		err = c.writeCoalesced(frame)
	}
	putFrameBuf(fb)
	if err != nil {
		e.em.sendErrs.Inc()
		e.mu.Lock()
		if e.conns[to] == c {
			delete(e.conns, to)
		}
		e.mu.Unlock()
		c.c.Close()
		return err
	}
	e.em.framesOut.Inc()
	e.em.bytesOut.Add(uint64(len(payload)))
	return nil
}

// writeCoalesced writes one frame with group commit (see tcpConn). It
// returns the error of the Write call that carried this frame's bytes.
func (cc *tcpConn) writeCoalesced(frame []byte) error {
	cc.mu.Lock()
	if cc.flushing {
		// A write is in flight: queue behind it and wait for the flush
		// batch that carries our bytes.
		done := make(chan error, 1)
		cc.pending = append(cc.pending, pendingFrame{buf: frame, done: done})
		cc.queueGauge().Add(int64(len(frame)))
		cc.mu.Unlock()
		return <-done
	}
	cc.flushing = true
	cc.mu.Unlock()

	_, err := cc.c.Write(frame)
	// Anything that queued up behind us is flushed by a dedicated
	// goroutine, not by looping here: this goroutine is usually a
	// connection read loop's handler, and under sustained load the
	// pending buffer can refill faster than it drains — looping would
	// hold this sender (and its lane, and a dispatch-worker slot)
	// captive indefinitely. At most one flushPending goroutine exists
	// per connection, because flushing stays true until it drains.
	cc.mu.Lock()
	if len(cc.pending) == 0 {
		cc.flushing = false
		cc.mu.Unlock()
		return err
	}
	cc.mu.Unlock()
	go cc.flushPending()
	return err
}

// flushPending drains the pending queue batch by batch: each batch is the
// longest FIFO prefix within maxCoalesceBytes (always at least one frame,
// so an oversized frame still goes out alone), sent with one Write whose
// outcome every frame in the batch observes. It runs until the queue is
// empty and then releases the flushing flag.
func (cc *tcpConn) flushPending() {
	for {
		cc.mu.Lock()
		if len(cc.pending) == 0 {
			cc.flushing = false
			cc.mu.Unlock()
			return
		}
		batch, bytes := 1, len(cc.pending[0].buf)
		for batch < len(cc.pending) && bytes+len(cc.pending[batch].buf) <= maxCoalesceBytes {
			bytes += len(cc.pending[batch].buf)
			batch++
		}
		frames := cc.pending[:batch:batch]
		if cc.pending = cc.pending[batch:]; len(cc.pending) == 0 {
			cc.pending = nil // release the backing array between bursts
		}
		cc.queueGauge().Add(-int64(bytes))
		cc.mu.Unlock()

		// Flatten into the flusher-private scratch: one Write per batch
		// keeps group commit's syscall economics without net.Buffers
		// (whose writev fast path only exists for real TCP conns).
		buf := cc.wbuf[:0]
		for _, f := range frames {
			buf = append(buf, f.buf...)
		}
		_, werr := cc.c.Write(buf)
		cc.wbuf = buf[:0]
		for _, f := range frames {
			f.done <- werr
		}
	}
}

// Close shuts the endpoint down, tearing down outbound and inbound
// connections and waiting for the reader and dispatcher goroutines to
// drain.
func (e *TCPEndpoint) Close() error {
	e.mu.Lock()
	e.closed = true
	for _, c := range e.conns {
		c.c.Close()
	}
	e.conns = map[string]*tcpConn{}
	for c := range e.inbound {
		c.Close()
	}
	e.mu.Unlock()
	err := e.ln.Close()
	e.wg.Wait()
	return err
}

// Frame format: u32 fromLen | from | u32 payloadLen | payload.

// appendFrame appends one whole frame to buf so it can be written with a
// single Write call.
func appendFrame(buf []byte, from string, payload []byte) []byte {
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(from)))
	buf = append(buf, from...)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(payload)))
	return append(buf, payload...)
}

// readFrameInto reads one frame, reusing (and growing as needed) the
// caller's two buffers. The returned slices alias those buffers and are
// valid only until the next call — the read loop enforces the Handler
// payload-lifetime contract before reusing them.
func readFrameInto(r io.Reader, fromBuf, payloadBuf *[]byte) (from, payload []byte, err error) {
	if from, err = readSegment(r, fromBuf); err != nil {
		return
	}
	payload, err = readSegment(r, payloadBuf)
	return
}

func readSegment(r io.Reader, buf *[]byte) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return nil, errors.New("transport: oversized frame")
	}
	if cap(*buf) < int(n) {
		*buf = make([]byte, n)
	}
	b := (*buf)[:n]
	if _, err := io.ReadFull(r, b); err != nil {
		return nil, err
	}
	return b, nil
}

var _ Endpoint = (*TCPEndpoint)(nil)
