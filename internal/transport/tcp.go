package transport

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
)

// TCPEndpoint is a transport endpoint over TCP. Each message is a
// length-prefixed frame carrying the sender address and the payload.
// Connections are dialled on demand and cached; inbound messages are
// dispatched to the handler from per-connection goroutines, serialised by
// an internal mutex so node code never sees concurrent deliveries.
type TCPEndpoint struct {
	ln       net.Listener
	mu       sync.Mutex // guards conns/inbound + handler installation
	conns    map[string]net.Conn
	inbound  map[net.Conn]struct{}
	handler  Handler
	dispatch sync.Mutex // serialises handler invocations
	closed   bool
	wg       sync.WaitGroup
}

// MaxFrame is the largest accepted message frame (1 MiB); VoroNet views
// are O(1) so real frames are tiny.
const MaxFrame = 1 << 20

// ListenTCP starts an endpoint on the given address ("127.0.0.1:0" picks a
// free port).
func ListenTCP(addr string) (*TCPEndpoint, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen: %w", err)
	}
	ep := &TCPEndpoint{
		ln:      ln,
		conns:   make(map[string]net.Conn),
		inbound: make(map[net.Conn]struct{}),
	}
	ep.wg.Add(1)
	go ep.acceptLoop()
	return ep, nil
}

// Addr returns the listening address.
func (e *TCPEndpoint) Addr() string { return e.ln.Addr().String() }

// SetHandler installs the inbound handler.
func (e *TCPEndpoint) SetHandler(h Handler) {
	e.mu.Lock()
	e.handler = h
	e.mu.Unlock()
}

func (e *TCPEndpoint) acceptLoop() {
	defer e.wg.Done()
	for {
		c, err := e.ln.Accept()
		if err != nil {
			return
		}
		e.mu.Lock()
		if e.closed {
			e.mu.Unlock()
			c.Close()
			return
		}
		e.inbound[c] = struct{}{}
		e.mu.Unlock()
		e.wg.Add(1)
		go e.readLoop(c)
	}
}

func (e *TCPEndpoint) readLoop(c net.Conn) {
	defer e.wg.Done()
	defer func() {
		c.Close()
		e.mu.Lock()
		delete(e.inbound, c)
		e.mu.Unlock()
	}()
	r := bufio.NewReader(c)
	for {
		from, payload, err := readFrame(r)
		if err != nil {
			return
		}
		e.mu.Lock()
		h := e.handler
		e.mu.Unlock()
		if h != nil {
			e.dispatch.Lock()
			h(from, payload)
			e.dispatch.Unlock()
		}
	}
}

// Send dials (or reuses) a connection to the peer and writes one frame.
func (e *TCPEndpoint) Send(to string, payload []byte) error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return errors.New("transport: endpoint closed")
	}
	c, ok := e.conns[to]
	e.mu.Unlock()
	if !ok {
		nc, err := net.Dial("tcp", to)
		if err != nil {
			return fmt.Errorf("transport: dial %s: %w", to, err)
		}
		e.mu.Lock()
		if existing, dup := e.conns[to]; dup {
			nc.Close()
			c = existing
		} else {
			e.conns[to] = nc
			c = nc
		}
		e.mu.Unlock()
	}
	if err := writeFrame(c, e.Addr(), payload); err != nil {
		e.mu.Lock()
		delete(e.conns, to)
		e.mu.Unlock()
		c.Close()
		return err
	}
	return nil
}

// Close shuts the endpoint down, tearing down outbound and inbound
// connections and waiting for the reader goroutines to drain.
func (e *TCPEndpoint) Close() error {
	e.mu.Lock()
	e.closed = true
	for _, c := range e.conns {
		c.Close()
	}
	e.conns = map[string]net.Conn{}
	for c := range e.inbound {
		c.Close()
	}
	e.mu.Unlock()
	err := e.ln.Close()
	e.wg.Wait()
	return err
}

// Frame format: u32 fromLen | from | u32 payloadLen | payload.

func writeFrame(w io.Writer, from string, payload []byte) error {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(from)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := io.WriteString(w, from); err != nil {
		return err
	}
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

func readFrame(r io.Reader) (from string, payload []byte, err error) {
	var hdr [4]byte
	if _, err = io.ReadFull(r, hdr[:]); err != nil {
		return
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		err = errors.New("transport: oversized frame")
		return
	}
	fb := make([]byte, n)
	if _, err = io.ReadFull(r, fb); err != nil {
		return
	}
	if _, err = io.ReadFull(r, hdr[:]); err != nil {
		return
	}
	n = binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		err = errors.New("transport: oversized frame")
		return
	}
	payload = make([]byte, n)
	if _, err = io.ReadFull(r, payload); err != nil {
		return
	}
	return string(fb), payload, nil
}

var _ Endpoint = (*TCPEndpoint)(nil)
