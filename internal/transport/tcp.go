package transport

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
)

// TCPEndpoint is a transport endpoint over TCP. Each message is a
// length-prefixed frame carrying the sender address and the payload.
// Connections are dialled on demand and cached; inbound messages are
// dispatched to the handler from per-connection goroutines, serialised by
// an internal mutex so node code never sees concurrent deliveries.
type TCPEndpoint struct {
	ln       net.Listener
	mu       sync.Mutex // guards conns/inbound + handler installation
	conns    map[string]*tcpConn
	inbound  map[net.Conn]struct{}
	handler  Handler
	dispatch sync.Mutex // serialises handler invocations
	closed   bool
	wg       sync.WaitGroup
}

// tcpConn is one cached outbound connection. wmu serialises frame writes:
// concurrent Sends to the same peer must not interleave their frame bytes
// on the stream.
type tcpConn struct {
	c   net.Conn
	wmu sync.Mutex
}

// MaxFrame is the largest accepted message frame (1 MiB); VoroNet views
// are O(1) so real frames are tiny.
const MaxFrame = 1 << 20

// ListenTCP starts an endpoint on the given address ("127.0.0.1:0" picks a
// free port).
func ListenTCP(addr string) (*TCPEndpoint, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen: %w", err)
	}
	ep := &TCPEndpoint{
		ln:      ln,
		conns:   make(map[string]*tcpConn),
		inbound: make(map[net.Conn]struct{}),
	}
	ep.wg.Add(1)
	go ep.acceptLoop()
	return ep, nil
}

// Addr returns the listening address.
func (e *TCPEndpoint) Addr() string { return e.ln.Addr().String() }

// SetHandler installs the inbound handler.
func (e *TCPEndpoint) SetHandler(h Handler) {
	e.mu.Lock()
	e.handler = h
	e.mu.Unlock()
}

func (e *TCPEndpoint) acceptLoop() {
	defer e.wg.Done()
	for {
		c, err := e.ln.Accept()
		if err != nil {
			return
		}
		e.mu.Lock()
		if e.closed {
			e.mu.Unlock()
			c.Close()
			return
		}
		e.inbound[c] = struct{}{}
		e.mu.Unlock()
		e.wg.Add(1)
		go e.readLoop(c)
	}
}

func (e *TCPEndpoint) readLoop(c net.Conn) {
	defer e.wg.Done()
	defer func() {
		c.Close()
		e.mu.Lock()
		delete(e.inbound, c)
		e.mu.Unlock()
	}()
	r := bufio.NewReader(c)
	for {
		from, payload, err := readFrame(r)
		if err != nil {
			return
		}
		e.mu.Lock()
		h := e.handler
		e.mu.Unlock()
		if h != nil {
			e.dispatch.Lock()
			h(from, payload)
			e.dispatch.Unlock()
		}
	}
}

// Send dials (or reuses) a connection to the peer and writes one frame.
// Concurrent Sends are safe: frames to the same peer are serialised by a
// per-connection lock and written with a single Write call.
func (e *TCPEndpoint) Send(to string, payload []byte) error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return errors.New("transport: endpoint closed")
	}
	c, ok := e.conns[to]
	e.mu.Unlock()
	if !ok {
		nc, err := net.Dial("tcp", to)
		if err != nil {
			return fmt.Errorf("transport: dial %s: %w", to, err)
		}
		e.mu.Lock()
		if e.closed {
			e.mu.Unlock()
			nc.Close()
			return errors.New("transport: endpoint closed")
		}
		if existing, dup := e.conns[to]; dup {
			nc.Close()
			c = existing
		} else {
			c = &tcpConn{c: nc}
			e.conns[to] = c
		}
		e.mu.Unlock()
	}
	frame := appendFrame(nil, e.Addr(), payload)
	c.wmu.Lock()
	_, err := c.c.Write(frame)
	c.wmu.Unlock()
	if err != nil {
		e.mu.Lock()
		if e.conns[to] == c {
			delete(e.conns, to)
		}
		e.mu.Unlock()
		c.c.Close()
		return err
	}
	return nil
}

// Close shuts the endpoint down, tearing down outbound and inbound
// connections and waiting for the reader goroutines to drain.
func (e *TCPEndpoint) Close() error {
	e.mu.Lock()
	e.closed = true
	for _, c := range e.conns {
		c.c.Close()
	}
	e.conns = map[string]*tcpConn{}
	for c := range e.inbound {
		c.Close()
	}
	e.mu.Unlock()
	err := e.ln.Close()
	e.wg.Wait()
	return err
}

// Frame format: u32 fromLen | from | u32 payloadLen | payload.

// appendFrame appends one whole frame to buf so it can be written with a
// single Write call.
func appendFrame(buf []byte, from string, payload []byte) []byte {
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(from)))
	buf = append(buf, from...)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(payload)))
	return append(buf, payload...)
}

func readFrame(r io.Reader) (from string, payload []byte, err error) {
	var hdr [4]byte
	if _, err = io.ReadFull(r, hdr[:]); err != nil {
		return
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		err = errors.New("transport: oversized frame")
		return
	}
	fb := make([]byte, n)
	if _, err = io.ReadFull(r, fb); err != nil {
		return
	}
	if _, err = io.ReadFull(r, hdr[:]); err != nil {
		return
	}
	n = binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		err = errors.New("transport: oversized frame")
		return
	}
	payload = make([]byte, n)
	if _, err = io.ReadFull(r, payload); err != nil {
		return
	}
	return string(fb), payload, nil
}

var _ Endpoint = (*TCPEndpoint)(nil)
