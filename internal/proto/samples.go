package proto

import "voronet/internal/geom"

// Samples returns one representative, realistically populated envelope
// per wire kind. The set is shared by the zero-allocation encode gate
// (TestAppendEncodeZeroAllocs), the fuzz corpus seeds, and the
// voronet-bench -net codec phase, so all three measure the same message
// shapes the live node actually sends.
func Samples() []*Envelope {
	ni := func(addr string, x, y float64) NodeInfo {
		return NodeInfo{Addr: addr, Pos: geom.Pt(x, y)}
	}
	vn := []NodeInfo{ni("10.0.0.2:7001", 0.31, 0.44), ni("10.0.0.3:7001", 0.52, 0.41), ni("10.0.0.4:7001", 0.38, 0.58)}
	return []*Envelope{
		{Type: KindRoute, From: ni("10.0.0.1:7001", 0.20, 0.30), Purpose: PurposeQuery,
			Target: geom.Pt(0.612, 0.344), Origin: ni("10.0.0.9:7001", 0.91, 0.12),
			Hops: 4, QueryID: 831, Trace: true,
			Path: []TraceHop{
				{Addr: "10.0.0.9:7001", Rule: "long", Nanos: 10480},
				{Addr: "10.0.0.7:7001", Rule: "vn", Nanos: 2210},
			}},
		{Type: KindJoinGrant, From: ni("10.0.0.5:7001", 0.45, 0.47),
			Neighbors: vn,
			TwoHop: []NeighborRecord{
				{Node: vn[0], VN: []NodeInfo{vn[1], vn[2]}},
				{Node: vn[1], VN: []NodeInfo{vn[0]}},
			},
			CloseCand: vn[:2],
			Back:      []BackEntry{{Origin: ni("10.0.0.8:7001", 0.11, 0.83), Link: 1, Target: geom.Pt(0.46, 0.48)}},
			Departed:  []string{"10.0.0.6:7001"}, DepartedGen: []uint64{2}},
		{Type: KindSetNeighbors, From: ni("10.0.0.5:7001", 0.45, 0.47), Neighbors: vn},
		{Type: KindNeighborList, From: ni("10.0.0.2:7001", 0.31, 0.44), Neighbors: vn,
			Departed: []string{"10.0.0.6:7001"}},
		{Type: KindCNAdd, From: ni("10.0.0.3:7001", 0.52, 0.41)},
		{Type: KindCNRemove, From: ni("10.0.0.3:7001", 0.52, 0.41)},
		{Type: KindLongLinkGrant, From: ni("10.0.0.4:7001", 0.38, 0.58),
			Granter: ni("10.0.0.4:7001", 0.38, 0.58), Link: 2, Hops: 9},
		{Type: KindBackTransfer, From: ni("10.0.0.4:7001", 0.38, 0.58),
			Back: []BackEntry{
				{Origin: ni("10.0.0.8:7001", 0.11, 0.83), Link: 0, Target: geom.Pt(0.40, 0.55)},
				{Origin: ni("10.0.0.9:7001", 0.91, 0.12), Link: 3, Target: geom.Pt(0.37, 0.61)},
			}},
		{Type: KindLongLinkUpdate, From: ni("10.0.0.2:7001", 0.31, 0.44),
			Granter: ni("10.0.0.7:7001", 0.66, 0.21), Link: 1},
		{Type: KindLeave, From: ni("10.0.0.3:7001", 0.52, 0.41), Neighbors: vn[:2]},
		{Type: KindLeaveCN, From: ni("10.0.0.3:7001", 0.52, 0.41)},
		{Type: KindQueryAnswer, From: ni("10.0.0.4:7001", 0.38, 0.58), QueryID: 831, Hops: 6,
			Path: []TraceHop{{Addr: "10.0.0.4:7001", Rule: "owner", Nanos: 990}}},
		{Type: KindBackWithdraw, From: ni("10.0.0.3:7001", 0.52, 0.41), Link: 1},
		{Type: KindRangeForward, From: ni("10.0.0.2:7001", 0.31, 0.44), Purpose: PurposeRange,
			Target: geom.Pt(0.10, 0.20), TargetB: geom.Pt(0.80, 0.75),
			Origin: ni("10.0.0.9:7001", 0.91, 0.12), QueryID: 77},
		{Type: KindRangeHit, From: ni("10.0.0.5:7001", 0.45, 0.47), QueryID: 77},
		{Type: KindStoreReply, From: ni("10.0.0.5:7001", 0.45, 0.47), QueryID: 912,
			Found: true, Version: 12, Hops: 3, Value: []byte("the stored value payload")},
		{Type: KindReplicaSync, From: ni("10.0.0.5:7001", 0.45, 0.47), Handoff: true,
			Records: []StoreRecord{
				{Key: geom.Pt(0.46, 0.46), Value: []byte("replicated-record-value"), Version: 4},
				{Key: geom.Pt(0.44, 0.49), Version: 7, Deleted: true},
			}},
		{Type: KindSyncDigest, From: ni("10.0.0.5:7001", 0.45, 0.47),
			Digest: []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}},
		{Type: KindSyncPull, From: ni("10.0.0.2:7001", 0.31, 0.44),
			Digest: []byte{9, 9, 9, 9, 9, 9, 9, 9}},
	}
}
