package proto

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"voronet/internal/geom"
)

// randEnvelope draws a random envelope of the given kind, populating the
// fields that kind legitimately carries (plus, occasionally, ones it does
// not — the codec is kind-agnostic and must round-trip any field mix).
// Slices are left nil when empty, matching what gob decode produces, so
// decoded envelopes from the two codecs can be compared with DeepEqual.
func randEnvelope(rng *rand.Rand, k Kind) *Envelope {
	pt := func() geom.Point { return geom.Pt(rng.Float64()*2-0.5, rng.Float64()*2-0.5) }
	str := func() string {
		n := rng.Intn(24)
		var sb strings.Builder
		for i := 0; i < n; i++ {
			sb.WriteByte(byte(rng.Intn(256)))
		}
		return sb.String()
	}
	ninfo := func() NodeInfo {
		n := NodeInfo{Addr: str(), Pos: pt()}
		if rng.Intn(2) == 0 {
			n.Gen = rng.Uint64()
		}
		return n
	}
	ninfos := func(max int) []NodeInfo {
		n := rng.Intn(max + 1)
		if n == 0 {
			return nil
		}
		out := make([]NodeInfo, n)
		for i := range out {
			out[i] = ninfo()
		}
		return out
	}
	bs := func(max int) []byte {
		n := rng.Intn(max + 1)
		if n == 0 {
			return nil
		}
		out := make([]byte, n)
		rng.Read(out)
		return out
	}

	e := &Envelope{Type: k, From: ninfo()}
	switch k {
	case KindRoute, KindRangeForward:
		e.Purpose = RoutedPurpose(rng.Intn(7))
		e.Target, e.TargetB = pt(), pt()
		e.Origin = ninfo()
		e.Link = rng.Intn(8)
		e.Hops = rng.Intn(64)
		e.QueryID = rng.Uint64()
		if e.Purpose == PurposeStorePut {
			e.Value = bs(256)
		}
	case KindJoinGrant, KindSetNeighbors, KindNeighborList, KindLeave:
		e.Neighbors = ninfos(6)
		if k == KindJoinGrant {
			n := rng.Intn(4)
			for i := 0; i < n; i++ {
				e.TwoHop = append(e.TwoHop, NeighborRecord{Node: ninfo(), VN: ninfos(4)})
			}
			e.CloseCand = ninfos(4)
			for i := rng.Intn(3); i > 0; i-- {
				e.Back = append(e.Back, BackEntry{Origin: ninfo(), Link: rng.Intn(8), Target: pt()})
			}
		}
	case KindLongLinkGrant, KindLongLinkUpdate, KindBackWithdraw:
		e.Granter = ninfo()
		e.Link = rng.Intn(8)
		e.Hops = rng.Intn(64)
	case KindBackTransfer:
		for i := rng.Intn(5); i > 0; i-- {
			e.Back = append(e.Back, BackEntry{Origin: ninfo(), Link: rng.Intn(8), Target: pt()})
		}
	case KindQueryAnswer, KindRangeHit:
		e.QueryID = rng.Uint64()
		e.Hops = rng.Intn(64)
	case KindStoreReply:
		e.QueryID = rng.Uint64()
		e.Found = rng.Intn(2) == 0
		e.Shed = rng.Intn(4) == 0
		e.Version = rng.Uint64()
		e.Value = bs(512)
		e.Hops = rng.Intn(64)
	case KindReplicaSync:
		for i := rng.Intn(5); i > 0; i-- {
			e.Records = append(e.Records, StoreRecord{
				Key: pt(), Value: bs(128), Version: rng.Uint64(), Deleted: rng.Intn(3) == 0,
			})
		}
		e.Handoff = rng.Intn(2) == 0
	case KindSyncDigest, KindSyncPull:
		e.Digest = bs(32 * 8)
		if len(e.Digest)%8 != 0 {
			e.Digest = e.Digest[:len(e.Digest)/8*8]
			if len(e.Digest) == 0 {
				e.Digest = nil
			}
		}
		e.Handoff = rng.Intn(2) == 0
	}
	// Cross-cutting extras any kind may carry.
	if rng.Intn(3) == 0 {
		e.Trace = true
		for i := rng.Intn(4); i > 0; i-- {
			e.Path = append(e.Path, TraceHop{Addr: str(), Rule: str(), Nanos: rng.Int63()})
		}
	}
	if rng.Intn(3) == 0 {
		n := rng.Intn(4)
		for i := 0; i < n; i++ {
			e.Departed = append(e.Departed, str())
		}
		if n > 0 && rng.Intn(2) == 0 {
			for i := 0; i < n; i++ {
				e.DepartedGen = append(e.DepartedGen, rng.Uint64())
			}
		}
	}
	return e
}

// TestBinaryGobDifferential is the differential round-trip property test
// of the acceptance criteria: for every kind, over many randomly drawn
// envelopes (and the curated Samples), the gob path and the binary path
// must decode to semantically identical envelopes, and the binary
// encoding must be a fixpoint (decode ∘ encode = id on wire bytes), so a
// decoded envelope can always be forwarded intact.
func TestBinaryGobDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	check := func(t *testing.T, env *Envelope) {
		t.Helper()
		gb, err := EncodeGob(env)
		if err != nil {
			t.Fatalf("gob encode: %v", err)
		}
		fromGob, err := Decode(gb)
		if err != nil {
			t.Fatalf("gob decode: %v", err)
		}
		bb := AppendEncode(nil, env)
		if len(bb) > len(gb) {
			t.Errorf("binary frame (%d B) larger than gob (%d B) for kind %v", len(bb), len(gb), env.Type)
		}
		fromBin, err := Decode(bb)
		if err != nil {
			t.Fatalf("binary decode: %v (frame %x)", err, bb)
		}
		if !reflect.DeepEqual(fromGob, fromBin) {
			t.Fatalf("codecs disagree for kind %v:\n gob   : %+v\n binary: %+v", env.Type, fromGob, fromBin)
		}
		again := AppendEncode(nil, fromBin)
		if !bytes.Equal(bb, again) {
			t.Fatalf("binary encode not a fixpoint for kind %v:\n%x\n%x", env.Type, bb, again)
		}
	}
	for _, env := range Samples() {
		check(t, env)
	}
	for k := Kind(0); k < KindCount; k++ {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			for i := 0; i < 300; i++ {
				check(t, randEnvelope(rng, k))
			}
		})
	}
}

// TestAppendEncodeZeroAllocs is the allocation regression gate of the
// acceptance criteria: once the destination buffer has warmed up,
// AppendEncode must not touch the heap for any representative envelope.
func TestAppendEncodeZeroAllocs(t *testing.T) {
	for _, env := range Samples() {
		env := env
		t.Run(env.Type.String(), func(t *testing.T) {
			buf := make([]byte, 0, 4096)
			allocs := testing.AllocsPerRun(200, func() {
				buf = AppendEncode(buf[:0], env)
			})
			if allocs != 0 {
				t.Fatalf("AppendEncode allocated %.1f times per op for kind %v, want 0", allocs, env.Type)
			}
		})
	}
}

// TestBinaryDecodeRejectsTruncation: every strict prefix of a binary
// frame must be rejected with an error (the flags promise fields the
// bytes do not deliver), never a panic and never a partial envelope.
func TestBinaryDecodeRejectsTruncation(t *testing.T) {
	for _, env := range Samples() {
		full := AppendEncode(nil, env)
		for cut := 0; cut < len(full); cut++ {
			if _, err := Decode(full[:cut]); err == nil {
				t.Fatalf("kind %v: %d-byte prefix of a %d-byte frame decoded without error",
					env.Type, cut, len(full))
			}
		}
	}
}

// TestBinaryDecodeRejectsTrailingBytes: a frame with bytes after the
// envelope is not one of ours.
func TestBinaryDecodeRejectsTrailingBytes(t *testing.T) {
	b := AppendEncode(nil, Samples()[0])
	if _, err := Decode(append(b, 0x00)); err == nil {
		t.Fatal("frame with a trailing byte decoded without error")
	}
}

// TestBinaryDecodeRejectsHostileLengths: oversized length claims and
// unterminated varints must error out against the remaining byte count
// before any allocation is sized from them.
func TestBinaryDecodeRejectsHostileLengths(t *testing.T) {
	cases := map[string][]byte{
		// flags say Value present; Value length claims 2^30 with 2 bytes left.
		"oversized value length": append(
			[]byte{wireMagic, byte(KindStoreReply)},
			0x91, 0x80, 0x04, // flags varint: flagValue (bit 17)... crafted below
		),
		"bad flags varint":   {wireMagic, byte(KindRoute), 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80},
		"empty frame":        {},
		"magic only":         {wireMagic},
		"magic + kind only":  {wireMagic, byte(KindRoute)},
		"unknown flag bit":   {wireMagic, byte(KindRoute), 0x80, 0x80, 0x01}, // bit 28
		"neighbor count lie": nil,                                            // built below
	}
	// flags = flagValue exactly, then an oversized uvarint length.
	withValue := []byte{wireMagic, byte(KindStoreReply)}
	var fl [10]byte
	n := putUvarint(fl[:], flagValue)
	withValue = append(withValue, fl[:n]...)
	withValue = append(withValue, 0xFF, 0xFF, 0xFF, 0x7F) // length ≈ 2^28
	withValue = append(withValue, 0xAA, 0xBB)
	cases["oversized value length"] = withValue

	lie := []byte{wireMagic, byte(KindJoinGrant)}
	n = putUvarint(fl[:], flagNeighbors)
	lie = append(lie, fl[:n]...)
	lie = append(lie, 0xFF, 0xFF, 0x03) // 65535 neighbours in a 1-byte body
	lie = append(lie, 0x00)
	cases["neighbor count lie"] = lie

	for name, frame := range cases {
		if env, err := Decode(frame); err == nil {
			t.Errorf("%s: decoded to %+v, want error", name, env)
		}
	}
}

func putUvarint(buf []byte, v uint64) int {
	i := 0
	for v >= 0x80 {
		buf[i] = byte(v) | 0x80
		v >>= 7
		i++
	}
	buf[i] = byte(v)
	return i + 1
}

// TestBinaryRejectsNegativeFields mirrors the gob-path hostile-seed test:
// negative Link / Hops / Back.Link zigzag-encode fine but must be thrown
// out by validation, on both codecs.
func TestBinaryRejectsNegativeFields(t *testing.T) {
	for i, env := range hostileSeeds() {
		b := AppendEncode(nil, env)
		if got, err := Decode(b); err == nil {
			t.Errorf("seed %d: hostile binary envelope decoded to %+v, want rejection", i, got)
		}
	}
}

// TestWireBufPoolRoundTrip exercises the pooled-buffer cycle senders use
// and the size cap that keeps giant value frames out of the pool.
func TestWireBufPoolRoundTrip(t *testing.T) {
	wb := GetBuf()
	wb.B = AppendEncode(wb.B[:0], Samples()[0])
	if _, err := Decode(wb.B); err != nil {
		t.Fatalf("decode from pooled buffer: %v", err)
	}
	wb.Put()

	big := GetBuf()
	big.B = append(big.B[:0], make([]byte, maxPooledBuf+1)...)
	kept := &big.B[0]
	_ = kept
	big.Put()
	if cap(big.B) > maxPooledBuf {
		t.Fatalf("oversized buffer (%d B cap) returned to pool", cap(big.B))
	}
}

// TestGobStreamNeverStartsWithMagic backs the one-byte codec sniff: the
// gob encoding of every sample and of hundreds of random envelopes must
// not begin with wireMagic, or Decode would misroute it to the binary
// decoder.
func TestGobStreamNeverStartsWithMagic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	envs := Samples()
	for k := Kind(0); k < KindCount; k++ {
		for i := 0; i < 50; i++ {
			envs = append(envs, randEnvelope(rng, k))
		}
	}
	for _, env := range envs {
		b, err := EncodeGob(env)
		if err != nil {
			t.Fatal(err)
		}
		if len(b) > 0 && b[0] == wireMagic {
			t.Fatalf("gob frame starts with the binary magic byte %#x: %x", wireMagic, b[:8])
		}
	}
}

// BenchmarkAppendEncode / BenchmarkEncodeGob put numbers on the codec
// swap; voronet-bench -net's codec phase reports the same comparison as
// JSON.
func BenchmarkAppendEncode(b *testing.B) {
	envs := Samples()
	buf := make([]byte, 0, 4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = AppendEncode(buf[:0], envs[i%len(envs)])
	}
}

func BenchmarkEncodeGob(b *testing.B) {
	envs := Samples()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := EncodeGob(envs[i%len(envs)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeBinary(b *testing.B) {
	var frames [][]byte
	for _, e := range Samples() {
		frames = append(frames, AppendEncode(nil, e))
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(frames[i%len(frames)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeGob(b *testing.B) {
	var frames [][]byte
	for _, e := range Samples() {
		f, err := EncodeGob(e)
		if err != nil {
			b.Fatal(err)
		}
		frames = append(frames, f)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(frames[i%len(frames)]); err != nil {
			b.Fatal(err)
		}
	}
}

// TestBytesPerEnvelopeAdvantage documents the size win the CI codec gate
// asserts end to end: across the representative sample set the binary
// codec must be at least 2× smaller than gob.
func TestBytesPerEnvelopeAdvantage(t *testing.T) {
	var gobTotal, binTotal int
	for _, env := range Samples() {
		gb, err := EncodeGob(env)
		if err != nil {
			t.Fatal(err)
		}
		gobTotal += len(gb)
		binTotal += len(AppendEncode(nil, env))
	}
	if binTotal*2 > gobTotal {
		t.Fatalf("binary codec too large: %d B vs gob %d B across %d samples (want ≤ 0.5×)",
			binTotal, gobTotal, len(Samples()))
	}
	t.Logf("bytes per envelope: gob %.1f, binary %.1f (%.2fx smaller)",
		float64(gobTotal)/float64(len(Samples())), float64(binTotal)/float64(len(Samples())),
		float64(gobTotal)/float64(binTotal))
}
