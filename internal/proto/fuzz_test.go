package proto

import (
	"bytes"
	"testing"

	"voronet/internal/geom"
)

// fuzzSeeds returns one representative envelope per interesting shape so
// the fuzzer starts from structurally valid wire bytes.
func fuzzSeeds() []*Envelope {
	return []*Envelope{
		{Type: KindRoute, Purpose: PurposeJoin, Target: geom.Pt(0.25, 0.75),
			Origin: NodeInfo{Addr: "n001", Pos: geom.Pt(0.1, 0.2)}, Hops: 3},
		{Type: KindJoinGrant, From: NodeInfo{Addr: "owner", Pos: geom.Pt(0.5, 0.5)},
			Neighbors: []NodeInfo{{Addr: "a", Pos: geom.Pt(0.3, 0.3)}, {Addr: "b", Pos: geom.Pt(0.7, 0.7)}},
			TwoHop:    []NeighborRecord{{Node: NodeInfo{Addr: "a"}, VN: []NodeInfo{{Addr: "b"}}}}},
		{Type: KindLongLinkGrant, From: NodeInfo{Addr: "g"}, Link: 2, Hops: 7},
		{Type: KindBackTransfer, Back: []BackEntry{{Origin: NodeInfo{Addr: "o"}, Link: 1, Target: geom.Pt(0.9, 0.1)}}},
		{Type: KindRoute, Purpose: PurposeStorePut, Target: geom.Pt(0.42, 0.43),
			Value: []byte("payload"), QueryID: 99},
		{Type: KindStoreReply, Found: true, Value: []byte("v"), Version: 12, QueryID: 99},
		{Type: KindReplicaSync, Records: []StoreRecord{
			{Key: geom.Pt(0.1, 0.9), Value: []byte("x"), Version: 4},
			{Key: geom.Pt(0.2, 0.8), Version: 5, Deleted: true},
		}, Handoff: true},
		{Type: KindNeighborList, Departed: []string{"dead1", "dead2"}},
	}
}

// hostileSeeds returns envelopes no correct peer sends — negative link
// indices and hop counts, the fields a malicious sender could aim at
// slice indexing on the receiver. Decode must reject every one of them.
func hostileSeeds() []*Envelope {
	return []*Envelope{
		{Type: KindLongLinkGrant, From: NodeInfo{Addr: "g"}, Link: -1},
		{Type: KindLongLinkUpdate, Granter: NodeInfo{Addr: "h"}, Link: -7},
		{Type: KindRoute, Purpose: PurposeLongLink, Target: geom.Pt(0.5, 0.5), Link: -3},
		{Type: KindRoute, Purpose: PurposeQuery, Target: geom.Pt(0.1, 0.1), Hops: -5},
		{Type: KindBackTransfer, Back: []BackEntry{{Origin: NodeInfo{Addr: "o"}, Link: -2, Target: geom.Pt(0.9, 0.1)}}},
	}
}

// FuzzEnvelopeRoundTrip feeds arbitrary bytes to Decode — which sniffs
// the codec from the first byte, so one fuzz target covers the binary v1
// decoder and the legacy gob path alike. Garbage must be rejected with an
// error (never a panic — a node drops the frame and stays up); anything
// Decode does accept must re-encode and re-decode to the same wire bytes,
// so a decoded envelope can always be forwarded intact; and the two
// codecs must agree: round-tripping an accepted envelope through gob has
// to land on the identical binary encoding (the differential corpus of
// the acceptance criteria).
func FuzzEnvelopeRoundTrip(f *testing.F) {
	// Both encodings of every well-formed seed shape (and of the curated
	// Samples set), so mutations explore both wire grammars.
	for _, env := range append(fuzzSeeds(), Samples()...) {
		gb, err := EncodeGob(env)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(gb)
		f.Add(AppendEncode(nil, env))
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0x00, 0x01})
	// Hostile binary shapes: truncated frames, unterminated varints,
	// length claims far beyond the frame, unknown flag bits. The decoder
	// must reject all of them without panicking or over-allocating.
	f.Add([]byte{wireMagic})
	f.Add([]byte{wireMagic, byte(KindRoute)})
	f.Add([]byte{wireMagic, byte(KindRoute), 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80})
	f.Add([]byte{wireMagic, byte(KindStoreReply), 0x80, 0x80, 0x08, 0xFF, 0xFF, 0xFF, 0x7F, 0xAA})
	f.Add([]byte{wireMagic, byte(KindJoinGrant), 0x80, 0x08, 0xFF, 0xFF, 0x03, 0x00})
	f.Add([]byte{wireMagic, byte(KindRoute), 0x80, 0x80, 0x80, 0x01})
	for _, env := range fuzzSeeds() {
		b := AppendEncode(nil, env)
		f.Add(b[:len(b)/2])
		f.Add(append(append([]byte{}, b...), 0x00))
	}
	// Negative Link/Hops envelopes encode fine (gob carries any int, the
	// binary codec zigzags) but must be rejected by Decode's validation —
	// seed the fuzzer with them so mutations explore the hostile-field
	// space in both grammars.
	for _, env := range hostileSeeds() {
		gb, err := EncodeGob(env)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(gb)
		f.Add(AppendEncode(nil, env))
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		env, err := Decode(data)
		if err != nil {
			return // malformed input rejected cleanly: the contract holds
		}
		b1, err := Encode(env)
		if err != nil {
			t.Fatalf("accepted envelope failed to re-encode: %v", err)
		}
		env2, err := Decode(b1)
		if err != nil {
			t.Fatalf("re-encoded envelope failed to decode: %v", err)
		}
		b2, err := Encode(env2)
		if err != nil {
			t.Fatalf("second re-encode failed: %v", err)
		}
		if !bytes.Equal(b1, b2) {
			t.Fatalf("encode/decode is not a fixpoint:\n%x\n%x", b1, b2)
		}
		// Differential leg: the same envelope through the gob codec must
		// land back on the identical binary bytes. (Bytes, not DeepEqual:
		// fuzz inputs can carry NaN floats, which compare unequal to
		// themselves but round-trip bit-exactly through both codecs.)
		gb, err := EncodeGob(env)
		if err != nil {
			t.Fatalf("accepted envelope failed to gob-encode: %v", err)
		}
		envG, err := Decode(gb)
		if err != nil {
			t.Fatalf("gob re-decode failed: %v", err)
		}
		b3 := AppendEncode(nil, envG)
		if !bytes.Equal(b1, b3) {
			t.Fatalf("codecs disagree after round-trip:\nbinary: %x\nvia gob: %x", b1, b3)
		}
	})
}

// TestDecodeRejectsNegativeFields: a Link of -1 (or any negative Link,
// Hops or BackEntry.Link) used to pass Decode and reach slice indexing in
// the node's long-link handlers, panicking it remotely. The wire layer now
// rejects such envelopes outright.
func TestDecodeRejectsNegativeFields(t *testing.T) {
	for i, env := range hostileSeeds() {
		b, err := Encode(env)
		if err != nil {
			t.Fatalf("seed %d: encode: %v", i, err)
		}
		if got, err := Decode(b); err == nil {
			t.Errorf("seed %d: negative-field envelope decoded to %+v, want rejection", i, got)
		}
	}
}

func TestDecodeRejectsOversizedFrame(t *testing.T) {
	big := make([]byte, MaxEnvelopeBytes+1)
	if _, err := Decode(big); err == nil {
		t.Fatal("oversized frame must be rejected")
	}
	env, err := Decode(nil)
	if err == nil {
		t.Fatalf("empty frame decoded to %+v", env)
	}
}
