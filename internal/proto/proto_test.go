package proto

import (
	"reflect"
	"testing"

	"voronet/internal/geom"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	in := &Envelope{
		Type:    KindRoute,
		From:    NodeInfo{Addr: "a:1", Pos: geom.Pt(0.25, 0.75)},
		Purpose: PurposeLongLink,
		Target:  geom.Pt(0.5, 0.5),
		Origin:  NodeInfo{Addr: "b:2", Pos: geom.Pt(0.1, 0.9)},
		Link:    3,
		Hops:    17,
		QueryID: 99,
		Neighbors: []NodeInfo{
			{Addr: "c:3", Pos: geom.Pt(0, 0)},
			{Addr: "d:4", Pos: geom.Pt(1, 1)},
		},
		TwoHop: []NeighborRecord{
			{Node: NodeInfo{Addr: "c:3"}, VN: []NodeInfo{{Addr: "d:4"}}},
		},
		CloseCand: []NodeInfo{{Addr: "e:5", Pos: geom.Pt(0.3, 0.3)}},
		Back: []BackEntry{
			{Origin: NodeInfo{Addr: "f:6"}, Link: 1, Target: geom.Pt(0.7, 0.2)},
		},
		Granter:  NodeInfo{Addr: "g:7"},
		Departed: []string{"x:1", "y:2"},
		Value:    []byte("payload"),
		Found:    true,
		Version:  12,
		Records: []StoreRecord{
			{Key: geom.Pt(0.4, 0.6), Value: []byte("v1"), Version: 2},
			{Key: geom.Pt(0.9, 0.1), Version: 5, Deleted: true},
		},
		Handoff: true,
	}
	b, err := Encode(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip mismatch:\n in: %+v\nout: %+v", in, out)
	}
}

func TestDecodeGarbage(t *testing.T) {
	if _, err := Decode([]byte("not gob")); err == nil {
		t.Fatal("garbage must not decode")
	}
	if _, err := Decode(nil); err == nil {
		t.Fatal("empty must not decode")
	}
}

func TestEmptyEnvelope(t *testing.T) {
	b, err := Encode(&Envelope{Type: KindLeave})
	if err != nil {
		t.Fatal(err)
	}
	out, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if out.Type != KindLeave || len(out.Neighbors) != 0 {
		t.Fatalf("got %+v", out)
	}
}
