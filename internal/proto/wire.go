// Binary wire codec: a hand-rolled, versioned, length-delimited envelope
// encoding that replaces per-frame encoding/gob on the hot TCP path.
//
// Frame layout (all multi-byte integers little-endian):
//
//	byte 0    wireMagic | version  (0xB1 for v1)
//	byte 1    Kind                 (uint8)
//	varint    flags                (one presence bit per optional field,
//	                                bool fields carry their value in the bit)
//	fields    in fixed bit order, only those whose flag bit is set
//
// Field encodings: points are 16 raw bytes (two IEEE-754 float64 bit
// patterns, LE); strings and byte slices are uvarint length + bytes;
// unsigned counters (QueryID, Version, Gen) are uvarints; signed ints
// that ride the wire (Link, Hops) are zigzag varints so hostile negative
// values still encode — Decode's validate() rejects them, exactly as it
// does on the gob path. TraceHop.Nanos is a fixed 8-byte LE int64: it is
// a wall-clock reading, and a varint would make frame sizes (and the
// node_wire_bytes_* books) timing-dependent across replays. Struct
// slices are uvarint count + elements.
//
// Version policy: the first byte of every binary frame is wireMagic+
// version. gob streams can never start with a byte in [0x80, 0xF7] (gob's
// leading uvarint is either a one-byte value <= 0x7F or a negated byte
// count >= 0xF8), so Decode sniffs byte 0: 0xB1 selects the binary v1
// decoder, anything else falls through to gob — old transcripts and
// frames from GobWire peers stay decodable forever. A future layout
// change bumps the version byte (0xB2, ...) and keeps the old decoder.
//
// AppendEncode performs zero heap allocations (gated by
// TestAppendEncodeZeroAllocs); senders thread pooled buffers through it
// via GetBuf/WireBuf.Put. Decode necessarily allocates the envelope and
// copies every string and byte slice out of the frame: inbound frame
// buffers are reused by the transport read loops, so a decoded envelope
// must never alias them.
package proto

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"

	"voronet/internal/geom"
)

// wireMagic is the first byte of every binary v1 frame. It must stay in
// [0x80, 0xF7], the band a gob stream's first byte never occupies, so
// Decode can tell the two codecs apart from one byte.
const wireMagic = 0xB1

// Flag bits: one per optional envelope field, in encode order. Bool
// fields (Trace, Found, Handoff, Shed) have no body — the bit is the
// value.
const (
	flagFrom = 1 << iota
	flagPurpose
	flagTarget
	flagTargetB
	flagOrigin
	flagLink
	flagHops
	flagQueryID
	flagTrace
	flagPath
	flagNeighbors
	flagTwoHop
	flagCloseCand
	flagBack
	flagGranter
	flagDeparted
	flagDepartedGen
	flagValue
	flagFound
	flagVersion
	flagRecords
	flagHandoff
	flagShed
	flagDigest
)

// WireBuf is a pooled encode buffer. The cycle is: GetBuf, append the
// frame with AppendEncode(wb.B[:0], ...) storing the result back into
// wb.B, hand the bytes to Endpoint.Send (which never retains them after
// it returns — see transport.Endpoint), then wb.Put. Ownership is
// single-threaded: the goroutine that Gets a buffer Puts it; nothing
// else may touch it in between.
type WireBuf struct{ B []byte }

var wireBufPool = sync.Pool{
	New: func() any { return &WireBuf{B: make([]byte, 0, 2048)} },
}

// maxPooledBuf bounds what Put returns to the pool: an occasional 1 MiB
// value frame must not pin megabytes of idle pool memory forever.
const maxPooledBuf = 1 << 18

// GetBuf fetches a pooled wire buffer.
func GetBuf() *WireBuf { return wireBufPool.Get().(*WireBuf) }

// Put returns the buffer to the pool. The caller must not touch wb.B
// afterwards.
func (wb *WireBuf) Put() {
	if cap(wb.B) > maxPooledBuf {
		wb.B = make([]byte, 0, 2048)
	}
	wireBufPool.Put(wb)
}

// AppendEncode appends the binary v1 encoding of e to dst and returns
// the extended slice. It never fails (every field value is encodable —
// semantically impossible ones are the decoder's job to reject) and
// performs no heap allocations beyond growing dst.
func AppendEncode(dst []byte, e *Envelope) []byte {
	dst = append(dst, wireMagic, byte(e.Type))

	var flags uint64
	if e.From != (NodeInfo{}) {
		flags |= flagFrom
	}
	if e.Purpose != 0 {
		flags |= flagPurpose
	}
	if e.Target != (geom.Point{}) {
		flags |= flagTarget
	}
	if e.TargetB != (geom.Point{}) {
		flags |= flagTargetB
	}
	if e.Origin != (NodeInfo{}) {
		flags |= flagOrigin
	}
	if e.Link != 0 {
		flags |= flagLink
	}
	if e.Hops != 0 {
		flags |= flagHops
	}
	if e.QueryID != 0 {
		flags |= flagQueryID
	}
	if e.Trace {
		flags |= flagTrace
	}
	if len(e.Path) > 0 {
		flags |= flagPath
	}
	if len(e.Neighbors) > 0 {
		flags |= flagNeighbors
	}
	if len(e.TwoHop) > 0 {
		flags |= flagTwoHop
	}
	if len(e.CloseCand) > 0 {
		flags |= flagCloseCand
	}
	if len(e.Back) > 0 {
		flags |= flagBack
	}
	if e.Granter != (NodeInfo{}) {
		flags |= flagGranter
	}
	if len(e.Departed) > 0 {
		flags |= flagDeparted
	}
	if len(e.DepartedGen) > 0 {
		flags |= flagDepartedGen
	}
	if len(e.Value) > 0 {
		flags |= flagValue
	}
	if e.Found {
		flags |= flagFound
	}
	if e.Version != 0 {
		flags |= flagVersion
	}
	if len(e.Records) > 0 {
		flags |= flagRecords
	}
	if e.Handoff {
		flags |= flagHandoff
	}
	if e.Shed {
		flags |= flagShed
	}
	if len(e.Digest) > 0 {
		flags |= flagDigest
	}
	dst = binary.AppendUvarint(dst, flags)

	if flags&flagFrom != 0 {
		dst = appendNodeInfo(dst, &e.From)
	}
	if flags&flagPurpose != 0 {
		dst = binary.AppendUvarint(dst, uint64(e.Purpose))
	}
	if flags&flagTarget != 0 {
		dst = appendPoint(dst, e.Target)
	}
	if flags&flagTargetB != 0 {
		dst = appendPoint(dst, e.TargetB)
	}
	if flags&flagOrigin != 0 {
		dst = appendNodeInfo(dst, &e.Origin)
	}
	if flags&flagLink != 0 {
		dst = appendZigzag(dst, int64(e.Link))
	}
	if flags&flagHops != 0 {
		dst = appendZigzag(dst, int64(e.Hops))
	}
	if flags&flagQueryID != 0 {
		dst = binary.AppendUvarint(dst, e.QueryID)
	}
	if flags&flagPath != 0 {
		dst = binary.AppendUvarint(dst, uint64(len(e.Path)))
		for i := range e.Path {
			dst = appendString(dst, e.Path[i].Addr)
			dst = appendString(dst, e.Path[i].Rule)
			// Fixed 8 bytes, not a varint: Nanos is a wall-clock reading,
			// and a timing-dependent varint length would make frame sizes
			// — and the node_wire_bytes_* books built from them —
			// nondeterministic across otherwise identical replays
			// (TestMetricsSnapshotDeterministicAcrossReplays).
			dst = binary.LittleEndian.AppendUint64(dst, uint64(e.Path[i].Nanos))
		}
	}
	if flags&flagNeighbors != 0 {
		dst = appendNodeInfos(dst, e.Neighbors)
	}
	if flags&flagTwoHop != 0 {
		dst = binary.AppendUvarint(dst, uint64(len(e.TwoHop)))
		for i := range e.TwoHop {
			dst = appendNodeInfo(dst, &e.TwoHop[i].Node)
			dst = appendNodeInfos(dst, e.TwoHop[i].VN)
		}
	}
	if flags&flagCloseCand != 0 {
		dst = appendNodeInfos(dst, e.CloseCand)
	}
	if flags&flagBack != 0 {
		dst = binary.AppendUvarint(dst, uint64(len(e.Back)))
		for i := range e.Back {
			dst = appendNodeInfo(dst, &e.Back[i].Origin)
			dst = appendZigzag(dst, int64(e.Back[i].Link))
			dst = appendPoint(dst, e.Back[i].Target)
		}
	}
	if flags&flagGranter != 0 {
		dst = appendNodeInfo(dst, &e.Granter)
	}
	if flags&flagDeparted != 0 {
		dst = binary.AppendUvarint(dst, uint64(len(e.Departed)))
		for _, d := range e.Departed {
			dst = appendString(dst, d)
		}
	}
	if flags&flagDepartedGen != 0 {
		dst = binary.AppendUvarint(dst, uint64(len(e.DepartedGen)))
		for _, g := range e.DepartedGen {
			dst = binary.AppendUvarint(dst, g)
		}
	}
	if flags&flagValue != 0 {
		dst = appendBytes(dst, e.Value)
	}
	if flags&flagVersion != 0 {
		dst = binary.AppendUvarint(dst, e.Version)
	}
	if flags&flagRecords != 0 {
		dst = binary.AppendUvarint(dst, uint64(len(e.Records)))
		for i := range e.Records {
			r := &e.Records[i]
			dst = appendPoint(dst, r.Key)
			dst = appendBytes(dst, r.Value)
			dst = binary.AppendUvarint(dst, r.Version)
			if r.Deleted {
				dst = append(dst, 1)
			} else {
				dst = append(dst, 0)
			}
		}
	}
	if flags&flagDigest != 0 {
		dst = appendBytes(dst, e.Digest)
	}
	return dst
}

func appendPoint(dst []byte, p geom.Point) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(p.X))
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(p.Y))
}

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func appendBytes(dst, b []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

func appendZigzag(dst []byte, v int64) []byte {
	return binary.AppendUvarint(dst, uint64(v)<<1^uint64(v>>63))
}

func appendNodeInfo(dst []byte, n *NodeInfo) []byte {
	dst = appendString(dst, n.Addr)
	dst = appendPoint(dst, n.Pos)
	return binary.AppendUvarint(dst, n.Gen)
}

func appendNodeInfos(dst []byte, ns []NodeInfo) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(ns)))
	for i := range ns {
		dst = appendNodeInfo(dst, &ns[i])
	}
	return dst
}

// wireReader is a bounds-checked cursor over one binary frame. Every
// read either succeeds or latches err; callers check err once at the
// end, so a malformed frame can never panic or allocate past the bytes
// it actually carries.
type wireReader struct {
	b   []byte
	off int
	err error
}

var errTruncated = fmt.Errorf("proto: decode: truncated binary frame")

func (r *wireReader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("proto: decode: "+format, args...)
	}
}

func (r *wireReader) rem() int { return len(r.b) - r.off }

func (r *wireReader) take(n int) []byte {
	if r.err != nil || n < 0 || r.rem() < n {
		if r.err == nil {
			r.err = errTruncated
		}
		return nil
	}
	b := r.b[r.off : r.off+n]
	r.off += n
	return b
}

func (r *wireReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		r.fail("bad varint at offset %d", r.off)
		return 0
	}
	r.off += n
	return v
}

func (r *wireReader) zigzag() int64 {
	u := r.uvarint()
	return int64(u>>1) ^ -int64(u&1)
}

// svarint reads a zigzag varint destined for a plain int field; values
// outside the int range are hostile by construction.
func (r *wireReader) svarint() int {
	v := r.zigzag()
	if int64(int(v)) != v {
		r.fail("integer %d overflows int", v)
		return 0
	}
	return int(v)
}

// count reads a slice length and guards it against the bytes actually
// remaining: each element occupies at least minBytes on the wire, so a
// length claim beyond rem/minBytes is a lie and must not reach make().
func (r *wireReader) count(minBytes int) int {
	v := r.uvarint()
	if r.err != nil {
		return 0
	}
	if v > uint64(r.rem()/minBytes) {
		r.fail("length %d exceeds remaining %d bytes", v, r.rem())
		return 0
	}
	return int(v)
}

func (r *wireReader) i64() int64 {
	b := r.take(8)
	if r.err != nil {
		return 0
	}
	return int64(binary.LittleEndian.Uint64(b))
}

func (r *wireReader) point() geom.Point {
	b := r.take(16)
	if r.err != nil {
		return geom.Point{}
	}
	return geom.Point{
		X: math.Float64frombits(binary.LittleEndian.Uint64(b)),
		Y: math.Float64frombits(binary.LittleEndian.Uint64(b[8:])),
	}
}

func (r *wireReader) str() string {
	n := r.uvarint()
	if r.err != nil {
		return ""
	}
	if n > uint64(r.rem()) {
		r.fail("string length %d exceeds remaining %d bytes", n, r.rem())
		return ""
	}
	return string(r.take(int(n))) // copies: the frame buffer is reused
}

func (r *wireReader) bytes() []byte {
	n := r.uvarint()
	if r.err != nil {
		return nil
	}
	if n == 0 {
		return nil
	}
	if n > uint64(r.rem()) {
		r.fail("byte-slice length %d exceeds remaining %d bytes", n, r.rem())
		return nil
	}
	out := make([]byte, n)
	copy(out, r.take(int(n)))
	return out
}

func (r *wireReader) nodeInfo() NodeInfo {
	var n NodeInfo
	n.Addr = r.str()
	n.Pos = r.point()
	n.Gen = r.uvarint()
	return n
}

// minNodeInfoBytes is the smallest wire footprint of one NodeInfo: empty
// addr (1) + point (16) + gen (1).
const minNodeInfoBytes = 18

func (r *wireReader) nodeInfos() []NodeInfo {
	n := r.count(minNodeInfoBytes)
	if r.err != nil || n == 0 {
		return nil
	}
	out := make([]NodeInfo, n)
	for i := range out {
		out[i] = r.nodeInfo()
	}
	return out
}

// decodeBinary parses one binary v1 frame. The caller has already
// checked the magic byte and the MaxEnvelopeBytes cap.
func decodeBinary(b []byte) (*Envelope, error) {
	if len(b) < 2 {
		return nil, errTruncated
	}
	e := &Envelope{Type: Kind(b[1])}
	r := &wireReader{b: b, off: 2}
	flags := r.uvarint()

	e.Trace = flags&flagTrace != 0
	e.Found = flags&flagFound != 0
	e.Handoff = flags&flagHandoff != 0
	e.Shed = flags&flagShed != 0

	if flags&flagFrom != 0 {
		e.From = r.nodeInfo()
	}
	if flags&flagPurpose != 0 {
		e.Purpose = RoutedPurpose(r.uvarint())
	}
	if flags&flagTarget != 0 {
		e.Target = r.point()
	}
	if flags&flagTargetB != 0 {
		e.TargetB = r.point()
	}
	if flags&flagOrigin != 0 {
		e.Origin = r.nodeInfo()
	}
	if flags&flagLink != 0 {
		e.Link = r.svarint()
	}
	if flags&flagHops != 0 {
		e.Hops = r.svarint()
	}
	if flags&flagQueryID != 0 {
		e.QueryID = r.uvarint()
	}
	if flags&flagPath != 0 {
		// A TraceHop is at least addr(1) + rule(1) + nanos(8).
		n := r.count(10)
		if r.err == nil && n > 0 {
			e.Path = make([]TraceHop, n)
			for i := range e.Path {
				e.Path[i].Addr = r.str()
				e.Path[i].Rule = r.str()
				e.Path[i].Nanos = r.i64()
			}
		}
	}
	if flags&flagNeighbors != 0 {
		e.Neighbors = r.nodeInfos()
	}
	if flags&flagTwoHop != 0 {
		// NodeInfo + empty VN list: 18 + 1.
		n := r.count(minNodeInfoBytes + 1)
		if r.err == nil && n > 0 {
			e.TwoHop = make([]NeighborRecord, n)
			for i := range e.TwoHop {
				e.TwoHop[i].Node = r.nodeInfo()
				e.TwoHop[i].VN = r.nodeInfos()
			}
		}
	}
	if flags&flagCloseCand != 0 {
		e.CloseCand = r.nodeInfos()
	}
	if flags&flagBack != 0 {
		// NodeInfo + link (1) + point (16).
		n := r.count(minNodeInfoBytes + 17)
		if r.err == nil && n > 0 {
			e.Back = make([]BackEntry, n)
			for i := range e.Back {
				e.Back[i].Origin = r.nodeInfo()
				e.Back[i].Link = r.svarint()
				e.Back[i].Target = r.point()
			}
		}
	}
	if flags&flagGranter != 0 {
		e.Granter = r.nodeInfo()
	}
	if flags&flagDeparted != 0 {
		n := r.count(1)
		if r.err == nil && n > 0 {
			e.Departed = make([]string, n)
			for i := range e.Departed {
				e.Departed[i] = r.str()
			}
		}
	}
	if flags&flagDepartedGen != 0 {
		n := r.count(1)
		if r.err == nil && n > 0 {
			e.DepartedGen = make([]uint64, n)
			for i := range e.DepartedGen {
				e.DepartedGen[i] = r.uvarint()
			}
		}
	}
	if flags&flagValue != 0 {
		e.Value = r.bytes()
	}
	if flags&flagVersion != 0 {
		e.Version = r.uvarint()
	}
	if flags&flagRecords != 0 {
		// Key (16) + value (1) + version (1) + deleted (1).
		n := r.count(19)
		if r.err == nil && n > 0 {
			e.Records = make([]StoreRecord, n)
			for i := range e.Records {
				rec := &e.Records[i]
				rec.Key = r.point()
				rec.Value = r.bytes()
				rec.Version = r.uvarint()
				switch d := r.take(1); {
				case r.err != nil:
				case d[0] == 1:
					rec.Deleted = true
				case d[0] != 0:
					r.fail("bad Deleted byte %#x", d[0])
				}
			}
		}
	}
	if flags&flagDigest != 0 {
		e.Digest = r.bytes()
	}

	if r.err != nil {
		return nil, r.err
	}
	if unknown := flags &^ (flagDigest<<1 - 1); unknown != 0 {
		return nil, fmt.Errorf("proto: decode: unknown flag bits %#x", unknown)
	}
	if r.off != len(b) {
		return nil, fmt.Errorf("proto: decode: %d trailing bytes after envelope", len(b)-r.off)
	}
	if err := e.validate(); err != nil {
		return nil, err
	}
	return e, nil
}
