// Package proto defines the wire messages of the distributed VoroNet node
// (internal/node): greedy-routed envelopes for joins, long-link
// establishment, queries and object-store operations, plus the
// neighbourhood-maintenance messages of §4.2 (AddVoronoiRegion /
// RemoveVoronoiRegion) and the store replication/handoff messages of
// internal/store. Messages travel in the compact binary v1 codec (see
// wire.go); encoding/gob remains as the auto-detected legacy format
// behind node Config.GobWire.
//
// The vocabulary follows the paper: a node's entry for another object
// carries its address and its coordinates in the unit square (§3, "each
// entry of the view is composed of the IP address of the node hosting the
// object as well as its coordinates").
package proto

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sync"

	"voronet/internal/geom"
)

// NodeInfo identifies an object: transport address plus attribute-space
// position. Gen is the incarnation number — zero for a node that has
// never durably restarted, bumped by each WAL-backed restart at the same
// address — and is what lets departure gossip about a crashed
// incarnation coexist with its rejoined successor: a tombstone kills
// (Addr, Gen), never Addr forever. gob omits zero fields, so gen-free
// overlays put nothing extra on the wire.
type NodeInfo struct {
	Addr string
	Pos  geom.Point
	Gen  uint64
}

// Kind enumerates message types.
type Kind int

// Message kinds.
const (
	// KindRoute is a greedy-routed envelope carrying one of the routed
	// purposes below toward Target.
	KindRoute Kind = iota
	// KindJoinGrant is sent by the owner of the join position to the
	// joiner: its new view (Voronoi neighbours with their own neighbour
	// lists, close-neighbour candidates, transferred BLRn entries).
	KindJoinGrant
	// KindSetNeighbors is sent by the node that recomputed a partial
	// tessellation (join owner / leaving node) to an affected neighbour:
	// the authoritative new Voronoi neighbour list of the recipient.
	KindSetNeighbors
	// KindNeighborList refreshes the sender's neighbour list in the
	// recipient's two-hop table.
	KindNeighborList
	// KindCNAdd / KindCNRemove maintain symmetric close-neighbour sets.
	KindCNAdd
	KindCNRemove
	// KindLongLinkGrant answers a routed long-link search: the owner of
	// the target region grants the link and registers the back pointer.
	KindLongLinkGrant
	// KindBackTransfer hands over BLRn entries to a new region owner.
	KindBackTransfer
	// KindLongLinkUpdate tells a link's origin that its long-range
	// neighbour changed (churn repair via the back link).
	KindLongLinkUpdate
	// KindLeave announces a departure to a Voronoi neighbour, carrying the
	// recipient's recomputed neighbour list.
	KindLeave
	// KindLeaveCN announces a departure to a close neighbour.
	KindLeaveCN
	// KindQueryAnswer returns the owner of a queried point to the
	// requester (AnswerQuery in Algorithm 4).
	KindQueryAnswer
	// KindBackWithdraw tells a BLRn holder to drop the sender's entry
	// (the sender is leaving).
	KindBackWithdraw
	// KindRangeForward floods a range query along Voronoi neighbours whose
	// regions intersect the segment [Target, TargetB].
	KindRangeForward
	// KindRangeHit reports one in-range object to the query origin.
	KindRangeHit
	// KindStoreReply answers a routed store operation (PurposeStorePut /
	// PurposeStoreGet / PurposeStoreDelete) back at the request origin,
	// correlated by QueryID.
	KindStoreReply
	// KindReplicaSync pushes store records to a peer: replication after a
	// put or delete at the owner, re-replication after churn, and — with
	// Handoff set — a primary-ownership transfer that obliges the
	// recipient to re-replicate in turn.
	KindReplicaSync
	// KindSyncDigest opens a digest-first anti-entropy round: instead of
	// full records, it carries compact per-record fingerprints (Digest)
	// of everything the sender would push to the recipient, which
	// replies with the fingerprints it is missing.
	KindSyncDigest
	// KindSyncPull answers a KindSyncDigest with the subset of
	// fingerprints the recipient does not hold; the digest sender then
	// streams full records (KindReplicaSync) for exactly that subset.
	KindSyncPull

	// KindCount is the number of message kinds; per-kind metric arrays
	// are sized with it. Keep it last.
	KindCount
)

// kindNames must track the Kind constants above; metric names derive
// from these, so they are lower_snake_case.
var kindNames = [KindCount]string{
	KindRoute:          "route",
	KindJoinGrant:      "join_grant",
	KindSetNeighbors:   "set_neighbors",
	KindNeighborList:   "neighbor_list",
	KindCNAdd:          "cn_add",
	KindCNRemove:       "cn_remove",
	KindLongLinkGrant:  "long_link_grant",
	KindBackTransfer:   "back_transfer",
	KindLongLinkUpdate: "long_link_update",
	KindLeave:          "leave",
	KindLeaveCN:        "leave_cn",
	KindQueryAnswer:    "query_answer",
	KindBackWithdraw:   "back_withdraw",
	KindRangeForward:   "range_forward",
	KindRangeHit:       "range_hit",
	KindStoreReply:     "store_reply",
	KindReplicaSync:    "replica_sync",
	KindSyncDigest:     "sync_digest",
	KindSyncPull:       "sync_pull",
}

// String names a kind for metrics and diagnostics.
func (k Kind) String() string {
	if k >= 0 && k < KindCount {
		return kindNames[k]
	}
	return fmt.Sprintf("kind_%d", int(k))
}

// RoutedPurpose says why a KindRoute message is travelling.
type RoutedPurpose int

// Routed purposes.
const (
	// PurposeJoin locates the owner of a joining object's position.
	PurposeJoin RoutedPurpose = iota
	// PurposeLongLink locates the owner of a long-link target (Algorithm 2).
	PurposeLongLink
	// PurposeQuery locates the owner of a query point (Algorithm 4).
	PurposeQuery
	// PurposeRange locates the owner of a segment's start, then floods
	// along the objects whose regions intersect the segment (§7,
	// perspective 1). Target is the segment start, TargetB its end.
	PurposeRange
	// PurposeStorePut locates the owner of a key's region, which stores
	// the carried value and replicates it (Target is the key, Value the
	// payload).
	PurposeStorePut
	// PurposeStoreGet locates a copy of a key's record: any node on the
	// greedy path holding the key answers, the owner answers
	// authoritatively.
	PurposeStoreGet
	// PurposeStoreDelete locates the owner of a key's region, which
	// tombstones the record and replicates the tombstone.
	PurposeStoreDelete
)

// TraceHop is one hop of a per-hop routing trace: the address of the
// node that handled the envelope, the rule that chose the next hop (or
// terminated the route), and the wall-clock nanoseconds the hop spent in
// the handler. Rules are "vn" / "cn" / "long" for a greedy forward via
// that candidate class, "owner" when the handler owned the target, and
// "replica" when a store read was answered from a passing replica.
// Addr+Rule are deterministic under the serial simnet; Nanos is wall
// time and is not.
type TraceHop struct {
	Addr  string
	Rule  string
	Nanos int64
}

// MaxTracePath bounds an accepted trace path. Greedy routes are
// O(log²N) hops; anything longer than this is garbage or an attack.
const MaxTracePath = 4096

// BackEntry is one BLRn element on the wire: the origin object, which of
// its links this is, and the link's immutable target point.
type BackEntry struct {
	Origin NodeInfo
	Link   int
	Target geom.Point
}

// StoreRecord is one stored object payload on the wire and in the local
// keyed stores: the key is a point of the attribute space (the object's
// attribute coordinates), the version is a per-key monotonic counter
// assigned by the key's successive region owners, and Deleted marks a
// tombstone (the record of a deletion, kept so that replicas cannot
// resurrect the value). Higher version wins on merge.
type StoreRecord struct {
	Key     geom.Point
	Value   []byte
	Version uint64
	Deleted bool
}

// NeighborRecord pairs a node with its own Voronoi neighbour list — the
// "neighbours' neighbours" knowledge of §4.1.
type NeighborRecord struct {
	Node NodeInfo
	VN   []NodeInfo
}

// Envelope is the single wire message. Fields are populated according to
// Type; both codecs omit empty ones cheaply (the binary codec via its
// presence bitmap, gob via its zero-value skip).
type Envelope struct {
	Type Kind
	From NodeInfo

	// Routing (KindRoute).
	Purpose RoutedPurpose
	Target  geom.Point
	TargetB geom.Point // segment end for PurposeRange / KindRangeForward
	Origin  NodeInfo   // the node the answer should reach
	Link    int        // long-link index for PurposeLongLink
	Hops    int        // accumulated Greedyneighbour count
	QueryID uint64     // correlates PurposeQuery with KindQueryAnswer

	// Tracing (KindRoute with Trace set; Path rides the answer home on
	// KindQueryAnswer / KindStoreReply). Each node on the greedy path
	// appends one TraceHop; see DESIGN.md §Observability.
	Trace bool
	Path  []TraceHop

	// Views (KindJoinGrant, KindSetNeighbors, KindNeighborList).
	Neighbors []NodeInfo       // new vn list for the recipient
	TwoHop    []NeighborRecord // neighbour lists of those neighbours
	CloseCand []NodeInfo       // close-neighbour candidates (Lemma 1)
	Back      []BackEntry      // transferred BLRn entries

	// Long links (KindLongLinkGrant, KindLongLinkUpdate).
	Granter NodeInfo

	// Departed carries the sender's recently seen departures; recipients
	// merge them into their tombstone sets so that stale two-hop gossip
	// cannot resurrect a dead neighbour. DepartedGen, when present, holds
	// the incarnation number each departure died at (index-aligned with
	// Departed; absent means all zero): a recipient that can see a newer
	// incarnation of the address alive ignores the entry, so old
	// departure news cannot kill a durably restarted node.
	Departed    []string
	DepartedGen []uint64

	// Object store (PurposeStore*, KindStoreReply, KindReplicaSync).
	Value   []byte        // payload of a PurposeStorePut / found KindStoreReply
	Found   bool          // KindStoreReply: the key had a live record
	Version uint64        // version of the record acted upon
	Records []StoreRecord // KindReplicaSync: replicated / handed-off records
	Handoff bool          // KindReplicaSync: recipient becomes the owner
	Shed    bool          // KindStoreReply: the owner refused the op under overload

	// Anti-entropy (KindSyncDigest, KindSyncPull): packed 8-byte record
	// fingerprints, little-endian, no separators.
	Digest []byte
}

// MaxEnvelopeBytes bounds an accepted wire frame (it matches the TCP
// transport's 1 MiB frame cap). VoroNet views are O(1), so real envelopes
// are tiny; the bound keeps a malicious length prefix from making the
// decoder allocate unboundedly before the payload is even validated.
const MaxEnvelopeBytes = 1 << 20

// Encode serialises an envelope with the binary v1 codec (see wire.go)
// into fresh storage. Hot paths should prefer AppendEncode with a pooled
// WireBuf; Encode exists for callers that keep the bytes around.
func Encode(e *Envelope) ([]byte, error) {
	return AppendEncode(nil, e), nil
}

// gobScratch pairs the encode buffer a gob frame is built in with the
// output staging both codec paths share. bytes.Buffer growth — the
// dominant allocation of the old per-call path — is amortised by the
// pool; the gob.Encoder itself must stay per-frame, because every frame
// is decoded by a fresh gob.Decoder (frames are self-contained: peers,
// transcripts and restarted connections cannot share stream state), and
// a reused encoder stops emitting the type descriptors a fresh decoder
// needs. That per-frame descriptor retransmission is exactly the cost
// the binary codec removes.
type gobScratch struct{ buf bytes.Buffer }

var gobPool = sync.Pool{New: func() any { return new(gobScratch) }}

// AppendEncodeGob appends the legacy gob encoding of e to dst — the
// honest A/B baseline for the binary codec, with the per-call
// bytes.Buffer churn pooled away.
func AppendEncodeGob(dst []byte, e *Envelope) ([]byte, error) {
	s := gobPool.Get().(*gobScratch)
	s.buf.Reset()
	if err := gob.NewEncoder(&s.buf).Encode(e); err != nil {
		gobPool.Put(s)
		return nil, fmt.Errorf("proto: encode: %w", err)
	}
	dst = append(dst, s.buf.Bytes()...)
	gobPool.Put(s)
	return dst, nil
}

// EncodeGob is AppendEncodeGob into fresh storage.
func EncodeGob(e *Envelope) ([]byte, error) { return AppendEncodeGob(nil, e) }

// AppendEncodeMode appends e in the selected codec: gob when gobWire is
// set (the Config.GobWire A/B baseline), binary v1 otherwise.
func AppendEncodeMode(dst []byte, e *Envelope, gobWire bool) ([]byte, error) {
	if gobWire {
		return AppendEncodeGob(dst, e)
	}
	return AppendEncode(dst, e), nil
}

// Decode deserialises an envelope of either codec, sniffed from the
// first byte: wireMagic selects the binary v1 decoder, anything else is
// gob (a gob stream can never start with wireMagic — see wire.go), so
// binary and GobWire nodes interoperate in one overlay and old gob
// transcripts stay decodable. Malformed bytes yield an error, never a
// panic: nodes drop garbage frames and stay up (see
// FuzzEnvelopeRoundTrip). Structurally valid frames carrying
// semantically impossible field values are rejected here too: no
// legitimate sender ever produces a negative Link, Hops or
// BackEntry.Link, and a negative Link used to reach a slice index and
// crash the receiving node.
func Decode(b []byte) (*Envelope, error) {
	if len(b) > MaxEnvelopeBytes {
		return nil, fmt.Errorf("proto: decode: frame of %d bytes exceeds %d", len(b), MaxEnvelopeBytes)
	}
	if len(b) > 0 && b[0] == wireMagic {
		return decodeBinary(b)
	}
	var e Envelope
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&e); err != nil {
		return nil, fmt.Errorf("proto: decode: %w", err)
	}
	if err := e.validate(); err != nil {
		return nil, err
	}
	return &e, nil
}

// validate rejects field values no correct peer can send. It runs on every
// decode, so it must stay O(fields).
func (e *Envelope) validate() error {
	if e.Link < 0 {
		return fmt.Errorf("proto: decode: negative Link %d", e.Link)
	}
	if e.Hops < 0 {
		return fmt.Errorf("proto: decode: negative Hops %d", e.Hops)
	}
	for i := range e.Back {
		if e.Back[i].Link < 0 {
			return fmt.Errorf("proto: decode: negative Back[%d].Link %d", i, e.Back[i].Link)
		}
	}
	if len(e.Path) > MaxTracePath {
		return fmt.Errorf("proto: decode: trace path of %d hops exceeds %d", len(e.Path), MaxTracePath)
	}
	if len(e.Digest)%8 != 0 {
		return fmt.Errorf("proto: decode: digest of %d bytes is not a whole number of fingerprints", len(e.Digest))
	}
	if len(e.DepartedGen) > len(e.Departed) {
		return fmt.Errorf("proto: decode: %d departure generations for %d departures", len(e.DepartedGen), len(e.Departed))
	}
	return nil
}

// AppendHop returns Path extended with one hop, always in fresh backing
// storage. Forwarding copies envelopes by value (fwd := *env), which
// aliases the Path backing array between the original and the copy; a
// plain append could then write one branch's hop into another's slice.
func AppendHop(path []TraceHop, hop TraceHop) []TraceHop {
	out := make([]TraceHop, len(path)+1)
	copy(out, path)
	out[len(path)] = hop
	return out
}
