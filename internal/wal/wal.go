// Package wal is an append-only, segmented write-ahead log for store
// records. Every acked PUT/DELETE on a node is framed, CRC-protected and
// appended here before the ack leaves the process, so a crash loses at
// most the unsynced tail — never an acknowledged write (under SyncAlways).
//
// Layout: a directory of fixed-prefix segment files
//
//	seg-00000001.wal, seg-00000002.wal, ...
//
// each holding a sequence of frames
//
//	[length uint32 LE][crc32(IEEE) uint32 LE][payload]
//
// where payload is a fixed 29-byte record header plus the value bytes:
//
//	key.X float64 bits (8) | key.Y float64 bits (8) | version (8) |
//	flags (1, bit0 = tombstone) | value length (4) | value
//
// Replay applies records in file order; the store's newest-wins Apply
// makes duplicate and out-of-date records harmless, so compaction can
// simply write a fresh snapshot segment and delete the older ones.
//
// Corruption policy: a torn frame at the tail of the FINAL segment is the
// normal signature of a crash mid-append — replay stops there, reports
// Truncated, and Open truncates the file so subsequent appends stay
// readable. A bad CRC or absurd length anywhere else is real corruption:
// replay counts it, abandons the rest of that segment, and continues with
// later segments (safe, again, because Apply is newest-wins).
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"voronet/internal/geom"
	"voronet/internal/proto"
)

// SyncPolicy selects when appends reach stable storage.
type SyncPolicy int

const (
	// SyncAlways fsyncs after every append: an acked write is on disk
	// before the ack. The durable default.
	SyncAlways SyncPolicy = iota
	// SyncBatch fsyncs only on explicit Sync() calls — the caller
	// (e.g. a periodic loop or graceful shutdown) drives the cadence.
	SyncBatch
	// SyncNever leaves flushing entirely to the OS. Fastest, weakest.
	SyncNever
)

// ParsePolicy maps the CLI spelling to a SyncPolicy.
func ParsePolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "batch":
		return SyncBatch, nil
	case "never":
		return SyncNever, nil
	}
	return 0, fmt.Errorf("wal: unknown fsync policy %q (want always|batch|never)", s)
}

const (
	segPrefix = "seg-"
	segSuffix = ".wal"

	headerBytes = 29 // fixed record header inside the payload
	frameBytes  = 8  // length + crc preceding every payload

	// maxPayloadBytes bounds the length field during replay so a
	// corrupt frame cannot make us allocate gigabytes. Store values are
	// capped well below this (store.MaxValueBytes = 512 KiB).
	maxPayloadBytes = 1 << 20

	// DefaultSegmentBytes is the rotation threshold when Options
	// leaves SegmentBytes zero.
	DefaultSegmentBytes = 4 << 20
)

// Options configures a Log.
type Options struct {
	// Dir is the segment directory; created if missing.
	Dir string
	// SegmentBytes rotates to a new segment once the current one
	// reaches this size. Zero means DefaultSegmentBytes.
	SegmentBytes int64
	// Policy selects the fsync cadence (default SyncAlways).
	Policy SyncPolicy
	// FsyncObserve, if non-nil, receives the wall-clock seconds of
	// every fsync (feeds the wal_fsync_seconds histogram).
	FsyncObserve func(seconds float64)
}

// ReplayStats summarises what a replay recovered and what it skipped.
type ReplayStats struct {
	// Records is the number of valid records applied.
	Records int
	// Segments is the number of segment files visited.
	Segments int
	// Truncated reports a torn frame at the tail of the final segment
	// (the benign crash-mid-append signature).
	Truncated bool
	// CorruptFrames counts bad frames elsewhere: each one abandons the
	// remainder of its segment.
	CorruptFrames int
	// Generation is this open's incarnation number: a counter persisted
	// beside the segments (file "gen") and bumped by every Open. The
	// node carries it in its NodeInfo so that departure gossip about a
	// crashed incarnation cannot kill its restarted successor.
	Generation uint64
}

// Log is an open write-ahead log positioned for appending. Methods are
// not safe for concurrent use; callers serialise (the node holds walMu).
type Log struct {
	opt      Options
	f        *os.File // current (last) segment
	size     int64    // bytes written to f
	seq      int      // sequence number of f
	firstSeq int      // sequence number of the oldest live segment
	dirty    bool     // unsynced appends outstanding
	closed   bool
	failed   bool   // torn frame left in place (truncate failed); appends refused
	buf      []byte // frame scratch, reused across appends
}

// Open replays every segment under opt.Dir through apply (oldest segment
// first, in-file order) and returns a Log positioned to append after the
// last valid record. A torn tail on the final segment is truncated away
// so the next append produces a readable file.
func Open(opt Options, apply func(proto.StoreRecord)) (*Log, ReplayStats, error) {
	if opt.SegmentBytes <= 0 {
		opt.SegmentBytes = DefaultSegmentBytes
	}
	if err := os.MkdirAll(opt.Dir, 0o755); err != nil {
		return nil, ReplayStats{}, err
	}
	segs, err := listSegments(opt.Dir)
	if err != nil {
		return nil, ReplayStats{}, err
	}
	var stats ReplayStats
	if stats.Generation, err = bumpGeneration(opt.Dir); err != nil {
		return nil, stats, err
	}
	lastSeq := 0
	lastValid := int64(0)
	for i, s := range segs {
		final := i == len(segs)-1
		valid, err := replaySegment(filepath.Join(opt.Dir, s.name), final, apply, &stats)
		if err != nil {
			return nil, stats, err
		}
		lastSeq = s.seq
		lastValid = valid
	}
	l := &Log{opt: opt}
	if len(segs) == 0 {
		if err := l.openSegment(1, 0); err != nil {
			return nil, stats, err
		}
		l.firstSeq = 1
		return l, stats, nil
	}
	// Reopen the final segment for appending, dropping any torn tail.
	path := filepath.Join(opt.Dir, segmentName(lastSeq))
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, stats, err
	}
	if fi, err := f.Stat(); err == nil && fi.Size() > lastValid {
		if err := f.Truncate(lastValid); err != nil {
			f.Close()
			return nil, stats, err
		}
	}
	if _, err := f.Seek(lastValid, io.SeekStart); err != nil {
		f.Close()
		return nil, stats, err
	}
	l.f, l.size, l.seq = f, lastValid, lastSeq
	l.firstSeq = segs[0].seq
	return l, stats, nil
}

// bumpGeneration reads, increments and rewrites the incarnation counter
// file beside the segments, fsyncing so the bump survives the crash it
// exists to disambiguate. The rewrite is atomic (temp file + rename):
// the old counter must stay readable until the new one fully replaces
// it, because an empty or missing file restarts the counter at 1 and a
// restarted node with a lower generation than its own tombstones can
// never rejoin.
func bumpGeneration(dir string) (uint64, error) {
	path := filepath.Join(dir, "gen")
	var gen uint64
	if b, err := os.ReadFile(path); err == nil {
		gen, _ = strconv.ParseUint(strings.TrimSpace(string(b)), 10, 64)
	}
	gen++
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return 0, err
	}
	if _, err := f.WriteString(strconv.FormatUint(gen, 10)); err != nil {
		f.Close()
		return 0, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return 0, err
	}
	if err := f.Close(); err != nil {
		return 0, err
	}
	if err := os.Rename(tmp, path); err != nil {
		return 0, err
	}
	return gen, syncDir(dir)
}

// syncDir fsyncs a directory so that entry-level changes (segment
// creation, removal, the gen-file rename) are themselves durable —
// fsyncing a file persists its contents, not the directory entry that
// names it.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// Replay reads every segment under dir through apply without opening the
// log for writing. Missing directories replay as empty.
func Replay(dir string, apply func(proto.StoreRecord)) (ReplayStats, error) {
	var stats ReplayStats
	segs, err := listSegments(dir)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return stats, nil
		}
		return stats, err
	}
	for i, s := range segs {
		final := i == len(segs)-1
		if _, err := replaySegment(filepath.Join(dir, s.name), final, apply, &stats); err != nil {
			return stats, err
		}
	}
	return stats, nil
}

// Append frames rec and writes it to the current segment, rotating first
// if the segment is full. Under SyncAlways the record is fsynced before
// Append returns.
func (l *Log) Append(rec proto.StoreRecord) error {
	if l.closed {
		return errors.New("wal: append on closed log")
	}
	if l.failed {
		return errors.New("wal: log failed (torn frame could not be removed)")
	}
	if l.size >= l.opt.SegmentBytes {
		if err := l.rotate(); err != nil {
			return err
		}
	}
	if err := l.writeFrame(rec); err != nil {
		return err
	}
	l.dirty = true
	if l.opt.Policy == SyncAlways {
		return l.fsync()
	}
	return nil
}

// writeFrame frames rec onto the current segment. A failed write may
// leave a partial frame in place; replay stops at the first bad frame,
// so any record appended after it would be silently lost on restart.
// writeFrame therefore truncates the segment back to the pre-write
// offset on error — and if even that fails, marks the whole log failed
// so later appends are refused instead of being unreplayable.
func (l *Log) writeFrame(rec proto.StoreRecord) error {
	l.buf = appendFrame(l.buf[:0], rec)
	off := l.size
	n, err := l.f.Write(l.buf)
	if err != nil {
		if n > 0 && !l.restoreTo(off) {
			l.failed = true
			l.size = off + int64(n)
		}
		return err
	}
	l.size = off + int64(n)
	return nil
}

// restoreTo cuts the current segment back to off, removing a torn frame
// left by a failed write. The seek matters for segments reopened by Open
// (no O_APPEND): their writes land at the file offset, which the partial
// write advanced.
func (l *Log) restoreTo(off int64) bool {
	if err := l.f.Truncate(off); err != nil {
		return false
	}
	if _, err := l.f.Seek(off, io.SeekStart); err != nil {
		return false
	}
	l.size = off
	return true
}

// Sync flushes outstanding appends to stable storage (a no-op when
// nothing is dirty or the policy is SyncNever).
func (l *Log) Sync() error {
	if l.closed || !l.dirty || l.opt.Policy == SyncNever {
		return nil
	}
	return l.fsync()
}

// Close syncs (per policy) and closes the current segment. The log is
// unusable afterwards.
func (l *Log) Close() error {
	if l.closed {
		return nil
	}
	err := l.Sync()
	l.closed = true
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// Compact writes recs as a fresh snapshot segment and deletes every
// older segment, bounding replay work and log size. The ordering is
// create → fsync data → fsync dir → unlink old → fsync dir: the
// snapshot (contents AND directory entry) is durable before any old
// segment disappears, so a crash at any point leaves a replayable (at
// worst duplicated) log. Compaction also recovers a failed log: the
// snapshot supersedes whatever the torn segment held.
func (l *Log) Compact(recs []proto.StoreRecord) error {
	if l.closed {
		return errors.New("wal: compact on closed log")
	}
	oldSeq := l.seq
	if err := l.f.Close(); err != nil {
		return err
	}
	if err := l.openSegment(oldSeq+1, 0); err != nil {
		return err
	}
	for _, rec := range recs {
		if err := l.writeFrame(rec); err != nil {
			return err
		}
	}
	l.dirty = true
	if err := l.fsync(); err != nil {
		return err
	}
	if err := l.removeSegmentsBefore(l.seq); err != nil {
		return err
	}
	if err := syncDir(l.opt.Dir); err != nil {
		return err
	}
	l.firstSeq = l.seq
	l.failed = false
	return nil
}

// Reset discards every segment and starts an empty log — used after a
// graceful Leave has handed all records off to the surviving nodes.
func (l *Log) Reset() error {
	if l.closed {
		return errors.New("wal: reset on closed log")
	}
	if err := l.f.Close(); err != nil {
		return err
	}
	segs, err := listSegments(l.opt.Dir)
	if err != nil {
		return err
	}
	for _, s := range segs {
		if err := os.Remove(filepath.Join(l.opt.Dir, s.name)); err != nil {
			return err
		}
	}
	if err := l.openSegment(1, 0); err != nil {
		return err
	}
	l.firstSeq = 1
	return nil
}

// Segments reports how many segment files the log currently spans (the
// compaction trigger input). O(1): segment sequence numbers are dense,
// so the span is the live sequence range.
func (l *Log) Segments() int {
	return l.seq - l.firstSeq + 1
}

func (l *Log) fsync() error {
	start := time.Now()
	err := l.f.Sync()
	if err == nil {
		l.dirty = false
		if l.opt.FsyncObserve != nil {
			l.opt.FsyncObserve(time.Since(start).Seconds())
		}
	}
	return err
}

func (l *Log) rotate() error {
	if err := l.f.Close(); err != nil {
		return err
	}
	return l.openSegment(l.seq+1, 0)
}

// openSegment creates (or reopens) segment seq and makes its directory
// entry durable before any append can be acked against it — fsyncing the
// file alone would leave the first records of a fresh segment pointing
// at a name a crash can forget.
func (l *Log) openSegment(seq int, size int64) error {
	path := filepath.Join(l.opt.Dir, segmentName(seq))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	if err := syncDir(l.opt.Dir); err != nil {
		f.Close()
		return err
	}
	l.f, l.size, l.seq, l.dirty = f, size, seq, false
	return nil
}

func (l *Log) removeSegmentsBefore(seq int) error {
	segs, err := listSegments(l.opt.Dir)
	if err != nil {
		return err
	}
	for _, s := range segs {
		if s.seq < seq {
			if err := os.Remove(filepath.Join(l.opt.Dir, s.name)); err != nil {
				return err
			}
		}
	}
	return nil
}

type segment struct {
	name string
	seq  int
}

func segmentName(seq int) string {
	return fmt.Sprintf("%s%08d%s", segPrefix, seq, segSuffix)
}

func listSegments(dir string) ([]segment, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []segment
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		var seq int
		if _, err := fmt.Sscanf(strings.TrimSuffix(name, segSuffix), segPrefix+"%d", &seq); err != nil || seq <= 0 {
			continue
		}
		segs = append(segs, segment{name: name, seq: seq})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].seq < segs[j].seq })
	return segs, nil
}

// appendFrame encodes rec as [len][crc][payload] onto buf.
func appendFrame(buf []byte, rec proto.StoreRecord) []byte {
	payloadLen := headerBytes + len(rec.Value)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(payloadLen))
	crcAt := len(buf)
	buf = append(buf, 0, 0, 0, 0) // crc placeholder
	start := len(buf)
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(rec.Key.X))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(rec.Key.Y))
	buf = binary.LittleEndian.AppendUint64(buf, rec.Version)
	var flags byte
	if rec.Deleted {
		flags |= 1
	}
	buf = append(buf, flags)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(rec.Value)))
	buf = append(buf, rec.Value...)
	binary.LittleEndian.PutUint32(buf[crcAt:], crc32.ChecksumIEEE(buf[start:]))
	return buf
}

// decodePayload rebuilds a StoreRecord from a frame payload. The length
// consistency check (inner value length vs frame length) guards against
// a frame whose CRC happens to validate garbage lengths.
func decodePayload(p []byte) (proto.StoreRecord, bool) {
	if len(p) < headerBytes {
		return proto.StoreRecord{}, false
	}
	vlen := binary.LittleEndian.Uint32(p[25:29])
	if int(vlen) != len(p)-headerBytes {
		return proto.StoreRecord{}, false
	}
	rec := proto.StoreRecord{
		Key: geom.Pt(
			math.Float64frombits(binary.LittleEndian.Uint64(p[0:8])),
			math.Float64frombits(binary.LittleEndian.Uint64(p[8:16])),
		),
		Version: binary.LittleEndian.Uint64(p[16:24]),
		Deleted: p[24]&1 != 0,
	}
	if vlen > 0 {
		rec.Value = append([]byte(nil), p[29:]...)
	}
	return rec, true
}

// replaySegment streams one segment through apply and returns the offset
// just past the last valid frame. final marks the last segment, where an
// incomplete tail frame is the benign crash signature (Truncated) rather
// than corruption.
func replaySegment(path string, final bool, apply func(proto.StoreRecord), stats *ReplayStats) (int64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	stats.Segments++
	off := int64(0)
	for {
		rest := data[off:]
		if len(rest) == 0 {
			return off, nil
		}
		if len(rest) < frameBytes {
			// Tail shorter than a frame header: torn write.
			if final {
				stats.Truncated = true
			} else {
				stats.CorruptFrames++
			}
			return off, nil
		}
		plen := binary.LittleEndian.Uint32(rest[0:4])
		if plen < headerBytes || plen > maxPayloadBytes {
			// Nonsense length: corruption, even at the tail —
			// a torn append can truncate a frame but not write
			// a full garbage header with valid-looking bytes
			// beyond it.
			stats.CorruptFrames++
			return off, nil
		}
		if int64(len(rest)) < frameBytes+int64(plen) {
			// Frame extends past EOF: torn write.
			if final {
				stats.Truncated = true
			} else {
				stats.CorruptFrames++
			}
			return off, nil
		}
		payload := rest[frameBytes : frameBytes+int(plen)]
		if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(rest[4:8]) {
			stats.CorruptFrames++
			return off, nil
		}
		rec, ok := decodePayload(payload)
		if !ok {
			stats.CorruptFrames++
			return off, nil
		}
		if apply != nil {
			apply(rec)
		}
		stats.Records++
		off += frameBytes + int64(plen)
	}
}
