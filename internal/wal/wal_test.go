package wal

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"voronet/internal/geom"
	"voronet/internal/proto"
)

func rec(x, y float64, ver uint64, val string) proto.StoreRecord {
	r := proto.StoreRecord{Key: geom.Pt(x, y), Version: ver}
	if val == "" {
		r.Deleted = true
	} else {
		r.Value = []byte(val)
	}
	return r
}

func collect(t *testing.T, dir string) ([]proto.StoreRecord, ReplayStats) {
	t.Helper()
	var recs []proto.StoreRecord
	stats, err := Replay(dir, func(r proto.StoreRecord) { recs = append(recs, r) })
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	return recs, stats
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, stats, err := Open(Options{Dir: dir}, nil)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if stats.Records != 0 || stats.Truncated || stats.CorruptFrames != 0 {
		t.Fatalf("fresh log stats = %+v", stats)
	}
	want := []proto.StoreRecord{
		rec(0.1, 0.2, 1, "hello"),
		rec(0.3, 0.4, 2, ""),
		rec(0.1, 0.2, 2, "world"),
	}
	for _, r := range want {
		if err := l.Append(r); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	got, stats := collect(t, dir)
	if stats.Records != len(want) || stats.Truncated || stats.CorruptFrames != 0 {
		t.Fatalf("stats = %+v", stats)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Key != want[i].Key || got[i].Version != want[i].Version ||
			got[i].Deleted != want[i].Deleted || !bytes.Equal(got[i].Value, want[i].Value) {
			t.Fatalf("record %d: got %+v want %+v", i, got[i], want[i])
		}
	}
}

func TestReopenAppends(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(Options{Dir: dir}, nil)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if err := l.Append(rec(0.1, 0.1, 1, "a")); err != nil {
		t.Fatalf("append: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	var replayed int
	l, stats, err := Open(Options{Dir: dir}, func(proto.StoreRecord) { replayed++ })
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if replayed != 1 || stats.Records != 1 {
		t.Fatalf("replayed %d, stats %+v", replayed, stats)
	}
	if err := l.Append(rec(0.2, 0.2, 1, "b")); err != nil {
		t.Fatalf("append after reopen: %v", err)
	}
	l.Close()
	got, _ := collect(t, dir)
	if len(got) != 2 {
		t.Fatalf("got %d records after reopen-append, want 2", len(got))
	}
}

// A frame cut mid-payload at the tail of the final segment is the normal
// crash signature: replay recovers everything before it, reports
// Truncated, and reopening truncates the torn bytes so new appends land
// in a readable file.
func TestTornFinalRecordTruncated(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(Options{Dir: dir}, nil)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	l.Append(rec(0.1, 0.1, 1, "keep-me"))
	l.Append(rec(0.2, 0.2, 1, "torn"))
	l.Close()

	seg := filepath.Join(dir, segmentName(1))
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatalf("read segment: %v", err)
	}
	if err := os.WriteFile(seg, data[:len(data)-5], 0o644); err != nil {
		t.Fatalf("tear segment: %v", err)
	}

	got, stats := collect(t, dir)
	if len(got) != 1 || got[0].Version != 1 || string(got[0].Value) != "keep-me" {
		t.Fatalf("torn replay got %+v", got)
	}
	if !stats.Truncated || stats.CorruptFrames != 0 {
		t.Fatalf("torn stats = %+v", stats)
	}

	// Reopen must truncate the tear and accept new appends.
	l, stats, err = Open(Options{Dir: dir}, nil)
	if err != nil {
		t.Fatalf("reopen torn: %v", err)
	}
	if !stats.Truncated {
		t.Fatalf("reopen stats = %+v", stats)
	}
	if err := l.Append(rec(0.3, 0.3, 1, "after-tear")); err != nil {
		t.Fatalf("append after tear: %v", err)
	}
	l.Close()
	got, stats = collect(t, dir)
	if len(got) != 2 || stats.Truncated || stats.CorruptFrames != 0 {
		t.Fatalf("after-tear replay: %d records, stats %+v", len(got), stats)
	}
	if string(got[1].Value) != "after-tear" {
		t.Fatalf("appended record = %+v", got[1])
	}
}

// A flipped byte mid-segment fails the CRC: replay stops that segment at
// the last valid record, counts the corruption, and still replays later
// segments in full.
func TestCorruptCRCMidSegment(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(Options{Dir: dir, SegmentBytes: 64}, nil)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	// Segment 1 gets two records (rotation threshold is checked before
	// appending, so the second lands in seg 1 too), then seg 2 starts.
	l.Append(rec(0.1, 0.1, 1, "seg1-a"))
	l.Append(rec(0.2, 0.2, 1, "seg1-b"))
	l.Append(rec(0.3, 0.3, 1, "seg2-a"))
	l.Close()
	if got := l.Segments(); got != 2 {
		t.Fatalf("segments = %d, want 2", got)
	}

	// Corrupt the second record of segment 1 (flip a payload byte).
	seg := filepath.Join(dir, segmentName(1))
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	first := frameBytes + headerBytes + len("seg1-a")
	data[first+frameBytes+headerBytes] ^= 0xff
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatalf("write: %v", err)
	}

	got, stats := collect(t, dir)
	if stats.CorruptFrames != 1 || stats.Truncated {
		t.Fatalf("stats = %+v", stats)
	}
	if len(got) != 2 || string(got[0].Value) != "seg1-a" || string(got[1].Value) != "seg2-a" {
		vals := make([]string, len(got))
		for i, r := range got {
			vals[i] = string(r.Value)
		}
		t.Fatalf("replayed %v; want [seg1-a seg2-a]", vals)
	}
}

func TestRotationAndCompaction(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(Options{Dir: dir, SegmentBytes: 128}, nil)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	for i := 0; i < 20; i++ {
		if err := l.Append(rec(float64(i)/100, 0.5, uint64(i+1), "padding-padding-padding")); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if segs := l.Segments(); segs < 3 {
		t.Fatalf("expected rotation to produce >=3 segments, got %d", segs)
	}

	// Compact down to a two-record snapshot.
	snap := []proto.StoreRecord{rec(0.9, 0.9, 7, "live"), rec(0.8, 0.8, 3, "")}
	if err := l.Compact(snap); err != nil {
		t.Fatalf("compact: %v", err)
	}
	if segs := l.Segments(); segs != 1 {
		t.Fatalf("after compact segments = %d, want 1", segs)
	}
	// Appends continue after compaction and replay sees snapshot+tail.
	if err := l.Append(rec(0.7, 0.7, 1, "tail")); err != nil {
		t.Fatalf("append after compact: %v", err)
	}
	l.Close()
	got, stats := collect(t, dir)
	if len(got) != 3 || stats.CorruptFrames != 0 || stats.Truncated {
		t.Fatalf("after compact replay: %d records, stats %+v", len(got), stats)
	}
	if !got[1].Deleted || string(got[2].Value) != "tail" {
		t.Fatalf("replayed %+v", got)
	}
}

func TestReset(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(Options{Dir: dir}, nil)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	l.Append(rec(0.1, 0.1, 1, "gone"))
	if err := l.Reset(); err != nil {
		t.Fatalf("reset: %v", err)
	}
	l.Append(rec(0.2, 0.2, 1, "fresh"))
	l.Close()
	got, _ := collect(t, dir)
	if len(got) != 1 || string(got[0].Value) != "fresh" {
		t.Fatalf("after reset replay %+v", got)
	}
}

func TestSyncBatchPolicy(t *testing.T) {
	dir := t.TempDir()
	var syncs int
	l, _, err := Open(Options{
		Dir:          dir,
		Policy:       SyncBatch,
		FsyncObserve: func(float64) { syncs++ },
	}, nil)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	l.Append(rec(0.1, 0.1, 1, "a"))
	l.Append(rec(0.2, 0.2, 1, "b"))
	if syncs != 0 {
		t.Fatalf("batch policy fsynced on append: %d", syncs)
	}
	if err := l.Sync(); err != nil {
		t.Fatalf("sync: %v", err)
	}
	if syncs != 1 {
		t.Fatalf("explicit sync count = %d, want 1", syncs)
	}
	// No dirty appends => Sync is a no-op.
	l.Sync()
	if syncs != 1 {
		t.Fatalf("idle sync count = %d, want 1", syncs)
	}
	l.Close()
}

// A partial frame left by a failed write must not poison the log: after
// restoreTo cuts it away, later appends replay cleanly; and when the cut
// itself fails the log refuses appends rather than writing records that
// replay would silently drop.
func TestTornFrameRestoredOrRefused(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(Options{Dir: dir}, nil)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if err := l.Append(rec(0.1, 0.1, 1, "before")); err != nil {
		t.Fatalf("append: %v", err)
	}
	// Simulate the residue of a failed Append: garbage bytes after the
	// last good frame, as a partial write would leave them.
	good := l.size
	if _, err := l.f.Write([]byte{0xde, 0xad, 0xbe}); err != nil {
		t.Fatalf("write garbage: %v", err)
	}
	if !l.restoreTo(good) {
		t.Fatal("restoreTo failed on a healthy file")
	}
	if l.size != good {
		t.Fatalf("size after restore = %d, want %d", l.size, good)
	}
	if err := l.Append(rec(0.2, 0.2, 1, "after")); err != nil {
		t.Fatalf("append after restore: %v", err)
	}
	l.Close()
	got, stats := collect(t, dir)
	if len(got) != 2 || stats.Truncated || stats.CorruptFrames != 0 {
		t.Fatalf("after restore: %d records, stats %+v", len(got), stats)
	}
	if string(got[1].Value) != "after" {
		t.Fatalf("replayed %+v", got[1])
	}

	// A log whose torn frame could not be removed refuses appends...
	l2, _, err := Open(Options{Dir: t.TempDir()}, nil)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	l2.failed = true
	if err := l2.Append(rec(0.3, 0.3, 1, "lost")); err == nil {
		t.Fatal("append on failed log succeeded")
	}
	// ...but a successful Compact rewrites a fresh segment and recovers.
	if err := l2.Compact([]proto.StoreRecord{rec(0.4, 0.4, 2, "snap")}); err != nil {
		t.Fatalf("compact on failed log: %v", err)
	}
	if l2.failed {
		t.Fatal("compact did not clear the failed state")
	}
	if err := l2.Append(rec(0.5, 0.5, 1, "resumed")); err != nil {
		t.Fatalf("append after recovery compact: %v", err)
	}
	l2.Close()
}

// The generation bump must be atomic: the counter is rewritten via a
// temp file + rename, so a stale temp from a crashed bump is harmless
// and the visible gen file always holds a complete value.
func TestGenerationBumpAtomic(t *testing.T) {
	dir := t.TempDir()
	l, stats, err := Open(Options{Dir: dir}, nil)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if stats.Generation != 1 {
		t.Fatalf("first generation = %d, want 1", stats.Generation)
	}
	l.Close()

	// Simulate a crash mid-bump: a leftover temp file, gen intact.
	if err := os.WriteFile(filepath.Join(dir, "gen.tmp"), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	l, stats, err = Open(Options{Dir: dir}, nil)
	if err != nil {
		t.Fatalf("reopen with stale tmp: %v", err)
	}
	if stats.Generation != 2 {
		t.Fatalf("generation after stale tmp = %d, want 2", stats.Generation)
	}
	l.Close()
	if _, err := os.Stat(filepath.Join(dir, "gen.tmp")); !os.IsNotExist(err) {
		t.Fatal("bump left its temp file behind")
	}
	b, err := os.ReadFile(filepath.Join(dir, "gen"))
	if err != nil || string(b) != "2" {
		t.Fatalf("gen file = %q, %v; want \"2\"", b, err)
	}
}

func TestReplayMissingDirIsEmpty(t *testing.T) {
	stats, err := Replay(filepath.Join(t.TempDir(), "never-created"), nil)
	if err != nil {
		t.Fatalf("replay missing dir: %v", err)
	}
	if stats.Records != 0 || stats.Segments != 0 {
		t.Fatalf("stats = %+v", stats)
	}
}

// FuzzWALReplay feeds hostile bytes as a single segment: replay must
// never panic, never allocate unboundedly, and always terminate.
func FuzzWALReplay(f *testing.F) {
	// Seed corpus: a valid frame, a torn frame, a bad-CRC frame, a
	// huge-length frame, and a zero-length file.
	valid := appendFrame(nil, proto.StoreRecord{Key: geom.Pt(0.1, 0.2), Version: 3, Value: []byte("v")})
	f.Add(valid)
	f.Add(valid[:len(valid)-2])
	badCRC := append([]byte(nil), valid...)
	badCRC[4] ^= 0xff
	f.Add(badCRC)
	huge := binary.LittleEndian.AppendUint32(nil, 1<<31)
	huge = append(huge, 0, 0, 0, 0)
	f.Add(huge)
	f.Add([]byte{})
	// A frame whose CRC validates but whose inner value length lies.
	lying := make([]byte, frameBytes+headerBytes)
	binary.LittleEndian.PutUint32(lying[0:4], headerBytes)
	binary.LittleEndian.PutUint32(lying[frameBytes+25:], 99)
	binary.LittleEndian.PutUint32(lying[4:8], crc32.ChecksumIEEE(lying[frameBytes:]))
	f.Add(lying)

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segmentName(1)), data, 0o644); err != nil {
			t.Fatal(err)
		}
		var n int
		stats, err := Replay(dir, func(r proto.StoreRecord) {
			n++
			if len(r.Value) > maxPayloadBytes {
				t.Fatalf("oversized value survived replay: %d", len(r.Value))
			}
		})
		if err != nil {
			t.Fatalf("replay errored on hostile input: %v", err)
		}
		if stats.Records != n {
			t.Fatalf("stats.Records=%d but apply ran %d times", stats.Records, n)
		}
		// Opening hostile bytes for append must also be safe, and the
		// resulting log must accept a write and replay it back.
		l, _, err := Open(Options{Dir: dir}, nil)
		if err != nil {
			t.Fatalf("open on hostile input: %v", err)
		}
		if err := l.Append(proto.StoreRecord{Key: geom.Pt(0.5, 0.5), Version: 1, Value: []byte("x")}); err != nil {
			t.Fatalf("append after hostile open: %v", err)
		}
		l.Close()
		found := false
		if _, err := Replay(dir, func(r proto.StoreRecord) {
			if r.Version == 1 && string(r.Value) == "x" {
				found = true
			}
		}); err != nil {
			t.Fatalf("replay after append: %v", err)
		}
		if !found {
			t.Fatal("append after hostile open not replayable")
		}
	})
}
