package delaunay

import (
	"sort"

	"voronet/internal/geom"
)

// InsertBulk inserts many sites at once in a locality-aware order
// (Hilbert-curve sort, the core of a BRIO build): consecutive insertions
// land near each other, so the remembering walk from the previous site is
// O(1) steps and the whole build is close to linear time. Results are
// returned in the order of the input points; duplicates yield the existing
// site's ID.
//
// The structural outcome is identical to inserting the points one by one
// in any order — the Delaunay triangulation of a point set is unique (up
// to co-circular retriangulation) — so this is purely a construction-time
// optimisation: the experiment engine uses it to build 300 000-object
// overlays in seconds.
func (t *Triangulation) InsertBulk(points []geom.Point) []VertexID {
	ids := make([]VertexID, len(points))
	order := hilbertOrder(points)
	hint := t.lastInsertedHint()
	for _, idx := range order {
		v, err := t.Insert(points[idx], hint)
		ids[idx] = v
		if err == nil {
			hint = v
		}
	}
	return ids
}

func (t *Triangulation) lastInsertedHint() VertexID {
	if t.lastFace == NoFace || int(t.lastFace) >= len(t.faces) || !t.faces[t.lastFace].alive {
		return NoVertex
	}
	for _, v := range t.faces[t.lastFace].v {
		if v != Infinite {
			return v
		}
	}
	return NoVertex
}

// hilbertOrder returns a permutation of indices sorting the points along a
// Hilbert curve over their bounding box.
func hilbertOrder(points []geom.Point) []int {
	n := len(points)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	if n < 3 {
		return order
	}
	minX, minY := points[0].X, points[0].Y
	maxX, maxY := minX, minY
	for _, p := range points {
		if p.X < minX {
			minX = p.X
		}
		if p.X > maxX {
			maxX = p.X
		}
		if p.Y < minY {
			minY = p.Y
		}
		if p.Y > maxY {
			maxY = p.Y
		}
	}
	spanX := maxX - minX
	spanY := maxY - minY
	if spanX == 0 {
		spanX = 1
	}
	if spanY == 0 {
		spanY = 1
	}
	const bits = 16
	const side = 1 << bits
	keys := make([]uint64, n)
	for i, p := range points {
		x := uint32((p.X - minX) / spanX * (side - 1))
		y := uint32((p.Y - minY) / spanY * (side - 1))
		keys[i] = hilbertD(bits, x, y)
	}
	sort.Slice(order, func(a, b int) bool { return keys[order[a]] < keys[order[b]] })
	return order
}

// hilbertD maps grid cell (x, y) on a 2^order × 2^order grid to its
// distance along the Hilbert curve (the classical rot/flip formulation).
func hilbertD(order uint, x, y uint32) uint64 {
	var d uint64
	for s := uint32(1) << (order - 1); s > 0; s >>= 1 {
		var rx, ry uint32
		if x&s > 0 {
			rx = 1
		}
		if y&s > 0 {
			ry = 1
		}
		d += uint64(s) * uint64(s) * uint64((3*rx)^ry)
		// Rotate the quadrant.
		if ry == 0 {
			if rx == 1 {
				x = s - 1 - x
				y = s - 1 - y
			}
			x, y = y, x
		}
	}
	return d
}
