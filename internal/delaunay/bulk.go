package delaunay

import (
	"runtime"
	"sort"
	"sync"

	"voronet/internal/geom"
)

// InsertBulk inserts many sites at once in a locality-aware order
// (Hilbert-curve sort, the core of a BRIO build): consecutive insertions
// land near each other, so the remembering walk from the previous site is
// O(1) steps and the whole build is close to linear time. Results are
// returned in the order of the input points; duplicates yield the existing
// site's ID.
//
// The structural outcome is identical to inserting the points one by one
// in any order — the Delaunay triangulation of a point set is unique (up
// to co-circular retriangulation) — so this is purely a construction-time
// optimisation: the experiment engine uses it to build 300 000-object
// overlays in seconds.
func (t *Triangulation) InsertBulk(points []geom.Point) []VertexID {
	return t.InsertBulkParallel(points, 1)
}

// InsertBulkParallel is InsertBulk with the construction's embarrassingly
// parallel prefix — Hilbert key computation and the locality sort — spread
// over `workers` goroutines (0 selects GOMAXPROCS). The insertion loop
// itself stays serial: the triangulation's face/vertex arenas are a single
// mutable structure and the hinted Bowyer–Watson insert is already O(1)
// expected, so the sort is the part worth parallelising here (the overlay
// layer parallelises everything it builds on top — long links, grid, back
// references — in core.BulkLoad). The sort uses a total order (key, then
// coordinates, then input index), so the insertion sequence — and therefore
// the resulting structure — is bit-identical for every worker count.
func (t *Triangulation) InsertBulkParallel(points []geom.Point, workers int) []VertexID {
	ids := make([]VertexID, len(points))
	order := hilbertOrderParallel(points, workers)
	hint := t.lastInsertedHint()
	for _, idx := range order {
		v, err := t.Insert(points[idx], hint)
		ids[idx] = v
		if err == nil {
			hint = v
		}
	}
	return ids
}

func (t *Triangulation) lastInsertedHint() VertexID {
	if t.lastFace == NoFace || int(t.lastFace) >= len(t.faces) || !t.faces[t.lastFace].alive {
		return NoVertex
	}
	for _, v := range t.faces[t.lastFace].v {
		if v != Infinite {
			return v
		}
	}
	return NoVertex
}

// hilbertOrderParallel returns a permutation of indices sorting the points
// along a Hilbert curve over their bounding box. Key computation and the
// sort fan out over `workers` goroutines; the comparison is the total
// order (key, X, Y, input index), so the permutation is independent of the
// worker count and of sort stability.
func hilbertOrderParallel(points []geom.Point, workers int) []int {
	n := len(points)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	if n < 3 {
		return order
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n/1024 {
		// Below ~1k points per worker the goroutine overhead wins.
		workers = n/1024 + 1
	}
	minX, minY := points[0].X, points[0].Y
	maxX, maxY := minX, minY
	for _, p := range points {
		if p.X < minX {
			minX = p.X
		}
		if p.X > maxX {
			maxX = p.X
		}
		if p.Y < minY {
			minY = p.Y
		}
		if p.Y > maxY {
			maxY = p.Y
		}
	}
	spanX := maxX - minX
	spanY := maxY - minY
	if spanX == 0 {
		spanX = 1
	}
	if spanY == 0 {
		spanY = 1
	}
	const bits = 16
	const side = 1 << bits
	keys := make([]uint64, n)
	fillKeys := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			p := points[i]
			x := uint32((p.X - minX) / spanX * (side - 1))
			y := uint32((p.Y - minY) / spanY * (side - 1))
			keys[i] = hilbertD(bits, x, y)
		}
	}
	less := func(a, b int) bool {
		if keys[a] != keys[b] {
			return keys[a] < keys[b]
		}
		if points[a].X != points[b].X {
			return points[a].X < points[b].X
		}
		if points[a].Y != points[b].Y {
			return points[a].Y < points[b].Y
		}
		return a < b
	}
	if workers <= 1 {
		fillKeys(0, n)
		sort.Slice(order, func(a, b int) bool { return less(order[a], order[b]) })
		return order
	}

	// Parallel keys, then a chunked parallel sort merged pairwise.
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	bounds := make([][2]int, 0, workers)
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		bounds = append(bounds, [2]int{lo, hi})
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fillKeys(lo, hi)
			part := order[lo:hi]
			sort.Slice(part, func(a, b int) bool { return less(part[a], part[b]) })
		}(lo, hi)
	}
	wg.Wait()
	tmp := make([]int, n)
	for len(bounds) > 1 {
		next := bounds[:0:cap(bounds)]
		var mwg sync.WaitGroup
		for i := 0; i < len(bounds); i += 2 {
			if i+1 == len(bounds) {
				next = append(next, bounds[i])
				break
			}
			a, b := bounds[i], bounds[i+1]
			next = append(next, [2]int{a[0], b[1]})
			mwg.Add(1)
			go func(lo, mid, hi int) {
				defer mwg.Done()
				mergeRuns(order, tmp, lo, mid, hi, less)
			}(a[0], b[0], b[1])
		}
		mwg.Wait()
		bounds = next
	}
	return order
}

// mergeRuns merges the sorted runs order[lo:mid] and order[mid:hi] into
// order[lo:hi] via the scratch slice tmp (disjoint slices per call).
func mergeRuns(order, tmp []int, lo, mid, hi int, less func(a, b int) bool) {
	i, j, k := lo, mid, lo
	for i < mid && j < hi {
		if less(order[j], order[i]) {
			tmp[k] = order[j]
			j++
		} else {
			tmp[k] = order[i]
			i++
		}
		k++
	}
	copy(tmp[k:], order[i:mid])
	k += mid - i
	copy(tmp[k:], order[j:hi])
	copy(order[lo:hi], tmp[lo:hi])
}

// hilbertD maps grid cell (x, y) on a 2^order × 2^order grid to its
// distance along the Hilbert curve (the classical rot/flip formulation).
func hilbertD(order uint, x, y uint32) uint64 {
	var d uint64
	for s := uint32(1) << (order - 1); s > 0; s >>= 1 {
		var rx, ry uint32
		if x&s > 0 {
			rx = 1
		}
		if y&s > 0 {
			ry = 1
		}
		d += uint64(s) * uint64(s) * uint64((3*rx)^ry)
		// Rotate the quadrant.
		if ry == 0 {
			if rx == 1 {
				x = s - 1 - x
				y = s - 1 - y
			}
			x, y = y, x
		}
	}
	return d
}
