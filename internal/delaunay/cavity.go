package delaunay

import "voronet/internal/geom"

// CavityVertsRO returns the finite vertices of every face that would be
// carved by inserting a site at p — the Bowyer–Watson conflict cavity —
// without performing the insertion and without touching any shared mutable
// state (no epoch marks, no walk RNG, no last-face cache). Any number of
// goroutines may call it concurrently as long as no insertion or removal
// runs at the same time, which is exactly the read-locked phase the
// region-sharded overlay engine uses it in: the returned vertices span the
// region a subsequent insertion will mutate, so their positions determine
// the shard conflict set to lock before committing.
//
// The boolean result is false when p coincides with an existing site (the
// insertion would be a duplicate) or the triangulation has dimension < 2
// (no faces to carve); buf is then returned empty. hint accelerates point
// location exactly as in Insert. Vertices are deduplicated.
func (t *Triangulation) CavityVertsRO(p geom.Point, hint VertexID, buf []VertexID) ([]VertexID, bool) {
	buf = buf[:0]
	if t.dim < 2 {
		return buf, false
	}
	loc := t.LocateRO(p, hint)
	if loc.Kind == LocVertex {
		return buf, false
	}

	// The cavity is tiny (O(degree) faces), so a small local visited set
	// keeps the walk read-only where insertSite would stamp epoch marks.
	seen := make(map[FaceID]struct{}, 16)
	queue := make([]FaceID, 0, 16)
	push := func(f FaceID) {
		seen[f] = struct{}{}
		queue = append(queue, f)
	}
	push(loc.Face)
	if loc.Kind == LocEdge {
		push(t.faces[loc.Face].n[loc.Edge])
	}
	addVert := func(v VertexID) []VertexID {
		if v == Infinite {
			return buf
		}
		for _, u := range buf {
			if u == v {
				return buf
			}
		}
		return append(buf, v)
	}
	for qi := 0; qi < len(queue); qi++ {
		f := queue[qi]
		fc := t.faces[f]
		for k := 0; k < 3; k++ {
			buf = addVert(fc.v[k])
			g := fc.n[k]
			if _, ok := seen[g]; ok {
				continue
			}
			if t.inConflict(g, p) {
				push(g)
			}
		}
	}
	return buf, true
}
