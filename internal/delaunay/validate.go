package delaunay

import (
	"fmt"

	"voronet/internal/geom"
)

// Validate checks every structural and geometric invariant of the
// triangulation and returns the first violation found, or nil. It is
// O(n) with exact predicates and intended for tests and debugging.
//
// Checked invariants:
//
//  1. face/neighbour records are mutually consistent and reference live
//     entities;
//  2. every finite face is strictly counterclockwise;
//  3. every infinite face has exactly one infinite vertex;
//  4. vertex→face incidence pointers are valid;
//  5. Euler's formula for the sphere (V − E + F = 2);
//  6. the empty-circumcircle property holds across every internal edge and
//     the hull is convex (local Delaunayhood, which implies global);
//  7. in degenerate mode, the chain is sorted, collinear and complete.
func (t *Triangulation) Validate() error {
	if t.dim < 2 {
		return t.validateLowDim()
	}
	nAliveFaces := 0
	nFiniteFaces := 0
	for id := range t.faces {
		fc := &t.faces[id]
		if !fc.alive {
			continue
		}
		f := FaceID(id)
		nAliveFaces++
		nInf := 0
		for k := 0; k < 3; k++ {
			v := fc.v[k]
			if v == Infinite {
				nInf++
				continue
			}
			if !t.Alive(v) {
				return fmt.Errorf("face %d references dead vertex %d", f, v)
			}
		}
		if fc.v[0] == fc.v[1] || fc.v[1] == fc.v[2] || fc.v[0] == fc.v[2] {
			return fmt.Errorf("face %d has repeated vertices %v", f, fc.v)
		}
		if nInf > 1 {
			return fmt.Errorf("face %d has %d infinite vertices", f, nInf)
		}
		if nInf == 0 {
			nFiniteFaces++
			a, b, c := t.verts[fc.v[0]].p, t.verts[fc.v[1]].p, t.verts[fc.v[2]].p
			if geom.Orient2D(a, b, c) <= 0 {
				return fmt.Errorf("finite face %d %v is not strictly ccw", f, fc.v)
			}
		}
		// Neighbour consistency: the neighbour across edge k shares exactly
		// that edge, reversed.
		for k := 0; k < 3; k++ {
			g := fc.n[k]
			if g < 0 || int(g) >= len(t.faces) || !t.faces[g].alive {
				return fmt.Errorf("face %d neighbour %d across %d is dead", f, g, k)
			}
			a := fc.v[(k+1)%3]
			b := fc.v[(k+2)%3]
			gi := -1
			for kk := 0; kk < 3; kk++ {
				if t.faces[g].n[kk] == f {
					gi = kk
					break
				}
			}
			if gi < 0 {
				return fmt.Errorf("face %d -> %d adjacency is not mutual", f, g)
			}
			ga := t.faces[g].v[(gi+1)%3]
			gb := t.faces[g].v[(gi+2)%3]
			if ga != b || gb != a {
				return fmt.Errorf("face %d edge (%d,%d) mismatches neighbour %d edge (%d,%d)",
					f, a, b, g, ga, gb)
			}
		}
	}
	if nFiniteFaces != t.nFiniteFaces {
		return fmt.Errorf("finite face count: have %d, tracked %d", nFiniteFaces, t.nFiniteFaces)
	}

	// Vertex incidence and count.
	nAliveVerts := 0
	for id := 1; id < len(t.verts); id++ {
		if !t.verts[id].alive {
			continue
		}
		nAliveVerts++
		f := t.verts[id].face
		if f == NoFace || !t.faces[f].alive || t.vertIndex(f, VertexID(id)) < 0 {
			return fmt.Errorf("vertex %d incidence pointer invalid (face %d)", id, f)
		}
	}
	if nAliveVerts != t.nFinite {
		return fmt.Errorf("site count: have %d, tracked %d", nAliveVerts, t.nFinite)
	}
	// Euler: V - E + F = 2 with V including the infinite vertex and
	// E = 3F/2 on a closed triangulated sphere.
	if 3*nAliveFaces%2 != 0 {
		return fmt.Errorf("odd edge incidence count")
	}
	v := nAliveVerts + 1
	e := 3 * nAliveFaces / 2
	if v-e+nAliveFaces != 2 {
		return fmt.Errorf("Euler formula violated: V=%d E=%d F=%d", v, e, nAliveFaces)
	}

	// Local Delaunay property across every edge.
	for id := range t.faces {
		fc := &t.faces[id]
		if !fc.alive {
			continue
		}
		fin := fc.v[0] != Infinite && fc.v[1] != Infinite && fc.v[2] != Infinite
		for k := 0; k < 3; k++ {
			g := fc.n[k]
			gi := -1
			for kk := 0; kk < 3; kk++ {
				if t.faces[g].n[kk] == FaceID(id) {
					gi = kk
					break
				}
			}
			d := t.faces[g].v[gi]
			if fin {
				if d == Infinite {
					continue
				}
				a, b, c := t.verts[fc.v[0]].p, t.verts[fc.v[1]].p, t.verts[fc.v[2]].p
				if geom.InCircle(a, b, c, t.verts[d].p) > 0 {
					return fmt.Errorf("face %d is not Delaunay: vertex %d inside circumcircle", id, d)
				}
			} else {
				// Hull convexity: for infinite face (u, w, inf), the finite
				// apex of the neighbouring infinite faces must not lie
				// strictly outside the hull edge.
				ii := t.vertIndex(FaceID(id), Infinite)
				if k == ii {
					continue // finite neighbour across the hull edge
				}
				if d == Infinite {
					return fmt.Errorf("two adjacent faces share the infinite apex improperly")
				}
				u := t.verts[fc.v[(ii+1)%3]].p
				w := t.verts[fc.v[(ii+2)%3]].p
				if geom.Orient2D(u, w, t.verts[d].p) > 0 {
					return fmt.Errorf("hull is not convex at face %d (vertex %d outside edge)", id, d)
				}
			}
		}
	}
	return nil
}

func (t *Triangulation) validateLowDim() error {
	if len(t.line) != t.nFinite {
		return fmt.Errorf("degenerate chain length %d != site count %d", len(t.line), t.nFinite)
	}
	switch {
	case t.nFinite == 0 && t.dim != -1:
		return fmt.Errorf("empty set must have dim -1, has %d", t.dim)
	case t.nFinite == 1 && t.dim != 0:
		return fmt.Errorf("single site must have dim 0, has %d", t.dim)
	case t.nFinite >= 2 && t.dim != 1:
		return fmt.Errorf("chain of %d sites must have dim 1, has %d", t.nFinite, t.dim)
	}
	for i, v := range t.line {
		if !t.Alive(v) {
			return fmt.Errorf("degenerate chain references dead vertex %d", v)
		}
		if i > 0 {
			p, q := t.verts[t.line[i-1]].p, t.verts[v].p
			if !lexLess(p, q) {
				return fmt.Errorf("degenerate chain not sorted at %d", i)
			}
		}
		if i >= 2 {
			a, b := t.verts[t.line[0]].p, t.verts[t.line[1]].p
			if geom.Orient2D(a, b, t.verts[v].p) != 0 {
				return fmt.Errorf("degenerate chain is not collinear at %d", i)
			}
		}
	}
	return nil
}
