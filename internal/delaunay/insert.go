package delaunay

import "voronet/internal/geom"

// Insert adds a site at p and returns its vertex ID. hint (a live vertex
// near p, or NoVertex) accelerates point location; VoroNet passes the
// object reached by greedy routing, which makes insertion O(1) expected.
//
// Inserting at the exact position of an existing site returns that site's
// ID and a *DuplicateError (matching errors.Is(err, ErrDuplicate)).
func (t *Triangulation) Insert(p geom.Point, hint VertexID) (VertexID, error) {
	v := t.newVertex(p)
	if err := t.place(v, hint); err != nil {
		t.freeVertex(v)
		if de, ok := err.(*DuplicateError); ok {
			return de.Existing, err
		}
		return NoVertex, err
	}
	t.nFinite++
	return v, nil
}

// place wires an allocated vertex record into the structure, dispatching on
// the current dimension. It does not touch nFinite.
func (t *Triangulation) place(v VertexID, hint VertexID) error {
	if t.dim < 2 {
		return t.placeLowDim(v)
	}
	return t.insertSite(v, hint)
}

// insertSite wires vertex v into the dim-2 structure via Bowyer–Watson:
// locate, grow the conflict cavity, carve it and star the boundary from v.
func (t *Triangulation) insertSite(v VertexID, hint VertexID) error {
	p := t.verts[v].p
	loc := t.Locate(p, hint)
	if loc.Kind == LocVertex {
		return &DuplicateError{Existing: loc.Vertex}
	}

	// Seed the conflict region.
	t.epoch++
	t.cavity = t.cavity[:0]
	t.boundary = t.boundary[:0]
	push := func(f FaceID) {
		t.faces[f].mark = t.epoch
		t.cavity = append(t.cavity, f)
	}
	switch loc.Kind {
	case LocFace, LocOutside:
		push(loc.Face)
	case LocEdge:
		push(loc.Face)
		push(t.faces[loc.Face].n[loc.Edge])
	}

	// Grow the cavity breadth-first over strictly conflicting faces,
	// collecting the boundary as directed edges with the cavity on the left.
	for qi := 0; qi < len(t.cavity); qi++ {
		f := t.cavity[qi]
		fc := t.faces[f]
		for k := 0; k < 3; k++ {
			g := fc.n[k]
			if t.faces[g].mark == t.epoch {
				continue
			}
			if t.inConflict(g, p) {
				push(g)
				continue
			}
			a := fc.v[(k+1)%3]
			b := fc.v[(k+2)%3]
			gi := t.neighborIndex(g, f)
			t.boundary = append(t.boundary, bEdge{a: a, b: b, out: g, outIdx: gi})
		}
	}

	// Stitch: one new face (a, b, v) per boundary edge, fanned around v.
	// The boundary is a single cycle; chain edges by their start vertex.
	startOf := make(map[VertexID]int, len(t.boundary))
	for i := range t.boundary {
		startOf[t.boundary[i].a] = i
	}
	for i := range t.boundary {
		e := &t.boundary[i]
		e.newFace = t.newFace(e.a, e.b, v)
		t.link(e.newFace, 2, e.out, e.outIdx)
	}
	for i := range t.boundary {
		e := &t.boundary[i]
		j, ok := startOf[e.b]
		if !ok {
			panic("delaunay: cavity boundary is not a cycle")
		}
		next := &t.boundary[j]
		// e.newFace = (a, b, v): edge (b, v) is opposite index 0.
		// next.newFace = (b, c, v): edge (v, b) is opposite index 1.
		t.link(e.newFace, 0, next.newFace, 1)
	}

	for _, f := range t.cavity {
		t.freeFace(f)
	}
	t.verts[v].face = t.boundary[0].newFace
	t.lastFace = t.boundary[0].newFace
	return nil
}

// inConflict reports whether face g strictly conflicts with the new point
// p: for finite faces, p strictly inside the circumcircle; for infinite
// faces, p strictly on the unbounded side of the hull edge.
func (t *Triangulation) inConflict(g FaceID, p geom.Point) bool {
	gc := &t.faces[g]
	for k := 0; k < 3; k++ {
		if gc.v[k] == Infinite {
			u := t.verts[gc.v[(k+1)%3]].p
			w := t.verts[gc.v[(k+2)%3]].p
			return geom.Orient2D(u, w, p) > 0
		}
	}
	a := t.verts[gc.v[0]].p
	b := t.verts[gc.v[1]].p
	c := t.verts[gc.v[2]].p
	return geom.InCircle(a, b, c, p) > 0
}

// placeLowDim handles insertion while the site set has affine dimension
// below 2 (empty, single site, or all collinear).
func (t *Triangulation) placeLowDim(v VertexID) error {
	p := t.verts[v].p
	for _, u := range t.line {
		if t.verts[u].p == p {
			return &DuplicateError{Existing: u}
		}
	}
	if len(t.line) >= 2 {
		a := t.verts[t.line[0]].p
		b := t.verts[t.line[len(t.line)-1]].p
		if geom.Orient2D(a, b, p) != 0 {
			t.upgradeToDim2(v)
			return nil
		}
	}
	// Insert into the lexicographically sorted chain. Along a common line
	// lexicographic order is the linear order, with no arithmetic at all.
	pos := len(t.line)
	for i, u := range t.line {
		if lexLess(p, t.verts[u].p) {
			pos = i
			break
		}
	}
	t.line = append(t.line, 0)
	copy(t.line[pos+1:], t.line[pos:])
	t.line[pos] = v
	if len(t.line) == 1 {
		t.dim = 0
	} else {
		t.dim = 1
	}
	return nil
}

// upgradeToDim2 builds the 2-D structure from the collinear chain plus the
// first off-line vertex w.
func (t *Triangulation) upgradeToDim2(w VertexID) {
	chain := append([]VertexID(nil), t.line...)
	t.line = t.line[:0]
	t.dim = 2

	// Bootstrap with the chain's two extreme sites and w, then insert the
	// interior chain sites; they land on edge (a, b) or collinear outside
	// it, both handled by the generic insertion path.
	a, b := chain[0], chain[len(chain)-1]
	t.bootstrapFaces(a, b, w)
	for _, u := range chain[1 : len(chain)-1] {
		if err := t.insertSite(u, a); err != nil {
			panic("delaunay: dimension upgrade re-insertion failed: " + err.Error())
		}
	}
}

// bootstrapFaces creates the four faces (one finite, three infinite) of the
// first non-degenerate triple.
func (t *Triangulation) bootstrapFaces(a, b, c VertexID) {
	if geom.Orient2D(t.verts[a].p, t.verts[b].p, t.verts[c].p) < 0 {
		b, c = c, b
	}
	f0 := t.newFace(a, b, c)
	// Infinite faces: (u, v, Infinite) with the hull interior to the right
	// of u -> v, i.e. the reversed finite edges of f0.
	f1 := t.newFace(b, a, Infinite)
	f2 := t.newFace(c, b, Infinite)
	f3 := t.newFace(a, c, Infinite)
	// f0 edges: opp a = (b,c) <-> f2; opp b = (c,a) <-> f3; opp c = (a,b) <-> f1.
	t.link(f0, 0, f2, 2)
	t.link(f0, 1, f3, 2)
	t.link(f0, 2, f1, 2)
	// Around the infinite vertex:
	// f1=(b,a,inf) edge (a,inf) [opp b, idx 0] <-> f3=(a,c,inf) edge (inf,a) [opp c, idx 1].
	t.link(f1, 0, f3, 1)
	// f1 edge (inf,b) [opp a, idx 1] <-> f2=(c,b,inf) edge (b,inf) [opp c, idx 0].
	t.link(f1, 1, f2, 0)
	// f2 edge (inf,c) [opp b, idx 1] <-> f3 edge (c,inf) [opp a, idx 0].
	t.link(f2, 1, f3, 0)
	t.lastFace = f0
}
