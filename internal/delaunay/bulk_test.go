package delaunay

import (
	"math/rand"
	"sort"
	"testing"

	"voronet/internal/geom"
)

func TestInsertBulkMatchesIncremental(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	pts := make([]geom.Point, 800)
	for i := range pts {
		pts[i] = geom.Pt(rng.Float64(), rng.Float64())
	}
	// Bulk build.
	bulk := New()
	ids := bulk.InsertBulk(pts)
	if err := bulk.Validate(); err != nil {
		t.Fatalf("bulk validate: %v", err)
	}
	// Incremental reference.
	ref := New()
	refIDs := make([]VertexID, len(pts))
	for i, p := range pts {
		v, err := ref.Insert(p, NoVertex)
		if err != nil {
			t.Fatal(err)
		}
		refIDs[i] = v
	}
	// Same neighbour sets (by position) for every point.
	posOf := func(tr *Triangulation, v VertexID) geom.Point { return tr.Point(v) }
	for i := range pts {
		a := neighborPositions(bulk, ids[i], posOf)
		b := neighborPositions(ref, refIDs[i], posOf)
		if len(a) != len(b) {
			t.Fatalf("point %d: %d vs %d neighbours", i, len(a), len(b))
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("point %d neighbour mismatch", i)
			}
		}
	}
}

func neighborPositions(tr *Triangulation, v VertexID, pos func(*Triangulation, VertexID) geom.Point) []geom.Point {
	var out []geom.Point
	for _, u := range tr.Neighbors(v, nil) {
		out = append(out, pos(tr, u))
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].X != out[j].X {
			return out[i].X < out[j].X
		}
		return out[i].Y < out[j].Y
	})
	return out
}

func TestInsertBulkDuplicatesAndTinyInputs(t *testing.T) {
	tr := New()
	if ids := tr.InsertBulk(nil); len(ids) != 0 {
		t.Fatal("empty bulk insert")
	}
	ids := tr.InsertBulk([]geom.Point{{X: 0.5, Y: 0.5}})
	if len(ids) != 1 || !tr.Alive(ids[0]) {
		t.Fatal("singleton bulk insert")
	}
	// Duplicates resolve to the existing ID.
	ids2 := tr.InsertBulk([]geom.Point{{X: 0.5, Y: 0.5}, {X: 0.25, Y: 0.5}})
	if ids2[0] != ids[0] {
		t.Fatalf("duplicate should return existing id %d, got %d", ids[0], ids2[0])
	}
	if tr.NumSites() != 2 {
		t.Fatalf("sites: %d", tr.NumSites())
	}
	// Bulk into an already-populated triangulation.
	tr.InsertBulk([]geom.Point{{X: 0.9, Y: 0.9}, {X: 0.1, Y: 0.8}})
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestHilbertOrderIsPermutationAndLocal(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	pts := make([]geom.Point, 2000)
	for i := range pts {
		pts[i] = geom.Pt(rng.Float64(), rng.Float64())
	}
	order := hilbertOrder(pts)
	seen := make([]bool, len(pts))
	for _, idx := range order {
		if seen[idx] {
			t.Fatal("not a permutation")
		}
		seen[idx] = true
	}
	// Locality: the mean hop distance along the order must be far below
	// the ~0.52 expected for a random permutation.
	total := 0.0
	for i := 1; i < len(order); i++ {
		total += geom.Dist(pts[order[i-1]], pts[order[i]])
	}
	mean := total / float64(len(order)-1)
	if mean > 0.1 {
		t.Fatalf("hilbert order mean step %.3f — not local", mean)
	}
}

func TestHilbertDistanceBasics(t *testing.T) {
	// First-order curve visits the four quadrant cells in the canonical
	// order (0,0) (0,1) (1,1) (1,0).
	want := map[[2]uint32]uint64{
		{0, 0}: 0, {0, 1}: 1, {1, 1}: 2, {1, 0}: 3,
	}
	for cell, d := range want {
		if got := hilbertD(1, cell[0], cell[1]); got != d {
			t.Errorf("hilbertD(1,%d,%d) = %d, want %d", cell[0], cell[1], got, d)
		}
	}
	// Distances on a 2-bit curve are a bijection over 16 cells.
	seen := map[uint64]bool{}
	for x := uint32(0); x < 4; x++ {
		for y := uint32(0); y < 4; y++ {
			d := hilbertD(2, x, y)
			if d > 15 || seen[d] {
				t.Fatalf("hilbertD(2,%d,%d) = %d invalid", x, y, d)
			}
			seen[d] = true
		}
	}
}

func BenchmarkInsertBulk20k(b *testing.B) {
	rng := rand.New(rand.NewSource(53))
	pts := make([]geom.Point, 20000)
	for i := range pts {
		pts[i] = geom.Pt(rng.Float64(), rng.Float64())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := New()
		tr.InsertBulk(pts)
	}
}

func BenchmarkInsertNaive20k(b *testing.B) {
	rng := rand.New(rand.NewSource(53))
	pts := make([]geom.Point, 20000)
	for i := range pts {
		pts[i] = geom.Pt(rng.Float64(), rng.Float64())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := New()
		hint := NoVertex
		for _, p := range pts {
			if v, err := tr.Insert(p, hint); err == nil {
				hint = v
			}
		}
	}
}
