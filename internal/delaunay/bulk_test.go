package delaunay

import (
	"math/rand"
	"sort"
	"testing"

	"voronet/internal/geom"
)

func TestInsertBulkMatchesIncremental(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	pts := make([]geom.Point, 800)
	for i := range pts {
		pts[i] = geom.Pt(rng.Float64(), rng.Float64())
	}
	// Bulk build.
	bulk := New()
	ids := bulk.InsertBulk(pts)
	if err := bulk.Validate(); err != nil {
		t.Fatalf("bulk validate: %v", err)
	}
	// Incremental reference.
	ref := New()
	refIDs := make([]VertexID, len(pts))
	for i, p := range pts {
		v, err := ref.Insert(p, NoVertex)
		if err != nil {
			t.Fatal(err)
		}
		refIDs[i] = v
	}
	// Same neighbour sets (by position) for every point.
	posOf := func(tr *Triangulation, v VertexID) geom.Point { return tr.Point(v) }
	for i := range pts {
		a := neighborPositions(bulk, ids[i], posOf)
		b := neighborPositions(ref, refIDs[i], posOf)
		if len(a) != len(b) {
			t.Fatalf("point %d: %d vs %d neighbours", i, len(a), len(b))
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("point %d neighbour mismatch", i)
			}
		}
	}
}

func neighborPositions(tr *Triangulation, v VertexID, pos func(*Triangulation, VertexID) geom.Point) []geom.Point {
	var out []geom.Point
	for _, u := range tr.Neighbors(v, nil) {
		out = append(out, pos(tr, u))
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].X != out[j].X {
			return out[i].X < out[j].X
		}
		return out[i].Y < out[j].Y
	})
	return out
}

func TestInsertBulkDuplicatesAndTinyInputs(t *testing.T) {
	tr := New()
	if ids := tr.InsertBulk(nil); len(ids) != 0 {
		t.Fatal("empty bulk insert")
	}
	ids := tr.InsertBulk([]geom.Point{{X: 0.5, Y: 0.5}})
	if len(ids) != 1 || !tr.Alive(ids[0]) {
		t.Fatal("singleton bulk insert")
	}
	// Duplicates resolve to the existing ID.
	ids2 := tr.InsertBulk([]geom.Point{{X: 0.5, Y: 0.5}, {X: 0.25, Y: 0.5}})
	if ids2[0] != ids[0] {
		t.Fatalf("duplicate should return existing id %d, got %d", ids[0], ids2[0])
	}
	if tr.NumSites() != 2 {
		t.Fatalf("sites: %d", tr.NumSites())
	}
	// Bulk into an already-populated triangulation.
	tr.InsertBulk([]geom.Point{{X: 0.9, Y: 0.9}, {X: 0.1, Y: 0.8}})
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestHilbertOrderIsPermutationAndLocal(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	pts := make([]geom.Point, 2000)
	for i := range pts {
		pts[i] = geom.Pt(rng.Float64(), rng.Float64())
	}
	order := hilbertOrderParallel(pts, 1)
	seen := make([]bool, len(pts))
	for _, idx := range order {
		if seen[idx] {
			t.Fatal("not a permutation")
		}
		seen[idx] = true
	}
	// Locality: the mean hop distance along the order must be far below
	// the ~0.52 expected for a random permutation.
	total := 0.0
	for i := 1; i < len(order); i++ {
		total += geom.Dist(pts[order[i-1]], pts[order[i]])
	}
	mean := total / float64(len(order)-1)
	if mean > 0.1 {
		t.Fatalf("hilbert order mean step %.3f — not local", mean)
	}
}

// TestInsertBulkParallelWorkerCountInvariant asserts the guarantee the
// parallel sort is built on: the insertion order — and therefore the whole
// structure, face IDs included — is identical for every worker count,
// because the comparator is a total order over (key, coordinates, index).
func TestInsertBulkParallelWorkerCountInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(54))
	pts := make([]geom.Point, 6000)
	for i := range pts {
		pts[i] = geom.Pt(rng.Float64(), rng.Float64())
	}
	// Duplicate coordinates exercise the index tie-break.
	pts[100] = pts[4000]
	pts[200] = pts[5000]
	ref := hilbertOrderParallel(pts, 1)
	for _, workers := range []int{2, 3, 4, 8} {
		got := hilbertOrderParallel(pts, workers)
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d: order diverges at %d: %d vs %d", workers, i, got[i], ref[i])
			}
		}
	}
	// And the triangulations agree structurally.
	a := New()
	aIDs := a.InsertBulkParallel(pts, 1)
	b := New()
	bIDs := b.InsertBulkParallel(pts, 4)
	if err := b.Validate(); err != nil {
		t.Fatalf("parallel validate: %v", err)
	}
	posOf := func(tr *Triangulation, v VertexID) geom.Point { return tr.Point(v) }
	for i := range pts {
		na := neighborPositions(a, aIDs[i], posOf)
		nb := neighborPositions(b, bIDs[i], posOf)
		if len(na) != len(nb) {
			t.Fatalf("point %d: %d vs %d neighbours", i, len(na), len(nb))
		}
		for j := range na {
			if na[j] != nb[j] {
				t.Fatalf("point %d neighbour mismatch", i)
			}
		}
	}
}

// TestCavityVertsROMatchesInsertion checks the read-only conflict probe
// against ground truth: the cavity vertices it reports for a point must be
// exactly the sites that are Voronoi neighbours of the point once it is
// actually inserted (the carved faces' corners are the new star), and the
// probe must leave the structure untouched.
func TestCavityVertsROMatchesInsertion(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	tr := New()
	pts := make([]geom.Point, 500)
	for i := range pts {
		pts[i] = geom.Pt(rng.Float64(), rng.Float64())
	}
	tr.InsertBulk(pts)
	var buf []VertexID
	for trial := 0; trial < 200; trial++ {
		p := geom.Pt(rng.Float64()*1.2-0.1, rng.Float64()*1.2-0.1)
		var ok bool
		buf, ok = tr.CavityVertsRO(p, NoVertex, buf)
		if !ok {
			t.Fatalf("trial %d: unexpected duplicate at %v", trial, p)
		}
		cavity := map[VertexID]bool{}
		for _, v := range buf {
			cavity[v] = true
		}
		before := tr.NumSites()
		v, err := tr.Insert(p, NoVertex)
		if err != nil {
			t.Fatal(err)
		}
		star := tr.Neighbors(v, nil)
		for _, u := range star {
			if u != Infinite && !cavity[u] {
				t.Fatalf("trial %d: star vertex %d missing from RO cavity", trial, u)
			}
		}
		if err := tr.Remove(v); err != nil {
			t.Fatal(err)
		}
		if tr.NumSites() != before {
			t.Fatalf("trial %d: site count drifted", trial)
		}
	}
	// Duplicate probe: reports ok=false, mutates nothing.
	if _, ok := tr.CavityVertsRO(pts[17], NoVertex, buf); ok {
		t.Fatal("duplicate position must report ok=false")
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestHilbertDistanceBasics(t *testing.T) {
	// First-order curve visits the four quadrant cells in the canonical
	// order (0,0) (0,1) (1,1) (1,0).
	want := map[[2]uint32]uint64{
		{0, 0}: 0, {0, 1}: 1, {1, 1}: 2, {1, 0}: 3,
	}
	for cell, d := range want {
		if got := hilbertD(1, cell[0], cell[1]); got != d {
			t.Errorf("hilbertD(1,%d,%d) = %d, want %d", cell[0], cell[1], got, d)
		}
	}
	// Distances on a 2-bit curve are a bijection over 16 cells.
	seen := map[uint64]bool{}
	for x := uint32(0); x < 4; x++ {
		for y := uint32(0); y < 4; y++ {
			d := hilbertD(2, x, y)
			if d > 15 || seen[d] {
				t.Fatalf("hilbertD(2,%d,%d) = %d invalid", x, y, d)
			}
			seen[d] = true
		}
	}
}

func BenchmarkInsertBulk20k(b *testing.B) {
	rng := rand.New(rand.NewSource(53))
	pts := make([]geom.Point, 20000)
	for i := range pts {
		pts[i] = geom.Pt(rng.Float64(), rng.Float64())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := New()
		tr.InsertBulk(pts)
	}
}

func BenchmarkInsertNaive20k(b *testing.B) {
	rng := rand.New(rand.NewSource(53))
	pts := make([]geom.Point, 20000)
	for i := range pts {
		pts[i] = geom.Pt(rng.Float64(), rng.Float64())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := New()
		hint := NoVertex
		for _, p := range pts {
			if v, err := tr.Insert(p, hint); err == nil {
				hint = v
			}
		}
	}
}
